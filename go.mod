module winlab

go 1.22
