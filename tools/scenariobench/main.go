// Command scenariobench is the claim-set harness for the bundled
// scenarios: for each seed it runs every requested scenario and a
// baseline of the same length, measures the headline metrics
// (availability, cluster equivalence, harvest yield and work) on both
// traces, and enforces the scenario's documented directional claims.
// The lockdown scenario doubles as the availability-collapse
// detector's labelled *negative* corpus: its slow regime shift must
// not page, and the harness fails if it does. CI runs it via `make
// scenarios`; a non-zero exit means a claim no longer holds on a
// fixed seed or the detector paged on a slow drift.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"winlab/internal/anomaly"
	"winlab/internal/experiment"
	"winlab/internal/scenario"
	"winlab/internal/trace/check"
)

func main() {
	var (
		seedsFlag = flag.String("seeds", "1,2,3", "comma-separated experiment seeds")
		days      = flag.Int("days", 0, "override every scenario's length in days (0 = each scenario's own)")
		list      = flag.String("scenarios", "", "comma-separated scenario names or JSON files (default: all bundled with claims)")
		corpus    = flag.String("collapse-corpus", "lockdown", "scenarios whose runs must produce zero availability-collapse pages (comma-separated, empty disables)")
		shards    = flag.Int("shards", 0, "collect through the sharded collector with this many shards (0 = serial)")
		doCheck   = flag.Bool("check", true, "invariant-check every collected trace")
		verbose   = flag.Bool("v", false, "print per-run metric tables")
	)
	flag.Parse()

	seeds, err := parseSeeds(*seedsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenariobench: %v\n", err)
		os.Exit(2)
	}

	scenarios, err := resolveScenarios(*list)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenariobench: %v\n", err)
		os.Exit(2)
	}
	inCorpus := make(map[string]bool)
	for _, n := range splitList(*corpus) {
		inCorpus[n] = true
	}

	b := bench{days: *days, shards: *shards, check: *doCheck, verbose: *verbose,
		baselines: make(map[baseKey]scenario.Metrics)}
	failed := false
	var corpusRan []string
	for _, sc := range scenarios {
		for _, seed := range seeds {
			if !b.runOne(sc, seed) {
				failed = true
			}
		}
		if inCorpus[sc.Name] {
			corpusRan = append(corpusRan, sc.Name)
			for _, seed := range seeds {
				if !b.runCorpus(sc, seed) {
					failed = true
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	note := ""
	if len(corpusRan) > 0 {
		note = fmt.Sprintf("; zero collapse pages on %s", strings.Join(corpusRan, ","))
	}
	fmt.Printf("OK: all claims hold over seeds %s%s\n", *seedsFlag, note)
}

type baseKey struct {
	seed int64
	days int
}

type bench struct {
	days    int
	shards  int
	check   bool
	verbose bool

	baselines map[baseKey]scenario.Metrics
}

// resolvedDays returns the length a scenario runs at under the
// harness's -days override.
func (b *bench) resolvedDays(sc *scenario.Config) int {
	if b.days > 0 {
		return b.days
	}
	if sc.Days > 0 {
		return sc.Days
	}
	return experiment.Default(0).Days
}

func (b *bench) run(sc *scenario.Config, seed int64, days int, det *anomaly.Detectors, outages bool) (scenario.Metrics, error) {
	cfg, err := sc.Experiment(seed)
	if err != nil {
		return scenario.Metrics{}, err
	}
	cfg.Days = days
	cfg.Shards = b.shards
	cfg.Detect = det
	if !outages {
		// Corpus runs judge detector behaviour, so the coordinator runs
		// clean: a random outage is not a labelled negative.
		cfg.OutageFraction = 0
	}
	res, err := experiment.Run(cfg)
	if err != nil {
		return scenario.Metrics{}, err
	}
	if b.check {
		if rep := check.Check(res.Dataset, check.Options{}); !rep.OK() {
			return scenario.Metrics{}, fmt.Errorf("trace not doctor-clean: %w", rep.Err())
		}
	}
	return scenario.Measure(res.Dataset)
}

func (b *bench) baseline(seed int64, days int) (scenario.Metrics, error) {
	key := baseKey{seed, days}
	if m, ok := b.baselines[key]; ok {
		return m, nil
	}
	base, err := scenario.Bundled("baseline")
	if err != nil {
		return scenario.Metrics{}, err
	}
	m, err := b.run(base, seed, days, nil, true)
	if err != nil {
		return scenario.Metrics{}, fmt.Errorf("baseline (%d days): %w", days, err)
	}
	b.baselines[key] = m
	return m, nil
}

// runOne measures one scenario at one seed and enforces its claims.
func (b *bench) runOne(sc *scenario.Config, seed int64) bool {
	days := b.resolvedDays(sc)
	base, err := b.baseline(seed, days)
	if err != nil {
		fmt.Printf("FAIL %s seed %d: %v\n", sc.Name, seed, err)
		return false
	}
	got, err := b.run(sc, seed, days, nil, true)
	if err != nil {
		fmt.Printf("FAIL %s seed %d: %v\n", sc.Name, seed, err)
		return false
	}
	if b.verbose {
		printMetrics(sc.Name, seed, days, base, got)
	}
	ok := true
	for _, cl := range sc.Claims {
		if err := cl.Check(base, got); err != nil {
			fmt.Printf("FAIL %s seed %d (%d days): %v\n", sc.Name, seed, days, err)
			ok = false
		}
	}
	if ok {
		fmt.Printf("ok   %s seed %d (%d days): %d claims hold\n", sc.Name, seed, days, len(sc.Claims))
	}
	return ok
}

// runCorpus replays the scenario with the streaming detectors attached
// and no coordinator outages: a slow regime shift is a labelled
// negative for the availability-collapse detector, so any page is a
// false positive.
func (b *bench) runCorpus(sc *scenario.Config, seed int64) bool {
	det := anomaly.New(anomaly.DefaultConfig(), nil)
	days := b.resolvedDays(sc)
	if _, err := b.run(sc, seed, days, det, false); err != nil {
		fmt.Printf("FAIL %s corpus seed %d: %v\n", sc.Name, seed, err)
		return false
	}
	pages := 0
	for _, e := range det.Ring().Snapshot() {
		if e.Kind == anomaly.KindAvailabilityCollapse {
			pages++
			fmt.Printf("FAIL %s corpus seed %d: collapse page lab=%q iters=[%d,%d] %s\n",
				sc.Name, seed, e.Lab, e.FirstIter, e.LastIter, e.Detail)
		}
	}
	if pages > 0 {
		return false
	}
	fmt.Printf("ok   %s corpus seed %d (%d days): zero collapse pages\n", sc.Name, seed, days)
	return true
}

func printMetrics(name string, seed int64, days int, base, got scenario.Metrics) {
	fmt.Printf("== %s seed %d (%d days) ==\n", name, seed, days)
	row := func(metric string, b, g float64) {
		shift := g - b
		if b != 0 {
			shift /= b
		}
		fmt.Printf("  %-13s %10.4g -> %10.4g  (%+.1f%%)\n", metric, b, g, 100*shift)
	}
	row(scenario.MetricAvailability, base.Availability, got.Availability)
	row(scenario.MetricEquivalence, base.Equivalence, got.Equivalence)
	row(scenario.MetricHarvestYield, base.HarvestYield, got.HarvestYield)
	row(scenario.MetricHarvestWork, base.HarvestWork, got.HarvestWork)
}

func parseSeeds(s string) ([]int64, error) {
	var seeds []int64
	for _, f := range splitList(s) {
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", f, err)
		}
		seeds = append(seeds, n)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds")
	}
	return seeds, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// resolveScenarios maps the -scenarios flag to configs: names resolve
// against the bundled set, paths load JSON files; empty means every
// bundled scenario that carries claims.
func resolveScenarios(list string) ([]*scenario.Config, error) {
	if list == "" {
		var out []*scenario.Config
		for _, name := range scenario.Names() {
			sc, err := scenario.Bundled(name)
			if err != nil {
				return nil, err
			}
			if len(sc.Claims) > 0 {
				out = append(out, sc)
			}
		}
		return out, nil
	}
	var out []*scenario.Config
	for _, ref := range splitList(list) {
		sc, err := scenario.Resolve(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}
