// Command tracedoctor is the trace-validation front end: it runs the
// dataset invariant checker (internal/trace/check) over trace files,
// diffs two traces down to the first divergent field, and re-runs the
// repo's pipeline equivalence claims (internal/validate) as a self-test.
// Input files load through trace.ReadFile, so CSV and TBv1 — gzipped or
// not — all work unannounced.
//
// Usage:
//
//	tracedoctor -check [options] <trace>...
//	tracedoctor -diff <trace-a> <trace-b>
//	tracedoctor -selftest [-seeds 1,2,3] [-days 14] [-workers 8]
//	tracedoctor -write-corpus <dir>
//
// Modes:
//
//	-check     validate every invariant (monotone per-boot counters,
//	           SMART monotonicity, iteration ordering/alignment, ≤1
//	           sample per machine per iteration, session consistency,
//	           sample bounds, index agreement, response accounting) and
//	           print machine/iteration-addressed violations.
//	-diff      load both traces and report the first divergent field
//	           with coordinates, or "identical".
//	-write-corpus  materialise the checker's corrupted-fixture corpus
//	           (one trace per invariant class, plus clean.csv) into a
//	           directory — `make doctor` checks them and demands a
//	           non-zero exit on every corrupted one.
//	-selftest  run the differential validation suite per seed (serial vs
//	           -workers collection, CSV/TBv1 round-trips, legacy vs
//	           zero-alloc probe codec, serial vs parallel analysis),
//	           then write+reload+check each seed's trace in both CSV and
//	           TBv1 (gzipped) through real files — the `make doctor`
//	           entry point.
//
// Options:
//
//	-limit N        violations to print per trace (default 20; -1 = all)
//	-no-align       skip the period-grid alignment invariant
//	                (wall-clock traces drift off the grid)
//	-no-accounting  skip responded-count reconciliation (for merged or
//	                sliced traces)
//
// Exit status: 0 clean, 1 violations or divergences found, 2 usage or
// I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"winlab/internal/trace"
	"winlab/internal/trace/check"
	"winlab/internal/validate"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracedoctor:", err)
	os.Exit(2)
}

func main() {
	var (
		doCheck  = flag.Bool("check", false, "invariant-check the given trace files")
		doDiff   = flag.Bool("diff", false, "diff two traces to the first divergent field")
		selftest = flag.Bool("selftest", false, "run the differential validation suite over simulated seeds")
		seeds    = flag.String("seeds", "1,2,3", "comma-separated seeds for -selftest")
		days     = flag.Int("days", 14, "experiment length in days for -selftest")
		workers  = flag.Int("workers", 8, "parallel-arm width for -selftest")
		corpus   = flag.String("write-corpus", "", "write the corrupted-fixture corpus into this directory and exit")
		limit    = flag.Int("limit", 20, "violations to print per trace (-1 = all)")
		noAlign  = flag.Bool("no-align", false, "skip the period-grid alignment invariant")
		noAcct   = flag.Bool("no-accounting", false, "skip responded-count reconciliation")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracedoctor -check <trace>... | -diff <a> <b> | -selftest [-seeds 1,2,3]")
		flag.PrintDefaults()
	}
	flag.Parse()

	opts := check.Options{Limit: *limit, NoAlignment: *noAlign, NoAccounting: *noAcct}
	switch {
	case *doCheck:
		if flag.NArg() < 1 {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(checkFiles(flag.Args(), opts))
	case *doDiff:
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(diffFiles(flag.Arg(0), flag.Arg(1)))
	case *selftest:
		os.Exit(runSelftest(*seeds, *days, *workers, opts))
	case *corpus != "":
		os.Exit(writeCorpus(*corpus))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// checkFiles invariant-checks each trace; returns the process exit code.
func checkFiles(paths []string, opts check.Options) int {
	exit := 0
	for _, path := range paths {
		d, err := trace.ReadFile(path)
		if err != nil {
			fail(fmt.Errorf("reading %s: %w", path, err))
		}
		r := check.Check(d, opts)
		if r.OK() {
			fmt.Printf("%s: ok (%d samples, %d iterations, %d machines)\n",
				path, r.Samples, r.Iterations, r.Machines)
			continue
		}
		exit = 1
		fmt.Printf("%s: %d violation(s) over %d samples\n", path, r.Total, r.Samples)
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
		if r.Truncated() {
			fmt.Printf("  ... %d more (raise -limit to see them)\n", r.Total-len(r.Violations))
		}
	}
	return exit
}

// diffFiles loads two traces and reports the first divergent field.
func diffFiles(a, b string) int {
	da, err := trace.ReadFile(a)
	if err != nil {
		fail(fmt.Errorf("reading %s: %w", a, err))
	}
	db, err := trace.ReadFile(b)
	if err != nil {
		fail(fmt.Errorf("reading %s: %w", b, err))
	}
	if d := check.DiffDatasets(da, db); d != "" {
		fmt.Printf("%s vs %s: %s\n", a, b, d)
		return 1
	}
	fmt.Printf("%s vs %s: identical\n", a, b)
	return 0
}

// runSelftest runs the differential suite per seed, then pushes each
// seed's collected trace through real CSV and TBv1 files (gzipped) and
// re-checks the reload.
func runSelftest(seedList string, days, workers int, opts check.Options) int {
	seeds, err := parseSeeds(seedList)
	if err != nil {
		fail(err)
	}
	tmp, err := os.MkdirTemp("", "tracedoctor-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(tmp)

	exit := 0
	for _, seed := range seeds {
		fmt.Printf("seed %d: differential suite (%d days, %d workers)\n", seed, days, workers)
		fails := validate.Suite(validate.Config{Seed: seed, Days: days, Workers: workers})
		for _, f := range fails {
			exit = 1
			fmt.Printf("  FAIL %s\n", f)
		}
		if len(fails) > 0 {
			continue
		}
		// File-level round trips: the suite validated in-memory codecs;
		// this leg validates the file paths (extension routing, gzip).
		res, err := validate.Run(validate.Config{Seed: seed, Days: days})
		if err != nil {
			fail(err)
		}
		for _, name := range []string{"trace.csv.gz", "trace.tb.gz"} {
			path := filepath.Join(tmp, fmt.Sprintf("seed%d-%s", seed, name))
			if err := trace.WriteFile(path, res.Dataset); err != nil {
				fail(fmt.Errorf("writing %s: %w", path, err))
			}
			rd, err := trace.ReadFile(path)
			if err != nil {
				fail(fmt.Errorf("re-reading %s: %w", path, err))
			}
			if r := check.Check(rd, opts); !r.OK() {
				exit = 1
				fmt.Printf("  FAIL %s: %d violation(s), first: %s\n", name, r.Total, r.Violations[0])
				continue
			}
			fmt.Printf("  ok %s\n", name)
		}
	}
	if exit == 0 {
		fmt.Println("all seeds clean")
	}
	return exit
}

// writeCorpus materialises the checker's fixture corpus: clean.csv plus
// one corrupted trace per serialisable invariant fixture.
func writeCorpus(dir string) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	cleanPath := filepath.Join(dir, "clean.csv")
	if err := trace.WriteFile(cleanPath, check.CleanFixture()); err != nil {
		fail(fmt.Errorf("writing %s: %w", cleanPath, err))
	}
	n := 0
	for _, fx := range check.CorruptedFixtures() {
		if !fx.Serializable {
			continue
		}
		path := filepath.Join(dir, fx.Name+".csv")
		if err := trace.WriteFile(path, fx.Dataset); err != nil {
			fail(fmt.Errorf("writing %s: %w", path, err))
		}
		n++
	}
	fmt.Printf("wrote clean.csv and %d corrupted fixtures to %s\n", n, dir)
	return 0
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return out, nil
}
