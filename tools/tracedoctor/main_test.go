package main

import (
	"os"
	"path/filepath"
	"testing"

	"winlab/internal/trace"
	"winlab/internal/trace/check"
)

// TestCheckFilesCorpus writes the fixture corpus to disk and asserts
// checkFiles returns non-zero for every corrupted trace and zero for
// the clean one — the contract `make doctor`'s negative leg relies on.
func TestCheckFilesCorpus(t *testing.T) {
	dir := t.TempDir()
	if got := writeCorpus(dir); got != 0 {
		t.Fatalf("writeCorpus = %d", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 13 { // clean + ≥12 corrupted fixtures
		t.Fatalf("corpus holds %d files", len(entries))
	}
	opts := check.Options{Limit: 5}
	if got := checkFiles([]string{filepath.Join(dir, "clean.csv")}, opts); got != 0 {
		t.Errorf("checkFiles(clean.csv) = %d, want 0", got)
	}
	for _, e := range entries {
		if e.Name() == "clean.csv" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if got := checkFiles([]string{path}, opts); got != 1 {
			t.Errorf("checkFiles(%s) = %d, want 1", e.Name(), got)
		}
	}
}

func TestDiffFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.tb.gz") // other format: diff is format-agnostic
	ds := check.CleanFixture()
	if err := trace.WriteFile(a, ds); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteFile(b, ds); err != nil {
		t.Fatal(err)
	}
	if got := diffFiles(a, b); got != 0 {
		t.Errorf("diffFiles(identical across formats) = %d, want 0", got)
	}
	ds.Samples[0].Uptime += 1e9
	if err := trace.WriteFile(b, ds); err != nil {
		t.Fatal(err)
	}
	if got := diffFiles(a, b); got != 1 {
		t.Errorf("diffFiles(divergent) = %d, want 1", got)
	}
}

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("parseSeeds = %v, %v", got, err)
	}
	if _, err := parseSeeds(""); err == nil {
		t.Error("parseSeeds(\"\") accepted")
	}
	if _, err := parseSeeds("x"); err == nil {
		t.Error("parseSeeds(\"x\") accepted")
	}
}
