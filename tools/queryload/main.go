// Command queryload is the load harness for the query service: it
// drives the /api/* cached-aggregate endpoints — in-process against a
// freshly built handler, or over HTTP against a running queryd — and
// records the latency/throughput curve as JSON.
//
// Modes:
//
//   - Closed loop (default): -conns workers issue requests back-to-back.
//     Throughput is what the server sustains; latency is per-request.
//   - Open loop (-rate R): workers pace requests to an aggregate target
//     of R req/s regardless of completions, the arrival model that
//     exposes queueing collapse. Requests that cannot start on schedule
//     are counted late.
//   - Saturation probe (-saturate): runs a baseline phase against a
//     generously gated handler, then an overload phase with many more
//     workers than execution slots. Passes when the p99 of *served*
//     (200) responses under overload stays within 2× the baseline p99 —
//     the load-shedding guarantee: excess load is refused (503), not
//     queued into everyone's tail.
//
// The -floor flag makes the run a gate: exit 1 when the best closed-loop
// endpoint throughput is below the floor (the CI smoke floor).
//
// Usage:
//
//	queryload [-inproc] [-sim-days 7] [-seed 1] [-url http://host:port]
//	          [-endpoints epoch,summary,availability] [-conns N]
//	          [-duration 2s] [-rate 0] [-saturate] [-floor 0]
//	          [-o BENCH_PR9.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/core"
	"winlab/internal/query"
)

// Env mirrors tools/benchjson: absolute throughput numbers are
// meaningless without the machine they were measured on.
type Env struct {
	GoMaxProcs int    `json:"go_max_procs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
}

// Run is one measured load phase.
type Run struct {
	Mode        string  `json:"mode"` // inproc | http
	Endpoint    string  `json:"endpoint"`
	Conns       int     `json:"conns"`
	RateTarget  float64 `json:"rate_target,omitempty"` // open loop only
	DurationSec float64 `json:"duration_sec"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"` // 503s
	Errors      int64   `json:"errors"`
	Late        int64   `json:"late,omitempty"` // open loop: behind schedule
	RPS         float64 `json:"rps"`
	P50Us       float64 `json:"p50_us"`
	P90Us       float64 `json:"p90_us"`
	P99Us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`
}

// Saturation is the shedding probe's verdict.
type Saturation struct {
	BaselineP99Us float64 `json:"baseline_p99_us"`
	OverloadP99Us float64 `json:"overload_p99_us"`
	ShedRate      float64 `json:"shed_rate"`
	Held          bool    `json:"held"` // overload p99 ≤ 2× baseline p99
}

// Output is the committed BENCH document.
type Output struct {
	Env        Env         `json:"env"`
	Runs       []Run       `json:"runs"`
	Saturation *Saturation `json:"saturation,omitempty"`
}

// fakeWriter is the in-process response sink: header map reused, body
// discarded, status captured.
type fakeWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *fakeWriter) Header() http.Header { return w.h }
func (w *fakeWriter) WriteHeader(c int)   { w.status = c }
func (w *fakeWriter) Write(b []byte) (int, error) {
	w.n += int64(len(b))
	return len(b), nil
}

// sampleEvery bounds latency memory: record one in K latencies (counts
// stay exact).
const sampleEvery = 8

type workerStats struct {
	requests, ok, shed, errs, late int64
	lat                            []int64 // sampled, ns
}

func percentile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e3 // µs
}

func summarize(mode, endpoint string, conns int, rate float64, dur time.Duration, ws []workerStats) Run {
	r := Run{Mode: mode, Endpoint: endpoint, Conns: conns, RateTarget: rate, DurationSec: dur.Seconds()}
	var all []int64
	for _, w := range ws {
		r.Requests += w.requests
		r.OK += w.ok
		r.Shed += w.shed
		r.Errors += w.errs
		r.Late += w.late
		all = append(all, w.lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	r.RPS = float64(r.Requests) / dur.Seconds()
	r.P50Us = percentile(all, 0.50)
	r.P90Us = percentile(all, 0.90)
	r.P99Us = percentile(all, 0.99)
	if n := len(all); n > 0 {
		r.MaxUs = float64(all[n-1]) / 1e3
	}
	return r
}

// driveInproc runs a closed- or open-loop phase against the handler.
// okLat, when non-nil, additionally collects every sampled latency of a
// 200 response (the saturation probe compares served-only tails).
func driveInproc(h http.Handler, path string, conns int, rate float64, dur time.Duration, okLat *[]int64) []workerStats {
	var stop atomic.Bool
	ws := make([]workerStats, conns)
	var okMu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", path, nil)
			w := &fakeWriter{h: make(http.Header, 4)}
			st := &ws[c]
			st.lat = make([]int64, 0, 1<<18)
			var interval time.Duration
			var next time.Time
			if rate > 0 {
				interval = time.Duration(float64(conns) / rate * 1e9)
				next = time.Now()
			}
			var served []int64
			for !stop.Load() {
				if rate > 0 {
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					} else {
						st.late++
					}
				}
				w.status = 0
				t := time.Now()
				h.ServeHTTP(w, req)
				el := time.Since(t).Nanoseconds()
				st.requests++
				ok := w.status == 0 || w.status == http.StatusOK
				switch {
				case ok:
					st.ok++
				case w.status == http.StatusServiceUnavailable:
					st.shed++
				default:
					st.errs++
				}
				if st.requests%sampleEvery == 0 && len(st.lat) < cap(st.lat) {
					st.lat = append(st.lat, el)
					if ok && okLat != nil {
						served = append(served, el)
					}
				}
			}
			if okLat != nil && len(served) > 0 {
				okMu.Lock()
				*okLat = append(*okLat, served...)
				okMu.Unlock()
			}
		}(c)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return ws
}

// driveHTTP runs a closed-loop phase against a live server.
func driveHTTP(base, path string, conns int, dur time.Duration) []workerStats {
	var stop atomic.Bool
	ws := make([]workerStats, conns)
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
			st := &ws[c]
			st.lat = make([]int64, 0, 1<<16)
			url := base + path
			for !stop.Load() {
				t := time.Now()
				resp, err := client.Get(url)
				el := time.Since(t).Nanoseconds()
				st.requests++
				if err != nil {
					st.errs++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					st.ok++
				case http.StatusServiceUnavailable:
					st.shed++
				default:
					st.errs++
				}
				if st.requests%sampleEvery == 0 && len(st.lat) < cap(st.lat) {
					st.lat = append(st.lat, el)
				}
			}
		}(c)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return ws
}

func p99(ns []int64) float64 {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return percentile(ns, 0.99)
}

func main() {
	var (
		inproc    = flag.Bool("inproc", true, "drive the handler in-process (false requires -url)")
		urlBase   = flag.String("url", "", "drive a running queryd at this base URL instead of in-process")
		simDays   = flag.Int("sim-days", 7, "in-process: days of simulated trace to serve")
		seed      = flag.Int64("seed", 1, "in-process: simulation seed")
		endpoints = flag.String("endpoints", "epoch,summary,availability", "comma-separated endpoint names to drive")
		conns     = flag.Int("conns", 2*runtime.GOMAXPROCS(0), "concurrent load workers")
		duration  = flag.Duration("duration", 2*time.Second, "measurement window per endpoint")
		rate      = flag.Float64("rate", 0, "open-loop aggregate request rate (0 = closed loop)")
		saturate  = flag.Bool("saturate", false, "also run the shedding probe (baseline vs overload p99)")
		floor     = flag.Float64("floor", 0, "exit 1 unless the best closed-loop rps reaches this floor")
		out       = flag.String("o", "", "write the JSON curve to this file")
	)
	flag.Parse()

	doc := Output{Env: Env{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
	}}

	var handler http.Handler
	var store *query.Store
	mode := "http"
	if *urlBase == "" {
		if !*inproc {
			fmt.Fprintln(os.Stderr, "queryload: need -inproc or -url")
			os.Exit(1)
		}
		mode = "inproc"
		fmt.Fprintf(os.Stderr, "queryload: simulating %d days (seed %d)...\n", *simDays, *seed)
		cfg := core.DefaultConfig(*seed)
		cfg.Days = *simDays
		res, err := core.RunExperiment(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queryload:", err)
			os.Exit(1)
		}
		store = query.NewStore(analysis.Options{})
		store.Publish(res.Dataset)
		handler = query.NewHandler(query.Config{Store: store})
		warm(handler)
	}

	var best float64
	for _, name := range strings.Split(*endpoints, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		path := "/api/" + name
		var ws []workerStats
		if mode == "inproc" {
			ws = driveInproc(handler, path, *conns, *rate, *duration, nil)
		} else {
			ws = driveHTTP(strings.TrimRight(*urlBase, "/"), path, *conns, *duration)
		}
		r := summarize(mode, name, *conns, *rate, *duration, ws)
		doc.Runs = append(doc.Runs, r)
		if *rate == 0 && r.RPS > best {
			best = r.RPS
		}
		fmt.Fprintf(os.Stderr, "queryload: %-14s %9.0f req/s  p50 %6.1fµs  p99 %7.1fµs  (%d reqs, %d shed, %d errors)\n",
			name, r.RPS, r.P50Us, r.P99Us, r.Requests, r.Shed, r.Errors)
	}

	if *saturate {
		if mode != "inproc" {
			fmt.Fprintln(os.Stderr, "queryload: -saturate is in-process only")
			os.Exit(1)
		}
		doc.Saturation = runSaturation(store, *duration)
		s := doc.Saturation
		verdict := "HELD"
		if !s.Held {
			verdict = "BLEW"
		}
		fmt.Fprintf(os.Stderr, "queryload: saturation: baseline p99 %.1fµs, overload p99 %.1fµs (%.0f%% shed) → %s\n",
			s.BaselineP99Us, s.OverloadP99Us, 100*s.ShedRate, verdict)
	}

	if *out != "" {
		js, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "queryload:", err)
			os.Exit(1)
		}
		js = append(js, '\n')
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "queryload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "queryload: curve written to %s\n", *out)
	}

	if doc.Saturation != nil && !doc.Saturation.Held {
		fmt.Fprintln(os.Stderr, "queryload: FAIL: shedding did not hold the served p99")
		os.Exit(1)
	}
	if *floor > 0 {
		if best < *floor {
			fmt.Fprintf(os.Stderr, "queryload: FAIL: best throughput %.0f req/s below floor %.0f\n", best, *floor)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "queryload: floor ok (%.0f ≥ %.0f req/s)\n", best, *floor)
	}
}

// warm touches every cachable endpoint once so measurement starts on the
// cache-hit path (the cold analysis pass is a per-epoch cost, not a
// per-request one).
func warm(h http.Handler) {
	for _, p := range []string{
		"/api/epoch", "/api/summary", "/api/availability", "/api/labs",
		"/api/machines", "/api/weekly", "/api/equivalence", "/api/uptimes", "/api/heatmap",
	} {
		w := &fakeWriter{h: make(http.Header, 4)}
		h.ServeHTTP(w, httptest.NewRequest("GET", p, nil))
	}
}

// satQueueTimeout is the overload gate's queue deadline. Collapse means
// served tails growing toward this scale (requests riding the queue);
// the verdict therefore allows the overload p99 to exceed 2× a sub-µs
// baseline by scheduler jitter, but never to approach the deadline.
const satQueueTimeout = 5 * time.Millisecond

// runSaturation measures the served-response tail with ample capacity,
// then under an offered load far beyond the gate's slots, and checks the
// shedding guarantee.
func runSaturation(store *query.Store, dur time.Duration) *Saturation {
	procs := runtime.GOMAXPROCS(0)
	baseConns := procs
	overConns := 16 * procs

	baseline := query.NewHandler(query.Config{
		Store: store,
		Gate:  query.NewGate(2*procs, 4*procs, satQueueTimeout),
	})
	warm(baseline)
	var baseLat []int64
	driveInproc(baseline, "/api/summary", baseConns, 0, dur, &baseLat)

	overload := query.NewHandler(query.Config{
		Store: store,
		Gate:  query.NewGate(2*procs, 4*procs, satQueueTimeout),
	})
	warm(overload)
	var overLat []int64
	ws := driveInproc(overload, "/api/summary", overConns, 0, dur, &overLat)

	var reqs, shed int64
	for _, w := range ws {
		reqs += w.requests
		shed += w.shed
	}
	s := &Saturation{
		BaselineP99Us: p99(baseLat),
		OverloadP99Us: p99(overLat),
	}
	if reqs > 0 {
		s.ShedRate = float64(shed) / float64(reqs)
	}
	// Pass when the served tail stays within 2× the pre-saturation tail,
	// with an absolute floor of 1/20 of the queue deadline: on sub-µs
	// baselines the 2× band is narrower than one scheduler wakeup, and
	// the failure being guarded against is deadline-scale queueing.
	band := 2 * s.BaselineP99Us
	if floor := float64(satQueueTimeout.Microseconds()) / 20; band < floor {
		band = floor
	}
	s.Held = s.OverloadP99Us <= band
	return s
}
