// Command anomalybench is the precision/recall harness for the
// streaming anomaly detectors: for each seed it runs a shortened
// paper-fleet experiment with the labeled injection scenarios
// (experiment.DefaultAnomalyScenarios), feeds the live sample stream
// through anomaly.Detectors, scores the emitted events against the
// injection schedule, and enforces per-detector floors. CI runs it via
// `make anomaly`; a non-zero exit means a detector regressed below its
// floor on a fixed seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"winlab/internal/anomaly"
	"winlab/internal/experiment"
)

func main() {
	var (
		seedsFlag    = flag.String("seeds", "1,2,3", "comma-separated experiment seeds")
		days         = flag.Int("days", 12, "experiment length in days (≥ 12: week 1 warms baselines)")
		slack        = flag.Int("slack", 8, "label-window slack, iterations")
		minPrecision = flag.Float64("min-precision", 0.9, "per-detector precision floor")
		minRecall    = flag.Float64("min-recall", 0.8, "per-detector recall floor")
		verbose      = flag.Bool("v", false, "print per-seed tables and events")
	)
	flag.Parse()

	var seeds []int64
	for _, f := range strings.Split(*seedsFlag, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "anomalybench: bad seed %q: %v\n", f, err)
			os.Exit(2)
		}
		seeds = append(seeds, n)
	}
	if len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "anomalybench: no seeds")
		os.Exit(2)
	}

	var runs [][]anomaly.KindScore
	for _, seed := range seeds {
		scores, events, labels, err := runSeed(seed, *days, *slack)
		if err != nil {
			fmt.Fprintf(os.Stderr, "anomalybench: seed %d: %v\n", seed, err)
			os.Exit(1)
		}
		runs = append(runs, scores)
		if *verbose {
			fmt.Printf("== seed %d: %d events, %d labels ==\n%s", seed, len(events), len(labels), anomaly.FormatScores(scores))
			for _, e := range events {
				fmt.Printf("  %s sev=%s machine=%q lab=%q iters=[%d,%d] score=%.2f %s\n",
					e.Kind, e.Severity, e.Machine, e.Lab, e.FirstIter, e.LastIter, e.Score, e.Detail)
			}
		}
	}

	agg := anomaly.MergeScores(runs...)
	fmt.Printf("aggregate over seeds %s (%d days, slack %d):\n%s",
		*seedsFlag, *days, *slack, anomaly.FormatScores(agg))

	failed := false
	for _, s := range agg {
		if s.Precision() < *minPrecision {
			fmt.Printf("FAIL %s: precision %.3f < %.3f\n", s.Kind, s.Precision(), *minPrecision)
			failed = true
		}
		if s.Recall() < *minRecall {
			fmt.Printf("FAIL %s: recall %.3f < %.3f\n", s.Kind, s.Recall(), *minRecall)
			failed = true
		}
		if s.Labels == 0 {
			fmt.Printf("FAIL %s: no ground-truth labels — scenario set does not exercise this detector\n", s.Kind)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("OK: all detectors ≥ %.2f precision, ≥ %.2f recall\n", *minPrecision, *minRecall)
}

func runSeed(seed int64, days, slack int) ([]anomaly.KindScore, []anomaly.Event, []anomaly.Label, error) {
	cfg := experiment.Default(seed)
	cfg.Days = days
	// The harness measures detector skill against injected anomalies, so
	// the coordinator itself runs clean: random outages would puncture
	// every lab's availability at once and the labels wouldn't cover it.
	cfg.OutageFraction = 0
	inject, labels, err := experiment.DefaultAnomalyScenarios(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg.Inject = inject
	det := anomaly.New(anomaly.DefaultConfig(), nil)
	cfg.Detect = det
	if _, err := experiment.Run(cfg); err != nil {
		return nil, nil, nil, err
	}
	events := det.Ring().Snapshot()
	return anomaly.Score(events, labels, slack), events, labels, nil
}
