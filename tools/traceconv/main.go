// Command traceconv converts trace files between the CSV text format and
// the TBv1 binary format (internal/trace). The input format is sniffed
// from the file content — CSV, TBv1, gzipped or not, all load the same
// way — and the output format follows the destination extension
// (".tb"/".tbv1" → TBv1, else CSV; a trailing ".gz" adds gzip) unless
// -format forces it.
//
// It prints the before/after file sizes so the compression win of the
// binary format is visible at a glance:
//
//	$ traceconv trace.csv trace.tb
//	traceconv: trace.csv (89.6 MB) -> trace.tb (25.9 MB), 28.9% of input
//
// Usage:
//
//	traceconv [-format auto|csv|tbv1] [-check] <in> <out>
//
// With -check the tool re-reads the file it just wrote and verifies the
// dataset survived the conversion unchanged (machine, iteration and
// sample counts, experiment bounds), turning a conversion into a
// self-validating migration step.
package main

import (
	"flag"
	"fmt"
	"os"

	"winlab/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}

// human renders a byte count with a binary-ish human suffix.
func human(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func main() {
	formatFlag := flag.String("format", "auto", "output format: auto (by extension), csv, or tbv1")
	check := flag.Bool("check", false, "re-read the output and verify the dataset round-tripped")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: traceconv [-format auto|csv|tbv1] [-check] <in> <out>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	in, out := flag.Arg(0), flag.Arg(1)

	format, err := trace.ParseFormat(*formatFlag)
	if err != nil {
		fail(err)
	}
	d, err := trace.ReadFile(in)
	if err != nil {
		fail(fmt.Errorf("reading %s: %w", in, err))
	}
	if err := trace.WriteFileFormat(out, d, format); err != nil {
		fail(fmt.Errorf("writing %s: %w", out, err))
	}

	if *check {
		rd, err := trace.ReadFile(out)
		if err != nil {
			fail(fmt.Errorf("check: re-reading %s: %w", out, err))
		}
		switch {
		case len(rd.Machines) != len(d.Machines):
			fail(fmt.Errorf("check: machines %d != %d", len(rd.Machines), len(d.Machines)))
		case len(rd.Iterations) != len(d.Iterations):
			fail(fmt.Errorf("check: iterations %d != %d", len(rd.Iterations), len(d.Iterations)))
		case len(rd.Samples) != len(d.Samples):
			fail(fmt.Errorf("check: samples %d != %d", len(rd.Samples), len(d.Samples)))
		case !rd.Start.Equal(d.Start) || !rd.End.Equal(d.End) || rd.Period != d.Period:
			fail(fmt.Errorf("check: experiment bounds changed"))
		}
	}

	inInfo, err := os.Stat(in)
	if err != nil {
		fail(err)
	}
	outInfo, err := os.Stat(out)
	if err != nil {
		fail(err)
	}
	pct := 0.0
	if inInfo.Size() > 0 {
		pct = 100 * float64(outInfo.Size()) / float64(inInfo.Size())
	}
	fmt.Fprintf(os.Stderr, "traceconv: %s (%s) -> %s (%s), %.1f%% of input\n",
		in, human(inInfo.Size()), out, human(outInfo.Size()), pct)
}
