// Command traceconv converts trace files between the CSV text format and
// the TBv1 binary format (internal/trace). The input format is sniffed
// from the file content — CSV, TBv1, gzipped or not, all load the same
// way — and the output format follows the destination extension
// (".tb"/".tbv1" → TBv1, else CSV; a trailing ".gz" adds gzip) unless
// -format forces it.
//
// It prints the before/after file sizes so the compression win of the
// binary format is visible at a glance:
//
//	$ traceconv trace.csv trace.tb
//	traceconv: trace.csv (89.6 MB) -> trace.tb (25.9 MB), 28.9% of input
//
// Usage:
//
//	traceconv [-format auto|csv|tbv1] [-check] <in> <out>
//	traceconv -merge [-check] <run.manifest.json> <out.tb[.gz]>
//
// With -check the tool re-reads the file it just wrote and verifies the
// dataset survived the conversion unchanged (machine, iteration and
// sample counts, experiment bounds), turning a conversion into a
// self-validating migration step.
//
// With -merge the input is a segment manifest from a sharded collection
// run (labmon -shards -segments, or the ddcd shards); the segments are
// compacted into one canonical TBv1 trace with the streaming k-way
// merger — constant memory, no shard is ever materialised — so the tool
// handles grid-scale segment sets. The output is always TBv1 (".gz"
// adds gzip); merging to CSV is refused.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"winlab/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceconv:", err)
	os.Exit(1)
}

// human renders a byte count with a binary-ish human suffix.
func human(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func main() {
	formatFlag := flag.String("format", "auto", "output format: auto (by extension), csv, or tbv1")
	check := flag.Bool("check", false, "re-read the output and verify the dataset round-tripped")
	merge := flag.Bool("merge", false, "treat <in> as a segment manifest and stream-compact its segments into <out> (TBv1)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: traceconv [-format auto|csv|tbv1] [-check] <in> <out>")
		fmt.Fprintln(os.Stderr, "       traceconv -merge [-check] <run.manifest.json> <out.tb[.gz]>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	in, out := flag.Arg(0), flag.Arg(1)

	format, err := trace.ParseFormat(*formatFlag)
	if err != nil {
		fail(err)
	}
	if *merge {
		mergeSegments(in, out, format, *check)
		return
	}
	d, err := trace.ReadFile(in)
	if err != nil {
		fail(fmt.Errorf("reading %s: %w", in, err))
	}
	if err := trace.WriteFileFormat(out, d, format); err != nil {
		fail(fmt.Errorf("writing %s: %w", out, err))
	}

	if *check {
		rd, err := trace.ReadFile(out)
		if err != nil {
			fail(fmt.Errorf("check: re-reading %s: %w", out, err))
		}
		switch {
		case len(rd.Machines) != len(d.Machines):
			fail(fmt.Errorf("check: machines %d != %d", len(rd.Machines), len(d.Machines)))
		case len(rd.Iterations) != len(d.Iterations):
			fail(fmt.Errorf("check: iterations %d != %d", len(rd.Iterations), len(d.Iterations)))
		case len(rd.Samples) != len(d.Samples):
			fail(fmt.Errorf("check: samples %d != %d", len(rd.Samples), len(d.Samples)))
		case !rd.Start.Equal(d.Start) || !rd.End.Equal(d.End) || rd.Period != d.Period:
			fail(fmt.Errorf("check: experiment bounds changed"))
		}
	}

	inInfo, err := os.Stat(in)
	if err != nil {
		fail(err)
	}
	outInfo, err := os.Stat(out)
	if err != nil {
		fail(err)
	}
	pct := 0.0
	if inInfo.Size() > 0 {
		pct = 100 * float64(outInfo.Size()) / float64(inInfo.Size())
	}
	fmt.Fprintf(os.Stderr, "traceconv: %s (%s) -> %s (%s), %.1f%% of input\n",
		in, human(inInfo.Size()), out, human(outInfo.Size()), pct)
}

// mergeSegments stream-compacts the manifest's segment files into out.
func mergeSegments(in, out string, format trace.Format, check bool) {
	if format == trace.FormatCSV {
		fail(fmt.Errorf("-merge writes TBv1 (the compactor streams the binary format); drop -format csv"))
	}
	m, err := trace.ReadManifest(in)
	if err != nil {
		fail(fmt.Errorf("reading %s: %w", in, err))
	}
	f, err := os.Create(out)
	if err != nil {
		fail(err)
	}
	var w interface {
		Write([]byte) (int, error)
	} = f
	var gz *gzip.Writer
	if strings.HasSuffix(out, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := trace.MergeSegments(w, m, filepath.Dir(in)); err != nil {
		f.Close()
		os.Remove(out)
		fail(fmt.Errorf("merging %s: %w", in, err))
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			fail(err)
		}
	}
	if err := f.Close(); err != nil {
		fail(err)
	}

	if check {
		rd, err := trace.ReadFile(out)
		if err != nil {
			fail(fmt.Errorf("check: re-reading %s: %w", out, err))
		}
		var samples uint64
		for _, seg := range m.Segments {
			samples += seg.Samples
		}
		switch {
		case uint64(len(rd.Samples)) != samples:
			fail(fmt.Errorf("check: samples %d != manifest total %d", len(rd.Samples), samples))
		case !rd.Start.Equal(m.Start) || !rd.End.Equal(m.End) || rd.Period != m.Period():
			fail(fmt.Errorf("check: experiment bounds changed"))
		}
	}

	var inSize int64
	for _, p := range m.SegmentPaths(filepath.Dir(in)) {
		if fi, err := os.Stat(p); err == nil {
			inSize += fi.Size()
		}
	}
	outInfo, err := os.Stat(out)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "traceconv: %d segments (%s) -> %s (%s)\n",
		len(m.Segments), human(inSize), out, human(outInfo.Size()))
}
