// Command benchjson converts `go test -bench -benchmem` text output into
// a stable JSON summary: an "env" block recording the machine the run
// happened on (GOMAXPROCS, CPU count, GOOS/GOARCH, Go version) plus a
// "benchmarks" map of name → ns/op, B/op, allocs/op. It passes the raw
// benchmark text through to stdout unchanged (so it can sit in a pipe
// without hiding the run) and writes the JSON to the file named by -o.
//
// Usage:
//
//	go test -bench . -benchmem | go run ./tools/benchjson -o BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's headline numbers.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Env records the machine a benchmark run happened on. Absolute numbers
// are meaningless without it: a 1-core CI runner and a 16-core
// workstation both commit BENCH files.
type Env struct {
	GoMaxProcs int    `json:"go_max_procs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
}

// Output is the emitted document.
type Output struct {
	Env        Env              `json:"env"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkTable2-8   44   31208388 ns/op   11069864 B/op   1788 allocs/op   97.9 uptime_%
//
// The -N GOMAXPROCS suffix is stripped so results compare across hosts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	out := flag.String("o", "", "write the JSON summary to this file (default: stdout only, after the passthrough)")
	flag.Parse()

	entries := map[string]Entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // passthrough
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		// Scan the tail for B/op and allocs/op (custom metrics are ignored).
		tail := strings.Fields(m[4])
		for i := 0; i+1 < len(tail); i++ {
			switch tail[i+1] {
			case "B/op":
				e.BytesPerOp, _ = strconv.ParseInt(tail[i], 10, 64)
			case "allocs/op":
				e.AllocsPerOp, _ = strconv.ParseInt(tail[i], 10, 64)
			}
		}
		entries[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	doc := Output{
		Env: Env{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
		},
		Benchmarks: entries, // json sorts map keys on marshal
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if *out == "" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks → %s\n", len(entries), *out)
}
