// Command ddcd demonstrates the DDC collector over a real network: it
// boots a small simulated fleet, exposes every machine through a TCP probe
// agent on localhost, then runs the coordinator against those agents and
// prints the collected main-results table.
//
// The fleet is driven in accelerated wall time: every real second of
// collection advances the simulated fleet by -accel seconds, so a few
// seconds of wall clock cover days of simulated monitoring.
//
// The hardened-collector knobs are exposed as flags: -retries/-probe-timeout
// enable bounded retries with a per-probe deadline, -breaker-k/-breaker-every
// configure the per-machine circuit breaker, and -failp injects seeded
// transient probe failures so the retry machinery can be watched working.
//
// Observability: -metrics-addr serves live telemetry over HTTP while the
// collection runs — Prometheus text exposition on /metrics, a JSON
// snapshot on /vars, recent probe spans on /spans, recent anomaly events
// on /events, /healthz, and the net/http/pprof endpoints under
// /debug/pprof/. -trace-out streams every probe span (machine,
// iteration, attempt, latency, outcome) to a JSONL file for offline
// analysis; -events-out does the same for anomaly events. The streaming
// anomaly detectors tap the sink's commit path whenever any of
// -metrics-addr or -events-out is set.
//
// Usage:
//
//	ddcd [-machines 8] [-iters 20] [-period 100ms] [-accel 9000]
//	     [-workers 1] [-shards 1] [-retries 0] [-probe-timeout 0] [-failp 0]
//	     [-breaker-k 0] [-breaker-every 4]
//	     [-metrics-addr 127.0.0.1:9090] [-trace-out spans.jsonl]
//	     [-events-out events.jsonl]
//
// With -shards N the fleet is partitioned across N coordinators running
// concurrently, each collecting into its own sink over the shared TCP
// transport. Wall shards run on real clocks and do not share an
// iteration clock, so their traces merge with trace.Merge (iterations
// renumbered chronologically) — unlike the simulator's ShardedCollector,
// whose shards share one scheduling chain and merge sample-identically
// via MergeSharded.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/anomaly"
	"winlab/internal/behavior"
	"winlab/internal/core"
	"winlab/internal/ddc"
	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/query"
	"winlab/internal/report"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
	"winlab/internal/telemetry/httpx"
	"winlab/internal/trace"
)

// warpedFleet drives a simulated fleet forward in accelerated wall time
// and serves snapshots at the current simulated instant.
type warpedFleet struct {
	mu    sync.Mutex
	eng   *sim.Engine
	fleet *lab.Fleet
	base  time.Time // wall-clock anchor
	accel float64
	start time.Time // simulated anchor
}

// now maps wall time to simulated time.
func (wf *warpedFleet) now() time.Time {
	return wf.start.Add(time.Duration(float64(time.Since(wf.base)) * wf.accel))
}

// Snapshot implements ddc.StateSource.
func (wf *warpedFleet) Snapshot(id string, _ time.Time) (machine.Snapshot, bool) {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	at := wf.now()
	wf.eng.RunUntil(at) // advance the behaviour model to "now"
	m := wf.fleet.Get(id)
	if m == nil {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(at)
}

func main() {
	var (
		nMach     = flag.Int("machines", 8, "number of simulated machines (one lab)")
		iters     = flag.Int("iters", 20, "collector iterations")
		period    = flag.Duration("period", 100*time.Millisecond, "wall-clock collection period")
		accel     = flag.Float64("accel", 9000, "simulated seconds per wall second")
		seed      = flag.Int64("seed", 1, "seed")
		workers   = flag.Int("workers", 1, "concurrent probes per iteration")
		shards    = flag.Int("shards", 1, "partition the fleet across N concurrent coordinators, one sink each (merged for the report)")
		retries   = flag.Int("retries", 0, "extra probe attempts per machine per iteration")
		ptimeout  = flag.Duration("probe-timeout", 0, "per-probe deadline (0 = executor default)")
		failp     = flag.Float64("failp", 0, "injected transient probe-failure probability")
		breakerK  = flag.Int("breaker-k", 0, "consecutive failures that open the circuit breaker (0 = off)")
		breakerN  = flag.Int("breaker-every", 4, "open-breaker probe cadence in iterations")
		metrics   = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /vars, /spans, /events, /healthz, /debug/pprof/) on this address")
		traceOut  = flag.String("trace-out", "", "stream probe spans to this JSONL file")
		eventsOut = flag.String("events-out", "", "stream anomaly events to this JSONL file")
		queryAddr = flag.String("query-addr", "", "serve the collected trace on the snapshot query API (/api/*) after the run")
		queryHold = flag.Duration("query-hold", 0, "keep the query server up this long after the table (0 = exit immediately)")
	)
	flag.Parse()

	// Observability: one registry feeds the collector, the TCP transport,
	// the agents and the sink; -metrics-addr exposes it live.
	var reg *telemetry.Registry
	if *metrics != "" || *traceOut != "" || *eventsOut != "" {
		reg = telemetry.NewRegistry()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		reg.Spans().SetWriter(bw)
		defer func() {
			if err := bw.Flush(); err == nil {
				err = f.Close()
				if err == nil {
					fmt.Fprintf(os.Stderr, "ddcd: %d spans written to %s\n", reg.Spans().Total(), *traceOut)
				}
			}
			if werr := reg.Spans().WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "ddcd: span stream error:", werr)
			}
		}()
	}
	// The anomaly detectors ride along whenever something can observe
	// them: the /events endpoint, the JSONL stream, or /metrics counters.
	var det *anomaly.Detectors
	if reg != nil {
		det = anomaly.New(anomaly.DefaultConfig(), reg)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		det.Ring().SetWriter(bw)
		defer func() {
			if err := bw.Flush(); err == nil {
				err = f.Close()
				if err == nil {
					fmt.Fprintf(os.Stderr, "ddcd: %d anomaly events written to %s\n", det.Ring().Total(), *eventsOut)
				}
			}
			if werr := det.Ring().WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "ddcd: event stream error:", werr)
			}
		}()
	}
	if *metrics != "" {
		srv, err := httpx.ServeEvents(*metrics, reg, det.Ring())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ddcd: telemetry on %s/metrics (also /vars, /spans, /events, /healthz, /debug/pprof/)\n", srv.URL())
	}

	specs := []lab.Spec{{
		Name: "L01", Machines: *nMach, CPUModel: "Intel Pentium 4", CPUGHz: 2.4,
		RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1, BaseImgGB: 20,
	}}
	fleet := lab.Build(specs, *seed, lab.DefaultDiskLife())
	// Start mid-morning on a Monday so the accelerated demo window covers
	// live classroom hours rather than the closed night.
	start := core.DefaultConfig(*seed).Start.Add(10 * time.Hour)
	eng := sim.New(start)
	model := behavior.NewModel(behavior.DefaultConfig(*seed), fleet)
	model.Install(eng, start, start.AddDate(0, 0, 365))

	wf := &warpedFleet{eng: eng, fleet: fleet, base: time.Now(), accel: *accel, start: start}

	// One TCP agent per machine, like one psexec endpoint per host.
	exec := ddc.NewTCPExecutor()
	exec.SetTelemetry(reg)
	var ids []string
	var infos []trace.MachineInfo
	var agents []*ddc.Agent
	for _, m := range fleet.Machines {
		agent := &ddc.Agent{Source: wf, Telemetry: reg}
		addr, err := agent.Listen("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		agents = append(agents, agent)
		exec.Register(m.ID, addr)
		ids = append(ids, m.ID)
		infos = append(infos, trace.MachineInfo{
			ID: m.ID, Lab: m.Lab, RAMMB: m.HW.RAMMB, DiskGB: m.HW.DiskGB,
			IntIndex: m.HW.IntIndex, FPIndex: m.HW.FPIndex,
		})
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()

	// Sample timestamps live in simulated time, so the dataset's period is
	// the wall period scaled by the acceleration factor.
	simPeriod := time.Duration(float64(*period) * *accel)
	simSpan := time.Duration(*iters) * simPeriod
	if det != nil {
		det.SetMachines(infos)
	}

	// Optional fault injection between the coordinator and the TCP path,
	// so the retry/breaker machinery can be demonstrated deterministically.
	// The fault executor is mutex-protected, so concurrent shards share
	// one injection stream (like concurrent workers already do).
	var collExec ddc.Executor = exec
	var faults *ddc.FaultExecutor
	if *failp > 0 {
		faults = &ddc.FaultExecutor{Inner: exec, TransientFailP: *failp, Seed: *seed}
		collExec = faults
	}

	// Partition the fleet across -shards concurrent coordinators, each
	// with its own sink. Unlike the simulator's ShardedCollector, wall
	// shards run on real clocks and do not share an iteration clock, so
	// their traces merge with trace.Merge (the independent-coordinators
	// merge: iterations renumbered chronologically), not MergeSharded.
	nShards := *shards
	if nShards < 1 {
		nShards = 1
	}
	parts := ddc.PartitionN(ids, nShards)
	var detMu sync.Mutex
	sinks := make([]*ddc.DatasetSink, len(parts))
	colls := make([]*ddc.WallCollector, len(parts))
	at := 0
	for s, part := range parts {
		sink := ddc.NewDatasetSink(start, start.Add(simSpan), simPeriod, infos[at:at+len(part)]).WithTelemetry(reg)
		at += len(part)
		if det != nil {
			// One detector instance observes every shard; sink taps fire on
			// the shard's goroutine, so serialise them.
			sink.Tap(func(smp *trace.Sample) {
				detMu.Lock()
				defer detMu.Unlock()
				det.Sample(smp)
			}, func(it trace.Iteration) {
				detMu.Lock()
				defer detMu.Unlock()
				det.Iteration(it)
			})
		}
		sinks[s] = sink
		colls[s] = &ddc.WallCollector{
			Cfg:          ddc.Config{Machines: part, Period: *period},
			Exec:         collExec,
			Post:         sink.Post,
			Prepare:      sink.Prepare, // parse on the probing worker, commit in machine order
			Workers:      *workers,
			ProbeTimeout: *ptimeout,
			Retry:        ddc.RetryPolicy{MaxAttempts: 1 + *retries, Jitter: 0.5, Seed: *seed},
			Breaker:      ddc.BreakerPolicy{FailThreshold: *breakerK, ProbeEvery: *breakerN},
			Telemetry:    reg,
		}
		colls[s].OnIteration = sink.OnIteration
	}

	fmt.Fprintf(os.Stderr, "ddcd: collecting %d iterations over TCP across %d shard(s) (%.0fx accelerated)...\n",
		*iters, len(parts), *accel)
	shardStats := make([]ddc.Stats, len(parts))
	shardErrs := make([]error, len(parts))
	var wg sync.WaitGroup
	for s := range colls {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			shardStats[s], shardErrs[s] = colls[s].Run(*iters, nil)
		}(s)
	}
	wg.Wait()
	for s, err := range shardErrs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddcd: shard %d: %v\n", s, err)
			os.Exit(1)
		}
	}
	stats := sumWallStats(shardStats)
	shardDS := make([]*trace.Dataset, len(parts))
	for s, sink := range sinks {
		d, err := sink.Dataset()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddcd: shard %d: corrupt probe output: %v\n", s, err)
			os.Exit(1)
		}
		shardDS[s] = d
	}
	ds, err := trace.Merge(shardDS...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddcd: merging shard traces:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ddcd: %d attempts, %d samples, %d retries, %d breaker skips (%d opens)\n",
		stats.Attempts, stats.Samples, stats.Retries, stats.BreakerSkipped, stats.BreakerOpens)
	if faults != nil {
		fs := faults.Stats()
		fmt.Fprintf(os.Stderr, "ddcd: injected %d transient failures over %d probe attempts\n",
			fs.Transients, fs.Calls)
	}
	if down := unhealthyMachines(stats); len(down) > 0 {
		fmt.Fprintf(os.Stderr, "ddcd: machines with open breaker or consecutive failures: %v\n", down)
	}
	report.Table2(analysis.MainResults(ds, analysis.DefaultForgottenThreshold)).Render(os.Stdout)

	// Serve the merged trace on the query API: anomaly events the
	// detectors raised during the run are on /api/events, epoch-tagged.
	if *queryAddr != "" {
		st := query.NewStore(analysis.Options{})
		ev := query.NewEventLog(0, st.Epoch)
		if det != nil {
			ev.Load(det.Ring().Snapshot(), 0) // events predate the publish
		}
		st.Publish(ds)
		h := query.NewHandler(query.Config{Store: st, Events: ev, Reg: reg})
		var ring httpx.EventSource
		if det != nil {
			ring = det.Ring()
		}
		qsrv, err := query.Serve(*queryAddr, query.Root(h, reg, ring))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		defer qsrv.Close()
		fmt.Fprintf(os.Stderr, "ddcd: query API on %s/api/epoch (epoch %d)\n", qsrv.URL(), st.Epoch())
		if *queryHold > 0 {
			time.Sleep(*queryHold)
		}
	}
}

// sumWallStats folds per-shard wall-collector stats into one fleet-wide
// view: additive counters sum, per-machine health maps union (machine
// sets are disjoint across shards). Iterations/Skipped are per-shard
// coordinator counts and agree across shards, so they come from the
// first.
func sumWallStats(shards []ddc.Stats) ddc.Stats {
	if len(shards) == 1 {
		return shards[0]
	}
	var out ddc.Stats
	out.Iterations = shards[0].Iterations
	out.Skipped = shards[0].Skipped
	out.Machines = map[string]ddc.MachineHealth{}
	for _, s := range shards {
		out.Attempts += s.Attempts
		out.Samples += s.Samples
		out.Retries += s.Retries
		out.BreakerSkipped += s.BreakerSkipped
		out.BreakerOpens += s.BreakerOpens
		for id, h := range s.Machines {
			out.Machines[id] = h
		}
	}
	return out
}

// unhealthyMachines lists machines the collector currently distrusts, in
// ID order.
func unhealthyMachines(st ddc.Stats) []string {
	var out []string
	for id, h := range st.Machines {
		if h.BreakerOpen || h.ConsecFails > 0 {
			out = append(out, fmt.Sprintf("%s(fails=%d open=%v)", id, h.ConsecFails, h.BreakerOpen))
		}
	}
	sort.Strings(out)
	return out
}
