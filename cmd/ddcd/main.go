// Command ddcd demonstrates the DDC collector over a real network: it
// boots a small simulated fleet, exposes every machine through a TCP probe
// agent on localhost, then runs the coordinator against those agents and
// prints the collected main-results table.
//
// The fleet is driven in accelerated wall time: every real second of
// collection advances the simulated fleet by -accel seconds, so a few
// seconds of wall clock cover days of simulated monitoring.
//
// The hardened-collector knobs are exposed as flags: -retries/-probe-timeout
// enable bounded retries with a per-probe deadline, -breaker-k/-breaker-every
// configure the per-machine circuit breaker, and -failp injects seeded
// transient probe failures so the retry machinery can be watched working.
//
// Observability: -metrics-addr serves live telemetry over HTTP while the
// collection runs — Prometheus text exposition on /metrics, a JSON
// snapshot on /vars, recent probe spans on /spans, recent anomaly events
// on /events, /healthz, and the net/http/pprof endpoints under
// /debug/pprof/. -trace-out streams every probe span (machine,
// iteration, attempt, latency, outcome) to a JSONL file for offline
// analysis; -events-out does the same for anomaly events. The streaming
// anomaly detectors tap the sink's commit path whenever any of
// -metrics-addr or -events-out is set.
//
// Usage:
//
//	ddcd [-machines 8] [-iters 20] [-period 100ms] [-accel 9000]
//	     [-workers 1] [-retries 0] [-probe-timeout 0] [-failp 0]
//	     [-breaker-k 0] [-breaker-every 4]
//	     [-metrics-addr 127.0.0.1:9090] [-trace-out spans.jsonl]
//	     [-events-out events.jsonl]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/anomaly"
	"winlab/internal/behavior"
	"winlab/internal/core"
	"winlab/internal/ddc"
	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/report"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
	"winlab/internal/telemetry/httpx"
	"winlab/internal/trace"
)

// warpedFleet drives a simulated fleet forward in accelerated wall time
// and serves snapshots at the current simulated instant.
type warpedFleet struct {
	mu    sync.Mutex
	eng   *sim.Engine
	fleet *lab.Fleet
	base  time.Time // wall-clock anchor
	accel float64
	start time.Time // simulated anchor
}

// now maps wall time to simulated time.
func (wf *warpedFleet) now() time.Time {
	return wf.start.Add(time.Duration(float64(time.Since(wf.base)) * wf.accel))
}

// Snapshot implements ddc.StateSource.
func (wf *warpedFleet) Snapshot(id string, _ time.Time) (machine.Snapshot, bool) {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	at := wf.now()
	wf.eng.RunUntil(at) // advance the behaviour model to "now"
	m := wf.fleet.Get(id)
	if m == nil {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(at)
}

func main() {
	var (
		nMach     = flag.Int("machines", 8, "number of simulated machines (one lab)")
		iters     = flag.Int("iters", 20, "collector iterations")
		period    = flag.Duration("period", 100*time.Millisecond, "wall-clock collection period")
		accel     = flag.Float64("accel", 9000, "simulated seconds per wall second")
		seed      = flag.Int64("seed", 1, "seed")
		workers   = flag.Int("workers", 1, "concurrent probes per iteration")
		retries   = flag.Int("retries", 0, "extra probe attempts per machine per iteration")
		ptimeout  = flag.Duration("probe-timeout", 0, "per-probe deadline (0 = executor default)")
		failp     = flag.Float64("failp", 0, "injected transient probe-failure probability")
		breakerK  = flag.Int("breaker-k", 0, "consecutive failures that open the circuit breaker (0 = off)")
		breakerN  = flag.Int("breaker-every", 4, "open-breaker probe cadence in iterations")
		metrics   = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /vars, /spans, /events, /healthz, /debug/pprof/) on this address")
		traceOut  = flag.String("trace-out", "", "stream probe spans to this JSONL file")
		eventsOut = flag.String("events-out", "", "stream anomaly events to this JSONL file")
	)
	flag.Parse()

	// Observability: one registry feeds the collector, the TCP transport,
	// the agents and the sink; -metrics-addr exposes it live.
	var reg *telemetry.Registry
	if *metrics != "" || *traceOut != "" || *eventsOut != "" {
		reg = telemetry.NewRegistry()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		reg.Spans().SetWriter(bw)
		defer func() {
			if err := bw.Flush(); err == nil {
				err = f.Close()
				if err == nil {
					fmt.Fprintf(os.Stderr, "ddcd: %d spans written to %s\n", reg.Spans().Total(), *traceOut)
				}
			}
			if werr := reg.Spans().WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "ddcd: span stream error:", werr)
			}
		}()
	}
	// The anomaly detectors ride along whenever something can observe
	// them: the /events endpoint, the JSONL stream, or /metrics counters.
	var det *anomaly.Detectors
	if reg != nil {
		det = anomaly.New(anomaly.DefaultConfig(), reg)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		det.Ring().SetWriter(bw)
		defer func() {
			if err := bw.Flush(); err == nil {
				err = f.Close()
				if err == nil {
					fmt.Fprintf(os.Stderr, "ddcd: %d anomaly events written to %s\n", det.Ring().Total(), *eventsOut)
				}
			}
			if werr := det.Ring().WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "ddcd: event stream error:", werr)
			}
		}()
	}
	if *metrics != "" {
		srv, err := httpx.ServeEvents(*metrics, reg, det.Ring())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ddcd: telemetry on %s/metrics (also /vars, /spans, /events, /healthz, /debug/pprof/)\n", srv.URL())
	}

	specs := []lab.Spec{{
		Name: "L01", Machines: *nMach, CPUModel: "Intel Pentium 4", CPUGHz: 2.4,
		RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1, BaseImgGB: 20,
	}}
	fleet := lab.Build(specs, *seed, lab.DefaultDiskLife())
	// Start mid-morning on a Monday so the accelerated demo window covers
	// live classroom hours rather than the closed night.
	start := core.DefaultConfig(*seed).Start.Add(10 * time.Hour)
	eng := sim.New(start)
	model := behavior.NewModel(behavior.DefaultConfig(*seed), fleet)
	model.Install(eng, start, start.AddDate(0, 0, 365))

	wf := &warpedFleet{eng: eng, fleet: fleet, base: time.Now(), accel: *accel, start: start}

	// One TCP agent per machine, like one psexec endpoint per host.
	exec := ddc.NewTCPExecutor()
	exec.SetTelemetry(reg)
	var ids []string
	var infos []trace.MachineInfo
	var agents []*ddc.Agent
	for _, m := range fleet.Machines {
		agent := &ddc.Agent{Source: wf, Telemetry: reg}
		addr, err := agent.Listen("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ddcd:", err)
			os.Exit(1)
		}
		agents = append(agents, agent)
		exec.Register(m.ID, addr)
		ids = append(ids, m.ID)
		infos = append(infos, trace.MachineInfo{
			ID: m.ID, Lab: m.Lab, RAMMB: m.HW.RAMMB, DiskGB: m.HW.DiskGB,
			IntIndex: m.HW.IntIndex, FPIndex: m.HW.FPIndex,
		})
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()

	// Sample timestamps live in simulated time, so the dataset's period is
	// the wall period scaled by the acceleration factor.
	simPeriod := time.Duration(float64(*period) * *accel)
	simSpan := time.Duration(*iters) * simPeriod
	sink := ddc.NewDatasetSink(start, start.Add(simSpan), simPeriod, infos).WithTelemetry(reg)
	if det != nil {
		det.SetMachines(infos)
		sink.Tap(det.Sample, det.Iteration)
	}

	// Optional fault injection between the coordinator and the TCP path,
	// so the retry/breaker machinery can be demonstrated deterministically.
	var collExec ddc.Executor = exec
	var faults *ddc.FaultExecutor
	if *failp > 0 {
		faults = &ddc.FaultExecutor{Inner: exec, TransientFailP: *failp, Seed: *seed}
		collExec = faults
	}
	coll := &ddc.WallCollector{
		Cfg:          ddc.Config{Machines: ids, Period: *period},
		Exec:         collExec,
		Post:         sink.Post,
		Prepare:      sink.Prepare, // parse on the probing worker, commit in machine order
		Workers:      *workers,
		ProbeTimeout: *ptimeout,
		Retry:        ddc.RetryPolicy{MaxAttempts: 1 + *retries, Jitter: 0.5, Seed: *seed},
		Breaker:      ddc.BreakerPolicy{FailThreshold: *breakerK, ProbeEvery: *breakerN},
		Telemetry:    reg,
	}
	coll.OnIteration = sink.OnIteration

	fmt.Fprintf(os.Stderr, "ddcd: collecting %d iterations over TCP (%.0fx accelerated)...\n",
		*iters, *accel)
	stats, err := coll.Run(*iters, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddcd:", err)
		os.Exit(1)
	}
	ds, err := sink.Dataset()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddcd: corrupt probe output:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ddcd: %d attempts, %d samples, %d retries, %d breaker skips (%d opens)\n",
		stats.Attempts, stats.Samples, stats.Retries, stats.BreakerSkipped, stats.BreakerOpens)
	if faults != nil {
		fs := faults.Stats()
		fmt.Fprintf(os.Stderr, "ddcd: injected %d transient failures over %d probe attempts\n",
			fs.Transients, fs.Calls)
	}
	if down := unhealthyMachines(stats); len(down) > 0 {
		fmt.Fprintf(os.Stderr, "ddcd: machines with open breaker or consecutive failures: %v\n", down)
	}
	report.Table2(analysis.MainResults(ds, analysis.DefaultForgottenThreshold)).Render(os.Stdout)
}

// unhealthyMachines lists machines the collector currently distrusts, in
// ID order.
func unhealthyMachines(st ddc.Stats) []string {
	var out []string
	for id, h := range st.Machines {
		if h.BreakerOpen || h.ConsecFails > 0 {
			out = append(out, fmt.Sprintf("%s(fails=%d open=%v)", id, h.ConsecFails, h.BreakerOpen))
		}
	}
	sort.Strings(out)
	return out
}
