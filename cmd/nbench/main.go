// Command nbench runs the NBench-style benchmark suite on the host and
// prints the per-kernel rates and the INT/FP indexes — the measurement the
// paper performed once per lab machine to fill Table 1's last column.
//
// Usage:
//
//	nbench [-seed N] [-mintime 200ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"winlab/internal/nbench"
	"winlab/internal/report"
)

func main() {
	var (
		seed    = flag.Int64("seed", 7, "workload seed")
		minTime = flag.Duration("mintime", 200*time.Millisecond, "minimum measured time per kernel")
	)
	flag.Parse()

	res, err := nbench.Run(nbench.Options{Seed: *seed, MinTime: *minTime})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbench:", err)
		os.Exit(1)
	}
	t := &report.Table{
		Title:   "NBench-style suite",
		Headers: []string{"Kernel", "Class", "Iterations", "Rate (/s)"},
	}
	for _, s := range res.Scores {
		t.AddRow(s.Kernel, s.Class.String(), fmt.Sprintf("%d", s.Iterations), fmt.Sprintf("%.1f", s.PerSecond))
	}
	t.Render(os.Stdout)
	fmt.Printf("\nINT index: %.2f\nMEM index: %.2f\nFP index:  %.2f\n", res.Int, res.Mem, res.FPIdx)
}
