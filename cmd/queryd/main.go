// Command queryd serves the high-throughput query API over a monitoring
// trace: per-lab and per-machine availability, weekly profiles,
// equivalence ratios, uptime histograms, machine heatmaps, and anomaly
// event history, every response materialized once per snapshot epoch and
// served from an immutable cache with strong ETags.
//
// Data sources (exactly one):
//
//	-trace FILE    load a collected trace (CSV or TBv1, plain or gzipped)
//	-stream FILE   stream a TBv1 trace or segment manifest out-of-core
//	               (bounded memory; the heatmap endpoint is unavailable)
//	-sim-days N    simulate the paper's fleet for N days in-process,
//	               publishing a snapshot every -publish-every iterations
//	               while the collection runs, then the final trace
//
// -events FILE replays a recorded anomaly event stream (the JSONL
// written by labmon/ddcd -events-out) into /api/events.
//
// Admission control: -max-inflight bounds concurrent requests,
// -max-queue the waiting line, -queue-timeout the longest wait; beyond
// that requests are shed with 503 + Retry-After so the served tail
// latency stays flat under overload.
//
// The telemetry surface (/metrics, /vars, /healthz, /debug/pprof/) is
// mounted next to /api/*. -hold exits after the given duration (smoke
// tests); the default serves until interrupted.
//
// Usage:
//
//	queryd [-addr 127.0.0.1:8080] (-trace f | -stream f | -sim-days N)
//	       [-seed 1] [-period 15m] [-events f.jsonl] [-publish-every 96]
//	       [-max-inflight 0] [-max-queue 256] [-queue-timeout 50ms]
//	       [-workers 0] [-hold 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/anomaly"
	"winlab/internal/core"
	"winlab/internal/query"
	"winlab/internal/telemetry"
	"winlab/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "serve the query API on this address (use :0 for an ephemeral port)")
		traceIn   = flag.String("trace", "", "serve this collected trace file (CSV or TBv1, plain or gzipped)")
		streamIn  = flag.String("stream", "", "stream this TBv1 trace or segment manifest out-of-core (heatmap unavailable)")
		simDays   = flag.Int("sim-days", 0, "simulate the paper's fleet for N days and serve the trace")
		seed      = flag.Int64("seed", 1, "simulation seed (with -sim-days)")
		period    = flag.Duration("period", 15*time.Minute, "sampling period (with -sim-days)")
		pubEvery  = flag.Int("publish-every", 96, "with -sim-days: publish a snapshot every N collector iterations (0 = only the final trace)")
		eventsIn  = flag.String("events", "", "replay this anomaly event JSONL file into /api/events")
		workers   = flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
		inflight  = flag.Int("max-inflight", 0, "admission gate: max concurrent requests (0 = unlimited)")
		queueLen  = flag.Int("max-queue", 256, "admission gate: max queued requests")
		queueWait = flag.Duration("queue-timeout", 50*time.Millisecond, "admission gate: max queue wait before shedding")
		hold      = flag.Duration("hold", 0, "exit after this long (0 = serve until interrupted)")
	)
	flag.Parse()

	sources := 0
	for _, set := range []bool{*traceIn != "", *streamIn != "", *simDays > 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "queryd: exactly one of -trace, -stream, -sim-days is required")
		os.Exit(1)
	}

	reg := telemetry.NewRegistry()
	st := query.NewStore(analysis.Options{Workers: *workers})
	events := query.NewEventLog(0, st.Epoch)
	h := query.NewHandler(query.Config{
		Store:  st,
		Gate:   query.NewGate(*inflight, *queueLen, *queueWait),
		Events: events,
		Reg:    reg,
	})
	srv, err := query.Serve(*addr, query.Root(h, reg, nil))
	if err != nil {
		fmt.Fprintln(os.Stderr, "queryd:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "queryd: query API on %s/api/epoch (telemetry on /metrics)\n", srv.URL())

	switch {
	case *traceIn != "":
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queryd:", err)
			os.Exit(1)
		}
		ds, err := trace.ReadAny(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "queryd: reading %s: %v\n", *traceIn, err)
			os.Exit(1)
		}
		st.Publish(ds)
		fmt.Fprintf(os.Stderr, "queryd: serving %d samples / %d iterations / %d machines from %s (epoch %d)\n",
			len(ds.Samples), len(ds.Iterations), len(ds.Machines), *traceIn, st.Epoch())

	case *streamIn != "":
		rep, err := core.AnalyzeStream(*streamIn, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "queryd: streaming %s: %v\n", *streamIn, err)
			os.Exit(1)
		}
		res := &analysis.Results{
			Table2:       rep.Table2,
			SessionAge:   rep.SessionAge,
			Availability: rep.Avail,
			Uptimes:      rep.Uptimes,
			Sessions:     rep.Sessions,
			PowerCycles:  rep.PowerCycles,
			Weekly:       rep.Weekly,
			Equivalence:  rep.Equivalence,
			Labs:         rep.Labs2,
			Capacity:     rep.Capacity,
		}
		info := query.Info{Iterations: len(rep.Avail.Points)}
		if n := len(rep.Avail.Points); n > 0 {
			info.Start = rep.Avail.Points[0].Time
			if n > 1 {
				info.Period = rep.Avail.Points[1].Time.Sub(rep.Avail.Points[0].Time)
			}
			info.End = rep.Avail.Points[n-1].Time.Add(info.Period)
		}
		st.PublishResults(res, info)
		fmt.Fprintf(os.Stderr, "queryd: serving streamed analysis of %s (epoch %d, heatmap unavailable)\n",
			*streamIn, st.Epoch())

	case *simDays > 0:
		cfg := core.DefaultConfig(*seed)
		cfg.Days = *simDays
		cfg.Period = *period
		cfg.Workers = *workers
		if *pubEvery > 0 {
			cfg.SnapshotEvery = *pubEvery
			cfg.OnSnapshot = func(ds *trace.Dataset) { st.Publish(ds) }
		}
		fmt.Fprintf(os.Stderr, "queryd: simulating %d days (seed %d)...\n", *simDays, *seed)
		res, err := core.RunExperiment(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queryd:", err)
			os.Exit(1)
		}
		st.Publish(res.Dataset)
		fmt.Fprintf(os.Stderr, "queryd: serving %d samples / %d iterations (final epoch %d)\n",
			len(res.Dataset.Samples), len(res.Dataset.Iterations), st.Epoch())
	}

	if *eventsIn != "" {
		f, err := os.Open(*eventsIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "queryd:", err)
			os.Exit(1)
		}
		es, err := anomaly.ReadEventsJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "queryd: reading %s: %v\n", *eventsIn, err)
			os.Exit(1)
		}
		events.Load(es, st.Epoch())
		fmt.Fprintf(os.Stderr, "queryd: replayed %d anomaly events from %s\n", len(es), *eventsIn)
	}

	if *hold > 0 {
		time.Sleep(*hold)
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "queryd: shutting down")
}
