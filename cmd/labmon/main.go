// Command labmon runs the full reproduction of "Resource Usage of Windows
// Computer Laboratories" (ICPP 2005): it simulates the 169-machine fleet
// for the configured duration, collects the monitoring trace with the DDC
// collector, and prints every table and figure of the paper's evaluation.
//
// With -replicate N it instead runs N independent seeds and reports the
// mean ± standard deviation of every headline metric — the statistical
// check that the reproduction's numbers are properties of the model, not
// of one lucky seed.
//
// Observability: -metrics-addr serves the collector's live telemetry over
// HTTP during the run (Prometheus /metrics, JSON /vars, /spans, /events,
// /healthz, /debug/pprof/) — the 77-day experiment compresses into ~15 s
// of wall time, so scrape fast or raise -days. -trace-out streams every
// probe span to a JSONL file; -events-out streams the online anomaly
// detectors' events the same way. The detectors tap the sink's commit
// path whenever -metrics-addr or -events-out is set.
//
// Usage:
//
//	labmon [-seed N] [-days N] [-scenario name|file.json] [-period 15m] [-workers N] [-shards N] [-segments dir] [-trace out.csv[.gz]|out.tb[.gz]] [-trace-format auto|csv|tbv1] [-csvdir dir] [-quiet]
//	       [-replicate N] [-metrics-addr 127.0.0.1:9090] [-trace-out spans.jsonl] [-events-out events.jsonl]
//
// With -scenario the run plays a bundled scenario (regime shifts, fleet
// churn, per-lab calendars, server pools — see internal/scenario) or a
// scenario JSON file on top of the paper's semester; `make scenarios`
// gates each bundled scenario's claim set in CI.
//
// With -shards N the fleet is partitioned lab-aligned across N
// coordinator shards (the merged trace is identical to an unsharded run;
// see internal/ddc's sharded collector); -segments additionally writes
// each shard's trace as an independent TBv1 segment file plus a manifest,
// which traceconv -merge compacts into one canonical trace.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/anomaly"
	"winlab/internal/core"
	"winlab/internal/query"
	"winlab/internal/report"
	"winlab/internal/scenario"
	"winlab/internal/stats"
	"winlab/internal/telemetry"
	"winlab/internal/telemetry/httpx"
	"winlab/internal/trace"
)

// replicate runs n seeds and prints mean ± sd for the headline metrics.
func replicate(cfg core.Config, n int) error {
	metrics := map[string]*stats.Running{}
	order := []string{}
	add := func(name string, v float64) {
		r := metrics[name]
		if r == nil {
			r = &stats.Running{}
			metrics[name] = r
			order = append(order, name)
		}
		r.Add(v)
	}
	for i := 0; i < n; i++ {
		cfg.Seed = cfg.Seed + int64(i)
		cfg.Behavior.Seed = cfg.Seed
		res, err := core.RunExperiment(cfg)
		if err != nil {
			return err
		}
		d := res.Dataset
		t2 := analysis.MainResults(d, analysis.DefaultForgottenThreshold)
		av := analysis.Availability(d, analysis.DefaultForgottenThreshold)
		eq := analysis.Equivalence(d, true)
		pc := analysis.PowerCycles(d)
		add("uptime both %", t2.Both.UptimePct)
		add("cpu idle both %", t2.Both.CPUIdlePct)
		add("cpu idle login %", t2.WithLogin.CPUIdlePct)
		add("ram both %", t2.Both.RAMLoadPct)
		add("disk used GB", t2.Both.DiskUsedGB)
		add("powered on avg", av.AvgPoweredOn)
		add("user-free avg", av.AvgUserFree)
		add("equivalence", eq.TotalRatio)
		add("lifetime h/cycle", pc.LifetimePerCycle.Hours())
		fmt.Fprintf(os.Stderr, "labmon: replication %d/%d done (seed %d)\n", i+1, n, cfg.Seed)
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Headline metrics over %d seeds (mean ± sd)", n),
		Headers: []string{"Metric", "Mean", "SD"},
	}
	for _, name := range order {
		r := metrics[name]
		t.AddRow(name, fmt.Sprintf("%.3f", r.Mean()), fmt.Sprintf("%.3f", r.SampleStdDev()))
	}
	t.Render(os.Stdout)
	return nil
}

func main() {
	var (
		seed      = flag.Int64("seed", 1, "experiment seed (full determinism)")
		days      = flag.Int("days", 77, "experiment length in days (overrides the scenario's own)")
		scen      = flag.String("scenario", "", "apply a scenario before running: a bundled name ("+strings.Join(scenario.Names(), ", ")+") or a JSON file")
		period    = flag.Duration("period", 15*time.Minute, "sampling period")
		traceOut  = flag.String("trace", "", "write the collected trace to this file")
		csvDir    = flag.String("csvdir", "", "export figure CSVs into this directory")
		quiet     = flag.Bool("quiet", false, "suppress the text report")
		reps      = flag.Int("replicate", 0, "run N independent seeds and report mean ± sd")
		traceFmt  = flag.String("trace-format", "auto", "trace file format: auto (by extension), csv, or tbv1 (binary)")
		workers   = flag.Int("workers", 0, "probe render/parse workers per collector iteration (<=1: sequential; the collected trace is identical either way)")
		shards    = flag.Int("shards", 0, "partition the fleet across N coordinator shards (lab-aligned; the merged trace is identical to an unsharded run)")
		segDir    = flag.String("segments", "", "with -shards: also write the per-shard TBv1 segment files plus manifest into this directory")
		metrics   = flag.String("metrics-addr", "", "serve live telemetry (/metrics, /vars, /spans, /events, /healthz, /debug/pprof/) on this address")
		spansOut  = flag.String("trace-out", "", "stream probe spans to this JSONL file")
		eventsOut = flag.String("events-out", "", "stream anomaly events to this JSONL file")
		queryAddr = flag.String("query-addr", "", "serve the snapshot query API (/api/*) on this address during and after the run")
		queryEvr  = flag.Int("query-every", 96, "publish a query snapshot every N collector iterations")
		queryHold = flag.Duration("query-hold", 0, "keep the query server up this long after the report (0 = exit with the report)")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*seed)
	cfg.Days = *days
	if *scen != "" {
		sc, err := scenario.Resolve(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		if err := sc.Apply(&cfg); err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		// An explicit -days beats the scenario's own length.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "days" {
				cfg.Days = *days
			}
		})
		fmt.Fprintf(os.Stderr, "labmon: scenario %s: %s\n", sc.Name, sc.Description)
	}
	cfg.Period = *period
	cfg.Workers = *workers
	cfg.Shards = *shards
	if *segDir != "" && *shards <= 1 {
		fmt.Fprintln(os.Stderr, "labmon: -segments needs -shards > 1 (segments are the per-shard outputs)")
		os.Exit(1)
	}

	if *metrics != "" || *spansOut != "" || *eventsOut != "" {
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Detect = anomaly.New(anomaly.DefaultConfig(), cfg.Telemetry)
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		cfg.Telemetry.Spans().SetWriter(bw)
		defer func() {
			if err := bw.Flush(); err == nil && f.Close() == nil {
				fmt.Fprintf(os.Stderr, "labmon: %d spans written to %s\n", cfg.Telemetry.Spans().Total(), *spansOut)
			}
			if werr := cfg.Telemetry.Spans().WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "labmon: span stream error:", werr)
			}
		}()
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		cfg.Detect.Ring().SetWriter(bw)
		defer func() {
			if err := bw.Flush(); err == nil && f.Close() == nil {
				fmt.Fprintf(os.Stderr, "labmon: %d anomaly events written to %s\n", cfg.Detect.Ring().Total(), *eventsOut)
			}
			if werr := cfg.Detect.Ring().WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "labmon: event stream error:", werr)
			}
		}()
	}
	if *metrics != "" {
		srv, err := httpx.ServeEvents(*metrics, cfg.Telemetry, cfg.Detect.Ring())
		if err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "labmon: telemetry on %s/metrics (also /vars, /spans, /events, /healthz, /debug/pprof/)\n", srv.URL())
	}

	// The query service rides on the run: snapshots of the accumulating
	// trace publish into its store every -query-every iterations, so
	// /api/* answers — with snapshot isolation — while the collector is
	// still committing. Anomaly events land on /api/events epoch-tagged.
	var qstore *query.Store
	if *queryAddr != "" {
		qstore = query.NewStore(analysis.Options{})
		qevents := query.NewEventLog(0, qstore.Epoch)
		if cfg.Detect != nil {
			qevents.Attach(cfg.Detect.Ring())
		}
		if *shards <= 1 { // sharded runs have no single-sink prefix; only the final merge publishes
			cfg.SnapshotEvery = *queryEvr
			cfg.OnSnapshot = func(ds *trace.Dataset) { qstore.Publish(ds) }
		}
		qh := query.NewHandler(query.Config{Store: qstore, Events: qevents, Reg: cfg.Telemetry})
		var ring httpx.EventSource
		if cfg.Detect != nil {
			ring = cfg.Detect.Ring()
		}
		qsrv, err := query.Serve(*queryAddr, query.Root(qh, cfg.Telemetry, ring))
		if err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		defer qsrv.Close()
		fmt.Fprintf(os.Stderr, "labmon: query API on %s/api/epoch\n", qsrv.URL())
	}

	if *reps > 0 {
		if err := replicate(cfg, *reps); err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Fprintf(os.Stderr, "labmon: simulating %d machines for %d days (seed %d)...\n",
		func() int {
			n := len(cfg.ExtraMachines)
			for _, s := range cfg.Labs {
				n += s.Machines
			}
			return n
		}(), cfg.Days, *seed)
	start := time.Now()
	res, err := core.RunExperiment(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "labmon:", err)
		os.Exit(1)
	}
	c := res.Collector
	fmt.Fprintf(os.Stderr, "labmon: %d iterations (%d lost to outages), %d probe attempts, %d samples collected in %s\n",
		c.Iterations, c.Skipped, c.Attempts, c.Samples, time.Since(start).Round(time.Millisecond))
	if c.Retries > 0 || c.BreakerSkipped > 0 {
		fmt.Fprintf(os.Stderr, "labmon: collector health: %d retries, %d breaker skips (%d opens)\n",
			c.Retries, c.BreakerSkipped, c.BreakerOpens)
	}

	if *segDir != "" {
		if err := os.MkdirAll(*segDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		mpath, err := trace.WriteSegments(*segDir, "labmon", res.ShardDatasets)
		if err != nil {
			fmt.Fprintln(os.Stderr, "labmon: writing segments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "labmon: %d segment files + manifest written to %s (compact with traceconv -merge)\n",
			len(res.ShardDatasets), mpath)
	}

	if *traceOut != "" {
		format, err := trace.ParseFormat(*traceFmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "labmon:", err)
			os.Exit(1)
		}
		if err := trace.WriteFileFormat(*traceOut, res.Dataset, format); err != nil {
			fmt.Fprintln(os.Stderr, "labmon: writing trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "labmon: trace written to %s\n", *traceOut)
	}

	rep := core.AnalyzeResult(res)
	if !*quiet {
		rep.Render(os.Stdout)
		fmt.Println()
		rep.ComparePaper(os.Stdout)
	}
	if *csvDir != "" {
		if err := rep.WriteCSVs(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "labmon: writing CSVs:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "labmon: figure CSVs written to %s\n", *csvDir)
	}
	if qstore != nil {
		qstore.Publish(res.Dataset)
		fmt.Fprintf(os.Stderr, "labmon: final trace published to query API (epoch %d)\n", qstore.Epoch())
		if *queryHold > 0 {
			time.Sleep(*queryHold)
		}
	}
}
