// Command analyze recomputes the paper's tables and figures from a
// previously collected trace file (see labmon -trace).
//
// Usage:
//
//	analyze [-csvdir dir] trace.csv
//	analyze -stream [-workers N] trace.tb[.gz]
//
// -stream analyses the trace out-of-core: samples are decoded and
// folded into single-pass accumulators without ever materialising the
// dataset, so memory stays flat regardless of trace size. It requires
// the TBv1 binary format (convert CSV traces with tracecat first) and
// skips the survival-predictor section, which needs random access.
// A segment manifest from a sharded run (labmon -shards -segments) is
// accepted in place of a trace file — the unmerged segments stream
// straight into the accumulators, one goroutine per segment, no
// compaction needed.
package main

import (
	"flag"
	"fmt"
	"os"

	"winlab/internal/core"
	"winlab/internal/trace"
)

func main() {
	csvDir := flag.String("csvdir", "", "export figure CSVs into this directory")
	paper := flag.Bool("paper", false, "append the paper-vs-measured comparison table")
	streaming := flag.Bool("stream", false, "analyse out-of-core (TBv1 traces only; constant memory)")
	workers := flag.Int("workers", 1, "with -stream: machine-sharded analysis width (1 = exact sequential)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: analyze [-csvdir dir] [-stream [-workers N]] trace.{csv,tb}[.gz]")
		os.Exit(2)
	}
	var rep *core.Report
	if *streaming {
		var err error
		rep, err = core.AnalyzeStream(flag.Arg(0), *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "analyze: streamed %d samples (%d catalogued machines)\n",
			rep.Table2.Both.Samples, len(rep.Uptimes))
	} else {
		d, err := trace.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "analyze: %d machines, %d iterations, %d samples\n",
			len(d.Machines), len(d.Iterations), len(d.Samples))
		rep = core.Analyze(d)
	}
	rep.Render(os.Stdout)
	if *paper {
		fmt.Println()
		rep.ComparePaper(os.Stdout)
	}
	if *csvDir != "" {
		if err := rep.WriteCSVs(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "analyze: writing CSVs:", err)
			os.Exit(1)
		}
	}
}
