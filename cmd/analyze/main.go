// Command analyze recomputes the paper's tables and figures from a
// previously collected trace file (see labmon -trace).
//
// Usage:
//
//	analyze [-csvdir dir] trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"winlab/internal/core"
	"winlab/internal/trace"
)

func main() {
	csvDir := flag.String("csvdir", "", "export figure CSVs into this directory")
	paper := flag.Bool("paper", false, "append the paper-vs-measured comparison table")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: analyze [-csvdir dir] trace.csv")
		os.Exit(2)
	}
	d, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "analyze: %d machines, %d iterations, %d samples\n",
		len(d.Machines), len(d.Iterations), len(d.Samples))
	rep := core.Analyze(d)
	rep.Render(os.Stdout)
	if *paper {
		fmt.Println()
		rep.ComparePaper(os.Stdout)
	}
	if *csvDir != "" {
		if err := rep.WriteCSVs(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "analyze: writing CSVs:", err)
			os.Exit(1)
		}
	}
}
