// Command w32probe is the standalone probe client: pointed at a probe
// agent (see cmd/ddcd and ddc.Agent), it requests one machine's report and
// prints it to stdout — exactly the stdout the paper's W32Probe produced
// under psexec.
//
// With -local it probes the machine it runs on through /proc (Linux),
// playing the role the win32 API played for the original probe. Without
// either flag it renders a demonstration snapshot of a freshly booted
// simulated machine, useful for eyeballing the report format.
//
// With -serve it stays resident as a probe agent for this host: a DDC
// coordinator (ddc.TCPExecutor / cmd/ddcd) can then collect it like any
// machine of the fleet.
//
// Usage:
//
//	w32probe [-addr host:port] [-machine ID] [-local] [-serve host:port]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"winlab/internal/ddc"
	"winlab/internal/hostprobe"
	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/probe"
)

// hostSource serves the local host's state regardless of the machine ID
// the coordinator asks for — one agent process per host, like psexec.
type hostSource struct{}

// Snapshot implements ddc.StateSource against the local host.
func (hostSource) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	sn, err := hostprobe.Snapshot(at)
	if err != nil {
		return machine.Snapshot{}, false
	}
	if id != "" {
		sn.ID = id // report under the coordinator's name for the host
	}
	return sn, true
}

func main() {
	var (
		addr  = flag.String("addr", "", "probe agent address (empty: render a demo snapshot)")
		id    = flag.String("machine", "L01-M01", "machine ID to probe")
		local = flag.Bool("local", false, "probe this host via /proc (Linux)")
		serve = flag.String("serve", "", "serve this host as a probe agent on the given address")
	)
	flag.Parse()

	if *serve != "" {
		agent := &ddc.Agent{Source: hostSource{}}
		bound, err := agent.Listen(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "w32probe:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "w32probe: serving local-host probes on %s (any machine ID)\n", bound)
		select {} // serve until killed
	}

	if *local {
		sn, err := hostprobe.Snapshot(time.Now())
		if err != nil {
			fmt.Fprintln(os.Stderr, "w32probe:", err)
			os.Exit(1)
		}
		os.Stdout.Write(probe.Render(sn))
		return
	}

	if *addr != "" {
		exec := ddc.NewTCPExecutor()
		exec.Register(*id, *addr)
		out, err := exec.Exec(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "w32probe:", err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
		return
	}

	// Demo mode: boot a machine, give it a user and some uptime, print the
	// report.
	fleet := lab.Build(lab.PaperCatalog(), 42, lab.DefaultDiskLife())
	m := fleet.Get(*id)
	if m == nil {
		fmt.Fprintf(os.Stderr, "w32probe: unknown machine %q\n", *id)
		os.Exit(1)
	}
	boot := time.Now().Add(-93 * time.Minute)
	m.PowerOn(boot)
	m.SetBaseline(212, 148, fleet.SpecOf(m).BaseImgGB)
	m.SetActivity(boot, machine.Activity{Name: machine.ActOSBackground, CPU: 0.003, SendBps: 210, RecvBps: 300})
	m.Login(boot.Add(7*time.Minute), "student042")
	m.SetActivity(boot.Add(7*time.Minute), machine.Activity{
		Name: machine.ActInteractive, CPU: 0.06, SendBps: 2400, RecvBps: 8100, MemMB: 92, SwapMB: 55,
	})
	sn, ok := m.Snapshot(time.Now())
	if !ok {
		fmt.Fprintln(os.Stderr, "w32probe: machine unreachable")
		os.Exit(1)
	}
	os.Stdout.Write(probe.Render(sn))
}
