# Tier-1 verification and developer shortcuts.

GO ?= go

.PHONY: build test verify bench fuzz telemetry-demo

# Benchmark knobs: BENCHTIME=1x bounds CI cost (each benchmark runs once);
# drop it locally for steadier numbers. The JSON summary (name → ns/op,
# B/op, allocs/op) lands in $(BENCHJSON) for before/after comparisons.
BENCHTIME ?= 1x
BENCHJSON ?= BENCH_PR4.json

# Fuzz smoke budget per target; raise locally for deeper runs.
FUZZTIME ?= 10s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet plus the full suite under the race
# detector (the concurrent WallCollector paths are exercised by it).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -count 1 -benchtime $(BENCHTIME) -timeout 30m \
	    | $(GO) run ./tools/benchjson -o $(BENCHJSON)

# fuzz smoke-runs the codec fuzzers (probe report parser, TBv1 trace
# reader) for $(FUZZTIME) each. The committed corpora under testdata/fuzz
# replay on every plain `go test` run; this target explores new inputs.
fuzz:
	$(GO) test ./internal/probe/ -run '^$$' -fuzz '^FuzzParseBytes$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME)

# telemetry-demo runs the live collector with the metrics endpoint and
# span trace enabled, scrapes it mid-run, and fails if /metrics or
# /healthz do not answer.
telemetry-demo:
	@rm -f /tmp/winlab-spans.jsonl
	@$(GO) run ./cmd/ddcd -iters 40 -period 200ms -failp 0.25 -retries 2 \
	    -breaker-k 3 -metrics-addr 127.0.0.1:9190 \
	    -trace-out /tmp/winlab-spans.jsonl & \
	pid=$$!; \
	sleep 3; \
	echo "--- /metrics (ddc_* excerpt) ---"; \
	curl -sf http://127.0.0.1:9190/metrics | grep '^ddc_' || { kill $$pid; exit 1; }; \
	echo "--- /healthz ---"; \
	curl -sf http://127.0.0.1:9190/healthz || { kill $$pid; exit 1; }; \
	echo "--- /spans?n=2 ---"; \
	curl -sf 'http://127.0.0.1:9190/spans?n=2' || { kill $$pid; exit 1; }; \
	wait $$pid; \
	echo "--- span trace ---"; \
	head -2 /tmp/winlab-spans.jsonl; \
	wc -l < /tmp/winlab-spans.jsonl | xargs echo "spans:"
