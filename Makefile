# Tier-1 verification and developer shortcuts.

GO ?= go

.PHONY: build test verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet plus the full suite under the race
# detector (the concurrent WallCollector paths are exercised by it).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem
