# Tier-1 verification and developer shortcuts.

GO ?= go

.PHONY: build test verify bench fuzz telemetry-demo doctor stream-smoke anomaly gridscale serve-smoke scenarios scenario-longhaul

# Benchmark knobs: BENCHTIME=1x bounds CI cost (each benchmark runs once);
# drop it locally for steadier numbers. The JSON summary (env block plus
# name → ns/op, B/op, allocs/op) lands in $(BENCHJSON) for before/after
# comparisons. Distinct from BENCH_PR9.json, the queryload macro curve.
BENCHTIME ?= 1x
BENCHJSON ?= BENCH_PR9_micro.json

# Fuzz smoke budget per target; raise locally for deeper runs.
FUZZTIME ?= 10s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate: vet plus the full suite under the race
# detector (the concurrent WallCollector paths are exercised by it).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem -count 1 -benchtime $(BENCHTIME) -timeout 30m \
	    | $(GO) run ./tools/benchjson -o $(BENCHJSON)

# fuzz smoke-runs the codec fuzzers (probe report parser, TBv1 trace
# reader, format sniffer) for $(FUZZTIME) each. The committed corpora
# under testdata/fuzz replay on every plain `go test` run; this target
# explores new inputs.
fuzz:
	$(GO) test ./internal/probe/ -run '^$$' -fuzz '^FuzzParseBytes$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzReadAny$$' -fuzztime $(FUZZTIME)

# Trace doctor knobs: which sim seeds the differential suite replays and
# how many simulated days per seed (the full paper run is 77 days; 7 is
# enough to exercise outages, reboots and session churn in CI time).
DOCTORSEEDS ?= 1,2,3
DOCTORDAYS ?= 7

# doctor is the validation gate: for every seed it re-runs the repo's
# equivalence claims (serial vs workers collection, CSV/TBv1 round
# trips, legacy vs zero-alloc probe codec, serial vs parallel analysis)
# and invariant-checks the collected trace in both formats; then the
# negative leg writes the corrupted-fixture corpus and asserts -check
# flags every fixture (and does not flag the clean one).
doctor:
	$(GO) run ./tools/tracedoctor -selftest -seeds $(DOCTORSEEDS) -days $(DOCTORDAYS)
	@dir=$$(mktemp -d); \
	trap 'rm -rf $$dir' EXIT; \
	$(GO) run ./tools/tracedoctor -write-corpus $$dir >/dev/null || exit 1; \
	$(GO) run ./tools/tracedoctor -check $$dir/clean.csv >/dev/null \
	    || { echo "doctor: clean fixture flagged"; exit 1; }; \
	for f in $$dir/*.csv; do \
	    case $$f in */clean.csv) continue;; esac; \
	    if $(GO) run ./tools/tracedoctor -check $$f >/dev/null 2>&1; then \
	        echo "doctor: undetected corruption in $$f"; exit 1; \
	    fi; \
	done; \
	echo "doctor: corrupted-fixture corpus ok"

# Anomaly-detection precision/recall knobs: which sim seeds the labeled
# fault-injection scenarios replay over and how many simulated days per
# seed (≥ 12 so the seasonal availability baselines get a clean first
# week before the week-2 injection windows).
ANOMALYSEEDS ?= 1,2,3
ANOMALYDAYS ?= 12

# anomaly is the detection-quality gate: replay the labeled injection
# scenarios (collapses, reboot storms, SMART jumps, stuck sensors, usage
# drift) over $(ANOMALYSEEDS) and score the streaming detectors' events
# against the schedule. Gating — red means a detector dropped below the
# precision/recall floors (0.90 / 0.80 per kind, aggregated over seeds).
anomaly:
	$(GO) run ./tools/anomalybench -seeds $(ANOMALYSEEDS) -days $(ANOMALYDAYS)

# Scenario claim-set knobs: which sim seeds the bundled scenarios
# (lockdown, refresh-year, server-mix, multi-campus) replay over. Each
# scenario runs at its own length against a baseline of the same length
# and seed.
SCENARIOSEEDS ?= 1,2,3

# scenarios is the scenario-engine gate: every bundled scenario's
# documented claim set (directional movement of availability, cluster
# equivalence and harvest work against baseline) must hold on each
# seed, every collected trace must be doctor-clean (lifetime stamps
# included), and the lockdown run — a slow regime shift, the labelled
# negative corpus — must produce zero availability-collapse pages from
# the streaming detectors.
scenarios:
	$(GO) run ./tools/scenariobench -seeds $(SCENARIOSEEDS)

# scenario-longhaul replays the hardware-refresh scenario over a full
# simulated year through the 8-shard collector — the Grid'5000-class
# long-trace arm. Minutes of wall time, so CI runs it on a schedule
# (see ci.yml), not per push.
LONGHAUL_DAYS ?= 364
LONGHAUL_SHARDS ?= 8

scenario-longhaul:
	$(GO) run ./tools/scenariobench -scenarios refresh-year,lockdown -seeds $(SCENARIOSEEDS) \
	    -days $(LONGHAUL_DAYS) -shards $(LONGHAUL_SHARDS)

# gridscale is the sharded-collection gate: probe a 100k-machine
# arithmetic fleet across 8 shards, roll each shard's samples into
# time-chunked TBv1 segments, check the manifest, and stream-compact the
# segments into one canonical trace — all under an enforced heap ceiling
# of 64 MB per shard (see TestGridScale). Gating — a red run means some
# path materialises the fleet dataset and sharded collection no longer
# bounds per-shard memory. The iteration count is compressed (12 vs the
# paper's 7392); the resident state does not depend on it.
GRIDSCALE_MACHINES ?= 100000
GRIDSCALE_ITERS ?= 12

gridscale:
	GRIDSCALE_MACHINES=$(GRIDSCALE_MACHINES) GRIDSCALE_ITERS=$(GRIDSCALE_ITERS) \
	    $(GO) test . -run '^TestGridScale$$' -v -count 1 -timeout 20m

# stream-smoke is the out-of-core gate: stream-analyze a TBv1 trace
# several times larger than an enforced soft memory limit and assert
# peak live heap stays under the ceiling (see TestAllStreamMemoryCeiling).
# Gating — a red run means some code path rematerialises the dataset
# and `analyze -stream` no longer delivers constant-memory analysis.
stream-smoke:
	$(GO) test ./internal/analysis/ -run '^TestAllStreamMemoryCeiling$$' -v -count 1

# Query-service gate knobs: where the smoke server listens and the
# closed-loop throughput floor queryload must clear. The floor is the
# paper target (10⁵ req/s on cached aggregates); a 1-core runner clears
# it with >10× headroom, so red means the cache-hit path regressed, not
# that the runner was slow.
SERVEADDR ?= 127.0.0.1:9191
QUERYFLOOR ?= 100000

# serve-smoke is the query-service gate: start queryd on a seeded
# 3-day simulated trace, assert every /api endpoint answers 200, assert
# the strong-ETag revalidation round-trip returns 304, then drive the
# cached hot path with tools/queryload — shedding must hold the served
# p99 under overload (-saturate) and throughput must clear $(QUERYFLOOR).
# The latency/throughput curve lands in BENCH_PR9.json (CI uploads it as
# a non-gating artifact).
serve-smoke:
	@set -e; \
	bin=$$(mktemp); \
	trap 'kill $$pid 2>/dev/null || true; rm -f $$bin' EXIT; \
	$(GO) build -o $$bin ./cmd/queryd; \
	$$bin -addr $(SERVEADDR) -sim-days 3 -seed 1 -hold 60s & pid=$$!; \
	for i in $$(seq 1 150); do \
	    curl -sf http://$(SERVEADDR)/api/epoch >/dev/null 2>&1 && break; \
	    sleep 0.2; \
	done; \
	for ep in epoch summary availability labs machines weekly equivalence uptimes heatmap events; do \
	    code=$$(curl -s -o /dev/null -w '%{http_code}' http://$(SERVEADDR)/api/$$ep); \
	    [ "$$code" = 200 ] || { echo "serve-smoke: /api/$$ep -> $$code (want 200)"; exit 1; }; \
	done; \
	echo "serve-smoke: all /api endpoints 200"; \
	etag=$$(curl -sI http://$(SERVEADDR)/api/summary | tr -d '\r' | awk 'tolower($$1)=="etag:"{print $$2}'); \
	[ -n "$$etag" ] || { echo "serve-smoke: no ETag on /api/summary"; exit 1; }; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $$etag" http://$(SERVEADDR)/api/summary); \
	[ "$$code" = 304 ] || { echo "serve-smoke: revalidation -> $$code (want 304)"; exit 1; }; \
	echo "serve-smoke: ETag round-trip 304 ok ($$etag)"; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	$(GO) run ./tools/queryload -sim-days 3 -seed 1 \
	    -endpoints epoch,summary,availability,heatmap \
	    -duration 1s -saturate -floor $(QUERYFLOOR) -o BENCH_PR9.json

# telemetry-demo runs the live collector with the metrics endpoint and
# span trace enabled, scrapes it mid-run, and fails if /metrics or
# /healthz do not answer.
telemetry-demo:
	@rm -f /tmp/winlab-spans.jsonl
	@$(GO) run ./cmd/ddcd -iters 40 -period 200ms -failp 0.25 -retries 2 \
	    -breaker-k 3 -metrics-addr 127.0.0.1:9190 \
	    -trace-out /tmp/winlab-spans.jsonl & \
	pid=$$!; \
	sleep 3; \
	echo "--- /metrics (ddc_* excerpt) ---"; \
	curl -sf http://127.0.0.1:9190/metrics | grep '^ddc_' || { kill $$pid; exit 1; }; \
	echo "--- /healthz ---"; \
	curl -sf http://127.0.0.1:9190/healthz || { kill $$pid; exit 1; }; \
	echo "--- /spans?n=2 ---"; \
	curl -sf 'http://127.0.0.1:9190/spans?n=2' || { kill $$pid; exit 1; }; \
	wait $$pid; \
	echo "--- span trace ---"; \
	head -2 /tmp/winlab-spans.jsonl; \
	wc -l < /tmp/winlab-spans.jsonl | xargs echo "spans:"
