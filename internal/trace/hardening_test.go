package trace

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// allocBomb is a syntactically plausible TBv1 prefix whose leading
// sample count claims 2^63 samples. Before clampPrealloc the decoder
// would try to reserve the whole slice up front; it must now fail with
// a bounded allocation instead. The same bytes live in
// testdata/fuzz/FuzzReadBinary/alloc-bomb-sample-count.
func allocBomb() []byte {
	b := []byte("WLTB\x01")
	b = append(b, 0, 0, 0, 0, 0) // header times + period
	b = append(b, 0, 0)          // machine count, iteration count
	b = append(b, bytes.Repeat([]byte{0x80}, 9)...)
	b = append(b, 0x01) // sample count = 1<<63
	return b
}

func TestReadBinaryAllocBomb(t *testing.T) {
	counts := []struct {
		name string
		data []byte
	}{
		{"samples", allocBomb()},
		// The same lie in the machine-count position.
		{"machines", append([]byte("WLTB\x01\x00\x00\x00\x00\x00"),
			append(bytes.Repeat([]byte{0x80}, 9), 0x01)...)},
	}
	for _, tc := range counts {
		t.Run(tc.name, func(t *testing.T) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			d, err := ReadBinary(bytes.NewReader(tc.data))
			runtime.ReadMemStats(&after)
			if err == nil {
				t.Fatalf("decoded a %d-byte bomb into %d samples", len(tc.data), len(d.Samples))
			}
			if grew := after.TotalAlloc - before.TotalAlloc; grew > 4<<20 {
				t.Errorf("decoder allocated %d bytes servicing a lying count; want bounded preallocation", grew)
			}
		})
	}
}

func TestClampPrealloc(t *testing.T) {
	for _, tc := range []struct {
		n    uint64
		want int
	}{
		{0, 0}, {1, 1}, {tbPrealloc, tbPrealloc},
		{tbPrealloc + 1, tbPrealloc}, {1 << 63, tbPrealloc},
	} {
		if got := clampPrealloc(tc.n); got != tc.want {
			t.Errorf("clampPrealloc(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestBinaryCursor checks the incremental decoder against the batch
// one: same header metadata, same samples in the same order, clean EOF.
func TestBinaryCursor(t *testing.T) {
	d := newDataset()
	d.Samples = append(d.Samples, FromSnapshot(9, snapshotFixture()))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	want, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewBinaryCursor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Start().Equal(want.Start) || !c.End().Equal(want.End) || c.Period() != want.Period {
		t.Errorf("header times/period diverge from ReadBinary")
	}
	if len(c.Machines()) != len(want.Machines) || len(c.Iterations()) != len(want.Iterations) {
		t.Errorf("catalogue sizes diverge")
	}
	if c.DeclaredSamples() != uint64(len(want.Samples)) {
		t.Errorf("DeclaredSamples = %d, want %d", c.DeclaredSamples(), len(want.Samples))
	}
	var got []Sample
	var s Sample
	for {
		ok, err := c.Next(&s)
		if err != nil {
			t.Fatalf("Next after %d samples: %v", len(got), err)
		}
		if !ok {
			break
		}
		got = append(got, s)
	}
	if len(got) != len(want.Samples) {
		t.Fatalf("cursor yielded %d samples, ReadBinary %d", len(got), len(want.Samples))
	}
	for i := range got {
		if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", want.Samples[i]) {
			t.Fatalf("sample %d diverges:\ncursor: %+v\nbatch:  %+v", i, got[i], want.Samples[i])
		}
	}
	// Next past EOF stays a clean stop, not an error.
	if ok, err := c.Next(&s); ok || err != nil {
		t.Errorf("Next past EOF = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestBinaryCursorTrailingData(t *testing.T) {
	d := newDataset()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0xFF)
	c, err := NewBinaryCursor(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var s Sample
	var last error
	for {
		ok, err := c.Next(&s)
		if err != nil {
			last = err
			break
		}
		if !ok {
			break
		}
	}
	if last == nil || !strings.Contains(last.Error(), "trailing data") {
		t.Fatalf("trailing byte not reported; err = %v", last)
	}
	// The error must be sticky.
	if _, err := c.Next(&s); err == nil {
		t.Error("error did not stick")
	}
}

// failWriter fails every Write once more than limit bytes have been
// accepted, simulating a device that fills up mid-stream.
type failWriter struct {
	limit int
	n     int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		room := w.limit - w.n
		if room < 0 {
			room = 0
		}
		w.n = w.limit
		return room, fmt.Errorf("failWriter: limit %d exceeded", w.limit)
	}
	w.n += len(p)
	return len(p), nil
}

// TestEncodeStreamErrorPropagation drives every encode branch (CSV and
// TBv1, plain and gzipped) into a writer that fails at several offsets
// — including 0, so gzip's own header write fails, and a limit large
// enough that only the final Flush/Close can observe the error. Every
// combination must surface a non-nil error to the caller; a lost error
// here means a silently truncated trace file.
func TestEncodeStreamErrorPropagation(t *testing.T) {
	d := newDataset()
	d.Samples = append(d.Samples, FromSnapshot(9, snapshotFixture()))

	// Find the full encoded sizes so "fail at the last byte" offsets can
	// be derived rather than guessed.
	sizes := map[string]int{}
	for _, f := range []Format{FormatCSV, FormatTB} {
		for _, gz := range []bool{false, true} {
			var buf bytes.Buffer
			if err := encodeStream(&buf, d, f, gz); err != nil {
				t.Fatalf("clean encode %v gz=%v: %v", f, gz, err)
			}
			sizes[fmt.Sprintf("%d/%v", f, gz)] = buf.Len()
		}
	}

	for _, f := range []Format{FormatCSV, FormatTB} {
		for _, gz := range []bool{false, true} {
			full := sizes[fmt.Sprintf("%d/%v", f, gz)]
			for _, limit := range []int{0, 1, 7, full / 2, full - 1} {
				if limit >= full {
					continue
				}
				w := &failWriter{limit: limit}
				err := encodeStream(w, d, f, gz)
				if err == nil {
					t.Errorf("format=%v gz=%v limit=%d/%d: write failure swallowed", f, gz, limit, full)
				}
			}
		}
	}
}

// TestWriteFileFormatPropagatesCreateError: the caller must see path
// errors, not a silent no-op.
func TestWriteFileFormatPropagatesCreateError(t *testing.T) {
	d := newDataset()
	if err := WriteFileFormat(t.TempDir()+"/no/such/dir/x.tb", d, FormatTB); err == nil {
		t.Fatal("missing parent directory not reported")
	}
}
