package trace_test

import (
	"bytes"
	"reflect"
	"testing"

	"winlab/internal/experiment"
	"winlab/internal/trace"
)

// simDataset runs the paper's simulated experiment for a few days and
// returns its trace — a realistic dataset with sessions, reboots,
// outages, parse-error bookkeeping and multi-lab machine metadata.
func simDataset(t *testing.T, seed int64) *trace.Dataset {
	t.Helper()
	cfg := experiment.Default(seed)
	cfg.Days = 2
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res.Dataset
}

func requireEqual(t *testing.T, seed int64, stage string, got, want *trace.Dataset) {
	t.Helper()
	if !reflect.DeepEqual(got.Start, want.Start) || !reflect.DeepEqual(got.End, want.End) ||
		got.Period != want.Period {
		t.Fatalf("seed %d: %s: header mismatch", seed, stage)
	}
	if !reflect.DeepEqual(got.Machines, want.Machines) {
		t.Fatalf("seed %d: %s: machines mismatch", seed, stage)
	}
	if !reflect.DeepEqual(got.Iterations, want.Iterations) {
		t.Fatalf("seed %d: %s: iterations mismatch (incl. End/ParseErrors)", seed, stage)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("seed %d: %s: samples = %d, want %d", seed, stage, len(got.Samples), len(want.Samples))
	}
	for i := range want.Samples {
		if !reflect.DeepEqual(got.Samples[i], want.Samples[i]) {
			t.Fatalf("seed %d: %s: sample %d mismatch:\n got %+v\nwant %+v",
				seed, stage, i, got.Samples[i], want.Samples[i])
		}
	}
}

// TestBinaryEquivalenceSim is the PR's storage-contract test: on real
// simulated traces (seeds 1–3),
//
//	Dataset → TBv1 → Dataset      is the identity,
//	CSV → TBv1 → CSV              is byte-identical,
//
// and the frozen Index built from a TBv1-loaded dataset is
// fingerprint-identical to the CSV-loaded one (same machines, spans,
// aggregates and interval endpoints).
func TestBinaryEquivalenceSim(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d := simDataset(t, seed)

		// Dataset → TBv1 → Dataset.
		var tb bytes.Buffer
		if err := trace.WriteBinary(&tb, d); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fromTB, err := trace.ReadBinary(bytes.NewReader(tb.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		requireEqual(t, seed, "dataset->tbv1->dataset", fromTB, d)

		// CSV → TBv1 → CSV, byte level.
		var csv1 bytes.Buffer
		if err := trace.Write(&csv1, d); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fromCSV, err := trace.ReadAny(bytes.NewReader(csv1.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var tb2 bytes.Buffer
		if err := trace.WriteBinary(&tb2, fromCSV); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		viaTB, err := trace.ReadAny(bytes.NewReader(tb2.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var csv2 bytes.Buffer
		if err := trace.Write(&csv2, viaTB); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
			t.Fatalf("seed %d: CSV -> TBv1 -> CSV is not byte-identical", seed)
		}

		// Index fingerprints: machines, spans, aggregates, intervals.
		ixCSV, ixTB := fromCSV.Freeze(), viaTB.Freeze()
		if !reflect.DeepEqual(ixCSV.Machines(), ixTB.Machines()) {
			t.Fatalf("seed %d: index machine sets differ", seed)
		}
		if ixCSV.Attempts() != ixTB.Attempts() || ixCSV.Days() != ixTB.Days() {
			t.Fatalf("seed %d: index aggregates differ", seed)
		}
		for _, id := range ixCSV.Machines() {
			a, b := ixCSV.Samples(id), ixTB.Samples(id)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: machine %s span differs", seed, id)
			}
		}
		ivA, ivB := ixCSV.Intervals(0), ixTB.Intervals(0)
		if len(ivA) != len(ivB) {
			t.Fatalf("seed %d: interval counts differ: %d vs %d", seed, len(ivA), len(ivB))
		}
		for i := range ivA {
			if !ivA[i].A.Time.Equal(ivB[i].A.Time) || !ivA[i].B.Time.Equal(ivB[i].B.Time) ||
				ivA[i].A.Machine != ivB[i].A.Machine {
				t.Fatalf("seed %d: interval %d endpoints differ", seed, i)
			}
		}

		// Size: the binary encoding must stay well under the CSV size
		// (the acceptance target is ≤40%; the benchmark records the
		// exact ratio).
		ratio := float64(tb.Len()) / float64(csv1.Len())
		t.Logf("seed %d: TBv1 %d bytes, CSV %d bytes (%.1f%%)", seed, tb.Len(), csv1.Len(), 100*ratio)
		if ratio > 0.40 {
			t.Errorf("seed %d: TBv1/CSV size ratio %.1f%% exceeds 40%%", seed, 100*ratio)
		}
	}
}
