package trace

import (
	"testing"
	"time"
)

var t0 = time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)

// mkSample builds a sample with the fields the tests care about.
func mkSample(machine string, at time.Time, boot time.Time, idle time.Duration, user string) Sample {
	s := Sample{
		Machine:  machine,
		Lab:      "L01",
		Time:     at,
		BootTime: boot,
		Uptime:   at.Sub(boot),
		CPUIdle:  idle,
		DiskGB:   74.5,
	}
	if user != "" {
		s.SessionUser = user
		s.SessionStart = boot
	}
	return s
}

func TestSampleAccessors(t *testing.T) {
	s := mkSample("M1", t0.Add(time.Hour), t0, 50*time.Minute, "u")
	if !s.HasSession() {
		t.Error("HasSession")
	}
	if s.SessionAge() != time.Hour {
		t.Errorf("SessionAge = %v", s.SessionAge())
	}
	s.FreeDiskGB = 54.5
	if s.UsedDiskGB() != 20 {
		t.Errorf("UsedDiskGB = %v", s.UsedDiskGB())
	}
	s2 := mkSample("M1", t0, t0, 0, "")
	if s2.HasSession() || s2.SessionAge() != 0 {
		t.Error("sessionless accessors")
	}
}

func TestSameBoot(t *testing.T) {
	a := mkSample("M1", t0.Add(time.Hour), t0, 0, "")
	b := mkSample("M1", t0.Add(2*time.Hour), t0, 0, "")
	if !SameBoot(&a, &b) {
		t.Error("same boot not detected")
	}
	c := mkSample("M1", t0.Add(3*time.Hour), t0.Add(2*time.Hour+30*time.Minute), 0, "")
	if SameBoot(&b, &c) {
		t.Error("reboot not detected")
	}
	// Sub-second skew tolerated.
	d := mkSample("M1", t0.Add(time.Hour), t0.Add(500*time.Millisecond), 0, "")
	if !SameBoot(&a, &d) {
		t.Error("sub-second boot-time skew rejected")
	}
}

func TestIntervalMetrics(t *testing.T) {
	a := mkSample("M1", t0, t0.Add(-time.Hour), 55*time.Minute, "")
	b := mkSample("M1", t0.Add(15*time.Minute), t0.Add(-time.Hour), 55*time.Minute+12*time.Minute, "")
	a.SentBytes, a.RecvBytes = 1000, 2000
	b.SentBytes, b.RecvBytes = 1000+9000, 2000+18000
	iv := Interval{A: &a, B: &b}
	if iv.Duration() != 15*time.Minute {
		t.Errorf("Duration = %v", iv.Duration())
	}
	if got := iv.CPUIdlePct(); got != 80 {
		t.Errorf("CPUIdlePct = %v, want 80", got)
	}
	if got := iv.SentBps(); got != 9000*8/900.0 {
		t.Errorf("SentBps = %v", got)
	}
	if got := iv.RecvBps(); got != 18000*8/900.0 {
		t.Errorf("RecvBps = %v", got)
	}
}

func TestIntervalClamping(t *testing.T) {
	a := mkSample("M1", t0, t0, 0, "")
	b := mkSample("M1", t0.Add(15*time.Minute), t0, 20*time.Minute, "")
	iv := Interval{A: &a, B: &b}
	if got := iv.CPUIdlePct(); got != 100 {
		t.Errorf("over-100%% idle not clamped: %v", got)
	}
	// Counter regression (should not happen, but must not go negative).
	a.SentBytes = 500
	b.SentBytes = 100
	if got := iv.SentBps(); got != 0 {
		t.Errorf("negative rate = %v", got)
	}
	// Zero-duration interval.
	c := mkSample("M1", t0, t0, 0, "")
	if got := (Interval{A: &a, B: &c}).CPUIdlePct(); got != 0 {
		t.Errorf("zero-duration idle = %v", got)
	}
}

func newDataset() *Dataset {
	d := &Dataset{
		Start:  t0,
		End:    t0.AddDate(0, 0, 1),
		Period: 15 * time.Minute,
		Machines: []MachineInfo{
			{ID: "M1", Lab: "L01", RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1},
			{ID: "M2", Lab: "L01", RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1},
		},
	}
	boot1 := t0
	boot2 := t0.Add(2 * time.Hour)
	// M1: three samples in one boot, then a reboot and one more.
	d.Samples = append(d.Samples,
		mkSample("M1", t0.Add(15*time.Minute), boot1, 10*time.Minute, ""),
		mkSample("M1", t0.Add(30*time.Minute), boot1, 24*time.Minute, "u"),
		mkSample("M1", t0.Add(45*time.Minute), boot1, 39*time.Minute, "u"),
		mkSample("M1", t0.Add(135*time.Minute), boot2, 10*time.Minute, ""),
		// M2: two samples, same boot, separated by a huge gap (outage).
		mkSample("M2", t0.Add(15*time.Minute), boot1, 10*time.Minute, ""),
		mkSample("M2", t0.Add(5*time.Hour), boot1, 4*time.Hour, ""),
	)
	for i := range d.Samples {
		d.Samples[i].Iter = i
	}
	d.Iterations = []Iteration{
		{Iter: 0, Start: t0, End: t0.Add(3 * time.Minute), Attempted: 2, Responded: 2},
		{Iter: 1, Start: t0.Add(15 * time.Minute), Attempted: 2, Responded: 1, ParseErrors: 1},
	}
	return d
}

func TestIntervals(t *testing.T) {
	d := newDataset()
	ivs := d.Intervals(0)
	if len(ivs) != 3 { // M1: 2 pairs same boot; M2: 1 pair
		t.Fatalf("intervals = %d, want 3", len(ivs))
	}
	// With a gap cap, M2's outage-spanning pair drops.
	ivs = d.Intervals(30 * time.Minute)
	if len(ivs) != 2 {
		t.Fatalf("capped intervals = %d, want 2", len(ivs))
	}
	for _, iv := range ivs {
		if iv.A.Machine != iv.B.Machine {
			t.Error("cross-machine interval")
		}
		if !iv.B.Time.After(iv.A.Time) {
			t.Error("unordered interval")
		}
	}
}

func TestByMachineSorts(t *testing.T) {
	d := newDataset()
	// Shuffle sample order.
	d.Samples[0], d.Samples[5] = d.Samples[5], d.Samples[0]
	by := d.ByMachine()
	if len(by) != 2 {
		t.Fatalf("machines = %d", len(by))
	}
	for id, ss := range by {
		for i := 1; i < len(ss); i++ {
			if ss[i].Time.Before(ss[i-1].Time) {
				t.Errorf("%s samples unsorted", id)
			}
		}
	}
	if len(by["M1"]) != 4 || len(by["M2"]) != 2 {
		t.Errorf("per-machine counts: %d/%d", len(by["M1"]), len(by["M2"]))
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := newDataset()
	if d.Attempts() != 4 {
		t.Errorf("Attempts = %d", d.Attempts())
	}
	if d.Days() != 1 {
		t.Errorf("Days = %v", d.Days())
	}
	if d.MachineByID("M2") == nil || d.MachineByID("nope") != nil {
		t.Error("MachineByID")
	}
	if got := d.Machines[0].PerfIndex(); got != 31.8 {
		t.Errorf("PerfIndex = %v", got)
	}
}

func TestFromSnapshotMapsFields(t *testing.T) {
	// Covered more fully in the probe round-trip; here just the mapping.
	s := FromSnapshot(3, snapshotFixture())
	if s.Iter != 3 || s.Machine != "L01-M07" || s.Lab != "L01" ||
		s.MemLoadPct != 59 || s.PowerCycles != 289 || s.SessionUser != "u" {
		t.Errorf("FromSnapshot = %+v", s)
	}
}
