// Package trace defines the monitoring trace: the samples the collector
// gathered, per-iteration bookkeeping, and the derived "interval"
// observations (CPU idleness and network rates between two consecutive
// samples of the same boot) that the paper's Table 2 is computed from.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"winlab/internal/machine"
)

// Sample is one successful probe of one machine — the post-collected form
// of a W32Probe report.
type Sample struct {
	Iter    int // collector iteration number (0-based)
	Time    time.Time
	Machine string
	Lab     string

	BootTime     time.Time
	Uptime       time.Duration
	CPUIdle      time.Duration // cumulative since boot
	MemLoadPct   int
	SwapLoadPct  int
	DiskGB       float64
	FreeDiskGB   float64
	PowerCycles  int64
	PowerOnHours int64
	SentBytes    uint64
	RecvBytes    uint64

	SessionUser  string
	SessionStart time.Time
}

// HasSession reports whether an interactive user was logged in.
func (s *Sample) HasSession() bool { return s.SessionUser != "" }

// SessionAge returns the age of the interactive session at sample time.
func (s *Sample) SessionAge() time.Duration {
	if !s.HasSession() {
		return 0
	}
	return s.Time.Sub(s.SessionStart)
}

// UsedDiskGB returns the occupied disk space.
func (s *Sample) UsedDiskGB() float64 { return s.DiskGB - s.FreeDiskGB }

// FromSnapshot converts a parsed probe report into a sample.
func FromSnapshot(iter int, sn machine.Snapshot) Sample {
	return Sample{
		Iter:         iter,
		Time:         sn.Time,
		Machine:      sn.ID,
		Lab:          sn.Lab,
		BootTime:     sn.BootTime,
		Uptime:       sn.Uptime,
		CPUIdle:      sn.CPUIdle,
		MemLoadPct:   sn.MemLoadPct,
		SwapLoadPct:  sn.SwapLoadPct,
		DiskGB:       sn.DiskGB,
		FreeDiskGB:   sn.FreeDiskGB,
		PowerCycles:  sn.PowerCycles,
		PowerOnHours: sn.PowerOnHours,
		SentBytes:    sn.SentBytes,
		RecvBytes:    sn.RecvBytes,
		SessionUser:  sn.SessionUser,
		SessionStart: sn.SessionStart,
	}
}

// Iteration records one collector pass over the fleet.
type Iteration struct {
	Iter      int
	Start     time.Time
	End       time.Time // sweep end; zero in traces written before v1.1
	Attempted int
	Responded int

	// ParseErrors counts reports of this iteration that were received but
	// did not parse — machines that responded with garbage rather than
	// not at all (zero in traces written before v1.1).
	ParseErrors int
}

// Elapsed returns the iteration's sweep duration, or zero when End is
// unset (legacy traces).
func (it Iteration) Elapsed() time.Duration {
	if it.Start.IsZero() || it.End.IsZero() {
		return 0
	}
	return it.End.Sub(it.Start)
}

// MachineInfo is the static per-machine metadata the analysis needs
// (performance indexes for the equivalence ratio, hardware for grouping).
type MachineInfo struct {
	ID       string
	Lab      string
	RAMMB    int
	DiskGB   float64
	IntIndex float64
	FPIndex  float64

	// JoinIter and LeaveIter bound the machine's fleet membership in
	// iteration coordinates for partial-lifetime machines (scenario
	// fleet churn: a machine that joined mid-trace or was retired).
	// The machine is a member for JoinIter ≤ iter < LeaveIter, with
	// LeaveIter 0 meaning "until the end". The zero values — full
	// lifetime — are what every pre-lifecycle trace decodes to, so
	// legacy traces keep their exact semantics.
	JoinIter  int
	LeaveIter int
}

// PerfIndex returns the 50/50 combined NBench index.
func (m MachineInfo) PerfIndex() float64 { return 0.5*m.IntIndex + 0.5*m.FPIndex }

// ActiveAt reports whether the machine was a fleet member at the given
// iteration (always true for full-lifetime machines).
func (m MachineInfo) ActiveAt(iter int) bool {
	return iter >= m.JoinIter && (m.LeaveIter == 0 || iter < m.LeaveIter)
}

// PartialLifetime reports whether the machine has a bounded membership
// window (joined after iteration 0 or left before the end).
func (m MachineInfo) PartialLifetime() bool { return m.JoinIter > 0 || m.LeaveIter > 0 }

// Dataset is a complete monitoring trace.
//
// A Dataset must not be copied by value after first use: the cached index
// (see Freeze/Index) is keyed to the instance.
type Dataset struct {
	Start, End time.Time
	Period     time.Duration
	Machines   []MachineInfo
	Iterations []Iteration
	Samples    []Sample

	// idx caches the frozen Index; idxMu serialises (re)builds. See
	// index.go.
	idxMu sync.Mutex
	idx   atomic.Pointer[Index]
}

// MachineByID returns the metadata for one machine, or nil.
func (d *Dataset) MachineByID(id string) *MachineInfo {
	for i := range d.Machines {
		if d.Machines[i].ID == id {
			return &d.Machines[i]
		}
	}
	return nil
}

// Attempts returns the total number of probe attempts.
func (d *Dataset) Attempts() int {
	n := 0
	for _, it := range d.Iterations {
		n += it.Attempted
	}
	return n
}

// Days returns the experiment length in (fractional) days.
func (d *Dataset) Days() float64 {
	return d.End.Sub(d.Start).Hours() / 24
}

// SortSamples orders samples by machine then time, the order the pairing
// and session-detection passes require. Collectors append in iteration
// order, so this is typically a near-sorted input. Freeze calls it once;
// on an already-frozen dataset it is a (stable) no-op.
func (d *Dataset) SortSamples() {
	d.idxMu.Lock()
	defer d.idxMu.Unlock()
	d.sortSamplesLocked()
}

func (d *Dataset) sortSamplesLocked() {
	sort.SliceStable(d.Samples, func(i, j int) bool {
		a, b := &d.Samples[i], &d.Samples[j]
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.Time.Before(b.Time)
	})
}

// ByMachine groups the samples per machine, preserving time order. It is
// a compatibility shim over the frozen Index (freezing the dataset on
// first use): the per-machine pointer slices are rebuilt on every call,
// so hot paths should use Index().Samples / EachMachine instead, which
// return shared subslices without allocating.
func (d *Dataset) ByMachine() map[string][]*Sample {
	ix := d.Index()
	out := make(map[string][]*Sample, len(ix.ids))
	for n, id := range ix.ids {
		sp := ix.spans[n]
		ptrs := make([]*Sample, sp.hi-sp.lo)
		for j := range ptrs {
			ptrs[j] = &d.Samples[sp.lo+j]
		}
		out[id] = ptrs
	}
	return out
}

// Interval is a pair of consecutive samples of the same machine within the
// same boot (no reboot in between). The paper computes CPU idleness and
// network rates over such intervals (§4.2): cumulative counters make the
// averages exact regardless of fluctuations inside the interval.
type Interval struct {
	A, B *Sample
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.B.Time.Sub(iv.A.Time) }

// CPUIdlePct returns the average CPU idleness percentage over the interval.
func (iv Interval) CPUIdlePct() float64 {
	dt := iv.Duration()
	if dt <= 0 {
		return 0
	}
	p := 100 * float64(iv.B.CPUIdle-iv.A.CPUIdle) / float64(dt)
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}

// SentBps and RecvBps return the average network rates over the interval in
// bits per second.
func (iv Interval) SentBps() float64 {
	return counterBps(iv.A.SentBytes, iv.B.SentBytes, iv.Duration())
}

// RecvBps returns the average receive rate over the interval in bps.
func (iv Interval) RecvBps() float64 {
	return counterBps(iv.A.RecvBytes, iv.B.RecvBytes, iv.Duration())
}

func counterBps(a, b uint64, dt time.Duration) float64 {
	if dt <= 0 || b < a {
		return 0
	}
	return float64(b-a) * 8 / dt.Seconds()
}

// SameBoot reports whether two samples belong to the same machine session.
// Boot timestamps within one second are considered equal (the probe prints
// whole seconds).
func SameBoot(a, b *Sample) bool {
	d := b.BootTime.Sub(a.BootTime)
	if d < 0 {
		d = -d
	}
	return d <= time.Second
}

// Intervals extracts all consecutive same-boot sample pairs, per machine.
// maxGap drops pairs separated by more than that duration (collector
// outages would otherwise create misleadingly long intervals); a zero
// maxGap keeps everything.
//
// It is a shim over the frozen Index: the pairs are computed once per
// distinct maxGap and cached, and the returned slice is that shared cache
// — treat it as read-only. Pairs are ordered by machine (sorted) then
// time, so repeated calls are deterministic (the pre-index implementation
// followed map iteration order, which made the floating-point
// accumulation order — and the last bits of every derived mean — vary
// from run to run).
func (d *Dataset) Intervals(maxGap time.Duration) []Interval {
	return d.Index().Intervals(maxGap)
}
