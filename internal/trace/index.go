package trace

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Index is the shared, immutable view over a frozen Dataset that every
// analysis consumer reads from: per-machine contiguous sample spans over
// the machine/time-sorted sample slice, interned machine IDs in sorted
// order, precomputed same-boot interval pairs keyed by max-gap, and the
// cached Attempts/Days aggregates.
//
// The paper's artefacts (Table 2, Figures 2–6, the harvest and predictor
// extensions) all derive from the same two expensive passes — sorting the
// samples per machine and pairing consecutive same-boot samples. Before
// the index, every consumer repeated both passes per call
// (Dataset.ByMachine re-sorted and rebuilt its map each time); the index
// performs them once per dataset, which is what makes the parallel
// analysis driver (analysis.All) cheap and deterministic: every worker
// reads the same frozen spans and the same cached interval slices.
//
// An Index is safe for concurrent use. The slices it returns are shared,
// not copies — treat them as read-only.
type Index struct {
	ds *Dataset

	// Freeze-time fingerprint, used to detect structural mutation of the
	// dataset after indexing (see Dataset.Index).
	samplesLen  int
	samplesPtr  *Sample // &ds.Samples[0] at freeze time; nil when empty
	itersLen    int
	machinesLen int

	ids   []string // machine IDs with ≥1 sample, sorted
	spans []span   // aligned with ids: ds.Samples[lo:hi]
	byID  map[string]int
	info  map[string]*MachineInfo // static metadata, all catalogued machines

	attempts int
	days     float64

	// fingerprint digests the frozen epoch's identity (see Fingerprint).
	fingerprint uint64

	// stale is set by Dataset.InvalidateIndex: the dataset's sample
	// fields were edited in place, so every cached derived slice (the
	// interval pairs in particular) may describe values that no longer
	// exist. The fingerprint cannot see in-place edits — this flag is how
	// the read paths learn about them.
	stale atomic.Bool

	mu    sync.RWMutex
	pairs map[time.Duration][]Interval // maxGap → same-boot pairs, machine order
}

// span is one machine's contiguous sample range in the sorted slice.
type span struct{ lo, hi int }

// Freeze sorts the dataset's samples (machine, then time — the one
// explicit mutation of the freeze step), builds the index and caches it on
// the dataset. Calling Freeze again after structural changes rebuilds the
// index; see Dataset.Index for the automatic staleness check.
func (d *Dataset) Freeze() *Index {
	d.idxMu.Lock()
	defer d.idxMu.Unlock()
	return d.freezeLocked()
}

// Index returns the dataset's cached index, building it on first use. If
// the dataset was structurally mutated since the last freeze (samples,
// iterations or machines appended, truncated or reallocated), the
// mutation is detected and the index is rebuilt. In-place edits to sample
// fields are not detectable — call InvalidateIndex after those.
func (d *Dataset) Index() *Index {
	if ix := d.idx.Load(); ix != nil && ix.valid() {
		return ix
	}
	d.idxMu.Lock()
	defer d.idxMu.Unlock()
	if ix := d.idx.Load(); ix != nil && ix.valid() {
		return ix
	}
	return d.freezeLocked()
}

// InvalidateIndex drops the cached index. Use after mutating sample
// fields in place (structural changes are detected automatically).
//
// The dropped index is also marked stale, so a consumer still holding a
// reference to it (handed out before the edit) cannot observe cached
// derived data — its Intervals calls transparently delegate to the
// dataset's fresh index instead of serving pre-edit pairs.
func (d *Dataset) InvalidateIndex() {
	d.idxMu.Lock()
	defer d.idxMu.Unlock()
	if ix := d.idx.Load(); ix != nil {
		ix.stale.Store(true)
	}
	d.idx.Store(nil)
}

// freezeLocked builds the index; the caller holds d.idxMu.
func (d *Dataset) freezeLocked() *Index {
	d.sortSamplesLocked()
	ix := &Index{
		ds:          d,
		samplesLen:  len(d.Samples),
		itersLen:    len(d.Iterations),
		machinesLen: len(d.Machines),
		byID:        make(map[string]int),
		info:        make(map[string]*MachineInfo, len(d.Machines)),
		pairs:       make(map[time.Duration][]Interval),
	}
	if len(d.Samples) > 0 {
		ix.samplesPtr = &d.Samples[0]
	}
	for i := 0; i < len(d.Samples); {
		j := i + 1
		id := d.Samples[i].Machine
		for j < len(d.Samples) && d.Samples[j].Machine == id {
			j++
		}
		ix.byID[id] = len(ix.ids)
		ix.ids = append(ix.ids, id)
		ix.spans = append(ix.spans, span{lo: i, hi: j})
		i = j
	}
	for i := range d.Machines {
		ix.info[d.Machines[i].ID] = &d.Machines[i]
	}
	for _, it := range d.Iterations {
		ix.attempts += it.Attempted
	}
	ix.days = d.End.Sub(d.Start).Hours() / 24
	ix.fingerprint = fingerprintLocked(d)
	d.idx.Store(ix)
	return ix
}

// fingerprintLocked digests the dataset's identity at freeze time; the
// caller holds d.idxMu and the samples are already machine/time-sorted.
func fingerprintLocked(d *Dataset) uint64 {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	u64(uint64(len(d.Samples)))
	u64(uint64(len(d.Iterations)))
	u64(uint64(len(d.Machines)))
	u64(uint64(d.Start.UnixNano()))
	u64(uint64(d.End.UnixNano()))
	u64(uint64(d.Period))
	if n := len(d.Iterations); n > 0 {
		last := d.Iterations[n-1]
		u64(uint64(last.Iter))
		u64(uint64(last.Start.UnixNano()))
		u64(uint64(last.Responded))
	}
	if n := len(d.Samples); n > 0 {
		for _, s := range []*Sample{&d.Samples[0], &d.Samples[n-1]} {
			_, _ = h.Write([]byte(s.Machine))
			u64(uint64(s.Iter))
			u64(uint64(s.Time.UnixNano()))
			u64(uint64(s.BootTime.UnixNano()))
		}
	}
	return h.Sum64()
}

// Fingerprint returns a stable 64-bit digest of the frozen epoch: sample,
// iteration and machine counts, the experiment bounds and period, and the
// boundary records (last iteration, first and last sorted sample). It is
// deterministic across processes — the same trace always fingerprints the
// same — and changes whenever the collector commits another iteration,
// which is what makes it the snapshot/ETag primitive of the query layer:
// equal fingerprints mean a cached aggregate is still valid, a changed
// fingerprint is an epoch advance.
//
// The digest reads boundary records only (O(1)), so it cannot see
// arbitrary in-place edits deep inside the sample slice; those are the
// job of InvalidateIndex, exactly as for the structural staleness check.
func (ix *Index) Fingerprint() uint64 { return ix.fingerprint }

// Valid reports whether the index still describes its dataset: the
// structural fingerprint matches (no appends, truncations or
// reallocations since freeze) and InvalidateIndex has not flagged an
// in-place edit. The trace doctor uses this as the index-agreement
// invariant; analysis code normally never needs it because
// Dataset.Index() re-freezes automatically.
func (ix *Index) Valid() bool {
	return !ix.stale.Load() && ix.valid()
}

// valid reports whether the index still matches the dataset's structure.
func (ix *Index) valid() bool {
	d := ix.ds
	if ix.samplesLen != len(d.Samples) || ix.itersLen != len(d.Iterations) ||
		ix.machinesLen != len(d.Machines) {
		return false
	}
	return len(d.Samples) == 0 || ix.samplesPtr == &d.Samples[0]
}

// Dataset returns the indexed dataset.
func (ix *Index) Dataset() *Dataset { return ix.ds }

// Machines returns the machine IDs that have at least one sample, in
// sorted order — the deterministic iteration order every consumer uses
// (map iteration order would make float accumulation order, and therefore
// the last bits of every mean, vary run to run).
func (ix *Index) Machines() []string { return ix.ids }

// Samples returns one machine's samples in time order, as a subslice of
// the dataset's sorted sample slice (shared storage; do not mutate, do
// not append).
func (ix *Index) Samples(id string) []Sample {
	n, ok := ix.byID[id]
	if !ok {
		return nil
	}
	sp := ix.spans[n]
	return ix.ds.Samples[sp.lo:sp.hi:sp.hi]
}

// EachMachine calls fn once per machine with samples, in sorted machine
// order.
func (ix *Index) EachMachine(fn func(id string, ss []Sample)) {
	for n, id := range ix.ids {
		sp := ix.spans[n]
		fn(id, ix.ds.Samples[sp.lo:sp.hi:sp.hi])
	}
}

// Machine returns the static metadata for one machine, or nil — the O(1)
// replacement for Dataset.MachineByID's linear scan.
func (ix *Index) Machine(id string) *MachineInfo { return ix.info[id] }

// Attempts returns the cached total number of probe attempts.
func (ix *Index) Attempts() int { return ix.attempts }

// Days returns the cached experiment length in (fractional) days.
func (ix *Index) Days() float64 { return ix.days }

// Intervals returns all consecutive same-boot sample pairs whose gap is
// at most maxGap (zero keeps everything), in machine-sorted then time
// order. The slice is computed once per distinct maxGap and cached;
// callers must treat it as read-only.
func (ix *Index) Intervals(maxGap time.Duration) []Interval {
	// Staleness re-check on the read path: if the dataset was edited in
	// place (InvalidateIndex) or structurally mutated since this index
	// froze, the cached pairs point at pre-edit values. Delegate to the
	// dataset's current index — Dataset.Index() rebuilds as needed — so a
	// held stale handle can never serve stale intervals.
	if ix.stale.Load() || !ix.valid() {
		if cur := ix.ds.Index(); cur != ix {
			return cur.Intervals(maxGap)
		}
	}
	ix.mu.RLock()
	ivs, ok := ix.pairs[maxGap]
	ix.mu.RUnlock()
	if ok {
		return ivs
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ivs, ok := ix.pairs[maxGap]; ok {
		return ivs
	}
	ivs = ix.buildIntervals(maxGap)
	ix.pairs[maxGap] = ivs
	return ivs
}

// buildIntervals pairs consecutive same-boot samples per machine; the
// caller holds ix.mu.
func (ix *Index) buildIntervals(maxGap time.Duration) []Interval {
	samples := ix.ds.Samples
	// Pre-size from the densest prior pairing (or the worst case) to avoid
	// growth copies on the first build.
	out := make([]Interval, 0, len(samples))
	for _, sp := range ix.spans {
		for i := sp.lo + 1; i < sp.hi; i++ {
			a, b := &samples[i-1], &samples[i]
			if !SameBoot(a, b) {
				continue
			}
			if maxGap > 0 && b.Time.Sub(a.Time) > maxGap {
				continue
			}
			out = append(out, Interval{A: a, B: b})
		}
	}
	return out
}
