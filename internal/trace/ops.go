package trace

import (
	"fmt"
	"sort"
	"time"
)

// TimeSlice returns a new dataset containing only the iterations and
// samples in [from, to). Machine metadata is kept in full. The paper-style
// analyses run unchanged on a slice; the predictor uses slices for honest
// train/test splits.
func TimeSlice(d *Dataset, from, to time.Time) *Dataset {
	out := &Dataset{
		Start:    maxTime(d.Start, from),
		End:      minTime(d.End, to),
		Period:   d.Period,
		Machines: append([]MachineInfo(nil), d.Machines...),
	}
	for _, it := range d.Iterations {
		if !it.Start.Before(from) && it.Start.Before(to) {
			out.Iterations = append(out.Iterations, it)
		}
	}
	for i := range d.Samples {
		s := d.Samples[i]
		if !s.Time.Before(from) && s.Time.Before(to) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// SplitAt partitions a dataset into [start, at) and [at, end) — the
// one-call train/test split.
func SplitAt(d *Dataset, at time.Time) (before, after *Dataset) {
	return TimeSlice(d, d.Start, at), TimeSlice(d, at, d.End)
}

// Merge combines traces collected by *different coordinators* (e.g. one
// per building) into one dataset. Periods must match; machine sets must
// be disjoint — two coordinators each claiming the same machine is a
// deployment error, and silently unioning their samples would interleave
// two probe streams for one host (use MergeSharded for the shards of a
// single coordinator, which share one iteration clock). Iterations are
// renumbered chronologically, and samples are remapped onto the merged
// iteration numbering.
func Merge(ds ...*Dataset) (*Dataset, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	out := &Dataset{Period: ds[0].Period, Start: ds[0].Start, End: ds[0].End}
	seen := map[string]int{}
	type iterKey struct {
		src  int
		iter int
	}
	var allIters []struct {
		key iterKey
		it  Iteration
	}
	for i, d := range ds {
		if d.Period != out.Period {
			return nil, fmt.Errorf("trace: merge with mismatched periods %v and %v", out.Period, d.Period)
		}
		out.Start = minTime(out.Start, d.Start)
		out.End = maxTime(out.End, d.End)
		for _, m := range d.Machines {
			if src, ok := seen[m.ID]; ok {
				return nil, fmt.Errorf("trace: merge: machine %s appears in inputs %d and %d (coordinator traces must have disjoint fleets; shards of one coordinator merge with MergeSharded)", m.ID, src, i)
			}
			seen[m.ID] = i
			out.Machines = append(out.Machines, m)
		}
		for _, it := range d.Iterations {
			allIters = append(allIters, struct {
				key iterKey
				it  Iteration
			}{iterKey{i, it.Iter}, it})
		}
	}
	sort.SliceStable(allIters, func(a, b int) bool {
		return allIters[a].it.Start.Before(allIters[b].it.Start)
	})
	remap := map[iterKey]int{}
	for n, e := range allIters {
		it := e.it
		it.Iter = n
		remap[e.key] = n
		out.Iterations = append(out.Iterations, it)
	}
	for i, d := range ds {
		for j := range d.Samples {
			s := d.Samples[j]
			if n, ok := remap[iterKey{i, s.Iter}]; ok {
				s.Iter = n
			}
			out.Samples = append(out.Samples, s)
		}
	}
	out.SortSamples()
	return out, nil
}

// MergeSharded combines the per-shard datasets of *one* coordinator run
// into the fleet-wide dataset. Unlike Merge, the inputs share a single
// iteration clock: iteration numbers are kept, and records for the same
// iteration are reconciled — starts must agree (the shards observed the
// same sweep), Attempted/Responded/ParseErrors sum across shards, and
// End takes the latest shard's sweep end. Machine sets must be disjoint
// (each machine is collected by exactly one shard). The result is
// sample-identical to what a single unsharded collector would have
// produced, which is exactly what internal/validate's shard arms assert.
func MergeSharded(ds ...*Dataset) (*Dataset, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	out := &Dataset{Period: ds[0].Period, Start: ds[0].Start, End: ds[0].End}
	seen := map[string]int{}
	logs := make([][]Iteration, 0, len(ds))
	for i, d := range ds {
		if d.Period != out.Period {
			return nil, fmt.Errorf("trace: merge with mismatched periods %v and %v", out.Period, d.Period)
		}
		out.Start = minTime(out.Start, d.Start)
		out.End = maxTime(out.End, d.End)
		for _, m := range d.Machines {
			if src, ok := seen[m.ID]; ok {
				return nil, fmt.Errorf("trace: merge: machine %s appears in shards %d and %d (shards must partition the fleet)", m.ID, src, i)
			}
			seen[m.ID] = i
			out.Machines = append(out.Machines, m)
		}
		logs = append(logs, d.Iterations)
		out.Samples = append(out.Samples, d.Samples...)
	}
	iters, err := mergeIterationLogs(logs)
	if err != nil {
		return nil, err
	}
	out.Iterations = iters
	out.SortSamples()
	return out, nil
}

// MergeIterationLogs reconciles per-shard iteration logs sharing one
// iteration clock: same-numbered records must agree on Start,
// Attempted/Responded/ParseErrors sum, End takes the maximum. The merged
// log is sorted by iteration number. Shared by MergeSharded, the segment
// compactor and the shard-aware analysis driver (analysis.AllSegments)
// so all three agree on what a fleet-wide iteration record is.
func MergeIterationLogs(logs [][]Iteration) ([]Iteration, error) {
	return mergeIterationLogs(logs)
}

func mergeIterationLogs(logs [][]Iteration) ([]Iteration, error) {
	var out []Iteration
	at := map[int]int{} // iteration number -> index in out
	for _, log := range logs {
		for _, it := range log {
			i, ok := at[it.Iter]
			if !ok {
				at[it.Iter] = len(out)
				out = append(out, it)
				continue
			}
			prev := &out[i]
			if !prev.Start.Equal(it.Start) {
				return nil, fmt.Errorf("trace: merge: iteration %d starts disagree (%v vs %v); inputs do not share an iteration clock", it.Iter, prev.Start, it.Start)
			}
			prev.Attempted += it.Attempted
			prev.Responded += it.Responded
			prev.ParseErrors += it.ParseErrors
			prev.End = maxTime(prev.End, it.End)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Iter < out[b].Iter })
	return out, nil
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
