package trace

import (
	"fmt"
	"sort"
	"time"
)

// TimeSlice returns a new dataset containing only the iterations and
// samples in [from, to). Machine metadata is kept in full. The paper-style
// analyses run unchanged on a slice; the predictor uses slices for honest
// train/test splits.
func TimeSlice(d *Dataset, from, to time.Time) *Dataset {
	out := &Dataset{
		Start:    maxTime(d.Start, from),
		End:      minTime(d.End, to),
		Period:   d.Period,
		Machines: append([]MachineInfo(nil), d.Machines...),
	}
	for _, it := range d.Iterations {
		if !it.Start.Before(from) && it.Start.Before(to) {
			out.Iterations = append(out.Iterations, it)
		}
	}
	for i := range d.Samples {
		s := d.Samples[i]
		if !s.Time.Before(from) && s.Time.Before(to) {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}

// SplitAt partitions a dataset into [start, at) and [at, end) — the
// one-call train/test split.
func SplitAt(d *Dataset, at time.Time) (before, after *Dataset) {
	return TimeSlice(d, d.Start, at), TimeSlice(d, at, d.End)
}

// Merge combines traces collected by different coordinators (e.g. one per
// building) into one dataset. Periods must match; machine sets are
// unioned (duplicate IDs must carry identical metadata); iterations are
// renumbered chronologically, and samples are remapped onto the merged
// iteration numbering.
func Merge(ds ...*Dataset) (*Dataset, error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	out := &Dataset{Period: ds[0].Period, Start: ds[0].Start, End: ds[0].End}
	seen := map[string]MachineInfo{}
	type iterKey struct {
		src  int
		iter int
	}
	var allIters []struct {
		key iterKey
		it  Iteration
	}
	for i, d := range ds {
		if d.Period != out.Period {
			return nil, fmt.Errorf("trace: merge with mismatched periods %v and %v", out.Period, d.Period)
		}
		out.Start = minTime(out.Start, d.Start)
		out.End = maxTime(out.End, d.End)
		for _, m := range d.Machines {
			if prev, ok := seen[m.ID]; ok {
				if prev != m {
					return nil, fmt.Errorf("trace: machine %s has conflicting metadata", m.ID)
				}
				continue
			}
			seen[m.ID] = m
			out.Machines = append(out.Machines, m)
		}
		for _, it := range d.Iterations {
			allIters = append(allIters, struct {
				key iterKey
				it  Iteration
			}{iterKey{i, it.Iter}, it})
		}
	}
	sort.SliceStable(allIters, func(a, b int) bool {
		return allIters[a].it.Start.Before(allIters[b].it.Start)
	})
	remap := map[iterKey]int{}
	for n, e := range allIters {
		it := e.it
		it.Iter = n
		remap[e.key] = n
		out.Iterations = append(out.Iterations, it)
	}
	for i, d := range ds {
		for j := range d.Samples {
			s := d.Samples[j]
			if n, ok := remap[iterKey{i, s.Iter}]; ok {
				s.Iter = n
			}
			out.Samples = append(out.Samples, s)
		}
	}
	out.SortSamples()
	return out, nil
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
