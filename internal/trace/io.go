package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// File format: a single CSV stream with a leading record-type column.
//
//	H : header — format version, start, end, period-seconds
//	M : machine metadata — id, lab, ram-mb, disk-gb, int-index, fp-index
//	I : iteration — iter, start, attempted, responded[, end, parse-errors]
//	S : sample — see sampleRow
//
// Iteration records originally carried 4 payload fields; the collector
// now also books the sweep end time and the iteration's parse-error
// count. The reader accepts both shapes, so pre-existing traces load
// unchanged (End stays zero, ParseErrors stays 0).
//
// The format is line-oriented and streaming-friendly: a 77-day, 580k-sample
// trace writes and reads in a couple of seconds.

const formatVersion = "winlab-trace-1"

const timeFormat = time.RFC3339

// ioBufSize is the buffered-IO window used by every trace codec, reader
// and writer alike (CSV and TBv1). One shared constant keeps the two
// sides of each stream sized consistently: the reader used to insist on
// 1 MB while writers picked whatever bufio defaulted to.
const ioBufSize = 1 << 20

// Write serialises the dataset in the CSV text format.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriterSize(w, ioBufSize)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{"H", formatVersion,
		d.Start.UTC().Format(timeFormat), d.End.UTC().Format(timeFormat),
		strconv.FormatInt(int64(d.Period/time.Second), 10)}); err != nil {
		return err
	}
	for _, m := range d.Machines {
		rec := []string{"M", m.ID, m.Lab,
			strconv.Itoa(m.RAMMB), fmtF(m.DiskGB), fmtF(m.IntIndex), fmtF(m.FPIndex)}
		// Lifetime bounds ride as two optional trailing fields, only for
		// partial-lifetime machines — full-lifetime traces keep the
		// legacy 7-field record byte-for-byte (same precedent as the
		// 5-or-7-field I record).
		if m.PartialLifetime() {
			rec = append(rec, strconv.Itoa(m.JoinIter), strconv.Itoa(m.LeaveIter))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for _, it := range d.Iterations {
		end := ""
		if !it.End.IsZero() {
			end = it.End.UTC().Format(timeFormat)
		}
		if err := cw.Write([]string{"I", strconv.Itoa(it.Iter),
			it.Start.UTC().Format(timeFormat),
			strconv.Itoa(it.Attempted), strconv.Itoa(it.Responded),
			end, strconv.Itoa(it.ParseErrors)}); err != nil {
			return err
		}
	}
	for i := range d.Samples {
		if err := cw.Write(sampleRow(&d.Samples[i])); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// Format selects a trace serialisation: the line-oriented CSV text
// format (the original), or the compact TBv1 binary format (binary.go).
type Format int

const (
	// FormatAuto picks by file extension on write (".tb"/".tbv1" →
	// TBv1, else CSV) and by content sniffing on read.
	FormatAuto Format = iota
	FormatCSV
	FormatTB
)

// ParseFormat maps a command-line spelling to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return FormatAuto, nil
	case "csv":
		return FormatCSV, nil
	case "tb", "tbv1", "binary":
		return FormatTB, nil
	}
	return FormatAuto, fmt.Errorf("trace: unknown format %q (want auto, csv or tbv1)", s)
}

// formatForPath resolves FormatAuto from a file name: a ".tb" or ".tbv1"
// extension (before an optional ".gz") selects the binary format.
// Matching is case-insensitive — "TRACE.TB.GZ" from a case-mangling
// Windows share is the same trace as "trace.tb.gz".
func formatForPath(path string) Format {
	p := strings.TrimSuffix(strings.ToLower(path), ".gz")
	if strings.HasSuffix(p, ".tb") || strings.HasSuffix(p, ".tbv1") {
		return FormatTB
	}
	return FormatCSV
}

// gzipPath reports whether the path names a gzip-compressed trace
// (".gz", any case). The ".tb.gz"/".tbv1.gz" double extensions compose
// with formatForPath: compression and format are independent axes.
func gzipPath(path string) bool {
	return strings.HasSuffix(strings.ToLower(path), ".gz")
}

// WriteFile serialises the dataset to a file. A path ending in ".gz" is
// transparently gzip-compressed — a 77-day trace shrinks from ≈90 MB to a
// few MB. The format follows the extension: ".tb"/".tbv1" (before the
// optional ".gz") write TBv1, anything else writes CSV.
func WriteFile(path string, d *Dataset) error {
	return WriteFileFormat(path, d, FormatAuto)
}

// WriteFileFormat is WriteFile with an explicit format override;
// FormatAuto defers to the extension.
func WriteFileFormat(path string, d *Dataset, format Format) error {
	if format == FormatAuto {
		format = formatForPath(path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = encodeStream(f, d, format, gzipPath(path))
	// The file is closed exactly once on every branch. First error wins:
	// a Close failure after a failed encode must not mask the encode
	// error, and a clean encode followed by a failing Close must not
	// report success (the kernel may only surface ENOSPC here).
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// encodeStream writes d to w in the requested format, optionally
// wrapped in gzip. Every sink error reaches the caller: the codecs'
// buffered flushes report plain write errors, and the gzip Close —
// which flushes the compressor's final block, so it can fail even when
// every codec write "succeeded" into the compressor's buffer — is
// checked on the success and error paths alike (previously the gzip
// writer leaked un-Closed when the codec failed).
func encodeStream(w io.Writer, d *Dataset, format Format, gzipped bool) error {
	var gz *gzip.Writer
	if gzipped {
		gz = gzip.NewWriter(w)
		w = gz
	}
	var err error
	if format == FormatTB {
		err = WriteBinary(w, d)
	} else {
		err = Write(w, d)
	}
	if gz != nil {
		if cerr := gz.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func sampleRow(s *Sample) []string {
	sess := ""
	if s.HasSession() {
		sess = s.SessionStart.UTC().Format(timeFormat)
	}
	return []string{"S",
		strconv.Itoa(s.Iter),
		s.Time.UTC().Format(timeFormat),
		s.Machine,
		s.Lab,
		s.BootTime.UTC().Format(timeFormat),
		strconv.FormatInt(int64(s.Uptime/time.Second), 10),
		strconv.FormatFloat(s.CPUIdle.Seconds(), 'f', 1, 64),
		strconv.Itoa(s.MemLoadPct),
		strconv.Itoa(s.SwapLoadPct),
		fmtF(s.DiskGB),
		fmtF(s.FreeDiskGB),
		strconv.FormatInt(s.PowerCycles, 10),
		strconv.FormatInt(s.PowerOnHours, 10),
		strconv.FormatUint(s.SentBytes, 10),
		strconv.FormatUint(s.RecvBytes, 10),
		s.SessionUser,
		sess,
	}
}

func fmtF(f float64) string { return strconv.FormatFloat(f, 'f', 3, 64) }

// Read deserialises a dataset written by Write (the CSV format). Use
// ReadAny to accept CSV and TBv1 transparently.
func Read(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, ioBufSize))
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	d := &Dataset{}
	sawHeader := false
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "H":
			if len(rec) != 5 {
				return nil, fmt.Errorf("trace: bad header record (%d fields)", len(rec))
			}
			if rec[1] != formatVersion {
				return nil, fmt.Errorf("trace: unsupported format %q", rec[1])
			}
			var err error
			if d.Start, err = time.Parse(timeFormat, rec[2]); err != nil {
				return nil, fmt.Errorf("trace: bad start time: %w", err)
			}
			if d.End, err = time.Parse(timeFormat, rec[3]); err != nil {
				return nil, fmt.Errorf("trace: bad end time: %w", err)
			}
			sec, err := strconv.ParseInt(rec[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad period: %w", err)
			}
			d.Period = time.Duration(sec) * time.Second
			sawHeader = true
		case "M":
			// 7 fields is the legacy record; 9 appends the lifetime
			// bounds (JoinIter, LeaveIter) of partial-lifetime machines.
			if len(rec) != 7 && len(rec) != 9 {
				return nil, fmt.Errorf("trace: bad machine record (%d fields)", len(rec))
			}
			m := MachineInfo{ID: rec[1], Lab: rec[2]}
			var err error
			if m.RAMMB, err = strconv.Atoi(rec[3]); err != nil {
				return nil, fmt.Errorf("trace: machine %s ram: %w", m.ID, err)
			}
			if m.DiskGB, err = strconv.ParseFloat(rec[4], 64); err != nil {
				return nil, fmt.Errorf("trace: machine %s disk: %w", m.ID, err)
			}
			if m.IntIndex, err = strconv.ParseFloat(rec[5], 64); err != nil {
				return nil, fmt.Errorf("trace: machine %s int index: %w", m.ID, err)
			}
			if m.FPIndex, err = strconv.ParseFloat(rec[6], 64); err != nil {
				return nil, fmt.Errorf("trace: machine %s fp index: %w", m.ID, err)
			}
			if len(rec) == 9 {
				if m.JoinIter, err = strconv.Atoi(rec[7]); err != nil {
					return nil, fmt.Errorf("trace: machine %s join iter: %w", m.ID, err)
				}
				if m.LeaveIter, err = strconv.Atoi(rec[8]); err != nil {
					return nil, fmt.Errorf("trace: machine %s leave iter: %w", m.ID, err)
				}
				if m.JoinIter < 0 || m.LeaveIter < 0 || (m.LeaveIter > 0 && m.LeaveIter <= m.JoinIter) {
					return nil, fmt.Errorf("trace: machine %s lifetime [%d,%d) invalid", m.ID, m.JoinIter, m.LeaveIter)
				}
			}
			d.Machines = append(d.Machines, m)
		case "I":
			if len(rec) != 5 && len(rec) != 7 {
				return nil, fmt.Errorf("trace: bad iteration record (%d fields)", len(rec))
			}
			var it Iteration
			var err error
			if it.Iter, err = strconv.Atoi(rec[1]); err != nil {
				return nil, fmt.Errorf("trace: iteration number: %w", err)
			}
			if it.Start, err = time.Parse(timeFormat, rec[2]); err != nil {
				return nil, fmt.Errorf("trace: iteration start: %w", err)
			}
			if it.Attempted, err = strconv.Atoi(rec[3]); err != nil {
				return nil, fmt.Errorf("trace: iteration attempted: %w", err)
			}
			if it.Responded, err = strconv.Atoi(rec[4]); err != nil {
				return nil, fmt.Errorf("trace: iteration responded: %w", err)
			}
			if len(rec) == 7 {
				if rec[5] != "" {
					if it.End, err = time.Parse(timeFormat, rec[5]); err != nil {
						return nil, fmt.Errorf("trace: iteration end: %w", err)
					}
				}
				if it.ParseErrors, err = strconv.Atoi(rec[6]); err != nil {
					return nil, fmt.Errorf("trace: iteration parse errors: %w", err)
				}
			}
			d.Iterations = append(d.Iterations, it)
		case "S":
			s, err := parseSampleRow(rec)
			if err != nil {
				return nil, err
			}
			d.Samples = append(d.Samples, s)
		default:
			return nil, fmt.Errorf("trace: unknown record type %q", rec[0])
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: missing header record")
	}
	return d, nil
}

// ReadFile deserialises a dataset from a file, transparently decompressing
// ".gz" paths. The format (CSV, TBv1, or a segment manifest) is sniffed
// from the content, so every consumer loads any kind unchanged.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// No explicit gzip branch: ReadAny sniffs the gzip magic in the
	// content, so a compressed trace loads regardless of how the file is
	// named (".gz", ".GZ", or no extension at all).
	//
	// A segment manifest (leading '{') is handled here rather than in
	// ReadAny so its relative segment paths resolve against the
	// manifest's own directory, not the working directory.
	br := bufio.NewReaderSize(f, ioBufSize)
	if head, _ := br.Peek(1); len(head) == 1 && head[0] == '{' {
		m, err := decodeManifest(br)
		if err != nil {
			return nil, err
		}
		return readManifestDataset(m, filepath.Dir(path))
	}
	return ReadAny(br)
}

func parseSampleRow(rec []string) (Sample, error) {
	var s Sample
	if len(rec) != 18 {
		return s, fmt.Errorf("trace: bad sample record (%d fields)", len(rec))
	}
	var err error
	if s.Iter, err = strconv.Atoi(rec[1]); err != nil {
		return s, fmt.Errorf("trace: sample iter: %w", err)
	}
	if s.Time, err = time.Parse(timeFormat, rec[2]); err != nil {
		return s, fmt.Errorf("trace: sample time: %w", err)
	}
	s.Machine = rec[3]
	s.Lab = rec[4]
	if s.BootTime, err = time.Parse(timeFormat, rec[5]); err != nil {
		return s, fmt.Errorf("trace: sample boot time: %w", err)
	}
	upSec, err := strconv.ParseInt(rec[6], 10, 64)
	if err != nil {
		return s, fmt.Errorf("trace: sample uptime: %w", err)
	}
	s.Uptime = time.Duration(upSec) * time.Second
	idleSec, err := strconv.ParseFloat(rec[7], 64)
	if err != nil {
		return s, fmt.Errorf("trace: sample cpu idle: %w", err)
	}
	s.CPUIdle = time.Duration(idleSec * float64(time.Second))
	if s.MemLoadPct, err = strconv.Atoi(rec[8]); err != nil {
		return s, fmt.Errorf("trace: sample mem load: %w", err)
	}
	if s.SwapLoadPct, err = strconv.Atoi(rec[9]); err != nil {
		return s, fmt.Errorf("trace: sample swap load: %w", err)
	}
	if s.DiskGB, err = strconv.ParseFloat(rec[10], 64); err != nil {
		return s, fmt.Errorf("trace: sample disk size: %w", err)
	}
	if s.FreeDiskGB, err = strconv.ParseFloat(rec[11], 64); err != nil {
		return s, fmt.Errorf("trace: sample free disk: %w", err)
	}
	if s.PowerCycles, err = strconv.ParseInt(rec[12], 10, 64); err != nil {
		return s, fmt.Errorf("trace: sample power cycles: %w", err)
	}
	if s.PowerOnHours, err = strconv.ParseInt(rec[13], 10, 64); err != nil {
		return s, fmt.Errorf("trace: sample power-on hours: %w", err)
	}
	if s.SentBytes, err = strconv.ParseUint(rec[14], 10, 64); err != nil {
		return s, fmt.Errorf("trace: sample sent bytes: %w", err)
	}
	if s.RecvBytes, err = strconv.ParseUint(rec[15], 10, 64); err != nil {
		return s, fmt.Errorf("trace: sample recv bytes: %w", err)
	}
	s.SessionUser = rec[16]
	if rec[17] != "" {
		if s.SessionStart, err = time.Parse(timeFormat, rec[17]); err != nil {
			return s, fmt.Errorf("trace: sample session start: %w", err)
		}
	}
	return s, nil
}
