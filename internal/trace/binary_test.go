package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// requireDatasetsEqual compares two datasets field by field (the struct
// itself embeds a mutex and the index cache, so whole-struct DeepEqual
// would compare unexported cache state).
func requireDatasetsEqual(t *testing.T, got, want *Dataset) {
	t.Helper()
	if !reflect.DeepEqual(got.Start, want.Start) || !reflect.DeepEqual(got.End, want.End) ||
		got.Period != want.Period {
		t.Fatalf("header mismatch:\n got %v %v %v\nwant %v %v %v",
			got.Start, got.End, got.Period, want.Start, want.End, want.Period)
	}
	if !reflect.DeepEqual(got.Machines, want.Machines) {
		t.Fatalf("machines mismatch:\n got %+v\nwant %+v", got.Machines, want.Machines)
	}
	if !reflect.DeepEqual(got.Iterations, want.Iterations) {
		t.Fatalf("iterations mismatch:\n got %+v\nwant %+v", got.Iterations, want.Iterations)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("samples = %d, want %d", len(got.Samples), len(want.Samples))
	}
	for i := range want.Samples {
		if !reflect.DeepEqual(got.Samples[i], want.Samples[i]) {
			t.Fatalf("sample %d mismatch:\n got %+v\nwant %+v", i, got.Samples[i], want.Samples[i])
		}
	}
}

func binBytes(t *testing.T, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryRoundTripFixture: WriteBinary∘ReadBinary is the identity on
// hand-built datasets covering sessions, sessionless samples, zero-End
// iterations and the empty dataset.
func TestBinaryRoundTripFixture(t *testing.T) {
	full := newDataset()
	full.Samples = append(full.Samples, FromSnapshot(9, snapshotFixture()))

	empty := &Dataset{Start: t0, End: t0.AddDate(0, 0, 7), Period: 15 * time.Minute}

	sessionless := &Dataset{Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute}
	sessionless.Samples = append(sessionless.Samples,
		mkSample("M1", t0.Add(15*time.Minute), t0, time.Minute, ""))

	for name, d := range map[string]*Dataset{
		"full": full, "empty": empty, "sessionless": sessionless,
	} {
		got, err := ReadBinary(bytes.NewReader(binBytes(t, d)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireDatasetsEqual(t, got, d)
	}
}

// TestReadAnySniffs: both formats load through the same entry point.
func TestReadAnySniffs(t *testing.T) {
	d := newDataset()
	var csvBuf bytes.Buffer
	if err := Write(&csvBuf, d); err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"csv": csvBuf.Bytes(), "tbv1": binBytes(t, d)} {
		got, err := ReadAny(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireDatasetsEqual(t, got, d)
	}
}

// TestWriteFileFormats: extension-driven format selection, explicit
// overrides, gzip stacking, and sniffing on the way back in.
func TestWriteFileFormats(t *testing.T) {
	d := newDataset()
	dir := t.TempDir()
	cases := []struct {
		name   string
		format Format
		binary bool
	}{
		{"trace.csv", FormatAuto, false},
		{"trace.tb", FormatAuto, true},
		{"trace.tbv1.gz", FormatAuto, true},
		{"trace.dat", FormatTB, true},
		{"trace.tb.but-csv", FormatCSV, false},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, tc.name)
		if err := WriteFileFormat(path, d, tc.format); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: read: %v", tc.name, err)
		}
		requireDatasetsEqual(t, got, d)
		// Verify the on-disk format really is what the name promised
		// (gz paths are checked through ReadFile only: the compressed
		// stream hides the inner magic).
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(tc.name, ".gz") {
			if len(raw) == 0 || raw[0] != 0x1f {
				t.Errorf("%s: not gzip-compressed", tc.name)
			}
			continue
		}
		if isBin := bytes.HasPrefix(raw, magicTB); isBin != tc.binary {
			t.Errorf("%s: binary=%v, want %v", tc.name, isBin, tc.binary)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"auto": FormatAuto, "": FormatAuto, "csv": FormatCSV,
		"tbv1": FormatTB, "TB": FormatTB, "binary": FormatTB,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
}

// TestBinaryRejectsGarbage: malformed TBv1 input must error, not panic,
// and must not allocate absurd amounts on a lying count.
func TestBinaryRejectsGarbage(t *testing.T) {
	valid := binBytes(t, newDataset())
	cases := map[string][]byte{
		"empty":        {},
		"short magic":  []byte("WL"),
		"wrong magic":  []byte("NOPE\x01rest"),
		"bad version":  []byte("WLTB\x63"),
		"header only":  []byte("WLTB\x01"),
		"truncated":    valid[:len(valid)/2],
		"truncated 1b": valid[:len(valid)-1],
		// magic + version + start/end/period, then a sample count of
		// 2^60 with no sample bytes behind it.
		"lying count": append(append([]byte{}, valid[:5]...),
			0x00, 0x00, 0x00, 0x00, // start/end times: zero deltas
			0x00, // period
			0x00, // machines
			0x00, // iterations
			0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10), // huge sample count
		"trailing data": append(append([]byte{}, valid...), 0x00),
	}
	for name, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A dictionary reference pointing past the dictionary must error.
	bad := append(append([]byte{}, valid[:5]...),
		0x00, 0x00, 0x00, 0x00, // start/end times
		0x00, // period
		0x01, // one machine...
		0x07) // ...whose ID references dict entry 7 of an empty dict
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "dictionary") {
		t.Errorf("out-of-range dict ref: err = %v", err)
	}
}
