package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"
)

// TBv1 — the winlab binary trace format.
//
// CSV is the archival interchange format; TBv1 is the storage format for
// traces that are written once and re-analysed many times (Grid'5000-style
// year-in-the-life platform logs). It encodes the same Dataset loss-free
// in ≲1/3 of the bytes and reads/writes several times faster, because it
// never materialises intermediate []string records and exploits the shape
// of monitoring data: per-machine streams of slowly-changing counters.
//
// Layout (all integers are varints unless noted):
//
//	magic   "WLTB" (4 bytes) + version (1 byte, = 1 or 2)
//	header  start time, end time, period            (times: sec varint + nanos varint)
//	dict    strings are interned on first use: a reference uvarint equal to
//	        the current dictionary size introduces a new entry (uvarint
//	        length + bytes); smaller references reuse entry N.
//	M block uvarint count, then per machine:
//	        id ref, lab ref, ram-mb, disk/int/fp index (8-byte LE float64)
//	        version 2 appends join-iter and leave-iter varints (machine
//	        lifetime bounds; see MachineInfo.ActiveAt)
//	I block uvarint count, then per iteration, delta-coded against the
//	        previous iteration: iter Δ, start Δ, attempted Δ, responded Δ,
//	        end (0 = unset | 1 + offset from start), parse-errors Δ
//	S block uvarint count, then per sample, delta-coded against the
//	        previous sample of the *same machine* (first sample of a
//	        machine deltas against the header start time and zeroes):
//	        machine ref, lab ref, iter Δ, time Δ, boot Δ, uptime Δ,
//	        cpu-idle Δ, mem Δ, swap Δ, disk-gb bits⊕prev (uvarint),
//	        free-gb bits⊕prev (uvarint), cycles Δ, poweron Δ, sent Δ,
//	        recv Δ, user ref, [session start Δ when user ≠ ""]
//
// Why deltas + XOR: consecutive samples of one machine differ by roughly
// one period in every clock, by small increments in every counter, and
// not at all in most floats — so deltas are 1–6 byte varints and the XOR
// of two nearby float64s clears the high mantissa bits. Samples stay in
// dataset order (the per-machine state lives in a map), so a decoded
// dataset is deep-equal to the encoded one, including sample order.
//
// Malformed input must produce errors, never panics or unbounded
// allocation: every count and string length is validated against caps
// before memory is reserved (see FuzzReadBinary).

// magicTB identifies a TBv1 stream. Version 1 is the original layout;
// version 2 adds machine lifetime bounds to the M block and is written
// only when some machine actually has a partial lifetime, so every
// pre-lifecycle trace re-encodes byte-identically.
var magicTB = []byte("WLTB")

const (
	tbVersion  = 1
	tbVersion2 = 2
)

// tbVersionFor picks the lowest format version that can represent the
// machine catalogue.
func tbVersionFor(machines []MachineInfo) byte {
	for i := range machines {
		if machines[i].PartialLifetime() {
			return tbVersion2
		}
	}
	return tbVersion
}

// tbMaxString caps a single dictionary entry; tbPrealloc caps how many
// entries any count preallocates before the stream proves they exist.
//
// tbPrealloc is deliberately small: the leading uvarint counts are
// untrusted input, and a corrupt or truncated header claiming 2⁶⁰
// samples must not be able to demand a multi-GB allocation before the
// sticky-error decoder has seen a single payload byte. Every slice
// therefore starts at min(count, tbPrealloc) capacity and grows
// incrementally — each append happens only after a full entry decoded
// successfully, so memory consumption is proportional to input actually
// consumed (a sample costs ≥ ~17 wire bytes), never to what the header
// promises. See TestReadBinaryAllocBomb and the committed fuzz seed.
const (
	tbMaxString = 1 << 20
	tbPrealloc  = 1 << 12
)

// clampPrealloc bounds a slice preallocation taken from an untrusted
// leading count.
func clampPrealloc(n uint64) int {
	if n > tbPrealloc {
		return tbPrealloc
	}
	return int(n)
}

// tbState is the per-machine (and per-iteration) delta predictor. Writer
// and reader evolve identical copies, so only differences hit the wire.
type tbState struct {
	iter      int64
	timeSec   int64
	timeNs    int64
	bootSec   int64
	bootNs    int64
	uptime    int64
	cpuIdle   int64
	mem, swap int64
	diskBits  uint64
	freeBits  uint64
	cycles    int64
	hours     int64
	sent      uint64
	recv      uint64
	sessSec   int64
	sessNs    int64
}

// baseState seeds every machine's predictor from the header start time.
func baseState(start time.Time) tbState {
	return tbState{
		timeSec: start.Unix(), timeNs: int64(start.Nanosecond()),
		bootSec: start.Unix(),
		sessSec: start.Unix(),
	}
}

// --- writer ---

type tbWriter struct {
	w    *bufio.Writer
	tmp  [binary.MaxVarintLen64]byte
	dict map[string]uint64
}

func (e *tbWriter) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.w.Write(e.tmp[:n])
}

func (e *tbWriter) varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.w.Write(e.tmp[:n])
}

func (e *tbWriter) f64(v float64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], math.Float64bits(v))
	e.w.Write(e.tmp[:8])
}

// str writes a dictionary reference, introducing the string on first use.
func (e *tbWriter) str(s string) {
	if idx, ok := e.dict[s]; ok {
		e.uvarint(idx)
		return
	}
	idx := uint64(len(e.dict))
	e.dict[s] = idx
	e.uvarint(idx)
	e.uvarint(uint64(len(s)))
	e.w.WriteString(s)
}

// time writes an absolute instant relative to a predictor, advancing it.
func (e *tbWriter) time(t time.Time, sec, ns *int64) {
	ts, tn := t.Unix(), int64(t.Nanosecond())
	e.varint(ts - *sec)
	e.varint(tn - *ns)
	*sec, *ns = ts, tn
}

// binaryEncoder writes a TBv1 stream incrementally: the header, machine
// catalogue, iteration log and declared sample count go out eagerly at
// construction, then each writeSample appends one delta-coded sample.
// WriteBinary is its batch client and the segment compactor
// (MergeSegments) streams merged samples through it, so there is exactly
// one TBv1 encode path — the writer-side mirror of BinaryCursor.
//
// The sample count must be known up front (TBv1 leads the S block with
// it); flush verifies the promise was kept, because a count mismatch
// would make the stream undecodable past the shorter side.
type binaryEncoder struct {
	e        *tbWriter
	base     tbState
	states   map[uint64]*tbState
	declared uint64
	written  uint64
}

// newBinaryEncoder writes the TBv1 preamble (magic, header, machine and
// iteration blocks, sample count) and returns an encoder positioned at
// the first sample.
func newBinaryEncoder(w io.Writer, start, end time.Time, period time.Duration, machines []MachineInfo, iterations []Iteration, samples uint64) *binaryEncoder {
	e := &tbWriter{w: bufio.NewWriterSize(w, ioBufSize), dict: make(map[string]uint64, 64)}
	ver := tbVersionFor(machines)
	e.w.Write(magicTB)
	e.w.WriteByte(ver)

	var hdr tbState
	e.time(start, &hdr.timeSec, &hdr.timeNs)
	e.time(end, &hdr.bootSec, &hdr.bootNs) // scratch predictor; header times are near-absolute
	e.varint(int64(period))

	e.uvarint(uint64(len(machines)))
	for i := range machines {
		m := &machines[i]
		e.str(m.ID)
		e.str(m.Lab)
		e.varint(int64(m.RAMMB))
		e.f64(m.DiskGB)
		e.f64(m.IntIndex)
		e.f64(m.FPIndex)
		if ver >= tbVersion2 {
			e.varint(int64(m.JoinIter))
			e.varint(int64(m.LeaveIter))
		}
	}

	e.uvarint(uint64(len(iterations)))
	prev := baseState(start)
	for _, it := range iterations {
		e.varint(int64(it.Iter) - prev.iter)
		prev.iter = int64(it.Iter)
		e.time(it.Start, &prev.timeSec, &prev.timeNs)
		e.varint(int64(it.Attempted) - prev.mem)
		prev.mem = int64(it.Attempted)
		e.varint(int64(it.Responded) - prev.swap)
		prev.swap = int64(it.Responded)
		if it.End.IsZero() {
			e.uvarint(0)
		} else {
			e.uvarint(1)
			e.varint(it.End.Unix() - prev.timeSec)
			e.varint(int64(it.End.Nanosecond()) - prev.timeNs)
		}
		e.varint(int64(it.ParseErrors) - prev.cycles)
		prev.cycles = int64(it.ParseErrors)
	}

	e.uvarint(samples)
	return &binaryEncoder{
		e:        e,
		base:     baseState(start),
		states:   make(map[uint64]*tbState, len(machines)),
		declared: samples,
	}
}

// writeSample appends one sample, delta-coded against the previous
// sample of the same machine.
func (b *binaryEncoder) writeSample(s *Sample) {
	e := b.e
	e.str(s.Machine)
	mref := e.dict[s.Machine]
	st := b.states[mref]
	if st == nil {
		cp := b.base
		st = &cp
		b.states[mref] = st
	}
	e.str(s.Lab)
	e.varint(int64(s.Iter) - st.iter)
	st.iter = int64(s.Iter)
	e.time(s.Time, &st.timeSec, &st.timeNs)
	e.time(s.BootTime, &st.bootSec, &st.bootNs)
	e.varint(int64(s.Uptime) - st.uptime)
	st.uptime = int64(s.Uptime)
	e.varint(int64(s.CPUIdle) - st.cpuIdle)
	st.cpuIdle = int64(s.CPUIdle)
	e.varint(int64(s.MemLoadPct) - st.mem)
	st.mem = int64(s.MemLoadPct)
	e.varint(int64(s.SwapLoadPct) - st.swap)
	st.swap = int64(s.SwapLoadPct)
	db := math.Float64bits(s.DiskGB)
	e.uvarint(db ^ st.diskBits)
	st.diskBits = db
	fb := math.Float64bits(s.FreeDiskGB)
	e.uvarint(fb ^ st.freeBits)
	st.freeBits = fb
	e.varint(s.PowerCycles - st.cycles)
	st.cycles = s.PowerCycles
	e.varint(s.PowerOnHours - st.hours)
	st.hours = s.PowerOnHours
	e.varint(int64(s.SentBytes - st.sent)) // wrap-around delta
	st.sent = s.SentBytes
	e.varint(int64(s.RecvBytes - st.recv))
	st.recv = s.RecvBytes
	e.str(s.SessionUser)
	if s.SessionUser != "" {
		e.time(s.SessionStart, &st.sessSec, &st.sessNs)
	}
	b.written++
}

// flush drains the buffered writer after verifying the declared sample
// count was honoured.
func (b *binaryEncoder) flush() error {
	if b.written != b.declared {
		return fmt.Errorf("trace: tbv1: encoder wrote %d samples, declared %d", b.written, b.declared)
	}
	return b.e.w.Flush()
}

// WriteBinary serialises the dataset in the TBv1 binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	be := newBinaryEncoder(w, d.Start, d.End, d.Period, d.Machines, d.Iterations, uint64(len(d.Samples)))
	for i := range d.Samples {
		be.writeSample(&d.Samples[i])
	}
	return be.flush()
}

// --- reader ---

type tbReader struct {
	r    *bufio.Reader
	dict []string
	err  error
}

func (d *tbReader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("trace: tbv1: "+format, args...)
	}
}

func (d *tbReader) wrap(what string, err error) {
	if d.err == nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		d.err = fmt.Errorf("trace: tbv1: %s: %w", what, err)
	}
}

func (d *tbReader) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.wrap(what, err)
		return 0
	}
	return v
}

func (d *tbReader) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.wrap(what, err)
		return 0
	}
	return v
}

func (d *tbReader) f64(what string) float64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		d.wrap(what, err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// str reads a dictionary reference, materialising new entries.
func (d *tbReader) str(what string) string {
	ref := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if ref < uint64(len(d.dict)) {
		return d.dict[ref]
	}
	if ref > uint64(len(d.dict)) {
		d.fail("%s: dictionary reference %d out of range (dict has %d)", what, ref, len(d.dict))
		return ""
	}
	n := d.uvarint(what)
	if d.err != nil {
		return ""
	}
	if n > tbMaxString {
		d.fail("%s: string length %d exceeds limit", what, n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.wrap(what, err)
		return ""
	}
	s := string(buf)
	d.dict = append(d.dict, s)
	return s
}

// time reads an instant relative to a predictor, advancing it.
func (d *tbReader) time(what string, sec, ns *int64) time.Time {
	*sec += d.varint(what)
	*ns += d.varint(what)
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(*sec, *ns).UTC()
}

// ReadBinary deserialises a TBv1 dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	return readBinary(bufio.NewReaderSize(r, ioBufSize))
}

// readBinary is a client of the incremental cursor: it drains every
// sample into a Dataset. Keeping the batch reader layered on the cursor
// makes the two differential by construction — there is exactly one
// TBv1 decode path.
func readBinary(br *bufio.Reader) (*Dataset, error) {
	c, err := newBinaryCursor(br)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Start:      c.start,
		End:        c.end,
		Period:     c.period,
		Machines:   c.machines,
		Iterations: c.iterations,
	}
	if c.declared > 0 {
		ds.Samples = make([]Sample, 0, clampPrealloc(c.declared))
	}
	var s Sample
	for {
		ok, err := c.Next(&s)
		if err != nil {
			return nil, err
		}
		if !ok {
			return ds, nil
		}
		ds.Samples = append(ds.Samples, s)
	}
}

// BinaryCursor decodes a TBv1 stream incrementally. The header, machine
// catalogue and iteration log are read eagerly by the constructor (they
// are small and every analysis needs them up front); samples are then
// decoded one at a time by Next, so the caller's peak memory is one
// Sample plus the string dictionary — independent of trace length.
// ReadBinary is a client of the cursor; the out-of-core layer
// (internal/trace/stream) adds gzip sniffing, per-machine run chunking
// and a parallel scheduler on top.
//
// A cursor is single-use and not safe for concurrent use.
type BinaryCursor struct {
	dec        *tbReader
	start, end time.Time
	period     time.Duration
	machines   []MachineInfo
	iterations []Iteration

	declared uint64 // sample count the S block header claims
	decoded  uint64
	done     bool
	err      error

	base   tbState
	states map[string]*tbState
}

// NewBinaryCursor reads the TBv1 magic, header, machine and iteration
// blocks from r and positions the cursor before the first sample. The
// input must be an uncompressed TBv1 stream; stream.New layers gzip
// sniffing on top for files of unknown provenance.
func NewBinaryCursor(r io.Reader) (*BinaryCursor, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, ioBufSize)
	}
	return newBinaryCursor(br)
}

func newBinaryCursor(br *bufio.Reader) (*BinaryCursor, error) {
	var head [5]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("trace: tbv1: header: %w", err)
	}
	if !bytes.Equal(head[:4], magicTB) {
		return nil, fmt.Errorf("trace: tbv1: bad magic %q", head[:4])
	}
	if head[4] != tbVersion && head[4] != tbVersion2 {
		return nil, fmt.Errorf("trace: tbv1: unsupported version %d", head[4])
	}
	ver := head[4]

	dec := &tbReader{r: br}
	c := &BinaryCursor{dec: dec}
	var hdr tbState
	c.start = dec.time("start time", &hdr.timeSec, &hdr.timeNs)
	c.end = dec.time("end time", &hdr.bootSec, &hdr.bootNs) // scratch predictor; header times are near-absolute
	c.period = time.Duration(dec.varint("period"))

	nM := dec.uvarint("machine count")
	if dec.err == nil && nM > 0 { // n==0 keeps the slice nil, like the CSV reader
		c.machines = make([]MachineInfo, 0, clampPrealloc(nM))
	}
	for i := uint64(0); i < nM && dec.err == nil; i++ {
		var m MachineInfo
		m.ID = dec.str("machine id")
		m.Lab = dec.str("machine lab")
		m.RAMMB = int(dec.varint("machine ram"))
		m.DiskGB = dec.f64("machine disk")
		m.IntIndex = dec.f64("machine int index")
		m.FPIndex = dec.f64("machine fp index")
		if ver >= tbVersion2 {
			m.JoinIter = int(dec.varint("machine join iter"))
			m.LeaveIter = int(dec.varint("machine leave iter"))
			if dec.err == nil && (m.JoinIter < 0 || m.LeaveIter < 0 || (m.LeaveIter > 0 && m.LeaveIter <= m.JoinIter)) {
				dec.fail("machine %s lifetime [%d,%d) invalid", m.ID, m.JoinIter, m.LeaveIter)
			}
		}
		if dec.err == nil {
			c.machines = append(c.machines, m)
		}
	}

	nI := dec.uvarint("iteration count")
	if dec.err == nil && nI > 0 {
		c.iterations = make([]Iteration, 0, clampPrealloc(nI))
	}
	prev := baseState(c.start)
	for i := uint64(0); i < nI && dec.err == nil; i++ {
		var it Iteration
		prev.iter += dec.varint("iteration number")
		it.Iter = int(prev.iter)
		it.Start = dec.time("iteration start", &prev.timeSec, &prev.timeNs)
		prev.mem += dec.varint("iteration attempted")
		it.Attempted = int(prev.mem)
		prev.swap += dec.varint("iteration responded")
		it.Responded = int(prev.swap)
		switch dec.uvarint("iteration end flag") {
		case 0:
		case 1:
			sec := prev.timeSec + dec.varint("iteration end")
			ns := prev.timeNs + dec.varint("iteration end nanos")
			if dec.err == nil {
				it.End = time.Unix(sec, ns).UTC()
			}
		default:
			dec.fail("iteration end flag out of range")
		}
		prev.cycles += dec.varint("iteration parse errors")
		it.ParseErrors = int(prev.cycles)
		if dec.err == nil {
			c.iterations = append(c.iterations, it)
		}
	}

	c.declared = dec.uvarint("sample count")
	if dec.err != nil {
		return nil, dec.err
	}
	c.base = baseState(c.start)
	c.states = make(map[string]*tbState, len(c.machines))
	return c, nil
}

// Start returns the trace start time from the header.
func (c *BinaryCursor) Start() time.Time { return c.start }

// End returns the trace end time from the header.
func (c *BinaryCursor) End() time.Time { return c.end }

// Period returns the collection period from the header.
func (c *BinaryCursor) Period() time.Duration { return c.period }

// Machines returns the machine catalogue (decoded eagerly). The slice
// is owned by the cursor; treat it as read-only.
func (c *BinaryCursor) Machines() []MachineInfo { return c.machines }

// Iterations returns the iteration log (decoded eagerly). The slice is
// owned by the cursor; treat it as read-only.
func (c *BinaryCursor) Iterations() []Iteration { return c.iterations }

// DeclaredSamples returns the sample count the stream header claims.
// It is untrusted input: the cursor never allocates proportionally to
// it, and a well-formed stream proves it one decoded sample at a time.
func (c *BinaryCursor) DeclaredSamples() uint64 { return c.declared }

// Next decodes the next sample into *s and reports whether one was
// produced. At a clean end of stream it verifies there is no trailing
// data and returns (false, nil); any decode error is sticky and is
// returned from every subsequent call.
func (c *BinaryCursor) Next(s *Sample) (bool, error) {
	if c.err != nil {
		return false, c.err
	}
	if c.done {
		return false, nil
	}
	if c.decoded == c.declared {
		c.done = true
		if _, err := c.dec.r.ReadByte(); err != io.EOF {
			c.err = fmt.Errorf("trace: tbv1: trailing data after sample block")
			return false, c.err
		}
		return false, nil
	}

	dec := c.dec
	*s = Sample{}
	s.Machine = dec.str("sample machine")
	if dec.err != nil {
		c.err = dec.err
		return false, c.err
	}
	st := c.states[s.Machine]
	if st == nil {
		cp := c.base
		st = &cp
		c.states[s.Machine] = st
	}
	s.Lab = dec.str("sample lab")
	st.iter += dec.varint("sample iter")
	s.Iter = int(st.iter)
	s.Time = dec.time("sample time", &st.timeSec, &st.timeNs)
	s.BootTime = dec.time("sample boot time", &st.bootSec, &st.bootNs)
	st.uptime += dec.varint("sample uptime")
	s.Uptime = time.Duration(st.uptime)
	st.cpuIdle += dec.varint("sample cpu idle")
	s.CPUIdle = time.Duration(st.cpuIdle)
	st.mem += dec.varint("sample mem load")
	s.MemLoadPct = int(st.mem)
	st.swap += dec.varint("sample swap load")
	s.SwapLoadPct = int(st.swap)
	st.diskBits ^= dec.uvarint("sample disk gb")
	s.DiskGB = math.Float64frombits(st.diskBits)
	st.freeBits ^= dec.uvarint("sample free gb")
	s.FreeDiskGB = math.Float64frombits(st.freeBits)
	st.cycles += dec.varint("sample power cycles")
	s.PowerCycles = st.cycles
	st.hours += dec.varint("sample power-on hours")
	s.PowerOnHours = st.hours
	st.sent += uint64(dec.varint("sample sent bytes"))
	s.SentBytes = st.sent
	st.recv += uint64(dec.varint("sample recv bytes"))
	s.RecvBytes = st.recv
	s.SessionUser = dec.str("sample session user")
	if s.SessionUser != "" {
		s.SessionStart = dec.time("sample session start", &st.sessSec, &st.sessNs)
	}
	if dec.err != nil {
		c.err = dec.err
		return false, c.err
	}
	c.decoded++
	return true, nil
}

// gzipMagic is the two-byte gzip member header (RFC 1952). ReadAny
// sniffs it so compressed traces load even when the path-based ".gz"
// detection never ran (stdin, pipes, misnamed files).
var gzipMagic = []byte{0x1f, 0x8b}

// ReadAny deserialises a dataset in either format, sniffing the content:
// a stream opening with the TBv1 magic decodes as binary, a gzip stream
// is transparently decompressed and re-sniffed, anything else parses as
// CSV. Existing consumers switch to ReadAny (via ReadFile) and load both
// transparently.
//
// Edge cases get addressed errors instead of the CSV reader's generic
// complaint: an empty stream reports itself as empty, and a stream that
// ends inside the four-byte TBv1 magic (a truncated binary trace —
// nothing CSV ever starts with 'W') reports the truncation.
func ReadAny(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, ioBufSize)
	head, err := br.Peek(len(magicTB))
	switch {
	case err == nil && bytes.Equal(head, magicTB):
		return readBinary(br)
	case bytes.HasPrefix(head, gzipMagic):
		// Compressed stream: decompress and sniff the payload again (a
		// .tb.gz read without extension hints lands here). gzip members
		// never open with 'H' or 'W', so this cannot shadow either
		// uncompressed format.
		gz, gerr := gzip.NewReader(br)
		if gerr != nil {
			return nil, fmt.Errorf("trace: gzip stream: %w", gerr)
		}
		defer gz.Close()
		return ReadAny(gz)
	case len(head) == 0 && err != nil:
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty stream")
		}
		return nil, fmt.Errorf("trace: read header: %w", err)
	case err != nil && len(head) < len(magicTB) && bytes.HasPrefix(magicTB, head):
		// Short stream that is a proper prefix of the TBv1 magic: a
		// truncated binary trace, not a CSV (whose header starts "H,").
		return nil, fmt.Errorf("trace: truncated TBv1 stream (%d bytes)", len(head))
	case len(head) > 0 && head[0] == '{':
		// A segment manifest (JSON object; CSV starts "H," and TBv1 with
		// 'W'). Relative segment paths resolve against the working
		// directory here — ReadFile resolves against the manifest's own
		// directory, which is what file-based consumers want.
		m, merr := decodeManifest(br)
		if merr != nil {
			return nil, merr
		}
		return readManifestDataset(m, ".")
	}
	// Read re-wraps in a bufio of the same size; bufio.NewReaderSize
	// returns br itself, so no data is lost and nothing is re-buffered.
	return Read(br)
}
