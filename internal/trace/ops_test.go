package trace

import (
	"testing"
	"time"
)

func TestTimeSlice(t *testing.T) {
	d := newDataset()
	from := t0.Add(20 * time.Minute)
	to := t0.Add(3 * time.Hour)
	s := TimeSlice(d, from, to)
	if !s.Start.Equal(from) || !s.End.Equal(to) {
		t.Errorf("bounds: %v..%v", s.Start, s.End)
	}
	for i := range s.Samples {
		at := s.Samples[i].Time
		if at.Before(from) || !at.Before(to) {
			t.Fatalf("sample at %v outside slice", at)
		}
	}
	if len(s.Machines) != len(d.Machines) {
		t.Error("machine metadata dropped")
	}
	// Original untouched.
	if len(d.Samples) != 6 {
		t.Errorf("source mutated: %d samples", len(d.Samples))
	}
	// Samples: M1@30m, M1@45m, M1@135m, M2: none in range except... M2@15m
	// is before from; M2@5h after to. M1@15m before from.
	if len(s.Samples) != 3 {
		t.Errorf("sliced samples = %d, want 3", len(s.Samples))
	}
}

func TestSplitAt(t *testing.T) {
	d := newDataset()
	at := t0.Add(time.Hour)
	before, after := SplitAt(d, at)
	if len(before.Samples)+len(after.Samples) != len(d.Samples) {
		t.Errorf("split lost samples: %d + %d != %d",
			len(before.Samples), len(after.Samples), len(d.Samples))
	}
	for i := range before.Samples {
		if !before.Samples[i].Time.Before(at) {
			t.Fatal("before-half contains late sample")
		}
	}
	for i := range after.Samples {
		if after.Samples[i].Time.Before(at) {
			t.Fatal("after-half contains early sample")
		}
	}
}

func TestMergeDisjointMachines(t *testing.T) {
	a := &Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
		Machines: []MachineInfo{{ID: "A1", Lab: "LA", IntIndex: 10, FPIndex: 10}},
	}
	b := &Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
		Machines: []MachineInfo{{ID: "B1", Lab: "LB", IntIndex: 20, FPIndex: 20}},
	}
	// Interleaved iterations: a at :00/:30, b at :15/:45.
	for i := 0; i < 4; i++ {
		at := t0.Add(time.Duration(i) * 30 * time.Minute)
		a.Iterations = append(a.Iterations, Iteration{Iter: i, Start: at, Attempted: 1, Responded: 1})
		a.Samples = append(a.Samples, mkSample("A1", at, t0, 0, ""))
		a.Samples[len(a.Samples)-1].Iter = i
		bt := at.Add(15 * time.Minute)
		b.Iterations = append(b.Iterations, Iteration{Iter: i, Start: bt, Attempted: 1, Responded: 1})
		b.Samples = append(b.Samples, mkSample("B1", bt, t0, 0, ""))
		b.Samples[len(b.Samples)-1].Iter = i
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Machines) != 2 || len(m.Iterations) != 8 || len(m.Samples) != 8 {
		t.Fatalf("merged: %d machines, %d iterations, %d samples",
			len(m.Machines), len(m.Iterations), len(m.Samples))
	}
	// Iterations renumbered chronologically.
	for i := 1; i < len(m.Iterations); i++ {
		if m.Iterations[i].Iter != i || m.Iterations[i].Start.Before(m.Iterations[i-1].Start) {
			t.Fatalf("iteration order broken at %d", i)
		}
	}
	// Samples remapped onto merged numbering: each sample's iteration must
	// carry its own timestamp.
	iterStart := map[int]time.Time{}
	for _, it := range m.Iterations {
		iterStart[it.Iter] = it.Start
	}
	for i := range m.Samples {
		s := &m.Samples[i]
		if !iterStart[s.Iter].Equal(s.Time) {
			t.Fatalf("sample %s@%v mapped to iteration starting %v", s.Machine, s.Time, iterStart[s.Iter])
		}
	}
}

func TestMergeSharedMachineConflict(t *testing.T) {
	// Two coordinators each claiming a machine is a deployment error even
	// when the metadata agrees — their probe streams would interleave.
	a := &Dataset{Period: time.Minute, Machines: []MachineInfo{{ID: "X", RAMMB: 512}}}
	b := &Dataset{Period: time.Minute, Machines: []MachineInfo{{ID: "X", RAMMB: 256}}}
	if _, err := Merge(a, b); err == nil {
		t.Error("shared machine accepted")
	}
	c := &Dataset{Period: time.Minute, Machines: []MachineInfo{{ID: "X", RAMMB: 512}}}
	if _, err := Merge(a, c); err == nil {
		t.Error("shared machine with identical metadata accepted")
	}
	if _, err := MergeSharded(a, c); err == nil {
		t.Error("MergeSharded accepted overlapping shards")
	}
}

func TestMergeSharded(t *testing.T) {
	mk := func(id string, iters ...Iteration) *Dataset {
		d := &Dataset{
			Start: t0, End: t0.Add(time.Hour), Period: 15 * time.Minute,
			Machines:   []MachineInfo{{ID: id, Lab: "L", IntIndex: 10, FPIndex: 10}},
			Iterations: iters,
		}
		for _, it := range iters {
			s := mkSample(id, it.Start, t0, 0, "")
			s.Iter = it.Iter
			d.Samples = append(d.Samples, s)
		}
		return d
	}
	a := mk("A1",
		Iteration{Iter: 0, Start: t0, End: t0.Add(time.Minute), Attempted: 1, Responded: 1},
		Iteration{Iter: 1, Start: t0.Add(15 * time.Minute), End: t0.Add(16 * time.Minute), Attempted: 1, Responded: 1})
	b := mk("B1",
		Iteration{Iter: 0, Start: t0, End: t0.Add(2 * time.Minute), Attempted: 1, Responded: 1},
		Iteration{Iter: 1, Start: t0.Add(15 * time.Minute), End: t0.Add(15*time.Minute + 30*time.Second), Attempted: 1, Responded: 1})
	m, err := MergeSharded(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Machines) != 2 || len(m.Samples) != 4 {
		t.Fatalf("merged: %d machines, %d samples", len(m.Machines), len(m.Samples))
	}
	// Iteration numbers are kept and records reconciled, not renumbered.
	if len(m.Iterations) != 2 {
		t.Fatalf("merged iterations = %d, want 2", len(m.Iterations))
	}
	it0 := m.Iterations[0]
	if it0.Iter != 0 || it0.Attempted != 2 || it0.Responded != 2 {
		t.Errorf("iteration 0 reconciled wrong: %+v", it0)
	}
	if !it0.End.Equal(t0.Add(2 * time.Minute)) {
		t.Errorf("iteration 0 end = %v, want latest shard end", it0.End)
	}

	// Shards that disagree on an iteration's start don't share a clock.
	c := mk("C1", Iteration{Iter: 0, Start: t0.Add(time.Second), Attempted: 1})
	if _, err := MergeSharded(a, c); err == nil {
		t.Error("disagreeing iteration starts accepted")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	a := &Dataset{Period: time.Minute}
	b := &Dataset{Period: 2 * time.Minute}
	if _, err := Merge(a, b); err == nil {
		t.Error("mismatched periods accepted")
	}
}
