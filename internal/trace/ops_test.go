package trace

import (
	"testing"
	"time"
)

func TestTimeSlice(t *testing.T) {
	d := newDataset()
	from := t0.Add(20 * time.Minute)
	to := t0.Add(3 * time.Hour)
	s := TimeSlice(d, from, to)
	if !s.Start.Equal(from) || !s.End.Equal(to) {
		t.Errorf("bounds: %v..%v", s.Start, s.End)
	}
	for i := range s.Samples {
		at := s.Samples[i].Time
		if at.Before(from) || !at.Before(to) {
			t.Fatalf("sample at %v outside slice", at)
		}
	}
	if len(s.Machines) != len(d.Machines) {
		t.Error("machine metadata dropped")
	}
	// Original untouched.
	if len(d.Samples) != 6 {
		t.Errorf("source mutated: %d samples", len(d.Samples))
	}
	// Samples: M1@30m, M1@45m, M1@135m, M2: none in range except... M2@15m
	// is before from; M2@5h after to. M1@15m before from.
	if len(s.Samples) != 3 {
		t.Errorf("sliced samples = %d, want 3", len(s.Samples))
	}
}

func TestSplitAt(t *testing.T) {
	d := newDataset()
	at := t0.Add(time.Hour)
	before, after := SplitAt(d, at)
	if len(before.Samples)+len(after.Samples) != len(d.Samples) {
		t.Errorf("split lost samples: %d + %d != %d",
			len(before.Samples), len(after.Samples), len(d.Samples))
	}
	for i := range before.Samples {
		if !before.Samples[i].Time.Before(at) {
			t.Fatal("before-half contains late sample")
		}
	}
	for i := range after.Samples {
		if after.Samples[i].Time.Before(at) {
			t.Fatal("after-half contains early sample")
		}
	}
}

func TestMergeDisjointMachines(t *testing.T) {
	a := &Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
		Machines: []MachineInfo{{ID: "A1", Lab: "LA", IntIndex: 10, FPIndex: 10}},
	}
	b := &Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
		Machines: []MachineInfo{{ID: "B1", Lab: "LB", IntIndex: 20, FPIndex: 20}},
	}
	// Interleaved iterations: a at :00/:30, b at :15/:45.
	for i := 0; i < 4; i++ {
		at := t0.Add(time.Duration(i) * 30 * time.Minute)
		a.Iterations = append(a.Iterations, Iteration{Iter: i, Start: at, Attempted: 1, Responded: 1})
		a.Samples = append(a.Samples, mkSample("A1", at, t0, 0, ""))
		a.Samples[len(a.Samples)-1].Iter = i
		bt := at.Add(15 * time.Minute)
		b.Iterations = append(b.Iterations, Iteration{Iter: i, Start: bt, Attempted: 1, Responded: 1})
		b.Samples = append(b.Samples, mkSample("B1", bt, t0, 0, ""))
		b.Samples[len(b.Samples)-1].Iter = i
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Machines) != 2 || len(m.Iterations) != 8 || len(m.Samples) != 8 {
		t.Fatalf("merged: %d machines, %d iterations, %d samples",
			len(m.Machines), len(m.Iterations), len(m.Samples))
	}
	// Iterations renumbered chronologically.
	for i := 1; i < len(m.Iterations); i++ {
		if m.Iterations[i].Iter != i || m.Iterations[i].Start.Before(m.Iterations[i-1].Start) {
			t.Fatalf("iteration order broken at %d", i)
		}
	}
	// Samples remapped onto merged numbering: each sample's iteration must
	// carry its own timestamp.
	iterStart := map[int]time.Time{}
	for _, it := range m.Iterations {
		iterStart[it.Iter] = it.Start
	}
	for i := range m.Samples {
		s := &m.Samples[i]
		if !iterStart[s.Iter].Equal(s.Time) {
			t.Fatalf("sample %s@%v mapped to iteration starting %v", s.Machine, s.Time, iterStart[s.Iter])
		}
	}
}

func TestMergeSharedMachineConflict(t *testing.T) {
	a := &Dataset{Period: time.Minute, Machines: []MachineInfo{{ID: "X", RAMMB: 512}}}
	b := &Dataset{Period: time.Minute, Machines: []MachineInfo{{ID: "X", RAMMB: 256}}}
	if _, err := Merge(a, b); err == nil {
		t.Error("conflicting metadata accepted")
	}
	c := &Dataset{Period: time.Minute, Machines: []MachineInfo{{ID: "X", RAMMB: 512}}}
	if m, err := Merge(a, c); err != nil || len(m.Machines) != 1 {
		t.Errorf("identical shared machine rejected: %v", err)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	a := &Dataset{Period: time.Minute}
	b := &Dataset{Period: 2 * time.Minute}
	if _, err := Merge(a, b); err == nil {
		t.Error("mismatched periods accepted")
	}
}
