package trace

import (
	"testing"
	"time"
)

func TestIndexSpansAndOrder(t *testing.T) {
	d := newDataset()
	ix := d.Freeze()

	if got := ix.Machines(); len(got) != 2 || got[0] != "M1" || got[1] != "M2" {
		t.Fatalf("Machines() = %v", got)
	}
	if n := len(ix.Samples("M1")); n != 4 {
		t.Errorf("M1 samples = %d, want 4", n)
	}
	if n := len(ix.Samples("M2")); n != 2 {
		t.Errorf("M2 samples = %d, want 2", n)
	}
	if ix.Samples("nope") != nil {
		t.Error("unknown machine should yield nil")
	}
	// Spans alias the dataset's sorted backing array.
	ss := ix.Samples("M1")
	if &ss[0] != &d.Samples[0] {
		t.Error("span does not alias the dataset samples")
	}
	// Cached aggregates match the Dataset methods.
	if ix.Attempts() != d.Attempts() {
		t.Errorf("Attempts: idx %d vs dataset %d", ix.Attempts(), d.Attempts())
	}
	if ix.Days() != d.Days() {
		t.Errorf("Days: idx %v vs dataset %v", ix.Days(), d.Days())
	}
	if m := ix.Machine("M2"); m == nil || m.ID != "M2" {
		t.Errorf("Machine(M2) = %+v", m)
	}
	// EachMachine visits in sorted order.
	var order []string
	ix.EachMachine(func(id string, ss []Sample) { order = append(order, id) })
	if len(order) != 2 || order[0] != "M1" || order[1] != "M2" {
		t.Errorf("EachMachine order = %v", order)
	}
}

func TestIndexIntervalsCachedAndShared(t *testing.T) {
	d := newDataset()
	ix := d.Index()
	a := ix.Intervals(0)
	b := ix.Intervals(0)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("Intervals not cached (distinct slices returned)")
	}
	// Distinct maxGap keys are cached independently.
	g := ix.Intervals(30 * time.Minute)
	if len(g) >= len(a) {
		t.Fatalf("maxGap filter dropped nothing: %d vs %d", len(g), len(a))
	}
	if &g[0] != &ix.Intervals(30*time.Minute)[0] {
		t.Error("second maxGap key not cached")
	}
	// The shim returns the same cache.
	if s := d.Intervals(0); &s[0] != &a[0] {
		t.Error("Dataset.Intervals shim does not reuse the index cache")
	}
}

// TestIndexSecondPassAllocFree is the allocation regression the index
// exists for: once frozen, re-deriving intervals and spans must not
// re-sort or re-pair (zero allocations on the hot read path).
func TestIndexSecondPassAllocFree(t *testing.T) {
	d := newDataset()
	d.Freeze()
	maxGap := 2 * d.Period
	d.Index().Intervals(maxGap) // warm the pair cache
	allocs := testing.AllocsPerRun(100, func() {
		ix := d.Index()
		ivs := ix.Intervals(maxGap)
		ss := ix.Samples("M1")
		if len(ivs) == 0 || len(ss) == 0 {
			t.Fatal("empty derived views")
		}
	})
	if allocs != 0 {
		t.Fatalf("second pass allocates: %v allocs/op (index re-sorting or re-pairing?)", allocs)
	}
}

func TestIndexDetectsStructuralMutation(t *testing.T) {
	d := newDataset()
	ix := d.Index()
	if len(ix.Samples("M3")) != 0 {
		t.Fatal("M3 unexpectedly present")
	}
	// Append a sample for a new machine: stale index must be detected and
	// rebuilt on the next access.
	d.Samples = append(d.Samples, mkSample("M3", t0.Add(15*time.Minute), t0, time.Minute, ""))
	ix2 := d.Index()
	if ix2 == ix {
		t.Fatal("mutated dataset returned the stale index")
	}
	if len(ix2.Samples("M3")) != 1 {
		t.Errorf("rebuilt index missing appended sample")
	}
	if got := ix2.Machines(); len(got) != 3 {
		t.Errorf("rebuilt machines = %v", got)
	}
}

func TestInvalidateIndex(t *testing.T) {
	d := newDataset()
	ix := d.Index()
	// In-place mutation is invisible to the fingerprint...
	d.Samples[0].MemLoadPct = 99
	if d.Index() != ix {
		t.Fatal("in-place mutation unexpectedly invalidated the index")
	}
	// ...until the caller invalidates explicitly.
	d.InvalidateIndex()
	if d.Index() == ix {
		t.Fatal("InvalidateIndex did not drop the cached index")
	}
}

// TestIndexStaleIntervalsNotObservable is the regression test for the
// stale-cache bug: a consumer holding an Index reference across an
// in-place edit + InvalidateIndex could keep reading the pre-edit
// interval pairs out of the handle's cache. The read path now re-checks
// the staleness flag and fingerprint and delegates to the dataset's
// fresh index, so the held handle can never serve pre-edit pairs.
func TestIndexStaleIntervalsNotObservable(t *testing.T) {
	d := newDataset()
	ix := d.Index()
	before := ix.Intervals(0)
	if len(before) != 3 {
		t.Fatalf("baseline pairs = %d, want 3", len(before))
	}
	if !ix.Valid() {
		t.Fatal("fresh index reports !Valid()")
	}

	// In-place edit: M1's middle sample moves to a different boot, which
	// breaks both same-boot pairs it participated in (3 pairs -> 1).
	// Samples are machine/time sorted after freeze, so [1] is M1@30min.
	if d.Samples[1].Machine != "M1" {
		t.Fatalf("sorted sample order changed: [1] is %s", d.Samples[1].Machine)
	}
	d.Samples[1].BootTime = d.Samples[1].Time.Add(-time.Minute)
	d.Samples[1].Uptime = time.Minute
	d.InvalidateIndex()

	if ix.Valid() {
		t.Error("edited-under index still reports Valid()")
	}
	fresh := d.Index()
	if fresh == ix {
		t.Fatal("InvalidateIndex did not drop the cached index")
	}
	if !fresh.Valid() {
		t.Error("rebuilt index reports !Valid()")
	}
	want := fresh.Intervals(0)
	if len(want) != 1 {
		t.Fatalf("post-edit pairs = %d, want 1", len(want))
	}
	// The held stale handle must answer with the fresh pairs, not its
	// own pre-edit cache.
	got := ix.Intervals(0)
	if len(got) != len(want) {
		t.Fatalf("stale handle served %d pairs, fresh index has %d", len(got), len(want))
	}
	if &got[0] != &want[0] {
		t.Error("stale handle did not delegate to the fresh index cache")
	}
}

// TestIndexStaleHandleConcurrentReaders exercises the staleness check
// under the race detector: after an in-place edit lands, many readers
// hammer the *stale* handle's Intervals/Valid concurrently while others
// re-freeze through Dataset.Index(). The atomic staleness flag and the
// delegation path must be race-clean and must only ever surface
// post-edit pairs.
func TestIndexStaleHandleConcurrentReaders(t *testing.T) {
	d := newDataset()
	stale := d.Index()
	if n := len(stale.Intervals(0)); n != 3 {
		t.Fatalf("baseline pairs = %d, want 3", n)
	}

	// Publish the edit before any reader starts (edits between Intervals
	// calls, not concurrent with them — concurrent in-place edits of
	// sample fields are a real data race and out of contract).
	d.Samples[1].BootTime = d.Samples[1].Time.Add(-time.Minute)
	d.Samples[1].Uptime = time.Minute
	d.InvalidateIndex()

	start := make(chan struct{})
	done := make(chan int, 16)
	for i := 0; i < 16; i++ {
		handle := stale
		if i%2 == 1 {
			handle = nil // reader re-resolves via d.Index() each round
		}
		go func(h *Index) {
			<-start
			worst := 3
			for j := 0; j < 100; j++ {
				ix := h
				if ix == nil {
					ix = d.Index()
				}
				if n := len(ix.Intervals(0)); n < worst {
					worst = n
				}
				_ = ix.Valid()
			}
			done <- worst
		}(handle)
	}
	close(start)
	for i := 0; i < 16; i++ {
		if worst := <-done; worst != 1 {
			t.Errorf("reader observed %d pairs, want 1 (stale cache leaked)", worst)
		}
	}
	if stale.Valid() {
		t.Error("stale handle reports Valid() after the edit")
	}
}

func TestIndexConcurrentReaders(t *testing.T) {
	d := newDataset()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				ix := d.Index()
				_ = ix.Intervals(2 * d.Period)
				_ = ix.Intervals(0)
				ix.EachMachine(func(id string, ss []Sample) {})
				_ = ix.Attempts()
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
