package trace_test

// External test package: these tests exercise trace's format sniffing
// through its public surface and borrow the doctor's fixture corpus
// (winlab/internal/trace/check imports trace, so an in-package test
// file could not import it back).

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/iotest"

	"winlab/internal/trace"
	"winlab/internal/trace/check"
)

// encode serialises the dataset in the requested shape for the sniffing
// tests: plain CSV, plain TBv1, or either wrapped in 1..n gzip layers.
func encode(t *testing.T, d *trace.Dataset, binary bool, gzipLayers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if binary {
		err = trace.WriteBinary(&buf, d)
	} else {
		err = trace.Write(&buf, d)
	}
	if err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	for i := 0; i < gzipLayers; i++ {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		if _, err := zw.Write(out); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		out = zbuf.Bytes()
	}
	return out
}

// TestReadAnyEdgeCases is the table-driven contract for content
// sniffing: which byte streams load, and which fail with an error that
// names the actual problem instead of the CSV reader's generic
// complaint.
func TestReadAnyEdgeCases(t *testing.T) {
	clean := check.CleanFixture()
	cases := []struct {
		name    string
		data    func(t *testing.T) []byte
		wantErr string // "" = must load as the clean fixture
	}{
		{"csv", func(t *testing.T) []byte { return encode(t, clean, false, 0) }, ""},
		{"tbv1", func(t *testing.T) []byte { return encode(t, clean, true, 0) }, ""},
		{"csv-gzip", func(t *testing.T) []byte { return encode(t, clean, false, 1) }, ""},
		{"tbv1-gzip", func(t *testing.T) []byte { return encode(t, clean, true, 1) }, ""},
		{"tbv1-double-gzip", func(t *testing.T) []byte { return encode(t, clean, true, 2) }, ""},
		{"empty", func(*testing.T) []byte { return nil }, "empty stream"},
		{"magic-1-byte", func(*testing.T) []byte { return []byte("W") }, "truncated TBv1"},
		{"magic-2-bytes", func(*testing.T) []byte { return []byte("WL") }, "truncated TBv1"},
		{"magic-3-bytes", func(*testing.T) []byte { return []byte("WLT") }, "truncated TBv1"},
		// A short non-magic prefix is a CSV problem, not a truncated
		// binary — the error must come from the CSV reader.
		{"short-csv-ish", func(*testing.T) []byte { return []byte("H") }, "header"},
		{"gzip-of-garbage", func(t *testing.T) []byte {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			zw.Write([]byte("not a trace"))
			zw.Close()
			return buf.Bytes()
		}, "record"},
		{"truncated-gzip-member", func(*testing.T) []byte {
			// Valid gzip magic, then nothing: the gzip reader must
			// surface the corruption, not the CSV parser.
			return []byte{0x1f, 0x8b}
		}, "gzip"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// OneByteReader forces the sniffer to assemble the magic
			// across short reads: Peek must loop, never misclassify a
			// TBv1 (or gzip) stream whose magic arrives byte by byte.
			ds, err := trace.ReadAny(iotest.OneByteReader(bytes.NewReader(tc.data(t))))
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("loaded successfully, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %q, want it to contain %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ReadAny: %v", err)
			}
			if msg := check.DiffDatasets(clean, ds); tc.name != "csv" && tc.name != "csv-gzip" && msg != "" {
				// CSV is %.3f-lossy, so only the loss-free binary
				// variants are compared field-exact.
				t.Errorf("decoded dataset diverges: %s", msg)
			}
			if ds.Samples == nil || len(ds.Samples) != len(clean.Samples) {
				t.Errorf("decoded %d samples, want %d", len(ds.Samples), len(clean.Samples))
			}
		})
	}
}

// TestFilePathExtensionCases pins the path-level behaviour: extension
// matching is case-insensitive for both the format and the compression
// axis, and a misnamed file still loads because ReadFile defers to
// content sniffing.
func TestFilePathExtensionCases(t *testing.T) {
	clean := check.CleanFixture()
	dir := t.TempDir()
	paths := []string{
		"trace.csv",
		"trace.csv.gz",
		"trace.tb",
		"trace.tb.gz",
		"trace.tbv1.gz",
		"TRACE.TB.GZ",    // case-mangled double extension
		"Trace.Csv.Gz",   // case-mangled CSV
		"trace.dat",      // no recognised extension: CSV
		"misnamed.trace", // written as .tb.gz bytes below
	}
	for _, name := range paths {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, name)
			if name == "misnamed.trace" {
				// Gzipped TBv1 bytes under an extension that hints at
				// neither: only content sniffing can load this.
				if err := os.WriteFile(p, encode(t, clean, true, 1), 0o644); err != nil {
					t.Fatal(err)
				}
			} else if err := trace.WriteFile(p, clean); err != nil {
				t.Fatal(err)
			}
			ds, err := trace.ReadFile(p)
			if err != nil {
				t.Fatalf("ReadFile: %v", err)
			}
			if len(ds.Samples) != len(clean.Samples) || len(ds.Iterations) != len(clean.Iterations) {
				t.Errorf("read %d samples / %d iterations, want %d / %d",
					len(ds.Samples), len(ds.Iterations), len(clean.Samples), len(clean.Iterations))
			}
			// Compression axis sanity: .gz-named files must actually be
			// gzip on disk, and vice versa.
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			isGz := len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b
			wantGz := strings.HasSuffix(strings.ToLower(name), ".gz") || name == "misnamed.trace"
			if isGz != wantGz {
				t.Errorf("on-disk gzip = %v, want %v", isGz, wantGz)
			}
		})
	}
}

// FuzzReadAny drives the sniffing front door with arbitrary bytes. The
// seed corpus covers every dispatch arm (CSV, TBv1, gzip of each,
// truncated magic) plus the doctor's serialisable corrupted fixtures:
// invariant-violating traces must still round-trip byte-faithfully —
// the codec's job is fidelity, the checker's job is judgement.
func FuzzReadAny(f *testing.F) {
	add := func(d *trace.Dataset, binary bool, gz int) {
		var buf bytes.Buffer
		var err error
		if binary {
			err = trace.WriteBinary(&buf, d)
		} else {
			err = trace.Write(&buf, d)
		}
		if err != nil {
			f.Fatal(err)
		}
		out := buf.Bytes()
		for i := 0; i < gz; i++ {
			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			zw.Write(out)
			zw.Close()
			out = zbuf.Bytes()
		}
		f.Add(out)
	}
	clean := check.CleanFixture()
	add(clean, false, 0)
	add(clean, true, 0)
	add(clean, false, 1)
	add(clean, true, 1)
	for _, fx := range check.CorruptedFixtures() {
		if fx.Serializable {
			add(fx.Dataset, true, 0)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("W"))
	f.Add([]byte("WLT"))
	f.Add([]byte{0x1f, 0x8b})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := trace.ReadAny(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loaded must survive a loss-free re-encode cycle.
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, d); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		d2, err := trace.ReadAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if msg := check.DiffDatasets(d, d2); msg != "" {
			t.Fatalf("re-encode cycle drifted: %s", msg)
		}
	})
}
