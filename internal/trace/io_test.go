package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"winlab/internal/machine"
)

func snapshotFixture() machine.Snapshot {
	return machine.Snapshot{
		Time:         t0.Add(30 * time.Minute),
		ID:           "L01-M07",
		Lab:          "L01",
		BootTime:     t0,
		Uptime:       30 * time.Minute,
		CPUIdle:      29 * time.Minute,
		MemLoadPct:   59,
		SwapLoadPct:  26,
		DiskGB:       74.5,
		FreeDiskGB:   54.25,
		PowerCycles:  289,
		PowerOnHours: 1931,
		SentBytes:    12345,
		RecvBytes:    67890,
		SessionUser:  "u",
		SessionStart: t0.Add(3 * time.Minute),
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newDataset()
	d.Samples = append(d.Samples, FromSnapshot(9, snapshotFixture()))
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(d.Start) || !got.End.Equal(d.End) || got.Period != d.Period {
		t.Errorf("header mismatch: %v %v %v", got.Start, got.End, got.Period)
	}
	if len(got.Machines) != len(d.Machines) {
		t.Fatalf("machines = %d", len(got.Machines))
	}
	for i := range d.Machines {
		if got.Machines[i] != d.Machines[i] {
			t.Errorf("machine %d: %+v != %+v", i, got.Machines[i], d.Machines[i])
		}
	}
	if len(got.Iterations) != len(d.Iterations) {
		t.Fatalf("iterations = %d", len(got.Iterations))
	}
	for i := range d.Iterations {
		if got.Iterations[i].Iter != d.Iterations[i].Iter ||
			!got.Iterations[i].Start.Equal(d.Iterations[i].Start) ||
			!got.Iterations[i].End.Equal(d.Iterations[i].End) ||
			got.Iterations[i].Attempted != d.Iterations[i].Attempted ||
			got.Iterations[i].Responded != d.Iterations[i].Responded ||
			got.Iterations[i].ParseErrors != d.Iterations[i].ParseErrors {
			t.Errorf("iteration %d mismatch: %+v != %+v", i, got.Iterations[i], d.Iterations[i])
		}
	}
	if got.Iterations[0].Elapsed() != 3*time.Minute {
		t.Errorf("iteration 0 elapsed = %v, want 3m", got.Iterations[0].Elapsed())
	}
	if got.Iterations[1].Elapsed() != 0 {
		t.Errorf("zero-End iteration elapsed = %v, want 0", got.Iterations[1].Elapsed())
	}
	if len(got.Samples) != len(d.Samples) {
		t.Fatalf("samples = %d, want %d", len(got.Samples), len(d.Samples))
	}
	a, b := d.Samples[len(d.Samples)-1], got.Samples[len(got.Samples)-1]
	if a.Machine != b.Machine || !a.Time.Equal(b.Time) || !a.BootTime.Equal(b.BootTime) ||
		a.Uptime != b.Uptime || a.MemLoadPct != b.MemLoadPct ||
		a.PowerCycles != b.PowerCycles || a.SentBytes != b.SentBytes ||
		a.SessionUser != b.SessionUser || !a.SessionStart.Equal(b.SessionStart) {
		t.Errorf("sample mismatch:\n%+v\n%+v", a, b)
	}
	if d := b.CPUIdle - a.CPUIdle; d < -time.Second || d > time.Second {
		t.Errorf("cpu idle drift: %v vs %v", a.CPUIdle, b.CPUIdle)
	}
}

func TestWriteReadFile(t *testing.T) {
	d := newDataset()
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := WriteFile(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(d.Samples) {
		t.Errorf("samples = %d", len(got.Samples))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no header":       "S,0,2003-10-06T08:00:00Z,M1,L01,2003-10-06T08:00:00Z,0,0,0,0,1,1,0,0,0,0,,\n",
		"bad version":     "H,other-format,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\n",
		"unknown type":    "H,winlab-trace-1,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\nZ,what\n",
		"short sample":    "H,winlab-trace-1,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\nS,0,x\n",
		"bad time":        "H,winlab-trace-1,yesterday,2003-10-07T08:00:00Z,900\n",
		"bad machine ram": "H,winlab-trace-1,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\nM,M1,L01,lots,74.5,30.5,33.1\n",
		"bad iter":        "H,winlab-trace-1,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\nI,first,2003-10-06T08:00:00Z,2,2\n",
		"6-field iter":    "H,winlab-trace-1,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\nI,0,2003-10-06T08:00:00Z,2,2,2003-10-06T08:03:00Z\n",
		"bad iter end":    "H,winlab-trace-1,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\nI,0,2003-10-06T08:00:00Z,2,2,later,0\n",
		"empty":           "",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadLegacyIterationRecords: traces written before the collector
// booked End/ParseErrors carry 4-payload-field iteration records; they
// must still load, with the new fields zero.
func TestReadLegacyIterationRecords(t *testing.T) {
	in := "H,winlab-trace-1,2003-10-06T08:00:00Z,2003-10-07T08:00:00Z,900\n" +
		"I,0,2003-10-06T08:00:00Z,2,1\n"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("legacy record rejected: %v", err)
	}
	if len(d.Iterations) != 1 {
		t.Fatalf("iterations = %d", len(d.Iterations))
	}
	it := d.Iterations[0]
	if it.Iter != 0 || it.Attempted != 2 || it.Responded != 1 {
		t.Errorf("legacy fields mangled: %+v", it)
	}
	if !it.End.IsZero() || it.ParseErrors != 0 || it.Elapsed() != 0 {
		t.Errorf("new fields not zero on legacy record: %+v", it)
	}
}

func TestRoundTripEmptyDataset(t *testing.T) {
	d := &Dataset{Start: t0, End: t0.AddDate(0, 0, 7), Period: 15 * time.Minute}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 0 || len(got.Machines) != 0 || got.Period != d.Period {
		t.Error("empty dataset round trip mismatch")
	}
}

func TestSessionlessSampleRoundTrip(t *testing.T) {
	d := &Dataset{Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute}
	d.Samples = append(d.Samples, mkSample("M1", t0.Add(15*time.Minute), t0, time.Minute, ""))
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := got.Samples[0]
	if s.HasSession() || !s.SessionStart.IsZero() {
		t.Errorf("sessionless sample gained a session: %+v", s)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	d := newDataset()
	plain := filepath.Join(t.TempDir(), "trace.csv")
	gz := filepath.Join(t.TempDir(), "trace.csv.gz")
	if err := WriteFile(plain, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(gz, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(d.Samples) || len(got.Machines) != len(d.Machines) {
		t.Errorf("gzip round trip lost data")
	}
	pi, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := os.Stat(gz)
	if err != nil {
		t.Fatal(err)
	}
	if gi.Size() >= pi.Size() {
		t.Errorf("gzip did not compress: %d >= %d", gi.Size(), pi.Size())
	}
}

func TestGzipRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
