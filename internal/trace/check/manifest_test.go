package check_test

import (
	"strings"
	"testing"
	"time"

	"winlab/internal/trace"
	"winlab/internal/trace/check"
)

// manifestFixture writes a 3-shard segment set derived from slices of
// the clean corpus fixture and returns the loaded manifest plus its
// directory.
func manifestFixture(t *testing.T) (*trace.Manifest, string) {
	t.Helper()
	d := cleanDataset()
	shards := make([]*trace.Dataset, 0, len(d.Machines))
	for _, mi := range d.Machines {
		s := &trace.Dataset{Start: d.Start, End: d.End, Period: d.Period,
			Machines: []trace.MachineInfo{mi}, Iterations: d.Iterations}
		for i := range d.Samples {
			if d.Samples[i].Machine == mi.ID {
				s.Samples = append(s.Samples, d.Samples[i])
			}
		}
		shards = append(shards, s)
	}
	dir := t.TempDir()
	mpath, err := trace.WriteSegments(dir, "run", shards)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	return m, dir
}

func TestCheckManifestClean(t *testing.T) {
	m, dir := manifestFixture(t)
	r := check.CheckManifest(m, dir, check.Options{})
	if !r.OK() {
		for _, v := range r.Violations {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if r.Machines != 2 {
		t.Errorf("catalogued %d machines, want 2", r.Machines)
	}
}

// TestCheckManifestMismatches tampers with one manifest claim at a time
// and asserts each is caught as a manifest-mismatch violation.
func TestCheckManifestMismatches(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *trace.Manifest)
		want   string
	}{
		{"missing segment", func(m *trace.Manifest) { m.Segments[0].Path = "nope.tb" }, "nope.tb"},
		{"wrong period", func(m *trace.Manifest) { m.PeriodNS = time.Hour }, "period"},
		{"shrunk bounds", func(m *trace.Manifest) { m.End = m.Start }, "outside manifest bounds"},
		{"wrong machine count", func(m *trace.Manifest) { m.Segments[1].Machines = 9 }, "manifest says 9"},
		{"wrong sample count", func(m *trace.Manifest) { m.Segments[0].Samples += 5 }, "declares"},
		{"wrong iteration count", func(m *trace.Manifest) { m.Segments[0].Iterations++ }, "iteration records"},
		{"wrong iteration span", func(m *trace.Manifest) { m.Segments[0].LastIter += 3 }, "spans iterations"},
		{"duplicate machine across shards", func(m *trace.Manifest) {
			// Point shard 1 at shard 0's segment file: same machine, two shards.
			m.Segments[1].Path = m.Segments[0].Path
			m.Segments[1].Machines = m.Segments[0].Machines
			m.Segments[1].Samples = m.Segments[0].Samples
			m.Segments[1].Iterations = m.Segments[0].Iterations
		}, "shards must partition the fleet"},
		{"same-shard iteration overlap", func(m *trace.Manifest) {
			// Declare both segments as time chunks of one shard: their
			// iteration spans coincide, so the chunks overlap.
			m.Segments[1].Shard = m.Segments[0].Shard
		}, "overlap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, dir := manifestFixture(t)
			tc.mutate(m)
			r := check.CheckManifest(m, dir, check.Options{})
			if r.OK() {
				t.Fatal("tampered manifest passed")
			}
			found := false
			for _, v := range r.Violations {
				if v.Kind != check.KindManifestMismatch {
					t.Errorf("violation kind %q, want %q", v.Kind, check.KindManifestMismatch)
				}
				if strings.Contains(v.Msg, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no violation mentions %q; got %v", tc.want, r.Violations)
			}
		})
	}
}
