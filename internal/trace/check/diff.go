package check

import (
	"fmt"
	"math"
	"reflect"
	"time"

	"winlab/internal/trace"
)

// FirstDiff walks a and b (structs, slices, maps, pointers — anything
// reflect can see) and returns a description of the first field at
// which they differ, or "" when they are equal. Unlike
// reflect.DeepEqual it reports *where* the divergence is (a dotted
// field path with indices), compares time.Time with Equal (so a UTC
// and a +00:00 reading of the same instant match), and compares floats
// bitwise (the repo's equivalence claims are bit-identical, not
// approximately-equal; NaN == NaN under this rule). Unexported struct
// fields are skipped.
//
// The differential validator uses it to reduce "serial and parallel
// runs disagree" to a single actionable coordinate such as
//
//	.Samples[3812].CPUIdle: 17h3m0s != 17h2m45s
func FirstDiff(a, b any) string {
	return firstDiff(reflect.ValueOf(a), reflect.ValueOf(b), "", 0)
}

// FirstDiffApprox is FirstDiff with a relative tolerance for floats:
// two floats match when |a−b| ≤ tol·max(1, |a|, |b|) (NaN still only
// matches NaN). Everything else — ints, counts, strings, times — is
// still compared exactly. The streaming validator uses it for the
// parallel arm, whose sharded Welford merges reassociate float
// additions; a tolerance of 0 degenerates to bit-exact FirstDiff.
func FirstDiffApprox(a, b any, tol float64) string {
	return firstDiff(reflect.ValueOf(a), reflect.ValueOf(b), "", tol)
}

var timeType = reflect.TypeOf(time.Time{})

func floatsMatch(a, b, tol float64) bool {
	if math.Float64bits(a) == math.Float64bits(b) {
		return true
	}
	if tol <= 0 || math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	lim := tol * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= lim
}

func firstDiff(a, b reflect.Value, path string, tol float64) string {
	if a.IsValid() != b.IsValid() {
		return fmt.Sprintf("%s: one side missing", orRoot(path))
	}
	if !a.IsValid() {
		return ""
	}
	if a.Type() != b.Type() {
		return fmt.Sprintf("%s: type %s != %s", orRoot(path), a.Type(), b.Type())
	}
	if a.Type() == timeType {
		ta, tb := a.Interface().(time.Time), b.Interface().(time.Time)
		if !ta.Equal(tb) {
			return fmt.Sprintf("%s: %s != %s", orRoot(path), fmtT(ta), fmtT(tb))
		}
		return ""
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		if !floatsMatch(a.Float(), b.Float(), tol) {
			return fmt.Sprintf("%s: %v != %v", orRoot(path), a.Float(), b.Float())
		}
	case reflect.Pointer, reflect.Interface:
		if a.IsNil() != b.IsNil() {
			return fmt.Sprintf("%s: nil != non-nil", orRoot(path))
		}
		if !a.IsNil() {
			return firstDiff(a.Elem(), b.Elem(), path, tol)
		}
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" { // unexported
				continue
			}
			if d := firstDiff(a.Field(i), b.Field(i), path+"."+f.Name, tol); d != "" {
				return d
			}
		}
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && a.Len() != b.Len() {
			return fmt.Sprintf("%s: length %d != %d", orRoot(path), a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if d := firstDiff(a.Index(i), b.Index(i), fmt.Sprintf("%s[%d]", path, i), tol); d != "" {
				return d
			}
		}
	case reflect.Map:
		if a.Len() != b.Len() {
			return fmt.Sprintf("%s: map length %d != %d", orRoot(path), a.Len(), b.Len())
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			kp := fmt.Sprintf("%s[%v]", path, iter.Key())
			if !bv.IsValid() {
				return fmt.Sprintf("%s: key only on one side", orRoot(kp))
			}
			if d := firstDiff(iter.Value(), bv, kp, tol); d != "" {
				return d
			}
		}
	default:
		// Comparable scalars: bool, ints, uints, string, complex, chan…
		if a.Comparable() {
			if !a.Equal(b) {
				return fmt.Sprintf("%s: %v != %v", orRoot(path), a.Interface(), b.Interface())
			}
		} else if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			return fmt.Sprintf("%s: values differ", orRoot(path))
		}
	}
	return ""
}

func orRoot(path string) string {
	if path == "" {
		return "value"
	}
	return path
}

// DiffDatasets compares two datasets down to the first divergent field
// and returns a description addressed with machine/iteration
// coordinates, or "" when the datasets are identical (bit-identical
// floats, instant-equal times, same sample order). Order matters: the
// pipeline's equivalence claims are about byte-for-byte reproducibility,
// not set equality.
func DiffDatasets(a, b *trace.Dataset) string {
	switch {
	case a == nil && b == nil:
		return ""
	case a == nil || b == nil:
		return "one dataset is nil"
	}
	if !a.Start.Equal(b.Start) {
		return fmt.Sprintf(".Start: %s != %s", fmtT(a.Start), fmtT(b.Start))
	}
	if !a.End.Equal(b.End) {
		return fmt.Sprintf(".End: %s != %s", fmtT(a.End), fmtT(b.End))
	}
	if a.Period != b.Period {
		return fmt.Sprintf(".Period: %s != %s", a.Period, b.Period)
	}
	if len(a.Machines) != len(b.Machines) {
		return fmt.Sprintf(".Machines: length %d != %d", len(a.Machines), len(b.Machines))
	}
	for i := range a.Machines {
		if d := FirstDiff(a.Machines[i], b.Machines[i]); d != "" {
			return fmt.Sprintf(".Machines[%d] (id=%s) %s", i, a.Machines[i].ID, d)
		}
	}
	if len(a.Iterations) != len(b.Iterations) {
		return fmt.Sprintf(".Iterations: length %d != %d", len(a.Iterations), len(b.Iterations))
	}
	for i := range a.Iterations {
		if d := FirstDiff(a.Iterations[i], b.Iterations[i]); d != "" {
			return fmt.Sprintf(".Iterations[%d] (iter=%d) %s", i, a.Iterations[i].Iter, d)
		}
	}
	if len(a.Samples) != len(b.Samples) {
		return fmt.Sprintf(".Samples: length %d != %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if d := FirstDiff(a.Samples[i], b.Samples[i]); d != "" {
			return fmt.Sprintf(".Samples[%d] (machine=%s iter=%d) %s", i, a.Samples[i].Machine, a.Samples[i].Iter, d)
		}
	}
	return ""
}
