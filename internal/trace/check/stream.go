package check

import (
	"time"

	"winlab/internal/trace"
)

// Stream validates samples and iteration records incrementally, in the
// order a collector commits them — the engine behind the opt-in ddc
// sink wrapper. It keeps one Sample value per machine (the last
// committed one) and a small pending per-iteration tally; in steady
// state it performs no per-sample allocation on the clean path
// (violation messages allocate, but only when something is wrong).
//
// A Stream checks everything the batch Check does except the
// index-agreement invariant (there is no frozen index mid-collection)
// and the iteration-window bounds when no period grid is configured.
// Because samples arrive before their iteration record is finalised,
// the sample-bounds check uses the period grid (iteration i collects in
// [start+i·period, start+(i+1)·period)) rather than the recorded
// [Start, End]; Options.NoAlignment disables it for wall-clock
// collectors that drift off the grid.
//
// A Stream is not safe for concurrent use; the ddc sink wrapper calls
// it under the sink's commit lock.
type Stream struct {
	start  time.Time
	end    time.Time
	period time.Duration
	opts   Options
	r      Report

	last     map[string]trace.Sample // per machine: last committed sample
	pending  map[int]int             // iteration → samples committed, awaiting the record
	prevIter trace.Iteration         // last iteration record seen
	haveIter bool
}

// NewStream returns a streaming checker for a collection run covering
// [start, end] with the given sampling period. A zero end disables the
// upper experiment bound; a zero period disables the grid-based
// alignment and window checks.
func NewStream(start, end time.Time, period time.Duration, opts Options) *Stream {
	s := &Stream{
		start:  start,
		end:    end,
		period: period,
		opts:   opts,
		last:   make(map[string]trace.Sample),
	}
	if !opts.NoAccounting {
		s.pending = make(map[int]int)
	}
	s.r.limit = opts.limit()
	return s
}

// Sample validates one committed sample against the machine's previous
// sample and the experiment bounds. It returns the number of new
// violations it found (zero on the clean path).
func (st *Stream) Sample(s *trace.Sample) int {
	before := st.r.Total
	st.r.Samples++

	if !st.start.IsZero() && s.Time.Before(st.start) || !st.end.IsZero() && s.Time.After(st.end) {
		st.r.addf(KindSampleBounds, s.Machine, s.Iter, "sample time %s outside experiment [%s, %s]",
			fmtT(s.Time), fmtT(st.start), fmtT(st.end))
	} else if st.period > 0 && !st.opts.NoAlignment && s.Iter >= 0 {
		// The iteration record is not committed yet; bound the sample by
		// its iteration's period window on the grid instead.
		itStart := st.start.Add(time.Duration(s.Iter) * st.period)
		switch off := s.Time.Sub(itStart); {
		case off < 0:
			st.r.addf(KindSampleBounds, s.Machine, s.Iter, "sample time %s before its iteration's grid start %s",
				fmtT(s.Time), fmtT(itStart))
		case off >= st.period:
			st.r.addf(KindSampleBounds, s.Machine, s.Iter, "sample time %s spills past its iteration's period window (start %s + %s)",
				fmtT(s.Time), fmtT(itStart), st.period)
		}
	}

	checkSession(s, &st.r)

	if prev, ok := st.last[s.Machine]; ok {
		if s.Time.Before(prev.Time) {
			st.r.addf(KindIterationOrder, s.Machine, s.Iter, "sample time %s before the machine's previous sample at %s",
				fmtT(s.Time), fmtT(prev.Time))
		}
		checkCounters(&prev, s, &st.r)
	}
	st.last[s.Machine] = *s

	if st.pending != nil {
		st.pending[s.Iter]++
	}
	return st.r.Total - before
}

// Iteration validates one finished iteration record (ordering,
// alignment, response accounting against the samples committed for it)
// and returns the number of new violations.
func (st *Stream) Iteration(it trace.Iteration) int {
	before := st.r.Total
	st.r.Iterations++

	var prev *trace.Iteration
	if st.haveIter {
		prev = &st.prevIter
	}
	checkIterRecord(&it, prev, st.start, st.period, st.opts, &st.r)
	st.prevIter, st.haveIter = it, true

	if st.pending != nil {
		got := st.pending[it.Iter] + it.ParseErrors
		if got != it.Responded {
			st.r.addf(KindResponseAccounting, "", it.Iter,
				"samples %d + parse errors %d != responded %d", st.pending[it.Iter], it.ParseErrors, it.Responded)
		}
		delete(st.pending, it.Iter)
	}
	return st.r.Total - before
}

// Report returns the accumulated report. The stream may keep being fed
// afterwards; the report is live.
func (st *Stream) Report() *Report {
	st.r.Machines = len(st.last)
	return &st.r
}
