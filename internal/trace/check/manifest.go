package check

import (
	"winlab/internal/trace"
	"winlab/internal/trace/stream"
)

// KindManifestMismatch flags a segment manifest whose claims disagree
// with the segment files it indexes, or segments that violate the
// sharding contract (two shards claiming one machine, one shard's time
// chunks overlapping in iteration space).
const KindManifestMismatch Kind = "manifest-mismatch"

// CheckManifest validates a segment manifest against its segment files,
// header-deep: each segment is opened through stream.Open (gzip sniffed)
// and only its header — bounds, period, catalogue, iteration log,
// declared sample count — is decoded; the sample payloads are not
// streamed, so the check is O(header) per segment and safe to run on
// gridscale manifests. The full payload-level cross-check (sample
// overlap, contiguity) happens in trace.MergeSegments, which refuses to
// produce output from inconsistent segments.
//
// Rules:
//
//   - every segment file opens and decodes a TBv1 header;
//   - segment periods equal the manifest period, segment bounds lie
//     within the manifest bounds;
//   - per-segment counts in the manifest (machines, samples, iterations,
//     first/last iteration) match the segment header;
//   - segments of *different* shards catalogue disjoint machines;
//   - segments of the *same* shard (time chunks) have non-overlapping
//     iteration ranges.
func CheckManifest(m *trace.Manifest, dir string, opts Options) *Report {
	r := &Report{limit: opts.limit()}
	paths := m.SegmentPaths(dir)

	type iterSpan struct {
		seg    int
		lo, hi int
	}
	machineSeg := map[string]int{}     // machine ID -> first shard that catalogued it
	shardSpans := map[int][]iterSpan{} // shard -> iteration spans of its segments
	for i, seg := range m.Segments {
		c, err := stream.Open(paths[i])
		if err != nil {
			r.addf(KindManifestMismatch, "", -1, "segment %q: %v", seg.Path, err)
			continue
		}
		r.Iterations += len(c.Iterations())
		if p := c.Period(); p != m.Period() {
			r.addf(KindManifestMismatch, "", -1, "segment %q period %v, manifest says %v", seg.Path, p, m.Period())
		}
		if c.Start().Before(m.Start) || c.End().After(m.End) {
			r.addf(KindManifestMismatch, "", -1, "segment %q bounds %v..%v outside manifest bounds %v..%v",
				seg.Path, c.Start(), c.End(), m.Start, m.End)
		}
		if n := len(c.Machines()); n != seg.Machines {
			r.addf(KindManifestMismatch, "", -1, "segment %q catalogues %d machines, manifest says %d", seg.Path, n, seg.Machines)
		}
		if n := c.DeclaredSamples(); n != seg.Samples {
			r.addf(KindManifestMismatch, "", -1, "segment %q declares %d samples, manifest says %d", seg.Path, n, seg.Samples)
		}
		iters := c.Iterations()
		if len(iters) != seg.Iterations {
			r.addf(KindManifestMismatch, "", -1, "segment %q has %d iteration records, manifest says %d", seg.Path, len(iters), seg.Iterations)
		}
		first, last := -1, -1
		for _, it := range iters {
			if first < 0 || it.Iter < first {
				first = it.Iter
			}
			if it.Iter > last {
				last = it.Iter
			}
		}
		if first != seg.FirstIter || last != seg.LastIter {
			r.addf(KindManifestMismatch, "", -1, "segment %q spans iterations [%d,%d], manifest says [%d,%d]",
				seg.Path, first, last, seg.FirstIter, seg.LastIter)
		}
		for _, mi := range c.Machines() {
			r.Machines++
			if prev, ok := machineSeg[mi.ID]; ok {
				if prevShard := m.Segments[prev].Shard; prevShard != seg.Shard {
					r.addf(KindManifestMismatch, mi.ID, -1, "machine catalogued by shard %d (%q) and shard %d (%q); shards must partition the fleet",
						prevShard, m.Segments[prev].Path, seg.Shard, seg.Path)
				}
			} else {
				machineSeg[mi.ID] = i
			}
		}
		if first >= 0 {
			shardSpans[seg.Shard] = append(shardSpans[seg.Shard], iterSpan{seg: i, lo: first, hi: last})
		}
		c.Close()
	}

	// Time chunks of one shard must not overlap in iteration space —
	// they would both claim the same probes of the same machines.
	for _, spans := range shardSpans {
		for a := 0; a < len(spans); a++ {
			for b := a + 1; b < len(spans); b++ {
				sa, sb := spans[a], spans[b]
				if sa.lo <= sb.hi && sb.lo <= sa.hi {
					r.addf(KindManifestMismatch, "", sa.lo, "segments %q and %q of shard %d overlap: iterations [%d,%d] vs [%d,%d]",
						m.Segments[sa.seg].Path, m.Segments[sb.seg].Path, m.Segments[sa.seg].Shard,
						sa.lo, sa.hi, sb.lo, sb.hi)
				}
			}
		}
	}
	return r
}
