// Package check is the trace-validation layer: a streaming dataset
// invariant checker that verifies the semantic rules every winlab
// monitoring trace must satisfy, reporting typed, machine/iteration-
// addressed Violations instead of silently analysing corrupt data.
//
// Monitoring datasets are only as trustworthy as the invariants beneath
// them (the Grid'5000 "year in the life" report makes the same point
// about availability statistics): after three performance-oriented
// rewrites of the collection pipeline — the frozen index, the deferred
// executor, the zero-allocation codec — the cheapest way to keep the
// 583k-sample traces honest is to make validation a first-class
// subsystem. The invariants encode the paper's probe semantics (§2/§3):
//
//   - per-boot counters are monotone: uptime, cumulative CPU idle and
//     the NIC byte counters never decrease between two samples of the
//     same boot (KindCounterRegression);
//   - SMART attributes survive reboots: the power-cycle count (attr 12)
//     and power-on hours (attr 9) never decrease across a machine's
//     whole timeline, cycles are constant within a boot and strictly
//     increase across one (KindSMARTRegression);
//   - iteration records are strictly increasing in number and start
//     time, and starts are aligned to the sampling period
//     (KindIterationOrder, KindIterationAlignment);
//   - a machine contributes at most one sample per iteration
//     (KindDuplicateSample);
//   - session fields are consistent with login state: no session start
//     without a user, no user without a session start, no session that
//     begins after the sample observing it (KindSessionState);
//   - samples fall inside the [Start, End] window of the iteration that
//     collected them, and inside the experiment bounds
//     (KindSampleBounds);
//   - every sampled machine is catalogued (KindUnknownMachine);
//   - a machine with a declared partial lifetime (scenario fleet churn)
//     only contributes samples inside its [JoinIter, LeaveIter) window
//     (KindLifetimeViolation);
//   - per-iteration accounting closes: committed samples plus booked
//     parse errors equal the responded count (KindResponseAccounting);
//   - the frozen trace.Index agrees with the dataset it claims to
//     describe: fingerprint valid, spans cover every sample exactly
//     once, machine-major time-sorted order, cached Attempts/Days match
//     a recount (KindIndexMismatch).
//
// Check validates a complete in-memory dataset (the tracedoctor CLI and
// `make doctor` path); Stream validates samples one at a time as a
// collector commits them (the opt-in ddc sink wrapper).
package check

import (
	"fmt"
	"time"

	"winlab/internal/trace"
)

// Kind names one invariant class. The string values are stable: they
// appear in tracedoctor output and in telemetry.
type Kind string

const (
	KindCounterRegression  Kind = "counter-regression"
	KindSMARTRegression    Kind = "smart-regression"
	KindIterationOrder     Kind = "iteration-order"
	KindIterationAlignment Kind = "iteration-alignment"
	KindDuplicateSample    Kind = "duplicate-sample"
	KindSessionState       Kind = "session-state"
	KindSampleBounds       Kind = "sample-bounds"
	KindUnknownMachine     Kind = "unknown-machine"
	KindLifetimeViolation  Kind = "lifetime-violation"
	KindResponseAccounting Kind = "response-accounting"
	KindIndexMismatch      Kind = "index-mismatch"
)

// Violation is one invariant breach, addressed to the machine and
// iteration it was observed at (empty machine / negative iteration mean
// "dataset-level").
type Violation struct {
	Kind    Kind
	Machine string // "" when not machine-scoped
	Iter    int    // -1 when not iteration-scoped
	Msg     string
}

// String renders the violation with its coordinates, e.g.
//
//	counter-regression machine=lab1-m03 iter=55: uptime 5h12m0s -> 4h57m0s within one boot
func (v Violation) String() string {
	s := string(v.Kind)
	if v.Machine != "" {
		s += " machine=" + v.Machine
	}
	if v.Iter >= 0 {
		s += fmt.Sprintf(" iter=%d", v.Iter)
	}
	return s + ": " + v.Msg
}

// DefaultLimit bounds how many violations a Report retains; a corrupted
// 580k-sample trace would otherwise buffer hundreds of thousands of
// near-identical entries.
const DefaultLimit = 100

// Options configures a check run.
type Options struct {
	// Limit caps the violations retained in the report (counting
	// continues past it). Zero means DefaultLimit; negative means
	// unlimited.
	Limit int

	// NoAlignment skips the period-alignment invariant. Simulated traces
	// start iterations exactly on the period grid; wall-clock traces
	// (WallCollector) drift and should set this.
	NoAlignment bool

	// NoAccounting skips the responded-count reconciliation, for traces
	// assembled by tools (Merge, TimeSlice) that keep iteration records
	// but re-partition samples.
	NoAccounting bool
}

func (o Options) limit() int {
	switch {
	case o.Limit == 0:
		return DefaultLimit
	case o.Limit < 0:
		return int(^uint(0) >> 1)
	}
	return o.Limit
}

// Report is the outcome of a check: the retained violations, the total
// number found (retained or not), and how much was looked at.
type Report struct {
	Violations []Violation
	Total      int // violations found, including ones past the limit
	Samples    int // samples checked
	Iterations int // iteration records checked
	Machines   int // machines with at least one sample

	limit int
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return r.Total == 0 }

// Truncated reports whether violations were found beyond the retained
// limit.
func (r *Report) Truncated() bool { return r.Total > len(r.Violations) }

// Err returns nil when the report is clean, otherwise an error naming
// the first violation and the total count.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	if r.Total == 1 {
		return fmt.Errorf("trace check: %s", r.Violations[0])
	}
	return fmt.Errorf("trace check: %d violations, first: %s", r.Total, r.Violations[0])
}

// add books one violation, retaining it while under the limit.
func (r *Report) add(v Violation) {
	r.Total++
	if len(r.Violations) < r.limit {
		r.Violations = append(r.Violations, v)
	}
}

func (r *Report) addf(kind Kind, machine string, iter int, format string, args ...any) {
	r.add(Violation{Kind: kind, Machine: machine, Iter: iter, Msg: fmt.Sprintf(format, args...)})
}

// Check validates every invariant over a complete dataset. It freezes
// the dataset (building the trace.Index if needed) and streams over the
// per-machine spans — one pass over the samples, one over the
// iterations, no per-sample allocation.
func Check(d *trace.Dataset, opts Options) *Report {
	r := &Report{limit: opts.limit()}
	iters := checkIterations(d, opts, r)

	idx := d.Index()
	var perIter map[int]int
	if !opts.NoAccounting {
		perIter = make(map[int]int, len(d.Iterations))
	}
	prevID := ""
	idx.EachMachine(func(id string, ss []trace.Sample) {
		r.Machines++
		if prevID != "" && id <= prevID {
			r.addf(KindIndexMismatch, id, -1, "index machine order not strictly sorted (%q after %q)", id, prevID)
		}
		prevID = id
		info := idx.Machine(id)
		if info == nil {
			r.addf(KindUnknownMachine, id, -1, "machine has %d samples but no catalogue entry", len(ss))
		}
		for i := range ss {
			s := &ss[i]
			r.Samples++
			if s.Machine != id {
				r.addf(KindIndexMismatch, id, s.Iter, "index span for %q contains sample of machine %q", id, s.Machine)
			}
			if perIter != nil {
				perIter[s.Iter]++
			}
			checkLifetime(info, s, r)
			checkSampleBounds(d, iters, s, r)
			checkSession(s, r)
			if i > 0 {
				checkPair(&ss[i-1], s, r)
			}
		}
	})

	checkIndexAgreement(d, idx, r)
	if perIter != nil {
		reconcileResponses(d, perIter, r)
	}
	return r
}

// checkIterations validates the iteration records and returns the
// iteration-number → index lookup the sample pass uses.
func checkIterations(d *trace.Dataset, opts Options, r *Report) map[int]int {
	iters := make(map[int]int, len(d.Iterations))
	for i := range d.Iterations {
		it := &d.Iterations[i]
		r.Iterations++
		if prev, dup := iters[it.Iter]; dup {
			r.addf(KindIterationOrder, "", it.Iter, "duplicate iteration record (records %d and %d)", prev, i)
		} else {
			iters[it.Iter] = i
		}
		var prev *trace.Iteration
		if i > 0 {
			prev = &d.Iterations[i-1]
		}
		checkIterRecord(it, prev, d.Start, d.Period, opts, r)
	}
	return iters
}

// checkIterRecord validates one iteration record against its predecessor
// (nil for the first) and the experiment grid. Shared by the batch
// checker and the Stream.
func checkIterRecord(it, prev *trace.Iteration, start time.Time, period time.Duration, opts Options, r *Report) {
	if prev != nil {
		if it.Iter <= prev.Iter {
			r.addf(KindIterationOrder, "", it.Iter, "iteration number not strictly increasing (%d after %d)", it.Iter, prev.Iter)
		}
		if !it.Start.After(prev.Start) {
			r.addf(KindIterationOrder, "", it.Iter, "iteration start %s not after previous start %s",
				fmtT(it.Start), fmtT(prev.Start))
		}
	}
	if !it.End.IsZero() && it.End.Before(it.Start) {
		r.addf(KindIterationOrder, "", it.Iter, "iteration end %s before start %s", fmtT(it.End), fmtT(it.Start))
	}
	if it.Responded > it.Attempted {
		r.addf(KindResponseAccounting, "", it.Iter, "responded %d exceeds attempted %d", it.Responded, it.Attempted)
	}
	if it.ParseErrors < 0 || it.Attempted < 0 || it.Responded < 0 {
		r.addf(KindResponseAccounting, "", it.Iter, "negative iteration counter (attempted=%d responded=%d parse-errors=%d)",
			it.Attempted, it.Responded, it.ParseErrors)
	}
	if !opts.NoAlignment && period > 0 {
		off := it.Start.Sub(start)
		if off < 0 || off%period != 0 {
			r.addf(KindIterationAlignment, "", it.Iter, "iteration start %s not aligned to the %s grid from %s",
				fmtT(it.Start), period, fmtT(start))
		}
	}
}

// checkSampleBounds validates one sample's position against the
// experiment bounds and its iteration's collection window.
func checkSampleBounds(d *trace.Dataset, iters map[int]int, s *trace.Sample, r *Report) {
	if !d.Start.IsZero() && s.Time.Before(d.Start) || !d.End.IsZero() && s.Time.After(d.End) {
		r.addf(KindSampleBounds, s.Machine, s.Iter, "sample time %s outside experiment [%s, %s]",
			fmtT(s.Time), fmtT(d.Start), fmtT(d.End))
		return
	}
	i, ok := iters[s.Iter]
	if !ok {
		r.addf(KindSampleBounds, s.Machine, s.Iter, "sample references iteration %d with no iteration record", s.Iter)
		return
	}
	it := &d.Iterations[i]
	if s.Time.Before(it.Start) {
		r.addf(KindSampleBounds, s.Machine, s.Iter, "sample time %s before its iteration start %s",
			fmtT(s.Time), fmtT(it.Start))
		return
	}
	switch {
	case !it.End.IsZero():
		if s.Time.After(it.End) {
			r.addf(KindSampleBounds, s.Machine, s.Iter, "sample time %s after its iteration end %s",
				fmtT(s.Time), fmtT(it.End))
		}
	case d.Period > 0:
		// Legacy traces carry no sweep end; the sweep must at least stay
		// inside its own period or iterations would overlap.
		if s.Time.Sub(it.Start) >= d.Period {
			r.addf(KindSampleBounds, s.Machine, s.Iter, "sample time %s spills past its iteration's period window (start %s + %s)",
				fmtT(s.Time), fmtT(it.Start), d.Period)
		}
	}
}

// checkLifetime validates that a sample of a partial-lifetime machine
// falls inside its declared [JoinIter, LeaveIter) membership window — a
// probe report from before the machine joined the fleet or after it was
// retired means the catalogue's lifecycle metadata and the samples
// disagree.
func checkLifetime(info *trace.MachineInfo, s *trace.Sample, r *Report) {
	if info == nil || !info.PartialLifetime() || info.ActiveAt(s.Iter) {
		return
	}
	r.addf(KindLifetimeViolation, s.Machine, s.Iter,
		"sample at iteration %d outside declared lifetime [%d, %s)",
		s.Iter, info.JoinIter, fmtLeave(info.LeaveIter))
}

func fmtLeave(leave int) string {
	if leave == 0 {
		return "end"
	}
	return fmt.Sprintf("%d", leave)
}

// checkSession validates the login-state consistency of one sample.
func checkSession(s *trace.Sample, r *Report) {
	switch {
	case s.SessionUser == "" && !s.SessionStart.IsZero():
		r.addf(KindSessionState, s.Machine, s.Iter, "session start %s recorded without a logged-in user", fmtT(s.SessionStart))
	case s.SessionUser != "" && s.SessionStart.IsZero():
		r.addf(KindSessionState, s.Machine, s.Iter, "user %q logged in but session start unset", s.SessionUser)
	case s.SessionUser != "" && s.SessionStart.After(s.Time):
		r.addf(KindSessionState, s.Machine, s.Iter, "session of %q starts %s, after the sample observing it (%s)",
			s.SessionUser, fmtT(s.SessionStart), fmtT(s.Time))
	}
}

// checkPair validates the invariants between two consecutive samples of
// one machine (prev before cur in time order): time/iteration ordering,
// at most one sample per iteration, per-boot counter monotonicity and
// SMART behaviour across boots.
func checkPair(prev, cur *trace.Sample, r *Report) {
	if cur.Time.Before(prev.Time) {
		r.addf(KindIndexMismatch, cur.Machine, cur.Iter, "samples not time-sorted (%s after %s) — index stale after in-place edits?",
			fmtT(cur.Time), fmtT(prev.Time))
	}
	checkCounters(prev, cur, r)
}

// checkCounters validates the per-pair counter invariants (duplicate
// iteration, iteration regression, SMART monotonicity, per-boot counter
// monotonicity) between two consecutive samples of one machine. Shared
// by the batch checker and the Stream.
func checkCounters(prev, cur *trace.Sample, r *Report) {
	switch {
	case cur.Iter == prev.Iter:
		r.addf(KindDuplicateSample, cur.Machine, cur.Iter, "two samples in one iteration (at %s and %s)",
			fmtT(prev.Time), fmtT(cur.Time))
	case cur.Iter < prev.Iter:
		r.addf(KindIterationOrder, cur.Machine, cur.Iter, "sample iteration goes backwards (%d after %d)", cur.Iter, prev.Iter)
	}

	// SMART attributes cover the disk's whole life: never decreasing,
	// regardless of reboots.
	if cur.PowerCycles < prev.PowerCycles {
		r.addf(KindSMARTRegression, cur.Machine, cur.Iter, "power cycles decreased %d -> %d", prev.PowerCycles, cur.PowerCycles)
	}
	if cur.PowerOnHours < prev.PowerOnHours {
		r.addf(KindSMARTRegression, cur.Machine, cur.Iter, "power-on hours decreased %d -> %d", prev.PowerOnHours, cur.PowerOnHours)
	}

	if trace.SameBoot(prev, cur) {
		// One boot: the probe's cumulative counters are monotone.
		if cur.Uptime < prev.Uptime {
			r.addf(KindCounterRegression, cur.Machine, cur.Iter, "uptime %s -> %s within one boot", prev.Uptime, cur.Uptime)
		}
		if cur.CPUIdle < prev.CPUIdle {
			r.addf(KindCounterRegression, cur.Machine, cur.Iter, "cumulative CPU idle %s -> %s within one boot", prev.CPUIdle, cur.CPUIdle)
		}
		if cur.SentBytes < prev.SentBytes {
			r.addf(KindCounterRegression, cur.Machine, cur.Iter, "sent-bytes counter %d -> %d within one boot", prev.SentBytes, cur.SentBytes)
		}
		if cur.RecvBytes < prev.RecvBytes {
			r.addf(KindCounterRegression, cur.Machine, cur.Iter, "recv-bytes counter %d -> %d within one boot", prev.RecvBytes, cur.RecvBytes)
		}
		if cur.PowerCycles != prev.PowerCycles {
			r.addf(KindSMARTRegression, cur.Machine, cur.Iter, "power cycles changed %d -> %d within one boot", prev.PowerCycles, cur.PowerCycles)
		}
		return
	}
	// A reboot: the boot clock moves forward and SMART attribute 12
	// counts at least the power-on that started the new boot.
	if cur.BootTime.Before(prev.BootTime) {
		r.addf(KindCounterRegression, cur.Machine, cur.Iter, "boot time went backwards (%s after %s)",
			fmtT(cur.BootTime), fmtT(prev.BootTime))
	}
	if cur.PowerCycles <= prev.PowerCycles {
		r.addf(KindSMARTRegression, cur.Machine, cur.Iter, "power cycles did not increase across a reboot (%d -> %d)",
			prev.PowerCycles, cur.PowerCycles)
	}
}

// checkIndexAgreement verifies the frozen index still describes the
// dataset: fingerprint validity and the cached aggregates against a
// recount.
func checkIndexAgreement(d *trace.Dataset, idx *trace.Index, r *Report) {
	if !idx.Valid() {
		r.addf(KindIndexMismatch, "", -1, "index fingerprint stale: dataset structurally mutated after freeze")
	}
	if got, want := idx.Attempts(), d.Attempts(); got != want {
		r.addf(KindIndexMismatch, "", -1, "index cached attempts %d != dataset recount %d", got, want)
	}
	if got, want := idx.Days(), d.Days(); got != want {
		r.addf(KindIndexMismatch, "", -1, "index cached days %g != dataset recount %g", got, want)
	}
	covered := 0
	for _, id := range idx.Machines() {
		covered += len(idx.Samples(id))
	}
	if covered != len(d.Samples) {
		r.addf(KindIndexMismatch, "", -1, "index spans cover %d samples, dataset has %d", covered, len(d.Samples))
	}
}

// reconcileResponses closes the per-iteration accounting loop: the
// samples committed for an iteration plus its booked parse errors must
// equal the responses the collector recorded.
func reconcileResponses(d *trace.Dataset, perIter map[int]int, r *Report) {
	for i := range d.Iterations {
		it := &d.Iterations[i]
		if got, want := perIter[it.Iter]+it.ParseErrors, it.Responded; got != want {
			r.addf(KindResponseAccounting, "", it.Iter,
				"samples %d + parse errors %d != responded %d", perIter[it.Iter], it.ParseErrors, it.Responded)
		}
	}
}

func fmtT(t time.Time) string {
	if t.IsZero() {
		return "<unset>"
	}
	return t.UTC().Format(time.RFC3339)
}
