package check

import (
	"fmt"
	"time"

	"winlab/internal/trace"
)

// This file builds the checker's own validation corpus: one small clean
// dataset plus one deliberately corrupted variant per invariant class.
// The corpus is exported because three consumers share it: the check
// package's unit tests, the tracedoctor CLI's -write-corpus mode (the
// negative leg of `make doctor`, which must see a non-zero exit on every
// corrupted trace), and the TBv1 fuzz corpus (violation-bearing datasets
// make good structural seeds).

// Fixture is one corrupted dataset together with the violation the
// checker is expected to report for it.
type Fixture struct {
	Name    string // short slug, usable as a file name
	Kind    Kind   // expected violation kind
	Machine string // expected machine coordinate; "" = dataset-level

	// Serializable is false when the corruption lives in in-memory
	// state that a write/read round trip repairs (e.g. a stale frozen
	// index) — such fixtures cannot be materialised as trace files.
	Serializable bool

	Dataset *trace.Dataset
}

var (
	fixT0     = time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	fixPeriod = 15 * time.Minute
)

// CleanFixture hand-builds a small dataset that satisfies every
// invariant: two machines over four iterations, machine lab1-m1
// rebooting before iteration 2, machine lab1-m2 holding an interactive
// session throughout.
func CleanFixture() *trace.Dataset {
	d := &trace.Dataset{
		Start:  fixT0,
		End:    fixT0.Add(4 * fixPeriod),
		Period: fixPeriod,
		Machines: []trace.MachineInfo{
			{ID: "lab1-m1", Lab: "lab1", RAMMB: 256, DiskGB: 40, IntIndex: 1, FPIndex: 1},
			{ID: "lab1-m2", Lab: "lab1", RAMMB: 512, DiskGB: 80, IntIndex: 2, FPIndex: 2},
		},
	}
	boot1 := fixT0.Add(-1 * time.Hour)
	boot2 := fixT0.Add(-30 * time.Minute)
	for i := 0; i < 4; i++ {
		itStart := fixT0.Add(time.Duration(i) * fixPeriod)
		d.Iterations = append(d.Iterations, trace.Iteration{
			Iter: i, Start: itStart, End: itStart.Add(30 * time.Second),
			Attempted: 2, Responded: 2,
		})

		// lab1-m1: reboots between iterations 1 and 2.
		s1 := trace.Sample{
			Iter: i, Time: itStart.Add(5 * time.Second), Machine: "lab1-m1", Lab: "lab1",
			BootTime: boot1,
			Uptime:   time.Hour + time.Duration(i)*fixPeriod,
			CPUIdle:  50*time.Minute + time.Duration(i)*10*time.Minute,
			DiskGB:   40, FreeDiskGB: 21.5,
			PowerCycles: 5, PowerOnHours: 120,
			SentBytes: 1000 * uint64(i+1), RecvBytes: 9000 * uint64(i+1),
		}
		if i >= 2 {
			reboot := fixT0.Add(2*fixPeriod - 2*time.Minute)
			s1.BootTime = reboot
			s1.Uptime = s1.Time.Sub(reboot)
			s1.CPUIdle = time.Duration(i) * time.Minute
			s1.PowerCycles = 6
			s1.PowerOnHours = 121
			s1.SentBytes = 10 * uint64(i)
			s1.RecvBytes = 90 * uint64(i)
		}
		// lab1-m2: always up, alice logged in since before the experiment.
		s2 := trace.Sample{
			Iter: i, Time: itStart.Add(7 * time.Second), Machine: "lab1-m2", Lab: "lab1",
			BootTime: boot2,
			Uptime:   30*time.Minute + time.Duration(i)*fixPeriod,
			CPUIdle:  20*time.Minute + time.Duration(i)*5*time.Minute,
			DiskGB:   80, FreeDiskGB: 60,
			PowerCycles: 17, PowerOnHours: 3000,
			SentBytes: 500 * uint64(i+1), RecvBytes: 4000 * uint64(i+1),
			SessionUser: "alice", SessionStart: fixT0.Add(-20 * time.Minute),
		}
		d.Samples = append(d.Samples, s1, s2)
	}
	return d
}

// fixtureSample locates machine's sample for iter in d; the corpus is
// hand-built, so a miss is a programming error.
func fixtureSample(d *trace.Dataset, machine string, iter int) *trace.Sample {
	for i := range d.Samples {
		if d.Samples[i].Machine == machine && d.Samples[i].Iter == iter {
			return &d.Samples[i]
		}
	}
	panic(fmt.Sprintf("check: fixture has no sample for %s iter %d", machine, iter))
}

// CorruptedFixtures returns the corpus: one freshly built corrupted
// dataset per invariant class, each annotated with the violation Kind
// and machine coordinate the checker must report.
func CorruptedFixtures() []Fixture {
	mk := func(name string, kind Kind, machine string, corrupt func(d *trace.Dataset)) Fixture {
		d := CleanFixture()
		corrupt(d)
		return Fixture{Name: name, Kind: kind, Machine: machine, Serializable: true, Dataset: d}
	}
	fixtures := []Fixture{
		mk("uptime-regression", KindCounterRegression, "lab1-m2", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m2", 2).Uptime = time.Minute
		}),
		mk("network-counter-regression", KindCounterRegression, "lab1-m2", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m2", 3).SentBytes = 1
		}),
		mk("power-on-hours-decrease", KindSMARTRegression, "lab1-m1", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m1", 3).PowerOnHours = 1
		}),
		mk("power-cycles-flat-across-reboot", KindSMARTRegression, "lab1-m1", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m1", 2).PowerCycles = 5
			fixtureSample(d, "lab1-m1", 3).PowerCycles = 5
		}),
		mk("iterations-out-of-order", KindIterationOrder, "", func(d *trace.Dataset) {
			d.Iterations[1], d.Iterations[2] = d.Iterations[2], d.Iterations[1]
		}),
		mk("iteration-off-grid", KindIterationAlignment, "", func(d *trace.Dataset) {
			d.Iterations[2].Start = d.Iterations[2].Start.Add(time.Minute)
			d.Iterations[2].End = d.Iterations[2].End.Add(time.Minute)
		}),
		mk("duplicate-sample-in-iteration", KindDuplicateSample, "lab1-m1", func(d *trace.Dataset) {
			dup := *fixtureSample(d, "lab1-m1", 1)
			dup.Time = dup.Time.Add(2 * time.Second)
			d.Samples = append(d.Samples, dup)
		}),
		mk("session-start-without-user", KindSessionState, "lab1-m1", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m1", 1).SessionStart = fixT0
		}),
		// ^ not serialisable: both codecs only encode SessionStart when a
		// user is present, so a round trip erases this corruption. Fixed
		// up below.
		mk("session-starting-after-sample", KindSessionState, "lab1-m2", func(d *trace.Dataset) {
			s := fixtureSample(d, "lab1-m2", 0)
			s.SessionStart = s.Time.Add(time.Hour)
		}),
		mk("sample-after-iteration-end", KindSampleBounds, "lab1-m2", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m2", 1).Time = d.Iterations[1].End.Add(time.Minute)
		}),
		mk("sample-outside-experiment", KindSampleBounds, "lab1-m1", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m1", 0).Time = fixT0.Add(-time.Hour)
		}),
		mk("sample-missing-iteration", KindSampleBounds, "lab1-m1", func(d *trace.Dataset) {
			fixtureSample(d, "lab1-m1", 3).Iter = 99
		}),
		mk("machine-not-catalogued", KindUnknownMachine, "lab1-m2", func(d *trace.Dataset) {
			d.Machines = d.Machines[:1]
		}),
		mk("sample-before-lifetime-join", KindLifetimeViolation, "lab1-m1", func(d *trace.Dataset) {
			// Declare lab1-m1 as joining at iteration 2; its existing
			// samples at iterations 0–1 now predate its fleet membership.
			d.Machines[0].JoinIter = 2
		}),
		mk("sample-after-lifetime-leave", KindLifetimeViolation, "lab1-m2", func(d *trace.Dataset) {
			// Declare lab1-m2 as retired before iteration 3; its sample at
			// iteration 3 postdates its fleet membership.
			d.Machines[1].LeaveIter = 3
		}),
		mk("responded-mismatch", KindResponseAccounting, "", func(d *trace.Dataset) {
			d.Iterations[2].Responded = 1
		}),
	}

	for i := range fixtures {
		if fixtures[i].Name == "session-start-without-user" {
			fixtures[i].Serializable = false
		}
	}

	// The index-staleness fixture corrupts in-memory state only: freeze,
	// then swap two samples' time/iter in place without InvalidateIndex,
	// leaving the frozen span unsorted. A file round trip re-sorts and
	// repairs it, so it is not serialisable.
	stale := CleanFixture()
	stale.Index()
	a := fixtureSample(stale, "lab1-m1", 0)
	b := fixtureSample(stale, "lab1-m1", 1)
	a.Time, b.Time = b.Time, a.Time
	a.Iter, b.Iter = b.Iter, a.Iter
	fixtures = append(fixtures, Fixture{
		Name: "index-stale-after-edit", Kind: KindIndexMismatch, Machine: "lab1-m1",
		Serializable: false, Dataset: stale,
	})
	return fixtures
}
