package check_test

import (
	"strings"
	"testing"
	"time"

	"winlab/internal/trace"
	"winlab/internal/trace/check"
)

var (
	t0     = time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	period = 15 * time.Minute
)

// cleanDataset returns the corpus's clean fixture: two machines over
// four iterations, m1 rebooting before iteration 2, m2 holding an
// interactive session (see fixtures.go).
func cleanDataset() *trace.Dataset { return check.CleanFixture() }

func TestCheckCleanDataset(t *testing.T) {
	d := cleanDataset()
	r := check.Check(d, check.Options{})
	if !r.OK() {
		for _, v := range r.Violations {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if r.Samples != len(d.Samples) || r.Iterations != len(d.Iterations) || r.Machines != 2 {
		t.Errorf("coverage = %d samples / %d iters / %d machines, want %d/%d/2",
			r.Samples, r.Iterations, r.Machines, len(d.Samples), len(d.Iterations))
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err() = %v on clean dataset", err)
	}
}

// sampleAt returns the index in d.Samples of machine's sample for iter.
func sampleAt(t *testing.T, d *trace.Dataset, machine string, iter int) int {
	t.Helper()
	for i := range d.Samples {
		if d.Samples[i].Machine == machine && d.Samples[i].Iter == iter {
			return i
		}
	}
	t.Fatalf("no sample for %s iter %d", machine, iter)
	return -1
}

// TestCheckCorruptions runs the checker over the corrupted-fixture
// corpus (one fixture per invariant class, see fixtures.go) and asserts
// it reports the expected Kind with machine/iteration coordinates.
func TestCheckCorruptions(t *testing.T) {
	fixtures := check.CorruptedFixtures()
	if len(fixtures) < 10 {
		t.Fatalf("corpus has only %d fixtures", len(fixtures))
	}
	seenKinds := map[check.Kind]bool{}
	for _, fx := range fixtures {
		t.Run(fx.Name, func(t *testing.T) {
			r := check.Check(fx.Dataset, check.Options{})
			if r.OK() {
				t.Fatalf("corruption not detected")
			}
			found := false
			for _, v := range r.Violations {
				if v.Kind == fx.Kind && (fx.Machine == "" || v.Machine == fx.Machine) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no %s violation for machine %q; got:", fx.Kind, fx.Machine)
				for _, v := range r.Violations {
					t.Errorf("  %s", v)
				}
			}
			if err := r.Err(); err == nil {
				t.Errorf("Err() = nil on corrupted dataset")
			}
			seenKinds[fx.Kind] = true
		})
	}
	// The corpus must exercise every invariant class the checker knows.
	for _, k := range []check.Kind{
		check.KindCounterRegression, check.KindSMARTRegression,
		check.KindIterationOrder, check.KindIterationAlignment,
		check.KindDuplicateSample, check.KindSessionState,
		check.KindSampleBounds, check.KindUnknownMachine,
		check.KindResponseAccounting, check.KindIndexMismatch,
	} {
		if !seenKinds[k] {
			t.Errorf("corpus has no fixture for %s", k)
		}
	}
}

// TestCorruptedFixturesSurviveSerialisation pins the property the
// tracedoctor -write-corpus mode depends on: every serialisable fixture
// still fails the checker after a CSV round trip.
func TestCorruptedFixturesSurviveSerialisation(t *testing.T) {
	for _, fx := range check.CorruptedFixtures() {
		if !fx.Serializable {
			continue
		}
		t.Run(fx.Name, func(t *testing.T) {
			var buf strings.Builder
			if err := trace.Write(&buf, fx.Dataset); err != nil {
				t.Fatalf("write: %v", err)
			}
			rd, err := trace.Read(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if r := check.Check(rd, check.Options{}); r.OK() {
				t.Errorf("round trip repaired the corruption")
			}
		})
	}
}

func TestReportLimitAndTruncation(t *testing.T) {
	d := cleanDataset()
	// Corrupt every m2 sample's session state: 4 violations.
	for i := range d.Samples {
		if d.Samples[i].Machine == "lab1-m2" {
			d.Samples[i].SessionUser = ""
		}
	}
	r := check.Check(d, check.Options{Limit: 2})
	if r.Total != 4 {
		t.Fatalf("Total = %d, want 4", r.Total)
	}
	if len(r.Violations) != 2 {
		t.Fatalf("retained %d violations, want 2", len(r.Violations))
	}
	if !r.Truncated() {
		t.Error("Truncated() = false")
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "4 violations") {
		t.Errorf("Err() = %v, want total count", err)
	}
}

func TestViolationString(t *testing.T) {
	v := check.Violation{Kind: check.KindDuplicateSample, Machine: "lab1-m3", Iter: 55, Msg: "two samples"}
	want := "duplicate-sample machine=lab1-m3 iter=55: two samples"
	if got := v.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	dl := check.Violation{Kind: check.KindIterationOrder, Iter: -1, Msg: "msg"}
	if got := dl.String(); got != "iteration-order: msg" {
		t.Errorf("dataset-level String() = %q", got)
	}
}

// feedStream pushes a dataset through a Stream in commit order
// (samples of iteration i, then its iteration record).
func feedStream(st *check.Stream, d *trace.Dataset) {
	for _, it := range d.Iterations {
		for i := range d.Samples {
			if d.Samples[i].Iter == it.Iter {
				st.Sample(&d.Samples[i])
			}
		}
		st.Iteration(it)
	}
}

func TestStreamCleanRun(t *testing.T) {
	d := cleanDataset()
	st := check.NewStream(d.Start, d.End, d.Period, check.Options{})
	feedStream(st, d)
	r := st.Report()
	if !r.OK() {
		for _, v := range r.Violations {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	if r.Samples != len(d.Samples) || r.Iterations != len(d.Iterations) || r.Machines != 2 {
		t.Errorf("coverage = %d/%d/%d", r.Samples, r.Iterations, r.Machines)
	}
}

func TestStreamDetectsRegressionsAndAccounting(t *testing.T) {
	d := cleanDataset()
	// Uptime regression within m2's boot.
	d.Samples[sampleAt(t, d, "lab1-m2", 2)].Uptime = time.Second
	// Accounting: iteration 3 claims 5 responses for 2 samples.
	d.Iterations[3].Responded = 5
	d.Iterations[3].Attempted = 5

	st := check.NewStream(d.Start, d.End, d.Period, check.Options{})
	feedStream(st, d)
	r := st.Report()
	kinds := map[check.Kind]bool{}
	for _, v := range r.Violations {
		kinds[v.Kind] = true
	}
	if !kinds[check.KindCounterRegression] {
		t.Error("stream missed the uptime regression")
	}
	if !kinds[check.KindResponseAccounting] {
		t.Error("stream missed the response-accounting mismatch")
	}
}

func TestStreamGridBounds(t *testing.T) {
	d := cleanDataset()
	// A sample claiming iteration 0 but timed inside iteration 1's window.
	d.Samples[sampleAt(t, d, "lab1-m1", 0)].Time = t0.Add(period + time.Minute)

	st := check.NewStream(d.Start, d.End, d.Period, check.Options{})
	n := 0
	for i := range d.Samples {
		n += st.Sample(&d.Samples[i])
	}
	if n == 0 {
		t.Fatal("no violations returned from Sample()")
	}
	found := false
	for _, v := range st.Report().Violations {
		if v.Kind == check.KindSampleBounds && v.Machine == "lab1-m1" && v.Iter == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no sample-bounds violation; got %v", st.Report().Violations)
	}
}

func TestFirstDiff(t *testing.T) {
	type inner struct{ N int }
	type outer struct {
		S    []inner
		T    time.Time
		F    float64
		name string // unexported: ignored
	}
	a := outer{S: []inner{{1}, {2}}, T: t0, F: 1.5, name: "a"}
	b := a
	b.name = "b"
	if d := check.FirstDiff(a, b); d != "" {
		t.Errorf("unexported field diff reported: %s", d)
	}
	// Same instant, different location: equal.
	b.T = t0.In(time.FixedZone("X", 3600))
	if d := check.FirstDiff(a, b); d != "" {
		t.Errorf("same-instant times reported different: %s", d)
	}
	b = a
	b.S = []inner{{1}, {3}}
	if d := check.FirstDiff(a, b); !strings.Contains(d, ".S[1].N") {
		t.Errorf("FirstDiff = %q, want path .S[1].N", d)
	}
	b = a
	b.F = 1.5000001
	if d := check.FirstDiff(a, b); !strings.Contains(d, ".F") {
		t.Errorf("FirstDiff = %q, want float diff at .F", d)
	}
}

func TestDiffDatasets(t *testing.T) {
	a, b := cleanDataset(), cleanDataset()
	if d := check.DiffDatasets(a, b); d != "" {
		t.Fatalf("identical datasets diff: %s", d)
	}
	b.Samples[3].FreeDiskGB += 0.001
	d := check.DiffDatasets(a, b)
	if !strings.Contains(d, "FreeDiskGB") || !strings.Contains(d, "machine=") {
		t.Errorf("DiffDatasets = %q, want FreeDiskGB with machine coordinate", d)
	}
	b = cleanDataset()
	b.Iterations = b.Iterations[:3]
	if d := check.DiffDatasets(a, b); !strings.Contains(d, ".Iterations: length") {
		t.Errorf("DiffDatasets = %q, want iteration length diff", d)
	}
}
