package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Parallel drains the cursor, invoking fn once per run across workers
// goroutines. The partition is deterministic: each machine is assigned
// to a worker round-robin in first-appearance order, and a worker
// receives its runs in stream order — so for a given trace the set of
// runs each worker index sees (and the order it sees them in) is fixed,
// which is what lets sharded accumulators merge reproducibly.
//
// Run buffers are pooled: fn must not retain run or run.Samples after
// returning. fn runs serially within one worker but concurrently across
// workers; it must not share unsynchronised state between worker
// indexes. workers ≤ 1 degenerates to a plain sequential drain on the
// calling goroutine.
//
// Parallel requires the stream to be machine-contiguous (the canonical
// order of a TBv1 trace written from a frozen Dataset): once runs for a
// machine have ended, that machine must not reappear. Sharding an
// interleaved stream would silently hide the interleaving from each
// worker, so the producer detects reappearance and aborts with an
// error instead.
//
// The first error — the cursor's decode error, the contiguity check,
// or fn's — aborts the drain and is returned; when several workers
// fail the lowest worker index wins, deterministically.
func Parallel(c *Cursor, workers int, fn func(worker int, run *Run) error) error {
	if workers <= 1 {
		var run Run
		for {
			ok, err := c.NextRun(&run)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := fn(0, &run); err != nil {
				return err
			}
		}
	}

	pool := sync.Pool{New: func() any { return new(Run) }}
	chans := make([]chan *Run, workers)
	errs := make([]error, workers)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := range chans {
		chans[w] = make(chan *Run, 2)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for run := range chans[w] {
				// After any failure, keep draining (so the producer never
				// blocks) but stop doing work.
				if errs[w] == nil && !failed.Load() {
					if err := fn(w, run); err != nil {
						errs[w] = err
						failed.Store(true)
					}
				}
				run.Samples = run.Samples[:0]
				pool.Put(run)
			}
		}(w)
	}

	assign := make(map[string]int)
	var decodeErr error
	last := ""
	for !failed.Load() {
		run := pool.Get().(*Run)
		ok, err := c.NextRun(run)
		if err != nil {
			decodeErr = err
			break
		}
		if !ok {
			break
		}
		w, seen := assign[run.Machine]
		if !seen {
			w = len(assign) % workers
			assign[run.Machine] = w
		} else if run.Machine != last {
			decodeErr = fmt.Errorf("stream: not machine-contiguous: %q reappears after other machines; re-encode the trace from a frozen dataset", run.Machine)
			break
		}
		last = run.Machine
		chans[w] <- run
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	if decodeErr != nil {
		return decodeErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
