package stream_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/iotest"

	"winlab/internal/trace"
	"winlab/internal/trace/check"
	"winlab/internal/trace/stream"
)

// fixtureTB returns the canonical (frozen, machine-contiguous) TBv1
// encoding of the checker's clean fixture, plus the frozen dataset.
func fixtureTB(t *testing.T) ([]byte, *trace.Dataset) {
	t.Helper()
	d := check.CleanFixture()
	d.Freeze()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), d
}

func drain(t *testing.T, c *stream.Cursor) []trace.Sample {
	t.Helper()
	var out []trace.Sample
	var s trace.Sample
	for {
		ok, err := c.Next(&s)
		if err != nil {
			t.Fatalf("Next after %d samples: %v", len(out), err)
		}
		if !ok {
			return out
		}
		out = append(out, s)
	}
}

// TestCursorMatchesReadBinary: the streaming decode must equal the
// batch decode sample for sample — including when the underlying
// reader delivers one byte at a time, so every varint, string and
// float straddles a read boundary at some point.
func TestCursorMatchesReadBinary(t *testing.T) {
	tb, want := fixtureTB(t)
	for _, tc := range []struct {
		name string
		c    func() (*stream.Cursor, error)
	}{
		{"plain", func() (*stream.Cursor, error) { return stream.New(bytes.NewReader(tb)) }},
		{"one-byte-reads", func() (*stream.Cursor, error) {
			return stream.New(iotest.OneByteReader(bytes.NewReader(tb)))
		}},
		{"half-reads", func() (*stream.Cursor, error) {
			return stream.New(iotest.HalfReader(bytes.NewReader(tb)))
		}},
		{"data-err-reader", func() (*stream.Cursor, error) {
			return stream.New(iotest.DataErrReader(bytes.NewReader(tb)))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.c()
			if err != nil {
				t.Fatal(err)
			}
			if !c.Start().Equal(want.Start) || !c.End().Equal(want.End) || c.Period() != want.Period {
				t.Error("header metadata diverges")
			}
			got := drain(t, c)
			if len(got) != len(want.Samples) {
				t.Fatalf("%d samples, want %d", len(got), len(want.Samples))
			}
			for i := range got {
				if fmt.Sprintf("%+v", got[i]) != fmt.Sprintf("%+v", want.Samples[i]) {
					t.Fatalf("sample %d diverges:\n%+v\n%+v", i, got[i], want.Samples[i])
				}
			}
		})
	}
}

// TestNextRunBoundaries: for every RunLimit, runs must concatenate to
// the full stream, never mix machines, and only split a machine when
// the previous run hit the limit exactly.
func TestNextRunBoundaries(t *testing.T) {
	tb, want := fixtureTB(t)
	for _, limit := range []int{1, 2, 3, 5, 1 << 20} {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			c, err := stream.New(iotest.OneByteReader(bytes.NewReader(tb)))
			if err != nil {
				t.Fatal(err)
			}
			c.RunLimit = limit
			var got []trace.Sample
			var run stream.Run
			prevMachine, prevLen := "", 0
			for {
				ok, err := c.NextRun(&run)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				if len(run.Samples) == 0 || len(run.Samples) > limit {
					t.Fatalf("run size %d outside (0, %d]", len(run.Samples), limit)
				}
				for i := range run.Samples {
					if run.Samples[i].Machine != run.Machine {
						t.Fatalf("run for %q contains sample of %q", run.Machine, run.Samples[i].Machine)
					}
				}
				if run.Machine == prevMachine && prevLen != limit {
					t.Fatalf("machine %q split without hitting the limit (prev run %d < %d)",
						run.Machine, prevLen, limit)
				}
				prevMachine, prevLen = run.Machine, len(run.Samples)
				got = append(got, run.Samples...) // copies: the buffer is reused
			}
			if len(got) != len(want.Samples) {
				t.Fatalf("runs concatenate to %d samples, want %d", len(got), len(want.Samples))
			}
			for i := range got {
				if got[i].Machine != want.Samples[i].Machine || !got[i].Time.Equal(want.Samples[i].Time) {
					t.Fatalf("sample %d out of order after chunking", i)
				}
			}
		})
	}
}

// TestMixedNextAndNextRun: interleaving the two pull styles must not
// lose or duplicate the pending sample.
func TestMixedNextAndNextRun(t *testing.T) {
	tb, want := fixtureTB(t)
	c, err := stream.New(bytes.NewReader(tb))
	if err != nil {
		t.Fatal(err)
	}
	c.RunLimit = 2
	var got []trace.Sample
	var s trace.Sample
	var run stream.Run
	for i := 0; ; i++ {
		if i%2 == 0 {
			ok, err := c.Next(&s)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, s)
		} else {
			ok, err := c.NextRun(&run)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, run.Samples...)
		}
	}
	if len(got) != len(want.Samples) {
		t.Fatalf("%d samples, want %d", len(got), len(want.Samples))
	}
	for i := range got {
		if got[i].Machine != want.Samples[i].Machine || got[i].Iter != want.Samples[i].Iter {
			t.Fatalf("sample %d diverges after mixed pulls", i)
		}
	}
}

// TestOpenSniffsGzip: Open must handle plain and gzipped files
// identically, and reject CSV with a pointed error.
func TestOpenSniffsGzip(t *testing.T) {
	_, d := fixtureTB(t)
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.tb")
	zipped := filepath.Join(dir, "t.tb.gz")
	csv := filepath.Join(dir, "t.csv")
	for _, p := range []string{plain, zipped, csv} {
		if err := trace.WriteFile(p, d); err != nil {
			t.Fatal(err)
		}
	}
	var first []trace.Sample
	for _, p := range []string{plain, zipped} {
		c, err := stream.Open(p)
		if err != nil {
			t.Fatalf("Open(%s): %v", p, err)
		}
		got := drain(t, c)
		if err := c.Close(); err != nil {
			t.Errorf("Close(%s): %v", p, err)
		}
		if first == nil {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("gzip path decoded %d samples, plain %d", len(got), len(first))
		}
	}
	if _, err := stream.Open(csv); err == nil || !strings.Contains(err.Error(), "CSV") {
		t.Errorf("Open(csv) = %v, want a CSV-specific error", err)
	}
}

// TestCursorTruncatedTrace: truncation mid-stream must surface as a
// sticky error, from both Next and NextRun, with no partial run leaked.
func TestCursorTruncatedTrace(t *testing.T) {
	tb, _ := fixtureTB(t)
	c, err := stream.New(bytes.NewReader(tb[:len(tb)-3]))
	if err != nil {
		t.Fatal(err)
	}
	var run stream.Run
	var last error
	for {
		ok, err := c.NextRun(&run)
		if err != nil {
			last = err
			break
		}
		if !ok {
			t.Fatal("truncated trace ended cleanly")
		}
	}
	if last == nil {
		t.Fatal("no error from truncated trace")
	}
	var s trace.Sample
	if _, err := c.Next(&s); err == nil {
		t.Error("error did not stick across Next")
	}
}

// TestCheckStreamOverCursor wires the incremental checker to the
// cursor: the clean fixture must stream violation-free, and each
// serialisable corruption the streaming checker covers must still be
// caught after a freeze → TBv1 → cursor round trip.
func TestCheckStreamOverCursor(t *testing.T) {
	streamable := map[check.Kind]bool{
		check.KindCounterRegression: true,
		check.KindSMARTRegression:   true,
		check.KindSessionState:      true,
	}
	// CleanFixture/CorruptedFixtures build fresh datasets per call, so
	// freezing in place is safe.
	run := func(t *testing.T, d *trace.Dataset) *check.Report {
		t.Helper()
		d.Freeze()
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, d); err != nil {
			t.Fatal(err)
		}
		c, err := stream.New(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		st := check.NewStream(c.Start(), c.End(), c.Period(), check.Options{})
		var s trace.Sample
		for {
			ok, err := c.Next(&s)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			st.Sample(&s)
		}
		for _, it := range c.Iterations() {
			st.Iteration(it)
		}
		return st.Report()
	}

	if r := run(t, check.CleanFixture()); !r.OK() {
		t.Fatalf("clean fixture via cursor: %d violations, first: %v", r.Total, r.Violations[0])
	}
	for _, fx := range check.CorruptedFixtures() {
		if !fx.Serializable || !streamable[fx.Kind] {
			continue
		}
		t.Run(fx.Name, func(t *testing.T) {
			r := run(t, fx.Dataset)
			for _, v := range r.Violations {
				if v.Kind == fx.Kind {
					return
				}
			}
			t.Errorf("streamed checker missed %s (report: %d violations)", fx.Kind, r.Total)
		})
	}
}

// TestParallelDeterministicPartition: the machine→worker assignment
// and per-worker run order must be identical across repeated drains.
func TestParallelDeterministicPartition(t *testing.T) {
	tb, _ := fixtureTB(t)
	snapshot := func() [][]string {
		c, err := stream.New(bytes.NewReader(tb))
		if err != nil {
			t.Fatal(err)
		}
		c.RunLimit = 2
		got := make([][]string, 3)
		var mu sync.Mutex
		err = stream.Parallel(c, 3, func(w int, run *stream.Run) error {
			mu.Lock()
			got[w] = append(got[w], fmt.Sprintf("%s/%d", run.Machine, len(run.Samples)))
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := snapshot(), snapshot()
	for w := range a {
		if strings.Join(a[w], ",") != strings.Join(b[w], ",") {
			t.Fatalf("worker %d saw different runs across drains:\n%v\n%v", w, a[w], b[w])
		}
	}
}

// TestParallelErrorPropagation: fn errors and decode errors must both
// abort the drain and reach the caller.
func TestParallelErrorPropagation(t *testing.T) {
	tb, _ := fixtureTB(t)

	c, err := stream.New(bytes.NewReader(tb))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if got := stream.Parallel(c, 4, func(w int, run *stream.Run) error { return boom }); !errors.Is(got, boom) {
		t.Errorf("fn error = %v, want %v", got, boom)
	}

	c2, err := stream.New(bytes.NewReader(tb[:len(tb)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if got := stream.Parallel(c2, 4, func(w int, run *stream.Run) error { return nil }); got == nil {
		t.Error("decode error swallowed by Parallel")
	}

	// Sequential degenerate path too.
	c3, err := stream.New(bytes.NewReader(tb[:len(tb)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if got := stream.Parallel(c3, 1, func(w int, run *stream.Run) error { return nil }); got == nil {
		t.Error("decode error swallowed by sequential Parallel")
	}
}

// TestNewRejectsGarbage: wrong magic and raw gzip of garbage must fail
// at construction, not at first Next.
func TestNewRejectsGarbage(t *testing.T) {
	if _, err := stream.New(bytes.NewReader([]byte("NOPE\x01junk"))); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, err := stream.New(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0xff})); err == nil {
		t.Error("corrupt gzip accepted")
	}
	if _, err := stream.New(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
