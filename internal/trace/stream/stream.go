// Package stream provides out-of-core access to TBv1 traces: a chunked
// cursor that yields per-machine runs of samples without materialising
// a Dataset, and a deterministic parallel scheduler over those runs.
//
// The TBv1 format is per-machine delta-coded, and traces written from a
// frozen Dataset are machine-contiguous (machine-major, time-sorted
// within each machine) — exactly the order the in-memory analysis
// consumes samples in. The cursor exploits that: it decodes one bounded
// run at a time (one machine, at most MaxRunSamples samples), so the
// peak heap of a full-trace scan is a few run buffers plus the string
// dictionary, independent of trace length. analysis.AllStream builds
// the paper's tables and figures on top of this with single-pass
// accumulators; see DESIGN.md §10 for the equivalence guarantees.
package stream

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"time"

	"winlab/internal/trace"
)

// DefaultRunLimit bounds how many samples a single run may carry. A
// machine with more samples than this is delivered as several
// consecutive runs (same Machine, split at the limit), which keeps the
// per-run buffer — the unit of memory the scheduler recycles — small
// and predictable. 4096 samples ≈ 0.9 MB of Sample structs.
const DefaultRunLimit = 4096

// bufSize mirrors the trace package's shared buffered-IO window.
const bufSize = 1 << 20

// gzipMagic is the two-byte gzip member header (RFC 1952).
var gzipMagic = []byte{0x1f, 0x8b}

// Run is one contiguous chunk of a machine's samples, in stream order.
// The Samples slice is reused across NextRun calls (and recycled by
// Parallel) — consumers must finish with it before asking for the next
// run, and must copy anything they keep.
type Run struct {
	Machine string
	Samples []trace.Sample
}

// Cursor streams a TBv1 trace as bounded per-machine runs. It layers
// gzip sniffing and chunking over trace.BinaryCursor; header metadata
// (times, period, machine catalogue, iteration log) is available
// immediately after New/Open, before any sample has been decoded.
//
// A cursor is single-use and not safe for concurrent use (Parallel
// performs the decode on one goroutine and fans the runs out).
type Cursor struct {
	bc *trace.BinaryCursor

	// RunLimit caps samples per run; zero means DefaultRunLimit.
	// Adjust before the first NextRun call.
	RunLimit int

	closers []io.Closer // gzip reader(s) then file, closed in order

	pending    trace.Sample // first sample of the next run, if hasPending
	hasPending bool
	eof        bool
	err        error
}

// New opens a cursor over r. The content is sniffed like trace.ReadAny:
// a gzip stream is transparently decompressed and re-sniffed; anything
// that is not TBv1 after decompression is an error (CSV traces have no
// streamable framing — convert them with tracecat first).
func New(r io.Reader) (*Cursor, error) {
	return newCursor(r, nil)
}

// Open opens a cursor over a trace file, plain or gzipped. Close
// releases the file handle.
func Open(path string) (*Cursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	c, err := newCursor(f, []io.Closer{f})
	if err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func newCursor(r io.Reader, closers []io.Closer) (*Cursor, error) {
	br := bufio.NewReaderSize(r, bufSize)
	head, _ := br.Peek(2)
	if bytes.HasPrefix(head, gzipMagic) {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("stream: gzip: %w", err)
		}
		// The gzip reader is closed before the file: prepend it so the
		// closers run innermost-first.
		return newCursor(gz, append([]io.Closer{gz}, closers...))
	}
	bc, err := trace.NewBinaryCursor(br)
	if err != nil {
		if len(head) > 0 && head[0] == 'H' {
			return nil, fmt.Errorf("stream: input looks like a CSV trace; streaming needs TBv1 (%w)", err)
		}
		return nil, err
	}
	return &Cursor{bc: bc, RunLimit: DefaultRunLimit, closers: closers}, nil
}

// Close releases any resources the cursor owns (decompressors, the
// file handle from Open). It is safe on a New-over-reader cursor.
func (c *Cursor) Close() error {
	var first error
	for _, cl := range c.closers {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.closers = nil
	return first
}

// Start returns the trace start time from the header.
func (c *Cursor) Start() time.Time { return c.bc.Start() }

// End returns the trace end time from the header.
func (c *Cursor) End() time.Time { return c.bc.End() }

// Period returns the collection period from the header.
func (c *Cursor) Period() time.Duration { return c.bc.Period() }

// Machines returns the machine catalogue (read-only).
func (c *Cursor) Machines() []trace.MachineInfo { return c.bc.Machines() }

// Iterations returns the iteration log (read-only).
func (c *Cursor) Iterations() []trace.Iteration { return c.bc.Iterations() }

// DeclaredSamples returns the (untrusted) sample count from the header.
func (c *Cursor) DeclaredSamples() uint64 { return c.bc.DeclaredSamples() }

// Next decodes the next single sample, interleaving correctly with
// NextRun. It reports false with a nil error at a clean end of stream;
// decode errors are sticky.
func (c *Cursor) Next(s *trace.Sample) (bool, error) {
	if c.hasPending {
		*s, c.hasPending = c.pending, false
		return true, nil
	}
	return c.next(s)
}

func (c *Cursor) next(s *trace.Sample) (bool, error) {
	if c.err != nil {
		return false, c.err
	}
	if c.eof {
		return false, nil
	}
	ok, err := c.bc.Next(s)
	if err != nil {
		c.err = err
		return false, err
	}
	if !ok {
		c.eof = true
	}
	return ok, nil
}

// NextRun fills run with the next chunk: samples of one machine, in
// stream order, at most RunLimit of them. It reports false with a nil
// error when the stream is exhausted. A decode error mid-run discards
// the partial run and is returned (and sticky) — a truncated trace
// never yields silently partial analysis input.
func (c *Cursor) NextRun(run *Run) (bool, error) {
	run.Samples = run.Samples[:0]
	if !c.hasPending {
		ok, err := c.next(&c.pending)
		if err != nil || !ok {
			return false, err
		}
		c.hasPending = true
	}
	run.Machine = c.pending.Machine
	run.Samples = append(run.Samples, c.pending)
	c.hasPending = false

	limit := c.RunLimit
	if limit <= 0 {
		limit = DefaultRunLimit
	}
	for len(run.Samples) < limit {
		ok, err := c.next(&c.pending)
		if err != nil {
			return false, err
		}
		if !ok {
			break
		}
		if c.pending.Machine != run.Machine {
			c.hasPending = true
			break
		}
		run.Samples = append(run.Samples, c.pending)
	}
	return true, nil
}
