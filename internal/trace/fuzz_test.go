package trace

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadBinary hammers the TBv1 decoder with arbitrary bytes: malformed
// input (truncated streams, bad varints, wrong magic, lying counts,
// out-of-range dictionary references) must return an error, never panic
// or allocate absurdly; input that decodes must re-encode to a stream
// that decodes to the same dataset (Write∘Read fixed point).
func FuzzReadBinary(f *testing.F) {
	full := newDataset()
	full.Samples = append(full.Samples, FromSnapshot(9, snapshotFixture()))
	var seedBuf bytes.Buffer
	if err := WriteBinary(&seedBuf, full); err != nil {
		f.Fatal(err)
	}
	valid := seedBuf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(valid[:len(valid)/2])             // truncated mid-stream
	f.Add(valid[:5])                        // header only
	f.Add([]byte{})                         // empty
	f.Add([]byte("WLTB"))                   // magic, no version
	f.Add([]byte("NOPE\x01"))               // wrong magic
	f.Add([]byte("WLTB\x02"))               // future version
	f.Add(append([]byte("WLTB\x01"), bytes.Repeat([]byte{0x80}, 32)...)) // overlong varint
	f.Add(append([]byte("WLTB\x01"), 0, 0, 0, 0, 0, 0, 0,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10)) // huge count
	f.Add(append(append([]byte(nil), valid...), 0xFF)) // trailing byte

	// Checker-violation seeds: traces that decode fine but carry
	// invariant-violating data (the trace doctor's bread and butter).
	// The codec must stay judgement-free — fidelity for bad data too —
	// and these seeds keep the fuzzer exploring the negative-delta and
	// duplicate-record encodings that clean traces rarely produce.
	addSeed := func(mutate func(d *Dataset)) {
		d := newDataset()
		mutate(d)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// counter regression:
	addSeed(func(d *Dataset) { d.Samples[1].Uptime = time.Minute })
	// SMART regression (negative delta):
	addSeed(func(d *Dataset) { d.Samples[2].PowerOnHours = -100 })
	// duplicate sample:
	addSeed(func(d *Dataset) { d.Samples = append(d.Samples, d.Samples[0]) })
	// iteration disorder:
	addSeed(func(d *Dataset) { d.Iterations[1].Start = d.Iterations[0].Start.Add(-time.Hour) })
	// sample out of bounds:
	addSeed(func(d *Dataset) { d.Samples[0].Time = d.End.Add(time.Hour) })

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A dataset that decoded must survive a re-encode/re-decode
		// cycle unchanged.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			t.Fatalf("re-encode of decoded dataset failed: %v", err)
		}
		d2, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(d2.Samples) != len(d.Samples) || len(d2.Machines) != len(d.Machines) ||
			len(d2.Iterations) != len(d.Iterations) ||
			!d2.Start.Equal(d.Start) || !d2.End.Equal(d.End) || d2.Period != d.Period {
			t.Fatalf("Write∘Read not a fixed point:\n%+v\n%+v", d, d2)
		}
		for i := range d.Samples {
			a, b := &d.Samples[i], &d2.Samples[i]
			if a.Machine != b.Machine || !a.Time.Equal(b.Time) ||
				a.SentBytes != b.SentBytes || a.SessionUser != b.SessionUser {
				t.Fatalf("sample %d drifted: %+v vs %+v", i, a, b)
			}
		}
	})
}
