package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
	"time"
)

// shardFixture builds per-shard datasets sharing one iteration clock:
// nIters iterations over the given machine groups, every machine
// answering every iteration. Each dataset is frozen (sorted) the way a
// per-shard DatasetSink leaves it.
func shardFixture(nIters int, groups ...[]string) []*Dataset {
	period := 15 * time.Minute
	end := t0.Add(time.Duration(nIters) * period)
	out := make([]*Dataset, len(groups))
	for g, ids := range groups {
		d := &Dataset{Start: t0, End: end, Period: period}
		for _, id := range ids {
			d.Machines = append(d.Machines, MachineInfo{
				ID: id, Lab: "L" + id[:2], RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1,
			})
		}
		for it := 0; it < nIters; it++ {
			at := t0.Add(time.Duration(it) * period)
			d.Iterations = append(d.Iterations, Iteration{
				Iter: it, Start: at, End: at.Add(2 * time.Minute),
				Attempted: len(ids), Responded: len(ids),
			})
			for mi, id := range ids {
				s := mkSample(id, at.Add(time.Duration(mi)*time.Second), t0, time.Duration(it)*time.Minute, "")
				s.Iter = it
				s.Lab = "L" + id[:2]
				d.Samples = append(d.Samples, s)
			}
		}
		d.SortSamples()
		out[g] = d
	}
	return out
}

// TestSegmentsRoundTrip: write shard datasets as segments, compact with
// MergeSegments, and require the canonical result — equal to
// MergeSharded of the in-memory shards, and byte-identical to encoding
// that merged dataset directly.
func TestSegmentsRoundTrip(t *testing.T) {
	shards := shardFixture(3, []string{"01-a", "01-b"}, []string{"02-a"}, []string{"03-a", "03-b"})
	dir := t.TempDir()
	mpath, err := WriteSegments(dir, "run", shards)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != 3 || m.Period() != 15*time.Minute {
		t.Fatalf("manifest: %d segments period %v", len(m.Segments), m.Period())
	}
	for i, seg := range m.Segments {
		if seg.Shard != i || seg.Machines != len(shards[i].Machines) ||
			seg.Samples != uint64(len(shards[i].Samples)) ||
			seg.FirstIter != 0 || seg.LastIter != 2 {
			t.Errorf("segment %d info wrong: %+v", i, seg)
		}
	}

	var merged bytes.Buffer
	if err := MergeSegments(&merged, m, dir); err != nil {
		t.Fatal(err)
	}
	want, err := MergeSharded(shards...)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := WriteBinary(&direct, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), direct.Bytes()) {
		t.Error("compacted trace is not byte-identical to encoding the merged dataset")
	}
	got, err := ReadBinary(bytes.NewReader(merged.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Samples, want.Samples) || !reflect.DeepEqual(got.Iterations, want.Iterations) {
		t.Error("compacted dataset differs from MergeSharded")
	}

	// The shard-aware read path: ReadFile on the manifest materialises
	// the same merged dataset (segment paths resolved against the
	// manifest's directory).
	viaFile, err := ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaFile.Samples, want.Samples) || !reflect.DeepEqual(viaFile.Machines, want.Machines) {
		t.Error("ReadFile(manifest) differs from MergeSharded")
	}
}

// TestMergeSegmentsChunked: one shard written as two time chunks — the
// same machines catalogued twice with identical metadata, disjoint
// iteration ranges — compacts into the whole-shard trace.
func TestMergeSegmentsChunked(t *testing.T) {
	whole := shardFixture(4, []string{"01-a", "01-b"})[0]
	early, late := SplitAt(whole, t0.Add(30*time.Minute))
	early.Machines = whole.Machines
	late.Machines = whole.Machines

	var a, b bytes.Buffer
	if err := WriteBinary(&a, early); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&b, late); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := MergeSegmentStreams(&out, []string{"early", "late"}, []io.Reader{
		bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Samples, whole.Samples) {
		t.Error("chunked compaction lost or reordered samples")
	}
	if !reflect.DeepEqual(got.Iterations, whole.Iterations) {
		t.Errorf("chunked compaction iterations differ:\ngot  %+v\nwant %+v", got.Iterations, whole.Iterations)
	}
}

// TestMergeSegmentsOverlap: two segments claiming the same machine over
// intersecting iteration ranges must be rejected with an *OverlapError
// carrying machine and iteration coordinates.
func TestMergeSegmentsOverlap(t *testing.T) {
	// Same machine, iterations 0..2 in both segments.
	shards := shardFixture(3, []string{"01-a"}, []string{"01-a"})
	var a, b bytes.Buffer
	if err := WriteBinary(&a, shards[0]); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&b, shards[1]); err != nil {
		t.Fatal(err)
	}
	err := MergeSegmentStreams(io.Discard, []string{"seg-a", "seg-b"}, []io.Reader{
		bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()),
	})
	var oe *OverlapError
	if !errors.As(err, &oe) {
		t.Fatalf("want *OverlapError, got %v", err)
	}
	if oe.Machine != "01-a" || oe.LoA != 0 || oe.HiA != 2 || oe.LoB != 0 || oe.HiB != 2 {
		t.Errorf("overlap coordinates: %+v", oe)
	}
	if oe.SegmentA != "seg-a" || oe.SegmentB != "seg-b" {
		t.Errorf("overlap segments: %q / %q", oe.SegmentA, oe.SegmentB)
	}
	if !strings.Contains(err.Error(), "01-a") || !strings.Contains(err.Error(), "[0,2]") {
		t.Errorf("error lacks coordinates: %v", err)
	}
}

// TestMergeSegmentsConflictingCatalogue: duplicated machines are only
// allowed when the metadata agrees (the chunked-shard case).
func TestMergeSegmentsConflictingCatalogue(t *testing.T) {
	shards := shardFixture(1, []string{"01-a"}, []string{"01-a"})
	shards[1].Machines[0].RAMMB = 1024
	var a, b bytes.Buffer
	if err := WriteBinary(&a, shards[0]); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&b, shards[1]); err != nil {
		t.Fatal(err)
	}
	err := MergeSegmentStreams(io.Discard, nil, []io.Reader{
		bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()),
	})
	if err == nil || !strings.Contains(err.Error(), "conflicting metadata") {
		t.Errorf("conflicting catalogue: err = %v", err)
	}
}

// TestMergeSegmentStreamsTorture drives the compactor through hostile
// inputs using the stream package's one-byte-reader harness: byte-starved
// readers, empty and single-machine segments, truncation mid-stream.
func TestMergeSegmentStreamsTorture(t *testing.T) {
	shards := shardFixture(2, []string{"01-a", "01-b"}, []string{"02-a"})
	empty := &Dataset{Start: t0, End: t0.Add(30 * time.Minute), Period: 15 * time.Minute}
	encode := func(d *Dataset) []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	segA, segB, segE := encode(shards[0]), encode(shards[1]), encode(empty)

	t.Run("no segments", func(t *testing.T) {
		if err := MergeSegmentStreams(io.Discard, nil, nil); err == nil {
			t.Error("empty merge accepted")
		}
	})

	t.Run("one-byte readers", func(t *testing.T) {
		var out bytes.Buffer
		err := MergeSegmentStreams(&out, nil, []io.Reader{
			iotest.OneByteReader(bytes.NewReader(segA)),
			iotest.OneByteReader(bytes.NewReader(segB)),
			iotest.OneByteReader(bytes.NewReader(segE)),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&out)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MergeSharded(shards...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Samples, want.Samples) {
			t.Error("byte-starved merge differs")
		}
	})

	t.Run("empty segments only", func(t *testing.T) {
		var out bytes.Buffer
		if err := MergeSegmentStreams(&out, nil, []io.Reader{bytes.NewReader(segE)}); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&out)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Samples) != 0 || len(got.Machines) != 0 {
			t.Error("empty merge produced data")
		}
	})

	t.Run("single-machine segments", func(t *testing.T) {
		singles := shardFixture(2, []string{"01-a"}, []string{"02-a"}, []string{"03-a"})
		rs := make([]io.Reader, len(singles))
		for i, d := range singles {
			rs[i] = iotest.OneByteReader(bytes.NewReader(encode(d)))
		}
		var out bytes.Buffer
		if err := MergeSegmentStreams(&out, nil, rs); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&out)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Machines) != 3 || len(got.Samples) != 6 {
			t.Errorf("merged %d machines %d samples", len(got.Machines), len(got.Samples))
		}
	})

	// Truncation at every prefix length: the compactor must fail cleanly
	// (addressed to the truncated segment), never hang or emit silently
	// short output that ReadBinary would accept.
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(segB); cut += 7 {
			var out bytes.Buffer
			err := MergeSegmentStreams(&out, []string{"good", "cut"}, []io.Reader{
				bytes.NewReader(segA),
				iotest.OneByteReader(bytes.NewReader(segB[:cut])),
			})
			if err == nil {
				// The only acceptable "success" would still fail flush's
				// declared-count check; reaching here means corruption.
				t.Fatalf("cut at %d accepted", cut)
			}
			if !strings.Contains(err.Error(), "cut") && !strings.Contains(err.Error(), "sample count") {
				t.Fatalf("cut at %d: unaddressed error %v", cut, err)
			}
		}
	})
}

// TestWriteSegmentsGzip: compressed segment files merge transparently
// (the compactor sniffs the gzip magic per file).
func TestWriteSegmentsGzip(t *testing.T) {
	shards := shardFixture(2, []string{"01-a"}, []string{"02-a"})
	dir := t.TempDir()
	// Write segments by hand with .gz paths plus a matching manifest.
	m := &Manifest{Start: shards[0].Start, End: shards[0].End, PeriodNS: shards[0].Period}
	for i, d := range shards {
		name := fmt.Sprintf("run-%03d.tb.gz", i)
		if err := WriteFileFormat(filepath.Join(dir, name), d, FormatTB); err != nil {
			t.Fatal(err)
		}
		m.Segments = append(m.Segments, segmentInfo(name, i, d))
	}
	mpath := filepath.Join(dir, "run.manifest.json")
	if err := WriteManifest(mpath, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MergeSharded(shards...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Samples, want.Samples) {
		t.Error("gzip segment merge differs")
	}
}
