package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Segmented traces. A sharded collector run leaves K independent TBv1
// segment files — one (or several, time-chunked) per coordinator shard —
// plus a JSON manifest describing them. The manifest is itself a valid
// trace "file": ReadFile/ReadAny sniff the leading '{' and materialise
// the merged dataset, and MergeSegments compacts the segments into one
// canonical TBv1 trace by k-way-merging the per-machine sample streams
// without ever materialising a shard (each segment is consumed through a
// BinaryCursor — the same incremental decoder stream.Cursor wraps — and
// re-encoded through the streaming binaryEncoder, so peak memory is K
// cursors plus one sample per segment, independent of trace length).
//
// Invariants the compactor enforces:
//
//   - all segments share the sampling period, and iteration records with
//     the same number agree on their start instant (shards of one run
//     share one iteration clock; Attempted/Responded/ParseErrors sum);
//   - machine metadata is consistent: a machine catalogued by several
//     segments (time-chunked shards re-catalogue their machines) must
//     carry identical metadata everywhere;
//   - each segment is machine-contiguous (all of a machine's samples
//     consecutive), the order WriteBinary produces for a frozen dataset;
//   - no two segments claim overlapping iteration ranges for the same
//     machine — that means two shards probed one host, or two time
//     chunks overlap, and the violation is reported with machine/iter
//     coordinates as an *OverlapError rather than silently interleaved.
//
// The merged catalogue keeps first-appearance order and the merged
// samples come out machine-major time-sorted — for segments written from
// frozen per-shard datasets the compacted trace is byte-identical to
// encoding the serial collector's dataset (asserted by the validate
// suite's shard arms).

// manifestFormat is the format tag inside a segment manifest; the
// leading '{' is what the content sniffers key on.
const manifestFormat = "winlab-segments-1"

// SegmentInfo describes one TBv1 segment file of a sharded run.
type SegmentInfo struct {
	Path     string `json:"path"`  // relative to the manifest's directory
	Shard    int    `json:"shard"` // coordinator shard that wrote it
	Machines int    `json:"machines"`
	Samples  uint64 `json:"samples"`

	// Iteration coverage: how many records, spanning which numbers.
	// FirstIter/LastIter are -1 for a segment with no iterations.
	Iterations int `json:"iterations"`
	FirstIter  int `json:"first_iter"`
	LastIter   int `json:"last_iter"`
}

// Manifest indexes the segment files of one sharded collection run.
type Manifest struct {
	Format   string        `json:"format"` // manifestFormat
	Start    time.Time     `json:"start"`
	End      time.Time     `json:"end"`
	PeriodNS time.Duration `json:"period_ns"`
	Segments []SegmentInfo `json:"segments"`
}

// Period returns the run's sampling period.
func (m *Manifest) Period() time.Duration { return m.PeriodNS }

// NewSegmentInfo summarises a frozen dataset for inclusion in a
// hand-built manifest — custom segment naming, or several time chunks
// per shard (the gridscale harness and ddcd write chunks as they fill).
// WriteSegments builds these automatically for the one-segment-per-shard
// layout.
func NewSegmentInfo(path string, shard int, d *Dataset) SegmentInfo {
	return segmentInfo(path, shard, d)
}

// segmentInfo summarises a frozen per-shard dataset for the manifest.
func segmentInfo(path string, shard int, d *Dataset) SegmentInfo {
	info := SegmentInfo{
		Path:       path,
		Shard:      shard,
		Machines:   len(d.Machines),
		Samples:    uint64(len(d.Samples)),
		Iterations: len(d.Iterations),
		FirstIter:  -1,
		LastIter:   -1,
	}
	for _, it := range d.Iterations {
		if info.FirstIter < 0 || it.Iter < info.FirstIter {
			info.FirstIter = it.Iter
		}
		if it.Iter > info.LastIter {
			info.LastIter = it.Iter
		}
	}
	return info
}

// WriteSegments writes each shard dataset as an independent TBv1 segment
// file ("<prefix>-NNN.tb") plus the manifest ("<prefix>.manifest.json")
// into dir, and returns the manifest path. Shard datasets must be frozen
// (SortSamples) first — WriteBinary keeps sample order, and the
// compactor's canonical-output guarantee is stated against
// machine-contiguous segments.
func WriteSegments(dir, prefix string, shards []*Dataset) (string, error) {
	if len(shards) == 0 {
		return "", fmt.Errorf("trace: no segments to write")
	}
	m := &Manifest{
		Format:   manifestFormat,
		Start:    shards[0].Start,
		End:      shards[0].End,
		PeriodNS: shards[0].Period,
	}
	for i, d := range shards {
		if d.Period != m.PeriodNS {
			return "", fmt.Errorf("trace: segment %d period %v differs from %v", i, d.Period, m.PeriodNS)
		}
		m.Start = minTime(m.Start, d.Start)
		m.End = maxTime(m.End, d.End)
		name := fmt.Sprintf("%s-%03d.tb", prefix, i)
		if err := WriteFileFormat(filepath.Join(dir, name), d, FormatTB); err != nil {
			return "", err
		}
		m.Segments = append(m.Segments, segmentInfo(name, i, d))
	}
	path := filepath.Join(dir, prefix+".manifest.json")
	return path, WriteManifest(path, m)
}

// WriteManifest serialises the manifest as indented JSON.
func WriteManifest(path string, m *Manifest) error {
	if m.Format == "" {
		m.Format = manifestFormat
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest deserialises a segment manifest written by WriteManifest.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeManifest(f)
}

func decodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("trace: segment manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("trace: segment manifest: unsupported format %q (want %q)", m.Format, manifestFormat)
	}
	if m.PeriodNS <= 0 {
		return nil, fmt.Errorf("trace: segment manifest: non-positive period %v", m.PeriodNS)
	}
	return &m, nil
}

// SegmentPaths resolves the manifest's segment paths against the
// directory the manifest was read from (absolute entries pass through).
func (m *Manifest) SegmentPaths(dir string) []string {
	paths := make([]string, len(m.Segments))
	for i, seg := range m.Segments {
		if filepath.IsAbs(seg.Path) {
			paths[i] = seg.Path
		} else {
			paths[i] = filepath.Join(dir, seg.Path)
		}
	}
	return paths
}

// OverlapError reports two segments claiming overlapping iteration
// ranges for the same machine — either two shards probed one host, or
// two time chunks of one shard overlap. The coordinates name both
// segments and the iteration spans they observed the machine over.
type OverlapError struct {
	Machine            string
	SegmentA, SegmentB string // segment names (paths) in manifest order
	LoA, HiA           int    // iteration span of Machine in SegmentA
	LoB, HiB           int    // iteration span of Machine in SegmentB
}

func (e *OverlapError) Error() string {
	return fmt.Sprintf("trace: merge: segments %q and %q overlap on machine %s: iterations [%d,%d] vs [%d,%d]",
		e.SegmentA, e.SegmentB, e.Machine, e.LoA, e.HiA, e.LoB, e.HiB)
}

// MergeSegments compacts the manifest's segment files (resolved against
// dir) into one canonical TBv1 trace on w, streaming: no segment is
// materialised. Segment files may be gzip-compressed (sniffed, as
// everywhere else). The merged header counts come from the segment
// streams themselves, not the manifest — an inaccurate manifest cannot
// corrupt the output (check.CheckManifest is the consistency gate).
func MergeSegments(w io.Writer, m *Manifest, dir string) error {
	paths := m.SegmentPaths(dir)
	readers := make([]io.Reader, len(paths))
	for i, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("trace: merge: %w", err)
		}
		defer f.Close()
		br := bufio.NewReaderSize(f, ioBufSize)
		if head, _ := br.Peek(len(gzipMagic)); bytes.Equal(head, gzipMagic) {
			gz, err := gzip.NewReader(br)
			if err != nil {
				return fmt.Errorf("trace: merge: %s: %w", path, err)
			}
			defer gz.Close()
			readers[i] = gz
		} else {
			readers[i] = br
		}
	}
	names := make([]string, len(m.Segments))
	for i, seg := range m.Segments {
		names[i] = seg.Path
	}
	return MergeSegmentStreams(w, names, readers)
}

// segHead is one segment's decode state in the k-way merge: the cursor,
// its look-ahead sample, and the per-segment contiguity carry.
type segHead struct {
	idx  int
	name string
	c    *BinaryCursor
	s    Sample
	prev string // machine of the previous sample, for contiguity checks
}

// segQueue orders segment heads by (machine, time, segment index) — the
// canonical machine-major sample order SortSamples produces, with the
// index as a deterministic tie-break.
type segQueue []*segHead

func (q segQueue) Len() int { return len(q) }
func (q segQueue) Less(a, b int) bool {
	if q[a].s.Machine != q[b].s.Machine {
		return q[a].s.Machine < q[b].s.Machine
	}
	if !q[a].s.Time.Equal(q[b].s.Time) {
		return q[a].s.Time.Before(q[b].s.Time)
	}
	return q[a].idx < q[b].idx
}
func (q segQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *segQueue) Push(x any)   { *q = append(*q, x.(*segHead)) }
func (q *segQueue) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return h
}

// segRange is the iteration span one segment observed for one machine.
type segRange struct {
	seg    int
	lo, hi int
}

// MergeSegmentStreams is the io-level core of MergeSegments: each reader
// must be an uncompressed TBv1 stream; names label errors (use the
// segment paths). Exported so torture tests can drive the compactor
// through hostile readers (truncation, one-byte reads) without touching
// the filesystem.
func MergeSegmentStreams(w io.Writer, names []string, rs []io.Reader) error {
	if len(rs) == 0 {
		return fmt.Errorf("trace: no segments to merge")
	}
	name := func(i int) string {
		if i < len(names) && names[i] != "" {
			return names[i]
		}
		return fmt.Sprintf("segment %d", i)
	}

	heads := make([]*segHead, len(rs))
	for i, r := range rs {
		c, err := NewBinaryCursor(r)
		if err != nil {
			return fmt.Errorf("trace: merge: %s: %w", name(i), err)
		}
		heads[i] = &segHead{idx: i, name: name(i), c: c}
	}

	// Reconcile headers: one period, union bounds.
	start, end := heads[0].c.Start(), heads[0].c.End()
	period := heads[0].c.Period()
	for _, h := range heads[1:] {
		if h.c.Period() != period {
			return fmt.Errorf("trace: merge: %s has period %v, want %v", h.name, h.c.Period(), period)
		}
		start = minTime(start, h.c.Start())
		end = maxTime(end, h.c.End())
	}

	// Merged catalogue: first-appearance order, duplicates must agree
	// (time-chunked shards re-catalogue their machines).
	var machines []MachineInfo
	catalogued := map[string]MachineInfo{}
	for _, h := range heads {
		for _, mi := range h.c.Machines() {
			if prev, ok := catalogued[mi.ID]; ok {
				if prev != mi {
					return fmt.Errorf("trace: merge: %s catalogues machine %s with conflicting metadata", h.name, mi.ID)
				}
				continue
			}
			catalogued[mi.ID] = mi
			machines = append(machines, mi)
		}
	}

	// Merged iteration log: shards share one iteration clock.
	logs := make([][]Iteration, len(heads))
	for i, h := range heads {
		logs[i] = h.c.Iterations()
	}
	iterations, err := mergeIterationLogs(logs)
	if err != nil {
		return err
	}

	var declared uint64
	for _, h := range heads {
		declared += h.c.DeclaredSamples()
	}

	enc := newBinaryEncoder(w, start, end, period, machines, iterations, declared)

	// Prime the queue with each segment's first sample.
	q := make(segQueue, 0, len(heads))
	for _, h := range heads {
		ok, err := h.c.Next(&h.s)
		if err != nil {
			return fmt.Errorf("trace: merge: %s: %w", h.name, err)
		}
		if ok {
			h.prev = h.s.Machine
			q = append(q, h)
		}
	}
	heap.Init(&q)

	// K-way merge by (machine, time). ranges tracks, per machine, the
	// iteration span each segment contributed — the overlap evidence.
	// Spans are keyed by (machine, segment) so a span keeps growing even
	// when two segments interleave on one machine; the final report then
	// carries each segment's whole claimed range, not the first collision.
	type rangeKey struct {
		machine string
		seg     int
	}
	ranges := map[string][]segRange{}
	idxOf := map[rangeKey]int{}
	for q.Len() > 0 {
		h := q[0]
		enc.writeSample(&h.s)

		key := rangeKey{h.s.Machine, h.idx}
		if i, ok := idxOf[key]; ok {
			// Same segment extending its span. A machine reappearing in a
			// segment after other machines breaks the contiguity contract
			// (the heap's sortedness guarantee rests on it).
			if h.s.Machine != h.prev {
				return fmt.Errorf("trace: merge: %s is not machine-contiguous: %q reappears after other machines", h.name, h.s.Machine)
			}
			r := &ranges[h.s.Machine][i]
			if h.s.Iter < r.lo {
				r.lo = h.s.Iter
			}
			if h.s.Iter > r.hi {
				r.hi = h.s.Iter
			}
		} else {
			idxOf[key] = len(ranges[h.s.Machine])
			ranges[h.s.Machine] = append(ranges[h.s.Machine], segRange{seg: h.idx, lo: h.s.Iter, hi: h.s.Iter})
		}
		h.prev = h.s.Machine

		ok, err := h.c.Next(&h.s)
		if err != nil {
			return fmt.Errorf("trace: merge: %s: %w", h.name, err)
		}
		if ok {
			heap.Fix(&q, 0)
		} else {
			heap.Pop(&q)
		}
	}

	// Overlap detection, with coordinates: any two segments whose
	// iteration spans for one machine intersect claim the same probes.
	// Report the lexically first machine so the error is deterministic.
	var overlap *OverlapError
	for id, rs := range ranges {
		if len(rs) < 2 {
			continue
		}
		sort.Slice(rs, func(a, b int) bool { return rs[a].lo < rs[b].lo })
		for i := 1; i < len(rs); i++ {
			if rs[i].lo <= rs[i-1].hi {
				if overlap == nil || id < overlap.Machine {
					overlap = &OverlapError{
						Machine:  id,
						SegmentA: name(rs[i-1].seg), LoA: rs[i-1].lo, HiA: rs[i-1].hi,
						SegmentB: name(rs[i].seg), LoB: rs[i].lo, HiB: rs[i].hi,
					}
				}
				break
			}
		}
	}
	if overlap != nil {
		return overlap
	}
	return enc.flush()
}

// readManifestDataset materialises the merged dataset behind a segment
// manifest by streaming MergeSegments into an in-memory TBv1 image and
// decoding it — one merge semantic for the compactor and the read path.
func readManifestDataset(m *Manifest, dir string) (*Dataset, error) {
	var buf bytes.Buffer
	if err := MergeSegments(&buf, m, dir); err != nil {
		return nil, err
	}
	return ReadBinary(&buf)
}
