// Package smart models the two S.M.A.R.T. hard-disk attributes the paper
// exploits to study machine availability beyond what 15-minute sampling can
// see: the power-cycle count (attribute 12) and the power-on hours count
// (attribute 9).
//
// Both counters cover the whole life of the disk, not just the monitoring
// window, which is what lets the paper estimate the lifetime average uptime
// per power cycle (6.46 h) and detect short sessions that escape sampling.
package smart

import (
	"fmt"
	"time"
)

// Disk models one hard disk with SMART counters.
//
// PowerOnHours is tracked internally with sub-hour resolution but reported
// truncated to whole hours, matching real SMART attribute 9 semantics.
type Disk struct {
	Serial string
	SizeGB float64

	powered   bool
	poweredAt time.Time

	cycles  int64         // attribute 12: lifetime count of power-on events
	powerOn time.Duration // attribute 9: lifetime powered-on duration
}

// NewDisk creates a powered-off disk with the given identity.
func NewDisk(serial string, sizeGB float64) *Disk {
	return &Disk{Serial: serial, SizeGB: sizeGB}
}

// SeedLife initialises the pre-experiment life of the disk: cycles power
// cycles totalling powerOn hours of operation. The paper's machines were
// less than 3 years old and averaged 6.46 h of uptime per lifetime cycle.
func (d *Disk) SeedLife(cycles int64, powerOn time.Duration) {
	if cycles < 0 || powerOn < 0 {
		panic("smart: negative seed life")
	}
	d.cycles = cycles
	d.powerOn = powerOn
}

// PowerOn records a power-on event at time t, incrementing the cycle count.
// Powering on an already-powered disk panics: it indicates a machine-model
// bug that would corrupt the counters.
func (d *Disk) PowerOn(t time.Time) {
	if d.powered {
		panic(fmt.Sprintf("smart: disk %s powered on twice", d.Serial))
	}
	d.powered = true
	d.poweredAt = t
	d.cycles++
}

// PowerOff records a power-off event at time t, folding the elapsed
// powered-on time into the power-on-hours counter.
func (d *Disk) PowerOff(t time.Time) {
	if !d.powered {
		panic(fmt.Sprintf("smart: disk %s powered off while off", d.Serial))
	}
	d.powerOn += t.Sub(d.poweredAt)
	d.powered = false
}

// Powered reports whether the disk is currently spinning.
func (d *Disk) Powered() bool { return d.powered }

// PowerCycleCount returns SMART attribute 12 as of time t.
func (d *Disk) PowerCycleCount(t time.Time) int64 { return d.cycles }

// PowerOnHours returns SMART attribute 9 as of time t, truncated to whole
// hours like the real attribute.
func (d *Disk) PowerOnHours(t time.Time) int64 {
	return int64(d.powerOnDuration(t) / time.Hour)
}

// powerOnDuration returns the precise lifetime powered-on duration at t.
func (d *Disk) powerOnDuration(t time.Time) time.Duration {
	total := d.powerOn
	if d.powered && t.After(d.poweredAt) {
		total += t.Sub(d.poweredAt)
	}
	return total
}

// UptimePerCycle returns the lifetime average powered-on duration per power
// cycle at time t, the paper's §5.2.2 "uptime per power cycle" estimator.
func (d *Disk) UptimePerCycle(t time.Time) time.Duration {
	if d.cycles == 0 {
		return 0
	}
	return d.powerOnDuration(t) / time.Duration(d.cycles)
}
