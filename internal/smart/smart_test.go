package smart

import (
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC)

func TestNewDiskStartsOff(t *testing.T) {
	d := NewDisk("X1", 74.5)
	if d.Powered() {
		t.Error("new disk is powered")
	}
	if d.PowerCycleCount(t0) != 0 || d.PowerOnHours(t0) != 0 {
		t.Error("new disk has non-zero counters")
	}
}

func TestPowerCycleCounting(t *testing.T) {
	d := NewDisk("X1", 74.5)
	at := t0
	for i := 1; i <= 5; i++ {
		d.PowerOn(at)
		if got := d.PowerCycleCount(at); got != int64(i) {
			t.Fatalf("after %d power-ons: cycles = %d", i, got)
		}
		at = at.Add(2 * time.Hour)
		d.PowerOff(at)
		at = at.Add(30 * time.Minute)
	}
	if got := d.PowerOnHours(at); got != 10 {
		t.Errorf("PowerOnHours = %d, want 10", got)
	}
}

func TestPowerOnHoursTruncation(t *testing.T) {
	d := NewDisk("X1", 74.5)
	d.PowerOn(t0)
	if got := d.PowerOnHours(t0.Add(59 * time.Minute)); got != 0 {
		t.Errorf("59 min reported as %d hours", got)
	}
	if got := d.PowerOnHours(t0.Add(61 * time.Minute)); got != 1 {
		t.Errorf("61 min reported as %d hours", got)
	}
}

func TestHoursWhilePowered(t *testing.T) {
	d := NewDisk("X1", 74.5)
	d.PowerOn(t0)
	if got := d.PowerOnHours(t0.Add(5 * time.Hour)); got != 5 {
		t.Errorf("live hours = %d, want 5", got)
	}
	d.PowerOff(t0.Add(6 * time.Hour))
	// After power-off the counter freezes.
	if got := d.PowerOnHours(t0.Add(100 * time.Hour)); got != 6 {
		t.Errorf("frozen hours = %d, want 6", got)
	}
}

func TestSeedLife(t *testing.T) {
	d := NewDisk("X1", 74.5)
	d.SeedLife(700, 700*6*time.Hour)
	if d.PowerCycleCount(t0) != 700 {
		t.Errorf("seeded cycles = %d", d.PowerCycleCount(t0))
	}
	if d.PowerOnHours(t0) != 4200 {
		t.Errorf("seeded hours = %d", d.PowerOnHours(t0))
	}
	if got := d.UptimePerCycle(t0); got != 6*time.Hour {
		t.Errorf("UptimePerCycle = %v, want 6h", got)
	}
}

func TestUptimePerCycleBlendsLife(t *testing.T) {
	d := NewDisk("X1", 74.5)
	d.SeedLife(9, 9*4*time.Hour) // 4 h/cycle history
	d.PowerOn(t0)
	d.PowerOff(t0.Add(24 * time.Hour)) // one long 24 h cycle
	want := (9*4 + 24) * time.Hour / 10
	if got := d.UptimePerCycle(t0.Add(24 * time.Hour)); got != want {
		t.Errorf("UptimePerCycle = %v, want %v", got, want)
	}
}

func TestUptimePerCycleZeroCycles(t *testing.T) {
	d := NewDisk("X1", 74.5)
	if d.UptimePerCycle(t0) != 0 {
		t.Error("UptimePerCycle with zero cycles should be 0")
	}
}

func TestDoublePowerOnPanics(t *testing.T) {
	d := NewDisk("X1", 74.5)
	d.PowerOn(t0)
	defer func() {
		if recover() == nil {
			t.Error("double PowerOn did not panic")
		}
	}()
	d.PowerOn(t0.Add(time.Hour))
}

func TestPowerOffWhileOffPanics(t *testing.T) {
	d := NewDisk("X1", 74.5)
	defer func() {
		if recover() == nil {
			t.Error("PowerOff while off did not panic")
		}
	}()
	d.PowerOff(t0)
}

func TestNegativeSeedPanics(t *testing.T) {
	d := NewDisk("X1", 74.5)
	defer func() {
		if recover() == nil {
			t.Error("negative seed did not panic")
		}
	}()
	d.SeedLife(-1, time.Hour)
}

// Property: counters are monotone non-decreasing under any sequence of
// power sessions.
func TestCountersMonotone(t *testing.T) {
	f := func(durations []uint8) bool {
		d := NewDisk("P", 10)
		at := t0
		lastCycles, lastHours := int64(0), int64(0)
		for _, dur := range durations {
			d.PowerOn(at)
			at = at.Add(time.Duration(dur) * time.Minute)
			d.PowerOff(at)
			at = at.Add(5 * time.Minute)
			c, h := d.PowerCycleCount(at), d.PowerOnHours(at)
			if c < lastCycles || h < lastHours {
				return false
			}
			lastCycles, lastHours = c, h
		}
		return lastCycles == int64(len(durations))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
