package behavior

import (
	"math"
	"time"

	"winlab/internal/machine"
	"winlab/internal/sim"
)

// ---------------------------------------------------------------------------
// Free-use student arrivals.

// arrivalTick fires every 15 minutes and spawns Poisson-distributed student
// arrivals according to the hour-of-day shape.
func (md *Model) arrivalTick(eng *sim.Engine) {
	t := eng.Now()
	if md.labCals != nil {
		md.arrivalTickLabs(eng, t)
		return
	}
	if !md.cal.IsOpen(t) {
		return
	}
	rate := md.cfg.ArrivalPeakPerHour * md.cfg.HourShape[t.Hour()]
	if t.Weekday() == time.Saturday {
		rate *= md.cfg.SaturdayFactor
	}
	rate *= md.arrivalFactor(t) // ×1 exactly unless an overlay is set
	n := md.arrivals.Poisson(rate / 4) // per 15-minute tick
	for i := 0; i < n; i++ {
		// Arrivals land uniformly inside the tick.
		at := t.Add(time.Duration(md.arrivals.Uniform(0, float64(15*time.Minute))))
		eng.At(at, "student-arrival", md.studentArrival)
	}
}

// studentArrival picks a machine for one arriving student and starts a free
// interactive session on it. Students prefer faster labs and machines that
// are already powered on; failing that they boot one; a machine holding a
// forgotten session gets rebooted.
func (md *Model) studentArrival(eng *sim.Engine) {
	mc := md.pickMachine()
	if mc == nil {
		return // institution full; the student leaves
	}
	quick := md.arrivals.Bool(md.cfg.QuickSessionProb)
	dur := md.drawSessionDuration(quick)
	user := md.nextUser("stu")
	prof := md.drawProfile(mc.spec, false)
	md.claim(eng, mc, func(e *sim.Engine) {
		md.beginSession(e, mc, user, kindFree, prof, dur, quick)
	})
}

// pickMachine chooses a claimable machine, weighting labs by their NBench
// performance index raised to LabPrefGamma — students visibly prefer the
// fast Pentium 4 rooms — and preferring already-powered machines within a
// lab. It returns nil when no machine is claimable.
func (md *Model) pickMachine() *machCtl {
	weights := make([]float64, len(md.fleet.Specs))
	anyFree := false
	for i, s := range md.fleet.Specs {
		if md.alwaysOn[s.Name] {
			continue // server pools host no interactive use (nil map by default)
		}
		if md.freeIn(s.Name) > 0 {
			weights[i] = math.Pow(s.PerfIndex(), md.cfg.LabPrefGamma)
			anyFree = true
		}
	}
	if !anyFree {
		return nil
	}
	spec := md.fleet.Specs[md.arrivals.Pick(weights)]
	ctls := md.byLab[spec.Name]

	var poweredIdle, off, forgotten []*machCtl
	for _, mc := range ctls {
		if !mc.claimable() {
			continue
		}
		switch {
		case mc.kind == kindForgotten:
			forgotten = append(forgotten, mc)
		case mc.m.Powered():
			poweredIdle = append(poweredIdle, mc)
		default:
			off = append(off, mc)
		}
	}
	for _, pool := range [][]*machCtl{poweredIdle, off, forgotten} {
		if len(pool) > 0 {
			return pool[md.arrivals.Intn(len(pool))]
		}
	}
	return nil
}

// freeIn counts claimable machines in a lab.
func (md *Model) freeIn(labName string) int {
	n := 0
	for _, mc := range md.byLab[labName] {
		if mc.claimable() {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Phantom power cycles: very short on/off uses (a quick print job, a
// technician check) that frequently fit entirely between two 15-minute
// samples. They are the reason SMART counts ~30% more power cycles than the
// sampling methodology detects (§5.2.2).

func (md *Model) phantomTick(eng *sim.Engine) {
	t := eng.Now()
	if md.labCals != nil {
		// Per-lab calendars: phantoms happen wherever some classroom
		// is open (server pools are not classroom foot traffic).
		open := false
		for _, s := range md.fleet.Specs {
			if !md.alwaysOn[s.Name] && md.calFor(s.Name).IsOpen(t) {
				open = true
				break
			}
		}
		if !open {
			return
		}
	} else if !md.cal.IsOpen(t) {
		return
	}
	n := md.power.Poisson(md.cfg.PhantomPerOpenHour)
	for i := 0; i < n; i++ {
		at := t.Add(time.Duration(md.power.Uniform(0, float64(time.Hour))))
		eng.At(at, "phantom-cycle", md.phantomCycle)
	}
}

func (md *Model) phantomCycle(eng *sim.Engine) {
	// Pick any powered-off, claimable machine (in a currently open,
	// non-server lab when per-lab calendars are configured).
	t := eng.Now()
	var off []*machCtl
	for _, mc := range md.ctl {
		if !mc.claimable() || mc.m.Powered() {
			continue
		}
		if md.labCals != nil && (md.alwaysOn[mc.m.Lab] || !md.calFor(mc.m.Lab).IsOpen(t)) {
			continue
		}
		off = append(off, mc)
	}
	if len(off) == 0 {
		return
	}
	mc := off[md.power.Intn(len(off))]
	mc.pending = true
	boot := time.Duration(md.power.Uniform(float64(md.cfg.BootDelayLo), float64(md.cfg.BootDelayHi)))
	mc.bootEv = eng.After(boot, "phantom-boot", func(e *sim.Engine) {
		md.powerOn(e, mc)
		md.PhantomCycles++
		use := time.Duration(md.power.Uniform(float64(2*time.Minute), float64(9*time.Minute)))
		mc.bootEv = e.After(use, "phantom-off", func(e2 *sim.Engine) {
			mc.bootEv = nil
			mc.pending = false
			md.powerOff(e2, mc)
		})
	})
}

// ---------------------------------------------------------------------------
// Classes.

// classStart claims machines for one class occurrence and schedules its end.
func (md *Model) classStart(eng *sim.Engine, c Class) {
	if md.alwaysOn[c.Lab] {
		return // server pools host no classes
	}
	md.classSeq++
	tag := md.classSeq
	att := md.classes.Uniform(md.cfg.ClassAttendanceLo, md.cfg.ClassAttendanceHi)
	att = clampF(att*md.attendanceFactor(eng.Now()), 0, 1) // ×1 exactly without overlay
	ctls := md.byLab[c.Lab]
	order := make([]*machCtl, len(ctls))
	copy(order, ctls)
	md.classes.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	for _, mc := range order {
		if !md.classes.Bool(att) {
			continue
		}
		if mc.pending || !mc.usable() {
			continue
		}
		switch mc.kind {
		case kindFree:
			// A non-class user is sitting there; most give the seat up.
			if md.classes.Bool(0.7) {
				md.endSession(eng, mc, endOpts{offProb: 0, forgetAllowed: false})
			} else {
				continue // the student stays put; the machine is occupied anyway
			}
		case kindClass:
			// Back-to-back classes: the previous class's session ends now.
			md.endSession(eng, mc, endOpts{offProb: 0, forgetAllowed: false})
		}
		// Some students reboot "their" machine at the start of class.
		if mc.m.Powered() && mc.kind == kindNone && md.classes.Bool(md.cfg.ClassRebootProb) {
			md.powerOff(eng, mc)
		}
		user := md.nextUser("cls")
		prof := md.drawProfile(mc.spec, c.CPUHog)
		mcc := mc
		md.claim(eng, mcc, func(e *sim.Engine) {
			md.beginSession(e, mcc, user, kindClass, prof, 0, false)
			mcc.classTag = tag
		})
	}

	endAt := eng.Now().Add(c.Duration)
	if !endAt.Before(md.end) {
		endAt = md.end.Add(-time.Second)
	}
	if endAt.After(eng.Now()) {
		eng.At(endAt, "class-end", func(e *sim.Engine) { md.classEnd(e, c.Lab, tag) })
	}
}

// classEnd releases the machines of one class occurrence: sessions end with
// a small stagger; some students keep working, some machines get shut down.
func (md *Model) classEnd(eng *sim.Engine, labName string, tag int64) {
	for _, mc := range md.byLab[labName] {
		if mc.kind != kindClass || mc.classTag != tag {
			continue
		}
		mcc := mc
		stagger := time.Duration(md.classes.Uniform(0, float64(10*time.Minute)))
		eng.After(stagger, "class-leave", func(e *sim.Engine) {
			if mcc.kind != kindClass || mcc.classTag != tag {
				return // claimed by a back-to-back class meanwhile
			}
			if md.classes.Bool(md.cfg.ClassStayProb) {
				// The student keeps working: the class session continues as a
				// free session with a fresh duration.
				mcc.kind = kindFree
				mcc.prof.hog = false
				mcc.m.ClearActivity(e.Now(), machine.ActClass)
				dur := md.drawSessionDuration(false)
				mcc.endEv = e.After(dur, "session-end", func(e2 *sim.Engine) {
					mcc.endEv = nil
					md.endSession(e2, mcc, endOpts{
						offProb:       md.cfg.OffAfterUseProb,
						forgetAllowed: true,
					})
				})
				return
			}
			md.endSession(e, mcc, endOpts{
				offProb:       md.cfg.OffAfterClassProb,
				forgetAllowed: true,
			})
		})
	}
}

// ---------------------------------------------------------------------------
// Closing sweep.

// closingSweep fires at each open→closed transition: remaining users leave
// and machines are (mostly) shut down. Machines holding forgotten sessions
// have nobody at the keyboard and usually stay on — which is exactly what
// produces the paper's population of ≥10-hour login samples.
func (md *Model) closingSweep(eng *sim.Engine) {
	for _, mc := range md.ctl {
		md.sweepOne(eng, mc)
	}
}

// closingSweepLab sweeps one lab at its own closing time (per-lab
// calendar scenarios; see installScenario).
func (md *Model) closingSweepLab(eng *sim.Engine, lb string) {
	for _, mc := range md.byLab[lb] {
		md.sweepOne(eng, mc)
	}
}

func (md *Model) sweepOne(eng *sim.Engine, mc *machCtl) {
	if mc.pending || !mc.usable() {
		return
	}
	mcc := mc
	stagger := time.Duration(md.power.Uniform(0, float64(12*time.Minute)))
	eng.After(stagger, "close-leave", func(e *sim.Engine) {
		if mcc.pending || !mcc.usable() {
			return
		}
		pf := md.powerFactor(e.Now()) // ×1 exactly unless an overlay is set
		switch mcc.kind {
		case kindFree, kindClass:
			md.endSession(e, mcc, endOpts{
				offProb:       md.cfg.OffAtCloseActive,
				forgetAllowed: true,
			})
		case kindForgotten:
			if md.power.Bool(clampF(md.cfg.OffAtCloseForgotten*mcc.offBias*pf, 0, 1)) {
				md.powerOff(e, mcc)
			}
		default:
			if mcc.m.Powered() && md.power.Bool(clampF(md.cfg.OffAtCloseIdle*mcc.offBias*pf, 0, 1)) {
				md.powerOff(e, mcc)
			}
		}
	})
}
