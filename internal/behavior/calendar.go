package behavior

import (
	"sort"
	"time"

	"winlab/internal/rng"
)

// Calendar answers "are the classrooms open at time t?" following the
// paper's §4.2: open 20 hours per day on weekdays (closed 4 am – 8 am),
// open Saturdays until 9 pm, closed from Saturday 9 pm to Monday 8 am.
type Calendar struct {
	OpenHour     int
	NightClose   int
	SatCloseHour int
}

// IsOpen reports whether the classrooms are open at t.
func (c Calendar) IsOpen(t time.Time) bool {
	h := t.Hour()
	switch t.Weekday() {
	case time.Sunday:
		return false
	case time.Monday:
		// Weekend closure runs until Monday 8 am.
		return h >= c.OpenHour
	case time.Saturday:
		// Friday-night carry-over until 4 am, then open 8 am – 9 pm.
		if h < c.NightClose {
			return true
		}
		return h >= c.OpenHour && h < c.SatCloseHour
	default: // Tuesday–Friday
		return h < c.NightClose || h >= c.OpenHour
	}
}

// NextClose returns the next instant at or after t when the labs close
// (4 am on weekday nights, 9 pm on Saturday). If the labs are closed at t,
// it returns t.
func (c Calendar) NextClose(t time.Time) time.Time {
	if !c.IsOpen(t) {
		return t
	}
	u := t.Truncate(time.Hour)
	for ; ; u = u.Add(time.Hour) {
		if !c.IsOpen(u) && u.After(t) {
			return u
		}
	}
}

// Class is one scheduled class occurrence pattern: a lab, a weekday, a
// start hour and a duration, repeating every week of the experiment.
type Class struct {
	Lab       string
	Day       time.Weekday
	StartHour int
	Duration  time.Duration
	CPUHog    bool // the Tuesday-afternoon CPU-intensive class (§5.3)
}

// Timetable is the weekly class schedule for all labs.
type Timetable struct {
	Classes []Class
}

// GenerateTimetable draws a weekly timetable. Weekday class starts come
// from the 2-hour teaching grid (8, 10, 14, 16, 18 with an occasional 12
// o'clock slot); Saturdays use a reduced grid. The configured CPU-hog class
// is always present.
func GenerateTimetable(cfg Config, labs []string, src *rng.Source) Timetable {
	weekdayStarts := []int{8, 10, 12, 14, 16, 18}
	weekdayWeights := []float64{1.2, 1.4, 0.4, 1.4, 1.2, 0.8}
	satStarts := []int{9, 11, 14}

	var tt Timetable
	for _, lb := range labs {
		for d := time.Monday; d <= time.Friday; d++ {
			n := src.Poisson(cfg.WeekdayClassMeanPerLab)
			if n > 4 {
				n = 4
			}
			used := map[int]bool{}
			for i := 0; i < n; i++ {
				start := weekdayStarts[src.Pick(weekdayWeights)]
				if used[start] {
					continue
				}
				used[start] = true
				tt.Classes = append(tt.Classes, Class{
					Lab: lb, Day: d, StartHour: start, Duration: cfg.ClassDuration,
				})
			}
		}
		if n := src.Poisson(cfg.SaturdayClassMeanPerLab); n > 0 {
			if n > 2 {
				n = 2
			}
			used := map[int]bool{}
			for i := 0; i < n; i++ {
				start := satStarts[src.Intn(len(satStarts))]
				if used[start] {
					continue
				}
				used[start] = true
				tt.Classes = append(tt.Classes, Class{
					Lab: lb, Day: time.Saturday, StartHour: start, Duration: cfg.ClassDuration,
				})
			}
		}
	}
	// The CPU-intensive practical class observed by the paper: every
	// CPUHogDay afternoon in the configured labs, displacing any generated
	// class that would overlap it.
	for _, lb := range cfg.CPUHogLabs {
		hog := Class{
			Lab: lb, Day: cfg.CPUHogDay, StartHour: cfg.CPUHogStartHour,
			Duration: cfg.CPUHogDuration, CPUHog: true,
		}
		kept := tt.Classes[:0]
		for _, c := range tt.Classes {
			if c.Lab == lb && c.Day == hog.Day && overlaps(c, hog) {
				continue
			}
			kept = append(kept, c)
		}
		tt.Classes = append(kept, hog)
	}
	sort.Slice(tt.Classes, func(i, j int) bool {
		a, b := tt.Classes[i], tt.Classes[j]
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.StartHour != b.StartHour {
			return a.StartHour < b.StartHour
		}
		return a.Lab < b.Lab
	})
	return tt
}

func overlaps(a, b Class) bool {
	aEnd := a.StartHour + int(a.Duration/time.Hour)
	bEnd := b.StartHour + int(b.Duration/time.Hour)
	return a.StartHour < bEnd && b.StartHour < aEnd
}

// ForLab returns the classes of one lab, in weekly order.
func (t Timetable) ForLab(lb string) []Class {
	var out []Class
	for _, c := range t.Classes {
		if c.Lab == lb {
			out = append(out, c)
		}
	}
	return out
}

// WeeklyLabHours returns the total scheduled class hours per week across
// all labs, a useful calibration diagnostic.
func (t Timetable) WeeklyLabHours() float64 {
	var h float64
	for _, c := range t.Classes {
		h += c.Duration.Hours()
	}
	return h
}
