package behavior

import (
	"sort"
	"time"

	"winlab/internal/rng"
)

// Calendar answers "are the classrooms open at time t?" following the
// paper's §4.2: open 20 hours per day on weekdays (closed 4 am – 8 am),
// open Saturdays until 9 pm, closed from Saturday 9 pm to Monday 8 am.
//
// The hour pattern is interpreted as wall-clock time in Loc (UTC when
// nil), so a lab in a DST-shifting zone opens at 8 am local year-round.
// AlwaysOpen describes a room that never closes (a server pool): IsOpen
// is constantly true and NextClose reports ok=false.
type Calendar struct {
	OpenHour     int
	NightClose   int
	SatCloseHour int
	Loc          *time.Location // wall-clock zone; nil = UTC
	AlwaysOpen   bool           // never closes (server pools)
}

func (c Calendar) loc() *time.Location {
	if c.Loc != nil {
		return c.Loc
	}
	return time.UTC
}

// IsOpen reports whether the classrooms are open at t.
func (c Calendar) IsOpen(t time.Time) bool {
	if c.AlwaysOpen {
		return true
	}
	lt := t.In(c.loc())
	h := lt.Hour()
	switch lt.Weekday() {
	case time.Sunday:
		return false
	case time.Monday:
		// Weekend closure runs until Monday 8 am.
		return h >= c.OpenHour
	case time.Saturday:
		// Friday-night carry-over until 4 am, then open 8 am – 9 pm.
		if h < c.NightClose {
			return true
		}
		return h >= c.OpenHour && h < c.SatCloseHour
	default: // Tuesday–Friday
		return h < c.NightClose || h >= c.OpenHour
	}
}

// NextClose returns the next instant at or after t when the labs close
// (4 am on weekday nights, 9 pm on Saturday) and ok=true. If the labs
// are closed at t it returns (t, true). A calendar that never closes —
// AlwaysOpen, or any hour pattern with no closed hour — reports
// ok=false instead of scanning forever; the scan is bounded to one week
// of wall-clock hours, which covers every weekly pattern.
func (c Calendar) NextClose(t time.Time) (time.Time, bool) {
	if c.AlwaysOpen {
		return time.Time{}, false
	}
	if !c.IsOpen(t) {
		return t, true
	}
	u := wallHour(t.In(c.loc()))
	for i := 0; i < 8*24; i++ {
		if !c.IsOpen(u) && u.After(t) {
			return u, true
		}
		u = nextWallHour(u)
	}
	return time.Time{}, false
}

// wallHour truncates t to the start of its wall-clock hour in t's own
// location. (Truncate aligns to UTC hours, which is wrong in a zone
// whose offset is not a whole number of hours or shifts with DST.)
func wallHour(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), t.Day(), t.Hour(), 0, 0, 0, t.Location())
}

// nextWallHour steps to the next wall-clock hour boundary, normalising
// across DST transitions: spring-forward skips the missing hour (2 am →
// 3 am), and the guard keeps the scan monotonic through fall-back's
// repeated hour so it can never stall.
func nextWallHour(t time.Time) time.Time {
	u := time.Date(t.Year(), t.Month(), t.Day(), t.Hour()+1, 0, 0, 0, t.Location())
	if !u.After(t) {
		u = t.Add(time.Hour)
	}
	return u
}

// Class is one scheduled class occurrence pattern: a lab, a weekday, a
// start hour and a duration, repeating every week of the experiment.
type Class struct {
	Lab       string
	Day       time.Weekday
	StartHour int
	Duration  time.Duration
	CPUHog    bool // the Tuesday-afternoon CPU-intensive class (§5.3)
}

// Timetable is the weekly class schedule for all labs.
type Timetable struct {
	Classes []Class
}

// GenerateTimetable draws a weekly timetable. Weekday class starts come
// from the 2-hour teaching grid (8, 10, 14, 16, 18 with an occasional 12
// o'clock slot); Saturdays use a reduced grid. The configured CPU-hog class
// is always present.
func GenerateTimetable(cfg Config, labs []string, src *rng.Source) Timetable {
	weekdayStarts := []int{8, 10, 12, 14, 16, 18}
	weekdayWeights := []float64{1.2, 1.4, 0.4, 1.4, 1.2, 0.8}
	satStarts := []int{9, 11, 14}

	var tt Timetable
	for _, lb := range labs {
		for d := time.Monday; d <= time.Friday; d++ {
			n := src.Poisson(cfg.WeekdayClassMeanPerLab)
			if n > 4 {
				n = 4
			}
			used := map[int]bool{}
			for i := 0; i < n; i++ {
				start := weekdayStarts[src.Pick(weekdayWeights)]
				if used[start] {
					continue
				}
				used[start] = true
				tt.Classes = append(tt.Classes, Class{
					Lab: lb, Day: d, StartHour: start, Duration: cfg.ClassDuration,
				})
			}
		}
		if n := src.Poisson(cfg.SaturdayClassMeanPerLab); n > 0 {
			if n > 2 {
				n = 2
			}
			used := map[int]bool{}
			for i := 0; i < n; i++ {
				start := satStarts[src.Intn(len(satStarts))]
				if used[start] {
					continue
				}
				used[start] = true
				tt.Classes = append(tt.Classes, Class{
					Lab: lb, Day: time.Saturday, StartHour: start, Duration: cfg.ClassDuration,
				})
			}
		}
	}
	// The CPU-intensive practical class observed by the paper: every
	// CPUHogDay afternoon in the configured labs, displacing any generated
	// class that would overlap it.
	for _, lb := range cfg.CPUHogLabs {
		hog := Class{
			Lab: lb, Day: cfg.CPUHogDay, StartHour: cfg.CPUHogStartHour,
			Duration: cfg.CPUHogDuration, CPUHog: true,
		}
		kept := tt.Classes[:0]
		for _, c := range tt.Classes {
			if c.Lab == lb && c.Day == hog.Day && overlaps(c, hog) {
				continue
			}
			kept = append(kept, c)
		}
		tt.Classes = append(kept, hog)
	}
	sort.Slice(tt.Classes, func(i, j int) bool {
		a, b := tt.Classes[i], tt.Classes[j]
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.StartHour != b.StartHour {
			return a.StartHour < b.StartHour
		}
		return a.Lab < b.Lab
	})
	return tt
}

func overlaps(a, b Class) bool {
	aEnd := a.StartHour + int(a.Duration/time.Hour)
	bEnd := b.StartHour + int(b.Duration/time.Hour)
	return a.StartHour < bEnd && b.StartHour < aEnd
}

// ForLab returns the classes of one lab, in weekly order.
func (t Timetable) ForLab(lb string) []Class {
	var out []Class
	for _, c := range t.Classes {
		if c.Lab == lb {
			out = append(out, c)
		}
	}
	return out
}

// WeeklyLabHours returns the total scheduled class hours per week across
// all labs, a useful calibration diagnostic.
func (t Timetable) WeeklyLabHours() float64 {
	var h float64
	for _, c := range t.Classes {
		h += c.Duration.Hours()
	}
	return h
}
