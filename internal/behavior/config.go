package behavior

import (
	"fmt"
	"time"
)

// Config holds every tunable parameter of the workload model. The defaults
// are calibrated so the emergent 77-day trace reproduces the paper's
// headline aggregates (Table 2, Figures 2–6); nothing downstream is
// hard-coded to those numbers.
type Config struct {
	Seed int64

	// Calendar.
	OpenHour     int // labs open (weekdays and Saturday)
	NightClose   int // labs close at this hour (next day) on weekdays
	SatCloseHour int // Saturday closing hour (21 = 9 pm)

	// Class timetable generation.
	WeekdayClassMeanPerLab  float64 // mean classes per lab per weekday
	SaturdayClassMeanPerLab float64
	ClassDuration           time.Duration
	ClassAttendanceLo       float64 // per-class fraction of lab machines used
	ClassAttendanceHi       float64
	ClassRebootProb         float64      // student reboots the machine at class start
	ClassStayProb           float64      // student keeps working after class
	CPUHogLabs              []string     // labs hosting the CPU-heavy class
	CPUHogDay               time.Weekday // the paper observed it on Tuesdays
	CPUHogStartHour         int
	CPUHogDuration          time.Duration
	CPUHogLoadMean          float64 // ≈0.5: "consumed an average of 50% of CPU"

	// Free (non-class) interactive use.
	ArrivalPeakPerHour float64     // fleet-wide arrival rate at shape peak
	HourShape          [24]float64 // arrival-rate multiplier by hour of day
	SaturdayFactor     float64
	QuickSessionProb   float64 // very short visits (print job, mail check)
	QuickSessionLo     time.Duration
	QuickSessionHi     time.Duration
	SessionMean        time.Duration // log-normal session length
	SessionSD          time.Duration
	SessionMin         time.Duration
	SessionMax         time.Duration
	LabPrefGamma       float64 // lab choice ∝ perfIndex^gamma

	// Forgotten logouts (§4.2 of the paper).
	ForgetProb      float64 // session ends by walking away, not logging out
	ForgetMemKeepLo float64 // fraction of app memory left committed
	ForgetMemKeepHi float64

	// Power management.
	//
	// Per-machine heterogeneity: each machine draws a stable "off bias"
	// multiplying all of its shutdown probabilities. The population is a
	// mixture: a LeaveOnFraction of machines have a small bias (nobody
	// bothers shutting them down — the paper's ~30 machines with uptime
	// ratios above 0.5), the rest are reliably shut down around closing
	// time, which parks the bulk of the uptime distribution just below
	// 0.5 as in Figure 4.
	LeaveOnFraction     float64
	LeaveOnBiasLo       float64
	LeaveOnBiasHi       float64
	CyclerBiasLo        float64
	CyclerBiasHi        float64
	OffAfterUseProb     float64 // shut down after a free session
	OffAfterQuickProb   float64 // quick visitors usually power off again
	OffAfterClassProb   float64 // shut down when class ends
	OffAtCloseActive    float64 // shut down at closing time, user present
	OffAtCloseIdle      float64 // idle powered machines swept at close
	OffAtCloseForgotten float64 // machines with a forgotten session
	BootDelayLo         time.Duration
	BootDelayHi         time.Duration
	CrashRatePerHour    float64 // session crash → reboot
	PhantomPerOpenHour  float64 // fleet-wide rate of sub-10-minute power cycles

	// Resource model.
	OSMemMBByRAM                       map[int][2]float64 // RAM MB → (mean, sd) of OS commit
	OSSwapFrac                         float64            // OS swap commit as fraction of OS mem
	AppMemMBByRAM                      map[int][2]float64 // per-session application commit
	AppSwapFrac                        float64
	InteractiveCPUMean                 float64 // mean busy fraction of an interactive user
	InteractiveCPUMax                  float64
	RecvBpsMean                        float64 // interactive receive rate (client role)
	RecvBpsSD                          float64
	SentOverRecv                       float64 // sent ≈ this fraction of received
	BackgroundCPULo, BackgroundCPUHi   float64
	BackgroundSentLo, BackgroundSentHi float64       // bps
	BackgroundRecvLo, BackgroundRecvHi float64       // bps
	RedrawLo, RedrawHi                 time.Duration // interactive intensity redraw interval
	TempGrowLoGB, TempGrowHiGB         float64       // initial session temp files
	TempCapGB                          float64       // the 100–300 MB local quota
	DiskJitterGB                       float64       // stable per-machine image jitter
}

// DefaultConfig returns the calibrated parameter set.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed: seed,

		OpenHour:     8,
		NightClose:   4,
		SatCloseHour: 21,

		WeekdayClassMeanPerLab:  2.3,
		SaturdayClassMeanPerLab: 0.5,
		ClassDuration:           2 * time.Hour,
		ClassAttendanceLo:       0.55,
		ClassAttendanceHi:       0.95,
		ClassRebootProb:         0.10,
		ClassStayProb:           0.12,
		CPUHogLabs:              []string{"L03", "L06"},
		CPUHogDay:               time.Tuesday,
		CPUHogStartHour:         14,
		CPUHogDuration:          3 * time.Hour,
		CPUHogLoadMean:          0.50,

		ArrivalPeakPerHour: 14.5,
		HourShape: [24]float64{
			0.22, 0.14, 0.09, 0.05, 0, 0, 0, 0, // 0–7 (closed 4–8)
			0.50, 0.80, 1.00, 1.00, 0.70, 0.80, 1.00, 1.00, // 8–15
			0.90, 0.80, 0.70, 0.60, 0.50, 0.45, 0.40, 0.30, // 16–23
		},
		SaturdayFactor:   0.45,
		QuickSessionProb: 0.16,
		QuickSessionLo:   3 * time.Minute,
		QuickSessionHi:   12 * time.Minute,
		SessionMean:      95 * time.Minute,
		SessionSD:        115 * time.Minute,
		SessionMin:       10 * time.Minute,
		SessionMax:       10 * time.Hour,
		LabPrefGamma:     1.6,

		ForgetProb:      0.088,
		ForgetMemKeepLo: 0.3,
		ForgetMemKeepHi: 0.9,

		LeaveOnFraction:     0.20,
		LeaveOnBiasLo:       0.12,
		LeaveOnBiasHi:       0.50,
		CyclerBiasLo:        0.85,
		CyclerBiasHi:        1.40,
		OffAfterUseProb:     0.20,
		OffAfterQuickProb:   0.80,
		OffAfterClassProb:   0.18,
		OffAtCloseActive:    0.85,
		OffAtCloseIdle:      0.90,
		OffAtCloseForgotten: 0.10,
		BootDelayLo:         time.Minute,
		BootDelayHi:         150 * time.Second,
		CrashRatePerHour:    0.02,
		PhantomPerOpenHour:  3.4,

		OSMemMBByRAM: map[int][2]float64{
			512: {212, 25},
			256: {140, 18},
			128: {86, 9},
		},
		OSSwapFrac: 0.70,
		AppMemMBByRAM: map[int][2]float64{
			512: {88, 38},
			256: {52, 22},
			128: {28, 11},
		},
		AppSwapFrac:        0.62,
		InteractiveCPUMean: 0.060,
		InteractiveCPUMax:  0.85,
		RecvBpsMean:        11500,
		RecvBpsSD:          20000,
		SentOverRecv:       0.30,
		BackgroundCPULo:    0.001,
		BackgroundCPUHi:    0.005,
		BackgroundSentLo:   100,
		BackgroundSentHi:   330,
		BackgroundRecvLo:   120,
		BackgroundRecvHi:   420,
		RedrawLo:           5 * time.Minute,
		RedrawHi:           15 * time.Minute,
		TempGrowLoGB:       0.02,
		TempGrowHiGB:       0.15,
		TempCapGB:          0.30,
		DiskJitterGB:       0.8,
	}
}

// Validate checks the configuration for values that would make the model
// misbehave silently (probabilities outside [0,1], inverted ranges,
// missing resource classes for the fleet is checked at run time).
func (c *Config) Validate() error {
	probs := map[string]float64{
		"ClassRebootProb":     c.ClassRebootProb,
		"ClassStayProb":       c.ClassStayProb,
		"QuickSessionProb":    c.QuickSessionProb,
		"ForgetProb":          c.ForgetProb,
		"LeaveOnFraction":     c.LeaveOnFraction,
		"OffAfterUseProb":     c.OffAfterUseProb,
		"OffAfterQuickProb":   c.OffAfterQuickProb,
		"OffAfterClassProb":   c.OffAfterClassProb,
		"OffAtCloseActive":    c.OffAtCloseActive,
		"OffAtCloseIdle":      c.OffAtCloseIdle,
		"OffAtCloseForgotten": c.OffAtCloseForgotten,
	}
	for name, p := range probs {
		if p < 0 || p > 1 {
			return fmt.Errorf("behavior: %s = %v outside [0,1]", name, p)
		}
	}
	if c.OpenHour < 0 || c.OpenHour > 23 || c.NightClose < 0 || c.NightClose > 23 ||
		c.SatCloseHour < 0 || c.SatCloseHour > 23 {
		return fmt.Errorf("behavior: calendar hours outside 0..23")
	}
	// These two rejections keep the weekly pattern well-formed: with
	// NightClose ≥ OpenHour a "day" never closes overnight, and with
	// SatCloseHour ≤ OpenHour Saturday closes before it opens. (A room
	// that genuinely never closes is Calendar.AlwaysOpen, not an hour
	// pattern.)
	if c.NightClose >= c.OpenHour {
		return fmt.Errorf("behavior: NightClose (%d) must precede OpenHour (%d)", c.NightClose, c.OpenHour)
	}
	if c.SatCloseHour <= c.OpenHour {
		return fmt.Errorf("behavior: SatCloseHour (%d) must follow OpenHour (%d)", c.SatCloseHour, c.OpenHour)
	}
	ranges := []struct {
		name   string
		lo, hi float64
	}{
		{"ClassAttendance", c.ClassAttendanceLo, c.ClassAttendanceHi},
		{"QuickSession", float64(c.QuickSessionLo), float64(c.QuickSessionHi)},
		{"Session min/max", float64(c.SessionMin), float64(c.SessionMax)},
		{"LeaveOnBias", c.LeaveOnBiasLo, c.LeaveOnBiasHi},
		{"CyclerBias", c.CyclerBiasLo, c.CyclerBiasHi},
		{"BootDelay", float64(c.BootDelayLo), float64(c.BootDelayHi)},
		{"Redraw", float64(c.RedrawLo), float64(c.RedrawHi)},
	}
	for _, r := range ranges {
		if r.lo > r.hi {
			return fmt.Errorf("behavior: %s range inverted (%v > %v)", r.name, r.lo, r.hi)
		}
		if r.lo < 0 {
			return fmt.Errorf("behavior: %s range negative", r.name)
		}
	}
	for _, rate := range []float64{c.ArrivalPeakPerHour, c.CrashRatePerHour, c.PhantomPerOpenHour,
		c.WeekdayClassMeanPerLab, c.SaturdayClassMeanPerLab} {
		if rate < 0 {
			return fmt.Errorf("behavior: negative rate %v", rate)
		}
	}
	if c.SessionMean <= 0 || c.ClassDuration <= 0 {
		return fmt.Errorf("behavior: non-positive durations")
	}
	if c.InteractiveCPUMean < 0 || c.InteractiveCPUMax > 1 || c.InteractiveCPUMean > c.InteractiveCPUMax {
		return fmt.Errorf("behavior: interactive CPU bounds invalid")
	}
	return nil
}
