package behavior

import (
	"testing"
	"time"

	"winlab/internal/rng"
)

var monday = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC) // a Monday

func defaultCal() Calendar {
	cfg := DefaultConfig(1)
	return Calendar{OpenHour: cfg.OpenHour, NightClose: cfg.NightClose, SatCloseHour: cfg.SatCloseHour}
}

func TestCalendarWeekPattern(t *testing.T) {
	cal := defaultCal()
	cases := []struct {
		day  int // offset from Monday
		hour int
		open bool
	}{
		{0, 0, false},  // Monday 00:00 — weekend closure runs to 8 am
		{0, 7, false},  // Monday 07:00
		{0, 8, true},   // Monday 08:00 opens
		{0, 23, true},  // Monday 23:00
		{1, 2, true},   // Tuesday 02:00 (open until 4 am)
		{1, 4, false},  // Tuesday 04:00 closes
		{1, 7, false},  // Tuesday 07:59
		{1, 8, true},   // Tuesday 08:00
		{5, 2, true},   // Saturday 02:00 (Friday-night carry-over)
		{5, 5, false},  // Saturday 05:00
		{5, 10, true},  // Saturday 10:00
		{5, 20, true},  // Saturday 20:00
		{5, 21, false}, // Saturday 21:00 — weekend closure begins
		{6, 12, false}, // Sunday noon
		{7, 8, true},   // next Monday 08:00
	}
	for _, c := range cases {
		at := monday.AddDate(0, 0, c.day).Add(time.Duration(c.hour) * time.Hour)
		if got := cal.IsOpen(at); got != c.open {
			t.Errorf("IsOpen(%s %02d:00) = %v, want %v", at.Weekday(), c.hour, got, c.open)
		}
	}
}

func TestCalendarOpenHoursPerWeek(t *testing.T) {
	cal := defaultCal()
	open := 0
	for h := 0; h < 7*24; h++ {
		if cal.IsOpen(monday.Add(time.Duration(h) * time.Hour)) {
			open++
		}
	}
	// Mon 8–24 (16) + Tue–Fri 0–4,8–24 (4×20) + Sat 0–4,8–21 (17) = 113.
	if open != 113 {
		t.Errorf("open hours per week = %d, want 113", open)
	}
}

func TestNextClose(t *testing.T) {
	cal := defaultCal()
	at := monday.Add(10 * time.Hour) // Monday 10:00
	got, ok := cal.NextClose(at)
	want := monday.AddDate(0, 0, 1).Add(4 * time.Hour) // Tuesday 04:00
	if !ok || !got.Equal(want) {
		t.Errorf("NextClose = %v, %v, want %v, true", got, ok, want)
	}
	// Closed time returns itself.
	closed := monday.Add(5 * time.Hour)
	if got, ok := cal.NextClose(closed); !ok || !got.Equal(closed) {
		t.Error("NextClose while closed should return t, true")
	}
	// Saturday afternoon closes at 21:00.
	sat := monday.AddDate(0, 0, 5).Add(15 * time.Hour)
	if got, ok := cal.NextClose(sat); !ok || got.Hour() != 21 {
		t.Errorf("Saturday NextClose = %v, %v", got, ok)
	}
}

// A calendar that never closes must report ok=false instead of looping
// forever (the pre-fix NextClose hung on exactly this input).
func TestNextCloseNeverCloses(t *testing.T) {
	cal := Calendar{AlwaysOpen: true}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := cal.NextClose(monday.Add(10 * time.Hour)); ok {
			t.Error("AlwaysOpen NextClose reported a close instant")
		}
		if !cal.IsOpen(monday) || !cal.IsOpen(monday.AddDate(0, 0, 6)) {
			t.Error("AlwaysOpen calendar reported closed")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("NextClose did not terminate on a never-closing calendar")
	}
}

// The hour pattern must be wall-clock correct in the calendar's own
// location across DST transitions: the same UTC instant maps to
// different local hours before and after a shift, and the close scan
// must follow local 4 am, not UTC-aligned hour boundaries.
func TestCalendarDST(t *testing.T) {
	loc, err := time.LoadLocation("America/New_York")
	if err != nil {
		t.Skipf("zoneinfo unavailable: %v", err)
	}
	cfg := DefaultConfig(1)
	cal := Calendar{OpenHour: cfg.OpenHour, NightClose: cfg.NightClose, SatCloseHour: cfg.SatCloseHour, Loc: loc}

	// 2025: spring forward Sunday March 9, fall back Sunday November 2.
	// Monday March 10 is EDT (UTC-4); Monday November 3 is EST (UTC-5).
	cases := []struct {
		utc  time.Time
		open bool
		why  string
	}{
		{time.Date(2025, 3, 10, 11, 30, 0, 0, time.UTC), false, "Mon Mar 10 07:30 EDT — before open"},
		{time.Date(2025, 3, 10, 12, 30, 0, 0, time.UTC), true, "Mon Mar 10 08:30 EDT — open"},
		{time.Date(2025, 11, 3, 12, 30, 0, 0, time.UTC), false, "Mon Nov 3 07:30 EST — before open"},
		{time.Date(2025, 11, 3, 13, 30, 0, 0, time.UTC), true, "Mon Nov 3 08:30 EST — open"},
	}
	for _, c := range cases {
		if got := cal.IsOpen(c.utc); got != c.open {
			t.Errorf("IsOpen(%s) = %v, want %v (%s)", c.utc, got, c.open, c.why)
		}
	}

	// Night close lands at local 4 am on both sides of the shift: the
	// Monday-evening session closes Tuesday 04:00 EDT (08:00 UTC) in
	// March and Tuesday 04:00 EST (09:00 UTC) in November.
	for _, c := range []struct {
		from, want time.Time
	}{
		{time.Date(2025, 3, 10, 10, 0, 0, 0, loc), time.Date(2025, 3, 11, 4, 0, 0, 0, loc)},
		{time.Date(2025, 11, 3, 10, 0, 0, 0, loc), time.Date(2025, 11, 4, 4, 0, 0, 0, loc)},
	} {
		got, ok := cal.NextClose(c.from)
		if !ok || !got.Equal(c.want) {
			t.Errorf("NextClose(%s) = %v, %v, want %v", c.from, got, ok, c.want)
		}
		if got.In(loc).Hour() != 4 {
			t.Errorf("NextClose(%s) local hour = %d, want 4", c.from, got.In(loc).Hour())
		}
	}
	marClose, _ := cal.NextClose(time.Date(2025, 3, 10, 10, 0, 0, 0, loc))
	novClose, _ := cal.NextClose(time.Date(2025, 11, 3, 10, 0, 0, 0, loc))
	if marClose.UTC().Hour() == novClose.UTC().Hour() {
		t.Error("EDT and EST closes map to the same UTC hour — calendar is not wall-clock correct")
	}
}

func TestGenerateTimetable(t *testing.T) {
	cfg := DefaultConfig(1)
	labs := []string{"L01", "L02", "L03", "L06"}
	tt := GenerateTimetable(cfg, labs, rng.Derive(1, "tt"))

	if len(tt.Classes) == 0 {
		t.Fatal("empty timetable")
	}
	hogs := 0
	for _, c := range tt.Classes {
		if c.Day == time.Sunday {
			t.Errorf("class on Sunday: %+v", c)
		}
		if c.StartHour < 8 || c.StartHour > 18 {
			t.Errorf("class outside teaching grid: %+v", c)
		}
		if c.CPUHog {
			hogs++
			if c.Day != cfg.CPUHogDay || c.StartHour != cfg.CPUHogStartHour {
				t.Errorf("CPU-hog class at wrong slot: %+v", c)
			}
		}
	}
	if hogs != 2 { // L03 and L06
		t.Errorf("CPU-hog classes = %d, want 2", hogs)
	}
	// No overlapping classes within a lab on the same day.
	for _, lb := range labs {
		classes := tt.ForLab(lb)
		for i := range classes {
			for j := i + 1; j < len(classes); j++ {
				a, b := classes[i], classes[j]
				if a.Day == b.Day && overlaps(a, b) {
					t.Errorf("%s: overlapping classes %+v and %+v", lb, a, b)
				}
			}
		}
	}
	if tt.WeeklyLabHours() <= 0 {
		t.Error("WeeklyLabHours = 0")
	}
}

func TestGenerateTimetableDeterministic(t *testing.T) {
	cfg := DefaultConfig(1)
	labs := []string{"L01", "L02"}
	a := GenerateTimetable(cfg, labs, rng.Derive(9, "tt"))
	b := GenerateTimetable(cfg, labs, rng.Derive(9, "tt"))
	if len(a.Classes) != len(b.Classes) {
		t.Fatal("timetables differ in size")
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Fatalf("class %d differs: %+v vs %+v", i, a.Classes[i], b.Classes[i])
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := Class{StartHour: 8, Duration: 2 * time.Hour}
	b := Class{StartHour: 10, Duration: 2 * time.Hour}
	if overlaps(a, b) {
		t.Error("back-to-back classes reported overlapping")
	}
	c := Class{StartHour: 9, Duration: 2 * time.Hour}
	if !overlaps(a, c) {
		t.Error("overlapping classes not detected")
	}
}
