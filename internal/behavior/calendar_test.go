package behavior

import (
	"testing"
	"time"

	"winlab/internal/rng"
)

var monday = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC) // a Monday

func defaultCal() Calendar {
	cfg := DefaultConfig(1)
	return Calendar{OpenHour: cfg.OpenHour, NightClose: cfg.NightClose, SatCloseHour: cfg.SatCloseHour}
}

func TestCalendarWeekPattern(t *testing.T) {
	cal := defaultCal()
	cases := []struct {
		day  int // offset from Monday
		hour int
		open bool
	}{
		{0, 0, false},  // Monday 00:00 — weekend closure runs to 8 am
		{0, 7, false},  // Monday 07:00
		{0, 8, true},   // Monday 08:00 opens
		{0, 23, true},  // Monday 23:00
		{1, 2, true},   // Tuesday 02:00 (open until 4 am)
		{1, 4, false},  // Tuesday 04:00 closes
		{1, 7, false},  // Tuesday 07:59
		{1, 8, true},   // Tuesday 08:00
		{5, 2, true},   // Saturday 02:00 (Friday-night carry-over)
		{5, 5, false},  // Saturday 05:00
		{5, 10, true},  // Saturday 10:00
		{5, 20, true},  // Saturday 20:00
		{5, 21, false}, // Saturday 21:00 — weekend closure begins
		{6, 12, false}, // Sunday noon
		{7, 8, true},   // next Monday 08:00
	}
	for _, c := range cases {
		at := monday.AddDate(0, 0, c.day).Add(time.Duration(c.hour) * time.Hour)
		if got := cal.IsOpen(at); got != c.open {
			t.Errorf("IsOpen(%s %02d:00) = %v, want %v", at.Weekday(), c.hour, got, c.open)
		}
	}
}

func TestCalendarOpenHoursPerWeek(t *testing.T) {
	cal := defaultCal()
	open := 0
	for h := 0; h < 7*24; h++ {
		if cal.IsOpen(monday.Add(time.Duration(h) * time.Hour)) {
			open++
		}
	}
	// Mon 8–24 (16) + Tue–Fri 0–4,8–24 (4×20) + Sat 0–4,8–21 (17) = 113.
	if open != 113 {
		t.Errorf("open hours per week = %d, want 113", open)
	}
}

func TestNextClose(t *testing.T) {
	cal := defaultCal()
	at := monday.Add(10 * time.Hour) // Monday 10:00
	got := cal.NextClose(at)
	want := monday.AddDate(0, 0, 1).Add(4 * time.Hour) // Tuesday 04:00
	if !got.Equal(want) {
		t.Errorf("NextClose = %v, want %v", got, want)
	}
	// Closed time returns itself.
	closed := monday.Add(5 * time.Hour)
	if !cal.NextClose(closed).Equal(closed) {
		t.Error("NextClose while closed should return t")
	}
	// Saturday afternoon closes at 21:00.
	sat := monday.AddDate(0, 0, 5).Add(15 * time.Hour)
	if got := cal.NextClose(sat); got.Hour() != 21 {
		t.Errorf("Saturday NextClose = %v", got)
	}
}

func TestGenerateTimetable(t *testing.T) {
	cfg := DefaultConfig(1)
	labs := []string{"L01", "L02", "L03", "L06"}
	tt := GenerateTimetable(cfg, labs, rng.Derive(1, "tt"))

	if len(tt.Classes) == 0 {
		t.Fatal("empty timetable")
	}
	hogs := 0
	for _, c := range tt.Classes {
		if c.Day == time.Sunday {
			t.Errorf("class on Sunday: %+v", c)
		}
		if c.StartHour < 8 || c.StartHour > 18 {
			t.Errorf("class outside teaching grid: %+v", c)
		}
		if c.CPUHog {
			hogs++
			if c.Day != cfg.CPUHogDay || c.StartHour != cfg.CPUHogStartHour {
				t.Errorf("CPU-hog class at wrong slot: %+v", c)
			}
		}
	}
	if hogs != 2 { // L03 and L06
		t.Errorf("CPU-hog classes = %d, want 2", hogs)
	}
	// No overlapping classes within a lab on the same day.
	for _, lb := range labs {
		classes := tt.ForLab(lb)
		for i := range classes {
			for j := i + 1; j < len(classes); j++ {
				a, b := classes[i], classes[j]
				if a.Day == b.Day && overlaps(a, b) {
					t.Errorf("%s: overlapping classes %+v and %+v", lb, a, b)
				}
			}
		}
	}
	if tt.WeeklyLabHours() <= 0 {
		t.Error("WeeklyLabHours = 0")
	}
}

func TestGenerateTimetableDeterministic(t *testing.T) {
	cfg := DefaultConfig(1)
	labs := []string{"L01", "L02"}
	a := GenerateTimetable(cfg, labs, rng.Derive(9, "tt"))
	b := GenerateTimetable(cfg, labs, rng.Derive(9, "tt"))
	if len(a.Classes) != len(b.Classes) {
		t.Fatal("timetables differ in size")
	}
	for i := range a.Classes {
		if a.Classes[i] != b.Classes[i] {
			t.Fatalf("class %d differs: %+v vs %+v", i, a.Classes[i], b.Classes[i])
		}
	}
}

func TestOverlaps(t *testing.T) {
	a := Class{StartHour: 8, Duration: 2 * time.Hour}
	b := Class{StartHour: 10, Duration: 2 * time.Hour}
	if overlaps(a, b) {
		t.Error("back-to-back classes reported overlapping")
	}
	c := Class{StartHour: 9, Duration: 2 * time.Hour}
	if !overlaps(a, c) {
		t.Error("overlapping classes not detected")
	}
}
