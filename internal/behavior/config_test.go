package behavior

import (
	"testing"
	"time"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig(1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateCatchesBadValues(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"probability above 1", func(c *Config) { c.ForgetProb = 1.5 }},
		{"negative probability", func(c *Config) { c.OffAtCloseIdle = -0.1 }},
		{"calendar hour", func(c *Config) { c.OpenHour = 25 }},
		{"close after open", func(c *Config) { c.NightClose = 9 }},
		{"inverted attendance", func(c *Config) { c.ClassAttendanceLo, c.ClassAttendanceHi = 0.9, 0.5 }},
		{"inverted session bounds", func(c *Config) { c.SessionMin = c.SessionMax + time.Hour }},
		{"negative rate", func(c *Config) { c.ArrivalPeakPerHour = -1 }},
		{"zero session mean", func(c *Config) { c.SessionMean = 0 }},
		{"cpu mean above max", func(c *Config) { c.InteractiveCPUMean = 0.95; c.InteractiveCPUMax = 0.9 }},
		{"inverted bias", func(c *Config) { c.LeaveOnBiasLo, c.LeaveOnBiasHi = 2, 1 }},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			cse.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("%s accepted", cse.name)
			}
		})
	}
}
