package behavior

import (
	"testing"
	"time"

	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/sim"
)

// runModel simulates `days` days on a small fleet and returns the model
// and fleet for inspection.
func runModel(t *testing.T, seed int64, days int) (*Model, *lab.Fleet) {
	t.Helper()
	specs := lab.PaperCatalog()[:3] // 48 machines is plenty for behaviour checks
	fleet := lab.Build(specs, seed, lab.DefaultDiskLife())
	cfg := DefaultConfig(seed)
	md := NewModel(cfg, fleet)
	eng := sim.New(monday)
	end := monday.AddDate(0, 0, days)
	md.Install(eng, monday, end)
	eng.RunUntil(end)
	return md, fleet
}

func TestModelRunsWithoutPanic(t *testing.T) {
	md, fleet := runModel(t, 1, 7)
	if md.Boots == 0 || md.Logins == 0 {
		t.Errorf("model inert: boots=%d logins=%d", md.Boots, md.Logins)
	}
	// Ground-truth logs exist.
	var powers, sessions int
	for _, m := range fleet.Machines {
		powers += len(m.PowerLog)
		sessions += len(m.SessionLog)
	}
	if powers == 0 || sessions == 0 {
		t.Errorf("no ground truth: %d power records, %d sessions", powers, sessions)
	}
}

func TestModelDeterministic(t *testing.T) {
	a, fa := runModel(t, 5, 3)
	b, fb := runModel(t, 5, 3)
	if a.Boots != b.Boots || a.Logins != b.Logins || a.Forgets != b.Forgets ||
		a.Crashes != b.Crashes || a.PhantomCycles != b.PhantomCycles {
		t.Errorf("counters differ: %+v vs %+v",
			[5]int64{a.Boots, a.Logins, a.Forgets, a.Crashes, a.PhantomCycles},
			[5]int64{b.Boots, b.Logins, b.Forgets, b.Crashes, b.PhantomCycles})
	}
	for i := range fa.Machines {
		if len(fa.Machines[i].PowerLog) != len(fb.Machines[i].PowerLog) {
			t.Fatalf("machine %d power log lengths differ", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, _ := runModel(t, 1, 3)
	b, _ := runModel(t, 2, 3)
	if a.Logins == b.Logins && a.Boots == b.Boots && a.PhantomCycles == b.PhantomCycles {
		t.Error("different seeds produced identical counters (suspicious)")
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	_, fleet := runModel(t, 3, 7)
	for _, m := range fleet.Machines {
		// Power sessions are ordered and non-overlapping.
		for i, p := range m.PowerLog {
			if !p.End.After(p.Start) {
				t.Fatalf("%s: empty power session %+v", m.ID, p)
			}
			if i > 0 && p.Start.Before(m.PowerLog[i-1].End) {
				t.Fatalf("%s: overlapping power sessions", m.ID)
			}
		}
		// Interactive sessions are contained in power sessions.
		for _, s := range m.SessionLog {
			if !s.End.After(s.Start) {
				t.Fatalf("%s: empty session %+v", m.ID, s)
			}
			contained := false
			for _, p := range m.PowerLog {
				if !s.Start.Before(p.Start) && !s.End.After(p.End) {
					contained = true
					break
				}
			}
			if !contained && m.Powered() {
				// The machine may still be on at experiment end; then its
				// last boot has no PowerLog entry yet. Accept sessions that
				// start after the last logged power-off.
				if len(m.PowerLog) > 0 && s.Start.Before(m.PowerLog[len(m.PowerLog)-1].End) {
					t.Fatalf("%s: session %+v outside any power session", m.ID, s)
				}
				contained = true
			}
			if !contained {
				t.Fatalf("%s: session %+v outside any power session", m.ID, s)
			}
		}
	}
}

func TestSessionsHappenWhileOpen(t *testing.T) {
	md, fleet := runModel(t, 4, 7)
	cal := md.Calendar()
	for _, m := range fleet.Machines {
		for _, s := range m.SessionLog {
			// Sessions must *start* during open hours or at most a boot
			// delay after a claim near closing (a few minutes of slack).
			if !cal.IsOpen(s.Start) && !cal.IsOpen(s.Start.Add(-16*time.Minute)) {
				t.Errorf("%s: session started at %v while closed", m.ID, s.Start)
			}
		}
	}
}

func TestClassOccupiesLab(t *testing.T) {
	// Build a fleet with one lab and a deterministic timetable; check that
	// class start raises lab occupancy.
	specs := lab.PaperCatalog()[:1]
	fleet := lab.Build(specs, 11, lab.DefaultDiskLife())
	cfg := DefaultConfig(11)
	cfg.ArrivalPeakPerHour = 0 // isolate class behaviour
	cfg.PhantomPerOpenHour = 0
	md := NewModel(cfg, fleet)
	eng := sim.New(monday)
	end := monday.AddDate(0, 0, 5)
	md.Install(eng, monday, end)

	classes := md.Timetable().ForLab("L01")
	if len(classes) == 0 {
		t.Skip("generated timetable has no class for L01 at this seed")
	}
	c := classes[0]
	day := int(c.Day-time.Monday+7) % 7
	mid := monday.AddDate(0, 0, day).Add(time.Duration(c.StartHour)*time.Hour + time.Hour)
	if !mid.Before(end) {
		t.Skip("class outside simulated window")
	}
	eng.RunUntil(mid)
	occupied := 0
	for _, m := range fleet.ByLab["L01"] {
		if m.Powered() && m.Session() != nil {
			occupied++
		}
	}
	if occupied < 4 { // attendance ≥ 0.55 of 16, minus stragglers
		t.Errorf("only %d machines occupied mid-class", occupied)
	}
}

func TestForgottenSessionsExist(t *testing.T) {
	md, fleet := runModel(t, 6, 7)
	if md.Forgets == 0 {
		t.Fatal("no forgotten sessions in a week")
	}
	found := false
	for _, m := range fleet.Machines {
		for _, s := range m.SessionLog {
			if s.Forgotten && s.End.Sub(s.Start) >= 10*time.Hour {
				found = true
			}
		}
	}
	if !found {
		t.Error("no forgotten session lasted ≥10 h (the paper's threshold would never fire)")
	}
}

func TestPhantomCyclesAreShort(t *testing.T) {
	specs := lab.PaperCatalog()[:1]
	fleet := lab.Build(specs, 13, lab.DefaultDiskLife())
	cfg := DefaultConfig(13)
	cfg.ArrivalPeakPerHour = 0
	cfg.WeekdayClassMeanPerLab = 0
	cfg.SaturdayClassMeanPerLab = 0
	cfg.CPUHogLabs = nil
	md := NewModel(cfg, fleet)
	eng := sim.New(monday)
	end := monday.AddDate(0, 0, 7)
	md.Install(eng, monday, end)
	eng.RunUntil(end)
	if md.PhantomCycles == 0 {
		t.Fatal("no phantom cycles")
	}
	if md.Logins != 0 {
		t.Fatalf("phantom-only run had %d logins", md.Logins)
	}
	for _, m := range fleet.Machines {
		for _, p := range m.PowerLog {
			if d := p.Duration(); d > 10*time.Minute {
				t.Errorf("%s: phantom session lasted %v", m.ID, d)
			}
		}
	}
}

func TestHogClassLoadsCPU(t *testing.T) {
	specs := lab.PaperCatalog()[2:3] // L03, a CPU-hog lab
	fleet := lab.Build(specs, 17, lab.DefaultDiskLife())
	cfg := DefaultConfig(17)
	cfg.ArrivalPeakPerHour = 0
	cfg.PhantomPerOpenHour = 0
	cfg.WeekdayClassMeanPerLab = 0
	cfg.SaturdayClassMeanPerLab = 0
	md := NewModel(cfg, fleet)
	eng := sim.New(monday)
	end := monday.AddDate(0, 0, 3)
	md.Install(eng, monday, end)
	// Tuesday 15:30, mid-hog-class.
	eng.RunUntil(monday.AddDate(0, 0, 1).Add(15*time.Hour + 30*time.Minute))
	busy := 0
	for _, m := range fleet.ByLab["L03"] {
		if m.Powered() && m.CPUBusy() > 0.2 {
			busy++
		}
	}
	if busy < 4 {
		t.Errorf("CPU-hog class: only %d machines heavily loaded", busy)
	}
}

func TestClosingSweepPowersMachinesOff(t *testing.T) {
	md, fleet := runModel(t, 8, 7)
	_ = md
	// At Sunday noon (closed since Saturday 21:00), most machines are off.
	// We can only check final state at day 7 (Monday 00:00): still closed.
	on := 0
	for _, m := range fleet.Machines {
		if m.Powered() {
			on++
		}
	}
	if on > len(fleet.Machines)/2 {
		t.Errorf("%d/%d machines on after the weekend closure", on, len(fleet.Machines))
	}
}

func TestMachineStateMatchesKind(t *testing.T) {
	// Internal invariant: controllers marked with an active session hold a
	// machine with an open session, and vice versa.
	specs := lab.PaperCatalog()[:2]
	fleet := lab.Build(specs, 19, lab.DefaultDiskLife())
	cfg := DefaultConfig(19)
	md := NewModel(cfg, fleet)
	eng := sim.New(monday)
	end := monday.AddDate(0, 0, 2)
	md.Install(eng, monday, end)
	for eng.Step() {
		if eng.Fired()%1000 != 0 {
			continue
		}
		for _, mc := range md.ctl {
			switch mc.kind {
			case kindFree, kindClass:
				if mc.m.Session() == nil {
					t.Fatalf("%s: kind %d without machine session", mc.m.ID, mc.kind)
				}
				if mc.m.Session().Forgotten {
					t.Fatalf("%s: active kind with forgotten session", mc.m.ID)
				}
			case kindForgotten:
				if mc.m.Session() == nil || !mc.m.Session().Forgotten {
					t.Fatalf("%s: forgotten kind without forgotten session", mc.m.ID)
				}
			default:
				if !mc.pending && mc.m.Session() != nil {
					t.Fatalf("%s: kindNone with open session", mc.m.ID)
				}
			}
		}
	}
}

func TestActivitiesClearedOnLogout(t *testing.T) {
	_, fleet := runModel(t, 21, 3)
	for _, m := range fleet.Machines {
		if !m.Powered() || m.Session() != nil {
			continue
		}
		for _, name := range m.Activities() {
			if name == machine.ActInteractive || name == machine.ActClass {
				t.Errorf("%s: stale activity %q on idle machine", m.ID, name)
			}
		}
	}
}
