// Package behavior implements the workload model that animates the
// simulated fleet: class timetables, student arrivals, interactive resource
// usage, forgotten logouts, power management and crashes.
//
// The model is intentionally behavioural, not statistical: nothing in it
// replays the paper's aggregates. Students arrive, log in, consume
// resources, forget to log out, and machines get powered on and off; the
// paper's Table 2 and Figures 2–6 then *emerge* from the collected trace.
package behavior

import (
	"fmt"
	"time"

	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/rng"
	"winlab/internal/sim"
)

// sessKind classifies what is currently happening on a machine.
type sessKind int

const (
	kindNone      sessKind = iota // powered or off, no interactive session
	kindFree                      // free (non-class) interactive session
	kindClass                     // session belonging to a class occurrence
	kindForgotten                 // session left open by a departed user
)

// profile is the per-session resource consumption profile drawn at login.
type profile struct {
	appMemMB  float64
	appSwapMB float64
	cpuBase   float64 // mean busy fraction; redraws fluctuate around it
	recvBase  float64 // mean receive bps
	sentFrac  float64
	hog       bool // CPU-intensive class workload on top
}

// machCtl is the behaviour-model state attached to one machine.
type machCtl struct {
	m        *machine.Machine
	spec     lab.Spec
	diskBase float64 // stable per-machine installed-image size
	offBias  float64 // stable multiplier on all shutdown probabilities

	kind     sessKind
	classTag int64 // occurrence ID of the owning class, when kind==kindClass
	pending  bool  // a boot/reboot claim is in flight
	prof     profile
	tempGB   float64

	// Lifecycle state (scenario fleets; see scenario.go). joined is
	// true for the machine's whole life outside lifecycle scenarios.
	joined  bool
	retired bool

	endEv    *sim.Event
	redrawEv *sim.Event
	crashEv  *sim.Event
	bootEv   *sim.Event // in-flight boot/reboot/phantom event, for retire
}

// Model animates a fleet on a simulation engine.
type Model struct {
	cfg   Config
	cal   Calendar
	tt    Timetable
	fleet *lab.Fleet
	ctl   []*machCtl
	byLab map[string][]*machCtl

	// Scenario hooks (see scenario.go); all nil/empty by default, in
	// which case every event path is the exact pre-scenario code.
	overlay  Overlay
	labCals  map[string]Calendar
	alwaysOn map[string]bool
	life     map[string]Lifecycle

	// Independent random streams per concern (see package rng).
	arrivals *rng.Source
	classes  *rng.Source
	power    *rng.Source
	res      *rng.Source

	start, end time.Time
	userSeq    int
	classSeq   int64

	// Counters for calibration diagnostics.
	Boots         int64
	Logins        int64
	Forgets       int64
	Crashes       int64
	PhantomCycles int64
}

// NewModel builds the behaviour model for a fleet. The timetable is drawn
// from the configuration's seed.
func NewModel(cfg Config, fleet *lab.Fleet) *Model {
	cal := Calendar{OpenHour: cfg.OpenHour, NightClose: cfg.NightClose, SatCloseHour: cfg.SatCloseHour}
	labNames := make([]string, 0, len(fleet.Specs))
	for _, s := range fleet.Specs {
		labNames = append(labNames, s.Name)
	}
	tt := GenerateTimetable(cfg, labNames, rng.Derive(cfg.Seed, "timetable"))

	m := &Model{
		cfg:      cfg,
		cal:      cal,
		tt:       tt,
		fleet:    fleet,
		byLab:    make(map[string][]*machCtl),
		arrivals: rng.Derive(cfg.Seed, "arrivals"),
		classes:  rng.Derive(cfg.Seed, "classes"),
		power:    rng.Derive(cfg.Seed, "power"),
		res:      rng.Derive(cfg.Seed, "resources"),
	}
	jit := rng.Derive(cfg.Seed, "diskjitter")
	bias := rng.Derive(cfg.Seed, "offbias")
	for _, mm := range fleet.Machines {
		off := bias.Uniform(cfg.CyclerBiasLo, cfg.CyclerBiasHi)
		if bias.Bool(cfg.LeaveOnFraction) {
			off = bias.Uniform(cfg.LeaveOnBiasLo, cfg.LeaveOnBiasHi)
		}
		mc := &machCtl{
			m:        mm,
			spec:     fleet.SpecOf(mm),
			diskBase: fleet.SpecOf(mm).BaseImgGB + jit.Uniform(-cfg.DiskJitterGB, cfg.DiskJitterGB),
			offBias:  off,
			joined:   true,
		}
		m.ctl = append(m.ctl, mc)
		m.byLab[mm.Lab] = append(m.byLab[mm.Lab], mc)
	}
	return m
}

// Timetable exposes the generated weekly timetable (for tests and reports).
func (md *Model) Timetable() Timetable { return md.tt }

// Calendar exposes the opening-hours calendar.
func (md *Model) Calendar() Calendar { return md.cal }

// Install schedules the whole experiment's behaviour on the engine, from
// start (inclusive) to end (exclusive). start should be a Monday 00:00 so
// that weekly figures align, but any start works.
func (md *Model) Install(eng *sim.Engine, start, end time.Time) {
	md.start, md.end = start, end

	// Scenario hooks configured? Scheduling generalises to per-lab wall
	// clocks and lifecycle windows (scenario.go). The default path below
	// stays byte-for-byte identical for unconfigured models.
	if md.scenarioActive() {
		md.installScenario(eng, start, end)
		return
	}

	// Student arrival process: one tick per 15 minutes.
	eng.Every(start, 15*time.Minute, end, "arrivals", md.arrivalTick)

	// Phantom power cycles (very short uses that escape sampling).
	eng.Every(start, time.Hour, end, "phantom", md.phantomTick)

	// Anchor the weekly schedule to the Monday midnight of the start's
	// week so classes land on their wall-clock hours regardless of when
	// within a week the experiment begins.
	midnight := time.Date(start.Year(), start.Month(), start.Day(), 0, 0, 0, 0, start.Location())
	monday := midnight.AddDate(0, 0, -((int(start.Weekday()) + 6) % 7))

	// Class occurrences, week by week.
	for wk := monday; wk.Before(end); wk = wk.AddDate(0, 0, 7) {
		for _, c := range md.tt.Classes {
			day := int(c.Day-time.Monday+7) % 7
			at := wk.AddDate(0, 0, day).Add(time.Duration(c.StartHour) * time.Hour)
			if at.Before(start) || !at.Before(end) {
				continue
			}
			cls := c
			eng.At(at, "class-start", func(e *sim.Engine) { md.classStart(e, cls) })
		}
	}

	// Closing sweeps: at every open→closed transition (weekday 4 am,
	// Saturday 9 pm), students leave and machines get shut down.
	for d := midnight; d.Before(end); d = d.AddDate(0, 0, 1) {
		var closes []time.Time
		switch d.Weekday() {
		case time.Tuesday, time.Wednesday, time.Thursday, time.Friday, time.Saturday:
			closes = append(closes, d.Add(time.Duration(md.cfg.NightClose)*time.Hour))
		}
		if d.Weekday() == time.Saturday {
			closes = append(closes, d.Add(time.Duration(md.cfg.SatCloseHour)*time.Hour))
		}
		for _, at := range closes {
			if at.Before(start) || !at.Before(end) {
				continue
			}
			eng.At(at, "closing-sweep", md.closingSweep)
		}
	}
}

// ---------------------------------------------------------------------------
// Power management.

func (md *Model) powerOn(eng *sim.Engine, mc *machCtl) {
	t := eng.Now()
	mc.m.PowerOn(t)
	md.Boots++
	cfg := md.cfg
	mean, sd := cfg.OSMemMBByRAM[mc.spec.RAMMB][0], cfg.OSMemMBByRAM[mc.spec.RAMMB][1]
	osMem := md.res.BoundedNormal(mean, sd, 60, 0.95*float64(mc.spec.RAMMB))
	osSwap := osMem * cfg.OSSwapFrac * md.res.Uniform(0.85, 1.15)
	mc.m.SetBaseline(osMem, osSwap, mc.diskBase+md.res.Uniform(-0.1, 0.1))
	mc.m.SetActivity(t, machine.Activity{
		Name:    machine.ActOSBackground,
		CPU:     md.res.Uniform(cfg.BackgroundCPULo, cfg.BackgroundCPUHi),
		SendBps: md.res.Uniform(cfg.BackgroundSentLo, cfg.BackgroundSentHi),
		RecvBps: md.res.Uniform(cfg.BackgroundRecvLo, cfg.BackgroundRecvHi),
	})
	mc.tempGB = 0
}

func (md *Model) powerOff(eng *sim.Engine, mc *machCtl) {
	md.cancelSessionEvents(eng, mc)
	mc.kind = kindNone
	mc.m.PowerOff(eng.Now())
}

func (md *Model) cancelSessionEvents(eng *sim.Engine, mc *machCtl) {
	eng.Cancel(mc.endEv)
	eng.Cancel(mc.redrawEv)
	eng.Cancel(mc.crashEv)
	mc.endEv, mc.redrawEv, mc.crashEv = nil, nil, nil
}

// claim takes possession of a machine for a new interactive session,
// booting or rebooting it as needed, then calls login when it is ready.
// The caller must have checked that the machine is claimable (not pending,
// not holding another active session).
func (md *Model) claim(eng *sim.Engine, mc *machCtl, login func(*sim.Engine)) {
	if mc.pending {
		panic("behavior: claim on pending machine " + mc.m.ID)
	}
	bootDelay := func() time.Duration {
		lo, hi := md.cfg.BootDelayLo, md.cfg.BootDelayHi
		return time.Duration(md.power.Uniform(float64(lo), float64(hi)))
	}
	switch {
	case mc.m.Powered() && mc.m.Session() == nil:
		login(eng)
	case mc.m.Powered(): // forgotten session: the newcomer reboots it
		md.cancelSessionEvents(eng, mc)
		mc.kind = kindNone
		mc.m.PowerOff(eng.Now())
		mc.pending = true
		mc.bootEv = eng.After(bootDelay(), "reboot", func(e *sim.Engine) {
			mc.bootEv = nil
			mc.pending = false
			md.powerOn(e, mc)
			login(e)
		})
	default: // powered off
		mc.pending = true
		mc.bootEv = eng.After(bootDelay(), "boot", func(e *sim.Engine) {
			mc.bootEv = nil
			mc.pending = false
			md.powerOn(e, mc)
			login(e)
		})
	}
}

// claimable reports whether a machine can be given to a new user right now:
// a current fleet member, not mid-boot and not hosting an *active* session
// (forgotten ones are rebooted away by claim).
func (mc *machCtl) claimable() bool {
	return mc.usable() && !mc.pending && mc.kind != kindFree && mc.kind != kindClass
}

func (md *Model) nextUser(prefix string) string {
	md.userSeq++
	return fmt.Sprintf("%s%05d", prefix, md.userSeq)
}
