package behavior

import (
	"time"

	"winlab/internal/sim"
)

// This file is the behavior model's scenario surface: regime-shift
// overlays, per-lab calendars (heterogeneous wall clocks, always-on
// server pools) and fleet lifecycle windows. The hooks compose on top
// of the semester model without forking it — an unconfigured model
// takes exactly the pre-scenario code paths, so default traces stay
// byte-identical (asserted by the scenario package's no-op identity
// test).
//
// All setters must be called after NewModel and before Install.

// Overlay modulates the model's stochastic rates over time. Factors
// are multipliers with 1 meaning "unchanged"; a lockdown semester is an
// overlay whose ArrivalFactor ramps from 1 to ~0.1 over two weeks and
// partially recovers later. Implementations must be pure functions of
// t (they are called once per scheduling decision and must not retain
// state, or determinism across runs is lost).
type Overlay interface {
	// ArrivalFactor scales the free-use student arrival rate at t.
	ArrivalFactor(t time.Time) float64
	// AttendanceFactor scales class attendance probability at t.
	AttendanceFactor(t time.Time) float64
	// PowerFactor scales end-of-session and closing-time shutdown
	// probabilities at t (>1: machines are switched off more eagerly).
	PowerFactor(t time.Time) float64
}

// Lifecycle bounds one machine's fleet membership in simulation time.
// A zero Join means "from the start"; a zero Leave means "until the
// end". Between Leave and the trace end the machine is retired: powered
// off, never claimed, never swept.
type Lifecycle struct {
	Machine string
	Join    time.Time
	Leave   time.Time
}

// SetOverlay installs a regime overlay. Call before Install.
func (md *Model) SetOverlay(o Overlay) { md.overlay = o }

// SetLabCalendars installs per-lab opening calendars. Labs not in the
// map keep the config-derived default calendar. Any non-nil map (even
// empty) switches arrivals, class scheduling and closing sweeps to the
// per-lab wall-clock paths. Call before Install.
func (md *Model) SetLabCalendars(cals map[string]Calendar) { md.labCals = cals }

// SetAlwaysOn marks labs as always-on server pools: their machines are
// powered on at the start (or at their join instant), never claimed by
// students or classes, and never swept. Pair with an AlwaysOpen
// calendar in SetLabCalendars. Call before Install.
func (md *Model) SetAlwaysOn(labs []string) {
	if md.alwaysOn == nil {
		md.alwaysOn = make(map[string]bool, len(labs))
	}
	for _, lb := range labs {
		md.alwaysOn[lb] = true
	}
}

// SetLifecycle installs fleet lifecycle windows. Call before Install.
func (md *Model) SetLifecycle(life []Lifecycle) {
	if md.life == nil {
		md.life = make(map[string]Lifecycle, len(life))
	}
	for _, lc := range life {
		md.life[lc.Machine] = lc
	}
}

// scenarioActive reports whether any scenario hook is configured; when
// false, Install and every event path run the exact default code.
func (md *Model) scenarioActive() bool {
	return md.overlay != nil || md.labCals != nil || md.alwaysOn != nil || md.life != nil
}

func (md *Model) arrivalFactor(t time.Time) float64 {
	if md.overlay == nil {
		return 1
	}
	return md.overlay.ArrivalFactor(t)
}

func (md *Model) attendanceFactor(t time.Time) float64 {
	if md.overlay == nil {
		return 1
	}
	return md.overlay.AttendanceFactor(t)
}

func (md *Model) powerFactor(t time.Time) float64 {
	if md.overlay == nil {
		return 1
	}
	return md.overlay.PowerFactor(t)
}

// calFor returns the lab's calendar (the config default when the lab
// has no per-lab override).
func (md *Model) calFor(lb string) Calendar {
	if c, ok := md.labCals[lb]; ok {
		return c
	}
	return md.cal
}

// usable reports whether the machine is currently a fleet member the
// model may touch (joined and not retired). Always true outside
// lifecycle scenarios.
func (mc *machCtl) usable() bool { return mc.joined && !mc.retired }

// retire removes a machine from the fleet mid-trace: any in-flight
// boot is cancelled, the session (if any) is closed by the power-off,
// and the machine never responds, is claimed, or is swept again.
func (md *Model) retire(eng *sim.Engine, mc *machCtl) {
	md.cancelSessionEvents(eng, mc)
	eng.Cancel(mc.bootEv)
	mc.bootEv = nil
	mc.pending = false
	mc.kind = kindNone
	if mc.m.Powered() {
		mc.m.PowerOff(eng.Now())
	}
	mc.retired = true
}

// localMonday returns midnight of the Monday of t's week, in loc's
// wall clock.
func localMonday(t time.Time, loc *time.Location) time.Time {
	lt := t.In(loc)
	lm := time.Date(lt.Year(), lt.Month(), lt.Day(), 0, 0, 0, 0, loc)
	return lm.AddDate(0, 0, -((int(lm.Weekday()) + 6) % 7))
}

// installScenario is Install's scenario-mode body: the same processes
// as the default path, generalised to per-lab wall clocks, lifecycle
// windows and always-on pools. It is a separate function (rather than
// ifs inside Install) so the default path keeps its exact event
// insertion order — simultaneous events break FIFO ties by insertion.
func (md *Model) installScenario(eng *sim.Engine, start, end time.Time) {
	eng.Every(start, 15*time.Minute, end, "arrivals", md.arrivalTick)
	eng.Every(start, time.Hour, end, "phantom", md.phantomTick)

	// Fleet lifecycle: late joiners start outside the fleet; leavers
	// are retired at their leave instant. A leave at or before start
	// means the machine is never a member at all.
	for _, mc := range md.ctl {
		lc, ok := md.life[mc.m.ID]
		if !ok {
			continue
		}
		if lc.Join.After(start) {
			mc.joined = false
			if lc.Join.Before(end) {
				mcc := mc
				eng.At(lc.Join, "fleet-join", func(e *sim.Engine) {
					mcc.joined = true
					if md.alwaysOn[mcc.m.Lab] && !mcc.m.Powered() {
						md.powerOn(e, mcc)
					}
				})
			}
		}
		if !lc.Leave.IsZero() {
			switch {
			case !lc.Leave.After(start):
				mc.joined = false
				mc.retired = true
			case lc.Leave.Before(end):
				mcc := mc
				eng.At(lc.Leave, "fleet-leave", func(e *sim.Engine) { md.retire(e, mcc) })
			}
		}
	}

	// Always-on server pools boot once at the start (joiners boot at
	// their join instant, handled above).
	for _, mc := range md.ctl {
		if md.alwaysOn[mc.m.Lab] && mc.usable() {
			mcc := mc
			eng.At(start, "serverpool-on", func(e *sim.Engine) {
				if !mcc.m.Powered() {
					md.powerOn(e, mcc)
				}
			})
		}
	}

	// Class occurrences, per lab in the lab's wall clock: "Tuesday
	// 10 am" is Tuesday 10 am local, on both sides of a DST shift.
	for _, c := range md.tt.Classes {
		if md.alwaysOn[c.Lab] {
			continue
		}
		loc := md.calFor(c.Lab).loc()
		anchor := localMonday(start, loc)
		day := int(c.Day-time.Monday+7) % 7
		cls := c
		for wk := anchor; wk.Before(end); wk = wk.AddDate(0, 0, 7) {
			d := wk.AddDate(0, 0, day)
			at := time.Date(d.Year(), d.Month(), d.Day(), cls.StartHour, 0, 0, 0, loc)
			if at.Before(start) || !at.Before(end) {
				continue
			}
			eng.At(at, "class-start", func(e *sim.Engine) { md.classStart(e, cls) })
		}
	}

	// Closing sweeps per lab, found by scanning the lab calendar's
	// open→closed transitions on wall-clock hour boundaries (DST-safe;
	// an AlwaysOpen calendar has none, so NextClose's "never closes"
	// case never schedules a sweep).
	for _, s := range md.fleet.Specs {
		cal := md.calFor(s.Name)
		if cal.AlwaysOpen || md.alwaysOn[s.Name] {
			continue // always-on pools are never swept, whatever their calendar
		}
		lb := s.Name
		loc := cal.loc()
		prev := wallHour(start.In(loc))
		for u := nextWallHour(prev); u.Before(end); prev, u = u, nextWallHour(u) {
			if cal.IsOpen(prev) && !cal.IsOpen(u) && !u.Before(start) {
				at := u
				eng.At(at, "closing-sweep", func(e *sim.Engine) { md.closingSweepLab(e, lb) })
			}
		}
	}
}

// arrivalTickLabs is arrivalTick's per-lab-calendar variant: each open
// lab contributes its machine-count share of the fleet arrival rate,
// shaped by the lab's *local* hour, so a Tokyo campus fills during
// Tokyo daytime.
func (md *Model) arrivalTickLabs(eng *sim.Engine, t time.Time) {
	total := len(md.ctl)
	if total == 0 {
		return
	}
	for _, s := range md.fleet.Specs {
		if md.alwaysOn[s.Name] {
			continue
		}
		cal := md.calFor(s.Name)
		if !cal.IsOpen(t) {
			continue
		}
		lt := t.In(cal.loc())
		rate := md.cfg.ArrivalPeakPerHour * md.cfg.HourShape[lt.Hour()]
		if lt.Weekday() == time.Saturday {
			rate *= md.cfg.SaturdayFactor
		}
		rate *= float64(len(md.byLab[s.Name])) / float64(total)
		rate *= md.arrivalFactor(t)
		n := md.arrivals.Poisson(rate / 4)
		lb := s.Name
		for i := 0; i < n; i++ {
			at := t.Add(time.Duration(md.arrivals.Uniform(0, float64(15*time.Minute))))
			eng.At(at, "student-arrival", func(e *sim.Engine) { md.studentArrivalIn(e, lb) })
		}
	}
}

// studentArrivalIn starts a free session on a machine of one lab (the
// per-lab arrival path; the student leaves if the lab is full).
func (md *Model) studentArrivalIn(eng *sim.Engine, lb string) {
	mc := md.pickMachineIn(lb)
	if mc == nil {
		return
	}
	quick := md.arrivals.Bool(md.cfg.QuickSessionProb)
	dur := md.drawSessionDuration(quick)
	user := md.nextUser("stu")
	prof := md.drawProfile(mc.spec, false)
	md.claim(eng, mc, func(e *sim.Engine) {
		md.beginSession(e, mc, user, kindFree, prof, dur, quick)
	})
}

// pickMachineIn is pickMachine's within-lab pooling (powered-idle
// first, then off, then forgotten).
func (md *Model) pickMachineIn(lb string) *machCtl {
	var poweredIdle, off, forgotten []*machCtl
	for _, mc := range md.byLab[lb] {
		if !mc.claimable() {
			continue
		}
		switch {
		case mc.kind == kindForgotten:
			forgotten = append(forgotten, mc)
		case mc.m.Powered():
			poweredIdle = append(poweredIdle, mc)
		default:
			off = append(off, mc)
		}
	}
	for _, pool := range [][]*machCtl{poweredIdle, off, forgotten} {
		if len(pool) > 0 {
			return pool[md.arrivals.Intn(len(pool))]
		}
	}
	return nil
}
