package behavior

import (
	"time"

	"winlab/internal/lab"
	"winlab/internal/machine"
	"winlab/internal/sim"
)

// drawProfile draws the resource profile of a new interactive session.
func (md *Model) drawProfile(spec lab.Spec, hog bool) profile {
	cfg := md.cfg
	mean, sd := cfg.AppMemMBByRAM[spec.RAMMB][0], cfg.AppMemMBByRAM[spec.RAMMB][1]
	appMem := md.res.BoundedNormal(mean, sd, 8, 0.9*float64(spec.RAMMB))
	return profile{
		appMemMB:  appMem,
		appSwapMB: appMem * cfg.AppSwapFrac,
		cpuBase:   clampF(md.res.Exponential(cfg.InteractiveCPUMean), 0.004, cfg.InteractiveCPUMax),
		recvBase:  clampF(md.res.LogNormal(cfg.RecvBpsMean, cfg.RecvBpsSD), 300, 400e3),
		sentFrac:  cfg.SentOverRecv * md.res.Uniform(0.6, 1.4),
		hog:       hog,
	}
}

// beginSession logs a user in and installs the session's activities,
// redraws and crash process. endAt, when non-zero, schedules the session's
// natural end (free sessions); class sessions end at the class-end event.
func (md *Model) beginSession(eng *sim.Engine, mc *machCtl, user string, kind sessKind, prof profile, dur time.Duration, quick bool) {
	t := eng.Now()
	mc.m.Login(t, user)
	md.Logins++
	mc.kind = kind
	mc.prof = prof
	mc.tempGB = md.res.Uniform(md.cfg.TempGrowLoGB, md.cfg.TempGrowHiGB)
	mc.m.GrowTemp(t, mc.tempGB)
	md.applyIntensity(eng, mc)
	md.scheduleRedraw(eng, mc)
	md.scheduleCrash(eng, mc)
	if dur > 0 {
		mc.endEv = eng.After(dur, "session-end", func(e *sim.Engine) {
			mc.endEv = nil
			md.endSession(e, mc, endOpts{
				offProb:       md.offProbAfter(kind, quick),
				forgetAllowed: !quick,
			})
		})
	}
}

func (md *Model) offProbAfter(kind sessKind, quick bool) float64 {
	switch {
	case quick:
		return md.cfg.OffAfterQuickProb
	case kind == kindClass:
		return md.cfg.OffAfterClassProb
	default:
		return md.cfg.OffAfterUseProb
	}
}

// endOpts controls how a session terminates.
type endOpts struct {
	offProb       float64
	forgetAllowed bool
}

// endSession terminates the active session on mc: the user either logs out
// (and possibly shuts the machine down) or walks away leaving the session
// open (a forgotten logout, §4.2).
func (md *Model) endSession(eng *sim.Engine, mc *machCtl, opts endOpts) {
	if mc.kind != kindFree && mc.kind != kindClass {
		panic("behavior: endSession without active session on " + mc.m.ID)
	}
	t := eng.Now()
	md.cancelSessionEvents(eng, mc)
	if opts.forgetAllowed && md.power.Bool(md.cfg.ForgetProb) {
		// Walked away: session stays open, applications linger half-closed,
		// resource usage returns to near-idle.
		md.Forgets++
		mc.m.Forget(t)
		keep := md.power.Uniform(md.cfg.ForgetMemKeepLo, md.cfg.ForgetMemKeepHi)
		mc.m.ClearActivity(t, machine.ActClass)
		mc.m.SetActivity(t, machine.Activity{
			Name:   machine.ActInteractive,
			CPU:    md.res.Uniform(0.001, 0.004),
			MemMB:  mc.prof.appMemMB * keep,
			SwapMB: mc.prof.appSwapMB * keep,
		})
		mc.kind = kindForgotten
		return
	}
	mc.m.ClearActivity(t, machine.ActClass)
	mc.m.ClearActivity(t, machine.ActInteractive)
	mc.m.Logout(t)
	mc.kind = kindNone
	// powerFactor is 1 exactly unless a regime overlay is configured.
	if md.power.Bool(clampF(opts.offProb*mc.offBias*md.powerFactor(t), 0, 1)) {
		md.powerOff(eng, mc)
	}
}

// applyIntensity redraws the instantaneous resource intensity of the
// session around its per-session profile.
func (md *Model) applyIntensity(eng *sim.Engine, mc *machCtl) {
	t := eng.Now()
	p := mc.prof
	cpu := clampF(md.res.Exponential(p.cpuBase), 0.002, md.cfg.InteractiveCPUMax)
	recv := clampF(md.res.Exponential(p.recvBase), 100, 2e6)
	mc.m.SetActivity(t, machine.Activity{
		Name:    machine.ActInteractive,
		CPU:     cpu,
		RecvBps: recv,
		SendBps: recv * p.sentFrac,
		MemMB:   p.appMemMB * md.res.Uniform(0.9, 1.1),
		SwapMB:  p.appSwapMB,
	})
	if p.hog {
		mc.m.SetActivity(t, machine.Activity{
			Name: machine.ActClass,
			CPU:  md.res.BoundedNormal(md.cfg.CPUHogLoadMean, 0.12, 0.15, 0.95),
		})
	}
	// Session temp files creep up toward the local quota.
	if mc.tempGB < md.cfg.TempCapGB {
		g := md.res.Uniform(0, 0.02)
		if mc.tempGB+g > md.cfg.TempCapGB {
			g = md.cfg.TempCapGB - mc.tempGB
		}
		mc.tempGB += g
		mc.m.GrowTemp(t, g)
	}
}

func (md *Model) scheduleRedraw(eng *sim.Engine, mc *machCtl) {
	d := time.Duration(md.res.Uniform(float64(md.cfg.RedrawLo), float64(md.cfg.RedrawHi)))
	mc.redrawEv = eng.After(d, "redraw", func(e *sim.Engine) {
		mc.redrawEv = nil
		if mc.kind != kindFree && mc.kind != kindClass {
			return
		}
		md.applyIntensity(e, mc)
		md.scheduleRedraw(e, mc)
	})
}

// scheduleCrash arms the session's crash process: with a small hourly rate
// the machine bluescreens, reboots, and the user usually logs back in.
func (md *Model) scheduleCrash(eng *sim.Engine, mc *machCtl) {
	if md.cfg.CrashRatePerHour <= 0 {
		return
	}
	wait := time.Duration(md.power.Exponential(1/md.cfg.CrashRatePerHour) * float64(time.Hour))
	mc.crashEv = eng.After(wait, "crash", func(e *sim.Engine) {
		mc.crashEv = nil
		if mc.kind != kindFree && mc.kind != kindClass {
			return
		}
		md.Crashes++
		user := mc.m.Session().User
		wasKind := mc.kind
		tag := mc.classTag
		md.cancelSessionEvents(eng, mc)
		mc.kind = kindNone
		mc.m.PowerOff(e.Now()) // closes the session in the ground-truth log
		mc.pending = true
		delay := time.Duration(md.power.Uniform(float64(md.cfg.BootDelayLo), float64(md.cfg.BootDelayHi)))
		mc.bootEv = e.After(delay, "crash-reboot", func(e2 *sim.Engine) {
			mc.bootEv = nil
			mc.pending = false
			md.powerOn(e2, mc)
			if md.power.Bool(0.8) { // user logs back in to finish work
				prof := mc.prof
				switch wasKind {
				case kindClass:
					mc.classTag = tag
					md.beginSession(e2, mc, user, kindClass, prof, 0, false)
				default:
					dur := md.drawSessionDuration(false)
					md.beginSession(e2, mc, user, kindFree, prof, dur, false)
				}
			}
		})
	})
}

// drawSessionDuration draws a free-session length; quick selects the
// short-visit distribution.
func (md *Model) drawSessionDuration(quick bool) time.Duration {
	cfg := md.cfg
	if quick {
		return time.Duration(md.arrivals.Uniform(float64(cfg.QuickSessionLo), float64(cfg.QuickSessionHi)))
	}
	d := time.Duration(md.arrivals.LogNormal(float64(cfg.SessionMean), float64(cfg.SessionSD)))
	if d < cfg.SessionMin {
		d = cfg.SessionMin
	}
	if d > cfg.SessionMax {
		d = cfg.SessionMax
	}
	return d
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
