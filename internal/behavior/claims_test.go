package behavior

import (
	"testing"
	"time"

	"winlab/internal/lab"
	"winlab/internal/sim"
)

// oneLabModel builds a model over a single small lab with all autonomous
// processes disabled, so tests can drive claims manually.
func oneLabModel(seed int64) (*Model, *lab.Fleet, *sim.Engine) {
	specs := []lab.Spec{{
		Name: "T01", Machines: 4, CPUModel: "P4", CPUGHz: 2.4,
		RAMMB: 512, DiskGB: 74.5, IntIndex: 30, FPIndex: 33, BaseImgGB: 20,
	}}
	fleet := lab.Build(specs, seed, lab.DefaultDiskLife())
	cfg := DefaultConfig(seed)
	cfg.ArrivalPeakPerHour = 0
	cfg.PhantomPerOpenHour = 0
	cfg.WeekdayClassMeanPerLab = 0
	cfg.SaturdayClassMeanPerLab = 0
	cfg.CPUHogLabs = nil
	cfg.CrashRatePerHour = 0
	md := NewModel(cfg, fleet)
	eng := sim.New(monday.Add(10 * time.Hour)) // Monday 10:00, open
	return md, fleet, eng
}

func TestClaimBootsOffMachine(t *testing.T) {
	md, fleet, eng := oneLabModel(1)
	mc := md.byLab["T01"][0]
	if mc.m.Powered() {
		t.Fatal("machine starts powered")
	}
	loggedIn := false
	md.claim(eng, mc, func(e *sim.Engine) {
		md.beginSession(e, mc, "u1", kindFree, md.drawProfile(mc.spec, false), time.Hour, false)
		loggedIn = true
	})
	if !mc.pending {
		t.Error("claim of off machine should be pending during boot")
	}
	eng.RunUntil(eng.Now().Add(5 * time.Minute))
	if !loggedIn || !mc.m.Powered() || mc.m.Session() == nil {
		t.Fatal("boot+login did not complete")
	}
	if got := fleet.Machines[0].Disk.PowerCycleCount(eng.Now()); got == 0 {
		t.Error("boot did not increment SMART cycles")
	}
}

func TestClaimRebootsForgottenSession(t *testing.T) {
	md, _, eng := oneLabModel(2)
	mc := md.byLab["T01"][1]
	// Manually install a forgotten session.
	md.claim(eng, mc, func(e *sim.Engine) {
		md.beginSession(e, mc, "sleepy", kindFree, md.drawProfile(mc.spec, false), 0, false)
	})
	eng.RunUntil(eng.Now().Add(5 * time.Minute))
	mc.m.Forget(eng.Now())
	mc.kind = kindForgotten

	cyclesBefore := mc.m.Disk.PowerCycleCount(eng.Now())
	md.claim(eng, mc, func(e *sim.Engine) {
		md.beginSession(e, mc, "fresh", kindFree, md.drawProfile(mc.spec, false), time.Hour, false)
	})
	eng.RunUntil(eng.Now().Add(5 * time.Minute))
	if mc.m.Session() == nil || mc.m.Session().User != "fresh" {
		t.Fatal("newcomer did not get the machine")
	}
	if got := mc.m.Disk.PowerCycleCount(eng.Now()); got != cyclesBefore+1 {
		t.Errorf("reboot did not cycle the disk: %d -> %d", cyclesBefore, got)
	}
	// The forgotten session must be closed and logged.
	logs := mc.m.SessionLog
	if len(logs) == 0 || !logs[0].Forgotten || logs[0].User != "sleepy" {
		t.Errorf("forgotten session log: %+v", logs)
	}
}

func TestClaimPoweredIdleIsImmediate(t *testing.T) {
	md, _, eng := oneLabModel(3)
	mc := md.byLab["T01"][2]
	md.claim(eng, mc, func(e *sim.Engine) {
		md.beginSession(e, mc, "a", kindFree, md.drawProfile(mc.spec, false), time.Minute, false)
	})
	eng.RunUntil(eng.Now().Add(10 * time.Minute)) // session ends, machine may stay on
	if mc.m.Powered() && mc.kind == kindNone {
		cycles := mc.m.Disk.PowerCycleCount(eng.Now())
		done := false
		md.claim(eng, mc, func(e *sim.Engine) { done = true })
		if !done {
			t.Error("claim of powered idle machine was not immediate")
		}
		if got := mc.m.Disk.PowerCycleCount(eng.Now()); got != cycles {
			t.Error("claim of powered machine cycled the disk")
		}
	}
}

func TestClaimPendingPanics(t *testing.T) {
	md, _, eng := oneLabModel(4)
	mc := md.byLab["T01"][3]
	md.claim(eng, mc, func(*sim.Engine) {})
	defer func() {
		if recover() == nil {
			t.Error("claim of pending machine did not panic")
		}
	}()
	md.claim(eng, mc, func(*sim.Engine) {})
}

func TestEndSessionWithoutSessionPanics(t *testing.T) {
	md, _, eng := oneLabModel(5)
	mc := md.byLab["T01"][0]
	defer func() {
		if recover() == nil {
			t.Error("endSession without session did not panic")
		}
	}()
	md.endSession(eng, mc, endOpts{})
}

func TestFastLabsPreferred(t *testing.T) {
	// Two labs, same size, very different performance: arrivals must land
	// disproportionately on the fast one.
	specs := []lab.Spec{
		{Name: "FAST", Machines: 8, CPUModel: "P4", CPUGHz: 2.6, RAMMB: 512,
			DiskGB: 55.8, IntIndex: 39.3, FPIndex: 36.7, BaseImgGB: 16},
		{Name: "SLOW", Machines: 8, CPUModel: "PIII", CPUGHz: 0.65, RAMMB: 128,
			DiskGB: 14.5, IntIndex: 13.7, FPIndex: 12.2, BaseImgGB: 9},
	}
	fleet := lab.Build(specs, 6, lab.DefaultDiskLife())
	cfg := DefaultConfig(6)
	cfg.WeekdayClassMeanPerLab = 0
	cfg.SaturdayClassMeanPerLab = 0
	cfg.CPUHogLabs = nil
	cfg.PhantomPerOpenHour = 0
	md := NewModel(cfg, fleet)
	eng := sim.New(monday)
	end := monday.AddDate(0, 0, 5)
	md.Install(eng, monday, end)
	eng.RunUntil(end)

	count := func(lb string) int {
		n := 0
		for _, m := range fleet.ByLab[lb] {
			n += len(m.SessionLog)
		}
		return n
	}
	fast, slow := count("FAST"), count("SLOW")
	if fast <= slow {
		t.Errorf("lab preference inverted: FAST=%d SLOW=%d sessions", fast, slow)
	}
	if slow == 0 {
		t.Error("slow lab never used (preference too absolute)")
	}
}

func TestSessionDurationDistribution(t *testing.T) {
	md, _, _ := oneLabModel(7)
	var quickN, longN int
	var sum time.Duration
	const draws = 5000
	for i := 0; i < draws; i++ {
		quick := md.arrivals.Bool(md.cfg.QuickSessionProb)
		d := md.drawSessionDuration(quick)
		if quick {
			quickN++
			if d < md.cfg.QuickSessionLo || d > md.cfg.QuickSessionHi {
				t.Fatalf("quick duration %v out of bounds", d)
			}
			continue
		}
		longN++
		sum += d
		if d < md.cfg.SessionMin || d > md.cfg.SessionMax {
			t.Fatalf("duration %v out of bounds", d)
		}
	}
	mean := sum / time.Duration(longN)
	// Log-normal with clamping lands near the configured mean.
	if mean < md.cfg.SessionMean*2/3 || mean > md.cfg.SessionMean*4/3 {
		t.Errorf("mean session = %v, configured %v", mean, md.cfg.SessionMean)
	}
	frac := float64(quickN) / draws
	if frac < md.cfg.QuickSessionProb-0.03 || frac > md.cfg.QuickSessionProb+0.03 {
		t.Errorf("quick fraction = %v", frac)
	}
}

func TestCrashRebootRelogsUser(t *testing.T) {
	specs := []lab.Spec{{
		Name: "T01", Machines: 1, CPUModel: "P4", CPUGHz: 2.4,
		RAMMB: 512, DiskGB: 74.5, IntIndex: 30, FPIndex: 33, BaseImgGB: 20,
	}}
	fleet := lab.Build(specs, 8, lab.DefaultDiskLife())
	cfg := DefaultConfig(8)
	cfg.ArrivalPeakPerHour = 0
	cfg.PhantomPerOpenHour = 0
	cfg.WeekdayClassMeanPerLab = 0
	cfg.SaturdayClassMeanPerLab = 0
	cfg.CPUHogLabs = nil
	cfg.CrashRatePerHour = 50 // crash almost immediately
	md := NewModel(cfg, fleet)
	eng := sim.New(monday.Add(10 * time.Hour))
	mc := md.byLab["T01"][0]
	md.claim(eng, mc, func(e *sim.Engine) {
		md.beginSession(e, mc, "victim", kindFree, md.drawProfile(mc.spec, false), 8*time.Hour, false)
	})
	eng.RunUntil(eng.Now().Add(2 * time.Hour))
	if md.Crashes == 0 {
		t.Fatal("no crash at rate 50/h")
	}
	m := fleet.Machines[0]
	// The crash closed the first session in the ground truth log.
	found := false
	for _, s := range m.SessionLog {
		if s.User == "victim" {
			found = true
		}
	}
	if !found {
		t.Error("crashed session not logged")
	}
	if len(m.PowerLog) == 0 {
		t.Error("crash did not record a power session")
	}
}
