package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99} {
		h.Add(x)
	}
	want := []int64{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.BinWidth() != 2 {
		t.Errorf("BinWidth = %v", h.BinWidth())
	}
	if h.BinLo(3) != 6 {
		t.Errorf("BinLo(3) = %v", h.BinLo(3))
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-1)
	h.Add(10) // hi is exclusive
	h.Add(100)
	h.Add(5)
	if h.Under() != 1 || h.Over() != 2 {
		t.Errorf("under=%d over=%d", h.Under(), h.Over())
	}
	if got := h.InRangeFraction(); got != 0.25 {
		t.Errorf("InRangeFraction = %v, want 0.25", got)
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 1)
	if h.InRangeFraction() != 0 {
		t.Error("empty histogram fraction != 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(10, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramNeverLosesObservations(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 17)
		n := int64(0)
		for _, x := range xs {
			if x != x { // NaN would be ambiguous; skip
				continue
			}
			h.Add(x)
			n++
		}
		return h.Total()+h.Under()+h.Over() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(99)
	s := h.String()
	if !strings.Contains(s, "####") {
		t.Errorf("expected full bar in:\n%s", s)
	}
	if !strings.Contains(s, "inf") {
		t.Errorf("expected overflow line in:\n%s", s)
	}
}
