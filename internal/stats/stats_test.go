package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.StdDev() != 0 || r.Var() != 0 {
		t.Errorf("zero Running not neutral: %v", r)
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(42)
	if r.N() != 1 || r.Mean() != 42 || r.StdDev() != 0 {
		t.Errorf("single observation: %v", r)
	}
	if r.Min() != 42 || r.Max() != 42 {
		t.Errorf("min/max: %v", r)
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		r.Add(xs[i])
	}
	if !almostEq(r.Mean(), Mean(xs), 1e-9) {
		t.Errorf("mean %v != %v", r.Mean(), Mean(xs))
	}
	if !almostEq(r.StdDev(), StdDev(xs), 1e-9) {
		t.Errorf("sd %v != %v", r.StdDev(), StdDev(xs))
	}
	if r.Sum() < 6500 || r.Sum() > 7500 {
		t.Errorf("sum %v implausible", r.Sum())
	}
}

func TestRunningMergeProperty(t *testing.T) {
	// Merging two accumulators must equal accumulating the concatenation.
	// Inputs are folded into a moderate range: squared terms of 1e308-scale
	// values overflow float64 in any variance algorithm, which is not the
	// property under test.
	fold := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e6)
	}
	f := func(a, b []float64) bool {
		var ra, rb, rc Running
		for _, x := range a {
			x = fold(x)
			ra.Add(x)
			rc.Add(x)
		}
		for _, x := range b {
			x = fold(x)
			rb.Add(x)
			rc.Add(x)
		}
		m := ra.Merge(rb)
		if m.N() != rc.N() {
			return false
		}
		if m.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(rc.Mean()))
		return almostEq(m.Mean(), rc.Mean(), tol) &&
			almostEq(m.Var(), rc.Var(), 1e-4*(1+rc.Var())) &&
			m.Min() == rc.Min() && m.Max() == rc.Max()
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	for i := 0; i < 5; i++ {
		a.Add(3)
	}
	b.AddN(3, 5)
	if a.Mean() != b.Mean() || a.N() != b.N() || !almostEq(a.Var(), b.Var(), 1e-12) {
		t.Errorf("AddN mismatch: %v vs %v", a, b)
	}
	b.AddN(10, 0) // no-op
	if b.N() != 5 {
		t.Errorf("AddN(x, 0) changed count")
	}
}

func TestSampleVariance(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if !almostEq(r.Var(), 4, 1e-12) {
		t.Errorf("population var = %v, want 4", r.Var())
	}
	if !almostEq(r.SampleVar(), 32.0/7, 1e-12) {
		t.Errorf("sample var = %v, want %v", r.SampleVar(), 32.0/7)
	}
	if !almostEq(r.SampleStdDev(), math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("sample sd = %v", r.SampleStdDev())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 9}, {0.5, 5}, {0.25, 3}, {0.75, 7},
		{-0.5, 1}, {1.5, 9},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Median(xs); got != 5 {
		t.Errorf("Median = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 9 {
		t.Errorf("Quantile sorted the caller's slice")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.3); !almostEq(got, 3, 1e-12) {
		t.Errorf("interpolated quantile = %v, want 3", got)
	}
}

func TestNines(t *testing.T) {
	cases := []struct{ ratio, want float64 }{
		{0.9, 1}, {0.99, 2}, {0.999, 3}, {0, 0}, {-1, 0},
	}
	for _, c := range cases {
		if got := Nines(c.ratio); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Nines(%v) = %v, want %v", c.ratio, got, c.want)
		}
	}
	if got := Nines(1); got != 9 {
		t.Errorf("Nines(1) = %v, want clamp to 9", got)
	}
	if got := Nines(1.5); got != 9 {
		t.Errorf("Nines(1.5) = %v, want clamp to 9", got)
	}
}

func TestNinesMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1)
		b = math.Mod(math.Abs(b), 1)
		if a > b {
			a, b = b, a
		}
		return Nines(a) <= Nines(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp broken")
	}
}

func TestMeanStdDevEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton != 0")
	}
}
