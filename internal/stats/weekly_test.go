package stats

import (
	"testing"
	"time"
)

// monday is a Monday 00:00 UTC.
var monday = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC)

func TestWeekSlot(t *testing.T) {
	cases := []struct {
		t    time.Time
		want int
	}{
		{monday, 0},
		{monday.Add(15 * time.Minute), 1},
		{monday.Add(14 * time.Minute), 0},
		{monday.Add(24 * time.Hour), 96}, // Tuesday 00:00
		{monday.Add(6*24*time.Hour + 23*time.Hour + 45*time.Minute), SlotsPerWeek - 1}, // Sunday 23:45
		{monday.AddDate(0, 0, 7), 0}, // next Monday wraps
	}
	for _, c := range cases {
		if got := WeekSlot(c.t); got != c.want {
			t.Errorf("WeekSlot(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestWeekSlotRange(t *testing.T) {
	for i := 0; i < 7*24*4; i++ {
		at := monday.Add(time.Duration(i) * 15 * time.Minute)
		got := WeekSlot(at)
		if got != i {
			t.Fatalf("slot(%v) = %d, want %d", at, got, i)
		}
	}
}

func TestSlotTime(t *testing.T) {
	if SlotTime(0) != 0 {
		t.Error("SlotTime(0)")
	}
	if SlotTime(96) != 24*time.Hour {
		t.Error("SlotTime(96)")
	}
}

func TestWeeklyProfileAggregation(t *testing.T) {
	var w WeeklyProfile
	// Two observations in slot 0 across two different weeks.
	w.Add(monday, 10)
	w.Add(monday.AddDate(0, 0, 7), 30)
	// One observation Tuesday 12:00.
	w.Add(monday.Add(36*time.Hour), 50)

	means := w.Means()
	if means[0] != 20 {
		t.Errorf("slot 0 mean = %v, want 20", means[0])
	}
	tueNoon := 96 + 12*4
	if means[tueNoon] != 50 {
		t.Errorf("tuesday noon mean = %v, want 50", means[tueNoon])
	}
	if got := w.MeanOfMeans(); got != 35 {
		t.Errorf("MeanOfMeans = %v, want 35 (equal slot weights)", got)
	}
	overall := w.Overall()
	if overall.N() != 3 || overall.Mean() != 30 {
		t.Errorf("Overall = %v", overall)
	}
}

func TestWeeklyProfileDayHour(t *testing.T) {
	var w WeeklyProfile
	// Fill all four slots of Monday 03:00.
	for q := 0; q < 4; q++ {
		w.Add(monday.Add(3*time.Hour+time.Duration(q)*15*time.Minute), float64(q))
	}
	dh := w.DayHourMeans()
	if dh[0][3] != 1.5 {
		t.Errorf("Monday 03h mean = %v, want 1.5", dh[0][3])
	}
	if dh[6][23] != 0 {
		t.Errorf("untouched slot mean = %v, want 0", dh[6][23])
	}
}

func TestWeeklyProfileEmpty(t *testing.T) {
	var w WeeklyProfile
	if w.MeanOfMeans() != 0 {
		t.Error("empty MeanOfMeans != 0")
	}
	if w.Overall().N() != 0 {
		t.Error("empty Overall has observations")
	}
}
