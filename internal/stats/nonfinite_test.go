package stats

import (
	"math"
	"testing"
	"time"
)

// The collectors occasionally emit garbage — a division by a zero
// uptime, a counter wrap turned into ±Inf — and one poisoned value must
// not NaN an entire table. The package-wide policy is skip-and-count:
// non-finite inputs are dropped, the Dropped counter records how many,
// and every statistic is computed over the finite values only.

func TestRunningSkipsNonFinite(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(math.NaN())
	r.Add(2)
	r.Add(math.Inf(1))
	r.Add(math.Inf(-1))
	r.Add(3)
	if r.N() != 3 {
		t.Fatalf("N = %d, want 3", r.N())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped())
	}
	if got := r.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if math.IsNaN(r.StdDev()) {
		t.Errorf("StdDev poisoned: %v", r.StdDev())
	}
}

func TestRunningAddNSkipsNonFinite(t *testing.T) {
	var r Running
	r.AddN(5, 4)
	r.AddN(math.NaN(), 7)
	r.AddN(math.Inf(1), 2)
	if r.N() != 4 {
		t.Errorf("N = %d, want 4", r.N())
	}
	if r.Dropped() != 9 {
		t.Errorf("Dropped = %d, want 9", r.Dropped())
	}
	if r.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
}

func TestRunningMergeCarriesDropped(t *testing.T) {
	var a, b, empty Running
	a.Add(1)
	a.Add(math.NaN())
	b.Add(math.Inf(1))
	b.Add(2)
	m := a.Merge(b)
	if m.N() != 2 || m.Dropped() != 2 {
		t.Errorf("merge: N=%d Dropped=%d, want 2/2", m.N(), m.Dropped())
	}
	// The fast paths (either side empty of finite values) must carry
	// dropped counts too.
	if got := empty.Merge(a).Dropped(); got != 1 {
		t.Errorf("empty.Merge(a).Dropped = %d, want 1", got)
	}
	if got := a.Merge(empty).Dropped(); got != 1 {
		t.Errorf("a.Merge(empty).Dropped = %d, want 1", got)
	}
	var justDrops Running
	justDrops.Add(math.NaN())
	if got := a.Merge(justDrops).Dropped(); got != 2 {
		t.Errorf("a.Merge(justDrops).Dropped = %d, want 2", got)
	}
}

func TestQuantileIgnoresNonFinite(t *testing.T) {
	xs := []float64{3, math.NaN(), 1, math.Inf(1), 2, math.Inf(-1)}
	if got := Quantile(xs, 0.5); got != 2 {
		t.Errorf("Quantile(…, 0.5) = %v, want 2", got)
	}
	// Input must not be reordered: Quantile sorts a filtered copy.
	if xs[0] != 3 || xs[2] != 1 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
	if got := Quantile([]float64{math.NaN(), math.Inf(1)}, 0.5); got != 0 {
		t.Errorf("Quantile(all non-finite) = %v, want 0", got)
	}
}

// TestHistogramNaNRegression pins the fixed panic: int(NaN) used to
// produce a huge negative bin index.
func TestHistogramNaNRegression(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN()) // panicked before the guard
	h.Add(math.Inf(1))
	h.Add(math.Inf(-1))
	h.Add(4)
	if all := h.Total() + h.Under() + h.Over(); all != 3 { // ±Inf still land in the out-of-range tallies
		t.Errorf("total observations = %d, want 3", all)
	}
	if h.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", h.Dropped())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 1, 3} {
		a.Add(x)
	}
	for _, x := range []float64{5, 7, 11, math.NaN()} {
		b.Add(x)
	}
	a.Merge(b)
	want := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 1, 3, 5, 7, 11, math.NaN()} {
		want.Add(x)
	}
	if a.Total() != want.Total() || a.Under() != want.Under() ||
		a.Over() != want.Over() || a.Dropped() != want.Dropped() {
		t.Errorf("merged tallies %d/%d/%d/%d, want %d/%d/%d/%d",
			a.Total(), a.Under(), a.Over(), a.Dropped(),
			want.Total(), want.Under(), want.Over(), want.Dropped())
	}
	for i := range a.Counts {
		if a.Counts[i] != want.Counts[i] {
			t.Errorf("bin %d: %d != %d", i, a.Counts[i], want.Counts[i])
		}
	}
	a.Merge(nil) // nil-safe no-op
	if a.Total() != want.Total() {
		t.Errorf("Merge(nil) changed counts")
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched histograms did not panic")
		}
	}()
	a := NewHistogram(0, 10, 5)
	a.Merge(NewHistogram(0, 10, 6))
}

func TestWeeklyProfileMerge(t *testing.T) {
	base := time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC) // a Monday
	var a, b, want WeeklyProfile
	for i := 0; i < 50; i++ {
		at := base.Add(time.Duration(i) * 37 * time.Minute)
		x := float64(i%13) * 1.5
		want.Add(at, x)
		if i%2 == 0 {
			a.Add(at, x)
		} else {
			b.Add(at, x)
		}
	}
	a.Merge(&b)
	for i := range a.Slots {
		if a.Slots[i].N() != want.Slots[i].N() {
			t.Fatalf("slot %d: N %d != %d", i, a.Slots[i].N(), want.Slots[i].N())
		}
		if math.Abs(a.Slots[i].Mean()-want.Slots[i].Mean()) > 1e-12 {
			t.Fatalf("slot %d: mean %v != %v", i, a.Slots[i].Mean(), want.Slots[i].Mean())
		}
	}
}
