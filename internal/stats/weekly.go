package stats

import "time"

// SlotsPerWeek is the number of 15-minute slots in one week, the resolution
// of the paper's weekly-distribution figures (Figures 5 and 6).
const SlotsPerWeek = 7 * 24 * 4

// SlotDuration is the width of one weekly-profile slot.
const SlotDuration = 15 * time.Minute

// WeeklyProfile accumulates observations keyed by their position within the
// week (15-minute resolution, week starting Monday 00:00) and reports the
// per-slot mean. It reproduces the aggregation behind the paper's weekly
// distribution plots.
type WeeklyProfile struct {
	Slots [SlotsPerWeek]Running
}

// WeekSlot maps a time to its 15-minute slot index within the week.
// Slot 0 is Monday 00:00–00:15, matching the paper's Monday-labelled x axes.
func WeekSlot(t time.Time) int {
	wd := int(t.Weekday()) // Sunday = 0
	day := (wd + 6) % 7    // Monday = 0
	return day*24*4 + t.Hour()*4 + t.Minute()/15
}

// SlotTime returns the offset from Monday 00:00 of the start of slot i.
func SlotTime(i int) time.Duration {
	return time.Duration(i) * SlotDuration
}

// Add records an observation at time t.
func (w *WeeklyProfile) Add(t time.Time, x float64) {
	w.Slots[WeekSlot(t)].Add(x)
}

// Merge folds another profile into w slot by slot, as if every
// observation had been added to w. Used to combine the per-shard
// profiles of a partitioned stream.
func (w *WeeklyProfile) Merge(o *WeeklyProfile) {
	for i := range w.Slots {
		w.Slots[i] = w.Slots[i].Merge(o.Slots[i])
	}
}

// Means returns the per-slot means. Slots with no observations yield 0.
func (w *WeeklyProfile) Means() []float64 {
	out := make([]float64, SlotsPerWeek)
	for i := range w.Slots {
		out[i] = w.Slots[i].Mean()
	}
	return out
}

// MeanOfMeans averages the per-slot means across slots that received at
// least one observation. This equal-weights every time-of-week slot, which
// is how averages read off a weekly-distribution curve are computed.
func (w *WeeklyProfile) MeanOfMeans() float64 {
	var sum float64
	var n int
	for i := range w.Slots {
		if w.Slots[i].N() > 0 {
			sum += w.Slots[i].Mean()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Overall returns the accumulator over all raw observations regardless of
// slot (sample-weighted rather than slot-weighted).
func (w *WeeklyProfile) Overall() Running {
	var r Running
	for i := range w.Slots {
		r = r.Merge(w.Slots[i])
	}
	return r
}

// DayHourMeans collapses the profile to 7×24 hourly means, a convenient
// granularity for ASCII rendering.
func (w *WeeklyProfile) DayHourMeans() [7][24]float64 {
	var out [7][24]float64
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			var r Running
			for q := 0; q < 4; q++ {
				r = r.Merge(w.Slots[d*96+h*4+q])
			}
			out[d][h] = r.Mean()
		}
	}
	return out
}
