package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range are counted in the first/last bin (the paper's Figure 4 right plot
// truncates at 96 h the same way, reporting the tail mass separately).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int64
	under   int64 // observations below Lo
	over    int64 // observations at or above Hi
	dropped int64 // NaN observations, skipped (see Add)
}

// NewHistogram creates a histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// Add records one observation. ±Inf land in the under/over tallies via
// the ordinary range comparisons; NaN compares false against both edges
// and would previously fall through to the bin computation, where
// int(NaN) produces a huge negative index and a panic — it is counted
// in Dropped instead, matching Running's skip semantics.
func (h *Histogram) Add(x float64) {
	switch {
	case math.IsNaN(x):
		h.dropped++
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against float rounding at Hi
			i--
		}
		h.Counts[i]++
	}
}

// Merge adds o's counts into h. The histograms must have identical
// shape (same range, same bin count) — merging shards of a partitioned
// stream, not resampling.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		panic("stats: merging histograms of different shape")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.dropped += o.dropped
}

// Dropped returns the number of NaN observations that were skipped.
func (h *Histogram) Dropped() int64 { return h.dropped }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinLo returns the lower edge of bin i.
func (h *Histogram) BinLo(i int) float64 {
	return h.Lo + float64(i)*h.BinWidth()
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Under and Over report the out-of-range observation counts.
func (h *Histogram) Under() int64 { return h.under }

// Over reports the count of observations at or above Hi.
func (h *Histogram) Over() int64 { return h.over }

// InRangeFraction reports the fraction of all observations that fell inside
// [Lo, Hi). The paper reports, e.g., that sessions ≤ 96 h are 98.7% of all
// sessions.
func (h *Histogram) InRangeFraction() float64 {
	all := h.Total() + h.under + h.over
	if all == 0 {
		return 0
	}
	return float64(h.Total()) / float64(all)
}

// String renders a compact ASCII bar chart, one line per bin.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := int64(1)
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := int(math.Round(40 * float64(c) / float64(maxCount)))
		fmt.Fprintf(&b, "[%8.2f,%8.2f) %8d %s\n",
			h.BinLo(i), h.BinLo(i+1), c, strings.Repeat("#", bar))
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "[%8.2f,     inf) %8d\n", h.Hi, h.over)
	}
	return b.String()
}
