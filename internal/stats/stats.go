// Package stats provides the descriptive statistics used throughout the
// reproduction: streaming mean/variance (Welford), quantiles, histograms,
// weekly time profiles and availability "nines".
//
// All accumulators are plain values with useful zero states so they can be
// embedded in larger aggregation structures without constructors.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of float64 observations and reports count,
// mean, variance and standard deviation using Welford's online algorithm,
// which is numerically stable for long traces (583k+ samples).
//
// Non-finite observations (NaN, ±Inf) are skipped, not propagated: in a
// streaming aggregate there is no way to undo a poisoned mean after the
// fact, and a single NaN would silently corrupt the whole accumulator
// (NaN contaminates mean, m2, min and max through every subsequent Add).
// Skipped observations are counted and reported by Dropped so callers
// can surface data-quality problems instead of losing them.
type Running struct {
	n       int64
	mean    float64
	m2      float64
	min     float64
	max     float64
	dropped int64
}

// Add feeds one observation into the accumulator. Non-finite values are
// counted in Dropped and otherwise ignored.
func (r *Running) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		r.dropped++
		return
	}
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddN feeds the same observation n times. It is used when collapsing
// pre-aggregated buckets into a Running without replaying raw samples.
// Like Add, a non-finite observation is dropped (counted n times).
func (r *Running) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		r.dropped += n
		return
	}
	other := Running{n: n, mean: x, min: x, max: x}
	*r = r.Merge(other)
}

// Merge combines two accumulators as if all their observations had been
// added to a single one (Chan et al. parallel variance formula).
func (r Running) Merge(o Running) Running {
	if r.n == 0 {
		o.dropped += r.dropped
		return o
	}
	if o.n == 0 {
		r.dropped += o.dropped
		return r
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	return Running{
		n:       n,
		mean:    mean,
		m2:      m2,
		min:     math.Min(r.min, o.min),
		max:     math.Max(r.max, o.max),
		dropped: r.dropped + o.dropped,
	}
}

// N returns the number of observations.
func (r Running) N() int64 { return r.n }

// Dropped returns the number of non-finite observations that were
// skipped instead of accumulated.
func (r Running) Dropped() int64 { return r.dropped }

// Mean returns the arithmetic mean, or 0 for an empty accumulator.
func (r Running) Mean() float64 { return r.mean }

// Var returns the population variance, or 0 for fewer than 2 observations.
func (r Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVar returns the sample (Bessel-corrected) variance.
func (r Running) SampleVar() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the population standard deviation.
func (r Running) StdDev() float64 { return math.Sqrt(r.Var()) }

// SampleStdDev returns the sample standard deviation.
func (r Running) SampleStdDev() float64 { return math.Sqrt(r.SampleVar()) }

// Min returns the smallest observation, or 0 for an empty accumulator.
func (r Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 for an empty accumulator.
func (r Running) Max() float64 { return r.max }

// Sum returns the sum of all observations.
func (r Running) Sum() float64 { return r.mean * float64(r.n) }

// String renders the accumulator as "n=… mean=… sd=…" for debugging.
func (r Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
//
// Non-finite values are excluded before ranking, matching Running's
// skip semantics: sort.Float64s places NaNs at arbitrary positions
// (comparisons with NaN are false), so a single poisoned sample would
// otherwise shift every order statistic unpredictably, and a ±Inf would
// pin the extreme quantiles. An input with no finite values returns 0,
// like an empty one.
func Quantile(xs []float64, q float64) float64 {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			s = append(s, x)
		}
	}
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Nines converts an availability ratio in [0,1) to "nines":
// -log10(1-ratio). A 0.9 ratio is 1 nine, 0.99 is 2 nines. Ratios ≥ 1 are
// clamped to a large finite value so sorted plots stay finite.
func Nines(ratio float64) float64 {
	if ratio >= 1 {
		return 9 // effectively "always up" for plotting purposes
	}
	if ratio <= 0 {
		return 0
	}
	return -math.Log10(1 - ratio)
}

// Clamp bounds x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
