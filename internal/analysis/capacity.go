package analysis

import (
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// CapacityReport quantifies the paper's concluding claims about harvestable
// memory and disk: "memory idleness is also noticeable especially in
// machines fitted with 512 MB", "free space storage among monitored
// machines is impressive" — the raw material for network-RAM schemes and
// distributed backup / local data grids (§6).
type CapacityReport struct {
	// Memory.
	AvgFreeRAMMBPerMachine float64         // over powered machines
	FleetFreeRAMGB         float64         // average simultaneously-free memory fleet-wide
	FreeRAMByClass         map[int]float64 // RAM size (MB) → avg free MB per machine

	// Disk.
	AvgFreeDiskGBPerMachine float64
	FleetFreeDiskTB         float64 // average simultaneously-free disk fleet-wide

	// Availability context: capacity is only harvestable while powered.
	AvgPoweredMachines float64
}

// Capacity computes the memory/disk idleness report.
func Capacity(d *trace.Dataset) CapacityReport {
	ramByID := make(map[string]int, len(d.Machines))
	for _, m := range d.Machines {
		ramByID[m.ID] = m.RAMMB
	}
	var freeRAM, freeDisk stats.Running
	classAcc := map[int]*stats.Running{}
	perIter := map[int]*struct {
		ramMB  float64
		diskGB float64
		on     int
	}{}
	for i := range d.Samples {
		s := &d.Samples[i]
		ram := ramByID[s.Machine]
		freeMB := float64(ram) * (100 - float64(s.MemLoadPct)) / 100
		freeRAM.Add(freeMB)
		freeDisk.Add(s.FreeDiskGB)
		if acc := classAcc[ram]; acc == nil {
			classAcc[ram] = &stats.Running{}
		}
		classAcc[ram].Add(freeMB)
		it := perIter[s.Iter]
		if it == nil {
			it = &struct {
				ramMB  float64
				diskGB float64
				on     int
			}{}
			perIter[s.Iter] = it
		}
		it.ramMB += freeMB
		it.diskGB += s.FreeDiskGB
		it.on++
	}
	var iterRAM, iterDisk, iterOn stats.Running
	for _, it := range d.Iterations {
		acc := perIter[it.Iter]
		if acc == nil {
			iterRAM.Add(0)
			iterDisk.Add(0)
			iterOn.Add(0)
			continue
		}
		iterRAM.Add(acc.ramMB)
		iterDisk.Add(acc.diskGB)
		iterOn.Add(float64(acc.on))
	}
	rep := CapacityReport{
		AvgFreeRAMMBPerMachine:  freeRAM.Mean(),
		FleetFreeRAMGB:          iterRAM.Mean() / 1024,
		FreeRAMByClass:          map[int]float64{},
		AvgFreeDiskGBPerMachine: freeDisk.Mean(),
		FleetFreeDiskTB:         iterDisk.Mean() / 1024,
		AvgPoweredMachines:      iterOn.Mean(),
	}
	for ram, acc := range classAcc {
		rep.FreeRAMByClass[ram] = acc.Mean()
	}
	return rep
}

// UnusedMemoryPct returns the paper's headline "unused memory averaging
// 42.1%": 100 minus the overall mean RAM load.
func UnusedMemoryPct(d *trace.Dataset, threshold time.Duration) float64 {
	t2 := MainResults(d, threshold)
	return 100 - t2.Both.RAMLoadPct
}
