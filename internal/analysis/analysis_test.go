package analysis

import (
	"testing"
	"time"

	"winlab/internal/trace"
)

var t0 = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC) // Monday 00:00

// builder assembles synthetic datasets with exact, hand-checkable metrics.
type builder struct {
	d    *trace.Dataset
	iter map[int]bool
}

func newBuilder(days int, machines ...string) *builder {
	b := &builder{
		d: &trace.Dataset{
			Start:  t0,
			End:    t0.AddDate(0, 0, days),
			Period: 15 * time.Minute,
		},
		iter: map[int]bool{},
	}
	for _, id := range machines {
		b.d.Machines = append(b.d.Machines, trace.MachineInfo{
			ID: id, Lab: "L01", RAMMB: 512, DiskGB: 74.5, IntIndex: 30, FPIndex: 34,
		})
	}
	return b
}

// sample appends a sample at iteration iter for the machine, booted at
// boot, idle for idleFrac of the time since boot, with an optional session
// started at sess.
func (b *builder) sample(iter int, id string, boot time.Time, idleFrac float64, user string, sess time.Time) *trace.Sample {
	at := t0.Add(time.Duration(iter) * 15 * time.Minute)
	up := at.Sub(boot)
	s := trace.Sample{
		Iter:     iter,
		Time:     at,
		Machine:  id,
		Lab:      "L01",
		BootTime: boot,
		Uptime:   up,
		CPUIdle:  time.Duration(idleFrac * float64(up)),
		DiskGB:   74.5,
	}
	if user != "" {
		s.SessionUser = user
		s.SessionStart = sess
	}
	b.d.Samples = append(b.d.Samples, s)
	if !b.iter[iter] {
		b.iter[iter] = true
		b.d.Iterations = append(b.d.Iterations, trace.Iteration{
			Iter:      iter,
			Start:     at,
			Attempted: len(b.d.Machines),
		})
	}
	for i := range b.d.Iterations {
		if b.d.Iterations[i].Iter == iter {
			b.d.Iterations[i].Responded++
		}
	}
	return &b.d.Samples[len(b.d.Samples)-1]
}

func TestClassify(t *testing.T) {
	s := trace.Sample{Time: t0.Add(12 * time.Hour)}
	if got := Classify(&s, DefaultForgottenThreshold); got != NoLogin {
		t.Errorf("no session classified %v", got)
	}
	s.SessionUser = "u"
	s.SessionStart = t0.Add(4 * time.Hour) // 8 h old
	if got := Classify(&s, DefaultForgottenThreshold); got != WithLogin {
		t.Errorf("8h session classified %v", got)
	}
	s.SessionStart = t0 // 12 h old
	if got := Classify(&s, DefaultForgottenThreshold); got != Forgotten {
		t.Errorf("12h session classified %v", got)
	}
	if got := Classify(&s, 0); got != WithLogin {
		t.Errorf("zero threshold classified %v", got)
	}
	if Forgotten.Occupied() || !WithLogin.Occupied() || NoLogin.Occupied() {
		t.Error("Occupied() wrong")
	}
	for _, c := range []Class{NoLogin, WithLogin, Forgotten, Class(99)} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestReclassify(t *testing.T) {
	b := newBuilder(1, "M1")
	boot := t0
	b.sample(1, "M1", boot, 0.9, "", time.Time{})
	b.sample(2, "M1", boot, 0.9, "u", t0)   // 30 m old: kept
	b.sample(48, "M1", boot, 0.99, "u", t0) // 12 h old: reclassified
	st := Reclassify(b.d, DefaultForgottenThreshold)
	if st.RawLoginSamples != 2 || st.Reclassified != 1 {
		t.Errorf("Reclassify = %+v", st)
	}
}

func TestMainResultsExactSplit(t *testing.T) {
	b := newBuilder(1, "M1", "M2")
	boot := t0
	// M1 idles at 90%; no session.
	prev := 0.0
	_ = prev
	for i := 1; i <= 4; i++ {
		b.sample(i, "M1", boot, 0.90, "", time.Time{})
	}
	// M2 runs a session from boot, 60% idle.
	for i := 1; i <= 4; i++ {
		b.sample(i, "M2", boot, 0.60, "u", boot)
	}
	t2 := MainResults(b.d, DefaultForgottenThreshold)
	if t2.NoLogin.Samples != 4 || t2.WithLogin.Samples != 4 || t2.Both.Samples != 8 {
		t.Fatalf("sample split: %d/%d/%d", t2.NoLogin.Samples, t2.WithLogin.Samples, t2.Both.Samples)
	}
	// Cumulative idle at constant fraction f yields interval idleness f.
	if got := t2.NoLogin.CPUIdlePct; got < 89.9 || got > 90.1 {
		t.Errorf("no-login idle = %v, want 90", got)
	}
	if got := t2.WithLogin.CPUIdlePct; got < 59.9 || got > 60.1 {
		t.Errorf("with-login idle = %v, want 60", got)
	}
	if got := t2.Both.CPUIdlePct; got < 74.9 || got > 75.1 {
		t.Errorf("both idle = %v, want 75", got)
	}
	// Uptime percentages: 4 iterations × 2 machines attempted = 8 attempts.
	if got := t2.Both.UptimePct; got != 100 {
		t.Errorf("both uptime = %v, want 100", got)
	}
	if got := t2.NoLogin.UptimePct; got != 50 {
		t.Errorf("no-login uptime = %v, want 50", got)
	}
}

func TestMainResultsForgottenGoesToNoLogin(t *testing.T) {
	b := newBuilder(2, "M1")
	boot := t0
	for i := 1; i <= 50; i++ { // sessions age past 10 h by iteration 41
		b.sample(i, "M1", boot, 0.95, "u", boot)
	}
	t2 := MainResults(b.d, DefaultForgottenThreshold)
	if t2.Reclass.Reclassified == 0 {
		t.Fatal("nothing reclassified")
	}
	wantNo := t2.Reclass.Reclassified
	if t2.NoLogin.Samples != wantNo {
		t.Errorf("no-login samples = %d, want %d (the forgotten ones)", t2.NoLogin.Samples, wantNo)
	}
	if t2.WithLogin.Samples+t2.NoLogin.Samples != t2.Both.Samples {
		t.Error("split does not add up")
	}
}

func TestIntervalsSkipReboots(t *testing.T) {
	b := newBuilder(1, "M1")
	b.sample(1, "M1", t0, 0.5, "", time.Time{})
	b.sample(2, "M1", t0.Add(20*time.Minute), 0.5, "", time.Time{}) // rebooted
	t2 := MainResults(b.d, DefaultForgottenThreshold)
	if t2.Both.CPUIdlePct != 0 || t2.Both.Samples != 2 {
		// No valid interval: idle stays at accumulator zero.
		t.Errorf("reboot-crossing interval used: %+v", t2.Both)
	}
}

func TestSessionAgeProfile(t *testing.T) {
	b := newBuilder(2, "M1", "M2")
	boot := t0
	// M1: active session, 85% idle, all samples within age < 2 h.
	for i := 1; i <= 8; i++ {
		b.sample(i, "M1", boot, 0.85, "u", boot)
	}
	// M2: forgotten-style session, 99.8% idle, ages 0..12 h.
	for i := 1; i <= 48; i++ {
		b.sample(i, "M2", boot, 0.998, "v", boot)
	}
	p := SessionAge(b.d, 24)
	if len(p.Buckets) != 24 {
		t.Fatalf("buckets = %d", len(p.Buckets))
	}
	if p.Buckets[0].Samples == 0 || p.Buckets[11].Samples == 0 {
		t.Fatal("expected samples in buckets 0 and 11")
	}
	if p.Buckets[0].CPUIdlePct >= 99 {
		t.Errorf("bucket 0 idle = %v (should mix the active session)", p.Buckets[0].CPUIdlePct)
	}
	if p.Buckets[11].CPUIdlePct < 99 {
		t.Errorf("bucket 11 idle = %v (pure forgotten)", p.Buckets[11].CPUIdlePct)
	}
	h := p.FirstBucketAtOrAbove(99)
	if h < 2 || h > 11 {
		t.Errorf("threshold bucket = %d", h)
	}
	// Ages beyond the cap fold into the last bucket.
	if p.Buckets[23].Samples == 0 {
		t.Log("note: no samples beyond 23 h (fine for this fixture)")
	}
}

func TestAvailabilitySeries(t *testing.T) {
	b := newBuilder(1, "M1", "M2", "M3")
	boot := t0
	b.sample(1, "M1", boot, 0.9, "", time.Time{})
	b.sample(1, "M2", boot, 0.9, "u", boot.Add(14*time.Minute))
	b.sample(2, "M1", boot, 0.9, "", time.Time{})
	av := Availability(b.d, DefaultForgottenThreshold)
	if len(av.Points) != 2 {
		t.Fatalf("points = %d", len(av.Points))
	}
	if av.Points[0].PoweredOn != 2 || av.Points[0].UserFree != 1 {
		t.Errorf("iter 1: %+v", av.Points[0])
	}
	if av.Points[1].PoweredOn != 1 || av.Points[1].UserFree != 1 {
		t.Errorf("iter 2: %+v", av.Points[1])
	}
	if av.AvgPoweredOn != 1.5 || av.AvgUserFree != 1 {
		t.Errorf("averages: %v/%v", av.AvgPoweredOn, av.AvgUserFree)
	}
}

func TestUptimeRatios(t *testing.T) {
	b := newBuilder(1, "M1", "M2")
	boot := t0
	for i := 1; i <= 8; i++ {
		b.sample(i, "M1", boot, 0.9, "", time.Time{})
		if i <= 4 {
			b.sample(i, "M2", boot, 0.9, "", time.Time{})
		}
	}
	us := UptimeRatios(b.d)
	if len(us) != 2 {
		t.Fatalf("ratios = %d", len(us))
	}
	if us[0].Machine != "M1" || us[0].Ratio != 1 {
		t.Errorf("top machine %+v", us[0])
	}
	if us[1].Machine != "M2" || us[1].Ratio != 0.5 {
		t.Errorf("second machine %+v", us[1])
	}
	if us[1].Nines <= 0.3 || us[1].Nines >= 0.31 {
		t.Errorf("nines(0.5) = %v", us[1].Nines)
	}
	if CountAbove(us, 0.6) != 1 || CountAbove(us, 0.4) != 2 {
		t.Error("CountAbove wrong")
	}
	if UptimeRatios(&trace.Dataset{}) != nil {
		t.Error("empty dataset should yield nil")
	}
}

// TestUptimeRatiosDuplicateSamples is the regression test for the
// overcounting bug: a trace carrying duplicate samples for one machine
// in one iteration (collector retry bug, careless merge) used to count
// raw samples in the numerator, inflating the ratio beyond 1. The fixed
// numerator counts distinct iterations answered, so duplicates are
// invisible to the ratio.
func TestUptimeRatiosDuplicateSamples(t *testing.T) {
	b := newBuilder(1, "M1", "M2")
	boot := t0
	for i := 1; i <= 4; i++ {
		b.sample(i, "M1", boot, 0.9, "", time.Time{})
		// M1 answers every iteration twice: 8 raw samples over 4
		// iterations. Pre-fix this yielded Ratio = 8/4 = 2.
		b.sample(i, "M1", boot, 0.9, "", time.Time{})
		if i <= 2 {
			b.sample(i, "M2", boot, 0.9, "", time.Time{})
		}
	}
	us := UptimeRatios(b.d)
	if len(us) != 2 {
		t.Fatalf("ratios = %d", len(us))
	}
	for _, u := range us {
		if u.Ratio > 1 {
			t.Errorf("machine %s Ratio = %v > 1: duplicate samples overcounted", u.Machine, u.Ratio)
		}
	}
	if us[0].Machine != "M1" || us[0].Ratio != 1 {
		t.Errorf("M1 with duplicates = %+v, want Ratio 1", us[0])
	}
	if us[1].Machine != "M2" || us[1].Ratio != 0.5 {
		t.Errorf("M2 = %+v, want Ratio 0.5", us[1])
	}
}

func TestDetectSessions(t *testing.T) {
	b := newBuilder(1, "M1")
	boot1 := t0
	boot2 := t0.Add(2 * time.Hour)
	b.sample(1, "M1", boot1, 0.9, "", time.Time{})
	b.sample(2, "M1", boot1, 0.9, "", time.Time{})
	b.sample(9, "M1", boot2, 0.9, "", time.Time{}) // reboot detected
	b.sample(10, "M1", boot2, 0.9, "", time.Time{})
	ss := DetectSessions(b.d)
	if len(ss) != 2 {
		t.Fatalf("sessions = %d, want 2", len(ss))
	}
	if ss[0].Length != 30*time.Minute { // uptime at iteration 2
		t.Errorf("session 1 length = %v", ss[0].Length)
	}
	if ss[1].Samples != 2 {
		t.Errorf("session 2 samples = %d", ss[1].Samples)
	}
}

func TestSessionsStats(t *testing.T) {
	b := newBuilder(5, "M1", "M2")
	// M1: one ~110-hour session (beyond the 96 h cap).
	boot := t0
	for i := 0; i <= 440; i += 40 {
		b.sample(i+1, "M1", boot, 0.9, "", time.Time{})
	}
	// M2: a 1-hour session.
	boot2 := t0
	for i := 1; i <= 4; i++ {
		b.sample(i, "M2", boot2, 0.9, "", time.Time{})
	}
	st := Sessions(b.d, 96*time.Hour, 24)
	if st.Count != 2 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.ShortFraction != 0.5 {
		t.Errorf("short fraction = %v, want 0.5", st.ShortFraction)
	}
	if st.ShortUptimeFraction >= 0.05 {
		t.Errorf("short uptime fraction = %v (the long session dominates)", st.ShortUptimeFraction)
	}
	if st.Hist.Over() != 1 {
		t.Errorf("histogram over = %d", st.Hist.Over())
	}
}

func TestPowerCyclesFromSMART(t *testing.T) {
	b := newBuilder(7, "M1")
	boot := t0
	s1 := b.sample(1, "M1", boot, 0.9, "", time.Time{})
	s1.PowerCycles = 100
	s1.PowerOnHours = 600
	boot2 := t0.Add(24 * time.Hour)
	s2 := b.sample(96+1, "M1", boot2, 0.9, "", time.Time{})
	s2.PowerCycles = 109 // 9 cycles after the first sample (+1 for its boot)
	s2.PowerOnHours = 650
	pc := PowerCycles(b.d)
	if pc.TotalCycles != 10 {
		t.Errorf("cycles = %d, want 10", pc.TotalCycles)
	}
	if pc.AvgPerMachine != 10 {
		t.Errorf("avg per machine = %v", pc.AvgPerMachine)
	}
	if pc.CyclesPerDay < 1.42 || pc.CyclesPerDay > 1.43 { // 10/7
		t.Errorf("cycles/day = %v", pc.CyclesPerDay)
	}
	// Window hours: 650-600 + uptime at first sample (15 m → 0.25 h).
	wantPerCycle := (50 + 0.25) / 10
	if got := pc.UptimePerCycle.Hours(); got < wantPerCycle-0.01 || got > wantPerCycle+0.01 {
		t.Errorf("uptime/cycle = %v h, want %v", got, wantPerCycle)
	}
	// Lifetime: 650/109.
	if got := pc.LifetimePerCycle.Hours(); got < 5.9 || got > 6.0 {
		t.Errorf("lifetime/cycle = %v h, want ≈5.96", got)
	}
	if pc.DetectedSessions != 2 {
		t.Errorf("detected sessions = %d", pc.DetectedSessions)
	}
	if pc.UndetectedRatio != 4 { // 10/2 - 1
		t.Errorf("undetected ratio = %v", pc.UndetectedRatio)
	}
}

func TestWeeklyProfilesFill(t *testing.T) {
	b := newBuilder(7, "M1")
	boot := t0
	for i := 1; i <= 96*7-1; i++ {
		s := b.sample(i, "M1", boot, 0.97, "", time.Time{})
		s.MemLoadPct = 55
		s.SwapLoadPct = 25
	}
	w := Weekly(b.d)
	slot, idle := w.MinCPUIdleSlot()
	if slot < 0 {
		t.Fatal("no populated slot")
	}
	if idle < 96.9 || idle > 97.1 {
		t.Errorf("min idle = %v, want ≈97", idle)
	}
	if got := w.RAMLoadPct.Overall().Mean(); got != 55 {
		t.Errorf("ram mean = %v", got)
	}
	if d := SlotWeekday(0); d != time.Monday {
		t.Errorf("slot 0 weekday = %v", d)
	}
	if d := SlotWeekday(6 * 96); d != time.Sunday {
		t.Errorf("sunday slot weekday = %v", d)
	}
	h, m := SlotClock(96 + 4*13 + 2)
	if h != 13 || m != 30 {
		t.Errorf("SlotClock = %d:%02d", h, m)
	}
}

func TestEquivalenceExact(t *testing.T) {
	// Two machines with equal perf: one always on and fully idle, one off.
	// Equivalence must be ≈0.5, all of it in the free component.
	b := newBuilder(1, "M1", "M2")
	boot := t0
	for i := 1; i <= 10; i++ {
		b.sample(i, "M1", boot, 1.0, "", time.Time{})
	}
	eq := Equivalence(b.d, true)
	if eq.FreeRatio < 0.44 || eq.FreeRatio > 0.5 {
		t.Errorf("free ratio = %v, want ≈0.5", eq.FreeRatio)
	}
	if eq.OccupiedRatio != 0 {
		t.Errorf("occupied ratio = %v, want 0", eq.OccupiedRatio)
	}
	if eq.TotalRatio != eq.FreeRatio+eq.OccupiedRatio {
		t.Error("total != sum of parts")
	}
}

func TestEquivalencePerfWeighting(t *testing.T) {
	// A fast machine (index 60) idle and a slow one (index 20) off: the
	// weighted ratio is 60/80 = 0.75; unweighted it is 0.5.
	d := &trace.Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
		Machines: []trace.MachineInfo{
			{ID: "FAST", Lab: "L", IntIndex: 60, FPIndex: 60},
			{ID: "SLOW", Lab: "L", IntIndex: 20, FPIndex: 20},
		},
	}
	boot := t0
	for i := 1; i <= 10; i++ {
		at := t0.Add(time.Duration(i) * 15 * time.Minute)
		up := at.Sub(boot)
		d.Samples = append(d.Samples, trace.Sample{
			Iter: i, Time: at, Machine: "FAST", Lab: "L",
			BootTime: boot, Uptime: up, CPUIdle: up,
		})
		d.Iterations = append(d.Iterations, trace.Iteration{Iter: i, Start: at, Attempted: 2, Responded: 1})
	}
	weighted := Equivalence(d, true)
	unweighted := Equivalence(d, false)
	if weighted.TotalRatio < 0.66 || weighted.TotalRatio > 0.75 {
		t.Errorf("weighted = %v, want ≈0.75", weighted.TotalRatio)
	}
	if unweighted.TotalRatio < 0.44 || unweighted.TotalRatio > 0.5 {
		t.Errorf("unweighted = %v, want ≈0.5", unweighted.TotalRatio)
	}
	if weighted.TotalRatio <= unweighted.TotalRatio {
		t.Error("perf weighting did not favour the fast idle machine")
	}
}

func TestEquivalenceEmpty(t *testing.T) {
	eq := Equivalence(&trace.Dataset{}, true)
	if eq.TotalRatio != 0 {
		t.Error("empty dataset equivalence != 0")
	}
}

func TestFreeMachineHeat(t *testing.T) {
	s := AvailabilitySeries{Points: []AvailabilityPoint{
		{Time: t0.Add(10 * time.Hour), UserFree: 4},                  // Monday 10:00
		{Time: t0.AddDate(0, 0, 7).Add(10 * time.Hour), UserFree: 6}, // next Monday 10:00
		{Time: t0.AddDate(0, 0, 6).Add(3 * time.Hour), UserFree: 1},  // Sunday 03:00
	}}
	heat := FreeMachineHeat(s)
	if len(heat) != 168 {
		t.Fatalf("heat cells = %d", len(heat))
	}
	if heat[10] != 5 {
		t.Errorf("Monday 10h = %v, want 5", heat[10])
	}
	if heat[6*24+3] != 1 {
		t.Errorf("Sunday 03h = %v, want 1", heat[6*24+3])
	}
	if heat[50] != 0 {
		t.Errorf("untouched cell = %v", heat[50])
	}
}

func TestIdlenessWhen(t *testing.T) {
	b := newBuilder(1, "M1")
	boot := t0
	for i := 1; i <= 8; i++ {
		b.sample(i, "M1", boot, 0.999, "", time.Time{})
	}
	all := IdlenessWhen(b.d, func(time.Time) bool { return true })
	if all.N() != 7 || all.Mean() < 99.8 {
		t.Errorf("all-hours idleness: %v", all)
	}
	none := IdlenessWhen(b.d, func(time.Time) bool { return false })
	if none.N() != 0 {
		t.Errorf("empty predicate matched %d intervals", none.N())
	}
	// Samples sit at :15..2:00, intervals close at :30..2:00; a Before(1h)
	// window keeps the intervals closing at :30 and :45.
	firstHour := IdlenessWhen(b.d, func(at time.Time) bool { return at.Before(t0.Add(time.Hour)) })
	if firstHour.N() != 2 {
		t.Errorf("windowed idleness intervals = %d, want 2", firstHour.N())
	}
}
