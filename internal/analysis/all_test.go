package analysis

import (
	"reflect"
	"testing"
	"time"

	"winlab/internal/experiment"
)

// TestAllMatchesSerial is the determinism contract of the parallel
// driver: for several seeds, every artefact computed concurrently by All
// must be deep-equal (bit-identical floats included) to the serial
// function's output. Run under -race this also exercises the index's
// concurrent read paths.
func TestAllMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := experiment.Default(seed)
		cfg.Days = 3
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		d := res.Dataset

		got := All(d, Options{Workers: 4})

		if want := MainResults(d, DefaultForgottenThreshold); !reflect.DeepEqual(got.Table2, want) {
			t.Errorf("seed %d: Table2 parallel != serial", seed)
		}
		if want := SessionAge(d, 24); !reflect.DeepEqual(got.SessionAge, want) {
			t.Errorf("seed %d: SessionAge parallel != serial", seed)
		}
		if want := Availability(d, DefaultForgottenThreshold); !reflect.DeepEqual(got.Availability, want) {
			t.Errorf("seed %d: Availability parallel != serial", seed)
		}
		if want := UptimeRatios(d); !reflect.DeepEqual(got.Uptimes, want) {
			t.Errorf("seed %d: Uptimes parallel != serial", seed)
		}
		if want := Sessions(d, 96*time.Hour, 24); !reflect.DeepEqual(got.Sessions, want) {
			t.Errorf("seed %d: Sessions parallel != serial", seed)
		}
		if want := PowerCycles(d); !reflect.DeepEqual(got.PowerCycles, want) {
			t.Errorf("seed %d: PowerCycles parallel != serial", seed)
		}
		if want := Weekly(d); !reflect.DeepEqual(got.Weekly, want) {
			t.Errorf("seed %d: Weekly parallel != serial", seed)
		}
		if want := Equivalence(d, true); !reflect.DeepEqual(got.Equivalence, want) {
			t.Errorf("seed %d: Equivalence parallel != serial", seed)
		}
		if want := ByLab(d, DefaultForgottenThreshold); !reflect.DeepEqual(got.Labs, want) {
			t.Errorf("seed %d: Labs parallel != serial", seed)
		}
		if want := Capacity(d); !reflect.DeepEqual(got.Capacity, want) {
			t.Errorf("seed %d: Capacity parallel != serial", seed)
		}

		// Workers=1 runs the jobs inline and must agree too.
		serial := All(d, Options{Workers: 1})
		if !reflect.DeepEqual(got, serial) {
			t.Errorf("seed %d: All(Workers=4) != All(Workers=1)", seed)
		}

		// Spot-check the headline numbers the paper reports are present
		// and sane (the bit-identical checks above carry the real weight).
		if got.Table2.Both.UptimePct <= 0 || got.Table2.Both.CPUIdlePct <= 0 {
			t.Errorf("seed %d: degenerate Table2 %+v", seed, got.Table2.Both)
		}
		if got.Sessions.Count == 0 || got.Equivalence.TotalRatio <= 0 {
			t.Errorf("seed %d: degenerate sessions/equivalence", seed)
		}
	}
}

// TestAllDefaultOptions checks the zero Options value fills the paper's
// defaults rather than degenerate parameters.
func TestAllDefaultOptions(t *testing.T) {
	cfg := experiment.Default(1)
	cfg.Days = 2
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := All(res.Dataset, Options{})
	if got.Sessions.HistCap != 96*time.Hour {
		t.Errorf("HistCap default = %v", got.Sessions.HistCap)
	}
	if len(got.SessionAge.Buckets) != 24 {
		t.Errorf("SessionAge buckets = %d", len(got.SessionAge.Buckets))
	}
	if got.Table2.Threshold != DefaultForgottenThreshold {
		t.Errorf("threshold default = %v", got.Table2.Threshold)
	}
}
