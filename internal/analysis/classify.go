// Package analysis computes every result of the paper's evaluation from a
// monitoring trace: the forgotten-session reclassification (§4.2), the
// main results table (Table 2), the availability and stability analyses
// (Figures 3 and 4, §5.2), the weekly distributions (Figure 5) and the
// cluster-equivalence ratio (Figure 6, §5.4).
//
// Everything here consumes only trace.Dataset — the collected samples and
// per-iteration bookkeeping — never simulator internals, so the same code
// analyses a trace captured from live agents.
package analysis

import (
	"time"

	"winlab/internal/trace"
)

// DefaultForgottenThreshold is the session age at or beyond which the
// paper considers a login sample to come from a forgotten (abandoned)
// session and counts it as a non-occupied machine (§4.2).
const DefaultForgottenThreshold = 10 * time.Hour

// Class is the occupancy classification of a sample.
type Class int

// Sample classes.
const (
	NoLogin   Class = iota // no interactive session
	WithLogin              // interactive session, counted as real usage
	Forgotten              // session open but ≥ threshold old: reclassified
)

// Classify classifies one sample under the given forgotten-session
// threshold. A zero threshold disables reclassification (raw occupancy).
func Classify(s *trace.Sample, threshold time.Duration) Class {
	if !s.HasSession() {
		return NoLogin
	}
	if threshold > 0 && s.SessionAge() >= threshold {
		return Forgotten
	}
	return WithLogin
}

// Occupied reports whether the class counts as an occupied machine after
// reclassification: Forgotten samples count as non-occupied.
func (c Class) Occupied() bool { return c == WithLogin }

// String names the class.
func (c Class) String() string {
	switch c {
	case NoLogin:
		return "no-login"
	case WithLogin:
		return "with-login"
	case Forgotten:
		return "forgotten"
	default:
		return "unknown"
	}
}

// ReclassifyStats reports the §4.2 numbers: how many raw login samples
// there were and how many of them the threshold reclassified.
type ReclassifyStats struct {
	Threshold       time.Duration
	RawLoginSamples int // samples with an open session (277,513 in the paper)
	Reclassified    int // of those, session age ≥ threshold (87,830)
}

// Reclassify computes the reclassification statistics for a dataset.
func Reclassify(d *trace.Dataset, threshold time.Duration) ReclassifyStats {
	st := ReclassifyStats{Threshold: threshold}
	for i := range d.Samples {
		s := &d.Samples[i]
		if !s.HasSession() {
			continue
		}
		st.RawLoginSamples++
		if Classify(s, threshold) == Forgotten {
			st.Reclassified++
		}
	}
	return st
}
