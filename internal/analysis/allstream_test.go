package analysis

import (
	"bytes"
	"compress/gzip"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"winlab/internal/trace"
	"winlab/internal/trace/check"
	"winlab/internal/trace/stream"
)

// streamFixture builds a dataset that exercises every artefact: several
// labs and RAM classes, active and forgotten sessions, reboots, SMART
// counters, network counters, sampling gaps wider than 2×period, a
// catalogued machine that never answers, and an iteration with no
// samples.
func streamFixture() *trace.Dataset {
	b := newBuilder(3, "M1", "M2", "M3", "M4")
	b.d.Machines[1].Lab = "L02"
	b.d.Machines[1].RAMMB = 256
	b.d.Machines[2].Lab = "L02"
	b.d.Machines[3].Lab = "L03" // never answers
	boot1 := t0
	for i := 1; i <= 60; i++ {
		// M1: no login, reboots at iteration 30, one gap > 2×period.
		if i != 20 && i != 21 {
			boot := boot1
			if i >= 30 {
				boot = t0.Add(30 * 15 * time.Minute).Add(-3 * time.Minute)
			}
			s := b.sample(i, "M1", boot, 0.93, "", time.Time{})
			s.MemLoadPct = 30 + i%7
			s.SwapLoadPct = i % 5
			s.FreeDiskGB = 40 - float64(i)*0.01
			s.PowerCycles = int64(100 + i/30)
			s.PowerOnHours = int64(900 + i/4)
			s.SentBytes = uint64(i) * 10000
			s.RecvBytes = uint64(i) * 90000
		}
		// M2: session from boot, becomes forgotten past 10 h.
		s := b.sample(i, "M2", boot1, 0.71, "bob", boot1)
		s.MemLoadPct = 60
		s.SwapLoadPct = 10
		s.FreeDiskGB = 5.5
		s.PowerCycles = 300
		s.PowerOnHours = 4000
		// M3: answers every third iteration only.
		if i%3 == 0 {
			s := b.sample(i, "M3", boot1, 0.999, "", time.Time{})
			s.Lab = "L02"
			s.MemLoadPct = 15
			s.PowerCycles = int64(50 + i)
			s.PowerOnHours = int64(200 + i)
		}
	}
	// An iteration nobody answered.
	b.d.Iterations = append(b.d.Iterations, trace.Iteration{
		Iter: 99, Start: t0.Add(99 * 15 * time.Minute), Attempted: 4,
	})
	return b.d
}

// encodeTB freezes the dataset (the in-memory analysis order) and
// returns its canonical machine-contiguous TBv1 bytes.
func encodeTB(t *testing.T, d *trace.Dataset) []byte {
	t.Helper()
	d.Freeze()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, d); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func allStreamOver(t *testing.T, tb []byte, opts Options, runLimit int) *Results {
	t.Helper()
	c, err := stream.New(bytes.NewReader(tb))
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	if runLimit > 0 {
		c.RunLimit = runLimit
	}
	res, err := AllStream(c, opts)
	if err != nil {
		t.Fatalf("AllStream: %v", err)
	}
	return res
}

// TestAllStreamMatchesAll is the bit-exactness claim: sequential
// AllStream over the canonical TBv1 encoding reproduces All field for
// field, float bits included.
func TestAllStreamMatchesAll(t *testing.T) {
	d := streamFixture()
	want := All(d, Options{Workers: 1})
	tb := encodeTB(t, d)
	for _, limit := range []int{0, 1, 2, 7} {
		got := allStreamOver(t, tb, Options{Workers: 1}, limit)
		if diff := check.FirstDiff(want, got); diff != "" {
			t.Errorf("RunLimit=%d: AllStream diverges from All: %s", limit, diff)
		}
	}
}

// TestAllStreamNonDefaultOptions pins the option plumbing (threshold,
// histogram shape, session-age depth, unweighted equivalence).
func TestAllStreamNonDefaultOptions(t *testing.T) {
	d := streamFixture()
	opts := Options{
		Threshold:             4 * time.Hour,
		HistCap:               48 * time.Hour,
		HistBins:              12,
		SessionAgeHours:       8,
		UnweightedEquivalence: true,
		Workers:               1,
	}
	want := All(d, opts)
	got := allStreamOver(t, encodeTB(t, d), opts, 0)
	if diff := check.FirstDiff(want, got); diff != "" {
		t.Errorf("AllStream diverges from All: %s", diff)
	}
}

// TestAllStreamGzip runs the same differential through the gzip
// sniffing path.
func TestAllStreamGzip(t *testing.T) {
	d := streamFixture()
	want := All(d, Options{Workers: 1})
	tb := encodeTB(t, d)
	var gzBuf bytes.Buffer
	gw := gzip.NewWriter(&gzBuf)
	if _, err := gw.Write(tb); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	got := allStreamOver(t, gzBuf.Bytes(), Options{Workers: 1}, 0)
	if diff := check.FirstDiff(want, got); diff != "" {
		t.Errorf("AllStream(gzip) diverges from All: %s", diff)
	}
}

// approxEq checks relative closeness for the merged-float comparisons
// of the parallel test.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}

// TestAllStreamParallel: sharded accumulation keeps every integer
// artefact exact and every merged float within documented epsilon.
func TestAllStreamParallel(t *testing.T) {
	d := streamFixture()
	want := All(d, Options{Workers: 1})
	tb := encodeTB(t, d)
	for _, workers := range []int{2, 3, 8} {
		got := allStreamOver(t, tb, Options{Workers: workers}, 2)

		// Integer artefacts: exact.
		if got.Table2.Both.Samples != want.Table2.Both.Samples ||
			got.Table2.NoLogin.Samples != want.Table2.NoLogin.Samples ||
			got.Table2.WithLogin.Samples != want.Table2.WithLogin.Samples {
			t.Errorf("workers=%d: sample counts diverge", workers)
		}
		if got.Table2.Reclass != want.Table2.Reclass {
			t.Errorf("workers=%d: reclass %+v != %+v", workers, got.Table2.Reclass, want.Table2.Reclass)
		}
		if diff := check.FirstDiff(want.Availability, got.Availability); diff != "" {
			t.Errorf("workers=%d: availability: %s", workers, diff)
		}
		if got.Sessions.Count != want.Sessions.Count {
			t.Errorf("workers=%d: session count %d != %d", workers, got.Sessions.Count, want.Sessions.Count)
		}
		if diff := check.FirstDiff(want.Sessions.Hist.Counts, got.Sessions.Hist.Counts); diff != "" {
			t.Errorf("workers=%d: session histogram: %s", workers, diff)
		}
		if got.PowerCycles.TotalCycles != want.PowerCycles.TotalCycles ||
			got.PowerCycles.DetectedSessions != want.PowerCycles.DetectedSessions {
			t.Errorf("workers=%d: power cycles diverge", workers)
		}
		if diff := check.FirstDiff(want.Uptimes, got.Uptimes); diff != "" {
			t.Errorf("workers=%d: uptimes: %s", workers, diff)
		}

		// Merged floats: epsilon.
		pairs := [][2]float64{
			{want.Table2.Both.CPUIdlePct, got.Table2.Both.CPUIdlePct},
			{want.Table2.Both.RAMLoadPct, got.Table2.Both.RAMLoadPct},
			{want.Table2.NoLogin.SentBps, got.Table2.NoLogin.SentBps},
			{want.Sessions.Mean.Hours(), got.Sessions.Mean.Hours()},
			{want.Equivalence.TotalRatio, got.Equivalence.TotalRatio},
			{want.Capacity.AvgFreeRAMMBPerMachine, got.Capacity.AvgFreeRAMMBPerMachine},
			{want.Capacity.FleetFreeDiskTB, got.Capacity.FleetFreeDiskTB},
		}
		for i, p := range pairs {
			if !approxEq(p[0], p[1]) {
				t.Errorf("workers=%d: float artefact %d: %v != %v", workers, i, p[0], p[1])
			}
		}
		for lb := range want.Labs {
			if want.Labs[lb].Lab != got.Labs[lb].Lab || want.Labs[lb].Machines != got.Labs[lb].Machines {
				t.Errorf("workers=%d: lab %d identity diverges", workers, lb)
			}
			if !approxEq(want.Labs[lb].CPUIdlePct, got.Labs[lb].CPUIdlePct) {
				t.Errorf("workers=%d: lab %s cpu %v != %v", workers, want.Labs[lb].Lab,
					want.Labs[lb].CPUIdlePct, got.Labs[lb].CPUIdlePct)
			}
		}
	}
}

// TestAllStreamRejectsInterleaved: a TBv1 file whose machine runs are
// interleaved (written from an unfrozen dataset) must be rejected, not
// silently mis-analysed.
func TestAllStreamRejectsInterleaved(t *testing.T) {
	b := newBuilder(1, "M1", "M2")
	for i := 1; i <= 4; i++ { // builder appends M1,M2,M1,M2,... in iteration order
		b.sample(i, "M1", t0, 0.9, "", time.Time{})
		b.sample(i, "M2", t0, 0.9, "", time.Time{})
	}
	var buf bytes.Buffer // no Freeze: samples stay interleaved
	if err := trace.WriteBinary(&buf, b.d); err != nil {
		t.Fatal(err)
	}
	c, err := stream.New(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllStream(c, Options{Workers: 1}); err == nil {
		t.Fatal("interleaved stream accepted")
	}
	c2, err := stream.New(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllStream(c2, Options{Workers: 2}); err == nil {
		t.Fatal("interleaved stream accepted by parallel path")
	}
}

// bigTrace writes a machine-contiguous TBv1 trace with nMach machines ×
// nIter iterations to dir and returns its path and in-memory decoded
// size in bytes.
func bigTrace(t *testing.T, dir string, nMach, nIter int) (string, int64) {
	t.Helper()
	d := &trace.Dataset{
		Start:  t0,
		End:    t0.Add(time.Duration(nIter) * 15 * time.Minute),
		Period: 15 * time.Minute,
	}
	for m := 0; m < nMach; m++ {
		lab := "L0" + string(rune('1'+m%4))
		d.Machines = append(d.Machines, trace.MachineInfo{
			ID: "m" + string(rune('0'+m/100%10)) + string(rune('0'+m/10%10)) + string(rune('0'+m%10)),
			Lab: lab, RAMMB: 256 << (m % 2), DiskGB: 74.5, IntIndex: 30, FPIndex: 34,
		})
	}
	for i := 0; i < nIter; i++ {
		d.Iterations = append(d.Iterations, trace.Iteration{
			Iter: i, Start: t0.Add(time.Duration(i) * 15 * time.Minute),
			Attempted: nMach, Responded: nMach,
		})
	}
	// Machine-major generation: zero-padded IDs sort in generation
	// order, so the encoding is canonical without a Freeze.
	for m := 0; m < nMach; m++ {
		id, lab := d.Machines[m].ID, d.Machines[m].Lab
		boot := t0
		for i := 0; i < nIter; i++ {
			at := t0.Add(time.Duration(i) * 15 * time.Minute)
			if i%500 == 499 {
				boot = at.Add(-time.Minute)
			}
			up := at.Sub(boot)
			s := trace.Sample{
				Iter: i, Time: at, Machine: id, Lab: lab,
				BootTime: boot, Uptime: up,
				CPUIdle:     time.Duration(0.9 * float64(up)),
				MemLoadPct:  20 + (m+i)%60,
				SwapLoadPct: i % 10,
				DiskGB:      74.5, FreeDiskGB: 40 - float64(i%100)*0.1,
				PowerCycles: int64(100 + i/500), PowerOnHours: int64(1000 + i/4),
				SentBytes: uint64(i) * 5000, RecvBytes: uint64(i) * 42000,
			}
			if (m+i)%5 == 0 {
				s.SessionUser = "u"
				s.SessionStart = boot
			}
			d.Samples = append(d.Samples, s)
		}
	}
	decoded := int64(len(d.Samples)) * int64(unsafe.Sizeof(trace.Sample{}))
	path := filepath.Join(dir, "big.tb")
	if err := trace.WriteFile(path, d); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path, decoded
}

// TestAllStreamMemoryCeiling is the out-of-core gate (`make
// stream-smoke`): stream-analyze a trace whose decoded form is several
// times larger than an enforced soft memory limit, and assert the live
// heap never approaches the decoded size. This fails if any code path
// rematerialises the dataset.
func TestAllStreamMemoryCeiling(t *testing.T) {
	path, decoded := bigTrace(t, t.TempDir(), 64, 3000) // 192k samples, ~40 MB decoded
	const ceiling = 16 << 20
	if decoded < 2*ceiling {
		t.Fatalf("fixture too small: decoded %d B vs ceiling %d B", decoded, ceiling)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc
	old := debug.SetMemoryLimit(int64(baseline) + ceiling)
	defer debug.SetMemoryLimit(old)

	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var m runtime.MemStats
		for {
			runtime.ReadMemStats(&m)
			for {
				p := peak.Load()
				if m.HeapAlloc <= p || peak.CompareAndSwap(p, m.HeapAlloc) {
					break
				}
			}
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	c, err := stream.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := AllStream(c, Options{Workers: 1})
	done <- struct{}{}
	<-done
	if err != nil {
		t.Fatalf("AllStream: %v", err)
	}
	if res.Table2.Both.Samples != 64*3000 {
		t.Fatalf("samples = %d, want %d", res.Table2.Both.Samples, 64*3000)
	}

	grew := int64(peak.Load()) - int64(baseline)
	if grew > ceiling {
		t.Errorf("peak heap grew %d B over baseline, ceiling %d B (decoded trace is %d B)",
			grew, int64(ceiling), decoded)
	}
	t.Logf("decoded %0.1f MB, heap growth %0.1f MB (ceiling %d MB)",
		float64(decoded)/(1<<20), float64(grew)/(1<<20), ceiling>>20)
	_ = os.Remove(path)
}
