package analysis

import (
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// WeeklyProfiles is the Figure 5 data: the weekly distribution (15-minute
// slots, Monday-first) of CPU idleness, memory and swap load, and network
// rates.
type WeeklyProfiles struct {
	CPUIdlePct stats.WeeklyProfile
	RAMLoadPct stats.WeeklyProfile
	SwapLoad   stats.WeeklyProfile
	SentBps    stats.WeeklyProfile
	RecvBps    stats.WeeklyProfile
}

// Weekly computes the Figure 5 weekly distributions. Sample-level metrics
// (memory, swap) aggregate by sample slot; interval metrics (CPU idleness,
// network rates) aggregate by the slot of the closing sample.
func Weekly(d *trace.Dataset) *WeeklyProfiles {
	w := &WeeklyProfiles{}
	for i := range d.Samples {
		s := &d.Samples[i]
		w.RAMLoadPct.Add(s.Time, float64(s.MemLoadPct))
		w.SwapLoad.Add(s.Time, float64(s.SwapLoadPct))
	}
	for _, iv := range d.Index().Intervals(2 * d.Period) {
		w.CPUIdlePct.Add(iv.B.Time, iv.CPUIdlePct())
		w.SentBps.Add(iv.B.Time, iv.SentBps())
		w.RecvBps.Add(iv.B.Time, iv.RecvBps())
	}
	return w
}

// MinCPUIdleSlot returns the weekly slot with the lowest mean CPU idleness
// and its value — the paper's Tuesday-afternoon dip below 91%.
func (w *WeeklyProfiles) MinCPUIdleSlot() (slot int, idlePct float64) {
	slot, idlePct = -1, 101
	for i := range w.CPUIdlePct.Slots {
		r := &w.CPUIdlePct.Slots[i]
		if r.N() == 0 {
			continue
		}
		if m := r.Mean(); m < idlePct {
			idlePct = m
			slot = i
		}
	}
	return slot, idlePct
}

// SlotWeekday returns the weekday of a weekly slot (slot 0 is Monday).
func SlotWeekday(slot int) time.Weekday {
	day := slot / 96
	return time.Weekday((day + 1) % 7) // Monday-first → Go's Sunday-first
}

// SlotClock returns the time-of-day of the start of a weekly slot.
func SlotClock(slot int) (hour, minute int) {
	q := slot % 96
	return q / 4, (q % 4) * 15
}

// IdlenessWhen returns the CPU-idleness statistics over the intervals
// whose closing sample satisfies pred — e.g. "labs closed" hours. The
// paper's §5.3 observation that absolute idleness concentrates in nights
// and weekends is the comparison IdlenessWhen(closed) vs IdlenessWhen(open).
func IdlenessWhen(d *trace.Dataset, pred func(time.Time) bool) stats.Running {
	var r stats.Running
	for _, iv := range d.Index().Intervals(2 * d.Period) {
		if pred(iv.B.Time) {
			r.Add(iv.CPUIdlePct())
		}
	}
	return r
}
