package analysis

import (
	"winlab/internal/stats"
	"winlab/internal/trace"
)

// EquivalenceResult is the Figure 6 / §5.4 cluster-equivalence analysis:
// what fraction of an equally-sized *dedicated* cluster the harvestable
// idle CPU of the non-dedicated fleet is worth.
//
// Following Arpaci et al. as applied by the paper, a machine with i% CPU
// idleness counts as i% of a dedicated machine; machines are weighted by
// their NBench combined index (50% INT + 50% FP) to handle heterogeneity;
// powered-off machines contribute nothing. "Occupied" means an open
// interactive session at sample time (raw, unreclassified — an abandoned
// but open session is still usable idleness on an occupied machine).
type EquivalenceResult struct {
	// Means over all iterations.
	OccupiedRatio float64 // the paper reports 0.26
	FreeRatio     float64 // 0.25
	TotalRatio    float64 // 0.51 → the 2:1 rule

	// Weekly distribution of the total ratio and its components.
	Weekly         stats.WeeklyProfile
	WeeklyOccupied stats.WeeklyProfile
	WeeklyFree     stats.WeeklyProfile
}

// Equivalence computes the cluster-equivalence ratio of a trace. Machines
// with no NBench index metadata are skipped. Unweighted (perf index forced
// to 1 for every machine) behaviour is available via the normalize flag,
// which the ablation bench uses to quantify how much index-weighting
// matters.
// For traces with partial-lifetime machines (scenario fleet churn) the
// dedicated-cluster denominator is per-iteration: the comparison cluster
// at any instant is the fleet that existed at that instant, so a machine
// contributes to the denominator only while it is a fleet member.
// Full-lifetime traces keep the classic static denominator.
func Equivalence(d *trace.Dataset, normalize bool) EquivalenceResult {
	perf := make(map[string]float64, len(d.Machines))
	var totalPerf float64
	partial := false
	for _, m := range d.Machines {
		p := m.PerfIndex()
		if !normalize {
			p = 1
		}
		perf[m.ID] = p
		totalPerf += p
		partial = partial || m.PartialLifetime()
	}
	var res EquivalenceResult
	if totalPerf == 0 {
		return res
	}

	type slotSum struct{ occ, free float64 }
	sums := make(map[int]*slotSum, len(d.Iterations))
	for _, iv := range d.Index().Intervals(2 * d.Period) {
		p, ok := perf[iv.B.Machine]
		if !ok {
			continue
		}
		ss := sums[iv.B.Iter]
		if ss == nil {
			ss = &slotSum{}
			sums[iv.B.Iter] = ss
		}
		contrib := iv.CPUIdlePct() / 100 * p
		if iv.B.HasSession() {
			ss.occ += contrib
		} else {
			ss.free += contrib
		}
	}

	var occ, free stats.Running
	for _, it := range d.Iterations {
		ss := sums[it.Iter]
		if ss == nil {
			ss = &slotSum{}
		}
		denom := totalPerf
		if partial {
			denom = activePerf(d.Machines, perf, it.Iter)
			if denom == 0 {
				continue // no fleet at this instant; nothing to compare against
			}
		}
		o := ss.occ / denom
		f := ss.free / denom
		occ.Add(o)
		free.Add(f)
		res.WeeklyOccupied.Add(it.Start, o)
		res.WeeklyFree.Add(it.Start, f)
		res.Weekly.Add(it.Start, o+f)
	}
	res.OccupiedRatio = occ.Mean()
	res.FreeRatio = free.Mean()
	res.TotalRatio = res.OccupiedRatio + res.FreeRatio
	return res
}

// activePerf sums the perf weights of the machines that were fleet
// members at the given iteration — the per-iteration equivalence
// denominator for traces with fleet churn.
func activePerf(machines []trace.MachineInfo, perf map[string]float64, iter int) float64 {
	var t float64
	for i := range machines {
		if machines[i].ActiveAt(iter) {
			t += perf[machines[i].ID]
		}
	}
	return t
}
