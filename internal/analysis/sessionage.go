package analysis

import (
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// AgeBucket aggregates login samples whose session age falls in
// [Hour, Hour+1) hours: the paper's Figure 2.
type AgeBucket struct {
	Hour       int
	Samples    int64
	CPUIdlePct float64
}

// SessionAgeProfile groups login samples by the relative age of their
// interactive session and reports the average CPU idleness per one-hour
// bucket. The paper uses this profile to pick the forgotten-session
// threshold: the first bucket with ≥99% average idleness marks sessions
// that are open but unattended.
type SessionAgeProfile struct {
	Buckets []AgeBucket
}

// SessionAge computes the Figure 2 profile. maxHours bounds the profile
// (ages at or beyond it are folded into the last bucket); the paper plots
// about 24 hours.
func SessionAge(d *trace.Dataset, maxHours int) SessionAgeProfile {
	if maxHours <= 0 {
		maxHours = 24
	}
	accs := make([]stats.Running, maxHours)
	maxGap := 2 * d.Period
	for _, iv := range d.Index().Intervals(maxGap) {
		if !iv.B.HasSession() {
			continue
		}
		h := int(iv.B.SessionAge() / time.Hour)
		if h < 0 {
			continue
		}
		if h >= maxHours {
			h = maxHours - 1
		}
		accs[h].Add(iv.CPUIdlePct())
	}
	p := SessionAgeProfile{Buckets: make([]AgeBucket, maxHours)}
	for h := range accs {
		p.Buckets[h] = AgeBucket{
			Hour:       h,
			Samples:    accs[h].N(),
			CPUIdlePct: accs[h].Mean(),
		}
	}
	return p
}

// FirstBucketAtOrAbove returns the first bucket hour whose average CPU
// idleness is at least pct, or -1 when none qualifies. Applied with 99%,
// this reproduces the paper's choice of the 10-hour threshold.
func (p SessionAgeProfile) FirstBucketAtOrAbove(pct float64) int {
	for _, b := range p.Buckets {
		if b.Samples > 0 && b.CPUIdlePct >= pct {
			return b.Hour
		}
	}
	return -1
}
