package analysis

import (
	"time"

	"winlab/internal/trace"
)

// HeatHours is the resolution of the hour-of-week heatmaps: 7 days × 24
// hours, Monday-first like the weekly profiles.
const HeatHours = 7 * 24

// MachineHeat is one machine's hour-of-week availability profile: for
// each of the 168 cells, the fraction of that cell's iterations the
// machine answered. It is the per-machine decomposition of the paper's
// availability figures — the dashboard view that shows which rooms power
// down overnight and which machines are always on.
type MachineHeat struct {
	Machine string
	Lab     string
	Uptime  []float64 // HeatHours cells, Monday 00:00 first
}

// HeatmapData bundles the hour-of-week heatmaps the query layer serves:
// the fleet-level mean user-free machine count per cell (the harvest
// windows of Figure 3, FreeMachineHeat) and the per-machine availability
// grid.
type HeatmapData struct {
	IterationsPerCell []int     // probe iterations that fell in each cell
	FreeMachines      []float64 // mean user-free machines per cell
	Machines          []MachineHeat
}

// heatCell maps a time to its hour-of-week cell (Monday 00:00 is cell 0).
func heatCell(t time.Time) int {
	day := (int(t.Weekday()) + 6) % 7
	return day*24 + t.Hour()
}

// Heatmap computes the hour-of-week heatmaps. Machines appear in catalog
// order; a machine with no samples gets an all-zero row. The per-cell
// denominator is the number of iterations whose start fell in the cell,
// and the numerator deduplicates to distinct iterations answered, the
// same correction UptimeRatios applies.
func Heatmap(d *trace.Dataset, threshold time.Duration) *HeatmapData {
	idx := d.Index()
	iters := make([]int, HeatHours)
	for _, it := range d.Iterations {
		iters[heatCell(it.Start)]++
	}
	hd := &HeatmapData{
		IterationsPerCell: iters,
		FreeMachines:      FreeMachineHeat(Availability(d, threshold)),
		Machines:          make([]MachineHeat, 0, len(d.Machines)),
	}
	for _, m := range d.Machines {
		ss := idx.Samples(m.ID)
		counts := make([]int, HeatHours)
		for i := range ss {
			if i > 0 && ss[i].Iter == ss[i-1].Iter {
				continue // duplicate sample for one iteration
			}
			counts[heatCell(ss[i].Time)]++
		}
		up := make([]float64, HeatHours)
		for c := range up {
			if iters[c] > 0 {
				up[c] = float64(counts[c]) / float64(iters[c])
			}
		}
		hd.Machines = append(hd.Machines, MachineHeat{Machine: m.ID, Lab: m.Lab, Uptime: up})
	}
	return hd
}

// UptimeHistogram bins the per-machine uptime ratios into equal-width
// bins over [0, 1] — the distribution behind Figure 4 (left), served as
// the query layer's uptime histogram. Ratios outside [0, 1] (possible
// only on traces the invariant checker would flag) clamp to the edge
// bins.
func UptimeHistogram(us []MachineUptime, bins int) []int {
	if bins <= 0 {
		bins = 20
	}
	out := make([]int, bins)
	for _, u := range us {
		i := int(u.Ratio * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		out[i]++
	}
	return out
}
