package analysis

import (
	"fmt"
	"sort"
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
	"winlab/internal/trace/stream"
)

// AllStream computes the same Results as All in a single pass over a
// TBv1 cursor, without ever materialising a Dataset: peak memory is a
// few run buffers plus O(machines + iterations + labs) accumulator
// state, independent of trace length. This is the out-of-core path for
// traces that do not fit in memory (ROADMAP item 2).
//
// Input contract: the stream must be machine-contiguous — all of a
// machine's samples consecutive, time-sorted within the machine — which
// is exactly what WriteBinary produces for a frozen Dataset (All/Freeze
// sort machine-major before writing). Non-contiguous input is detected
// and rejected rather than silently mis-paired.
//
// Equivalence to All (asserted by internal/validate's stream arms):
//
//   - opts.Workers ≤ 1: bit-exact. Every Welford/histogram/profile
//     accumulator receives exactly the Add sequence the in-memory
//     functions produce, because the in-memory path freezes (sorts
//     machine-major) first and this pass consumes the file in that same
//     order; only the interleaving *between* independent accumulators
//     differs, which cannot reassociate floating point.
//   - opts.Workers > 1: machines are sharded deterministically across
//     workers (stream.Parallel) and per-shard accumulators are merged
//     in worker order. Counts, histograms and every integer artefact
//     remain exact; Welford-merged means and variances may differ from
//     the serial result in the last bits (documented epsilon).
func AllStream(c *stream.Cursor, opts Options) (*Results, error) {
	if opts.Threshold == 0 {
		opts.Threshold = DefaultForgottenThreshold
	}
	if opts.HistCap <= 0 {
		opts.HistCap = 96 * time.Hour
	}
	if opts.HistBins <= 0 {
		opts.HistBins = 24
	}
	if opts.SessionAgeHours <= 0 {
		opts.SessionAgeHours = 24
	}

	machines := c.Machines()
	iterations := c.Iterations()

	if opts.Workers <= 1 {
		acc := newStreamAcc(c.Start(), c.End(), c.Period(), machines, opts)
		var run stream.Run
		for {
			ok, err := c.NextRun(&run)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			if err := acc.addRun(&run); err != nil {
				return nil, err
			}
		}
		acc.finish()
		return acc.finalize(machines, iterations), nil
	}

	shards := make([]*streamAcc, opts.Workers)
	for i := range shards {
		shards[i] = newStreamAcc(c.Start(), c.End(), c.Period(), machines, opts)
	}
	err := stream.Parallel(c, opts.Workers, func(w int, run *stream.Run) error {
		return shards[w].addRun(run)
	})
	if err != nil {
		return nil, err
	}
	acc := shards[0]
	acc.finish()
	for _, sh := range shards[1:] {
		sh.finish()
		acc.merge(sh)
	}
	return acc.finalize(machines, iterations), nil
}

// machState is the per-machine carry state of the streaming pass: the
// previous sample (interval pairing, uptime-ratio dedup, PowerCycles
// endpoints) and the open detected session.
type machState struct {
	hasPrev bool
	prev    trace.Sample // last sample seen
	first   trace.Sample // first sample seen

	sessOpen bool
	sessBoot time.Time // boot time of the open session's first sample
	sessLen  time.Duration

	answered int // distinct iterations answered (duplicate-deduped)
}

type availCount struct{ on, free int }

type eqSum struct{ occ, free float64 }

type capIterSum struct {
	ramMB  float64
	diskGB float64
	on     int
}

type labAcc struct {
	samples  int
	occupied int
	ram      stats.Running
	freeRAM  stats.Running
	freeDisk stats.Running
	cpu      stats.Running
}

// streamAcc is one shard's worth of single-pass accumulators — every
// per-sample and per-interval aggregate behind the ten artefacts of
// Results. Per-iteration and per-machine aggregates stay as compact
// sums in maps and are expanded to the artefact shapes in finalize,
// replaying the exact finalisation order of the in-memory functions.
type streamAcc struct {
	start, end time.Time
	threshold  time.Duration
	maxGap     time.Duration
	ageMax     int
	histCap    time.Duration

	mach map[string]*machState
	cur  string // machine of the current run, for contiguity + flush

	// Catalogue-derived lookups (identical in every shard).
	ramByID   map[string]int
	labOf     map[string]string
	perf      map[string]float64
	totalPerf float64

	// Table 2 (§4.2) and the reclassification counts.
	t2no, t2with, t2both table2Acc
	rawLogin             int
	reclassified         int

	// Figure 2: CPU idleness by session age.
	age []stats.Running

	// Figure 3: powered-on / user-free counts per iteration.
	avail map[int]*availCount

	// §5.2.1 detected sessions.
	sessCount   int
	sessLengths stats.Running
	sessHist    *stats.Histogram
	uptimeAll   float64
	uptimeShort float64

	// Figure 5 weekly profiles.
	weekly WeeklyProfiles

	// Figure 6 equivalence: perf-weighted idleness sums per iteration.
	eq map[int]*eqSum

	// Per-lab usage.
	labs map[string]*labAcc

	// Capacity (§6).
	capRAM   stats.Running
	capDisk  stats.Running
	capClass map[int]*stats.Running
	capIter  map[int]*capIterSum
}

func newStreamAcc(start, end time.Time, period time.Duration, machines []trace.MachineInfo, opts Options) *streamAcc {
	a := &streamAcc{
		start:     start,
		end:       end,
		threshold: opts.Threshold,
		maxGap:    2 * period,
		ageMax:    opts.SessionAgeHours,
		histCap:   opts.HistCap,
		mach:      make(map[string]*machState),
		ramByID:   make(map[string]int, len(machines)),
		labOf:     make(map[string]string, len(machines)),
		perf:      make(map[string]float64, len(machines)),
		age:       make([]stats.Running, opts.SessionAgeHours),
		avail:     make(map[int]*availCount),
		sessHist:  stats.NewHistogram(0, opts.HistCap.Hours(), opts.HistBins),
		eq:        make(map[int]*eqSum),
		labs:      make(map[string]*labAcc),
		capClass:  make(map[int]*stats.Running),
		capIter:   make(map[int]*capIterSum),
	}
	for _, m := range machines {
		a.ramByID[m.ID] = m.RAMMB
		a.labOf[m.ID] = m.Lab
		p := m.PerfIndex()
		if opts.UnweightedEquivalence {
			p = 1
		}
		a.perf[m.ID] = p
		a.totalPerf += p
	}
	return a
}

// addRun folds one machine run into the accumulators. Runs of the same
// machine may arrive split (the cursor's RunLimit); a machine whose
// runs are *not* consecutive violates the contiguity contract — its
// intervals and sessions would be silently mis-paired — so that input
// is rejected.
func (a *streamAcc) addRun(run *stream.Run) error {
	if run.Machine != a.cur {
		if a.mach[run.Machine] != nil {
			return fmt.Errorf("analysis: stream not machine-contiguous: %q reappears after other machines; re-encode the trace from a frozen dataset", run.Machine)
		}
		a.closeSession(a.mach[a.cur])
		a.cur = run.Machine
	}
	m := a.mach[run.Machine]
	if m == nil {
		m = &machState{}
		a.mach[run.Machine] = m
	}
	for i := range run.Samples {
		a.addSample(&run.Samples[i], m)
	}
	return nil
}

// finish flushes the trailing machine's open detected session. Call
// once, after the last run.
func (a *streamAcc) finish() { a.closeSession(a.mach[a.cur]) }

func sameBootTime(x, y time.Time) bool {
	sx := trace.Sample{BootTime: x}
	sy := trace.Sample{BootTime: y}
	return trace.SameBoot(&sx, &sy)
}

func (a *streamAcc) addSample(s *trace.Sample, m *machState) {
	cl := Classify(s, a.threshold)

	// Interval pairing against the machine's previous sample, before the
	// carry state advances — the streaming equivalent of
	// Index.buildIntervals' adjacent same-boot pairs with the 2×period
	// gap cap.
	if m.hasPrev && trace.SameBoot(&m.prev, s) {
		if gap := s.Time.Sub(m.prev.Time); a.maxGap <= 0 || gap <= a.maxGap {
			a.addInterval(trace.Interval{A: &m.prev, B: s}, cl)
		}
	}

	// Detected sessions (§5.2.1): like DetectSessions, a session
	// continues while the sample's boot time matches the boot time of
	// the session's *first* sample, and its length is the last sample's
	// uptime.
	if m.sessOpen && sameBootTime(m.sessBoot, s.BootTime) {
		m.sessLen = s.Uptime
	} else {
		a.closeSession(m)
		m.sessOpen = true
		m.sessBoot = s.BootTime
		m.sessLen = s.Uptime
	}

	// Uptime ratios: count distinct iterations answered (duplicate
	// samples within one iteration count once, like UptimeRatios).
	if !m.hasPrev || s.Iter != m.prev.Iter {
		m.answered++
	}
	if !m.hasPrev {
		m.first = *s
	}
	m.prev = *s
	m.hasPrev = true

	// Reclassification counts (Table 2's Reclass block).
	if s.HasSession() {
		a.rawLogin++
		if cl == Forgotten {
			a.reclassified++
		}
	}

	// Table 2 sample-level metrics.
	acc := &a.t2no
	if cl.Occupied() {
		acc = &a.t2with
	}
	for _, t := range [2]*table2Acc{acc, &a.t2both} {
		t.samples++
		t.ram.Add(float64(s.MemLoadPct))
		t.swap.Add(float64(s.SwapLoadPct))
		t.disk.Add(s.UsedDiskGB())
	}

	// Figure 3 per-iteration counts.
	av := a.avail[s.Iter]
	if av == nil {
		av = &availCount{}
		a.avail[s.Iter] = av
	}
	av.on++
	if !cl.Occupied() {
		av.free++
	}

	// Figure 5 sample-level profiles.
	a.weekly.RAMLoadPct.Add(s.Time, float64(s.MemLoadPct))
	a.weekly.SwapLoad.Add(s.Time, float64(s.SwapLoadPct))

	// Per-lab usage (sample lab, like ByLab's sample loop).
	la := a.lab(s.Lab)
	la.samples++
	if cl.Occupied() {
		la.occupied++
	}
	la.ram.Add(float64(s.MemLoadPct))
	if ram := a.ramByID[s.Machine]; ram > 0 {
		la.freeRAM.Add(float64(ram) * (100 - float64(s.MemLoadPct)) / 100)
	}
	la.freeDisk.Add(s.FreeDiskGB)

	// Capacity.
	ram := a.ramByID[s.Machine]
	freeMB := float64(ram) * (100 - float64(s.MemLoadPct)) / 100
	a.capRAM.Add(freeMB)
	a.capDisk.Add(s.FreeDiskGB)
	cc := a.capClass[ram]
	if cc == nil {
		cc = &stats.Running{}
		a.capClass[ram] = cc
	}
	cc.Add(freeMB)
	ci := a.capIter[s.Iter]
	if ci == nil {
		ci = &capIterSum{}
		a.capIter[s.Iter] = ci
	}
	ci.ramMB += freeMB
	ci.diskGB += s.FreeDiskGB
	ci.on++
}

func (a *streamAcc) addInterval(iv trace.Interval, cl Class) {
	idle := iv.CPUIdlePct()
	sent := iv.SentBps()
	recv := iv.RecvBps()
	s := iv.B

	// Table 2 interval-level metrics, classified by the closing sample.
	acc := &a.t2no
	if cl.Occupied() {
		acc = &a.t2with
	}
	for _, t := range [2]*table2Acc{acc, &a.t2both} {
		t.cpuIdle.Add(idle)
		t.sent.Add(sent)
		t.recv.Add(recv)
	}

	// Figure 2: idleness by session age.
	if s.HasSession() {
		if h := int(s.SessionAge() / time.Hour); h >= 0 {
			if h >= a.ageMax {
				h = a.ageMax - 1
			}
			a.age[h].Add(idle)
		}
	}

	// Figure 5 interval-level profiles.
	a.weekly.CPUIdlePct.Add(s.Time, idle)
	a.weekly.SentBps.Add(s.Time, sent)
	a.weekly.RecvBps.Add(s.Time, recv)

	// Figure 6: perf-weighted idleness, split by raw session presence.
	if p, ok := a.perf[s.Machine]; ok {
		es := a.eq[s.Iter]
		if es == nil {
			es = &eqSum{}
			a.eq[s.Iter] = es
		}
		contrib := idle / 100 * p
		if s.HasSession() {
			es.occ += contrib
		} else {
			es.free += contrib
		}
	}

	// Per-lab CPU idleness (catalogue lab, like ByLab's interval loop).
	a.lab(a.labOf[s.Machine]).cpu.Add(idle)
}

func (a *streamAcc) lab(lb string) *labAcc {
	l := a.labs[lb]
	if l == nil {
		l = &labAcc{}
		a.labs[lb] = l
	}
	return l
}

// closeSession feeds a finished detected session into the §5.2.1
// aggregates. nil-safe (the first run has no previous machine).
func (a *streamAcc) closeSession(m *machState) {
	if m == nil || !m.sessOpen {
		return
	}
	m.sessOpen = false
	h := m.sessLen.Hours()
	a.sessCount++
	a.sessLengths.Add(h)
	a.sessHist.Add(h)
	a.uptimeAll += h
	if m.sessLen <= a.histCap {
		a.uptimeShort += h
	}
}

func mergeT2(a, b *table2Acc) {
	a.samples += b.samples
	a.cpuIdle = a.cpuIdle.Merge(b.cpuIdle)
	a.ram = a.ram.Merge(b.ram)
	a.swap = a.swap.Merge(b.swap)
	a.disk = a.disk.Merge(b.disk)
	a.sent = a.sent.Merge(b.sent)
	a.recv = a.recv.Merge(b.recv)
}

// merge folds shard b into a. Shards partition machines (the parallel
// scheduler routes every run of a machine to one worker), so the
// per-machine states are disjoint; everything else merges by Welford /
// histogram / integer addition. Merging in fixed worker order keeps the
// result deterministic for a given trace and worker count.
func (a *streamAcc) merge(b *streamAcc) {
	for id, m := range b.mach {
		a.mach[id] = m
	}

	mergeT2(&a.t2no, &b.t2no)
	mergeT2(&a.t2with, &b.t2with)
	mergeT2(&a.t2both, &b.t2both)
	a.rawLogin += b.rawLogin
	a.reclassified += b.reclassified

	for i := range a.age {
		a.age[i] = a.age[i].Merge(b.age[i])
	}

	for iter, c := range b.avail {
		av := a.avail[iter]
		if av == nil {
			av = &availCount{}
			a.avail[iter] = av
		}
		av.on += c.on
		av.free += c.free
	}

	a.sessCount += b.sessCount
	a.sessLengths = a.sessLengths.Merge(b.sessLengths)
	a.sessHist.Merge(b.sessHist)
	a.uptimeAll += b.uptimeAll
	a.uptimeShort += b.uptimeShort

	a.weekly.CPUIdlePct.Merge(&b.weekly.CPUIdlePct)
	a.weekly.RAMLoadPct.Merge(&b.weekly.RAMLoadPct)
	a.weekly.SwapLoad.Merge(&b.weekly.SwapLoad)
	a.weekly.SentBps.Merge(&b.weekly.SentBps)
	a.weekly.RecvBps.Merge(&b.weekly.RecvBps)

	for iter, e := range b.eq {
		es := a.eq[iter]
		if es == nil {
			es = &eqSum{}
			a.eq[iter] = es
		}
		es.occ += e.occ
		es.free += e.free
	}

	for lb, bl := range b.labs {
		al := a.lab(lb)
		al.samples += bl.samples
		al.occupied += bl.occupied
		al.ram = al.ram.Merge(bl.ram)
		al.freeRAM = al.freeRAM.Merge(bl.freeRAM)
		al.freeDisk = al.freeDisk.Merge(bl.freeDisk)
		al.cpu = al.cpu.Merge(bl.cpu)
	}

	a.capRAM = a.capRAM.Merge(b.capRAM)
	a.capDisk = a.capDisk.Merge(b.capDisk)
	for ram, r := range b.capClass {
		if ar := a.capClass[ram]; ar != nil {
			merged := ar.Merge(*r)
			*ar = merged
		} else {
			cp := *r
			a.capClass[ram] = &cp
		}
	}
	for iter, ci := range b.capIter {
		ai := a.capIter[iter]
		if ai == nil {
			ai = &capIterSum{}
			a.capIter[iter] = ai
		}
		ai.ramMB += ci.ramMB
		ai.diskGB += ci.diskGB
		ai.on += ci.on
	}
}

// finalize expands the compact accumulator state into Results,
// replaying each in-memory function's finalisation order exactly
// (iteration-log order for per-iteration series, catalogue order for
// uptime ratios, sorted-machine order for the SMART statistics, sorted
// lab names).
func (a *streamAcc) finalize(machines []trace.MachineInfo, iterations []trace.Iteration) *Results {
	res := &Results{}

	attempts := 0
	for _, it := range iterations {
		attempts += it.Attempted
	}

	// Table 2.
	res.Table2 = Table2{
		Threshold: a.threshold,
		Reclass: ReclassifyStats{
			Threshold:       a.threshold,
			RawLoginSamples: a.rawLogin,
			Reclassified:    a.reclassified,
		},
		NoLogin:   a.t2no.column(attempts),
		WithLogin: a.t2with.column(attempts),
		Both:      a.t2both.column(attempts),
	}

	// Figure 2.
	res.SessionAge = SessionAgeProfile{Buckets: make([]AgeBucket, a.ageMax)}
	for h := range a.age {
		res.SessionAge.Buckets[h] = AgeBucket{
			Hour:       h,
			Samples:    a.age[h].N(),
			CPUIdlePct: a.age[h].Mean(),
		}
	}

	// Figure 3.
	var on, free stats.Running
	for _, it := range iterations {
		c := a.avail[it.Iter]
		if c == nil {
			c = &availCount{}
		}
		res.Availability.Points = append(res.Availability.Points, AvailabilityPoint{
			Iter: it.Iter, Time: it.Start, PoweredOn: c.on, UserFree: c.free,
		})
		on.Add(float64(c.on))
		free.Add(float64(c.free))
	}
	res.Availability.AvgPoweredOn = on.Mean()
	res.Availability.AvgUserFree = free.Mean()

	// Figure 4 (left): uptime ratios, catalogue order then ratio-sorted.
	// The denominator is per-machine (lifetime-bounded for fleet-churn
	// machines), mirroring UptimeRatios exactly.
	if len(iterations) > 0 {
		ups := make([]MachineUptime, 0, len(machines))
		for i := range machines {
			answered := 0
			if st := a.mach[machines[i].ID]; st != nil {
				answered = st.answered
			}
			attempts := machineAttempts(&machines[i], iterations)
			ratio := 0.0
			if attempts > 0 {
				ratio = float64(answered) / float64(attempts)
			}
			ups = append(ups, MachineUptime{
				Machine: machines[i].ID,
				Ratio:   ratio,
				Nines:   stats.Nines(ratio),
			})
		}
		sort.Slice(ups, func(i, j int) bool { return ups[i].Ratio > ups[j].Ratio })
		res.Uptimes = ups
	}

	// §5.2.1 sessions.
	res.Sessions = SessionStats{
		Count:   a.sessCount,
		Mean:    time.Duration(a.sessLengths.Mean() * float64(time.Hour)),
		StdDev:  time.Duration(a.sessLengths.StdDev() * float64(time.Hour)),
		Hist:    a.sessHist,
		HistCap: a.histCap,
	}
	if a.sessCount > 0 {
		res.Sessions.ShortFraction = a.sessHist.InRangeFraction()
	}
	if a.uptimeAll > 0 {
		res.Sessions.ShortUptimeFraction = a.uptimeShort / a.uptimeAll
	}

	// §5.2.2 power cycles, in sorted machine order like EachMachine.
	ids := make([]string, 0, len(a.mach))
	for id, m := range a.mach {
		if m.hasPrev {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	var pc PowerCycleStats
	var perMach, perCycle, lifetime stats.Running
	for _, id := range ids {
		m := a.mach[id]
		first, last := &m.first, &m.prev
		cycles := last.PowerCycles - first.PowerCycles + 1
		if cycles < 1 {
			cycles = 1
		}
		pc.TotalCycles += cycles
		perMach.Add(float64(cycles))
		hours := float64(last.PowerOnHours-first.PowerOnHours) + first.Uptime.Hours()
		if hours > 0 {
			perCycle.Add(hours / float64(cycles))
		}
		if last.PowerCycles > 0 {
			lifetime.Add(float64(last.PowerOnHours) / float64(last.PowerCycles))
		}
	}
	pc.AvgPerMachine = perMach.Mean()
	pc.SDPerMachine = perMach.StdDev()
	if days := a.end.Sub(a.start).Hours() / 24; days > 0 {
		pc.CyclesPerDay = perMach.Mean() / days
	}
	pc.DetectedSessions = a.sessCount
	if pc.DetectedSessions > 0 {
		pc.UndetectedRatio = float64(pc.TotalCycles)/float64(pc.DetectedSessions) - 1
	}
	pc.UptimePerCycle = time.Duration(perCycle.Mean() * float64(time.Hour))
	pc.UptimePerCycleSD = time.Duration(perCycle.StdDev() * float64(time.Hour))
	pc.LifetimePerCycle = time.Duration(lifetime.Mean() * float64(time.Hour))
	pc.LifetimePerCycleSD = time.Duration(lifetime.StdDev() * float64(time.Hour))
	res.PowerCycles = pc

	// Figure 5.
	res.Weekly = &a.weekly

	// Figure 6, iteration-log order; zero result when no machine has
	// index metadata, like Equivalence. On fleet-churn traces the
	// denominator is the per-iteration active fleet, mirroring
	// Equivalence exactly.
	if a.totalPerf != 0 {
		partial := false
		for i := range machines {
			if machines[i].PartialLifetime() {
				partial = true
				break
			}
		}
		var occ, freeEq stats.Running
		for _, it := range iterations {
			es := a.eq[it.Iter]
			if es == nil {
				es = &eqSum{}
			}
			denom := a.totalPerf
			if partial {
				denom = activePerf(machines, a.perf, it.Iter)
				if denom == 0 {
					continue
				}
			}
			o := es.occ / denom
			f := es.free / denom
			occ.Add(o)
			freeEq.Add(f)
			res.Equivalence.WeeklyOccupied.Add(it.Start, o)
			res.Equivalence.WeeklyFree.Add(it.Start, f)
			res.Equivalence.Weekly.Add(it.Start, o+f)
		}
		res.Equivalence.OccupiedRatio = occ.Mean()
		res.Equivalence.FreeRatio = freeEq.Mean()
		res.Equivalence.TotalRatio = res.Equivalence.OccupiedRatio + res.Equivalence.FreeRatio
	}

	// Labs: catalogue labs always appear (even with no samples), machine
	// counts come from the catalogue, sorted by name like ByLab. Lab
	// attempts are lifetime-bounded per machine, mirroring ByLab.
	labMachines := make(map[string]map[string]bool)
	labAttempts := make(map[string]int)
	for i := range machines {
		m := &machines[i]
		if labMachines[m.Lab] == nil {
			labMachines[m.Lab] = make(map[string]bool)
			a.lab(m.Lab) // ensure the lab appears in the output
		}
		labMachines[m.Lab][m.ID] = true
		labAttempts[m.Lab] += machineAttempts(m, iterations)
	}
	labs := make([]LabUsage, 0, len(a.labs))
	for lb, l := range a.labs {
		u := LabUsage{
			Lab:                  lb,
			Machines:             len(labMachines[lb]),
			CPUIdlePct:           l.cpu.Mean(),
			RAMLoadPct:           l.ram.Mean(),
			FreeRAMMBPerMachine:  l.freeRAM.Mean(),
			FreeDiskGBPerMachine: l.freeDisk.Mean(),
		}
		if att := labAttempts[lb]; att > 0 {
			u.UptimePct = 100 * float64(l.samples) / float64(att)
			u.OccupiedPct = 100 * float64(l.occupied) / float64(att)
		}
		labs = append(labs, u)
	}
	sort.Slice(labs, func(i, j int) bool { return labs[i].Lab < labs[j].Lab })
	res.Labs = labs

	// Capacity, iteration-log order with zero-fill like Capacity.
	rep := CapacityReport{
		AvgFreeRAMMBPerMachine:  a.capRAM.Mean(),
		FreeRAMByClass:          map[int]float64{},
		AvgFreeDiskGBPerMachine: a.capDisk.Mean(),
	}
	var iterRAM, iterDisk, iterOn stats.Running
	for _, it := range iterations {
		ci := a.capIter[it.Iter]
		if ci == nil {
			iterRAM.Add(0)
			iterDisk.Add(0)
			iterOn.Add(0)
			continue
		}
		iterRAM.Add(ci.ramMB)
		iterDisk.Add(ci.diskGB)
		iterOn.Add(float64(ci.on))
	}
	rep.FleetFreeRAMGB = iterRAM.Mean() / 1024
	rep.FleetFreeDiskTB = iterDisk.Mean() / 1024
	rep.AvgPoweredMachines = iterOn.Mean()
	for ram, acc := range a.capClass {
		rep.FreeRAMByClass[ram] = acc.Mean()
	}
	res.Capacity = rep

	return res
}
