package analysis

import (
	"testing"
	"time"

	"winlab/internal/trace"
)

// twoLabDataset builds a dataset with a busy fast lab and an idle slow lab.
func twoLabDataset() *trace.Dataset {
	d := &trace.Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
		Machines: []trace.MachineInfo{
			{ID: "F1", Lab: "FAST", RAMMB: 512, DiskGB: 74.5, IntIndex: 40, FPIndex: 40},
			{ID: "F2", Lab: "FAST", RAMMB: 512, DiskGB: 74.5, IntIndex: 40, FPIndex: 40},
			{ID: "S1", Lab: "SLOW", RAMMB: 128, DiskGB: 14.5, IntIndex: 13, FPIndex: 12},
		},
	}
	boot := t0
	for i := 1; i <= 8; i++ {
		at := t0.Add(time.Duration(i) * 15 * time.Minute)
		up := at.Sub(boot)
		// F1 always up with a user at 80% idle, 60% RAM.
		d.Samples = append(d.Samples, trace.Sample{
			Iter: i, Time: at, Machine: "F1", Lab: "FAST", BootTime: boot,
			Uptime: up, CPUIdle: time.Duration(0.8 * float64(up)),
			MemLoadPct: 60, DiskGB: 74.5, FreeDiskGB: 54.5,
			SessionUser: "u", SessionStart: boot,
		})
		// F2 always up, free, 99% idle, 40% RAM.
		d.Samples = append(d.Samples, trace.Sample{
			Iter: i, Time: at, Machine: "F2", Lab: "FAST", BootTime: boot,
			Uptime: up, CPUIdle: time.Duration(0.99 * float64(up)),
			MemLoadPct: 40, DiskGB: 74.5, FreeDiskGB: 54.5,
		})
		// S1 up only for the first four iterations, free, 75% RAM.
		if i <= 4 {
			d.Samples = append(d.Samples, trace.Sample{
				Iter: i, Time: at, Machine: "S1", Lab: "SLOW", BootTime: boot,
				Uptime: up, CPUIdle: up,
				MemLoadPct: 75, DiskGB: 14.5, FreeDiskGB: 5.5,
			})
		}
		d.Iterations = append(d.Iterations, trace.Iteration{Iter: i, Start: at, Attempted: 3})
	}
	return d
}

func TestByLab(t *testing.T) {
	us := ByLab(twoLabDataset(), DefaultForgottenThreshold)
	if len(us) != 2 {
		t.Fatalf("labs = %d", len(us))
	}
	fast, slow := us[0], us[1]
	if fast.Lab != "FAST" || slow.Lab != "SLOW" {
		t.Fatalf("order: %s, %s", fast.Lab, slow.Lab)
	}
	if fast.Machines != 2 || slow.Machines != 1 {
		t.Errorf("machine counts %d/%d", fast.Machines, slow.Machines)
	}
	if fast.UptimePct != 100 {
		t.Errorf("fast uptime = %v", fast.UptimePct)
	}
	if slow.UptimePct != 50 {
		t.Errorf("slow uptime = %v", slow.UptimePct)
	}
	if fast.OccupiedPct != 50 { // F1 of F1+F2
		t.Errorf("fast occupied = %v", fast.OccupiedPct)
	}
	if slow.OccupiedPct != 0 {
		t.Errorf("slow occupied = %v", slow.OccupiedPct)
	}
	if fast.RAMLoadPct != 50 { // mean of 60 and 40
		t.Errorf("fast ram = %v", fast.RAMLoadPct)
	}
	// Free RAM: F1 204.8 MB, F2 307.2 → mean 256.
	if fast.FreeRAMMBPerMachine != 256 {
		t.Errorf("fast free RAM = %v", fast.FreeRAMMBPerMachine)
	}
	if slow.FreeDiskGBPerMachine != 5.5 {
		t.Errorf("slow free disk = %v", slow.FreeDiskGBPerMachine)
	}
	// CPU idleness per lab from intervals.
	if fast.CPUIdlePct < 89 || fast.CPUIdlePct > 90 { // mean of 80 and 99
		t.Errorf("fast cpu idle = %v", fast.CPUIdlePct)
	}
}

func TestCapacity(t *testing.T) {
	c := Capacity(twoLabDataset())
	// Per-sample free RAM: 8×204.8 + 8×307.2 + 4×32 over 20 samples = 211.2.
	if c.AvgFreeRAMMBPerMachine < 211 || c.AvgFreeRAMMBPerMachine > 212 {
		t.Errorf("avg free RAM = %v", c.AvgFreeRAMMBPerMachine)
	}
	if v := c.FreeRAMByClass[128]; v != 32 {
		t.Errorf("128MB class free = %v", v)
	}
	if v := c.FreeRAMByClass[512]; v != 256 {
		t.Errorf("512MB class free = %v", v)
	}
	// Simultaneous fleet free RAM: iterations 1–4 have all three machines
	// (544 MB), 5–8 only the fast pair (512 MB) → mean 528 MB.
	if got := c.FleetFreeRAMGB * 1024; got < 527 || got > 529 {
		t.Errorf("fleet free RAM = %v MB", got)
	}
	// Powered machines: 3,3,3,3,2,2,2,2 → 2.5.
	if c.AvgPoweredMachines != 2.5 {
		t.Errorf("avg powered = %v", c.AvgPoweredMachines)
	}
	// Fleet free disk: 4×(54.5+54.5+5.5) + 4×109 over 8 iterations = 111.75 GB.
	if got := c.FleetFreeDiskTB * 1024; got < 111.7 || got > 111.8 {
		t.Errorf("fleet free disk = %v GB", got)
	}
}

func TestUnusedMemoryPct(t *testing.T) {
	// Overall RAM load mean: (8×60 + 8×40 + 4×75) / 20 = 55. The running
	// mean is accumulated in index (machine-sorted) order, so allow
	// float-rounding slack in the last bits.
	got := UnusedMemoryPct(twoLabDataset(), DefaultForgottenThreshold)
	if got < 45-1e-9 || got > 45+1e-9 {
		t.Errorf("unused memory = %v, want 45", got)
	}
}
