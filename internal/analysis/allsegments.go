package analysis

import (
	"fmt"
	"sync"
	"time"

	"winlab/internal/trace"
	"winlab/internal/trace/stream"
)

// AllSegments computes the same Results as AllStream directly from the
// unmerged TBv1 segment files of a sharded collection run — no
// compaction pass, no materialised dataset: each segment is drained by
// its own goroutine into its own streamAcc (the exact accumulators
// AllStream uses), and the per-segment accumulators fold together with
// the same merge the Workers > 1 path uses. Peak memory is K cursors
// plus K accumulator states, independent of trace length.
//
// The segments must come from one run: equal periods, one shared
// iteration clock (same-numbered iterations agree on their start), and
// each machine's samples wholly inside one segment — a machine with
// samples in two segments is rejected with a pointer to the compactor,
// because its intervals and sessions would be silently split.
//
// Equivalence contract (asserted by internal/validate's shard arms):
// every count, histogram and integer artefact matches AllStream over the
// compacted trace exactly; Welford-merged means and variances may differ
// in the last bits when K > 1, same epsilon as AllStream's parallel
// path. The normalisation catalogue (Equivalence's totalPerf) is the
// union catalogue, so per-segment accumulators normalise exactly like a
// fleet-wide pass would.
func AllSegments(paths []string, opts Options) (*Results, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("analysis: no segments")
	}
	if opts.Threshold == 0 {
		opts.Threshold = DefaultForgottenThreshold
	}
	if opts.HistCap <= 0 {
		opts.HistCap = 96 * time.Hour
	}
	if opts.HistBins <= 0 {
		opts.HistBins = 24
	}
	if opts.SessionAgeHours <= 0 {
		opts.SessionAgeHours = 24
	}

	cursors := make([]*stream.Cursor, len(paths))
	defer func() {
		for _, c := range cursors {
			if c != nil {
				c.Close()
			}
		}
	}()
	for i, path := range paths {
		c, err := stream.Open(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: segment %s: %w", path, err)
		}
		cursors[i] = c
	}

	// Reconcile the headers into the run-wide view every accumulator
	// shares: union bounds, one period, union catalogue (duplicates must
	// agree — time-chunked shards re-catalogue), merged iteration log.
	start, end := cursors[0].Start(), cursors[0].End()
	period := cursors[0].Period()
	var machines []trace.MachineInfo
	catalogued := map[string]trace.MachineInfo{}
	logs := make([][]trace.Iteration, len(cursors))
	for i, c := range cursors {
		if c.Period() != period {
			return nil, fmt.Errorf("analysis: segment %s has period %v, want %v", paths[i], c.Period(), period)
		}
		if c.Start().Before(start) {
			start = c.Start()
		}
		if c.End().After(end) {
			end = c.End()
		}
		for _, mi := range c.Machines() {
			if prev, ok := catalogued[mi.ID]; ok {
				if prev != mi {
					return nil, fmt.Errorf("analysis: segment %s catalogues machine %s with conflicting metadata", paths[i], mi.ID)
				}
				continue
			}
			catalogued[mi.ID] = mi
			machines = append(machines, mi)
		}
		logs[i] = c.Iterations()
	}
	iterations, err := trace.MergeIterationLogs(logs)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}

	// Drain every segment concurrently, one accumulator each — all built
	// against the union catalogue and run-wide bounds, so normalisation
	// and interval pairing behave exactly as in a fleet-wide pass.
	accs := make([]*streamAcc, len(cursors))
	errs := make([]error, len(cursors))
	var wg sync.WaitGroup
	for i, c := range cursors {
		accs[i] = newStreamAcc(start, end, period, machines, opts)
		wg.Add(1)
		go func(i int, c *stream.Cursor) {
			defer wg.Done()
			var run stream.Run
			for {
				ok, err := c.NextRun(&run)
				if err != nil {
					errs[i] = fmt.Errorf("analysis: segment %s: %w", paths[i], err)
					return
				}
				if !ok {
					return
				}
				if err := accs[i].addRun(&run); err != nil {
					errs[i] = fmt.Errorf("analysis: segment %s: %w", paths[i], err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Each machine's timeline must live in exactly one segment, or its
	// interval pairing and session detection were silently split.
	segOf := map[string]int{}
	for i, acc := range accs {
		for id := range acc.mach {
			if prev, ok := segOf[id]; ok {
				return nil, fmt.Errorf("analysis: machine %s has samples in segments %s and %s; segments must partition machines (compact with trace.MergeSegments, or traceconv -merge)",
					id, paths[prev], paths[i])
			}
			segOf[id] = i
		}
	}

	acc := accs[0]
	acc.finish()
	for _, sh := range accs[1:] {
		sh.finish()
		acc.merge(sh)
	}
	return acc.finalize(machines, iterations), nil
}

// AllManifest is AllSegments over a segment manifest: the segment paths
// resolve against dir (use filepath.Dir of the manifest's own path).
func AllManifest(m *trace.Manifest, dir string, opts Options) (*Results, error) {
	return AllSegments(m.SegmentPaths(dir), opts)
}
