package analysis

import (
	"sort"
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// AvailabilityPoint is one iteration of the Figure 3 time series.
type AvailabilityPoint struct {
	Iter      int
	Time      time.Time
	PoweredOn int // machines that answered the probe
	UserFree  int // of those, machines with no (effective) login session
}

// AvailabilitySeries is the Figure 3 data: powered-on and user-free
// machine counts per iteration, with their averages.
type AvailabilitySeries struct {
	Points       []AvailabilityPoint
	AvgPoweredOn float64 // the paper reports 84.87
	AvgUserFree  float64 // the paper reports 57.29
}

// Availability computes the Figure 3 series. User-free machines are
// powered-on machines without an occupied session, where sessions older
// than the threshold count as non-occupied (forgotten).
func Availability(d *trace.Dataset, threshold time.Duration) AvailabilitySeries {
	type counts struct{ on, free int }
	byIter := make(map[int]*counts, len(d.Iterations))
	for i := range d.Samples {
		s := &d.Samples[i]
		c := byIter[s.Iter]
		if c == nil {
			c = &counts{}
			byIter[s.Iter] = c
		}
		c.on++
		if !Classify(s, threshold).Occupied() {
			c.free++
		}
	}
	var series AvailabilitySeries
	var on, free stats.Running
	for _, it := range d.Iterations {
		c := byIter[it.Iter]
		if c == nil {
			c = &counts{}
		}
		series.Points = append(series.Points, AvailabilityPoint{
			Iter: it.Iter, Time: it.Start, PoweredOn: c.on, UserFree: c.free,
		})
		on.Add(float64(c.on))
		free.Add(float64(c.free))
	}
	series.AvgPoweredOn = on.Mean()
	series.AvgUserFree = free.Mean()
	return series
}

// MachineUptime is one machine's cumulated uptime over the experiment
// (Figure 4, left): the fraction of probe attempts it answered, and that
// availability expressed in "nines".
type MachineUptime struct {
	Machine string
	Ratio   float64
	Nines   float64
}

// UptimeRatios computes the per-machine uptime ratios, sorted in
// descending order like the paper's Figure 4 (left). Per-machine
// samples come straight from the index's spans — no per-call counting
// pass.
//
// The numerator counts *distinct iterations answered*, not raw samples:
// a trace carrying duplicate samples for one machine in one iteration
// (a collector retry bug, a careless merge) used to inflate the ratio,
// up to the absurd Ratio > 1 — "more available than always on". The
// dataset invariant checker flags such traces (KindDuplicateSample);
// this function now also computes the right answer on them. The spans
// are time-sorted, so deduplication is one adjacent comparison per
// sample.
//
// The denominator is per-machine: a partial-lifetime machine (scenario
// fleet churn) is only "attempted" during the iterations it was a fleet
// member for, so a replacement that joined halfway through is not
// charged the probes that predate it. Full-lifetime machines keep the
// classic denominator, the full iteration count.
func UptimeRatios(d *trace.Dataset) []MachineUptime {
	if len(d.Iterations) == 0 {
		return nil
	}
	idx := d.Index()
	out := make([]MachineUptime, 0, len(d.Machines))
	for _, m := range d.Machines {
		ss := idx.Samples(m.ID)
		answered := 0
		for i := range ss {
			if i == 0 || ss[i].Iter != ss[i-1].Iter {
				answered++
			}
		}
		attempts := machineAttempts(&m, d.Iterations)
		ratio := 0.0
		if attempts > 0 {
			ratio = float64(answered) / float64(attempts)
		}
		out = append(out, MachineUptime{
			Machine: m.ID,
			Ratio:   ratio,
			Nines:   stats.Nines(ratio),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// machineAttempts returns how many of the trace's iterations the machine
// was a fleet member for — the per-machine uptime denominator.
func machineAttempts(m *trace.MachineInfo, iterations []trace.Iteration) int {
	if !m.PartialLifetime() {
		return len(iterations)
	}
	n := 0
	for i := range iterations {
		if m.ActiveAt(iterations[i].Iter) {
			n++
		}
	}
	return n
}

// CountAbove returns how many machines have an uptime ratio strictly above
// r. The paper reports 30 machines above 0.5, fewer than 10 above 0.8 and
// none above 0.9.
func CountAbove(us []MachineUptime, r float64) int {
	n := 0
	for _, u := range us {
		if u.Ratio > r {
			n++
		}
	}
	return n
}

// FreeMachineHeat collapses the Figure 3 series into a 7×24 time-of-week
// grid: the mean number of user-free machines per hour of the week, the
// "harvest windows" view of availability (rendered by report.Heatmap).
func FreeMachineHeat(s AvailabilitySeries) []float64 {
	var acc [7 * 24]stats.Running
	for _, p := range s.Points {
		day := (int(p.Time.Weekday()) + 6) % 7
		acc[day*24+p.Time.Hour()].Add(float64(p.UserFree))
	}
	out := make([]float64, len(acc))
	for i := range acc {
		out[i] = acc[i].Mean()
	}
	return out
}
