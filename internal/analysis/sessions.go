package analysis

import (
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// DetectedSession is one machine session (boot → shutdown) as seen by the
// sampling methodology: a maximal run of consecutive same-boot samples.
// Its length is the uptime reported by the last sample of the run, which
// systematically underestimates the true length by up to one period — the
// same bias the paper's methodology has.
type DetectedSession struct {
	Machine  string
	BootTime time.Time
	First    time.Time // first sample of the run
	Last     time.Time // last sample of the run
	Length   time.Duration
	Samples  int
}

// SessionStats summarises the detected machine sessions (§5.2.1 and the
// right plot of Figure 4).
type SessionStats struct {
	Count  int
	Mean   time.Duration // the paper reports 15 h 55 m
	StdDev time.Duration // 26.65 h

	// Hist is the distribution of session lengths up to HistCap; sessions
	// beyond it are the histogram's Over() mass. The paper uses 96 h.
	Hist    *stats.Histogram
	HistCap time.Duration

	// ShortFraction is the fraction of sessions within HistCap (98.7% in
	// the paper); ShortUptimeFraction is their share of cumulated uptime
	// (87.93%).
	ShortFraction       float64
	ShortUptimeFraction float64
}

// DetectSessions extracts the machine sessions visible to the sampling
// methodology. Note that reboots happening entirely between two samples
// are merged into one detected session when the machine's uptime at the
// next sample is larger than the gap (only one reboot is detectable per
// gap, §5.2.1) — with a 15-minute period this loses the very short cycles
// that only SMART counters reveal.
func DetectSessions(d *trace.Dataset) []DetectedSession {
	var out []DetectedSession
	d.Index().EachMachine(func(id string, ss []trace.Sample) {
		var cur *DetectedSession
		for i := range ss {
			s := &ss[i]
			if cur != nil && trace.SameBoot(&trace.Sample{BootTime: cur.BootTime}, s) {
				cur.Last = s.Time
				cur.Length = s.Uptime
				cur.Samples++
				continue
			}
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &DetectedSession{
				Machine:  s.Machine,
				BootTime: s.BootTime,
				First:    s.Time,
				Last:     s.Time,
				Length:   s.Uptime,
				Samples:  1,
			}
		}
		if cur != nil {
			out = append(out, *cur)
		}
	})
	return out
}

// Sessions computes the §5.2.1 statistics with the given histogram cap
// (the paper uses 96 h with 24 four-hour bins).
func Sessions(d *trace.Dataset, histCap time.Duration, bins int) SessionStats {
	sessions := DetectSessions(d)
	if histCap <= 0 {
		histCap = 96 * time.Hour
	}
	if bins <= 0 {
		bins = 24
	}
	st := SessionStats{
		Hist:    stats.NewHistogram(0, histCap.Hours(), bins),
		HistCap: histCap,
	}
	var lengths stats.Running
	var uptimeAll, uptimeShort float64
	for _, s := range sessions {
		h := s.Length.Hours()
		lengths.Add(h)
		st.Hist.Add(h)
		uptimeAll += h
		if s.Length <= histCap {
			uptimeShort += h
		}
	}
	st.Count = len(sessions)
	st.Mean = time.Duration(lengths.Mean() * float64(time.Hour))
	st.StdDev = time.Duration(lengths.StdDev() * float64(time.Hour))
	if st.Count > 0 {
		st.ShortFraction = st.Hist.InRangeFraction()
	}
	if uptimeAll > 0 {
		st.ShortUptimeFraction = uptimeShort / uptimeAll
	}
	return st
}
