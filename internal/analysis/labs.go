package analysis

import (
	"sort"
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// LabUsage is one laboratory's usage summary: how often its machines were
// up, how often occupied, and its resource idleness. The paper aggregates
// over the whole institution; the per-lab view exposes the structure the
// aggregate hides (students prefer the fast Pentium 4 rooms; the 128 MB
// rooms run hot on memory).
type LabUsage struct {
	Lab                  string
	Machines             int
	UptimePct            float64 // share of the lab's probe attempts answered
	OccupiedPct          float64 // share of attempts with an occupied session
	CPUIdlePct           float64
	RAMLoadPct           float64
	FreeRAMMBPerMachine  float64 // average unused memory per powered machine
	FreeDiskGBPerMachine float64
}

// ByLab computes per-laboratory usage with the given forgotten-session
// threshold. Labs are returned in name order.
func ByLab(d *trace.Dataset, threshold time.Duration) []LabUsage {
	type acc struct {
		machines map[string]bool
		samples  int
		occupied int
		ram      stats.Running
		freeRAM  stats.Running
		freeDisk stats.Running
		cpu      stats.Running
	}
	accs := map[string]*acc{}
	get := func(lb string) *acc {
		a := accs[lb]
		if a == nil {
			a = &acc{machines: map[string]bool{}}
			accs[lb] = a
		}
		return a
	}
	ramByID := make(map[string]int, len(d.Machines))
	labOf := make(map[string]string, len(d.Machines))
	// Per-lab probe attempts: full-lifetime machines are attempted every
	// iteration, partial-lifetime machines (fleet churn) only while they
	// are members — identical to iterations × machines on static fleets.
	labAttempts := make(map[string]int, 8)
	for _, m := range d.Machines {
		ramByID[m.ID] = m.RAMMB
		labOf[m.ID] = m.Lab
		get(m.Lab).machines[m.ID] = true
		labAttempts[m.Lab] += machineAttempts(&m, d.Iterations)
	}
	for i := range d.Samples {
		s := &d.Samples[i]
		a := get(s.Lab)
		a.samples++
		if Classify(s, threshold).Occupied() {
			a.occupied++
		}
		a.ram.Add(float64(s.MemLoadPct))
		if ram := ramByID[s.Machine]; ram > 0 {
			a.freeRAM.Add(float64(ram) * (100 - float64(s.MemLoadPct)) / 100)
		}
		a.freeDisk.Add(s.FreeDiskGB)
	}
	for _, iv := range d.Index().Intervals(2 * d.Period) {
		get(labOf[iv.B.Machine]).cpu.Add(iv.CPUIdlePct())
	}

	out := make([]LabUsage, 0, len(accs))
	for lb, a := range accs {
		u := LabUsage{
			Lab:                  lb,
			Machines:             len(a.machines),
			CPUIdlePct:           a.cpu.Mean(),
			RAMLoadPct:           a.ram.Mean(),
			FreeRAMMBPerMachine:  a.freeRAM.Mean(),
			FreeDiskGBPerMachine: a.freeDisk.Mean(),
		}
		if attempts := labAttempts[lb]; attempts > 0 {
			u.UptimePct = 100 * float64(a.samples) / float64(attempts)
			u.OccupiedPct = 100 * float64(a.occupied) / float64(attempts)
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lab < out[j].Lab })
	return out
}
