package analysis

import (
	"testing"
	"time"
)

func TestHeatmap(t *testing.T) {
	b := newBuilder(7, "m1", "m2")
	boot := t0.Add(-time.Hour)
	// Iterations 0 (Mon 00:00) and 4 (Mon 01:00): m1 answers both, m2
	// answers only iteration 0. Iteration 96*4 lands on Tuesday 00:00 with
	// only m1 up.
	b.sample(0, "m1", boot, 0.9, "", time.Time{})
	b.sample(0, "m2", boot, 0.9, "", time.Time{})
	b.sample(4, "m1", boot, 0.9, "", time.Time{})
	b.sample(96, "m1", boot, 0.9, "", time.Time{})

	hd := Heatmap(b.d, DefaultForgottenThreshold)
	if len(hd.Machines) != 2 {
		t.Fatalf("machines = %d, want 2", len(hd.Machines))
	}
	if got := hd.IterationsPerCell[0]; got != 1 { // Monday 00:00
		t.Errorf("iterations in Mon 00h = %d, want 1", got)
	}
	if got := hd.IterationsPerCell[1]; got != 1 { // Monday 01:00
		t.Errorf("iterations in Mon 01h = %d, want 1", got)
	}
	m1, m2 := hd.Machines[0], hd.Machines[1]
	if m1.Machine != "m1" || m2.Machine != "m2" {
		t.Fatalf("machine order: %q, %q", m1.Machine, m2.Machine)
	}
	if m1.Uptime[0] != 1 || m1.Uptime[1] != 1 || m1.Uptime[24] != 1 {
		t.Errorf("m1 cells = %v %v %v, want all 1", m1.Uptime[0], m1.Uptime[1], m1.Uptime[24])
	}
	if m2.Uptime[0] != 1 || m2.Uptime[1] != 0 || m2.Uptime[24] != 0 {
		t.Errorf("m2 cells = %v %v %v, want 1 0 0", m2.Uptime[0], m2.Uptime[1], m2.Uptime[24])
	}
	if len(hd.FreeMachines) != HeatHours {
		t.Errorf("free-machine grid has %d cells, want %d", len(hd.FreeMachines), HeatHours)
	}
	// Monday 00:00: 2 and 1 user-free machines over the two iterations in
	// distinct hours; cell 0 saw only iteration 0 with both machines free.
	if got := hd.FreeMachines[0]; got != 2 {
		t.Errorf("free machines Mon 00h = %v, want 2", got)
	}
}

func TestHeatmapDuplicateSampleDedup(t *testing.T) {
	b := newBuilder(1, "m1")
	boot := t0.Add(-time.Hour)
	b.sample(0, "m1", boot, 0.9, "", time.Time{})
	// Duplicate sample for the same iteration must not double-count.
	b.sample(0, "m1", boot, 0.9, "", time.Time{})
	hd := Heatmap(b.d, DefaultForgottenThreshold)
	if got := hd.Machines[0].Uptime[0]; got != 1 {
		t.Errorf("uptime with duplicate sample = %v, want 1", got)
	}
}

func TestUptimeHistogram(t *testing.T) {
	us := []MachineUptime{
		{Ratio: 0}, {Ratio: 0.04}, {Ratio: 0.5}, {Ratio: 0.99}, {Ratio: 1.0},
		{Ratio: -0.1}, {Ratio: 1.5}, // clamped
	}
	h := UptimeHistogram(us, 20)
	if len(h) != 20 {
		t.Fatalf("bins = %d, want 20", len(h))
	}
	if h[0] != 3 { // 0, 0.04, -0.1
		t.Errorf("bin 0 = %d, want 3", h[0])
	}
	if h[10] != 1 {
		t.Errorf("bin 10 = %d, want 1", h[10])
	}
	if h[19] != 3 { // 0.99, 1.0, 1.5
		t.Errorf("bin 19 = %d, want 3", h[19])
	}
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(us) {
		t.Errorf("histogram mass = %d, want %d", total, len(us))
	}
}
