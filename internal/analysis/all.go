package analysis

import (
	"runtime"
	"sync"
	"time"

	"winlab/internal/trace"
)

// Options configures the parallel analysis driver. The zero value
// reproduces the paper's choices: the 10-hour forgotten threshold, the
// 96-hour/24-bin session histogram, the 24-hour session-age profile, the
// NBench-weighted equivalence ratio, and one worker per CPU.
type Options struct {
	// Threshold is the forgotten-session threshold; zero means
	// DefaultForgottenThreshold. (To analyse with reclassification
	// disabled, call the individual functions with a zero threshold.)
	Threshold time.Duration

	// HistCap / HistBins bound the session-length histogram; zero means
	// the paper's 96 h / 24 bins.
	HistCap  time.Duration
	HistBins int

	// SessionAgeHours bounds the Figure 2 profile; zero means 24.
	SessionAgeHours int

	// UnweightedEquivalence disables the NBench-index weighting of the
	// equivalence ratio (the ablation; the paper weights).
	UnweightedEquivalence bool

	// Workers bounds the concurrent artefact computations; zero means
	// GOMAXPROCS, one runs the exact serial path on the calling goroutine.
	Workers int
}

// Results bundles every table and figure the paper derives from a trace —
// the same artefacts core.Analyze renders, computed by All.
type Results struct {
	Table2       Table2
	SessionAge   SessionAgeProfile
	Availability AvailabilitySeries
	Uptimes      []MachineUptime
	Sessions     SessionStats
	PowerCycles  PowerCycleStats
	Weekly       *WeeklyProfiles
	Equivalence  EquivalenceResult
	Labs         []LabUsage
	Capacity     CapacityReport
}

// All computes every headline artefact of the paper concurrently over a
// bounded worker pool and returns results identical to calling each serial
// function in turn.
//
// Identical means identical: the dataset is frozen once up front, so every
// worker reads the same machine-sorted spans and the same cached interval
// pairs, and each artefact's internal accumulation order is exactly the
// serial function's order. Parallelism only interleaves *between*
// artefacts, never inside one, so no floating-point reassociation occurs
// (asserted by TestAllMatchesSerial under -race).
func All(d *trace.Dataset, opts Options) *Results {
	if opts.Threshold == 0 {
		opts.Threshold = DefaultForgottenThreshold
	}
	if opts.HistCap <= 0 {
		opts.HistCap = 96 * time.Hour
	}
	if opts.HistBins <= 0 {
		opts.HistBins = 24
	}
	if opts.SessionAgeHours <= 0 {
		opts.SessionAgeHours = 24
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Freeze once: the single sort and the interval pairings happen here,
	// not N times inside the workers. Warming the one maxGap every
	// artefact uses keeps the workers read-only on the cache.
	idx := d.Index()
	idx.Intervals(2 * d.Period)

	res := &Results{}
	jobs := []func(){
		func() { res.Table2 = MainResults(d, opts.Threshold) },
		func() { res.SessionAge = SessionAge(d, opts.SessionAgeHours) },
		func() { res.Availability = Availability(d, opts.Threshold) },
		func() { res.Uptimes = UptimeRatios(d) },
		func() { res.Sessions = Sessions(d, opts.HistCap, opts.HistBins) },
		func() { res.PowerCycles = PowerCycles(d) },
		func() { res.Weekly = Weekly(d) },
		func() { res.Equivalence = Equivalence(d, !opts.UnweightedEquivalence) },
		func() { res.Labs = ByLab(d, opts.Threshold) },
		func() { res.Capacity = Capacity(d) },
	}
	if workers == 1 {
		for _, job := range jobs {
			job()
		}
		return res
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	ch := make(chan func())
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for job := range ch {
				job()
			}
		}()
	}
	for _, job := range jobs {
		ch <- job
	}
	close(ch)
	wg.Wait()
	return res
}
