package analysis

import (
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// Column is one column of the paper's Table 2: aggregate resource usage
// over a class of samples ("No login", "With login" or "Both").
type Column struct {
	Samples     int
	UptimePct   float64 // share of all probe attempts answered by this class
	CPUIdlePct  float64 // mean CPU idleness between consecutive samples
	RAMLoadPct  float64
	SwapLoadPct float64
	DiskUsedGB  float64
	SentBps     float64
	RecvBps     float64

	// Spread diagnostics (not printed by the paper but useful).
	CPUIdleSD float64
	RAMLoadSD float64
}

// Table2 is the paper's main results table.
type Table2 struct {
	Threshold time.Duration
	Reclass   ReclassifyStats
	NoLogin   Column
	WithLogin Column
	Both      Column
}

// table2Acc accumulates one column.
type table2Acc struct {
	samples int
	cpuIdle stats.Running
	ram     stats.Running
	swap    stats.Running
	disk    stats.Running
	sent    stats.Running
	recv    stats.Running
}

func (a *table2Acc) column(attempts int) Column {
	c := Column{
		Samples:     a.samples,
		CPUIdlePct:  a.cpuIdle.Mean(),
		CPUIdleSD:   a.cpuIdle.StdDev(),
		RAMLoadPct:  a.ram.Mean(),
		RAMLoadSD:   a.ram.StdDev(),
		SwapLoadPct: a.swap.Mean(),
		DiskUsedGB:  a.disk.Mean(),
		SentBps:     a.sent.Mean(),
		RecvBps:     a.recv.Mean(),
	}
	if attempts > 0 {
		c.UptimePct = 100 * float64(a.samples) / float64(attempts)
	}
	return c
}

// MainResults computes Table 2. Samples are classified with the forgotten
// threshold: Forgotten samples are counted in the No-login column, exactly
// as §4.2 prescribes ("we consider samples reporting an interactive
// user-session equal or above than 10 hours as being captured on
// non-occupied machines").
//
// Memory, swap and disk statistics come from raw samples; CPU idleness and
// network rates come from consecutive same-boot sample pairs, classified
// by the later sample of the pair. Interval metrics skip pairs separated
// by more than twice the sampling period (collector outages).
func MainResults(d *trace.Dataset, threshold time.Duration) Table2 {
	idx := d.Index()
	var no, with, both table2Acc

	for i := range d.Samples {
		s := &d.Samples[i]
		acc := &no
		if Classify(s, threshold).Occupied() {
			acc = &with
		}
		for _, a := range []*table2Acc{acc, &both} {
			a.samples++
			a.ram.Add(float64(s.MemLoadPct))
			a.swap.Add(float64(s.SwapLoadPct))
			a.disk.Add(s.UsedDiskGB())
		}
	}

	maxGap := 2 * d.Period
	for _, iv := range idx.Intervals(maxGap) {
		acc := &no
		if Classify(iv.B, threshold).Occupied() {
			acc = &with
		}
		for _, a := range []*table2Acc{acc, &both} {
			a.cpuIdle.Add(iv.CPUIdlePct())
			a.sent.Add(iv.SentBps())
			a.recv.Add(iv.RecvBps())
		}
	}

	attempts := idx.Attempts()
	return Table2{
		Threshold: threshold,
		Reclass:   Reclassify(d, threshold),
		NoLogin:   no.column(attempts),
		WithLogin: with.column(attempts),
		Both:      both.column(attempts),
	}
}
