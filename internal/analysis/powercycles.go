package analysis

import (
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// PowerCycleStats reproduces §5.2.2: machine stability seen through the
// SMART counters instead of the sampling methodology.
type PowerCycleStats struct {
	// Monitoring window (first to last sample of each machine).
	TotalCycles      int64   // the paper reports 13,871
	AvgPerMachine    float64 // 82.57
	SDPerMachine     float64 // 37.05
	CyclesPerDay     float64 // 1.07
	DetectedSessions int     // sessions the sampling methodology saw (10,688)
	// UndetectedRatio is TotalCycles / DetectedSessions − 1: the share of
	// power cycles invisible to 15-minute sampling (~30% in the paper).
	UndetectedRatio float64

	// Uptime per power cycle during the monitoring window, averaged over
	// machines (13 h 54 m, σ ≈ 8 h in the paper).
	UptimePerCycle   time.Duration
	UptimePerCycleSD time.Duration

	// Lifetime uptime per power cycle from the raw SMART counters at the
	// end of the experiment (6.46 h, σ 4.78 h in the paper).
	LifetimePerCycle   time.Duration
	LifetimePerCycleSD time.Duration
}

// PowerCycles computes the SMART-based stability statistics.
//
// Per machine, the number of cycles in the monitoring window is the
// difference between the SMART cycle counter of the last and first
// samples, plus one: the boot that produced the first sample is itself a
// cycle that the difference misses.
func PowerCycles(d *trace.Dataset) PowerCycleStats {
	idx := d.Index()
	days := idx.Days()

	var st PowerCycleStats
	var perMach, perCycle, lifetime stats.Running
	idx.EachMachine(func(id string, ss []trace.Sample) {
		if len(ss) == 0 {
			return
		}
		first, last := &ss[0], &ss[len(ss)-1]
		cycles := last.PowerCycles - first.PowerCycles + 1
		if cycles < 1 {
			cycles = 1
		}
		st.TotalCycles += cycles
		perMach.Add(float64(cycles))

		// Powered-on hours accumulated during the window. The first
		// sample's uptime predates the counter difference, so add it back
		// (in whole hours the SMART attribute would have counted).
		hours := float64(last.PowerOnHours-first.PowerOnHours) + first.Uptime.Hours()
		if hours > 0 {
			perCycle.Add(hours / float64(cycles))
		}

		if last.PowerCycles > 0 {
			lifetime.Add(float64(last.PowerOnHours) / float64(last.PowerCycles))
		}
	})
	st.AvgPerMachine = perMach.Mean()
	st.SDPerMachine = perMach.StdDev()
	if days > 0 {
		st.CyclesPerDay = perMach.Mean() / days
	}
	st.DetectedSessions = len(DetectSessions(d))
	if st.DetectedSessions > 0 {
		st.UndetectedRatio = float64(st.TotalCycles)/float64(st.DetectedSessions) - 1
	}
	st.UptimePerCycle = time.Duration(perCycle.Mean() * float64(time.Hour))
	st.UptimePerCycleSD = time.Duration(perCycle.StdDev() * float64(time.Hour))
	st.LifetimePerCycle = time.Duration(lifetime.Mean() * float64(time.Hour))
	st.LifetimePerCycleSD = time.Duration(lifetime.StdDev() * float64(time.Hour))
	return st
}
