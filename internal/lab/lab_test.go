package lab

import (
	"strings"
	"testing"
	"time"
)

func TestPaperCatalogShape(t *testing.T) {
	specs := PaperCatalog()
	if len(specs) != 11 {
		t.Fatalf("labs = %d, want 11", len(specs))
	}
	total := 0
	for _, s := range specs {
		total += s.Machines
		want := 16
		if s.Name == "L09" {
			want = 9
		}
		if s.Machines != want {
			t.Errorf("%s has %d machines, want %d", s.Name, s.Machines, want)
		}
		if s.BaseImgGB >= s.DiskGB {
			t.Errorf("%s image %v ≥ disk %v", s.Name, s.BaseImgGB, s.DiskGB)
		}
	}
	if total != 169 {
		t.Errorf("fleet size = %d, want 169", total)
	}
}

func TestAggregatesMatchPaper(t *testing.T) {
	a := Aggregate(PaperCatalog())
	// §4.1: "56.62 GB of memory, 6.66 TB of disk and more than 98.6
	// GFlops"; Table 1 averages 340.8 MB / 40.3 GB / 25.5 / 24.6. The
	// paper's own rounding is loose, so we assert close bands.
	if a.Machines != 169 {
		t.Errorf("machines = %d", a.Machines)
	}
	if a.TotalRAMGB < 55 || a.TotalRAMGB > 58 {
		t.Errorf("total RAM = %.2f GB, want ≈56.6", a.TotalRAMGB)
	}
	if a.TotalDiskTB < 6.5 || a.TotalDiskTB > 6.8 {
		t.Errorf("total disk = %.2f TB, want ≈6.66", a.TotalDiskTB)
	}
	if a.AvgRAMMB < 335 || a.AvgRAMMB > 350 {
		t.Errorf("avg RAM = %.1f MB, want ≈341", a.AvgRAMMB)
	}
	if a.AvgDiskGB < 39 || a.AvgDiskGB > 42 {
		t.Errorf("avg disk = %.1f GB, want ≈40.3", a.AvgDiskGB)
	}
	if a.AvgInt < 24 || a.AvgInt > 27 {
		t.Errorf("avg INT = %.1f, want ≈25.5", a.AvgInt)
	}
	if a.AvgFP < 23.5 || a.AvgFP > 26.5 {
		t.Errorf("avg FP = %.1f, want ≈24.6", a.AvgFP)
	}
	if a.TotalGFlops < 97 || a.TotalGFlops > 100 {
		t.Errorf("total GFlops = %.1f, want ≈98.6", a.TotalGFlops)
	}
}

func TestMeanDiskImageNearPaperUsage(t *testing.T) {
	// The per-lab base images must average near Table 2's 13.6 GB.
	specs := PaperCatalog()
	var sum float64
	n := 0
	for _, s := range specs {
		sum += s.BaseImgGB * float64(s.Machines)
		n += s.Machines
	}
	avg := sum / float64(n)
	if avg < 13.2 || avg > 14.1 {
		t.Errorf("avg base image = %.2f GB, want ≈13.6", avg)
	}
}

func TestBuildFleet(t *testing.T) {
	f := BuildPaperFleet(1)
	if f.Size() != 169 {
		t.Fatalf("fleet size = %d", f.Size())
	}
	if len(f.ByLab) != 11 || len(f.ByLab["L09"]) != 9 {
		t.Errorf("lab grouping wrong")
	}
	m := f.Get("L03-M05")
	if m == nil {
		t.Fatal("L03-M05 missing")
	}
	if m.HW.CPUGHz != 2.6 || m.HW.RAMMB != 512 || m.HW.IntIndex != 39.3 {
		t.Errorf("L03 hardware wrong: %+v", m.HW)
	}
	if f.Get("L99-M01") != nil {
		t.Error("unknown machine resolved")
	}
	if got := f.SpecOf(m).Name; got != "L03" {
		t.Errorf("SpecOf = %s", got)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := BuildPaperFleet(7)
	b := BuildPaperFleet(7)
	at := time.Unix(0, 0)
	for i := range a.Machines {
		da, db := a.Machines[i].Disk, b.Machines[i].Disk
		if da.PowerCycleCount(at) != db.PowerCycleCount(at) ||
			da.PowerOnHours(at) != db.PowerOnHours(at) {
			t.Fatalf("machine %d disk life differs across identical seeds", i)
		}
	}
	c := BuildPaperFleet(8)
	diff := false
	for i := range a.Machines {
		if a.Machines[i].Disk.PowerCycleCount(at) != c.Machines[i].Disk.PowerCycleCount(at) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical disk lives")
	}
}

func TestDiskLifeSeeding(t *testing.T) {
	f := BuildPaperFleet(3)
	at := time.Unix(0, 0)
	var sumPerCycle float64
	for _, m := range f.Machines {
		c := m.Disk.PowerCycleCount(at)
		h := m.Disk.PowerOnHours(at)
		if c <= 0 || h < 0 {
			t.Fatalf("%s: cycles=%d hours=%d", m.ID, c, h)
		}
		sumPerCycle += float64(h) / float64(c)
	}
	avg := sumPerCycle / float64(f.Size())
	// §5.2.2 reports a lifetime average of 6.46 h/cycle; the seed targets
	// slightly below so the experiment's longer cycles blend to ≈6.5.
	if avg < 4 || avg > 8 {
		t.Errorf("seeded lifetime uptime/cycle = %.2f h, want ≈5–7", avg)
	}
}

func TestUniqueIdentifiers(t *testing.T) {
	f := BuildPaperFleet(1)
	ids := map[string]bool{}
	serials := map[string]bool{}
	macs := map[string]bool{}
	for _, m := range f.Machines {
		if ids[m.ID] {
			t.Fatalf("duplicate machine ID %s", m.ID)
		}
		ids[m.ID] = true
		if serials[m.Disk.Serial] {
			t.Fatalf("duplicate disk serial %s", m.Disk.Serial)
		}
		serials[m.Disk.Serial] = true
		for _, mac := range m.HW.MACs {
			if macs[mac] {
				t.Fatalf("duplicate MAC %s", mac)
			}
			macs[mac] = true
		}
		if !strings.HasPrefix(m.ID, m.Lab+"-") {
			t.Errorf("machine ID %s not prefixed by lab %s", m.ID, m.Lab)
		}
	}
}

func TestTotalPerfIndex(t *testing.T) {
	f := BuildPaperFleet(1)
	got := f.TotalPerfIndex()
	// Sum over Table 1: 16·(31.8+31.8+38+31.9+21.55+37.95+22.8+20.45+12.95+12.95)+9·12.9 = 4310.5
	if got < 4310 || got > 4311 {
		t.Errorf("total perf index = %.1f, want 4310.5", got)
	}
}

func TestSpecPerfIndex(t *testing.T) {
	s := Spec{IntIndex: 30, FPIndex: 34}
	if s.PerfIndex() != 32 {
		t.Errorf("PerfIndex = %v", s.PerfIndex())
	}
}

func TestSpecOfUnknownPanics(t *testing.T) {
	f := BuildPaperFleet(1)
	m := f.Machines[0]
	m.Lab = "nope"
	defer func() {
		if recover() == nil {
			t.Error("SpecOf unknown lab did not panic")
		}
	}()
	f.SpecOf(m)
}
