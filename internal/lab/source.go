package lab

import (
	"time"

	"winlab/internal/machine"
)

// Source adapts a Fleet to the collector's StateSource interface
// (ddc.StateSource is satisfied structurally): Snapshot probes the named
// machine at the given instant, reporting ok=false for unknown or
// unreachable machines. It is the one canonical fleet→collector adapter;
// the experiment driver and the benchmarks both use it.
type Source struct{ Fleet *Fleet }

// Snapshot implements the collector's StateSource.
func (s Source) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	m := s.Fleet.Get(id)
	if m == nil {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(at)
}
