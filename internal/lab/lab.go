// Package lab defines the laboratory catalogue of the monitored institution
// (the paper's Table 1) and builds the simulated fleet.
//
// The hardware data — CPU model and frequency, installed RAM, disk size and
// the NBench INT/FP performance indexes — are taken verbatim from Table 1.
// Each classroom has 16 machines except L09, which has 9, for a total of
// 169 machines.
package lab

import (
	"fmt"
	"time"

	"winlab/internal/machine"
	"winlab/internal/rng"
	"winlab/internal/smart"
)

// Spec describes one laboratory: its name, machine count and the hardware
// common to all of its machines.
type Spec struct {
	Name      string
	Machines  int
	CPUModel  string
	CPUGHz    float64
	RAMMB     int
	DiskGB    float64
	IntIndex  float64
	FPIndex   float64
	BaseImgGB float64 // installed OS + class software image
}

// PerfIndex returns the 50/50 INT/FP combined index for the lab's machines.
func (s Spec) PerfIndex() float64 { return 0.5*s.IntIndex + 0.5*s.FPIndex }

// PaperCatalog returns the 11 laboratories of the paper's Table 1.
//
// BaseImgGB is not in the paper; it is chosen so the fleet-average used
// disk space lands at the paper's 13.6 GB (Table 2) while respecting each
// disk's capacity (the 14.5 GB disks obviously cannot hold 13.6 GB of image
// plus headroom).
func PaperCatalog() []Spec {
	return []Spec{
		{Name: "L01", Machines: 16, CPUModel: "Intel Pentium 4", CPUGHz: 2.4, RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1, BaseImgGB: 20.0},
		{Name: "L02", Machines: 16, CPUModel: "Intel Pentium 4", CPUGHz: 2.4, RAMMB: 512, DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1, BaseImgGB: 20.0},
		{Name: "L03", Machines: 16, CPUModel: "Intel Pentium 4", CPUGHz: 2.6, RAMMB: 512, DiskGB: 55.8, IntIndex: 39.3, FPIndex: 36.7, BaseImgGB: 16.0},
		{Name: "L04", Machines: 16, CPUModel: "Intel Pentium 4", CPUGHz: 2.4, RAMMB: 512, DiskGB: 59.5, IntIndex: 30.6, FPIndex: 33.2, BaseImgGB: 17.0},
		{Name: "L05", Machines: 16, CPUModel: "Intel Pentium III", CPUGHz: 1.1, RAMMB: 512, DiskGB: 14.5, IntIndex: 23.2, FPIndex: 19.9, BaseImgGB: 9.0},
		{Name: "L06", Machines: 16, CPUModel: "Intel Pentium 4", CPUGHz: 2.6, RAMMB: 256, DiskGB: 55.9, IntIndex: 39.2, FPIndex: 36.7, BaseImgGB: 16.0},
		{Name: "L07", Machines: 16, CPUModel: "Intel Pentium 4", CPUGHz: 1.5, RAMMB: 256, DiskGB: 37.3, IntIndex: 23.5, FPIndex: 22.1, BaseImgGB: 13.0},
		{Name: "L08", Machines: 16, CPUModel: "Intel Pentium III", CPUGHz: 1.1, RAMMB: 256, DiskGB: 18.6, IntIndex: 22.3, FPIndex: 18.6, BaseImgGB: 10.0},
		{Name: "L09", Machines: 9, CPUModel: "Intel Pentium III", CPUGHz: 0.65, RAMMB: 128, DiskGB: 14.5, IntIndex: 13.7, FPIndex: 12.1, BaseImgGB: 9.0},
		{Name: "L10", Machines: 16, CPUModel: "Intel Pentium III", CPUGHz: 0.65, RAMMB: 128, DiskGB: 14.5, IntIndex: 13.7, FPIndex: 12.2, BaseImgGB: 9.0},
		{Name: "L11", Machines: 16, CPUModel: "Intel Pentium III", CPUGHz: 0.65, RAMMB: 128, DiskGB: 14.5, IntIndex: 13.7, FPIndex: 12.2, BaseImgGB: 9.0},
	}
}

// Aggregates summarises the fleet-wide hardware totals the paper quotes in
// §4.1 ("56.62 GB of memory, 6.66 TB of disk and more than 98.6 GFlops").
type Aggregates struct {
	Machines    int
	TotalRAMGB  float64
	AvgRAMMB    float64
	TotalDiskTB float64
	AvgDiskGB   float64
	AvgInt      float64
	AvgFP       float64
	TotalGFlops float64
}

// gflopsPerFPIndex converts an NBench FP index unit into GFlops. The
// constant is calibrated so the paper's fleet sums to ≈98.6 GFlops; the
// paper does not state its own conversion.
const gflopsPerFPIndex = 98.6 / 4233.7 * 1000 // MFlops per FP-index unit

// Aggregate computes fleet-wide totals over the catalogue.
func Aggregate(specs []Spec) Aggregates {
	var a Aggregates
	var sumInt, sumFP, sumMFlops float64
	for _, s := range specs {
		n := float64(s.Machines)
		a.Machines += s.Machines
		a.TotalRAMGB += n * float64(s.RAMMB) / 1024
		a.TotalDiskTB += n * s.DiskGB / 1024
		sumInt += n * s.IntIndex
		sumFP += n * s.FPIndex
		sumMFlops += n * s.FPIndex * gflopsPerFPIndex
	}
	n := float64(a.Machines)
	a.AvgRAMMB = a.TotalRAMGB * 1024 / n
	a.AvgDiskGB = a.TotalDiskTB * 1024 / n
	a.AvgInt = sumInt / n
	a.AvgFP = sumFP / n
	a.TotalGFlops = sumMFlops / 1000
	return a
}

// Fleet is the set of simulated machines, grouped by laboratory.
type Fleet struct {
	Specs    []Spec
	Machines []*machine.Machine
	ByLab    map[string][]*machine.Machine
	byID     map[string]*machine.Machine

	// overrides maps machine ID → hardware spec for machines whose
	// hardware differs from their lab's catalogue entry (scenario
	// hardware refresh: a replacement joins with newer RAM/disk/NBench
	// indexes under a new ID). See Add.
	overrides map[string]Spec
}

// DiskLife configures the pre-experiment SMART seeding of the fleet's
// disks. The paper's machines were under 3 years old and had a lifetime
// average of 6.46 h of uptime per power cycle (σ 4.78 h).
type DiskLife struct {
	MinAgeDays, MaxAgeDays float64 // uniform machine age
	CyclesPerDay           float64 // mean pre-experiment power cycles per day
	HoursPerCycleMean      float64
	HoursPerCycleSD        float64
}

// DefaultDiskLife returns seeding parameters matching §5.2.2.
func DefaultDiskLife() DiskLife {
	return DiskLife{
		MinAgeDays:        240,
		MaxAgeDays:        1000,
		CyclesPerDay:      1.35,
		HoursPerCycleMean: 5.3,
		HoursPerCycleSD:   4.6,
	}
}

// Build creates the fleet from the catalogue. All machines start powered
// off; SMART counters are seeded with a synthetic pre-experiment life drawn
// from life using the "disklife" stream of seed.
func Build(specs []Spec, seed int64, life DiskLife) *Fleet {
	src := rng.Derive(seed, "disklife")
	f := &Fleet{
		Specs: specs,
		ByLab: make(map[string][]*machine.Machine),
		byID:  make(map[string]*machine.Machine),
	}
	idx := 0
	for _, s := range specs {
		for i := 0; i < s.Machines; i++ {
			idx++
			id := fmt.Sprintf("%s-M%02d", s.Name, i+1)
			disk := smart.NewDisk(fmt.Sprintf("WD-%s%04d", s.Name, idx), s.DiskGB)
			ageDays := src.Uniform(life.MinAgeDays, life.MaxAgeDays)
			cycles := int64(ageDays*life.CyclesPerDay*src.Uniform(0.7, 1.3)) + 1
			perCycle := src.BoundedNormal(life.HoursPerCycleMean, life.HoursPerCycleSD, 0.4, 20)
			disk.SeedLife(cycles, time.Duration(float64(cycles)*perCycle*float64(time.Hour)))
			hw := machine.Hardware{
				CPUModel: s.CPUModel,
				CPUGHz:   s.CPUGHz,
				RAMMB:    s.RAMMB,
				SwapMB:   machine.DefaultSwapMB(s.RAMMB),
				DiskGB:   s.DiskGB,
				IntIndex: s.IntIndex,
				FPIndex:  s.FPIndex,
				MACs:     []string{machine.SyntheticMAC(idx)},
				OS:       "Windows 2000 Professional SP3",
			}
			m := machine.New(id, s.Name, hw, disk)
			f.Machines = append(f.Machines, m)
			f.ByLab[s.Name] = append(f.ByLab[s.Name], m)
			f.byID[id] = m
		}
	}
	return f
}

// BuildPaperFleet builds the 169-machine fleet of the paper.
func BuildPaperFleet(seed int64) *Fleet {
	return Build(PaperCatalog(), seed, DefaultDiskLife())
}

// Extra is one machine outside the lab catalogue's uniform rows: a
// hardware-refresh replacement or a server added to an existing lab,
// with its own hardware spec. The Spec's Machines field is ignored.
type Extra struct {
	ID   string
	Lab  string
	Spec Spec
}

// Add appends one extra machine to the fleet with its own hardware
// spec, registering a per-machine override so SpecOf answers the
// machine's true hardware rather than the lab catalogue row. The disk
// is seeded as nearly new (a refresh replacement arrives with a fresh
// disk); src drives the small amount of seeding randomness and should
// be a dedicated stream so catalogue machines' draws are untouched.
func (f *Fleet) Add(e Extra, src *rng.Source) *machine.Machine {
	if f.byID[e.ID] != nil {
		panic("lab: duplicate machine ID " + e.ID)
	}
	s := e.Spec
	s.Name = e.Lab
	s.Machines = 1
	idx := len(f.Machines) + 1
	disk := smart.NewDisk(fmt.Sprintf("WD-%s%04d", e.Lab, idx), s.DiskGB)
	// A handful of burn-in cycles, not a years-old life.
	cycles := int64(src.Uniform(3, 20))
	perCycle := src.BoundedNormal(2, 1, 0.4, 8)
	disk.SeedLife(cycles, time.Duration(float64(cycles)*perCycle*float64(time.Hour)))
	hw := machine.Hardware{
		CPUModel: s.CPUModel,
		CPUGHz:   s.CPUGHz,
		RAMMB:    s.RAMMB,
		SwapMB:   machine.DefaultSwapMB(s.RAMMB),
		DiskGB:   s.DiskGB,
		IntIndex: s.IntIndex,
		FPIndex:  s.FPIndex,
		MACs:     []string{machine.SyntheticMAC(idx)},
		OS:       "Windows 2000 Professional SP3",
	}
	m := machine.New(e.ID, e.Lab, hw, disk)
	f.Machines = append(f.Machines, m)
	f.ByLab[e.Lab] = append(f.ByLab[e.Lab], m)
	f.byID[e.ID] = m
	if f.overrides == nil {
		f.overrides = make(map[string]Spec)
	}
	f.overrides[e.ID] = s
	return m
}

// Get returns the machine with the given ID, or nil.
func (f *Fleet) Get(id string) *machine.Machine { return f.byID[id] }

// Size returns the number of machines in the fleet.
func (f *Fleet) Size() int { return len(f.Machines) }

// SpecOf returns a machine's hardware spec: its per-machine override
// when it has one (refresh replacements, added servers), otherwise the
// catalogue row of its lab.
func (f *Fleet) SpecOf(m *machine.Machine) Spec {
	if s, ok := f.overrides[m.ID]; ok {
		return s
	}
	for _, s := range f.Specs {
		if s.Name == m.Lab {
			return s
		}
	}
	panic("lab: machine " + m.ID + " belongs to unknown lab " + m.Lab)
}

// TotalPerfIndex returns the sum of combined NBench indexes over the fleet,
// the denominator of the cluster-equivalence ratio.
func (f *Fleet) TotalPerfIndex() float64 {
	var t float64
	for _, m := range f.Machines {
		t += m.HW.PerfIndex()
	}
	return t
}
