package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/experiment"
	"winlab/internal/trace"
	"winlab/internal/trace/check"
	"winlab/internal/trace/stream"
)

// runDays executes the scenario on the default experiment, with the
// length clamped for test speed.
func runDays(t *testing.T, c *Config, seed int64, days int) *experiment.Result {
	t.Helper()
	cfg, err := c.Experiment(seed)
	if err != nil {
		t.Fatalf("Experiment(%s): %v", c.Name, err)
	}
	cfg.Days = days
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", c.Name, err)
	}
	return res
}

func encodeTB(t *testing.T, d *trace.Dataset) []byte {
	t.Helper()
	d.Freeze()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, d); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

// TestNoopIdentity is the composition contract: an empty scenario (and
// the bundled baseline) applies no hooks, so its trace is byte-for-byte
// the default experiment's.
func TestNoopIdentity(t *testing.T) {
	cfg := experiment.Default(7)
	cfg.Days = 5
	plain, err := experiment.Run(cfg)
	if err != nil {
		t.Fatalf("default run: %v", err)
	}
	want := encodeTB(t, plain.Dataset)

	for _, c := range []*Config{{Name: "empty"}, mustBundled(t, "baseline")} {
		res := runDays(t, c, 7, 5)
		if got := encodeTB(t, res.Dataset); !bytes.Equal(got, want) {
			t.Errorf("scenario %q: trace differs from the default run (%d vs %d bytes)", c.Name, len(got), len(want))
		}
	}
}

func mustBundled(t *testing.T, name string) *Config {
	t.Helper()
	c, err := Bundled(name)
	if err != nil {
		t.Fatalf("Bundled(%s): %v", name, err)
	}
	return c
}

// TestBundledValid: every bundled scenario validates, compiles onto the
// default experiment, and its calendars' NextClose terminates.
func TestBundledValid(t *testing.T) {
	for _, name := range Names() {
		c := mustBundled(t, name)
		if c.Name != name {
			t.Errorf("bundled %q says its name is %q", name, c.Name)
		}
		cfg, err := c.Experiment(1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for lb, cal := range cfg.LabCalendars {
			at, ok := cal.NextClose(cfg.Start.Add(26 * time.Hour))
			if cal.AlwaysOpen {
				if ok {
					t.Errorf("%s: always-open lab %s reported a close time %v", name, lb, at)
				}
			} else if !ok {
				t.Errorf("%s: lab %s calendar never closes", name, lb)
			}
		}
	}
}

// TestOverlayRamp pins the phase interpolation: level 1 before the
// first phase, linear through the ramp, the target after it, and the
// previous phase's level as the next ramp's starting point.
func TestOverlayRamp(t *testing.T) {
	start := time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC)
	o := &overlay{start: start, phases: []Phase{
		{StartDay: 10, RampDays: 4, Arrival: 0.2},
		{StartDay: 20, Arrival: 0.6, Power: 1.5},
	}}
	day := func(d float64) time.Time { return start.Add(time.Duration(d * 24 * float64(time.Hour))) }
	cases := []struct {
		day  float64
		want float64
	}{
		{0, 1}, {9.99, 1},
		{10, 1}, {12, 0.6}, {14, 0.2}, // 1 → 0.2 over 4 days
		{17, 0.2},
		{20, 0.6}, {34, 0.6}, // step change, no ramp
	}
	for _, tc := range cases {
		if got := o.ArrivalFactor(day(tc.day)); !approx(got, tc.want) {
			t.Errorf("ArrivalFactor(day %.2f) = %g, want %g", tc.day, got, tc.want)
		}
	}
	// Attendance never named → always 1; Power steps at day 20.
	if got := o.AttendanceFactor(day(15)); got != 1 {
		t.Errorf("AttendanceFactor mid-ramp = %g, want 1 (unnamed)", got)
	}
	if got := o.PowerFactor(day(12)); got != 1 {
		t.Errorf("PowerFactor(day 12) = %g, want 1", got)
	}
	if got := o.PowerFactor(day(21)); !approx(got, 1.5) {
		t.Errorf("PowerFactor(day 21) = %g, want 1.5", got)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestParseRejects: malformed scenarios fail at the door.
func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"name":"x","phaes":[]}`,
		"no name":         `{"days":5}`,
		"bad metric":      `{"name":"x","claims":[{"metric":"uptime","direction":"up"}]}`,
		"bad direction":   `{"name":"x","claims":[{"metric":"availability","direction":"sideways"}]}`,
		"bad location":    `{"name":"x","calendars":{"L01":{"location":"Mars/Olympus"}}}`,
		"leave<=join":     `{"name":"x","lifecycle":[{"machine":"L01-M01","join_day":5,"leave_day":5}]}`,
		"extra sans lab":  `{"name":"x","extras":[{"id":"S1","ram_mb":512,"disk_gb":10,"int_index":30,"fp_index":30}]}`,
		"negative phase":  `{"name":"x","phases":[{"start_day":-1}]}`,
		"bad cal hours":   `{"name":"x","calendars":{"L01":{"open_hour":8,"night_close":9,"sat_close_hour":21}}}`,
	}
	for label, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: Parse accepted %s", label, src)
		}
	}
}

// TestJSONRoundTrip: a bundled scenario survives marshal → Parse, so a
// scenario dumped to a file behaves identically when loaded back.
func TestJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		want := mustBundled(t, name)
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: parse back: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip changed the scenario:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestClaimCheck pins the claim arithmetic.
func TestClaimCheck(t *testing.T) {
	base := Metrics{Availability: 0.50, HarvestWork: 1000}
	up := Metrics{Availability: 0.60, HarvestWork: 1100}
	down := Metrics{Availability: 0.40, HarvestWork: 900}

	ok := func(cl Claim, got Metrics) {
		t.Helper()
		if err := cl.Check(base, got); err != nil {
			t.Errorf("claim %+v unexpectedly failed: %v", cl, err)
		}
	}
	bad := func(cl Claim, got Metrics) {
		t.Helper()
		if err := cl.Check(base, got); err == nil {
			t.Errorf("claim %+v unexpectedly held", cl)
		}
	}
	ok(Claim{Metric: MetricAvailability, Direction: DirUp, MinShift: 0.1}, up)
	bad(Claim{Metric: MetricAvailability, Direction: DirUp, MinShift: 0.3}, up)
	bad(Claim{Metric: MetricAvailability, Direction: DirUp, MinShift: 0.1}, down)
	ok(Claim{Metric: MetricHarvestWork, Direction: DirDown, MinShift: 0.05}, down)
	bad(Claim{Metric: MetricHarvestWork, Direction: DirDown, MinShift: 0.05}, up)
	ok(Claim{Metric: MetricAvailability, Direction: DirFlat, MinShift: 0.25}, up)
	bad(Claim{Metric: MetricAvailability, Direction: DirFlat, MinShift: 0.1}, down)
}

// churn is a compressed fleet-churn scenario for the end-to-end tests:
// two L05 machines retire at day 2, two Pentium 4 replacements join in
// their place, and one extra joins late *and* leaves early.
func churn() *Config {
	return &Config{
		Name: "churn-test",
		Lifecycle: []Lifecycle{
			{Machine: "L05-M01", LeaveDay: 2},
			{Machine: "L05-M02", LeaveDay: 2},
			{Machine: "L05-R01", JoinDay: 2},
			{Machine: "L05-R02", JoinDay: 2},
			{Machine: "L05-R03", JoinDay: 1, LeaveDay: 3},
		},
		Extras: []Machine{
			{ID: "L05-R01", Lab: "L05", CPUModel: "Intel Pentium 4", CPUGHz: 2.6, RAMMB: 512, DiskGB: 55.8, IntIndex: 39.3, FPIndex: 36.7, BaseImgGB: 16},
			{ID: "L05-R02", Lab: "L05", CPUModel: "Intel Pentium 4", CPUGHz: 2.6, RAMMB: 512, DiskGB: 55.8, IntIndex: 39.3, FPIndex: 36.7, BaseImgGB: 16},
			{ID: "L05-R03", Lab: "L05", CPUModel: "Intel Pentium 4", CPUGHz: 2.6, RAMMB: 512, DiskGB: 55.8, IntIndex: 39.3, FPIndex: 36.7, BaseImgGB: 16},
		},
	}
}

// TestChurnEndToEnd is the partial-lifetime machines contract, end to
// end: a run with joiners and leavers produces a doctor-clean trace
// whose catalogue carries the lifetime stamps, every sample falls
// inside its machine's declared window, the analysis denominators are
// per-machine, the TBv1 v2 encoding round-trips, and the streaming
// analysis reproduces the in-memory one bit for bit.
func TestChurnEndToEnd(t *testing.T) {
	res := runDays(t, churn(), 3, 5)
	d := res.Dataset
	iters := len(d.Iterations)
	perDay := int(24 * time.Hour / res.Config.Period)

	// The dataset invariant checker (which includes the lifetime check)
	// finds nothing.
	if rep := check.Check(d, check.Options{}); !rep.OK() {
		t.Fatalf("churn trace not doctor-clean: %v", rep.Err())
	}

	// Lifetime stamps: leavers end at day 2, joiners start at day 2,
	// the visitor holds [day 1, day 3).
	wantLife := map[string][2]int{
		"L05-M01": {0, 2 * perDay},
		"L05-M02": {0, 2 * perDay},
		"L05-R01": {2 * perDay, 0},
		"L05-R02": {2 * perDay, 0},
		"L05-R03": {1 * perDay, 3 * perDay},
	}
	byID := make(map[string]*trace.MachineInfo)
	for i := range d.Machines {
		byID[d.Machines[i].ID] = &d.Machines[i]
	}
	for id, want := range wantLife {
		mi := byID[id]
		if mi == nil {
			t.Fatalf("machine %s missing from the catalogue", id)
		}
		if mi.JoinIter != want[0] || mi.LeaveIter != want[1] {
			t.Errorf("%s: lifetime [%d,%d), want [%d,%d)", id, mi.JoinIter, mi.LeaveIter, want[0], want[1])
		}
	}

	// Samples respect the windows (Check already guarantees this; the
	// direct scan keeps the guarantee independent of the checker).
	idx := d.Index()
	for id := range wantLife {
		mi := byID[id]
		for _, s := range idx.Samples(id) {
			if !mi.ActiveAt(s.Iter) {
				t.Errorf("%s: sample at iteration %d outside [%d,%d)", id, s.Iter, mi.JoinIter, mi.LeaveIter)
			}
		}
	}

	// Per-machine denominators: no machine exceeds ratio 1, and the
	// late joiner's denominator is its membership, not the whole trace.
	ups := analysis.UptimeRatios(d)
	for _, u := range ups {
		if u.Ratio < 0 || u.Ratio > 1 {
			t.Errorf("%s: uptime ratio %g out of [0,1]", u.Machine, u.Ratio)
		}
	}
	joiner := byID["L05-R01"]
	attempts := 0
	for i := range d.Iterations {
		if joiner.ActiveAt(d.Iterations[i].Iter) {
			attempts++
		}
	}
	if attempts >= iters {
		t.Errorf("joiner denominator %d not smaller than the %d trace iterations", attempts, iters)
	}

	// TBv1 round trip: partial lifetimes force version 2 and survive
	// decode.
	tb := encodeTB(t, d)
	back, err := trace.ReadBinary(bytes.NewReader(tb))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if diff := check.FirstDiff(d.Machines, back.Machines); diff != "" {
		t.Errorf("catalogue changed across the binary round trip: %s", diff)
	}

	// Streaming analysis over the encoding matches in-memory analysis,
	// churn denominators included.
	want := analysis.All(d, analysis.Options{Workers: 1})
	c, err := stream.New(bytes.NewReader(tb))
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	got, err := analysis.AllStream(c, analysis.Options{Workers: 1})
	if err != nil {
		t.Fatalf("AllStream: %v", err)
	}
	if diff := check.FirstDiff(want, got); diff != "" {
		t.Errorf("AllStream diverges from All on a churn trace: %s", diff)
	}
}

// TestChurnSharded: the sharded collector reproduces the serial run on
// a churn scenario byte for byte, and the merged catalogue keeps the
// lifetime stamps.
func TestChurnSharded(t *testing.T) {
	serial := runDays(t, churn(), 3, 4)

	cfg, err := churn().Experiment(3)
	if err != nil {
		t.Fatalf("Experiment: %v", err)
	}
	cfg.Days = 4
	cfg.Shards = 4
	sharded, err := experiment.Run(cfg)
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	a := encodeTB(t, serial.Dataset)
	b := encodeTB(t, sharded.Dataset)
	if !bytes.Equal(a, b) {
		t.Fatalf("sharded churn run diverges from serial (%d vs %d bytes)", len(b), len(a))
	}
}
