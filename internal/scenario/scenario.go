// Package scenario is the declarative layer over the experiment: a
// scenario names a fleet-scale situation — a lockdown semester, a
// hardware-refresh year, an always-on server pool next to the
// classrooms, a campus spread across time zones — as plain data, and
// compiles it onto experiment.Config without forking the behaviour
// model. An empty scenario applies no hooks, so its run is
// byte-identical to the default experiment (TestNoopIdentity).
//
// The moving parts map onto the paper's world (§4.2's single calendar,
// §4.1's fixed 169-machine fleet) as controlled departures from it:
//
//   - Phases modulate the stochastic rates over time (regime shifts:
//     semester breaks, lockdowns, exam crunches) with linear ramps
//     between levels — behavior.Overlay.
//   - Lifecycle bounds machines' fleet membership in days (joiners,
//     leavers, hardware refresh as leave+join under a new ID) —
//     behavior.Lifecycle plus catalogue lifetime stamps.
//   - Calendars give labs their own opening hours and wall-clock time
//     zones; AlwaysOn marks server pools that never close and host no
//     interactive use — behavior.Calendar per lab.
//   - Claims document the directional movement of headline metrics
//     against a baseline run of the same length and seed; `make
//     scenarios` (tools/scenariobench) gates them in CI.
package scenario

import (
	"fmt"
	"sort"
	"time"
	// The bundled scenarios reference IANA zones (America/New_York,
	// Asia/Tokyo). Embed the zone database so they load on hosts
	// without /usr/share/zoneinfo (minimal containers, Windows).
	_ "time/tzdata"

	"winlab/internal/behavior"
	"winlab/internal/experiment"
	"winlab/internal/lab"
)

// Config is one scenario. The zero value is the no-op scenario: no
// hooks, runs byte-identical to the default experiment.
type Config struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Days overrides the experiment length; zero keeps the target
	// config's own (the paper's 77 for experiment.Default).
	Days int `json:"days,omitempty"`

	Phases    []Phase                `json:"phases,omitempty"`
	Calendars map[string]LabCalendar `json:"calendars,omitempty"`
	AlwaysOn  []string               `json:"always_on,omitempty"`
	Extras    []Machine              `json:"extras,omitempty"`
	Lifecycle []Lifecycle            `json:"lifecycle,omitempty"`

	// Claims are the scenario's documented directional effects,
	// checked against a baseline run by tools/scenariobench.
	Claims []Claim `json:"claims,omitempty"`
}

// Phase is one regime: from StartDay on, the stochastic rates sit at
// the phase's multipliers, reached by a linear ramp over RampDays from
// wherever the previous regime left them. A zero multiplier means
// "unchanged" (factor 1), so JSON phases only name what they move; use
// a small positive value (0.01) to express "almost none".
type Phase struct {
	Name     string `json:"name,omitempty"`
	StartDay int    `json:"start_day"`
	RampDays int    `json:"ramp_days,omitempty"`

	Arrival    float64 `json:"arrival,omitempty"`    // free-use arrival rate ×
	Attendance float64 `json:"attendance,omitempty"` // class attendance ×
	Power      float64 `json:"power,omitempty"`      // shutdown eagerness ×
}

// LabCalendar is one lab's opening pattern. Zero hours (with AlwaysOpen
// unset) inherit the behaviour config's default pattern, so a calendar
// that only names a Location means "the usual hours, in that zone".
type LabCalendar struct {
	OpenHour     int    `json:"open_hour,omitempty"`
	NightClose   int    `json:"night_close,omitempty"`
	SatCloseHour int    `json:"sat_close_hour,omitempty"`
	Location     string `json:"location,omitempty"` // IANA zone; "" = UTC
	AlwaysOpen   bool   `json:"always_open,omitempty"`
}

// Machine is one off-catalogue machine: a hardware-refresh replacement
// or an added server, with its own hardware spec.
type Machine struct {
	ID        string  `json:"id"`
	Lab       string  `json:"lab"`
	CPUModel  string  `json:"cpu_model,omitempty"`
	CPUGHz    float64 `json:"cpu_ghz,omitempty"`
	RAMMB     int     `json:"ram_mb"`
	DiskGB    float64 `json:"disk_gb"`
	IntIndex  float64 `json:"int_index"`
	FPIndex   float64 `json:"fp_index"`
	BaseImgGB float64 `json:"base_img_gb,omitempty"`
}

// Lifecycle bounds one machine's fleet membership in whole days after
// the experiment start. JoinDay 0 means "from the start"; LeaveDay 0
// means "until the end". A hardware refresh is a LeaveDay on the old
// machine plus an Extras entry and a JoinDay on its replacement.
type Lifecycle struct {
	Machine  string `json:"machine"`
	JoinDay  int    `json:"join_day,omitempty"`
	LeaveDay int    `json:"leave_day,omitempty"`
}

// Claim metrics (see Metrics for definitions).
const (
	MetricAvailability = "availability"
	MetricEquivalence  = "equivalence"
	MetricHarvestYield = "harvest-yield"
	MetricHarvestWork  = "harvest-work"
)

// Claim directions.
const (
	DirUp   = "up"
	DirDown = "down"
	DirFlat = "flat"
)

// Claim asserts how one metric moves against the baseline run: up or
// down by at least MinShift (relative), or flat within MinShift.
type Claim struct {
	Metric    string  `json:"metric"`
	Direction string  `json:"direction"`
	MinShift  float64 `json:"min_shift"`
}

// Validate rejects scenarios the experiment could not honour
// coherently. It is called by Apply; Load calls it on every parsed
// file so a bad scenario fails at the door.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if c.Days < 0 {
		return fmt.Errorf("scenario %s: negative days %d", c.Name, c.Days)
	}
	for i, p := range c.Phases {
		if p.StartDay < 0 || p.RampDays < 0 {
			return fmt.Errorf("scenario %s: phase %d has negative start/ramp (%d, %d)", c.Name, i, p.StartDay, p.RampDays)
		}
		if p.Arrival < 0 || p.Attendance < 0 || p.Power < 0 {
			return fmt.Errorf("scenario %s: phase %d has a negative multiplier", c.Name, i)
		}
	}
	for lb, lc := range c.Calendars {
		if _, err := lc.calendar(behavior.Config{}); err != nil {
			return fmt.Errorf("scenario %s: lab %s: %w", c.Name, lb, err)
		}
	}
	for i, m := range c.Extras {
		if m.ID == "" || m.Lab == "" {
			return fmt.Errorf("scenario %s: extra %d needs both id and lab", c.Name, i)
		}
		if m.DiskGB <= 0 || m.IntIndex <= 0 || m.FPIndex <= 0 || m.RAMMB <= 0 {
			return fmt.Errorf("scenario %s: extra %s needs positive ram_mb, disk_gb, int_index and fp_index", c.Name, m.ID)
		}
	}
	for i, lc := range c.Lifecycle {
		if lc.Machine == "" {
			return fmt.Errorf("scenario %s: lifecycle %d without a machine", c.Name, i)
		}
		if lc.JoinDay < 0 || lc.LeaveDay < 0 {
			return fmt.Errorf("scenario %s: machine %s has negative lifecycle days", c.Name, lc.Machine)
		}
		if lc.LeaveDay > 0 && lc.LeaveDay <= lc.JoinDay {
			return fmt.Errorf("scenario %s: machine %s leaves (day %d) before it joins (day %d)", c.Name, lc.Machine, lc.LeaveDay, lc.JoinDay)
		}
	}
	for i, cl := range c.Claims {
		switch cl.Metric {
		case MetricAvailability, MetricEquivalence, MetricHarvestYield, MetricHarvestWork:
		default:
			return fmt.Errorf("scenario %s: claim %d has unknown metric %q", c.Name, i, cl.Metric)
		}
		switch cl.Direction {
		case DirUp, DirDown, DirFlat:
		default:
			return fmt.Errorf("scenario %s: claim %d has unknown direction %q", c.Name, i, cl.Direction)
		}
		if cl.MinShift < 0 {
			return fmt.Errorf("scenario %s: claim %d has negative min_shift", c.Name, i)
		}
	}
	return nil
}

// Apply compiles the scenario onto an experiment config: length
// override, regime overlay, per-lab calendars, always-on pools, extra
// machines and lifecycle windows. The target's other knobs (seed,
// catalogue, behaviour calibration) are left alone.
func (c *Config) Apply(cfg *experiment.Config) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Days > 0 {
		cfg.Days = c.Days
	}
	if len(c.Phases) > 0 {
		phases := append([]Phase(nil), c.Phases...)
		sort.SliceStable(phases, func(i, j int) bool { return phases[i].StartDay < phases[j].StartDay })
		cfg.Overlay = &overlay{start: cfg.Start, phases: phases}
	}
	cals := make(map[string]behavior.Calendar, len(c.Calendars)+len(c.AlwaysOn))
	for lb, lc := range c.Calendars {
		cal, err := lc.calendar(cfg.Behavior)
		if err != nil {
			return fmt.Errorf("scenario %s: lab %s: %w", c.Name, lb, err)
		}
		cals[lb] = cal
	}
	// Always-on pools default to an always-open calendar; without one,
	// the closing machinery would sweep the pool at classroom hours.
	for _, lb := range c.AlwaysOn {
		if _, ok := cals[lb]; !ok {
			cals[lb] = behavior.Calendar{AlwaysOpen: true}
		}
	}
	if len(cals) > 0 {
		cfg.LabCalendars = cals
	}
	if len(c.AlwaysOn) > 0 {
		cfg.AlwaysOnLabs = append([]string(nil), c.AlwaysOn...)
	}
	for _, m := range c.Extras {
		cfg.ExtraMachines = append(cfg.ExtraMachines, lab.Extra{
			ID:  m.ID,
			Lab: m.Lab,
			Spec: lab.Spec{
				CPUModel: m.CPUModel, CPUGHz: m.CPUGHz, RAMMB: m.RAMMB,
				DiskGB: m.DiskGB, IntIndex: m.IntIndex, FPIndex: m.FPIndex,
				BaseImgGB: m.BaseImgGB,
			},
		})
	}
	for _, lc := range c.Lifecycle {
		bl := behavior.Lifecycle{Machine: lc.Machine}
		if lc.JoinDay > 0 {
			bl.Join = cfg.Start.AddDate(0, 0, lc.JoinDay)
		}
		if lc.LeaveDay > 0 {
			bl.Leave = cfg.Start.AddDate(0, 0, lc.LeaveDay)
		}
		cfg.Lifecycle = append(cfg.Lifecycle, bl)
	}
	return nil
}

// Experiment returns the paper-default experiment config with the
// scenario applied.
func (c *Config) Experiment(seed int64) (experiment.Config, error) {
	cfg := experiment.Default(seed)
	if err := c.Apply(&cfg); err != nil {
		return experiment.Config{}, err
	}
	return cfg, nil
}

// calendar compiles one lab calendar, inheriting the behaviour
// config's hour pattern when no hours are given.
func (lc LabCalendar) calendar(bc behavior.Config) (behavior.Calendar, error) {
	loc := time.UTC
	if lc.Location != "" {
		l, err := time.LoadLocation(lc.Location)
		if err != nil {
			return behavior.Calendar{}, fmt.Errorf("bad location: %w", err)
		}
		loc = l
	}
	if lc.AlwaysOpen {
		return behavior.Calendar{AlwaysOpen: true, Loc: loc}, nil
	}
	cal := behavior.Calendar{
		OpenHour: lc.OpenHour, NightClose: lc.NightClose, SatCloseHour: lc.SatCloseHour, Loc: loc,
	}
	if lc.OpenHour == 0 && lc.NightClose == 0 && lc.SatCloseHour == 0 {
		cal.OpenHour, cal.NightClose, cal.SatCloseHour = bc.OpenHour, bc.NightClose, bc.SatCloseHour
		return cal, nil
	}
	// Mirror behavior.Config.Validate's hour constraints: the closing
	// machinery needs a pattern that closes overnight and after the
	// Saturday opening.
	if cal.OpenHour < 0 || cal.OpenHour > 23 || cal.NightClose < 0 || cal.NightClose > 23 ||
		cal.SatCloseHour < 0 || cal.SatCloseHour > 23 {
		return behavior.Calendar{}, fmt.Errorf("hours out of range [0,23]")
	}
	if cal.NightClose >= cal.OpenHour {
		return behavior.Calendar{}, fmt.Errorf("night_close (%d) must precede open_hour (%d)", cal.NightClose, cal.OpenHour)
	}
	if cal.SatCloseHour <= cal.OpenHour {
		return behavior.Calendar{}, fmt.Errorf("sat_close_hour (%d) must follow open_hour (%d)", cal.SatCloseHour, cal.OpenHour)
	}
	return cal, nil
}

// overlay implements behavior.Overlay over the phase list: piecewise
// levels with linear ramps, a pure function of t as the interface
// demands.
type overlay struct {
	start  time.Time
	phases []Phase // sorted by StartDay
}

func (o *overlay) at(t time.Time, get func(Phase) float64) float64 {
	day := t.Sub(o.start).Hours() / 24
	level := 1.0 // the pre-scenario regime
	for _, p := range o.phases {
		sd := float64(p.StartDay)
		if day < sd {
			break
		}
		target := orOne(get(p))
		if p.RampDays > 0 && day < sd+float64(p.RampDays) {
			return level + (target-level)*(day-sd)/float64(p.RampDays)
		}
		level = target
	}
	return level
}

func (o *overlay) ArrivalFactor(t time.Time) float64 {
	return o.at(t, func(p Phase) float64 { return p.Arrival })
}

func (o *overlay) AttendanceFactor(t time.Time) float64 {
	return o.at(t, func(p Phase) float64 { return p.Attendance })
}

func (o *overlay) PowerFactor(t time.Time) float64 {
	return o.at(t, func(p Phase) float64 { return p.Power })
}

// orOne maps the JSON zero value to "unchanged".
func orOne(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}
