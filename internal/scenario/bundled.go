package scenario

import (
	"fmt"
	"sort"
)

// Bundled returns a fresh copy of one of the repository's built-in
// scenarios. Each models a fleet-scale situation the paper's single
// static semester cannot express, and carries the claim set `make
// scenarios` gates in CI (claims are calibrated on seeds 1–3 at the
// scenario's own Days).
func Bundled(name string) (*Config, error) {
	b, ok := bundled()[name]
	if !ok {
		return nil, fmt.Errorf("scenario: no bundled scenario %q (have %v)", name, Names())
	}
	c := b()
	return c, nil
}

// Names lists the bundled scenarios in sorted order.
func Names() []string {
	m := bundled()
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func bundled() map[string]func() *Config {
	return map[string]func() *Config{
		"baseline":     baseline,
		"lockdown":     lockdown,
		"refresh-year": refreshYear,
		"server-mix":   serverMix,
		"multi-campus": multiCampus,
	}
}

// baseline is the paper's semester untouched: the reference every other
// scenario's claims are measured against. Applying it changes nothing
// (the no-op identity test rides on this).
func baseline() *Config {
	return &Config{
		Name:        "baseline",
		Description: "The paper's 11-lab semester, unmodified; the claims reference.",
	}
}

// lockdown is a campus emptying out over week two and staying shut:
// arrivals and class attendance collapse over a ten-day ramp while
// leftover machines are powered down more eagerly. The ramp is the
// point — it is a *slow* regime shift, the labelled negative corpus
// for the availability-collapse detector (a page here is a false
// positive; see tools/anomalybench -scenario-corpus).
func lockdown() *Config {
	return &Config{
		Name:        "lockdown",
		Description: "Campus lockdown: arrivals and attendance collapse over a 10-day ramp from day 7.",
		Days:        35,
		Phases: []Phase{
			{Name: "lockdown", StartDay: 7, RampDays: 10, Arrival: 0.05, Attendance: 0.03, Power: 1.3},
		},
		Claims: []Claim{
			{Metric: MetricAvailability, Direction: DirDown, MinShift: 0.10},
			{Metric: MetricEquivalence, Direction: DirDown, MinShift: 0.10},
			{Metric: MetricHarvestWork, Direction: DirDown, MinShift: 0.10},
		},
	}
}

// refreshYear replaces the two slowest Pentium III rooms (L09, L10 —
// 25 machines) with L03-class Pentium 4 hardware at the day-28 boot
// boundary: every old machine leaves and a replacement joins under a
// new ID with a fresh disk. Retiring-by-replacement keeps SMART
// counters monotone per machine ID; the trace catalogue carries both
// generations with [Join, Leave) lifetime stamps.
func refreshYear() *Config {
	c := &Config{
		Name:        "refresh-year",
		Description: "Hardware refresh: L09+L10 replaced with Pentium 4 machines at day 28.",
		Days:        56,
		Claims: []Claim{
			{Metric: MetricHarvestWork, Direction: DirUp, MinShift: 0.02},
			{Metric: MetricAvailability, Direction: DirFlat, MinShift: 0.10},
		},
	}
	refresh := func(labName string, n int) {
		for i := 1; i <= n; i++ {
			old := fmt.Sprintf("%s-M%02d", labName, i)
			repl := fmt.Sprintf("%s-R%02d", labName, i)
			c.Lifecycle = append(c.Lifecycle,
				Lifecycle{Machine: old, LeaveDay: 28},
				Lifecycle{Machine: repl, JoinDay: 28},
			)
			c.Extras = append(c.Extras, Machine{
				ID: repl, Lab: labName,
				CPUModel: "Intel Pentium 4", CPUGHz: 2.6, RAMMB: 512,
				DiskGB: 55.8, IntIndex: 39.3, FPIndex: 36.7, BaseImgGB: 16.0,
			})
		}
	}
	refresh("L09", 9)
	refresh("L10", 16)
	return c
}

// serverMix adds an always-on eight-machine server pool next to the
// classrooms: powered from the start, never claimed by students or
// classes, never swept — the "dedicated nodes amid scavenged nodes"
// mix of the condor-style deployments in the related work.
func serverMix() *Config {
	c := &Config{
		Name:        "server-mix",
		Description: "Eight always-on servers (lab SRV) alongside the classroom fleet.",
		Days:        35,
		AlwaysOn:    []string{"SRV"},
		Claims: []Claim{
			{Metric: MetricAvailability, Direction: DirUp, MinShift: 0.02},
			{Metric: MetricEquivalence, Direction: DirUp, MinShift: 0.02},
			{Metric: MetricHarvestWork, Direction: DirUp, MinShift: 0.02},
		},
	}
	for i := 1; i <= 8; i++ {
		c.Extras = append(c.Extras, Machine{
			ID: fmt.Sprintf("SRV-S%02d", i), Lab: "SRV",
			CPUModel: "Intel Xeon", CPUGHz: 2.8, RAMMB: 1024,
			DiskGB: 74.5, IntIndex: 42.0, FPIndex: 40.0, BaseImgGB: 12.0,
		})
	}
	return c
}

// multiCampus spreads the fleet across three time zones: the L05–L08
// rooms keep New York wall clocks (DST shifts included), L09–L11 keep
// Tokyo's, and the rest stay on the default zone. Opening hours are
// the default pattern *in local time*, so the campuses fill and empty
// out of phase; fleet-wide daily structure smears but the totals hold.
func multiCampus() *Config {
	return &Config{
		Name:        "multi-campus",
		Description: "Three campuses: default zone, America/New_York (L05–L08), Asia/Tokyo (L09–L11).",
		Days:        35,
		Calendars: map[string]LabCalendar{
			"L05": {Location: "America/New_York"},
			"L06": {Location: "America/New_York"},
			"L07": {Location: "America/New_York"},
			"L08": {Location: "America/New_York"},
			"L09": {Location: "Asia/Tokyo"},
			"L10": {Location: "Asia/Tokyo"},
			"L11": {Location: "Asia/Tokyo"},
		},
		Claims: []Claim{
			{Metric: MetricAvailability, Direction: DirFlat, MinShift: 0.15},
			{Metric: MetricEquivalence, Direction: DirFlat, MinShift: 0.15},
		},
	}
}
