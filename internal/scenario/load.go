package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Parse decodes one scenario from JSON. Unknown fields are rejected —
// a typoed knob must fail loudly, not silently run the default.
func Parse(data []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and validates a scenario file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// Resolve returns the scenario named by s: a bundled scenario name, or
// a path to a JSON file (anything containing a path separator or
// ending in .json is treated as a file).
func Resolve(s string) (*Config, error) {
	if c, err := Bundled(s); err == nil {
		return c, nil
	} else if !isFileRef(s) {
		return nil, err
	}
	return Load(s)
}

func isFileRef(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '\\' {
			return true
		}
	}
	return len(s) > 5 && s[len(s)-5:] == ".json"
}
