package scenario

import (
	"fmt"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/harvest"
	"winlab/internal/trace"
)

// Metrics are the headline numbers a claim may reference.
type Metrics struct {
	// Availability is the mean fraction of the *current* fleet that
	// answered each probe sweep — lifetime-aware, so a hardware
	// refresh is not read as an availability drop just because the
	// catalogue lists both the old and the new machine.
	Availability float64
	// Equivalence is the perf-weighted idle fraction: the paper's
	// cluster-equivalence upper bound (analysis.Equivalence).
	Equivalence float64
	// HarvestYield is the effective cluster-equivalence ratio of the
	// reference harvester (free machines only, hourly checkpoints).
	HarvestYield float64
	// HarvestWork is the harvester's absolute committed work in
	// index-hours.
	HarvestWork float64
}

// Of returns the metric named by a claim's Metric field.
func (m Metrics) Of(metric string) (float64, error) {
	switch metric {
	case MetricAvailability:
		return m.Availability, nil
	case MetricEquivalence:
		return m.Equivalence, nil
	case MetricHarvestYield:
		return m.HarvestYield, nil
	case MetricHarvestWork:
		return m.HarvestWork, nil
	}
	return 0, fmt.Errorf("scenario: unknown metric %q", metric)
}

// Measure computes the claim metrics over one collected trace.
func Measure(d *trace.Dataset) (Metrics, error) {
	var m Metrics
	if len(d.Machines) == 0 || len(d.Iterations) == 0 {
		return m, fmt.Errorf("scenario: cannot measure an empty dataset")
	}
	av := analysis.Availability(d, analysis.DefaultForgottenThreshold)
	m.Availability = meanActiveFraction(d, av)
	m.Equivalence = analysis.Equivalence(d, true).TotalRatio
	hv, err := harvest.Run(d, harvest.Config{TaskWork: 1, Checkpoint: time.Hour, Policy: harvest.FreeOnly})
	if err != nil {
		return m, err
	}
	m.HarvestYield = hv.Equivalence
	m.HarvestWork = hv.HarvestedWork
	return m, nil
}

// meanActiveFraction averages PoweredOn over the machines that were
// fleet members at each iteration. On a static fleet the denominator
// is constant and this is AvgPoweredOn / fleet size.
func meanActiveFraction(d *trace.Dataset, av analysis.AvailabilitySeries) float64 {
	partial := false
	for i := range d.Machines {
		if d.Machines[i].PartialLifetime() {
			partial = true
			break
		}
	}
	if !partial {
		if len(d.Machines) == 0 {
			return 0
		}
		return av.AvgPoweredOn / float64(len(d.Machines))
	}
	var sum float64
	n := 0
	for _, p := range av.Points {
		active := 0
		for i := range d.Machines {
			if d.Machines[i].ActiveAt(p.Iter) {
				active++
			}
		}
		if active == 0 {
			continue
		}
		sum += float64(p.PoweredOn) / float64(active)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Check evaluates the claim: got against base. The shift is relative
// to the baseline value ((got-base)/base; absolute when base is 0).
func (cl Claim) Check(base, got Metrics) error {
	b, err := base.Of(cl.Metric)
	if err != nil {
		return err
	}
	g, err := got.Of(cl.Metric)
	if err != nil {
		return err
	}
	shift := g - b
	if b != 0 {
		shift /= b
	}
	switch cl.Direction {
	case DirUp:
		if shift < cl.MinShift {
			return fmt.Errorf("%s: claimed up ≥ %+.1f%%, got %+.1f%% (base %.4g → %.4g)",
				cl.Metric, 100*cl.MinShift, 100*shift, b, g)
		}
	case DirDown:
		if -shift < cl.MinShift {
			return fmt.Errorf("%s: claimed down ≥ %.1f%%, got %+.1f%% (base %.4g → %.4g)",
				cl.Metric, 100*cl.MinShift, 100*shift, b, g)
		}
	case DirFlat:
		if shift > cl.MinShift || -shift > cl.MinShift {
			return fmt.Errorf("%s: claimed flat within ±%.1f%%, got %+.1f%% (base %.4g → %.4g)",
				cl.Metric, 100*cl.MinShift, 100*shift, b, g)
		}
	default:
		return fmt.Errorf("scenario: unknown direction %q", cl.Direction)
	}
	return nil
}
