package probe

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzParseBytes hammers the in-place parser with arbitrary input:
// malformed reports must return an error, never panic, and a report that
// parses must be a renderable fixed point (Render∘Parse idempotent).
// `make fuzz` runs this with -fuzz for a bounded time; under plain `go
// test` the seed corpus still executes.
func FuzzParseBytes(f *testing.F) {
	full := Render(demoSnapshot())
	f.Add(append([]byte(nil), full...))
	f.Add(full[:len(full)/2])                         // truncated mid-report
	f.Add([]byte(""))                                 // empty
	f.Add([]byte("NOTAPROBE/9\nmachine: x\n"))        // wrong magic
	f.Add([]byte(Version + "\nmachine L01\n"))        // missing colon
	f.Add([]byte(Version + "\nmachine: x\n"))         // missing mandatory keys
	f.Add([]byte(Version + "\ncpu.mhz: 99999999999999999999\n")) // overflow
	f.Add([]byte(Version + "\nuptime.sec: 1e309\n"))  // float overflow
	f.Add([]byte(Version + "\nnet.4294967295.mac: a\n net.00.mac : b\n"))
	f.Add([]byte(Version + "\ntime: 2003-02-30T10:15:00Z\n")) // bad calendar day
	f.Add(bytes.Repeat([]byte(Version+"\n"), 2))

	p := NewParser()
	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := p.ParseBytes(data)
		sn2, err2 := ParseBytes(data) // pooled entry point agrees
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Parser (%v) and ParseBytes (%v) disagree on error", err, err2)
		}
		if err != nil {
			if _, ok := err.(*ParseError); !ok {
				t.Fatalf("error is %T, want *ParseError", err)
			}
			return
		}
		if !reflect.DeepEqual(sn, sn2) {
			t.Fatalf("Parser and ParseBytes disagree:\n%+v\n%+v", sn, sn2)
		}
		// A successful parse must be stable under a render/parse cycle.
		rendered := AppendRender(nil, sn)
		again, err := p.ParseBytes(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered snapshot failed: %v\nreport: %q", err, rendered)
		}
		again2, err := p.ParseBytes(AppendRender(nil, again))
		if err != nil {
			t.Fatalf("third parse failed: %v", err)
		}
		if !reflect.DeepEqual(again, again2) {
			t.Fatalf("Render∘Parse not a fixed point:\n%+v\n%+v", again, again2)
		}
	})
}
