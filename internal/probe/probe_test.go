package probe

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"winlab/internal/machine"
	"winlab/internal/smart"
)

var t0 = time.Date(2003, 10, 6, 10, 15, 0, 0, time.UTC)

func demoSnapshot() machine.Snapshot {
	return machine.Snapshot{
		Time:         t0,
		ID:           "L01-M07",
		Lab:          "L01",
		CPUModel:     "Intel Pentium 4",
		CPUGHz:       2.4,
		RAMMB:        512,
		SwapMB:       768,
		DiskGB:       74.5,
		Serial:       "WD-L010007",
		MACs:         []string{"02:57:4C:00:00:07", "02:57:4C:00:01:07"},
		OS:           "Windows 2000 Professional SP3",
		BootTime:     t0.Add(-93 * time.Minute),
		Uptime:       93 * time.Minute,
		CPUIdle:      91 * time.Minute,
		MemLoadPct:   59,
		SwapLoadPct:  26,
		FreeDiskGB:   54.25,
		PowerCycles:  289,
		PowerOnHours: 1931,
		SentBytes:    1694475,
		RecvBytes:    5433750,
		SessionUser:  "student042",
		SessionStart: t0.Add(-86 * time.Minute),
	}
}

func TestRoundTrip(t *testing.T) {
	want := demoSnapshot()
	got, err := Parse(Render(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Lab != want.Lab || got.OS != want.OS ||
		got.CPUModel != want.CPUModel || got.CPUGHz != want.CPUGHz ||
		got.RAMMB != want.RAMMB || got.SwapMB != want.SwapMB ||
		got.DiskGB != want.DiskGB || got.Serial != want.Serial {
		t.Errorf("static fields mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !got.Time.Equal(want.Time) || !got.BootTime.Equal(want.BootTime) {
		t.Errorf("times mismatch: %v / %v", got.Time, got.BootTime)
	}
	if got.Uptime != want.Uptime {
		t.Errorf("uptime = %v", got.Uptime)
	}
	// CPUIdle is rendered with 0.1 s precision.
	if d := got.CPUIdle - want.CPUIdle; d < -time.Second || d > time.Second {
		t.Errorf("cpu idle = %v, want ≈%v", got.CPUIdle, want.CPUIdle)
	}
	if got.MemLoadPct != 59 || got.SwapLoadPct != 26 {
		t.Errorf("loads = %d/%d", got.MemLoadPct, got.SwapLoadPct)
	}
	if got.PowerCycles != 289 || got.PowerOnHours != 1931 {
		t.Errorf("SMART = %d/%d", got.PowerCycles, got.PowerOnHours)
	}
	if got.SentBytes != want.SentBytes || got.RecvBytes != want.RecvBytes {
		t.Errorf("net counters = %d/%d", got.SentBytes, got.RecvBytes)
	}
	if got.SessionUser != "student042" || !got.SessionStart.Equal(want.SessionStart) {
		t.Errorf("session = %q %v", got.SessionUser, got.SessionStart)
	}
	if len(got.MACs) != 2 || got.MACs[0] != want.MACs[0] || got.MACs[1] != want.MACs[1] {
		t.Errorf("MACs = %v", got.MACs)
	}
}

func TestNoSession(t *testing.T) {
	sn := demoSnapshot()
	sn.SessionUser = ""
	sn.SessionStart = time.Time{}
	out := string(Render(sn))
	if strings.Contains(out, "session.") {
		t.Errorf("sessionless report contains session keys:\n%s", out)
	}
	got, err := Parse([]byte(out))
	if err != nil {
		t.Fatal(err)
	}
	if got.HasSession() {
		t.Error("parsed sessionless report has session")
	}
	if got.SessionAge() != 0 {
		t.Error("SessionAge of no session != 0")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad magic", "NOTAPROBE/9\nmachine: x\n"},
		{"missing colon", Version + "\nmachine L01\n"},
		{"bad number", Version + "\nmachine: x\ntime: 2003-10-06T10:15:00Z\nboot.time: 2003-10-06T09:00:00Z\nuptime.sec: NaNsense\ncpu.idle.sec: 1\n"},
		{"bad time", Version + "\nmachine: x\ntime: yesterday\n"},
		{"missing mandatory", Version + "\nmachine: x\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.in))
			if err == nil {
				t.Errorf("Parse accepted %q", c.in)
			}
			var pe *ParseError
			if !asParseError(err, &pe) {
				t.Errorf("error is %T, want *ParseError", err)
			} else if pe.Error() == "" {
				t.Error("empty error text")
			}
		})
	}
}

func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}

func TestUnknownKeysIgnored(t *testing.T) {
	in := Render(demoSnapshot())
	in = append(in, []byte("future.metric: 42\n")...)
	if _, err := Parse(in); err != nil {
		t.Errorf("unknown key rejected: %v", err)
	}
}

func TestBlankLinesTolerated(t *testing.T) {
	in := strings.ReplaceAll(string(Render(demoSnapshot())), "\nos:", "\n\nos:")
	if _, err := Parse([]byte(in)); err != nil {
		t.Errorf("blank line rejected: %v", err)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := Render(demoSnapshot())
	b := Render(demoSnapshot())
	if string(a) != string(b) {
		t.Error("Render not deterministic")
	}
}

func TestQuickRoundTripIntegers(t *testing.T) {
	// Property: numeric fields survive the round trip for arbitrary values.
	f := func(mem, swap uint8, cycles uint16, sent, recv uint32) bool {
		sn := demoSnapshot()
		sn.MemLoadPct = int(mem) % 101
		sn.SwapLoadPct = int(swap) % 101
		sn.PowerCycles = int64(cycles)
		sn.SentBytes = uint64(sent)
		sn.RecvBytes = uint64(recv)
		got, err := Parse(Render(sn))
		if err != nil {
			return false
		}
		return got.MemLoadPct == sn.MemLoadPct &&
			got.SwapLoadPct == sn.SwapLoadPct &&
			got.PowerCycles == sn.PowerCycles &&
			got.SentBytes == sn.SentBytes &&
			got.RecvBytes == sn.RecvBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLiveMachineRoundTrip(t *testing.T) {
	// End-to-end: a real simulated machine's snapshot must render and
	// parse losslessly enough for the analysis fields.
	hw := machine.Hardware{
		CPUModel: "Intel Pentium III", CPUGHz: 1.1, RAMMB: 256,
		DiskGB: 18.6, MACs: []string{"02:57:4C:00:00:01"}, OS: "Windows 2000",
	}
	m := machine.New("L08-M01", "L08", hw, newDisk(t))
	boot := t0.Add(-2 * time.Hour)
	m.PowerOn(boot)
	m.SetBaseline(140, 95, 10)
	m.Login(boot.Add(10*time.Minute), "u1")
	sn, ok := m.Snapshot(t0)
	if !ok {
		t.Fatal("snapshot failed")
	}
	got, err := Parse(Render(sn))
	if err != nil {
		t.Fatal(err)
	}
	if got.Uptime != 2*time.Hour || got.SessionUser != "u1" {
		t.Errorf("parsed %v / %q", got.Uptime, got.SessionUser)
	}
}

func newDisk(t *testing.T) *smart.Disk {
	t.Helper()
	return smart.NewDisk("T1", 18.6)
}
