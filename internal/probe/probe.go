// Package probe implements W32Probe, the console probe the paper executed
// remotely on every machine (§3): rendering a machine snapshot to the
// probe's stdout text report, and parsing such reports back.
//
// The report is a versioned, line-oriented "key: value" format — the kind
// of output a win32 console probe would print. Everything the collector
// and the analysis know about a machine passes through this format, which
// keeps the boundary between fleet and collector honest: the analysis can
// never peek at simulator internals.
package probe

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"winlab/internal/machine"
)

// Version identifies the report format.
const Version = "W32PROBE/1.0"

// timeLayout is the timestamp format used in reports.
const timeLayout = time.RFC3339

// Render writes the probe report for a snapshot.
func Render(s machine.Snapshot) []byte {
	var b strings.Builder
	b.Grow(640)
	fmt.Fprintf(&b, "%s\n", Version)
	fmt.Fprintf(&b, "machine: %s\n", s.ID)
	fmt.Fprintf(&b, "lab: %s\n", s.Lab)
	fmt.Fprintf(&b, "time: %s\n", s.Time.UTC().Format(timeLayout))
	fmt.Fprintf(&b, "os: %s\n", s.OS)
	fmt.Fprintf(&b, "cpu.model: %s\n", s.CPUModel)
	fmt.Fprintf(&b, "cpu.mhz: %d\n", int(s.CPUGHz*1000+0.5))
	fmt.Fprintf(&b, "mem.total.mb: %d\n", s.RAMMB)
	fmt.Fprintf(&b, "swap.total.mb: %d\n", s.SwapMB)
	for i, mac := range s.MACs {
		fmt.Fprintf(&b, "net.%d.mac: %s\n", i, mac)
	}
	fmt.Fprintf(&b, "disk.0.serial: %s\n", s.Serial)
	fmt.Fprintf(&b, "disk.0.size.gb: %.2f\n", s.DiskGB)
	fmt.Fprintf(&b, "disk.0.smart.cycles: %d\n", s.PowerCycles)
	fmt.Fprintf(&b, "disk.0.smart.poweron.hours: %d\n", s.PowerOnHours)
	fmt.Fprintf(&b, "boot.time: %s\n", s.BootTime.UTC().Format(timeLayout))
	fmt.Fprintf(&b, "uptime.sec: %.1f\n", s.Uptime.Seconds())
	fmt.Fprintf(&b, "cpu.idle.sec: %.1f\n", s.CPUIdle.Seconds())
	fmt.Fprintf(&b, "mem.load.pct: %d\n", s.MemLoadPct)
	fmt.Fprintf(&b, "swap.load.pct: %d\n", s.SwapLoadPct)
	fmt.Fprintf(&b, "disk.free.gb: %.3f\n", s.FreeDiskGB)
	fmt.Fprintf(&b, "net.sent.bytes: %d\n", s.SentBytes)
	fmt.Fprintf(&b, "net.recv.bytes: %d\n", s.RecvBytes)
	if s.HasSession() {
		fmt.Fprintf(&b, "session.user: %s\n", s.SessionUser)
		fmt.Fprintf(&b, "session.start: %s\n", s.SessionStart.UTC().Format(timeLayout))
	}
	return []byte(b.String())
}

// ParseError describes a malformed probe report.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("probe: parse error at line %d: %s", e.Line, e.Msg)
}

// Parse decodes a probe report back into a snapshot. Unknown keys are
// ignored so the format can grow; missing mandatory keys are an error.
func Parse(data []byte) (machine.Snapshot, error) {
	var s machine.Snapshot
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	line := 0
	if !sc.Scan() {
		return s, &ParseError{Line: 1, Msg: "empty report"}
	}
	line++
	if got := strings.TrimSpace(sc.Text()); got != Version {
		return s, &ParseError{Line: 1, Msg: fmt.Sprintf("bad magic %q", got)}
	}
	macs := map[int]string{}
	seen := map[string]bool{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		key, val, ok := strings.Cut(text, ":")
		if !ok {
			return s, &ParseError{Line: line, Msg: "missing ':'"}
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		seen[key] = true
		var err error
		switch key {
		case "machine":
			s.ID = val
		case "lab":
			s.Lab = val
		case "time":
			s.Time, err = time.Parse(timeLayout, val)
		case "os":
			s.OS = val
		case "cpu.model":
			s.CPUModel = val
		case "cpu.mhz":
			var mhz int
			mhz, err = strconv.Atoi(val)
			s.CPUGHz = float64(mhz) / 1000
		case "mem.total.mb":
			s.RAMMB, err = strconv.Atoi(val)
		case "swap.total.mb":
			s.SwapMB, err = strconv.Atoi(val)
		case "disk.0.serial":
			s.Serial = val
		case "disk.0.size.gb":
			s.DiskGB, err = strconv.ParseFloat(val, 64)
		case "disk.0.smart.cycles":
			s.PowerCycles, err = strconv.ParseInt(val, 10, 64)
		case "disk.0.smart.poweron.hours":
			s.PowerOnHours, err = strconv.ParseInt(val, 10, 64)
		case "boot.time":
			s.BootTime, err = time.Parse(timeLayout, val)
		case "uptime.sec":
			s.Uptime, err = parseSeconds(val)
		case "cpu.idle.sec":
			s.CPUIdle, err = parseSeconds(val)
		case "mem.load.pct":
			s.MemLoadPct, err = strconv.Atoi(val)
		case "swap.load.pct":
			s.SwapLoadPct, err = strconv.Atoi(val)
		case "disk.free.gb":
			s.FreeDiskGB, err = strconv.ParseFloat(val, 64)
		case "net.sent.bytes":
			var v uint64
			v, err = strconv.ParseUint(val, 10, 64)
			s.SentBytes = v
		case "net.recv.bytes":
			var v uint64
			v, err = strconv.ParseUint(val, 10, 64)
			s.RecvBytes = v
		case "session.user":
			s.SessionUser = val
		case "session.start":
			s.SessionStart, err = time.Parse(timeLayout, val)
		default:
			if n, macOK := macIndex(key); macOK {
				macs[n] = val
			}
			// Unknown keys are tolerated for forward compatibility.
		}
		if err != nil {
			return s, &ParseError{Line: line, Msg: fmt.Sprintf("key %q: %v", key, err)}
		}
	}
	if err := sc.Err(); err != nil {
		return s, &ParseError{Line: line, Msg: err.Error()}
	}
	for _, k := range []string{"machine", "time", "boot.time", "uptime.sec", "cpu.idle.sec"} {
		if !seen[k] {
			return s, &ParseError{Line: line, Msg: fmt.Sprintf("missing mandatory key %q", k)}
		}
	}
	if len(macs) > 0 {
		idx := make([]int, 0, len(macs))
		for n := range macs {
			idx = append(idx, n)
		}
		sort.Ints(idx)
		for _, n := range idx {
			s.MACs = append(s.MACs, macs[n])
		}
	}
	return s, nil
}

func parseSeconds(val string) (time.Duration, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	return time.Duration(f * float64(time.Second)), nil
}

func macIndex(key string) (int, bool) {
	rest, ok := strings.CutPrefix(key, "net.")
	if !ok {
		return 0, false
	}
	numStr, ok := strings.CutSuffix(rest, ".mac")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(numStr)
	if err != nil {
		return 0, false
	}
	return n, true
}
