// Package probe implements W32Probe, the console probe the paper executed
// remotely on every machine (§3): rendering a machine snapshot to the
// probe's stdout text report, and parsing such reports back.
//
// The report is a versioned, line-oriented "key: value" format — the kind
// of output a win32 console probe would print. Everything the collector
// and the analysis know about a machine passes through this format, which
// keeps the boundary between fleet and collector honest: the analysis can
// never peek at simulator internals.
//
// Render and Parse are convenience wrappers; the hot collection paths use
// the allocation-free AppendRender / Parser.ParseBytes codec in codec.go.
package probe

import (
	"fmt"
	"time"

	"winlab/internal/machine"
)

// Version identifies the report format.
const Version = "W32PROBE/1.0"

// timeLayout is the timestamp format used in reports.
const timeLayout = time.RFC3339

// Render writes the probe report for a snapshot into a fresh buffer. Hot
// paths should call AppendRender with a reused buffer instead.
func Render(s machine.Snapshot) []byte {
	return AppendRender(make([]byte, 0, 640), s)
}

// ParseError describes a malformed probe report.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("probe: parse error at line %d: %s", e.Line, e.Msg)
}

// Parse decodes a probe report back into a snapshot. Unknown keys are
// ignored so the format can grow; missing mandatory keys are an error.
// It delegates to the in-place byte parser through a pooled Parser — the
// input is sliced, not copied, and is not retained after the call.
func Parse(data []byte) (machine.Snapshot, error) {
	return ParseBytes(data)
}
