// Fast probe codec: an append-based encoder and an in-place, byte-slicing
// parser for the W32Probe report format.
//
// The text format is the wire contract between fleet and collector (see
// DESIGN.md §8.5) and stays byte-identical to the original
// fmt.Fprintf-based renderer — the golden test pins that. What changed is
// the cost model: AppendRender writes into a caller-supplied buffer and
// performs zero allocations when the buffer has capacity, and ParseBytes
// slices the input in place (no string(data) copy, no bufio.Scanner, no
// per-report maps), interning the handful of repeated strings (machine
// IDs, labs, OS names, users, MAC sets) so the steady-state collection
// loop of a fleet re-parses reports without allocating at all.
package probe

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"winlab/internal/machine"
)

// AppendRender appends the probe report for s to dst and returns the
// extended buffer. It allocates only when dst lacks capacity; the output
// is byte-identical to Render.
func AppendRender(dst []byte, s machine.Snapshot) []byte {
	dst = append(dst, Version...)
	dst = append(dst, '\n')
	dst = appendStrKV(dst, "machine: ", s.ID)
	dst = appendStrKV(dst, "lab: ", s.Lab)
	dst = appendTimeKV(dst, "time: ", s.Time)
	dst = appendStrKV(dst, "os: ", s.OS)
	dst = appendStrKV(dst, "cpu.model: ", s.CPUModel)
	dst = appendIntKV(dst, "cpu.mhz: ", int64(renderMHz(s.CPUGHz)))
	dst = appendIntKV(dst, "mem.total.mb: ", int64(s.RAMMB))
	dst = appendIntKV(dst, "swap.total.mb: ", int64(s.SwapMB))
	for i, mac := range s.MACs {
		dst = append(dst, "net."...)
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, ".mac: "...)
		dst = append(dst, mac...)
		dst = append(dst, '\n')
	}
	dst = appendStrKV(dst, "disk.0.serial: ", s.Serial)
	dst = appendFloatKV(dst, "disk.0.size.gb: ", s.DiskGB, 2)
	dst = appendIntKV(dst, "disk.0.smart.cycles: ", s.PowerCycles)
	dst = appendIntKV(dst, "disk.0.smart.poweron.hours: ", s.PowerOnHours)
	dst = appendTimeKV(dst, "boot.time: ", s.BootTime)
	dst = appendFloatKV(dst, "uptime.sec: ", s.Uptime.Seconds(), 1)
	dst = appendFloatKV(dst, "cpu.idle.sec: ", s.CPUIdle.Seconds(), 1)
	dst = appendIntKV(dst, "mem.load.pct: ", int64(s.MemLoadPct))
	dst = appendIntKV(dst, "swap.load.pct: ", int64(s.SwapLoadPct))
	dst = appendFloatKV(dst, "disk.free.gb: ", s.FreeDiskGB, 3)
	dst = appendUintKV(dst, "net.sent.bytes: ", s.SentBytes)
	dst = appendUintKV(dst, "net.recv.bytes: ", s.RecvBytes)
	if s.HasSession() {
		dst = appendStrKV(dst, "session.user: ", s.SessionUser)
		dst = appendTimeKV(dst, "session.start: ", s.SessionStart)
	}
	return dst
}

// renderMHz quantises the GHz clock to whole MHz. math.Round (half away
// from zero) matches the historical int(g*1000+0.5) for every non-negative
// clock but does not drift for negative inputs (the +0.5 trick truncates
// toward zero there); with it, Render∘Parse is the identity on any CPUGHz
// that is already MHz-quantised — see TestRenderParseFixedPoint.
func renderMHz(ghz float64) int {
	return int(math.Round(ghz * 1000))
}

func appendStrKV(dst []byte, key, val string) []byte {
	dst = append(dst, key...)
	dst = append(dst, val...)
	return append(dst, '\n')
}

func appendIntKV(dst []byte, key string, val int64) []byte {
	dst = append(dst, key...)
	dst = strconv.AppendInt(dst, val, 10)
	return append(dst, '\n')
}

func appendUintKV(dst []byte, key string, val uint64) []byte {
	dst = append(dst, key...)
	dst = strconv.AppendUint(dst, val, 10)
	return append(dst, '\n')
}

func appendFloatKV(dst []byte, key string, val float64, prec int) []byte {
	dst = append(dst, key...)
	dst = strconv.AppendFloat(dst, val, 'f', prec, 64)
	return append(dst, '\n')
}

func appendTimeKV(dst []byte, key string, t time.Time) []byte {
	dst = append(dst, key...)
	dst = t.UTC().AppendFormat(dst, timeLayout)
	return append(dst, '\n')
}

// ---------------------------------------------------------------------------
// Parser.

// internMax bounds the parser's string-intern table; macSetsMax bounds the
// MAC-set cache. Both exist so adversarial input cannot grow a pooled
// parser without limit — past the cap the parser still works, it just
// allocates fresh strings.
const (
	internMax  = 4096
	macSetsMax = 1024
)

// Parser is a reusable probe-report parser. It slices the input in place
// and interns repeated strings, so re-parsing reports from the same fleet
// performs zero allocations on the happy path. A Parser is not safe for
// concurrent use; pool one per worker (the package-level ParseBytes does
// exactly that).
//
// Snapshots returned by a Parser share interned strings and MAC slices
// with other snapshots from the same Parser — treat Snapshot.MACs as
// read-only.
type Parser struct {
	intern  map[string]string
	macSets map[string][]string
	macs    []macEntry
	macKey  []byte
}

type macEntry struct {
	idx int
	val string
}

// NewParser returns an empty parser.
func NewParser() *Parser {
	return &Parser{
		intern:  make(map[string]string),
		macSets: make(map[string][]string),
	}
}

var parserPool = sync.Pool{New: func() any { return NewParser() }}

// ParseBytes decodes a probe report using a pooled Parser. Semantics are
// identical to Parse; the input is never retained.
func ParseBytes(data []byte) (machine.Snapshot, error) {
	p := parserPool.Get().(*Parser)
	s, err := p.ParseBytes(data)
	parserPool.Put(p)
	return s, err
}

// mandatory-key bits.
const (
	seenMachine = 1 << iota
	seenTime
	seenBoot
	seenUptime
	seenIdle
)

// mandatoryKeys lists the report keys that must be present, in the order
// the legacy parser checked them (error messages are stable).
var mandatoryKeys = []struct {
	bit uint
	key string
}{
	{seenMachine, "machine"},
	{seenTime, "time"},
	{seenBoot, "boot.time"},
	{seenUptime, "uptime.sec"},
	{seenIdle, "cpu.idle.sec"},
}

// ParseBytes decodes a probe report back into a snapshot, slicing data in
// place. Unknown keys are ignored so the format can grow; missing
// mandatory keys are an error. data is not retained and may be reused by
// the caller after the call returns.
func (p *Parser) ParseBytes(data []byte) (machine.Snapshot, error) {
	var s machine.Snapshot
	ln, rest, ok := nextLine(data)
	if !ok {
		return s, &ParseError{Line: 1, Msg: "empty report"}
	}
	line := 1
	if got := bytes.TrimSpace(ln); string(got) != Version {
		return s, &ParseError{Line: 1, Msg: fmt.Sprintf("bad magic %q", got)}
	}
	var seen uint
	p.macs = p.macs[:0]
	for {
		ln, rest, ok = nextLine(rest)
		if !ok {
			break
		}
		line++
		text := bytes.TrimSpace(ln)
		if len(text) == 0 {
			continue
		}
		colon := bytes.IndexByte(text, ':')
		if colon < 0 {
			return s, &ParseError{Line: line, Msg: "missing ':'"}
		}
		key := bytes.TrimSpace(text[:colon])
		val := bytes.TrimSpace(text[colon+1:])
		var err error
		switch string(key) {
		case "machine":
			s.ID = p.str(val)
			seen |= seenMachine
		case "lab":
			s.Lab = p.str(val)
		case "time":
			s.Time, err = parseTimeB(val)
			seen |= seenTime
		case "os":
			s.OS = p.str(val)
		case "cpu.model":
			s.CPUModel = p.str(val)
		case "cpu.mhz":
			var mhz int64
			mhz, err = parseIntB(val)
			s.CPUGHz = float64(mhz) / 1000
		case "mem.total.mb":
			s.RAMMB, err = parseIntB32(val)
		case "swap.total.mb":
			s.SwapMB, err = parseIntB32(val)
		case "disk.0.serial":
			s.Serial = p.str(val)
		case "disk.0.size.gb":
			s.DiskGB, err = parseFloatB(val)
		case "disk.0.smart.cycles":
			s.PowerCycles, err = parseIntB(val)
		case "disk.0.smart.poweron.hours":
			s.PowerOnHours, err = parseIntB(val)
		case "boot.time":
			s.BootTime, err = parseTimeB(val)
			seen |= seenBoot
		case "uptime.sec":
			s.Uptime, err = parseSecondsB(val)
			seen |= seenUptime
		case "cpu.idle.sec":
			s.CPUIdle, err = parseSecondsB(val)
			seen |= seenIdle
		case "mem.load.pct":
			s.MemLoadPct, err = parseIntB32(val)
		case "swap.load.pct":
			s.SwapLoadPct, err = parseIntB32(val)
		case "disk.free.gb":
			s.FreeDiskGB, err = parseFloatB(val)
		case "net.sent.bytes":
			s.SentBytes, err = parseUintB(val)
		case "net.recv.bytes":
			s.RecvBytes, err = parseUintB(val)
		case "session.user":
			s.SessionUser = p.str(val)
		case "session.start":
			s.SessionStart, err = parseTimeB(val)
		default:
			if n, macOK := macIndexB(key); macOK {
				p.addMAC(n, val)
			}
			// Unknown keys are tolerated for forward compatibility.
		}
		if err != nil {
			return s, &ParseError{Line: line, Msg: fmt.Sprintf("key %q: %v", key, err)}
		}
	}
	for _, mk := range mandatoryKeys {
		if seen&mk.bit == 0 {
			return s, &ParseError{Line: line, Msg: fmt.Sprintf("missing mandatory key %q", mk.key)}
		}
	}
	if len(p.macs) > 0 {
		s.MACs = p.macSlice()
	}
	return s, nil
}

// addMAC records one net.N.mac entry, overwriting a duplicate index like
// the legacy map-based collection did.
func (p *Parser) addMAC(idx int, val []byte) {
	v := p.str(val)
	for i := range p.macs {
		if p.macs[i].idx == idx {
			p.macs[i].val = v
			return
		}
	}
	p.macs = append(p.macs, macEntry{idx: idx, val: v})
}

// macSlice sorts the collected MAC entries by index and returns the
// (cached) []string for that exact sequence, so a fleet's handful of
// distinct MAC sets cost one allocation each, ever.
func (p *Parser) macSlice() []string {
	// Insertion sort: reports emit indexes in order, so this is O(n).
	for i := 1; i < len(p.macs); i++ {
		for j := i; j > 0 && p.macs[j-1].idx > p.macs[j].idx; j-- {
			p.macs[j-1], p.macs[j] = p.macs[j], p.macs[j-1]
		}
	}
	p.macKey = p.macKey[:0]
	for _, e := range p.macs {
		p.macKey = append(p.macKey, e.val...)
		p.macKey = append(p.macKey, '\n')
	}
	if set, ok := p.macSets[string(p.macKey)]; ok {
		return set
	}
	set := make([]string, len(p.macs))
	for i, e := range p.macs {
		set[i] = e.val
	}
	if len(p.macSets) < macSetsMax {
		p.macSets[string(p.macKey)] = set
	}
	return set
}

// str interns a byte-slice as a string. The map lookup with a string(b)
// key compiles to a no-allocation probe; only the first occurrence of a
// value pays for the copy.
func (p *Parser) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := p.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(p.intern) < internMax {
		p.intern[s] = s
	}
	return s
}

// nextLine splits off the next line (without its trailing '\n'). ok is
// false once data is exhausted; a final line without a newline is still
// returned.
func nextLine(data []byte) (line, rest []byte, ok bool) {
	if len(data) == 0 {
		return nil, nil, false
	}
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		return data[:i], data[i+1:], true
	}
	return data, nil, true
}

// macIndexB recognises "net.N.mac" keys and extracts N. The length guard
// matters: a key like "net.mac" matches both the prefix and the suffix
// with overlap, and must not be sliced (found by FuzzParseBytes).
func macIndexB(key []byte) (int, bool) {
	if len(key) < len("net.0.mac") ||
		!bytes.HasPrefix(key, []byte("net.")) || !bytes.HasSuffix(key, []byte(".mac")) {
		return 0, false
	}
	num := key[4 : len(key)-4]
	if len(num) == 0 {
		return 0, false
	}
	n := 0
	for _, c := range num {
		c -= '0'
		if c > 9 {
			return 0, false
		}
		n = n*10 + int(c)
		if n > 1<<20 {
			return 0, false
		}
	}
	return n, true
}

// ---------------------------------------------------------------------------
// Allocation-free numeric and timestamp parsing over byte slices.

func numError(what string, b []byte) error {
	return fmt.Errorf("parsing %q: %s", b, what)
}

func parseIntB(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, numError("empty number", b)
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
	}
	if i == len(b) {
		return 0, numError("invalid syntax", b)
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i] - '0'
		if c > 9 {
			return 0, numError("invalid syntax", b)
		}
		if n > (math.MaxUint64-uint64(c))/10 {
			return 0, numError("value out of range", b)
		}
		n = n*10 + uint64(c)
	}
	if neg {
		if n > 1<<63 {
			return 0, numError("value out of range", b)
		}
		return -int64(n), nil
	}
	if n > math.MaxInt64 {
		return 0, numError("value out of range", b)
	}
	return int64(n), nil
}

func parseIntB32(b []byte) (int, error) {
	n, err := parseIntB(b)
	return int(n), err
}

func parseUintB(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, numError("empty number", b)
	}
	var n uint64
	for i := 0; i < len(b); i++ {
		c := b[i] - '0'
		if c > 9 {
			return 0, numError("invalid syntax", b)
		}
		if n > (math.MaxUint64-uint64(c))/10 {
			return 0, numError("value out of range", b)
		}
		n = n*10 + uint64(c)
	}
	return n, nil
}

// pow10 holds the exact powers of ten the fast float path divides by.
var pow10 = [16]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
	1e10, 1e11, 1e12, 1e13, 1e14, 1e15}

// parseFloatB parses a plain decimal ([-+]?digits[.digits]) without
// allocating. Mantissas of up to 15 significant digits divide by an exact
// power of ten, which IEEE-754 rounds identically to strconv.ParseFloat;
// anything longer or fancier (exponents, inf/nan) falls back to strconv.
func parseFloatB(b []byte) (float64, error) {
	neg := false
	i := 0
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	var mant uint64
	digits, frac := 0, 0
	seenDot := false
	fast := true
	for ; i < len(b); i++ {
		c := b[i]
		if c == '.' {
			if seenDot {
				fast = false
				break
			}
			seenDot = true
			continue
		}
		d := c - '0'
		if d > 9 || digits >= 15 {
			fast = false
			break
		}
		mant = mant*10 + uint64(d)
		digits++
		if seenDot {
			frac++
		}
	}
	if fast && digits > 0 && i == len(b) {
		f := float64(mant) / pow10[frac]
		if neg {
			f = -f
		}
		return f, nil
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, numError("invalid float", b)
	}
	return f, nil
}

// parseSecondsB parses a decimal number of seconds into a Duration. The
// fast path does the conversion in integer nanoseconds — exact for up to 9
// fractional digits, unlike the historical float64 multiply, which could
// truncate a fraction like "3.3" to 3299999999 ns.
func parseSecondsB(b []byte) (time.Duration, error) {
	neg := false
	i := 0
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	var sec, fracNS uint64
	digits, frac := 0, 0
	seenDot := false
	fast := true
	for ; i < len(b); i++ {
		c := b[i]
		if c == '.' {
			if seenDot {
				fast = false
				break
			}
			seenDot = true
			continue
		}
		d := c - '0'
		if d > 9 {
			fast = false
			break
		}
		digits++
		if !seenDot {
			if sec > (math.MaxInt64/uint64(time.Second)-1)/10 {
				fast = false
				break
			}
			sec = sec*10 + uint64(d)
		} else if frac < 9 {
			fracNS = fracNS*10 + uint64(d)
			frac++
		}
		// Fractional digits beyond ns precision are ignored (truncated),
		// like the float path effectively did.
	}
	if fast && digits > 0 && i == len(b) {
		for k := frac; k < 9; k++ {
			fracNS *= 10
		}
		d := time.Duration(sec)*time.Second + time.Duration(fracNS)
		if neg {
			d = -d
		}
		return d, nil
	}
	f, err := parseFloatB(b)
	if err != nil {
		return 0, err
	}
	return time.Duration(f * float64(time.Second)), nil
}

// parseTimeB parses an RFC 3339 timestamp. The fast path handles the
// exact shape the renderer emits ("2006-01-02T15:04:05Z"); anything else
// falls back to time.Parse.
func parseTimeB(b []byte) (time.Time, error) {
	if len(b) == 20 && b[4] == '-' && b[7] == '-' && b[10] == 'T' &&
		b[13] == ':' && b[16] == ':' && b[19] == 'Z' {
		year, ok1 := atoiFixed(b[0:4])
		mon, ok2 := atoiFixed(b[5:7])
		day, ok3 := atoiFixed(b[8:10])
		hh, ok4 := atoiFixed(b[11:13])
		mm, ok5 := atoiFixed(b[14:16])
		ss, ok6 := atoiFixed(b[17:19])
		if ok1 && ok2 && ok3 && ok4 && ok5 && ok6 &&
			mon >= 1 && mon <= 12 && day >= 1 && day <= 31 &&
			hh <= 23 && mm <= 59 && ss <= 59 {
			t := time.Date(year, time.Month(mon), day, hh, mm, ss, 0, time.UTC)
			// time.Date normalises out-of-range days (Feb 30 → Mar 2);
			// reject those like time.Parse would.
			if t.Day() == day && int(t.Month()) == mon {
				return t, nil
			}
		}
	}
	t, err := time.Parse(timeLayout, string(b))
	if err != nil {
		return time.Time{}, numError("invalid timestamp", b)
	}
	return t, nil
}

func atoiFixed(b []byte) (int, bool) {
	n := 0
	for _, c := range b {
		c -= '0'
		if c > 9 {
			return 0, false
		}
		n = n*10 + int(c)
	}
	return n, true
}
