package probe

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"winlab/internal/lab"
	"winlab/internal/machine"
)

// referenceRender is the original fmt.Fprintf-based renderer, kept
// verbatim as the golden oracle: AppendRender must stay byte-identical to
// it, because the probe text is the wire contract between fleet and
// collector (DESIGN.md §8.5).
func referenceRender(s machine.Snapshot) []byte {
	var b strings.Builder
	b.Grow(640)
	fmt.Fprintf(&b, "%s\n", Version)
	fmt.Fprintf(&b, "machine: %s\n", s.ID)
	fmt.Fprintf(&b, "lab: %s\n", s.Lab)
	fmt.Fprintf(&b, "time: %s\n", s.Time.UTC().Format(timeLayout))
	fmt.Fprintf(&b, "os: %s\n", s.OS)
	fmt.Fprintf(&b, "cpu.model: %s\n", s.CPUModel)
	fmt.Fprintf(&b, "cpu.mhz: %d\n", int(s.CPUGHz*1000+0.5))
	fmt.Fprintf(&b, "mem.total.mb: %d\n", s.RAMMB)
	fmt.Fprintf(&b, "swap.total.mb: %d\n", s.SwapMB)
	for i, mac := range s.MACs {
		fmt.Fprintf(&b, "net.%d.mac: %s\n", i, mac)
	}
	fmt.Fprintf(&b, "disk.0.serial: %s\n", s.Serial)
	fmt.Fprintf(&b, "disk.0.size.gb: %.2f\n", s.DiskGB)
	fmt.Fprintf(&b, "disk.0.smart.cycles: %d\n", s.PowerCycles)
	fmt.Fprintf(&b, "disk.0.smart.poweron.hours: %d\n", s.PowerOnHours)
	fmt.Fprintf(&b, "boot.time: %s\n", s.BootTime.UTC().Format(timeLayout))
	fmt.Fprintf(&b, "uptime.sec: %.1f\n", s.Uptime.Seconds())
	fmt.Fprintf(&b, "cpu.idle.sec: %.1f\n", s.CPUIdle.Seconds())
	fmt.Fprintf(&b, "mem.load.pct: %d\n", s.MemLoadPct)
	fmt.Fprintf(&b, "swap.load.pct: %d\n", s.SwapLoadPct)
	fmt.Fprintf(&b, "disk.free.gb: %.3f\n", s.FreeDiskGB)
	fmt.Fprintf(&b, "net.sent.bytes: %d\n", s.SentBytes)
	fmt.Fprintf(&b, "net.recv.bytes: %d\n", s.RecvBytes)
	if s.HasSession() {
		fmt.Fprintf(&b, "session.user: %s\n", s.SessionUser)
		fmt.Fprintf(&b, "session.start: %s\n", s.SessionStart.UTC().Format(timeLayout))
	}
	return []byte(b.String())
}

// fleetSnapshots gathers live snapshots from a freshly built paper fleet:
// the realistic corpus (MAC lists, sessions, fractional idle seconds) the
// codec must handle byte-exactly.
func fleetSnapshots(t testing.TB, seed int64) []machine.Snapshot {
	t.Helper()
	fleet := lab.BuildPaperFleet(seed)
	at := time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)
	var sns []machine.Snapshot
	for i, m := range fleet.Machines {
		if i%3 == 0 {
			continue // leave some machines off
		}
		m.PowerOn(at)
		if i%2 == 0 {
			m.Login(at.Add(7*time.Minute), fmt.Sprintf("user%03d", i))
		}
		// Whole-second sample time: the report's RFC 3339 timestamps carry
		// second precision, so sub-second sample instants are (by design)
		// truncated on the wire.
		sn, ok := m.Snapshot(at.Add(83*time.Minute + 42*time.Second))
		if !ok {
			t.Fatalf("machine %s: snapshot failed", m.ID)
		}
		sns = append(sns, sn)
	}
	return sns
}

// TestAppendRenderGolden pins the codec to the wire format: AppendRender
// must produce byte-identical output to the original fmt-based renderer
// for every machine of the fleet, across seeds.
func TestAppendRenderGolden(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		var buf []byte
		for _, sn := range fleetSnapshots(t, seed) {
			buf = AppendRender(buf[:0], sn)
			want := referenceRender(sn)
			if string(buf) != string(want) {
				t.Fatalf("seed %d machine %s: AppendRender diverges from reference\n got: %q\nwant: %q",
					seed, sn.ID, buf, want)
			}
			if got := Render(sn); string(got) != string(want) {
				t.Fatalf("seed %d machine %s: Render wrapper diverges", seed, sn.ID)
			}
		}
	}
}

// TestAppendRenderGoldenEdgeCases covers shapes the fleet never produces.
func TestAppendRenderGoldenEdgeCases(t *testing.T) {
	base := machine.Snapshot{
		Time:     time.Date(2003, 10, 6, 10, 15, 0, 0, time.UTC),
		ID:       "X", Lab: "L",
		BootTime: time.Date(2003, 10, 6, 9, 0, 0, 0, time.UTC),
	}
	cases := []func(*machine.Snapshot){
		func(s *machine.Snapshot) {}, // all-zero dynamics, no MACs, no session
		func(s *machine.Snapshot) { s.MACs = []string{"aa", "bb", "cc", "dd"} },
		func(s *machine.Snapshot) { s.DiskGB = 0.005; s.FreeDiskGB = 0.0005 }, // rounding ties
		func(s *machine.Snapshot) { s.Uptime = 3300 * time.Millisecond; s.CPUIdle = 50 * time.Millisecond },
		func(s *machine.Snapshot) { s.CPUGHz = 1.1; s.SentBytes = math.MaxUint64; s.RecvBytes = 1 },
		func(s *machine.Snapshot) { s.PowerCycles = -1; s.PowerOnHours = math.MaxInt64 },
		func(s *machine.Snapshot) { s.SessionUser = "u"; s.SessionStart = base.Time.Add(-time.Minute) },
	}
	for i, mut := range cases {
		s := base
		mut(&s)
		got := AppendRender(nil, s)
		want := referenceRender(s)
		if string(got) != string(want) {
			t.Errorf("case %d:\n got %q\nwant %q", i, got, want)
		}
	}
}

// TestCodecAllocFree is the alloc regression guard wired into `make
// verify`: the append renderer and the pooled byte parser must not
// allocate on the happy path once warm. If this fails, the
// BenchmarkProbeRender / BenchmarkProbeParseBytes "0 allocs/op"
// acceptance numbers have regressed.
func TestCodecAllocFree(t *testing.T) {
	sn := demoSnapshot() // has MACs and a session: the worst case
	buf := make([]byte, 0, 1024)
	if allocs := testing.AllocsPerRun(200, func() {
		buf = AppendRender(buf[:0], sn)
	}); allocs != 0 {
		t.Errorf("AppendRender allocates %.1f objects/run, want 0", allocs)
	}

	report := Render(sn)
	p := NewParser()
	if _, err := p.ParseBytes(report); err != nil { // warm the intern tables
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.ParseBytes(report); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Parser.ParseBytes allocates %.1f objects/run, want 0", allocs)
	}
}

// TestRenderParseFixedPoint is the GHz↔MHz (and general lossiness)
// property test: one Render∘Parse trip may quantise (MHz clock, 0.1 s
// idle precision), but the parsed form must be a fixed point — rendering
// and parsing it again must reproduce it exactly, on every field. A lossy
// drift in any numeric round trip (the historical int(g*1000+0.5) hazard,
// or the float-multiply seconds parser truncating "3.3" to 3299999999 ns)
// breaks this.
func TestRenderParseFixedPoint(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, sn := range fleetSnapshots(t, seed) {
			p1, err := Parse(Render(sn))
			if err != nil {
				t.Fatalf("seed %d machine %s: %v", seed, sn.ID, err)
			}
			p2, err := Parse(Render(p1))
			if err != nil {
				t.Fatalf("seed %d machine %s (second trip): %v", seed, sn.ID, err)
			}
			if !reflect.DeepEqual(p1, p2) {
				t.Fatalf("seed %d machine %s: Render∘Parse not a fixed point:\n first %+v\nsecond %+v",
					seed, sn.ID, p1, p2)
			}
			// The fleet's clocks are MHz-quantised, so for them the very
			// first trip must already be exact.
			if p1.CPUGHz != sn.CPUGHz {
				t.Fatalf("seed %d machine %s: CPUGHz %v → %v drifted through MHz",
					seed, sn.ID, sn.CPUGHz, p1.CPUGHz)
			}
			if !p1.Time.Equal(sn.Time) || !p1.BootTime.Equal(sn.BootTime) ||
				p1.Uptime != sn.Uptime {
				t.Fatalf("seed %d machine %s: lossless fields drifted", seed, sn.ID)
			}
		}
	}
}

// TestParseBytesMatchesParse: the pooled package-level entry point and a
// private Parser agree, including on MAC ordering with shuffled indexes.
func TestParseBytesMatchesParse(t *testing.T) {
	sn := demoSnapshot()
	report := Render(sn)
	a, err := ParseBytes(report)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParser().ParseBytes(report)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("pooled and private parser disagree:\n%+v\n%+v", a, b)
	}

	// Out-of-order and duplicate MAC keys: last duplicate wins, output
	// sorted by index — the legacy map semantics.
	in := string(Render(sn))
	in = strings.Replace(in, "net.0.mac: 02:57:4C:00:00:07\n", "", 1)
	in += "net.2.mac: ZZ\nnet.0.mac: first\nnet.0.mac: second\n"
	got, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"second", "02:57:4C:00:01:07", "ZZ"}
	if !reflect.DeepEqual(got.MACs, want) {
		t.Errorf("MACs = %v, want %v", got.MACs, want)
	}
}

// TestParserSeconds pins the integer-nanosecond fast path against exact
// values the float path used to miss.
func TestParserSeconds(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"0.0", 0},
		{"3.3", 3300 * time.Millisecond},
		{"5580.0", 5580 * time.Second},
		{"0.000000001", time.Nanosecond},
		{"1.9999999999", 1999999999}, // sub-ns digits truncated
		{"-2.5", -2500 * time.Millisecond},
	}
	for _, c := range cases {
		got, err := parseSecondsB([]byte(c.in))
		if err != nil {
			t.Errorf("parseSecondsB(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSecondsB(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	if _, err := parseSecondsB([]byte("NaNsense")); err == nil {
		t.Error("parseSecondsB accepted garbage")
	}
}

// TestParserNumbersMatchStrconv cross-checks the byte parsers against the
// strconv oracle over a pile of representative literals.
func TestParserNumbersMatchStrconv(t *testing.T) {
	ints := []string{"0", "1", "-1", "+7", "42", "9223372036854775807",
		"-9223372036854775808", "9223372036854775808", "99999999999999999999",
		"", "-", "1x", "1.5"}
	for _, in := range ints {
		got, gerr := parseIntB([]byte(in))
		want, werr := strconv.ParseInt(in, 10, 64)
		if (gerr == nil) != (werr == nil) || (gerr == nil && got != want) {
			t.Errorf("parseIntB(%q) = %d,%v; strconv = %d,%v", in, got, gerr, want, werr)
		}
	}
	uints := []string{"0", "+3", "18446744073709551615", "18446744073709551616", "-1", ""}
	for _, in := range uints {
		got, gerr := parseUintB([]byte(in))
		want, werr := strconv.ParseUint(in, 10, 64)
		if (gerr == nil) != (werr == nil) || (gerr == nil && got != want) {
			t.Errorf("parseUintB(%q) = %d,%v; strconv = %d,%v", in, got, gerr, want, werr)
		}
	}
	floats := []string{"0", "74.50", "54.250", "0.005", "123456.789",
		"-0.1", "5.", ".5", "1e3", "999999999999999999999.5", "", "x"}
	for _, in := range floats {
		got, gerr := parseFloatB([]byte(in))
		want, werr := strconv.ParseFloat(in, 64)
		if (gerr == nil) != (werr == nil) || (gerr == nil && got != want) {
			t.Errorf("parseFloatB(%q) = %v,%v; strconv = %v,%v", in, got, gerr, want, werr)
		}
	}
}

// TestParseTimeBytes: fast path equals time.Parse, odd layouts still work
// via the fallback, and invalid calendar dates are rejected.
func TestParseTimeBytes(t *testing.T) {
	ok := []string{"2003-10-06T10:15:00Z", "2024-02-29T23:59:59Z",
		"2003-10-06T10:15:00+02:00", "2003-10-06T10:15:00.25Z"}
	for _, in := range ok {
		got, err := parseTimeB([]byte(in))
		if err != nil {
			t.Errorf("parseTimeB(%q): %v", in, err)
			continue
		}
		want, err := time.Parse(time.RFC3339, in)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("parseTimeB(%q) = %v, want %v", in, got, want)
		}
	}
	bad := []string{"2003-02-30T10:15:00Z", "2003-13-06T10:15:00Z",
		"2003-10-06T24:15:00Z", "yesterday", ""}
	for _, in := range bad {
		if _, err := parseTimeB([]byte(in)); err == nil {
			t.Errorf("parseTimeB accepted %q", in)
		}
	}
}
