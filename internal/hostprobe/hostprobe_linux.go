//go:build linux

// Package hostprobe implements the probe's metric collection against a
// real host instead of a simulated machine — the role the win32 API played
// for the paper's W32Probe, here backed by the Linux /proc and statfs
// interfaces. It produces the same machine.Snapshot the rest of the
// pipeline consumes, so a live host can be probed, rendered, collected
// over TCP and analysed exactly like the simulated fleet.
//
// Limitations relative to the original: interactive-session detection and
// SMART counters need privileged interfaces (utmp parsing, SMART ioctls)
// and are left zero; the analysis treats such machines as never occupied,
// which is the honest reading of what this probe can see.
package hostprobe

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"winlab/internal/machine"
)

// userHZ is the kernel's USER_HZ tick rate used by /proc/stat; 100 on all
// mainstream Linux configurations.
const userHZ = 100

// Paths lets tests (and exotic systems) redirect the proc interfaces.
type Paths struct {
	Uptime  string
	Stat    string
	Meminfo string
	NetDev  string
	CPUInfo string
	RootFS  string
}

// DefaultPaths returns the standard locations.
func DefaultPaths() Paths {
	return Paths{
		Uptime:  "/proc/uptime",
		Stat:    "/proc/stat",
		Meminfo: "/proc/meminfo",
		NetDev:  "/proc/net/dev",
		CPUInfo: "/proc/cpuinfo",
		RootFS:  "/",
	}
}

// Snapshot reads the local host's state. The returned snapshot carries
// everything the paper's dynamic metrics need except sessions and SMART.
func Snapshot(now time.Time) (machine.Snapshot, error) {
	return SnapshotFrom(DefaultPaths(), now)
}

// SnapshotFrom reads a snapshot through the given paths.
func SnapshotFrom(p Paths, now time.Time) (machine.Snapshot, error) {
	sn := machine.Snapshot{Time: now, OS: "linux"}
	host, err := os.Hostname()
	if err != nil {
		return sn, fmt.Errorf("hostprobe: hostname: %w", err)
	}
	sn.ID = host
	sn.Lab = "local"

	up, err := readUptime(p.Uptime)
	if err != nil {
		return sn, err
	}
	sn.Uptime = up
	sn.BootTime = now.Add(-up)

	idle, err := readCPUIdle(p.Stat)
	if err != nil {
		return sn, err
	}
	sn.CPUIdle = idle

	if err := readMeminfo(p.Meminfo, &sn); err != nil {
		return sn, err
	}
	if err := readNetDev(p.NetDev, &sn); err != nil {
		return sn, err
	}
	if model, mhz, err := readCPUInfo(p.CPUInfo); err == nil {
		sn.CPUModel = model
		sn.CPUGHz = mhz / 1000
	}
	var fs syscall.Statfs_t
	if err := syscall.Statfs(p.RootFS, &fs); err == nil {
		total := float64(fs.Blocks) * float64(fs.Bsize)
		free := float64(fs.Bavail) * float64(fs.Bsize)
		sn.DiskGB = total / (1 << 30)
		sn.FreeDiskGB = free / (1 << 30)
	}
	return sn, nil
}

func readUptime(path string) (time.Duration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("hostprobe: %w", err)
	}
	fields := strings.Fields(string(data))
	if len(fields) < 1 {
		return 0, fmt.Errorf("hostprobe: malformed %s", path)
	}
	sec, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("hostprobe: uptime: %w", err)
	}
	return time.Duration(sec * float64(time.Second)), nil
}

// readCPUIdle returns the cumulative idle time of the machine since boot,
// normalised to a single-CPU equivalent (dividing by the CPU count) so it
// is comparable with uptime, matching the paper's idle-thread metric.
func readCPUIdle(path string) (time.Duration, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("hostprobe: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var idleTicks float64
	cpus := 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "cpu") && !strings.HasPrefix(line, "cpu ") {
			cpus++
			continue
		}
		if !strings.HasPrefix(line, "cpu ") {
			continue
		}
		fields := strings.Fields(line)
		// cpu user nice system idle iowait ...
		if len(fields) < 5 {
			return 0, fmt.Errorf("hostprobe: malformed cpu line %q", line)
		}
		idle, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return 0, fmt.Errorf("hostprobe: idle ticks: %w", err)
		}
		idleTicks = idle
		if len(fields) >= 6 {
			if iowait, err := strconv.ParseFloat(fields[5], 64); err == nil {
				idleTicks += iowait // iowait is idle from a harvesting view
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if cpus == 0 {
		cpus = 1
	}
	sec := idleTicks / userHZ / float64(cpus)
	return time.Duration(sec * float64(time.Second)), nil
}

func readMeminfo(path string, sn *machine.Snapshot) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("hostprobe: %w", err)
	}
	defer f.Close()
	vals := map[string]int64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		key, rest, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			continue
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			continue
		}
		vals[key] = kb
	}
	if err := sc.Err(); err != nil {
		return err
	}
	total := vals["MemTotal"]
	if total <= 0 {
		return fmt.Errorf("hostprobe: no MemTotal in %s", path)
	}
	avail := vals["MemAvailable"]
	if avail == 0 {
		avail = vals["MemFree"]
	}
	sn.RAMMB = int(total / 1024)
	sn.MemLoadPct = int(100 * (total - avail) / total)
	if st := vals["SwapTotal"]; st > 0 {
		sn.SwapMB = int(st / 1024)
		sn.SwapLoadPct = int(100 * (st - vals["SwapFree"]) / st)
	}
	return nil
}

// readNetDev sums the cumulative receive/transmit byte counters over all
// non-loopback interfaces, the equivalent of the probe's per-NIC totals.
func readNetDev(path string, sn *machine.Snapshot) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("hostprobe: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if lineNo <= 2 {
			continue // headers
		}
		name, rest, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		name = strings.TrimSpace(name)
		if name == "lo" {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 9 {
			continue
		}
		rx, err1 := strconv.ParseUint(fields[0], 10, 64)
		tx, err2 := strconv.ParseUint(fields[8], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		sn.RecvBytes += rx
		sn.SentBytes += tx
		sn.MACs = append(sn.MACs, name) // interface names stand in for MACs
	}
	return sc.Err()
}

func readCPUInfo(path string) (model string, mhz float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		key, val, ok := strings.Cut(sc.Text(), ":")
		if !ok {
			continue
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "model name":
			if model == "" {
				model = val
			}
		case "cpu MHz":
			if mhz == 0 {
				mhz, _ = strconv.ParseFloat(val, 64)
			}
		}
		if model != "" && mhz != 0 {
			break
		}
	}
	return model, mhz, sc.Err()
}
