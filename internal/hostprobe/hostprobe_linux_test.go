//go:build linux

package hostprobe

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"winlab/internal/probe"
)

func TestSnapshotLiveHost(t *testing.T) {
	now := time.Now()
	sn, err := Snapshot(now)
	if err != nil {
		t.Fatal(err)
	}
	if sn.ID == "" {
		t.Error("no hostname")
	}
	if sn.Uptime <= 0 {
		t.Errorf("uptime = %v", sn.Uptime)
	}
	if sn.CPUIdle < 0 || sn.CPUIdle > sn.Uptime+time.Minute {
		t.Errorf("cpu idle %v vs uptime %v", sn.CPUIdle, sn.Uptime)
	}
	if sn.RAMMB <= 0 || sn.MemLoadPct < 0 || sn.MemLoadPct > 100 {
		t.Errorf("memory: %d MB at %d%%", sn.RAMMB, sn.MemLoadPct)
	}
	if sn.DiskGB <= 0 || sn.FreeDiskGB < 0 || sn.FreeDiskGB > sn.DiskGB {
		t.Errorf("disk: %v free of %v", sn.FreeDiskGB, sn.DiskGB)
	}
	if !sn.BootTime.Before(now) {
		t.Error("boot time in the future")
	}
	// The live snapshot must survive the probe wire format.
	back, err := probe.Parse(probe.Render(sn))
	if err != nil {
		t.Fatalf("live snapshot unparseable: %v", err)
	}
	if back.ID != sn.ID || back.RAMMB != sn.RAMMB {
		t.Error("round trip mismatch")
	}
}

func TestSnapshotCountersMonotone(t *testing.T) {
	a, err := Snapshot(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	b, err := Snapshot(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if b.CPUIdle < a.CPUIdle {
		t.Errorf("cpu idle went backwards: %v -> %v", a.CPUIdle, b.CPUIdle)
	}
	if b.Uptime < a.Uptime {
		t.Errorf("uptime went backwards")
	}
	if b.RecvBytes < a.RecvBytes || b.SentBytes < a.SentBytes {
		t.Errorf("net counters went backwards")
	}
}

// writeFixtures fabricates a /proc-like directory with known contents.
func writeFixtures(t *testing.T) Paths {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	return Paths{
		Uptime: write("uptime", "7200.50 14000.00\n"),
		Stat: write("stat", `cpu  1000 0 500 360000 20000 0 0 0 0 0
cpu0 500 0 250 180000 10000 0 0 0 0 0
cpu1 500 0 250 180000 10000 0 0 0 0 0
intr 12345
`),
		Meminfo: write("meminfo", `MemTotal:        2097152 kB
MemFree:          524288 kB
MemAvailable:    1048576 kB
SwapTotal:       1048576 kB
SwapFree:         786432 kB
`),
		NetDev: write("netdev", `Inter-|   Receive                                                |  Transmit
 face |bytes    packets errs drop fifo frame compressed multicast|bytes    packets errs drop fifo colls carrier compressed
    lo:  999999    1000    0    0    0     0          0         0   999999    1000    0    0    0     0       0          0
  eth0: 5000000    4000    0    0    0     0          0         0  2500000    3000    0    0    0     0       0          0
  eth1: 1000000    1000    0    0    0     0          0         0   500000     800    0    0    0     0       0          0
`),
		CPUInfo: write("cpuinfo", `processor : 0
model name : Intel Pentium 4 (test)
cpu MHz    : 2400.000
`),
		RootFS: dir,
	}
}

func TestSnapshotFromFixtures(t *testing.T) {
	p := writeFixtures(t)
	now := time.Now()
	sn, err := SnapshotFrom(p, now)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Uptime != 7200*time.Second+500*time.Millisecond {
		t.Errorf("uptime = %v", sn.Uptime)
	}
	// Idle: (360000 + 20000) ticks / 100 HZ / 2 CPUs = 1900 s.
	if sn.CPUIdle != 1900*time.Second {
		t.Errorf("cpu idle = %v, want 1900s", sn.CPUIdle)
	}
	if sn.RAMMB != 2048 {
		t.Errorf("RAM = %d MB", sn.RAMMB)
	}
	if sn.MemLoadPct != 50 { // (2097152-1048576)/2097152
		t.Errorf("mem load = %d%%", sn.MemLoadPct)
	}
	if sn.SwapMB != 1024 || sn.SwapLoadPct != 25 {
		t.Errorf("swap: %d MB at %d%%", sn.SwapMB, sn.SwapLoadPct)
	}
	// Net: loopback excluded; eth0+eth1.
	if sn.RecvBytes != 6000000 || sn.SentBytes != 3000000 {
		t.Errorf("net: rx=%d tx=%d", sn.RecvBytes, sn.SentBytes)
	}
	if len(sn.MACs) != 2 {
		t.Errorf("interfaces = %v", sn.MACs)
	}
	if sn.CPUModel != "Intel Pentium 4 (test)" || sn.CPUGHz != 2.4 {
		t.Errorf("cpu: %q %v GHz", sn.CPUModel, sn.CPUGHz)
	}
	if sn.DiskGB <= 0 {
		t.Errorf("disk = %v", sn.DiskGB)
	}
}

func TestSnapshotFromMissingFiles(t *testing.T) {
	p := DefaultPaths()
	p.Uptime = filepath.Join(t.TempDir(), "nope")
	if _, err := SnapshotFrom(p, time.Now()); err == nil {
		t.Error("missing uptime file accepted")
	}
}
