//go:build !linux

// Package hostprobe implements the probe's metric collection against a
// real host. Only Linux is supported; other platforms return an error so
// callers can fall back to the simulated fleet.
package hostprobe

import (
	"fmt"
	"runtime"
	"time"

	"winlab/internal/machine"
)

// Snapshot is unsupported on this platform.
func Snapshot(now time.Time) (machine.Snapshot, error) {
	return machine.Snapshot{}, fmt.Errorf("hostprobe: unsupported platform %s", runtime.GOOS)
}
