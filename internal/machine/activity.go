package machine

// Activity is a named bundle of resource consumption running on a machine:
// the OS background load, an interactive user's applications, a
// CPU-intensive class exercise, a download burst. The behaviour model
// installs, replaces and removes activities at event boundaries; between
// boundaries the machine integrates their aggregate rates.
type Activity struct {
	Name    string
	CPU     float64 // busy fraction of one CPU, 0..1
	SendBps float64 // network send rate, bits per second
	RecvBps float64 // network receive rate, bits per second
	MemMB   float64 // additional main-memory commit
	SwapMB  float64 // additional pagefile commit
	DiskGB  float64 // additional disk usage while active
}

// Well-known activity names used by the behaviour model. Keeping them in
// one place lets tests and ablations address specific workload components.
const (
	ActOSBackground = "os-background" // services, indexing, the 0.3% baseline
	ActInteractive  = "interactive"   // the logged-in user's applications
	ActClass        = "class"         // class exercise (e.g. the Tuesday CPU hog)
	ActBurst        = "burst"         // short network/CPU burst (download, install)
)
