package machine

import (
	"testing"
	"testing/quick"
	"time"

	"winlab/internal/smart"
)

var t0 = time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC)

func newTestMachine() *Machine {
	hw := Hardware{
		CPUModel: "Intel Pentium 4", CPUGHz: 2.4, RAMMB: 512,
		DiskGB: 74.5, IntIndex: 30.5, FPIndex: 33.1,
		MACs: []string{SyntheticMAC(1)}, OS: "Windows 2000 Professional SP3",
	}
	return New("L01-M01", "L01", hw, smart.NewDisk("D1", 74.5))
}

func TestDefaultSwap(t *testing.T) {
	m := newTestMachine()
	if m.HW.SwapMB != 768 { // 1.5 × 512
		t.Errorf("SwapMB = %d, want 768", m.HW.SwapMB)
	}
	if DefaultSwapMB(128) != 192 {
		t.Errorf("DefaultSwapMB(128) = %d", DefaultSwapMB(128))
	}
}

func TestPowerLifecycle(t *testing.T) {
	m := newTestMachine()
	if m.Powered() {
		t.Fatal("new machine powered")
	}
	if _, ok := m.Snapshot(t0); ok {
		t.Fatal("snapshot of powered-off machine succeeded")
	}
	m.PowerOn(t0)
	if !m.Powered() || !m.BootTime().Equal(t0) {
		t.Fatal("PowerOn state wrong")
	}
	if !m.Disk.Powered() {
		t.Fatal("disk not powered with machine")
	}
	m.PowerOff(t0.Add(3 * time.Hour))
	if m.Powered() || m.Disk.Powered() {
		t.Fatal("PowerOff state wrong")
	}
	if len(m.PowerLog) != 1 || m.PowerLog[0].Duration() != 3*time.Hour {
		t.Fatalf("PowerLog = %+v", m.PowerLog)
	}
	if !m.BootTime().IsZero() {
		t.Error("BootTime of off machine not zero")
	}
}

func TestCPUIdleIntegration(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetBaseline(212, 148, 20)
	// 30 minutes fully idle, then 30 minutes at 40% busy.
	m.SetActivity(t0.Add(30*time.Minute), Activity{Name: ActInteractive, CPU: 0.4})
	sn, ok := m.Snapshot(t0.Add(time.Hour))
	if !ok {
		t.Fatal("snapshot failed")
	}
	wantIdle := 30*time.Minute + time.Duration(0.6*float64(30*time.Minute))
	if diff := sn.CPUIdle - wantIdle; diff < -time.Second || diff > time.Second {
		t.Errorf("CPUIdle = %v, want ≈%v", sn.CPUIdle, wantIdle)
	}
	if sn.Uptime != time.Hour {
		t.Errorf("Uptime = %v", sn.Uptime)
	}
}

func TestCPUSaturation(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetActivity(t0, Activity{Name: "a", CPU: 0.7})
	m.SetActivity(t0, Activity{Name: "b", CPU: 0.8})
	if m.CPUBusy() != 1 {
		t.Errorf("CPU busy = %v, want clamp to 1", m.CPUBusy())
	}
	sn, _ := m.Snapshot(t0.Add(time.Hour))
	if sn.CPUIdle != 0 {
		t.Errorf("CPUIdle = %v under saturation", sn.CPUIdle)
	}
}

func TestNetworkCounters(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetActivity(t0, Activity{Name: ActInteractive, SendBps: 8000, RecvBps: 16000})
	sn, _ := m.Snapshot(t0.Add(10 * time.Second))
	if sn.SentBytes != 10000 { // 8000 bps = 1000 B/s
		t.Errorf("SentBytes = %d, want 10000", sn.SentBytes)
	}
	if sn.RecvBytes != 20000 {
		t.Errorf("RecvBytes = %d, want 20000", sn.RecvBytes)
	}
}

func TestCountersResetAtBoot(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetActivity(t0, Activity{Name: "x", CPU: 0.5, SendBps: 800})
	m.PowerOff(t0.Add(time.Hour))
	m.PowerOn(t0.Add(2 * time.Hour))
	sn, _ := m.Snapshot(t0.Add(2*time.Hour + time.Minute))
	if sn.SentBytes != 0 {
		t.Errorf("SentBytes after reboot = %d", sn.SentBytes)
	}
	if sn.CPUIdle != time.Minute {
		t.Errorf("CPUIdle after reboot = %v, want 1m (activities cleared)", sn.CPUIdle)
	}
	if sn.PowerCycles != 2 {
		t.Errorf("SMART cycles = %d, want 2 (persist across boots)", sn.PowerCycles)
	}
}

func TestSessionLifecycle(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.Login(t0.Add(5*time.Minute), "alice")
	s := m.Session()
	if s == nil || s.User != "alice" || s.Forgotten {
		t.Fatalf("session = %+v", s)
	}
	sn, _ := m.Snapshot(t0.Add(20 * time.Minute))
	if !sn.HasSession() || sn.SessionUser != "alice" {
		t.Fatal("snapshot misses session")
	}
	if got := sn.SessionAge(); got != 15*time.Minute {
		t.Errorf("SessionAge = %v", got)
	}
	m.Logout(t0.Add(30 * time.Minute))
	if m.Session() != nil {
		t.Fatal("session survives logout")
	}
	if len(m.SessionLog) != 1 {
		t.Fatalf("SessionLog = %+v", m.SessionLog)
	}
	rec := m.SessionLog[0]
	if rec.User != "alice" || rec.End.Sub(rec.Start) != 25*time.Minute || rec.Forgotten {
		t.Errorf("session record = %+v", rec)
	}
}

func TestForget(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.Login(t0, "bob")
	m.Forget(t0.Add(time.Hour))
	if s := m.Session(); s == nil || !s.Forgotten {
		t.Fatal("Forget did not mark session")
	}
	// The session stays visible to the probe.
	sn, _ := m.Snapshot(t0.Add(12 * time.Hour))
	if !sn.HasSession() || sn.SessionAge() != 12*time.Hour {
		t.Errorf("forgotten session not visible: %+v", sn.SessionUser)
	}
	// PowerOff closes it and records ground truth.
	m.PowerOff(t0.Add(13 * time.Hour))
	if len(m.SessionLog) != 1 || !m.SessionLog[0].Forgotten {
		t.Errorf("SessionLog = %+v", m.SessionLog)
	}
}

func TestMemoryModel(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetBaseline(212, 148, 20)
	if got := m.MemLoadPct(); got < 41 || got > 42 {
		t.Errorf("baseline mem load = %v, want ≈41.4", got)
	}
	m.SetActivity(t0, Activity{Name: ActInteractive, MemMB: 88, SwapMB: 55})
	if got := m.MemLoadPct(); got < 58 || got > 59 {
		t.Errorf("mem load with apps = %v, want ≈58.6", got)
	}
	if got := m.SwapLoadPct(); got < 26 || got > 27 {
		t.Errorf("swap load = %v, want ≈26.4", got)
	}
}

func TestMemoryPressureSpillsToSwap(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetBaseline(212, 148, 20)
	m.SetActivity(t0, Activity{Name: ActInteractive, MemMB: 500, SwapMB: 50})
	if got := m.MemLoadPct(); got != 100 {
		t.Errorf("mem load = %v, want clamp at 100", got)
	}
	// Commit beyond RAM (212+500−512 = 200 MB) lands in the pagefile:
	// (148 + 50 + 200) / 768 ≈ 51.8%.
	if got := m.SwapLoadPct(); got < 51 || got > 53 {
		t.Errorf("swap load = %v, want ≈51.8", got)
	}
}

func TestDiskModel(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetBaseline(212, 148, 20)
	if got := m.UsedDiskGB(); got != 20 {
		t.Errorf("used disk = %v", got)
	}
	m.Login(t0, "u")
	m.GrowTemp(t0.Add(time.Minute), 0.25)
	if got := m.UsedDiskGB(); got != 20.25 {
		t.Errorf("used disk with temp = %v", got)
	}
	m.Logout(t0.Add(time.Hour))
	if got := m.UsedDiskGB(); got != 20 {
		t.Errorf("temp not cleaned after logout: %v", got)
	}
	sn, _ := m.Snapshot(t0.Add(2 * time.Hour))
	if sn.FreeDiskGB != 54.5 {
		t.Errorf("free disk = %v", sn.FreeDiskGB)
	}
}

func TestActivityReplaceAndClear(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetActivity(t0, Activity{Name: "x", CPU: 0.5})
	m.SetActivity(t0, Activity{Name: "x", CPU: 0.1}) // replace, not add
	if got := m.CPUBusy(); got != 0.1 {
		t.Errorf("CPU busy after replace = %v", got)
	}
	m.ClearActivity(t0, "x")
	if got := m.CPUBusy(); got != 0 {
		t.Errorf("CPU busy after clear = %v", got)
	}
	m.ClearActivity(t0, "missing") // no-op
	if names := m.Activities(); len(names) != 0 {
		t.Errorf("activities = %v", names)
	}
}

func TestActivitiesSorted(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	m.SetActivity(t0, Activity{Name: "zeta"})
	m.SetActivity(t0, Activity{Name: "alpha"})
	names := m.Activities()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Activities() = %v", names)
	}
}

func TestStatePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(m *Machine)
	}{
		{"PowerOn twice", func(m *Machine) { m.PowerOn(t0); m.PowerOn(t0.Add(time.Hour)) }},
		{"PowerOff while off", func(m *Machine) { m.PowerOff(t0) }},
		{"Login while off", func(m *Machine) { m.Login(t0, "u") }},
		{"Login over session", func(m *Machine) {
			m.PowerOn(t0)
			m.Login(t0, "a")
			m.Login(t0, "b")
		}},
		{"Logout without session", func(m *Machine) { m.PowerOn(t0); m.Logout(t0) }},
		{"Forget without session", func(m *Machine) { m.PowerOn(t0); m.Forget(t0) }},
		{"SetActivity while off", func(m *Machine) { m.SetActivity(t0, Activity{Name: "x"}) }},
		{"time going backwards", func(m *Machine) {
			m.PowerOn(t0)
			_, _ = m.Snapshot(t0.Add(time.Hour))
			_, _ = m.Snapshot(t0)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn(newTestMachine())
		})
	}
}

func TestSnapshotStaticFields(t *testing.T) {
	m := newTestMachine()
	m.PowerOn(t0)
	sn, _ := m.Snapshot(t0.Add(time.Minute))
	if sn.ID != "L01-M01" || sn.Lab != "L01" || sn.CPUModel != "Intel Pentium 4" ||
		sn.RAMMB != 512 || sn.DiskGB != 74.5 || sn.Serial != "D1" ||
		len(sn.MACs) != 1 || sn.OS == "" {
		t.Errorf("static fields wrong: %+v", sn)
	}
}

func TestPerfIndex(t *testing.T) {
	hw := Hardware{IntIndex: 30, FPIndex: 34}
	if hw.PerfIndex() != 32 {
		t.Errorf("PerfIndex = %v", hw.PerfIndex())
	}
}

func TestSyntheticMACStable(t *testing.T) {
	if SyntheticMAC(5) != SyntheticMAC(5) {
		t.Error("MAC not stable")
	}
	if SyntheticMAC(5) == SyntheticMAC(6) {
		t.Error("MAC collision")
	}
	if got := SyntheticMAC(0x0A0B0C); got != "02:57:4C:0A:0B:0C" {
		t.Errorf("MAC = %s", got)
	}
}

// TestQuickOpSequences drives a machine through random valid operation
// sequences and checks the invariants the analysis relies on: idle time
// never exceeds uptime, SMART counters are monotone, network counters
// reset per boot and never decrease within one.
func TestQuickOpSequences(t *testing.T) {
	f := func(ops []uint8) bool {
		m := newTestMachine()
		at := t0
		var lastCycles int64
		var lastSent uint64
		poweredSince := time.Time{}
		for _, op := range ops {
			at = at.Add(time.Duration(1+op%7) * time.Minute)
			switch op % 5 {
			case 0:
				if !m.Powered() {
					m.PowerOn(at)
					m.SetBaseline(212, 148, 20)
					poweredSince = at
					lastSent = 0
				}
			case 1:
				if m.Powered() {
					m.PowerOff(at)
				}
			case 2:
				if m.Powered() && m.Session() == nil {
					m.Login(at, "q")
				}
			case 3:
				if m.Session() != nil {
					m.Logout(at)
				}
			case 4:
				if m.Powered() {
					m.SetActivity(at, Activity{
						Name:    ActInteractive,
						CPU:     float64(op%100) / 100,
						SendBps: float64(op) * 10,
					})
				}
			}
			if m.Powered() {
				sn, ok := m.Snapshot(at)
				if !ok {
					return false
				}
				if sn.CPUIdle > sn.Uptime+time.Second {
					return false
				}
				if sn.Uptime != at.Sub(poweredSince) {
					return false
				}
				if sn.SentBytes < lastSent {
					return false
				}
				lastSent = sn.SentBytes
				if sn.PowerCycles < lastCycles {
					return false
				}
				lastCycles = sn.PowerCycles
				if sn.MemLoadPct < 0 || sn.MemLoadPct > 100 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
