package machine

import "time"

// Snapshot is everything W32Probe can observe on a machine at one instant.
// It is the boundary between the simulated fleet and the collector: the
// probe renders a Snapshot to text, and nothing downstream ever touches the
// Machine again.
type Snapshot struct {
	Time time.Time
	ID   string
	Lab  string

	// Static metrics.
	CPUModel string
	CPUGHz   float64
	RAMMB    int
	SwapMB   int
	DiskGB   float64
	Serial   string
	MACs     []string
	OS       string

	// Dynamic metrics.
	BootTime     time.Time
	Uptime       time.Duration
	CPUIdle      time.Duration // cumulative idle-thread time since boot
	MemLoadPct   int           // dwMemoryLoad-style integer percentage
	SwapLoadPct  int
	FreeDiskGB   float64
	PowerCycles  int64  // SMART attribute 12
	PowerOnHours int64  // SMART attribute 9
	SentBytes    uint64 // per-boot NIC counter
	RecvBytes    uint64

	// Interactive session; empty user means none.
	SessionUser  string
	SessionStart time.Time
}

// HasSession reports whether an interactive user was logged in.
func (s Snapshot) HasSession() bool { return s.SessionUser != "" }

// SessionAge returns how long the interactive session had been open at
// snapshot time, or 0 when there is none.
func (s Snapshot) SessionAge() time.Duration {
	if !s.HasSession() {
		return 0
	}
	return s.Time.Sub(s.SessionStart)
}

// Snapshot probes the machine at time t. It returns ok=false when the
// machine is powered off — the remote execution would have timed out.
func (m *Machine) Snapshot(t time.Time) (Snapshot, bool) {
	if !m.powered {
		return Snapshot{}, false
	}
	m.advance(t)
	s := Snapshot{
		Time:         t,
		ID:           m.ID,
		Lab:          m.Lab,
		CPUModel:     m.HW.CPUModel,
		CPUGHz:       m.HW.CPUGHz,
		RAMMB:        m.HW.RAMMB,
		SwapMB:       m.HW.SwapMB,
		DiskGB:       m.HW.DiskGB,
		Serial:       m.Disk.Serial,
		MACs:         m.HW.MACs,
		OS:           m.HW.OS,
		BootTime:     m.bootTime,
		Uptime:       t.Sub(m.bootTime),
		CPUIdle:      m.idleCPU,
		MemLoadPct:   int(m.MemLoadPct() + 0.5),
		SwapLoadPct:  int(m.SwapLoadPct() + 0.5),
		FreeDiskGB:   m.HW.DiskGB - m.UsedDiskGB(),
		PowerCycles:  m.Disk.PowerCycleCount(t),
		PowerOnHours: m.Disk.PowerOnHours(t),
		SentBytes:    uint64(m.sentBytes),
		RecvBytes:    uint64(m.recvBytes),
	}
	if m.session != nil {
		s.SessionUser = m.session.User
		s.SessionStart = m.session.Start
	}
	return s, true
}
