package machine

import "fmt"

// Hardware describes the fixed characteristics of a simulated machine,
// mirroring the static metrics W32Probe reports (§3.1.1 of the paper) plus
// the NBench performance indexes of Table 1.
type Hardware struct {
	CPUModel string  // e.g. "Intel Pentium 4"
	CPUGHz   float64 // operating frequency in GHz
	RAMMB    int     // installed main memory
	SwapMB   int     // configured virtual memory (pagefile)
	DiskGB   float64 // hard disk capacity
	IntIndex float64 // NBench integer index
	FPIndex  float64 // NBench floating-point index
	MACs     []string
	OS       string // operating system name and version
}

// PerfIndex returns the combined performance index used by the paper's
// cluster-equivalence computation: a 50% weight on each of INT and FP.
func (h Hardware) PerfIndex() float64 {
	return 0.5*h.IntIndex + 0.5*h.FPIndex
}

// DefaultSwapMB returns the Windows 2000 default pagefile size for a
// machine with ramMB of memory (1.5 × RAM).
func DefaultSwapMB(ramMB int) int { return ramMB * 3 / 2 }

// SyntheticMAC derives a stable locally-administered MAC address from a
// machine index, for the probe's network-interface report.
func SyntheticMAC(idx int) string {
	return fmt.Sprintf("02:57:4C:%02X:%02X:%02X",
		(idx>>16)&0xFF, (idx>>8)&0xFF, idx&0xFF)
}
