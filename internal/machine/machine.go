// Package machine models one simulated Windows 2000 classroom computer.
//
// A Machine integrates its cumulative counters lazily: the behaviour model
// mutates the set of running activities (interactive session, class
// workload, background bursts) at event boundaries, and between mutations
// the CPU idle time, network byte counters and SMART power-on hours advance
// linearly. Probing a machine is a pure read: it advances the integrators
// to the probe time and renders a Snapshot.
//
// The model intentionally exposes exactly the observables W32Probe could
// see through the win32 API — cumulative idle-thread time since boot,
// dwMemoryLoad-style percentages, per-boot NIC byte counters, SMART
// attributes 9 and 12 — so the downstream collector and analysis code paths
// are identical to the paper's.
package machine

import (
	"fmt"
	"sort"
	"time"

	"winlab/internal/smart"
)

// Session describes an interactive login session.
type Session struct {
	User  string
	Start time.Time
	// Forgotten marks a session whose user left without logging out; the
	// machine keeps the session open but returns to idle resource usage.
	// This is ground truth the probe does NOT report — the paper had to
	// infer it from the 10-hour threshold (§4.2).
	Forgotten bool
}

// PowerRecord is a ground-truth machine session (boot → shutdown).
type PowerRecord struct {
	Start, End time.Time
}

// Duration returns the length of the power session.
func (p PowerRecord) Duration() time.Duration { return p.End.Sub(p.Start) }

// SessionRecord is a ground-truth interactive session.
type SessionRecord struct {
	User       string
	Start, End time.Time
	Forgotten  bool
}

// Machine is a simulated classroom computer.
type Machine struct {
	ID  string // e.g. "L01-M07"
	Lab string // e.g. "L01"
	HW  Hardware

	Disk *smart.Disk

	powered  bool
	bootTime time.Time
	lastAdv  time.Time

	// Cumulative per-boot counters (reset at boot, like their win32
	// counterparts).
	idleCPU   time.Duration
	sentBytes float64
	recvBytes float64

	// Current activity set and the aggregate rates derived from it.
	activities map[string]Activity
	agg        aggregate

	// Baseline state drawn at boot by the behaviour model.
	osMemMB    float64 // OS + resident services commit
	osSwapMB   float64
	baseDiskGB float64 // installed image
	tempDiskGB float64 // session temp files, cleaned at logout

	session *Session

	// Ground-truth logs for ablations (what sampling misses).
	PowerLog   []PowerRecord
	SessionLog []SessionRecord
}

type aggregate struct {
	cpu     float64 // busy fraction of one CPU, 0..1
	sendBps float64
	recvBps float64
	memMB   float64
	swapMB  float64
	diskGB  float64
}

// New creates a powered-off machine.
func New(id, lab string, hw Hardware, disk *smart.Disk) *Machine {
	if hw.SwapMB == 0 {
		hw.SwapMB = DefaultSwapMB(hw.RAMMB)
	}
	return &Machine{
		ID:         id,
		Lab:        lab,
		HW:         hw,
		Disk:       disk,
		activities: make(map[string]Activity),
	}
}

// Powered reports whether the machine is currently on.
func (m *Machine) Powered() bool { return m.powered }

// BootTime returns the time of the current boot; zero when powered off.
func (m *Machine) BootTime() time.Time {
	if !m.powered {
		return time.Time{}
	}
	return m.bootTime
}

// Session returns the current interactive session, or nil.
func (m *Machine) Session() *Session { return m.session }

// SetBaseline sets the boot-time baseline resource state. It is called by
// the behaviour model immediately after PowerOn.
func (m *Machine) SetBaseline(osMemMB, osSwapMB, baseDiskGB float64) {
	m.advance(m.lastAdv)
	m.osMemMB = osMemMB
	m.osSwapMB = osSwapMB
	m.baseDiskGB = baseDiskGB
}

// PowerOn boots the machine at time t. Counters that Windows keeps per boot
// (idle CPU time, NIC byte counters) reset; SMART counters persist.
func (m *Machine) PowerOn(t time.Time) {
	if m.powered {
		panic(fmt.Sprintf("machine %s: PowerOn while on", m.ID))
	}
	m.powered = true
	m.bootTime = t
	m.lastAdv = t
	m.idleCPU = 0
	m.sentBytes = 0
	m.recvBytes = 0
	m.tempDiskGB = 0
	for k := range m.activities {
		delete(m.activities, k)
	}
	m.recompute()
	m.Disk.PowerOn(t)
}

// PowerOff shuts the machine down at time t, closing any open interactive
// session and recording ground truth.
func (m *Machine) PowerOff(t time.Time) {
	if !m.powered {
		panic(fmt.Sprintf("machine %s: PowerOff while off", m.ID))
	}
	m.advance(t)
	if m.session != nil {
		m.endSession(t)
	}
	m.PowerLog = append(m.PowerLog, PowerRecord{Start: m.bootTime, End: t})
	m.powered = false
	m.Disk.PowerOff(t)
}

// Login opens an interactive session at time t. Logging in on an off
// machine or over an existing session panics: the behaviour model must
// free the machine first.
func (m *Machine) Login(t time.Time, user string) {
	if !m.powered {
		panic(fmt.Sprintf("machine %s: Login while off", m.ID))
	}
	if m.session != nil {
		panic(fmt.Sprintf("machine %s: Login over open session", m.ID))
	}
	m.advance(t)
	m.session = &Session{User: user, Start: t}
}

// Logout closes the interactive session at time t.
func (m *Machine) Logout(t time.Time) {
	if m.session == nil {
		panic(fmt.Sprintf("machine %s: Logout without session", m.ID))
	}
	m.advance(t)
	m.endSession(t)
}

// Forget marks the open session as forgotten: the user walked away without
// logging out. Resource usage should be restored to idle levels by the
// behaviour model; the session itself stays visible to the probe.
func (m *Machine) Forget(t time.Time) {
	if m.session == nil {
		panic(fmt.Sprintf("machine %s: Forget without session", m.ID))
	}
	m.advance(t)
	m.session.Forgotten = true
}

func (m *Machine) endSession(t time.Time) {
	m.SessionLog = append(m.SessionLog, SessionRecord{
		User:      m.session.User,
		Start:     m.session.Start,
		End:       t,
		Forgotten: m.session.Forgotten,
	})
	m.session = nil
	m.tempDiskGB = 0 // temp quota cleaned after the session (§5 of the paper)
}

// SetActivity installs or replaces a named activity at time t.
func (m *Machine) SetActivity(t time.Time, a Activity) {
	if !m.powered {
		panic(fmt.Sprintf("machine %s: SetActivity while off", m.ID))
	}
	m.advance(t)
	m.activities[a.Name] = a
	m.recompute()
}

// ClearActivity removes a named activity at time t, if present.
func (m *Machine) ClearActivity(t time.Time, name string) {
	if !m.powered {
		return
	}
	m.advance(t)
	delete(m.activities, name)
	m.recompute()
}

// Activities returns the names of the currently installed activities,
// sorted, for tests and debugging.
func (m *Machine) Activities() []string {
	names := make([]string, 0, len(m.activities))
	for k := range m.activities {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// GrowTemp adds gb of session temp files (clamped to the paper's 100–300 MB
// quota by the behaviour model).
func (m *Machine) GrowTemp(t time.Time, gb float64) {
	m.advance(t)
	m.tempDiskGB += gb
	if m.tempDiskGB < 0 {
		m.tempDiskGB = 0
	}
}

// advance integrates cumulative counters up to time t at the current rates.
func (m *Machine) advance(t time.Time) {
	if !m.powered {
		return
	}
	dt := t.Sub(m.lastAdv)
	if dt < 0 {
		panic(fmt.Sprintf("machine %s: time went backwards %s -> %s", m.ID, m.lastAdv, t))
	}
	if dt == 0 {
		return
	}
	idleFrac := 1 - m.agg.cpu
	if idleFrac < 0 {
		idleFrac = 0
	}
	m.idleCPU += time.Duration(float64(dt) * idleFrac)
	m.sentBytes += m.agg.sendBps / 8 * dt.Seconds()
	m.recvBytes += m.agg.recvBps / 8 * dt.Seconds()
	m.lastAdv = t
}

// recompute refreshes the aggregate rates from the activity set.
func (m *Machine) recompute() {
	var a aggregate
	for _, act := range m.activities {
		a.cpu += act.CPU
		a.sendBps += act.SendBps
		a.recvBps += act.RecvBps
		a.memMB += act.MemMB
		a.swapMB += act.SwapMB
		a.diskGB += act.DiskGB
	}
	if a.cpu > 1 {
		a.cpu = 1
	}
	m.agg = a
}

// MemLoadPct returns the dwMemoryLoad-style main memory load percentage.
func (m *Machine) MemLoadPct() float64 {
	used := m.osMemMB + m.agg.memMB
	pct := 100 * used / float64(m.HW.RAMMB)
	return clampPct(pct)
}

// SwapLoadPct returns the swap area load percentage.
func (m *Machine) SwapLoadPct() float64 {
	used := m.osSwapMB + m.agg.swapMB
	// Memory pressure spills into swap: commit beyond physical RAM lands in
	// the pagefile, which is what makes the 128 MB machines page heavily.
	if over := m.osMemMB + m.agg.memMB - float64(m.HW.RAMMB); over > 0 {
		used += over
	}
	pct := 100 * used / float64(m.HW.SwapMB)
	return clampPct(pct)
}

// UsedDiskGB returns the occupied disk space.
func (m *Machine) UsedDiskGB() float64 {
	used := m.baseDiskGB + m.tempDiskGB + m.agg.diskGB
	if used > m.HW.DiskGB {
		used = m.HW.DiskGB
	}
	return used
}

// CPUBusy returns the instantaneous busy fraction (for tests).
func (m *Machine) CPUBusy() float64 { return m.agg.cpu }

func clampPct(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}
