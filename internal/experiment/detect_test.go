package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"winlab/internal/anomaly"
	"winlab/internal/lab"
	"winlab/internal/telemetry"
	"winlab/internal/telemetry/httpx"
)

func httpGet(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body), resp
}

// TestDetectEndToEndSurfacesAgree is the acceptance test for the event
// plumbing: a small fault-injected run with the detectors tapped in must
// surface every detection identically on all three paths — the JSONL
// stream, the in-memory ring behind /events, and the telemetry counters
// behind /metrics. Any disagreement means an emit path skipped a sink.
func TestDetectEndToEndSurfacesAgree(t *testing.T) {
	spec := func(name string) lab.Spec {
		return lab.Spec{
			Name: name, Machines: 8, CPUModel: "Test", CPUGHz: 1,
			RAMMB: 256, DiskGB: 40, IntIndex: 20, FPIndex: 20, BaseImgGB: 10,
		}
	}
	cfg := Default(21)
	cfg.Days = 4
	cfg.OutageFraction = 0
	cfg.Labs = []lab.Spec{spec("E1"), spec("E2")}

	at := func(day, hour int) time.Time {
		return cfg.Start.AddDate(0, 0, day).Add(time.Duration(hour) * time.Hour)
	}
	// Wednesday open hours: agents of E1 freeze for a morning, E2 reboots
	// in a loop — both reliably detectable inside a 4-day run (collapse
	// and drift need longer baselines and stay quiet here).
	cfg.Inject = []InjectedAnomaly{
		{Kind: anomaly.KindSensorStaleness, Lab: "E1",
			Machines: []string{"E1-M01", "E1-M02", "E1-M03", "E1-M04"},
			Start:    at(2, 10), End: at(2, 14)},
		{Kind: anomaly.KindRebootStorm, Lab: "E2", Start: at(2, 10), End: at(2, 12)},
	}

	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	cfg.Detect = anomaly.New(anomaly.DefaultConfig(), reg)
	ring := cfg.Detect.Ring()
	var jsonl bytes.Buffer
	ring.SetWriter(&jsonl)

	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	total := ring.Total()
	if total == 0 {
		t.Fatal("injected faults produced no events")
	}
	if total > anomaly.DefaultRingCapacity {
		t.Fatalf("%d events overflow the ring; shrink the scenario so all surfaces stay comparable", total)
	}
	snap := ring.Snapshot()
	kinds := map[anomaly.Kind]int{}
	for _, e := range snap {
		kinds[e.Kind]++
	}
	if kinds[anomaly.KindSensorStaleness] == 0 || kinds[anomaly.KindRebootStorm] == 0 {
		t.Errorf("missing detections for an injected kind: %v", kinds)
	}

	// Surface 1: the JSONL stream — one line per event, byte-identical to
	// encoding/json of the ring's copy.
	lines := strings.Split(strings.TrimSuffix(jsonl.String(), "\n"), "\n")
	if uint64(len(lines)) != total || uint64(len(snap)) != total {
		t.Fatalf("stream has %d lines, ring holds %d, total %d", len(lines), len(snap), total)
	}
	for i, e := range snap {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if lines[i] != string(want) {
			t.Errorf("stream line %d = %s, want %s", i, lines[i], want)
		}
	}
	if err := ring.WriteErr(); err != nil {
		t.Errorf("WriteErr = %v", err)
	}

	// Surface 2: the telemetry counters — aggregate and per-kind sum.
	if got := reg.Counter(anomaly.MetricEvents).Value(); uint64(got) != total {
		t.Errorf("%s = %d, want %d", anomaly.MetricEvents, got, total)
	}
	var perKind int64
	for _, k := range anomaly.Kinds() {
		n := reg.Counter(anomaly.MetricEventsFor(k)).Value()
		perKind += n
		if int(n) != kinds[k] {
			t.Errorf("%s = %d, ring has %d %s events", anomaly.MetricEventsFor(k), n, kinds[k], k)
		}
	}
	if uint64(perKind) != total {
		t.Errorf("per-kind counters sum to %d, want %d", perKind, total)
	}

	// Surface 3: the HTTP scrape — /events byte-identical to the ring,
	// /metrics carrying the exact counter.
	srv, err := httpx.ServeEvents("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, _ := httpGet(t, srv.URL()+"/events")
	if want := string(ring.AppendJSON(nil, 0)) + "\n"; body != want {
		t.Errorf("/events scrape diverges from the ring:\n got %s\nwant %s", body, want)
	}
	var scraped []anomaly.Event
	if err := json.Unmarshal([]byte(body), &scraped); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if uint64(len(scraped)) != total {
		t.Errorf("/events parsed to %d events, want %d", len(scraped), total)
	}
	metrics, _ := httpGet(t, srv.URL()+"/metrics")
	if want := fmt.Sprintf("%s %d", anomaly.MetricEvents, total); !strings.Contains(metrics, want) {
		t.Errorf("/metrics missing %q", want)
	}
}
