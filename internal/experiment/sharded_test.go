package experiment

import (
	"reflect"
	"sort"
	"testing"

	"winlab/internal/anomaly"
	"winlab/internal/ddc"
	"winlab/internal/trace/check"
)

// TestRunShardedMatchesSerial is the end-to-end identity contract: a
// Shards=3 run over the paper fleet must reproduce the serial run's
// dataset sample for sample, iteration for iteration, and its collector
// stats — and the per-shard stats must fold back into the fleet-wide
// ones. (Seeds 1–3 at full length are covered by internal/validate's
// shard arms under make doctor; this is the fast in-package gate.)
func TestRunShardedMatchesSerial(t *testing.T) {
	cfg := shortConfig(1)
	cfg.Days = 2
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 3
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(sharded.ShardDatasets) != 3 || len(sharded.ShardStats) != 3 {
		t.Fatalf("shard views: %d datasets, %d stats", len(sharded.ShardDatasets), len(sharded.ShardStats))
	}
	if diff := check.DiffDatasets(serial.Dataset, sharded.Dataset); diff != "" {
		t.Errorf("sharded dataset differs from serial: %s", diff)
	}
	if !reflect.DeepEqual(serial.Collector, sharded.Collector) {
		t.Errorf("collector stats differ:\nserial  %+v\nsharded %+v", serial.Collector, sharded.Collector)
	}
	if got := ddc.SumShardStats(sharded.ShardStats); !reflect.DeepEqual(got, sharded.Collector) {
		t.Errorf("SumShardStats != Collector:\nsum   %+v\ntotal %+v", got, sharded.Collector)
	}
	// Per-shard datasets really are a partition: no shard is the fleet.
	for i, ds := range sharded.ShardDatasets {
		if n := len(ds.Machines); n == 0 || n >= len(sharded.Dataset.Machines) {
			t.Errorf("shard %d has %d machines", i, n)
		}
	}
}

// TestRunShardedRejectsInject pins the documented incompatibility.
func TestRunShardedRejectsInject(t *testing.T) {
	cfg := shortConfig(1)
	cfg.Days = 1
	cfg.Shards = 2
	cfg.Inject = []InjectedAnomaly{{
		Kind: anomaly.KindSMARTAnomaly, Machines: []string{"x"},
		Start: cfg.Start, End: cfg.End(), CycleJump: 100,
	}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("sharded run with injection accepted")
	}
}

// TestShardedDetectCoherent runs the streaming anomaly detectors under
// both collection modes. Lab-aligned shard boundaries keep each lab's
// sample stream in serial order, so the detected event *set* must match
// exactly; only cross-lab interleaving (and hence ring order) may
// differ. Events are compared sorted by identity.
func TestShardedDetectCoherent(t *testing.T) {
	run := func(shards int) []anomaly.Event {
		cfg := shortConfig(2)
		cfg.Days = 3
		cfg.Shards = shards
		cfg.Detect = anomaly.New(anomaly.Config{}, nil)
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		evs := cfg.Detect.Ring().Snapshot()
		sort.Slice(evs, func(a, b int) bool {
			x, y := evs[a], evs[b]
			if x.Kind != y.Kind {
				return x.Kind < y.Kind
			}
			if x.Machine != y.Machine {
				return x.Machine < y.Machine
			}
			if x.Lab != y.Lab {
				return x.Lab < y.Lab
			}
			return x.FirstIter < y.FirstIter
		})
		return evs
	}
	serial := run(0)
	sharded := run(4)
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("detector event sets differ: serial %d events, sharded %d events\nserial:  %+v\nsharded: %+v",
			len(serial), len(sharded), serial, sharded)
	}
}
