package experiment

import (
	"fmt"
	"sync"
	"time"

	"winlab/internal/anomaly"
	"winlab/internal/ddc"
	"winlab/internal/machine"
	"winlab/internal/rng"
	"winlab/internal/trace"
)

// InjectedAnomaly schedules one synthetic anomaly into a run. The
// injection window is expressed in experiment time; what happens inside
// it depends on Kind:
//
//   - KindAvailabilityCollapse: every machine of Lab is unreachable for
//     the window (routed through FaultExecutor's DownFn — the probes are
//     attempted and denied, exactly like a switch failure).
//   - KindRebootStorm: the targeted machines report a fresh boot on
//     every probe of the window; their SMART power-cycle counter keeps
//     the accumulated extra boots forever after (real storms leave real
//     cycles behind — and a counter that snapped back would itself be a
//     SMART regression).
//   - KindSMARTAnomaly: from Start onward the machine's power-cycle
//     and/or power-on-hours counters are offset by CycleJump/HoursJump —
//     a one-time firmware-glitch step, persistent so the trace stays
//     monotone after the jump.
//   - KindSensorStaleness: the machine answers every probe of the window
//     with its first in-window report, bit-frozen except the timestamp.
//   - KindUsageDrift: the machine reports MemLoadPct/SwapLoadPct pinned
//     near saturation and its disk filled to DriftFreeGB free.
//
// Machines lists explicit targets; an empty list targets every machine
// of Lab.
type InjectedAnomaly struct {
	Kind     anomaly.Kind
	Lab      string
	Machines []string
	Start    time.Time
	End      time.Time

	// SMART jump magnitudes (KindSMARTAnomaly).
	CycleJump int64
	HoursJump int64

	// Drift targets (KindUsageDrift); zero values pick the defaults
	// (mem/swap ≈ saturated, disk filled to 0.4 GB free).
	DriftMemPct int
	DriftFreeGB float64
}

func (a InjectedAnomaly) active(at time.Time) bool {
	return !at.Before(a.Start) && at.Before(a.End)
}

func (a InjectedAnomaly) targets(machineID, lab string) bool {
	if len(a.Machines) == 0 {
		return a.Lab == lab
	}
	for _, m := range a.Machines {
		if m == machineID {
			return true
		}
	}
	return false
}

// Injector wraps a ddc.StateSource and applies scheduled anomalies to
// the snapshots flowing through it. Collapse windows are not applied
// here — they are transport failures, not report corruption — but
// DownNow answers them for FaultExecutor.DownFn.
type Injector struct {
	src       ddc.StateSource
	labOf     map[string]string
	anomalies []InjectedAnomaly

	mu          sync.Mutex
	extraCycles map[string]int64            // storm: persistent synthetic power cycles
	frozen      map[string]machine.Snapshot // staleness: replayed report per machine
}

// NewInjector builds an injector over src for the given fleet and
// schedule.
func NewInjector(src ddc.StateSource, infos []trace.MachineInfo, anomalies []InjectedAnomaly) *Injector {
	labOf := make(map[string]string, len(infos))
	for _, info := range infos {
		labOf[info.ID] = info.Lab
	}
	return &Injector{
		src:         src,
		labOf:       labOf,
		anomalies:   anomalies,
		extraCycles: make(map[string]int64),
		frozen:      make(map[string]machine.Snapshot),
	}
}

// DownNow reports whether machineID is inside an active availability-
// collapse window at the given instant.
func (in *Injector) DownNow(machineID string, at time.Time) bool {
	lab := in.labOf[machineID]
	for _, a := range in.anomalies {
		if a.Kind == anomaly.KindAvailabilityCollapse && a.active(at) && a.targets(machineID, lab) {
			return true
		}
	}
	return false
}

// Snapshot implements ddc.StateSource with the schedule applied.
func (in *Injector) Snapshot(machineID string, at time.Time) (machine.Snapshot, bool) {
	sn, ok := in.src.Snapshot(machineID, at)
	if !ok {
		return sn, false
	}
	lab := in.labOf[machineID]
	in.mu.Lock()
	defer in.mu.Unlock()
	// Persistent power-cycle offset from past (or ongoing) storms.
	if extra := in.extraCycles[machineID]; extra > 0 {
		sn.PowerCycles += extra
	}
	for _, a := range in.anomalies {
		if !a.targets(machineID, lab) {
			continue
		}
		switch a.Kind {
		case anomaly.KindRebootStorm:
			if !a.active(at) {
				continue
			}
			// One synthetic boot per probe: fresh BootTime, short uptime,
			// reset per-boot counters, one more SMART power cycle —
			// forever.
			in.extraCycles[machineID]++
			sn.PowerCycles++
			sn.BootTime = at.Add(-90 * time.Second)
			sn.Uptime = 90 * time.Second
			sn.CPUIdle = 60 * time.Second
			sn.SentBytes = 200 << 10
			sn.RecvBytes = 800 << 10
			sn.SessionUser = ""
			sn.SessionStart = time.Time{}
		case anomaly.KindSMARTAnomaly:
			if at.Before(a.Start) {
				continue
			}
			sn.PowerCycles += a.CycleJump
			sn.PowerOnHours += a.HoursJump
		case anomaly.KindSensorStaleness:
			if !a.active(at) {
				continue
			}
			if frozen, held := in.frozen[machineID]; held {
				frozen.Time = at
				sn = frozen
			} else {
				in.frozen[machineID] = sn
			}
		case anomaly.KindUsageDrift:
			if !a.active(at) {
				continue
			}
			memPct := a.DriftMemPct
			if memPct == 0 {
				memPct = 97
			}
			freeGB := a.DriftFreeGB
			if freeGB == 0 {
				freeGB = 0.4
			}
			sn.MemLoadPct = memPct
			sn.SwapLoadPct = 93
			if sn.FreeDiskGB > freeGB {
				sn.FreeDiskGB = freeGB
			}
		}
	}
	return sn, true
}

// Labels converts the schedule into scoring ground truth: one Label per
// injection, with iteration coordinates derived from cfg's start and
// period. SMART labels extend to the end of the run — the counter
// offset is persistent, so the detection may legitimately date anywhere
// after onset (in practice: the first probe past Start).
func Labels(cfg Config, anomalies []InjectedAnomaly) []anomaly.Label {
	iterOf := func(t time.Time) int {
		return int(t.Sub(cfg.Start) / cfg.Period)
	}
	lastIter := iterOf(cfg.End()) - 1
	out := make([]anomaly.Label, 0, len(anomalies))
	for _, a := range anomalies {
		l := anomaly.Label{
			Kind:      a.Kind,
			Lab:       a.Lab,
			Machines:  a.Machines,
			FirstIter: iterOf(a.Start),
			LastIter:  iterOf(a.End),
		}
		if a.Kind == anomaly.KindSMARTAnomaly {
			l.LastIter = lastIter
		}
		out = append(out, l)
	}
	return out
}

// DefaultAnomalyScenarios builds the labeled scenario set the
// precision/recall harness runs: two availability collapses, a lab-wide
// and a machine-scoped reboot storm, two SMART jumps (cycles, hours),
// two stuck-sensor windows and two usage-drift windows — every one on a
// distinct lab, placed in open hours of the second week so the seasonal
// availability baselines and per-machine usage baselines have a full
// week of clean warmup. Lab and machine picks are drawn from the config
// seed, so each seed exercises a different corner of the fleet.
// Requires Days ≥ 12 and a Start on the fleet's usual Monday.
func DefaultAnomalyScenarios(cfg Config) ([]InjectedAnomaly, []anomaly.Label, error) {
	if cfg.Days < 12 {
		return nil, nil, fmt.Errorf("anomaly scenarios need ≥ 12 days of trace, got %d", cfg.Days)
	}
	if len(cfg.Labs) < 10 {
		return nil, nil, fmt.Errorf("anomaly scenarios need ≥ 10 labs, got %d", len(cfg.Labs))
	}
	src := rng.Derive(cfg.Seed, "anomaly-scenarios")
	// Shuffle the lab order; scenario i uses labs[i], so every scenario
	// lands on its own lab.
	labs := make([]int, len(cfg.Labs))
	for i := range labs {
		labs[i] = i
	}
	src.Shuffle(len(labs), func(i, j int) { labs[i], labs[j] = labs[j], labs[i] })

	at := func(day, hour int) time.Time {
		return cfg.Start.AddDate(0, 0, day).Add(time.Duration(hour) * time.Hour)
	}
	// pick n distinct machines of lab spec li.
	pick := func(li, n int) []string {
		spec := cfg.Labs[li]
		idx := make([]int, spec.Machines)
		for i := range idx {
			idx[i] = i
		}
		src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		if n > len(idx) {
			n = len(idx)
		}
		out := make([]string, 0, n)
		for _, i := range idx[:n] {
			out = append(out, fmt.Sprintf("%s-M%02d", spec.Name, i+1))
		}
		return out
	}
	labName := func(li int) string { return cfg.Labs[li].Name }

	// All windows sit on Tuesday–Friday of week 2 (days 8–11; day 7 is
	// the Monday after a closed weekend, when many machines are still
	// powered off and machine-scoped injections would hit dark targets).
	anomalies := []InjectedAnomaly{
		// Availability collapses: a whole lab vanishes mid-morning / mid-
		// afternoon on weekdays of week 2.
		{Kind: anomaly.KindAvailabilityCollapse, Lab: labName(labs[0]), Start: at(8, 11), End: at(8, 14)},
		{Kind: anomaly.KindAvailabilityCollapse, Lab: labName(labs[1]), Start: at(10, 14), End: at(10, 16)},
		// Reboot storms: one lab-wide, one on a 3-machine subset.
		{Kind: anomaly.KindRebootStorm, Lab: labName(labs[2]), Start: at(9, 10), End: at(9, 12)},
		{Kind: anomaly.KindRebootStorm, Lab: labName(labs[3]), Machines: pick(labs[3], 3), Start: at(11, 10), End: at(11, 12)},
		// SMART jumps: one power-cycle step, one power-on-hours step.
		{Kind: anomaly.KindSMARTAnomaly, Lab: labName(labs[4]), Machines: pick(labs[4], 1), Start: at(8, 11), End: at(8, 12), CycleJump: 500},
		{Kind: anomaly.KindSMARTAnomaly, Lab: labName(labs[5]), Machines: pick(labs[5], 1), Start: at(9, 11), End: at(9, 12), HoursJump: 2000},
		// Stuck sensors: agents replay a frozen report through a morning.
		{Kind: anomaly.KindSensorStaleness, Lab: labName(labs[6]), Machines: pick(labs[6], 4), Start: at(8, 10), End: at(8, 14)},
		{Kind: anomaly.KindSensorStaleness, Lab: labName(labs[7]), Machines: pick(labs[7], 4), Start: at(10, 10), End: at(10, 14)},
		// Usage drift: memory and disk leave the machine's regime for a day.
		{Kind: anomaly.KindUsageDrift, Lab: labName(labs[8]), Machines: pick(labs[8], 2), Start: at(9, 9), End: at(9, 18)},
		{Kind: anomaly.KindUsageDrift, Lab: labName(labs[9]), Machines: pick(labs[9], 2), Start: at(11, 9), End: at(11, 18)},
	}
	return anomalies, Labels(cfg, anomalies), nil
}
