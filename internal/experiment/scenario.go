package experiment

import (
	"fmt"
	"time"

	"winlab/internal/behavior"
	"winlab/internal/lab"
	"winlab/internal/rng"
	"winlab/internal/trace"
)

// This file wires the scenario layer (internal/scenario) into a run:
// extra machines joining the catalogue fleet, behaviour-model hooks
// (regime overlays, per-lab calendars, always-on pools, lifecycle
// windows) and the lifetime bounds the trace catalogue carries for
// partial-lifetime machines. All fields default to empty, in which case
// runs are byte-identical to pre-scenario behaviour.

// buildFleet constructs the catalogue fleet and appends any scenario
// extras. Extras draw their disk-seeding randomness from a dedicated
// "scenario-fleet" stream so the catalogue machines' draws (and with
// them every default trace) are untouched.
func buildFleet(cfg Config) *lab.Fleet {
	fleet := lab.Build(cfg.Labs, cfg.Seed, cfg.DiskLife)
	if len(cfg.ExtraMachines) > 0 {
		src := rng.Derive(cfg.Seed, "scenario-fleet")
		for _, e := range cfg.ExtraMachines {
			fleet.Add(e, src)
		}
	}
	return fleet
}

// applyScenario installs the config's scenario hooks on the model.
// Must run before model.Install.
func applyScenario(model *behavior.Model, cfg Config) {
	if cfg.Overlay != nil {
		model.SetOverlay(cfg.Overlay)
	}
	if len(cfg.LabCalendars) > 0 {
		model.SetLabCalendars(cfg.LabCalendars)
	}
	if len(cfg.AlwaysOnLabs) > 0 {
		model.SetAlwaysOn(cfg.AlwaysOnLabs)
	}
	if len(cfg.Lifecycle) > 0 {
		model.SetLifecycle(cfg.Lifecycle)
	}
}

// machineInfos builds the trace catalogue for the fleet, stamping
// lifetime bounds (in iteration coordinates) onto machines with a
// lifecycle window.
func machineInfos(cfg Config, fleet *lab.Fleet) []trace.MachineInfo {
	life := make(map[string]behavior.Lifecycle, len(cfg.Lifecycle))
	for _, lc := range cfg.Lifecycle {
		life[lc.Machine] = lc
	}
	infos := make([]trace.MachineInfo, 0, fleet.Size())
	for _, m := range fleet.Machines {
		mi := trace.MachineInfo{
			ID: m.ID, Lab: m.Lab, RAMMB: m.HW.RAMMB, DiskGB: m.HW.DiskGB,
			IntIndex: m.HW.IntIndex, FPIndex: m.HW.FPIndex,
		}
		if lc, ok := life[m.ID]; ok {
			mi.JoinIter, mi.LeaveIter = lifetimeIters(cfg, lc)
		}
		infos = append(infos, mi)
	}
	return infos
}

// lifetimeIters converts a lifecycle window from simulation time to the
// [JoinIter, LeaveIter) iteration coordinates MachineInfo carries. The
// first member iteration is the first probe at or after Join; the last
// is the last probe strictly before Leave. A zero Join (or one at/
// before the start) and a zero Leave (or one at/after the end) mean the
// respective bound is absent.
func lifetimeIters(cfg Config, lc behavior.Lifecycle) (join, leave int) {
	if lc.Join.After(cfg.Start) {
		join = ceilIters(lc.Join.Sub(cfg.Start), cfg.Period)
	}
	if !lc.Leave.IsZero() && lc.Leave.Before(cfg.End()) {
		leave = ceilIters(lc.Leave.Sub(cfg.Start), cfg.Period)
		// LeaveIter 0 is the "until the end" sentinel and LeaveIter must
		// exceed JoinIter; a window that closes before it opens still
		// needs a representable (empty-membership) encoding.
		if leave <= join {
			leave = join + 1
		}
	}
	return join, leave
}

func ceilIters(d, period time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int((d + period - 1) / period)
}

// validateScenario rejects scenario configurations the run could not
// honour coherently.
func validateScenario(cfg Config) error {
	labs := make(map[string]bool, len(cfg.Labs))
	for _, s := range cfg.Labs {
		labs[s.Name] = true
	}
	for _, e := range cfg.ExtraMachines {
		if e.Lab == "" || e.ID == "" {
			return fmt.Errorf("experiment: extra machine needs both ID and Lab (got %q in %q)", e.ID, e.Lab)
		}
	}
	for lb := range cfg.LabCalendars {
		if !labs[lb] && !extraLab(cfg, lb) {
			return fmt.Errorf("experiment: calendar for unknown lab %q", lb)
		}
	}
	for _, lb := range cfg.AlwaysOnLabs {
		if !labs[lb] && !extraLab(cfg, lb) {
			return fmt.Errorf("experiment: always-on marker for unknown lab %q", lb)
		}
	}
	for _, lc := range cfg.Lifecycle {
		if lc.Machine == "" {
			return fmt.Errorf("experiment: lifecycle entry without a machine ID")
		}
		if !lc.Join.IsZero() && !lc.Leave.IsZero() && !lc.Leave.After(lc.Join) {
			return fmt.Errorf("experiment: machine %s leaves (%s) before it joins (%s)",
				lc.Machine, lc.Leave.Format(time.RFC3339), lc.Join.Format(time.RFC3339))
		}
	}
	return nil
}

func extraLab(cfg Config, lb string) bool {
	for _, e := range cfg.ExtraMachines {
		if e.Lab == lb {
			return true
		}
	}
	return false
}
