// Package experiment orchestrates the end-to-end reproduction: build the
// fleet, animate it with the behaviour model, run the DDC collector over
// it for the experiment duration, and hand back the collected trace
// together with the simulator's ground truth (for ablations that quantify
// what 15-minute sampling misses).
package experiment

import (
	"fmt"
	"time"

	"winlab/internal/anomaly"
	"winlab/internal/behavior"
	"winlab/internal/ddc"
	"winlab/internal/lab"
	"winlab/internal/rng"
	"winlab/internal/sim"
	"winlab/internal/telemetry"
	"winlab/internal/trace"
)

// Config configures a full experiment run.
type Config struct {
	Seed   int64
	Start  time.Time     // experiment start; the default is a Monday 00:00
	Days   int           // the paper monitored for 77 days
	Period time.Duration // sampling period (15 minutes in the paper)

	Labs     []lab.Spec
	DiskLife lab.DiskLife
	Behavior behavior.Config

	// Coordinator outages: the paper completed 6883 of 7392 possible
	// iterations (~6.9% lost). OutageFraction is the target fraction of
	// lost iterations; OutageMeanLen the mean outage length.
	OutageFraction float64
	OutageMeanLen  time.Duration

	// Telemetry, when set, streams the collector's and sink's health into
	// the registry (ddc_*/sink_* metrics plus per-probe spans) so a
	// -metrics-addr scrape can watch the run live. Nil keeps the run
	// uninstrumented.
	Telemetry *telemetry.Registry

	// Workers > 1 fans each iteration's probe rendering and report
	// parsing across that many goroutines (the simulated schedule — probe
	// instants, latencies, outage windows — stays sequential, so the
	// collected trace, collector stats and telemetry are bit-identical to
	// a Workers ≤ 1 run; see TestRunWorkersEquivalent). Zero or one keeps
	// the fully sequential collection loop.
	Workers int

	// Inject schedules synthetic anomalies into the run: the state source
	// is wrapped in an Injector (report corruption) and a FaultExecutor
	// (collapse windows as denied probes), so the injection timetable is
	// free ground truth for the detection harness (see
	// DefaultAnomalyScenarios and anomaly.Score). Injection routes probes
	// through the fault wrapper, which forfeits the zero-alloc append
	// executor fast path — use it for labeled runs, not benchmarks. Empty
	// keeps the run byte-identical to pre-injection behaviour.
	Inject []InjectedAnomaly

	// Detect, when set, taps the sink's commit path with the streaming
	// anomaly detectors: every committed sample and iteration record is
	// fed through Detect under the sink lock, and detections land on the
	// detector's event ring (and its telemetry registry, if any). The
	// caller reads results via Detect.Ring().
	Detect *anomaly.Detectors

	// Shards > 1 partitions the fleet across that many coordinator
	// shards (lab-aligned, see ddc.PartitionLabAligned): probe scheduling
	// stays one serial chain, but rendering, parsing and sink commits run
	// on one goroutine per shard against a per-shard sink. The merged
	// dataset and the fleet-wide collector stats are identical to an
	// unsharded run (internal/validate's shard arms); the per-shard
	// datasets and stats are additionally exposed on the Result.
	// Incompatible with Inject (fault injection decides outcomes at
	// execution time, which the deferred scheduling step cannot defer).
	Shards int

	// Scenario hooks (internal/scenario composes these; all empty by
	// default, keeping runs byte-identical to pre-scenario behaviour).
	// Overlay modulates arrival/attendance/shutdown rates over time
	// (regime shifts); LabCalendars gives labs their own opening hours
	// and wall-clock time zones; AlwaysOnLabs marks server pools that
	// never close and host no interactive use; ExtraMachines appends
	// off-catalogue machines (hardware refresh, added servers); and
	// Lifecycle bounds machines' fleet membership in time (joiners,
	// leavers). Lifecycle windows are stamped onto the trace catalogue
	// as [JoinIter, LeaveIter) so checks and analysis denominators see
	// the churn.
	Overlay       behavior.Overlay
	LabCalendars  map[string]behavior.Calendar
	AlwaysOnLabs  []string
	ExtraMachines []lab.Extra
	Lifecycle     []behavior.Lifecycle

	// SnapshotEvery > 0 publishes a deep clone of the accumulated dataset
	// to OnSnapshot every that many completed iterations — the feed for
	// the query service's snapshot store (query.Store.Publish). Clones
	// are cut under the sink lock at iteration boundaries, so each one
	// is an exact committed prefix of the final trace. Requires
	// OnSnapshot; incompatible with Shards > 1 (there is no single sink
	// whose prefix would be the fleet-wide trace).
	SnapshotEvery int
	OnSnapshot    func(*trace.Dataset)
}

// Default returns the configuration reproducing the paper's experiment.
func Default(seed int64) Config {
	return Config{
		Seed:           seed,
		Start:          time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC), // a Monday
		Days:           77,
		Period:         15 * time.Minute,
		Labs:           lab.PaperCatalog(),
		DiskLife:       lab.DefaultDiskLife(),
		Behavior:       behavior.DefaultConfig(seed),
		OutageFraction: 0.069,
		OutageMeanLen:  3 * time.Hour,
	}
}

// End returns the experiment end time.
func (c Config) End() time.Time { return c.Start.AddDate(0, 0, c.Days) }

// Result is the outcome of a run: the collected trace plus ground truth.
type Result struct {
	Config    Config
	Dataset   *trace.Dataset
	Fleet     *lab.Fleet      // ground-truth power/session logs live here
	Model     *behavior.Model // behaviour diagnostics (boots, forgets, ...)
	Collector ddc.Stats

	// Sharded runs (Config.Shards > 1) also expose the per-shard view:
	// ShardDatasets[i] is shard i's own dataset (Dataset is their
	// MergeSharded union) and ShardStats[i] its collection stats
	// (ddc.SumShardStats folds them back into Collector). Nil for
	// unsharded runs.
	ShardDatasets []*trace.Dataset
	ShardStats    []ddc.Stats
}

// Run executes the full experiment.
func Run(cfg Config) (*Result, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("experiment: non-positive duration %d days", cfg.Days)
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("experiment: non-positive period %v", cfg.Period)
	}
	if err := cfg.Behavior.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if cfg.SnapshotEvery > 0 && cfg.OnSnapshot == nil {
		return nil, fmt.Errorf("experiment: SnapshotEvery set without OnSnapshot")
	}
	if err := validateScenario(cfg); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		if cfg.SnapshotEvery > 0 {
			return nil, fmt.Errorf("experiment: SnapshotEvery is incompatible with Shards > 1")
		}
		return runSharded(cfg)
	}
	start, end := cfg.Start, cfg.End()

	fleet := buildFleet(cfg)
	model := behavior.NewModel(cfg.Behavior, fleet)
	applyScenario(model, cfg)
	eng := sim.New(start)
	model.Install(eng, start, end)

	infos := machineInfos(cfg, fleet)
	ids := make([]string, 0, fleet.Size())
	for _, m := range fleet.Machines {
		ids = append(ids, m.ID)
	}

	lat := rng.Derive(cfg.Seed, "latency")
	sink := ddc.NewDatasetSink(start, end, cfg.Period, infos).WithTelemetry(cfg.Telemetry)
	if cfg.Detect != nil {
		cfg.Detect.SetMachines(infos)
		sink.Tap(cfg.Detect.Sample, cfg.Detect.Iteration)
	}
	if cfg.SnapshotEvery > 0 {
		sink.SnapshotEvery(cfg.SnapshotEvery, cfg.OnSnapshot)
	}
	var exec ddc.Executor = &ddc.Direct{
		Source: lab.Source{Fleet: fleet},
		Now:    eng.Now,
	}
	if len(cfg.Inject) > 0 {
		inj := NewInjector(lab.Source{Fleet: fleet}, infos, cfg.Inject)
		exec = &ddc.FaultExecutor{
			Inner:  &ddc.Direct{Source: inj, Now: eng.Now},
			Seed:   cfg.Seed,
			DownFn: func(id string) bool { return inj.DownNow(id, eng.Now()) },
		}
	}
	coll := &ddc.SimCollector{
		Telemetry: cfg.Telemetry,
		Cfg: ddc.Config{
			Machines: ids,
			Period:   cfg.Period,
			LatencyOK: func() time.Duration {
				return time.Duration(lat.Uniform(float64(500*time.Millisecond), float64(2500*time.Millisecond)))
			},
			LatencyFail: func() time.Duration {
				return time.Duration(lat.Uniform(float64(2*time.Second), float64(6*time.Second)))
			},
			Outages: GenerateOutages(cfg),
		},
		Exec:    exec,
		Post:    sink.Post,
		Workers: cfg.Workers,
		Prepare: sink.Prepare,
	}
	coll.OnIteration = sink.OnIteration
	if err := coll.Install(eng, start, end); err != nil {
		return nil, err
	}

	eng.RunUntil(end)

	ds, err := sink.Dataset()
	if err != nil {
		return nil, fmt.Errorf("experiment: corrupt probe output: %w", err)
	}
	ds.SortSamples()
	return &Result{
		Config:    cfg,
		Dataset:   ds,
		Fleet:     fleet,
		Model:     model,
		Collector: coll.Stats(),
	}, nil
}

// GenerateOutages draws coordinator downtime windows totalling roughly
// OutageFraction of the experiment, with exponentially distributed
// lengths.
func GenerateOutages(cfg Config) []ddc.Outage {
	if cfg.OutageFraction <= 0 {
		return nil
	}
	src := rng.Derive(cfg.Seed, "outages")
	total := time.Duration(cfg.Days) * 24 * time.Hour
	target := time.Duration(float64(total) * cfg.OutageFraction)
	// An outage fraction ≥ 1 (or a short experiment with a long mean
	// outage) used to push a drawn length past the experiment span, making
	// the start-offset draw Uniform(0, negative) and placing the outage
	// before the experiment began. Clamp both to the span; the clamps are
	// no-ops for every sane configuration, so existing seeds reproduce.
	if target > total {
		target = total
	}
	mean := cfg.OutageMeanLen
	if mean <= 0 {
		mean = 3 * time.Hour
	}
	var out []ddc.Outage
	var acc time.Duration
	for acc < target {
		length := time.Duration(src.Exponential(float64(mean)))
		if length < cfg.Period {
			length = cfg.Period
		}
		if length > total {
			length = total
		}
		if acc+length > target {
			length = target - acc
			if length < cfg.Period {
				break
			}
		}
		startOff := time.Duration(src.Uniform(0, float64(total-length)))
		out = append(out, ddc.Outage{
			Start: cfg.Start.Add(startOff),
			End:   cfg.Start.Add(startOff + length),
		})
		acc += length
	}
	return out
}
