package experiment

import (
	"time"

	"winlab/internal/stats"
)

// GroundTruth summarises what *actually* happened in the simulated fleet,
// straight from the machine logs — information the paper's 15-minute
// sampling methodology could only approximate. Comparing it against the
// trace-derived statistics quantifies the methodology's blind spots
// (the §5.2.2 "power cycles invisible to sampling" discussion, and the
// sampling-period ablation in bench_test.go).
type GroundTruth struct {
	PowerSessions     int           // true boot→shutdown count
	MeanSessionLength time.Duration // true mean machine-session length
	SDSessionLength   time.Duration
	ShortSessions     int // sessions shorter than one sampling period

	InteractiveSessions int
	ForgottenSessions   int
	MeanInteractive     time.Duration
}

// Truth extracts the ground truth from a finished experiment.
func Truth(res *Result) GroundTruth {
	var gt GroundTruth
	var lengths stats.Running
	var inter stats.Running
	period := res.Config.Period
	for _, m := range res.Fleet.Machines {
		for _, p := range m.PowerLog {
			gt.PowerSessions++
			lengths.Add(p.Duration().Hours())
			if p.Duration() < period {
				gt.ShortSessions++
			}
		}
		for _, s := range m.SessionLog {
			gt.InteractiveSessions++
			inter.Add(s.End.Sub(s.Start).Hours())
			if s.Forgotten {
				gt.ForgottenSessions++
			}
		}
	}
	gt.MeanSessionLength = time.Duration(lengths.Mean() * float64(time.Hour))
	gt.SDSessionLength = time.Duration(lengths.StdDev() * float64(time.Hour))
	gt.MeanInteractive = time.Duration(inter.Mean() * float64(time.Hour))
	return gt
}
