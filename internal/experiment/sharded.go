package experiment

import (
	"fmt"
	"sync"
	"time"

	"winlab/internal/behavior"
	"winlab/internal/ddc"
	"winlab/internal/lab"
	"winlab/internal/rng"
	"winlab/internal/sim"
	"winlab/internal/trace"
)

// runSharded is Run's Shards > 1 path: the same fleet, model, outages
// and latency schedule, but collection goes through ddc.ShardedCollector
// with a lab-aligned partition and one DatasetSink per shard. The probe
// schedule — snapshot instants, latency draw order, outage windows — is
// identical to the serial path by construction (one serial scheduling
// chain, same RNG streams), so the merged dataset and fleet-wide stats
// reproduce the unsharded run exactly; internal/validate's shard arms
// assert this on the doctor seeds.
//
// Anomaly detection composes with sharding under two documented rules:
//
//   - shard boundaries are lab-aligned (ddc.PartitionLabAligned), so a
//     lab's samples all flow through one shard goroutine and reach the
//     detectors in the serial order — the per-lab detector view stays
//     coherent. Sample taps from different shards interleave across
//     labs, so cross-lab *event order* may differ from a serial run,
//     but the event set does not (TestShardedDetectCoherent).
//   - iteration records are fed to the detectors once, fleet-wide, from
//     the collector's global end-of-iteration barrier (not per shard,
//     which would multiply-count responded machines). The barrier fires
//     after every shard committed the iteration, preserving the serial
//     "samples before their iteration record" ordering. The detector
//     iteration feed carries no parse-error count (detectors ignore it;
//     per-shard sinks still book ParseErrors into their own records).
func runSharded(cfg Config) (*Result, error) {
	if len(cfg.Inject) > 0 {
		return nil, fmt.Errorf("experiment: Shards and Inject are incompatible: the fault executor decides outcomes at execution time, which the sharded collector's deferred scheduling step cannot defer")
	}
	start, end := cfg.Start, cfg.End()

	fleet := buildFleet(cfg)
	model := behavior.NewModel(cfg.Behavior, fleet)
	applyScenario(model, cfg)
	eng := sim.New(start)
	model.Install(eng, start, end)

	infos := machineInfos(cfg, fleet)

	// detectMu serialises the detector feed: sample taps run on shard
	// goroutines, the iteration feed on the engine goroutine.
	var detectMu sync.Mutex
	if cfg.Detect != nil {
		cfg.Detect.SetMachines(infos)
	}

	parts := ddc.PartitionLabAligned(infos, cfg.Shards)
	sinks := make([]*ddc.DatasetSink, len(parts))
	shards := make([]ddc.ShardSpec, len(parts))
	for i, part := range parts {
		sink := ddc.NewDatasetSink(start, end, cfg.Period, part).WithTelemetry(cfg.Telemetry)
		if cfg.Detect != nil {
			sink.Tap(func(s *trace.Sample) {
				detectMu.Lock()
				cfg.Detect.Sample(s)
				detectMu.Unlock()
			}, nil)
		}
		ids := make([]string, len(part))
		for j, mi := range part {
			ids[j] = mi.ID
		}
		sinks[i] = sink
		shards[i] = ddc.ShardSpec{Machines: ids, Post: sink.Post, OnIteration: sink.OnIteration}
	}

	lat := rng.Derive(cfg.Seed, "latency")
	coll := &ddc.ShardedCollector{
		Telemetry: cfg.Telemetry,
		Cfg: ddc.Config{
			Period: cfg.Period,
			LatencyOK: func() time.Duration {
				return time.Duration(lat.Uniform(float64(500*time.Millisecond), float64(2500*time.Millisecond)))
			},
			LatencyFail: func() time.Duration {
				return time.Duration(lat.Uniform(float64(2*time.Second), float64(6*time.Second)))
			},
			Outages: GenerateOutages(cfg),
		},
		Exec:   &ddc.Direct{Source: lab.Source{Fleet: fleet}, Now: eng.Now},
		Shards: shards,
	}
	if cfg.Detect != nil {
		coll.OnIteration = func(info ddc.IterationInfo) {
			detectMu.Lock()
			cfg.Detect.Iteration(trace.Iteration{
				Iter: info.Iter, Start: info.Start, End: info.End,
				Attempted: info.Attempted, Responded: info.Responded,
			})
			detectMu.Unlock()
		}
	}
	if err := coll.Install(eng, start, end); err != nil {
		return nil, err
	}

	eng.RunUntil(end)
	coll.Finish()

	shardDS := make([]*trace.Dataset, len(sinks))
	for i, sink := range sinks {
		ds, err := sink.Dataset()
		if err != nil {
			return nil, fmt.Errorf("experiment: shard %d: corrupt probe output: %w", i, err)
		}
		ds.SortSamples()
		shardDS[i] = ds
	}
	merged, err := trace.MergeSharded(shardDS...)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return &Result{
		Config:        cfg,
		Dataset:       merged,
		Fleet:         fleet,
		Model:         model,
		Collector:     coll.Stats(),
		ShardDatasets: shardDS,
		ShardStats:    coll.ShardStats(),
	}, nil
}
