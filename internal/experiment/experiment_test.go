package experiment

import (
	"reflect"
	"testing"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/lab"
	"winlab/internal/trace"
)

// shortConfig returns a fast configuration: the full fleet for one week.
func shortConfig(seed int64) Config {
	cfg := Default(seed)
	cfg.Days = 7
	return cfg
}

func TestRunProducesCoherentDataset(t *testing.T) {
	res, err := Run(shortConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dataset
	if len(d.Machines) != 169 {
		t.Errorf("machines = %d", len(d.Machines))
	}
	wantIters := 7 * 96
	if got := len(d.Iterations) + res.Collector.Skipped; got != wantIters {
		t.Errorf("iterations+skipped = %d, want %d", got, wantIters)
	}
	if res.Collector.Skipped == 0 {
		t.Error("no coordinator outages despite OutageFraction > 0")
	}
	if len(d.Samples) == 0 {
		t.Fatal("no samples")
	}
	if d.Attempts() != len(d.Iterations)*169 {
		t.Errorf("attempts = %d", d.Attempts())
	}
	// Samples reference known machines and lie within the window.
	for i := range d.Samples {
		s := &d.Samples[i]
		if d.MachineByID(s.Machine) == nil {
			t.Fatalf("sample for unknown machine %q", s.Machine)
		}
		if s.Time.Before(d.Start) || !s.Time.Before(d.End.Add(time.Hour)) {
			t.Fatalf("sample at %v outside window", s.Time)
		}
		if s.Uptime < 0 || s.CPUIdle < 0 || s.CPUIdle > s.Uptime+time.Second {
			t.Fatalf("impossible counters: uptime=%v idle=%v", s.Uptime, s.CPUIdle)
		}
		if s.MemLoadPct < 0 || s.MemLoadPct > 100 || s.SwapLoadPct < 0 || s.SwapLoadPct > 100 {
			t.Fatalf("impossible loads: %d/%d", s.MemLoadPct, s.SwapLoadPct)
		}
		if s.FreeDiskGB < 0 || s.FreeDiskGB > s.DiskGB {
			t.Fatalf("impossible disk: free=%v size=%v", s.FreeDiskGB, s.DiskGB)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(shortConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Dataset.Samples) != len(b.Dataset.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Dataset.Samples), len(b.Dataset.Samples))
	}
	for i := range a.Dataset.Samples {
		sa, sb := a.Dataset.Samples[i], b.Dataset.Samples[i]
		if sa != sb {
			t.Fatalf("sample %d differs:\n%+v\n%+v", i, sa, sb)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cfg := shortConfig(1)
	cfg.Days = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero days accepted")
	}
	cfg = shortConfig(1)
	cfg.Period = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero period accepted")
	}
}

func TestGenerateOutages(t *testing.T) {
	cfg := Default(1)
	outs := GenerateOutages(cfg)
	if len(outs) == 0 {
		t.Fatal("no outages")
	}
	var total time.Duration
	for _, o := range outs {
		if !o.End.After(o.Start) {
			t.Fatalf("bad outage %+v", o)
		}
		if o.Start.Before(cfg.Start) || o.End.After(cfg.End()) {
			t.Fatalf("outage %+v outside experiment", o)
		}
		total += o.End.Sub(o.Start)
	}
	want := time.Duration(float64(cfg.Days) * 24 * float64(time.Hour) * cfg.OutageFraction)
	if total < want/2 || total > want*3/2 {
		t.Errorf("total outage = %v, want ≈%v", total, want)
	}
	cfg.OutageFraction = 0
	if GenerateOutages(cfg) != nil {
		t.Error("outages generated with zero fraction")
	}
}

// TestGenerateOutagesShortExperimentClamped is the regression for the
// negative-span bug: a one-day experiment with an outage fraction ≥ 1 and
// a long mean outage used to draw a length exceeding the experiment and
// feed Uniform a negative span, placing outages before the start. Every
// generated window must lie inside the experiment.
func TestGenerateOutagesShortExperimentClamped(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cfg := Default(seed)
		cfg.Days = 1
		cfg.OutageFraction = 1.5
		cfg.OutageMeanLen = 200 * time.Hour
		for _, o := range GenerateOutages(cfg) {
			if !o.End.After(o.Start) {
				t.Fatalf("seed %d: bad outage %+v", seed, o)
			}
			if o.Start.Before(cfg.Start) || o.End.After(cfg.End()) {
				t.Fatalf("seed %d: outage %+v outside experiment [%v, %v]",
					seed, o, cfg.Start, cfg.End())
			}
		}
	}
}

// TestRunWorkersEquivalent is the end-to-end determinism contract of the
// parallel collection path: a Workers=8 run must collect the exact trace
// a sequential run collects — samples, iterations and collector stats all
// deep-equal. Under -race this exercises the render/parse fan-out against
// the live simulated fleet.
func TestRunWorkersEquivalent(t *testing.T) {
	cfg := Default(3)
	cfg.Days = 2
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Dataset.Samples) == 0 {
		t.Fatal("degenerate serial run")
	}
	if !reflect.DeepEqual(serial.Dataset.Samples, par.Dataset.Samples) {
		t.Error("samples differ between sequential and Workers=8 runs")
	}
	if !reflect.DeepEqual(serial.Dataset.Iterations, par.Dataset.Iterations) {
		t.Error("iterations differ between sequential and Workers=8 runs")
	}
	if !reflect.DeepEqual(serial.Collector, par.Collector) {
		t.Errorf("collector stats differ:\nserial   %+v\nparallel %+v", serial.Collector, par.Collector)
	}
}

func TestSamplingRateMatchesGroundTruth(t *testing.T) {
	// The fraction of answered probes must match the true powered-on
	// fraction of the fleet (they are the same quantity, measured two
	// ways).
	res, err := Run(shortConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	gt := Truth(res)
	if gt.PowerSessions == 0 || gt.InteractiveSessions == 0 {
		t.Fatal("empty ground truth")
	}
	var truthHours float64
	for _, m := range res.Fleet.Machines {
		for _, p := range m.PowerLog {
			truthHours += p.Duration().Hours()
		}
		if m.Powered() {
			truthHours += res.Config.End().Sub(m.BootTime()).Hours()
		}
	}
	truthFrac := truthHours / (float64(res.Fleet.Size()) * float64(res.Config.Days) * 24)
	sampleFrac := float64(len(res.Dataset.Samples)) / float64(res.Dataset.Attempts())
	if diff := truthFrac - sampleFrac; diff < -0.03 || diff > 0.03 {
		t.Errorf("sampled uptime %.3f vs true %.3f", sampleFrac, truthFrac)
	}
}

func TestShorterPeriodDetectsMoreSessions(t *testing.T) {
	// The paper's core methodological caveat: 15-minute sampling misses
	// short machine sessions. A 5-minute collector on the *same* fleet
	// evolution must detect at least as many sessions, and both must stay
	// at or below ground truth.
	cfg15 := shortConfig(7)
	cfg5 := shortConfig(7)
	cfg5.Period = 5 * time.Minute
	r15, err := Run(cfg15)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Run(cfg5)
	if err != nil {
		t.Fatal(err)
	}
	gt := Truth(r15)
	n15 := len(analysis.DetectSessions(r15.Dataset))
	n5 := len(analysis.DetectSessions(r5.Dataset))
	if n5 < n15 {
		t.Errorf("5-minute sampling detected fewer sessions (%d) than 15-minute (%d)", n5, n15)
	}
	if n15 > gt.PowerSessions || n5 > gt.PowerSessions {
		t.Errorf("detected more sessions (%d/%d) than ground truth (%d)", n15, n5, gt.PowerSessions)
	}
	if gt.ShortSessions == 0 {
		t.Error("no sub-period sessions in ground truth; ablation is vacuous")
	}
}

func TestTraceRoundTripThroughFile(t *testing.T) {
	cfg := shortConfig(9)
	cfg.Days = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.csv"
	if err := trace.WriteFile(path, res.Dataset); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The analysis must agree on the round-tripped trace.
	a := analysis.MainResults(res.Dataset, analysis.DefaultForgottenThreshold)
	b := analysis.MainResults(back, analysis.DefaultForgottenThreshold)
	if a.Both.Samples != b.Both.Samples {
		t.Errorf("samples %d vs %d", a.Both.Samples, b.Both.Samples)
	}
	if d := a.Both.CPUIdlePct - b.Both.CPUIdlePct; d < -0.01 || d > 0.01 {
		t.Errorf("cpu idle %v vs %v after round trip", a.Both.CPUIdlePct, b.Both.CPUIdlePct)
	}
	if d := a.Both.RAMLoadPct - b.Both.RAMLoadPct; d != 0 {
		t.Errorf("ram %v vs %v after round trip", a.Both.RAMLoadPct, b.Both.RAMLoadPct)
	}
}

func TestCustomFleet(t *testing.T) {
	cfg := shortConfig(11)
	cfg.Days = 2
	cfg.Labs = []lab.Spec{{
		Name: "X1", Machines: 4, CPUModel: "Test", CPUGHz: 1,
		RAMMB: 256, DiskGB: 40, IntIndex: 20, FPIndex: 20, BaseImgGB: 10,
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dataset.Machines) != 4 {
		t.Errorf("machines = %d", len(res.Dataset.Machines))
	}
	for i := range res.Dataset.Samples {
		if res.Dataset.Samples[i].Lab != "X1" {
			t.Fatal("sample from unknown lab")
		}
	}
}

func TestOutagesLeaveGapsInIterations(t *testing.T) {
	cfg := shortConfig(13)
	cfg.Days = 3
	cfg.OutageFraction = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collector.Skipped == 0 {
		t.Fatal("no skipped iterations")
	}
	// Iteration records must be strictly increasing with gaps.
	gaps := 0
	for i := 1; i < len(res.Dataset.Iterations); i++ {
		a, b := res.Dataset.Iterations[i-1], res.Dataset.Iterations[i]
		if b.Iter <= a.Iter {
			t.Fatal("iteration numbers not increasing")
		}
		if b.Iter > a.Iter+1 {
			gaps++
		}
	}
	if gaps == 0 {
		t.Error("no gaps in iteration numbering despite outages")
	}
}
