package experiment

import (
	"testing"
	"time"

	"winlab/internal/analysis"
)

// TestCalibrationHeadline runs the full 77-day experiment and checks the
// headline aggregates land in bands around the paper's reported values.
// The bands are deliberately loose: the trace is stochastic and we match
// shape, not decimals. Run with -v to see the full paper-vs-measured list.
func TestCalibrationHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("77-day simulation; skipped in -short mode")
	}
	res, err := Run(Default(1))
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dataset

	t2 := analysis.MainResults(d, analysis.DefaultForgottenThreshold)
	av := analysis.Availability(d, analysis.DefaultForgottenThreshold)
	sess := analysis.Sessions(d, 96*time.Hour, 24)
	pc := analysis.PowerCycles(d)
	eq := analysis.Equivalence(d, true)
	age := analysis.SessionAge(d, 24)

	attempts := d.Attempts()
	t.Logf("iterations=%d (paper 6883), attempts=%d, samples=%d (paper 583653)",
		len(d.Iterations), attempts, len(d.Samples))
	t.Logf("raw login samples=%d (paper 277513), reclassified=%d (paper 87830)",
		t2.Reclass.RawLoginSamples, t2.Reclass.Reclassified)
	t.Logf("uptime%%: no=%.1f with=%.1f both=%.1f (paper 33.9/16.3/50.2)",
		t2.NoLogin.UptimePct, t2.WithLogin.UptimePct, t2.Both.UptimePct)
	t.Logf("cpu idle%%: no=%.2f with=%.2f both=%.2f (paper 99.7/94.2/97.9)",
		t2.NoLogin.CPUIdlePct, t2.WithLogin.CPUIdlePct, t2.Both.CPUIdlePct)
	t.Logf("ram%%: no=%.1f with=%.1f both=%.1f (paper 54.8/67.6/58.9)",
		t2.NoLogin.RAMLoadPct, t2.WithLogin.RAMLoadPct, t2.Both.RAMLoadPct)
	t.Logf("swap%%: no=%.1f with=%.1f both=%.1f (paper 25.7/32.8/28.0)",
		t2.NoLogin.SwapLoadPct, t2.WithLogin.SwapLoadPct, t2.Both.SwapLoadPct)
	t.Logf("disk GB: no=%.1f with=%.1f both=%.1f (paper 13.6)",
		t2.NoLogin.DiskUsedGB, t2.WithLogin.DiskUsedGB, t2.Both.DiskUsedGB)
	t.Logf("sent bps: no=%.0f with=%.0f both=%.0f (paper 255/2602/1072)",
		t2.NoLogin.SentBps, t2.WithLogin.SentBps, t2.Both.SentBps)
	t.Logf("recv bps: no=%.0f with=%.0f both=%.0f (paper 359/8662/3058)",
		t2.NoLogin.RecvBps, t2.WithLogin.RecvBps, t2.Both.RecvBps)
	t.Logf("fig3: avg powered=%.1f (paper 84.87) user-free=%.1f (paper 57.29)",
		av.AvgPoweredOn, av.AvgUserFree)
	ups := analysis.UptimeRatios(d)
	t.Logf("fig4: machines >0.5=%d (paper ~30) >0.8=%d (<10) >0.9=%d (0)",
		analysis.CountAbove(ups, 0.5), analysis.CountAbove(ups, 0.8), analysis.CountAbove(ups, 0.9))
	t.Logf("sessions: n=%d (paper 10688) mean=%s (15h55m) sd=%s (26.65h) short=%.1f%%/%.1f%% (98.7/87.93)",
		sess.Count, sess.Mean.Round(time.Minute), sess.StdDev.Round(time.Minute),
		100*sess.ShortFraction, 100*sess.ShortUptimeFraction)
	t.Logf("smart: cycles=%d (13871) perMach=%.1f±%.1f (82.57±37.05) perDay=%.2f (1.07) undetected=%.0f%% (~30%%)",
		pc.TotalCycles, pc.AvgPerMachine, pc.SDPerMachine, pc.CyclesPerDay, 100*pc.UndetectedRatio)
	t.Logf("smart: uptime/cycle=%s (13h54m) lifetime=%s±%s (6.46h±4.78)",
		pc.UptimePerCycle.Round(time.Minute), pc.LifetimePerCycle.Round(time.Minute),
		pc.LifetimePerCycleSD.Round(time.Minute))
	t.Logf("equivalence: occ=%.3f free=%.3f total=%.3f (paper 0.26/0.25/0.51)",
		eq.OccupiedRatio, eq.FreeRatio, eq.TotalRatio)
	t.Logf("fig2: first bucket >=99%% idle at hour %d (paper 10)", age.FirstBucketAtOrAbove(99))
	for _, b := range age.Buckets {
		t.Logf("  fig2 hour %2d: n=%6d idle=%.2f%%", b.Hour, b.Samples, b.CPUIdlePct)
	}
	t.Logf("model: boots=%d logins=%d forgets=%d crashes=%d phantoms=%d",
		res.Model.Boots, res.Model.Logins, res.Model.Forgets, res.Model.Crashes, res.Model.PhantomCycles)

	band := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s = %.3f outside calibration band [%.3f, %.3f]", name, got, lo, hi)
		}
	}
	// Figure 5 shape: the Tuesday-afternoon CPU-hog class must dent the
	// weekly idleness curve (paper: below 91%), and idleness while the labs
	// are closed must exceed idleness while they are open (§5.3).
	weekly := analysis.Weekly(d)
	slot, dip := weekly.MinCPUIdleSlot()
	if wd := analysis.SlotWeekday(slot); wd != time.Tuesday {
		t.Errorf("weekly idleness minimum on %v, want Tuesday (CPU-hog class)", wd)
	}
	if dip > 93 {
		t.Errorf("Tuesday dip only reaches %.1f%%, want <93%% (paper: <91%%)", dip)
	}
	cal := res.Model.Calendar()
	closedIdle := analysis.IdlenessWhen(d, func(at time.Time) bool { return !cal.IsOpen(at) })
	openIdle := analysis.IdlenessWhen(d, func(at time.Time) bool { return cal.IsOpen(at) })
	t.Logf("idleness closed=%.2f%% open=%.2f%% (5.3: nights/weekends near 100)",
		closedIdle.Mean(), openIdle.Mean())
	if closedIdle.Mean() <= openIdle.Mean() {
		t.Errorf("closed-hours idleness %.2f not above open-hours %.2f",
			closedIdle.Mean(), openIdle.Mean())
	}
	if closedIdle.Mean() < 99 {
		t.Errorf("closed-hours idleness %.2f, want ≈99.5+", closedIdle.Mean())
	}

	band("uptime both %", t2.Both.UptimePct, 42, 58)
	band("cpu idle no-login %", t2.NoLogin.CPUIdlePct, 99.3, 99.95)
	band("cpu idle with-login %", t2.WithLogin.CPUIdlePct, 92, 96.5)
	band("cpu idle both %", t2.Both.CPUIdlePct, 96.5, 99.2)
	band("ram no-login %", t2.NoLogin.RAMLoadPct, 48, 62)
	band("ram with-login %", t2.WithLogin.RAMLoadPct, 60, 76)
	band("disk used GB", t2.Both.DiskUsedGB, 12, 15.5)
	band("equivalence total", eq.TotalRatio, 0.40, 0.62)
	band("lifetime h/cycle", pc.LifetimePerCycle.Hours(), 5.2, 7.8)
	band("undetected cycle ratio", pc.UndetectedRatio, 0.1, 0.6)
	if got := age.FirstBucketAtOrAbove(99); got < 4 || got > 14 {
		t.Errorf("fig2 threshold bucket = %d, want in [4, 14]", got)
	}
}
