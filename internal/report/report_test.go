package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "23456")
	out := tbl.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Numeric column is right-aligned: the short value ends at the same
	// column as the long one.
	if !strings.HasSuffix(lines[3], "1") || !strings.HasSuffix(lines[4], "23456") {
		t.Errorf("alignment off:\n%s", out)
	}
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows have different widths:\n%s", out)
	}
}

func TestTableShortRow(t *testing.T) {
	tbl := &Table{Headers: []string{"A", "B", "C"}}
	tbl.AddRow("only-one")
	out := tbl.String()
	if !strings.Contains(out, "only-one") {
		t.Error("short row dropped")
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "Ramp",
		Width:  20,
		Height: 5,
		Series: []Series{{Name: "ramp", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}},
		XLabel: "x",
	}
	out := c.String()
	if !strings.Contains(out, "Ramp") || !strings.Contains(out, "ramp") || !strings.Contains(out, "x") {
		t.Errorf("chart missing labels:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Monotone ramp: the mark in the first chart row (max) must be to the
	// right of the mark in the last chart row (min).
	first := strings.IndexByte(lines[1], '*')
	last := strings.IndexByte(lines[5], '*')
	if first <= last {
		t.Errorf("ramp not increasing: first-row col %d, last-row col %d\n%s", first, last, out)
	}
}

func TestChartFixedScale(t *testing.T) {
	c := &Chart{
		YMin: 0, YMax: 100, Width: 10, Height: 4,
		Series: []Series{{Name: "s", Values: []float64{50, 50}, Mark: '+'}},
	}
	out := c.String()
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "0.00") {
		t.Errorf("fixed scale not honoured:\n%s", out)
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "empty"}}}
	out := c.String() // must not panic
	if out == "" {
		t.Error("no output")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "const", Values: []float64{5, 5, 5}}}}
	if !strings.Contains(c.String(), "*") {
		t.Error("constant series has no marks")
	}
}

func TestChartDownsamples(t *testing.T) {
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = float64(i % 7)
	}
	c := &Chart{Width: 40, Height: 6, Series: []Series{{Name: "long", Values: vals}}}
	out := c.String() // must terminate quickly and render 40 columns
	lines := strings.Split(out, "\n")
	for _, l := range lines[:6] {
		if len(l) > 60 {
			t.Errorf("row too wide: %d chars", len(l))
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"x", "y"}, []float64{1, 2, 3}, []float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "x,y\n1,4\n2,5\n3,\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestWriteCSVMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []string{"x"}, nil, nil); err == nil {
		t.Error("mismatched names accepted")
	}
}

func TestHeatmapRendering(t *testing.T) {
	vals := make([]float64, 168)
	for i := range vals {
		vals[i] = float64(i % 24) // ramp within each day
	}
	h := &Heatmap{Title: "Demo heat", Values: vals}
	out := h.String()
	if !strings.Contains(out, "Demo heat") || !strings.Contains(out, "Mon") || !strings.Contains(out, "Sun") {
		t.Errorf("heatmap missing labels:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Row for Monday: shade increases left to right.
	var mon string
	for _, l := range lines {
		if strings.HasPrefix(l, "Mon") {
			mon = l
		}
	}
	if len(mon) < 28 {
		t.Fatalf("monday row too short: %q", mon)
	}
	if mon[4] == mon[27] {
		t.Errorf("no gradient in monday row: %q", mon)
	}
}

func TestHeatmapFixedScaleAndShortValues(t *testing.T) {
	h := &Heatmap{Values: []float64{0.5}, Lo: 0, Hi: 1}
	out := h.String() // must not panic on short input
	if !strings.Contains(out, "scale") {
		t.Error("missing scale line")
	}
	flat := &Heatmap{Values: []float64{3, 3, 3}}
	_ = flat.String() // degenerate range must not divide by zero
}
