package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Heatmap renders a 7×24 time-of-week grid (days as rows, hours as
// columns) with a shade character per cell — a compact way to show weekly
// structure like machine availability or the predictor's survival
// baseline.
type Heatmap struct {
	Title string
	// Values holds one value per hour of the week, Monday 00:00 first
	// (168 entries; shorter slices leave trailing cells blank).
	Values []float64
	// Lo and Hi bound the shading scale; when equal the range auto-scales.
	Lo, Hi float64
}

// shades from empty to full.
var shades = []byte(" .:-=+*#%@")

// Render writes the heatmap.
func (h *Heatmap) Render(w io.Writer) {
	lo, hi := h.Lo, h.Hi
	if lo == hi {
		first := true
		for _, v := range h.Values {
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
		if lo == hi {
			hi = lo + 1
		}
	}
	if h.Title != "" {
		fmt.Fprintf(w, "%s\n", h.Title)
	}
	fmt.Fprintf(w, "%-4s", "")
	for hr := 0; hr < 24; hr++ {
		fmt.Fprintf(w, "%d", hr/10)
	}
	fmt.Fprintf(w, "\n%-4s", "")
	for hr := 0; hr < 24; hr++ {
		fmt.Fprintf(w, "%d", hr%10)
	}
	fmt.Fprintln(w)
	days := []time.Weekday{
		time.Monday, time.Tuesday, time.Wednesday, time.Thursday,
		time.Friday, time.Saturday, time.Sunday,
	}
	for d, day := range days {
		var row strings.Builder
		for hr := 0; hr < 24; hr++ {
			idx := d*24 + hr
			if idx >= len(h.Values) {
				row.WriteByte(' ')
				continue
			}
			frac := (h.Values[idx] - lo) / (hi - lo)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			row.WriteByte(shades[int(frac*float64(len(shades)-1)+0.5)])
		}
		fmt.Fprintf(w, "%-4s%s\n", day.String()[:3], row.String())
	}
	fmt.Fprintf(w, "scale: %q = %.3g .. %q = %.3g\n", string(shades[0]), lo, string(shades[len(shades)-1]), hi)
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	h.Render(&b)
	return b.String()
}
