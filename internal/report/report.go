// Package report renders analysis results as ASCII tables, ASCII charts
// and CSV — the reproduction's stand-in for the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple text table with right-aligned numeric cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(w, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(w, "  %*s", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Series is one named data series for a chart.
type Series struct {
	Name   string
	Values []float64
	Mark   byte // plot glyph, e.g. '*' or '+'
}

// Chart is a rudimentary ASCII line chart: series are sampled down to the
// chart width and drawn on a character grid with a y-axis scale. It is
// deliberately simple — the point is to eyeball the *shape* of Figures 2–6
// in a terminal; CSV export exists for real plotting.
type Chart struct {
	Title  string
	Width  int
	Height int
	YMin   float64 // when YMin==YMax the range is auto-scaled
	YMax   float64
	XLabel string
	Series []Series
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 110
	}
	if height <= 0 {
		height = 18
	}
	lo, hi := c.YMin, c.YMax
	if lo == hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, s := range c.Series {
			for _, v := range s.Values {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
		if lo == hi {
			hi = lo + 1
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.Series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		n := len(s.Values)
		if n == 0 {
			continue
		}
		for x := 0; x < width; x++ {
			// Average the bucket of values mapping to this column.
			loIdx := x * n / width
			hiIdx := (x + 1) * n / width
			if hiIdx <= loIdx {
				hiIdx = loIdx + 1
			}
			if loIdx >= n {
				break
			}
			if hiIdx > n {
				hiIdx = n
			}
			sum := 0.0
			for i := loIdx; i < hiIdx; i++ {
				sum += s.Values[i]
			}
			v := sum / float64(hiIdx-loIdx)
			y := int(float64(height-1) * (v - lo) / (hi - lo))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[height-1-y][x] = mark
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for i, row := range grid {
		yVal := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(w, "%10.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width))
	if c.XLabel != "" {
		fmt.Fprintf(w, "%10s  %s\n", "", c.XLabel)
	}
	for _, s := range c.Series {
		mark := s.Mark
		if mark == 0 {
			mark = '*'
		}
		fmt.Fprintf(w, "%10s  %c = %s\n", "", mark, s.Name)
	}
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

// WriteCSV writes named columns as CSV. Shorter columns are padded with
// empty cells.
func WriteCSV(w io.Writer, names []string, cols ...[]float64) error {
	if len(names) != len(cols) {
		return fmt.Errorf("report: %d names for %d columns", len(names), len(cols))
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	rows := 0
	for _, c := range cols {
		if len(c) > rows {
			rows = len(c)
		}
	}
	for r := 0; r < rows; r++ {
		cells := make([]string, len(cols))
		for i, c := range cols {
			if r < len(c) {
				cells[i] = fmt.Sprintf("%g", c[r])
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
