package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/lab"
	"winlab/internal/stats"
)

func TestTable1RendersCatalogue(t *testing.T) {
	out := Table1(lab.PaperCatalog()).String()
	for _, want := range []string{"L01", "L11", "74.5", "P4 (2.4)", "PIII (0.65)", "Avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Aggregates(t *testing.T) {
	s := Table1Aggregates(lab.PaperCatalog())
	if !strings.Contains(s, "169 machines") || !strings.Contains(s, "GFlops") {
		t.Errorf("aggregates line: %s", s)
	}
}

func TestTable2Renders(t *testing.T) {
	t2 := analysis.Table2{
		Threshold: 10 * time.Hour,
		NoLogin:   analysis.Column{Samples: 393970, UptimePct: 33.9, CPUIdlePct: 99.7},
		WithLogin: analysis.Column{Samples: 189683, UptimePct: 16.3, CPUIdlePct: 94.2},
		Both:      analysis.Column{Samples: 583653, UptimePct: 50.2, CPUIdlePct: 97.9},
	}
	out := Table2(t2).String()
	for _, want := range []string{"583653", "99.7", "94.2", "With login", "Avg. recv bytes (bps)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Renders(t *testing.T) {
	p := analysis.SessionAgeProfile{Buckets: []analysis.AgeBucket{
		{Hour: 0, Samples: 100, CPUIdlePct: 94},
		{Hour: 1, Samples: 80, CPUIdlePct: 95},
	}}
	tbl, chart := Figure2(p)
	if !strings.Contains(tbl.String(), "[0-1[") {
		t.Error("figure 2 table missing bucket label")
	}
	if !strings.Contains(chart.String(), "CPU idle %") {
		t.Error("figure 2 chart missing legend")
	}
}

func TestFigure3And4Render(t *testing.T) {
	av := analysis.AvailabilitySeries{
		Points:       []analysis.AvailabilityPoint{{PoweredOn: 80, UserFree: 50}},
		AvgPoweredOn: 84.87, AvgUserFree: 57.29,
	}
	if out := Figure3(av).String(); !strings.Contains(out, "84.87") {
		t.Errorf("figure 3 missing average:\n%s", out)
	}
	us := []analysis.MachineUptime{{Machine: "M1", Ratio: 0.9, Nines: 1}, {Machine: "M2", Ratio: 0.3, Nines: 0.15}}
	if out := Figure4Left(us).String(); !strings.Contains(out, ">0.5: 1") {
		t.Errorf("figure 4 left missing counts:\n%s", out)
	}
	st := analysis.SessionStats{
		Count: 10688, Mean: 15*time.Hour + 55*time.Minute,
		Hist: stats.NewHistogram(0, 96, 24), HistCap: 96 * time.Hour,
		ShortFraction: 0.987, ShortUptimeFraction: 0.8793,
	}
	out := Figure4Right(st)
	if !strings.Contains(out, "10688") || !strings.Contains(out, "98.7%") {
		t.Errorf("figure 4 right:\n%s", out)
	}
}

func TestPowerCyclesRenders(t *testing.T) {
	pc := analysis.PowerCycleStats{
		TotalCycles: 13871, AvgPerMachine: 82.57, SDPerMachine: 37.05,
		CyclesPerDay: 1.07, DetectedSessions: 10688, UndetectedRatio: 0.3,
		UptimePerCycle:   13*time.Hour + 54*time.Minute,
		LifetimePerCycle: 6*time.Hour + 28*time.Minute,
	}
	out := PowerCycles(pc).String()
	for _, want := range []string{"13871", "82.57", "30%", "13h54m"} {
		if !strings.Contains(out, want) {
			t.Errorf("power cycles table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure5And6Render(t *testing.T) {
	w := &analysis.WeeklyProfiles{}
	w.CPUIdlePct.Add(time.Date(2003, 10, 6, 12, 0, 0, 0, time.UTC), 97)
	left, right := Figure5(w)
	if !strings.Contains(left.String(), "CPU idle %") || !strings.Contains(right.String(), "received bps") {
		t.Error("figure 5 legends missing")
	}
	eq := analysis.EquivalenceResult{OccupiedRatio: 0.26, FreeRatio: 0.25, TotalRatio: 0.51}
	if out := Figure6(eq).String(); !strings.Contains(out, "0.26") || !strings.Contains(out, "0.51") {
		t.Errorf("figure 6 missing ratios:\n%s", out)
	}
}

func TestWeeklyCSV(t *testing.T) {
	var p stats.WeeklyProfile
	p.Add(time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC), 42)
	var buf bytes.Buffer
	if err := WeeklyCSV(&buf, []string{"v"}, &p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "slot,v\n0,42\n") {
		t.Errorf("weekly csv head: %q", out[:min(40, len(out))])
	}
	if lines := strings.Count(out, "\n"); lines != stats.SlotsPerWeek+1 {
		t.Errorf("csv lines = %d, want %d", lines, stats.SlotsPerWeek+1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
