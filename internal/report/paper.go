package report

import (
	"fmt"
	"io"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/lab"
	"winlab/internal/stats"
)

// This file renders the paper's specific tables and figures from the
// analysis results.

// Table1 renders the hardware catalogue (the paper's Table 1).
func Table1(specs []lab.Spec) *Table {
	t := &Table{
		Title:   "Table 1: Main characteristics of machines",
		Headers: []string{"Lab", "Machines", "CPU (GHz)", "RAM MB", "Disk (GB)", "INT", "FP"},
	}
	for _, s := range specs {
		t.AddRow(s.Name, fmt.Sprintf("%d", s.Machines),
			fmt.Sprintf("%s (%.2g)", cpuShort(s.CPUModel), s.CPUGHz),
			fmt.Sprintf("%d", s.RAMMB),
			fmt.Sprintf("%.1f", s.DiskGB),
			fmt.Sprintf("%.1f", s.IntIndex),
			fmt.Sprintf("%.1f", s.FPIndex))
	}
	agg := lab.Aggregate(specs)
	t.AddRow("Avg", fmt.Sprintf("%d", agg.Machines), "-",
		fmt.Sprintf("%.1f", agg.AvgRAMMB),
		fmt.Sprintf("%.1f", agg.AvgDiskGB),
		fmt.Sprintf("%.1f", agg.AvgInt),
		fmt.Sprintf("%.1f", agg.AvgFP))
	return t
}

func cpuShort(model string) string {
	switch model {
	case "Intel Pentium 4":
		return "P4"
	case "Intel Pentium III":
		return "PIII"
	default:
		return model
	}
}

// Table1Aggregates renders the §4.1 fleet totals.
func Table1Aggregates(specs []lab.Spec) string {
	a := lab.Aggregate(specs)
	return fmt.Sprintf(
		"Fleet: %d machines, %.2f GB RAM total, %.2f TB disk total, %.1f GFlops total\n",
		a.Machines, a.TotalRAMGB, a.TotalDiskTB, a.TotalGFlops)
}

// Table2 renders the main results table.
func Table2(t2 analysis.Table2) *Table {
	t := &Table{
		Title:   "Table 2: Main results",
		Headers: []string{"Metric", "No login", "With login", "Both"},
	}
	row := func(name, format string, f func(analysis.Column) float64) {
		t.AddRow(name,
			fmt.Sprintf(format, f(t2.NoLogin)),
			fmt.Sprintf(format, f(t2.WithLogin)),
			fmt.Sprintf(format, f(t2.Both)))
	}
	t.AddRow("Samples",
		fmt.Sprintf("%d", t2.NoLogin.Samples),
		fmt.Sprintf("%d", t2.WithLogin.Samples),
		fmt.Sprintf("%d", t2.Both.Samples))
	row("Avg. uptime (%)", "%.1f", func(c analysis.Column) float64 { return c.UptimePct })
	row("Avg. CPU idle (%)", "%.1f", func(c analysis.Column) float64 { return c.CPUIdlePct })
	row("Avg. RAM load (%)", "%.1f", func(c analysis.Column) float64 { return c.RAMLoadPct })
	row("Avg. SWAP load (%)", "%.1f", func(c analysis.Column) float64 { return c.SwapLoadPct })
	row("Avg. disk used (GB)", "%.1f", func(c analysis.Column) float64 { return c.DiskUsedGB })
	row("Avg. sent bytes (bps)", "%.1f", func(c analysis.Column) float64 { return c.SentBps })
	row("Avg. recv bytes (bps)", "%.1f", func(c analysis.Column) float64 { return c.RecvBps })
	return t
}

// Figure2 renders the session-age profile chart and table.
func Figure2(p analysis.SessionAgeProfile) (*Table, *Chart) {
	t := &Table{
		Title:   "Figure 2: interactive-session samples grouped by relative session age",
		Headers: []string{"Hour", "Samples", "Avg CPU idle (%)"},
	}
	var vals []float64
	for _, b := range p.Buckets {
		t.AddRow(fmt.Sprintf("[%d-%d[", b.Hour, b.Hour+1),
			fmt.Sprintf("%d", b.Samples),
			fmt.Sprintf("%.2f", b.CPUIdlePct))
		vals = append(vals, b.CPUIdlePct)
	}
	c := &Chart{
		Title: "Figure 2: avg CPU idleness by session age (hours)",
		YMin:  90, YMax: 100,
		Height: 12,
		XLabel: fmt.Sprintf("session age 0..%d h", len(p.Buckets)),
		Series: []Series{{Name: "CPU idle %", Values: vals}},
	}
	return t, c
}

// Figure3 renders the availability time series.
func Figure3(s analysis.AvailabilitySeries) *Chart {
	on := make([]float64, len(s.Points))
	free := make([]float64, len(s.Points))
	for i, p := range s.Points {
		on[i] = float64(p.PoweredOn)
		free[i] = float64(p.UserFree)
	}
	return &Chart{
		Title: fmt.Sprintf(
			"Figure 3: machines powered on (avg %.2f) and user-free (avg %.2f) per iteration",
			s.AvgPoweredOn, s.AvgUserFree),
		Height: 16,
		XLabel: "iterations (experiment time →)",
		Series: []Series{
			{Name: "powered on", Values: on, Mark: '*'},
			{Name: "user-free", Values: free, Mark: '+'},
		},
	}
}

// Figure4Left renders the sorted per-machine uptime ratios and nines.
func Figure4Left(us []analysis.MachineUptime) *Chart {
	ratios := make([]float64, len(us))
	nines := make([]float64, len(us))
	for i, u := range us {
		ratios[i] = u.Ratio
		nines[i] = u.Nines
	}
	return &Chart{
		Title: fmt.Sprintf(
			"Figure 4 (left): uptime ratio and availability in nines (machines >0.5: %d, >0.8: %d, >0.9: %d)",
			analysis.CountAbove(us, 0.5), analysis.CountAbove(us, 0.8), analysis.CountAbove(us, 0.9)),
		Height: 14,
		XLabel: "machines, sorted by cumulated uptime (desc)",
		Series: []Series{
			{Name: "uptime ratio", Values: ratios, Mark: '*'},
			{Name: "nines", Values: nines, Mark: 'x'},
		},
	}
}

// Figure4Right renders the session-length distribution.
func Figure4Right(st analysis.SessionStats) string {
	return fmt.Sprintf(
		"Figure 4 (right): distribution of machine uptime (sessions <= %s: %.1f%% of sessions, %.2f%% of uptime)\n"+
			"sessions=%d mean=%s sd=%s\n%s",
		st.HistCap, 100*st.ShortFraction, 100*st.ShortUptimeFraction,
		st.Count, st.Mean.Round(time.Minute), st.StdDev.Round(time.Minute),
		st.Hist.String())
}

// PowerCycles renders the §5.2.2 SMART analysis.
func PowerCycles(pc analysis.PowerCycleStats) *Table {
	t := &Table{
		Title:   "SMART power-cycle analysis (5.2.2)",
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("Total power cycles (monitoring)", fmt.Sprintf("%d", pc.TotalCycles))
	t.AddRow("Avg cycles per machine", fmt.Sprintf("%.2f (sd %.2f)", pc.AvgPerMachine, pc.SDPerMachine))
	t.AddRow("Cycles per machine-day", fmt.Sprintf("%.2f", pc.CyclesPerDay))
	t.AddRow("Sessions detected by sampling", fmt.Sprintf("%d", pc.DetectedSessions))
	t.AddRow("Cycles invisible to sampling", fmt.Sprintf("%.0f%%", 100*pc.UndetectedRatio))
	t.AddRow("Uptime per cycle (monitoring)", fmt.Sprintf("%s (sd %s)",
		pc.UptimePerCycle.Round(time.Minute), pc.UptimePerCycleSD.Round(time.Minute)))
	t.AddRow("Uptime per cycle (disk lifetime)", fmt.Sprintf("%s (sd %s)",
		pc.LifetimePerCycle.Round(time.Minute), pc.LifetimePerCycleSD.Round(time.Minute)))
	return t
}

// Figure5 renders the weekly resource profiles.
func Figure5(w *analysis.WeeklyProfiles) (*Chart, *Chart) {
	left := &Chart{
		Title: "Figure 5 (left): weekly distribution of CPU idleness, RAM and swap load (Mon..Sun)",
		YMin:  0, YMax: 100,
		Height: 16,
		XLabel: "15-minute slots, Monday 00:00 .. Sunday 24:00",
		Series: []Series{
			{Name: "CPU idle %", Values: w.CPUIdlePct.Means(), Mark: '*'},
			{Name: "RAM load %", Values: w.RAMLoadPct.Means(), Mark: '+'},
			{Name: "swap load %", Values: w.SwapLoad.Means(), Mark: '.'},
		},
	}
	right := &Chart{
		Title:  "Figure 5 (right): weekly distribution of network traffic (bps)",
		Height: 16,
		XLabel: "15-minute slots, Monday 00:00 .. Sunday 24:00",
		Series: []Series{
			{Name: "received bps", Values: w.RecvBps.Means(), Mark: '*'},
			{Name: "sent bps", Values: w.SentBps.Means(), Mark: '+'},
		},
	}
	return left, right
}

// Figure6 renders the weekly cluster-equivalence distribution.
func Figure6(eq analysis.EquivalenceResult) *Chart {
	return &Chart{
		Title: fmt.Sprintf(
			"Figure 6: weekly distribution of cluster equivalence (occupied %.2f + free %.2f = %.2f)",
			eq.OccupiedRatio, eq.FreeRatio, eq.TotalRatio),
		YMin: 0, YMax: 1,
		Height: 14,
		XLabel: "15-minute slots, Monday 00:00 .. Sunday 24:00",
		Series: []Series{
			{Name: "total", Values: eq.Weekly.Means(), Mark: '*'},
			{Name: "occupied", Values: eq.WeeklyOccupied.Means(), Mark: '+'},
			{Name: "free", Values: eq.WeeklyFree.Means(), Mark: '.'},
		},
	}
}

// WeeklyCSV exports a weekly profile as CSV with day/hour labels.
func WeeklyCSV(w io.Writer, names []string, profiles ...*stats.WeeklyProfile) error {
	cols := make([][]float64, len(profiles))
	for i, p := range profiles {
		cols[i] = p.Means()
	}
	slots := make([]float64, stats.SlotsPerWeek)
	for i := range slots {
		slots[i] = float64(i)
	}
	return WriteCSV(w, append([]string{"slot"}, names...), append([][]float64{slots}, cols...)...)
}

// LabUsageTable renders the per-laboratory usage breakdown.
func LabUsageTable(us []analysis.LabUsage) *Table {
	t := &Table{
		Title: "Per-laboratory usage",
		Headers: []string{"Lab", "Machines", "Uptime %", "Occupied %",
			"CPU idle %", "RAM %", "Free RAM MB", "Free disk GB"},
	}
	for _, u := range us {
		t.AddRow(u.Lab,
			fmt.Sprintf("%d", u.Machines),
			fmt.Sprintf("%.1f", u.UptimePct),
			fmt.Sprintf("%.1f", u.OccupiedPct),
			fmt.Sprintf("%.1f", u.CPUIdlePct),
			fmt.Sprintf("%.1f", u.RAMLoadPct),
			fmt.Sprintf("%.0f", u.FreeRAMMBPerMachine),
			fmt.Sprintf("%.1f", u.FreeDiskGBPerMachine))
	}
	return t
}

// CapacityTable renders the §6 harvestable memory/disk summary.
func CapacityTable(c analysis.CapacityReport) *Table {
	t := &Table{
		Title:   "Harvestable capacity (memory and disk idleness, per powered machine)",
		Headers: []string{"Metric", "Value"},
	}
	t.AddRow("Avg free RAM per machine", fmt.Sprintf("%.0f MB", c.AvgFreeRAMMBPerMachine))
	for _, ram := range []int{128, 256, 512} {
		if v, ok := c.FreeRAMByClass[ram]; ok {
			t.AddRow(fmt.Sprintf("  in %d MB machines", ram), fmt.Sprintf("%.0f MB", v))
		}
	}
	t.AddRow("Fleet free RAM (simultaneous avg)", fmt.Sprintf("%.1f GB", c.FleetFreeRAMGB))
	t.AddRow("Avg free disk per machine", fmt.Sprintf("%.1f GB", c.AvgFreeDiskGBPerMachine))
	t.AddRow("Fleet free disk (simultaneous avg)", fmt.Sprintf("%.2f TB", c.FleetFreeDiskTB))
	t.AddRow("Avg powered machines", fmt.Sprintf("%.1f", c.AvgPoweredMachines))
	return t
}
