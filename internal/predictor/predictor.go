// Package predictor estimates machine availability from a monitoring
// trace: the probability that a machine, observed up now, is still up (and
// not rebooted) after a given horizon.
//
// The paper closes by noting that harvesting volatile classroom fleets
// "requires survival techniques such as checkpointing, oversubscription
// and multiple executions"; the complementary technique is *placement* —
// preferring machines likely to survive the task. This package provides
// the empirical estimator such a scheduler needs, built from two signals
// the trace offers for free:
//
//   - time-of-week: a machine up on Tuesday 22:00 faces the 4 am shutdown
//     sweep; one up on Tuesday 10:00 usually survives the afternoon;
//   - per-machine history: the paper's Figure 4 shows a stable minority of
//     machines with multi-day uptimes (the "leave-on" population).
package predictor

import (
	"sort"
	"time"

	"winlab/internal/stats"
	"winlab/internal/trace"
)

// hourSlots is the predictor's time-of-week resolution (hourly).
const hourSlots = 7 * 24

// Model is a fitted availability predictor.
type Model struct {
	Horizon time.Duration

	// survivalByHour[h] is the empirical probability that a machine up at
	// week-hour h is still up, same boot, after Horizon.
	survivalByHour [hourSlots]stats.Running

	// perMachine[id] is the machine's overall survival rate, used to rank
	// machines (Stability) and to modulate the hourly baseline.
	perMachine map[string]*stats.Running

	overall stats.Running
}

// weekHour maps a time to its hour-of-week slot (Monday 00:00 = 0).
func weekHour(t time.Time) int {
	day := (int(t.Weekday()) + 6) % 7
	return day*24 + t.Hour()
}

// observe walks one machine's sample sequence and calls fn with each
// (sample index, survived) labelled observation for the horizon.
//
// Labelling reasons from the end of the sample's boot run (the last
// same-boot sample) rather than raw adjacency, so both reboots and
// scheduled shutdowns count as deaths while coordinator outages do not:
//
//   - the boot run extends to or past t+h → survived;
//   - the run ends more than `slack` before t+h → the machine stopped
//     answering probes it should have answered while up: down at t+h;
//   - the run ends within `slack` of t+h → the shutdown may fall on either
//     side of the target: ambiguous, skipped;
//   - t+h is beyond the collector's last iteration (limit): no evidence
//     could exist, skipped.
//
// The scan is O(samples) per machine.
func observe(ss []trace.Sample, horizon, period time.Duration, limit time.Time, fn func(i int, survived float64)) {
	if len(ss) == 0 {
		return
	}
	slack := 2 * period
	// runEnd[i] is the time of the last sample sharing sample i's boot.
	runEnd := make([]time.Time, len(ss))
	for i := len(ss) - 1; i >= 0; i-- {
		if i < len(ss)-1 && trace.SameBoot(&ss[i], &ss[i+1]) {
			runEnd[i] = runEnd[i+1]
		} else {
			runEnd[i] = ss[i].Time
		}
	}
	for i := range ss {
		target := ss[i].Time.Add(horizon)
		switch {
		case !runEnd[i].Before(target):
			fn(i, 1)
		case target.After(limit):
			// beyond the collected window: unknown
		case target.Sub(runEnd[i]) > slack:
			fn(i, 0)
		default:
			// death within one probing window of the target: ambiguous
		}
	}
}

// Fit builds a predictor from a trace for the given horizon. Every sample
// with unambiguous survival evidence (see observe) contributes one
// observation.
func Fit(d *trace.Dataset, horizon time.Duration) *Model {
	if horizon <= 0 {
		horizon = time.Hour
	}
	m := &Model{
		Horizon:    horizon,
		perMachine: make(map[string]*stats.Running),
	}
	limit := collectorLimit(d)
	d.Index().EachMachine(func(id string, ss []trace.Sample) {
		pm := &stats.Running{}
		m.perMachine[id] = pm
		observe(ss, horizon, d.Period, limit, func(i int, survived float64) {
			m.survivalByHour[weekHour(ss[i].Time)].Add(survived)
			pm.Add(survived)
			m.overall.Add(survived)
		})
	})
	return m
}

// collectorLimit returns the last instant the collector could have
// produced evidence for: the final iteration's start (or the dataset end).
func collectorLimit(d *trace.Dataset) time.Time {
	if n := len(d.Iterations); n > 0 {
		return d.Iterations[n-1].Start
	}
	return d.End
}

// Survival returns the predicted probability that a machine up at time t
// is still up (same boot) after the model's horizon. It blends the
// time-of-week baseline with the machine's own history, both shrunk
// toward the overall rate: observations within one hour-of-week slot are
// correlated (a class reboots a dozen machines at once), so nominal
// counts overstate the evidence and the shrinkage constants are large.
func (m *Model) Survival(id string, t time.Time) float64 {
	overall := m.overall.Mean()
	base := overall
	if r := &m.survivalByHour[weekHour(t)]; r.N() > 0 {
		const kHour = 400
		w := float64(r.N()) / float64(r.N()+kHour)
		base = overall + w*(r.Mean()-overall)
	}
	pm := m.perMachine[id]
	if pm == nil || pm.N() == 0 {
		return base
	}
	const kMachine = 300
	w := float64(pm.N()) / float64(pm.N()+kMachine)
	p := base + w*(pm.Mean()-overall)
	return stats.Clamp(p, 0, 1)
}

// HourlyBaseline returns the 168 time-of-week survival rates (NaN-free;
// hours without data return the overall mean).
func (m *Model) HourlyBaseline() []float64 {
	out := make([]float64, hourSlots)
	for h := range out {
		if m.survivalByHour[h].N() > 0 {
			out[h] = m.survivalByHour[h].Mean()
		} else {
			out[h] = m.overall.Mean()
		}
	}
	return out
}

// MachineRank is one machine's historical survival rate.
type MachineRank struct {
	Machine  string
	Survival float64
	N        int64
}

// Stability ranks machines by their historical survival rate, descending —
// the machines a placement-aware harvester should prefer.
func (m *Model) Stability() []MachineRank {
	out := make([]MachineRank, 0, len(m.perMachine))
	for id, r := range m.perMachine {
		out = append(out, MachineRank{Machine: id, Survival: r.Mean(), N: r.N()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Survival != out[j].Survival {
			return out[i].Survival > out[j].Survival
		}
		return out[i].Machine < out[j].Machine
	})
	return out
}

// StableSet returns the IDs of the top fraction (0..1) most stable
// machines with at least minObs observations.
func (m *Model) StableSet(fraction float64, minObs int64) map[string]bool {
	ranked := m.Stability()
	eligible := ranked[:0]
	for _, r := range ranked {
		if r.N >= minObs {
			eligible = append(eligible, r)
		}
	}
	n := int(float64(len(eligible)) * stats.Clamp(fraction, 0, 1))
	out := make(map[string]bool, n)
	for _, r := range eligible[:n] {
		out[r.Machine] = true
	}
	return out
}

// Evaluation is the result of testing a predictor on a trace.
type Evaluation struct {
	Observations int
	// Brier is the mean squared error of the predicted probabilities
	// (lower is better; 0.25 is the score of always predicting 0.5).
	Brier float64
	// BaseRate is the empirical survival rate of the evaluation trace, and
	// BaseBrier the Brier score of always predicting the *training* base
	// rate — the skill-free reference.
	BaseRate  float64
	BaseBrier float64
}

// Skill reports the fractional Brier improvement over the constant
// base-rate predictor (positive = the model has skill).
func (e Evaluation) Skill() float64 {
	if e.BaseBrier == 0 {
		return 0
	}
	return 1 - e.Brier/e.BaseBrier
}

// Evaluate scores the model on a trace (use a held-out time range of the
// training trace, via trace.SplitAt, for an honest estimate).
func (m *Model) Evaluate(d *trace.Dataset) Evaluation {
	var ev Evaluation
	var brier, baseBrier, rate stats.Running
	base := m.overall.Mean()
	limit := collectorLimit(d)
	d.Index().EachMachine(func(id string, ss []trace.Sample) {
		observe(ss, m.Horizon, d.Period, limit, func(i int, survived float64) {
			p := m.Survival(id, ss[i].Time)
			brier.Add((p - survived) * (p - survived))
			baseBrier.Add((base - survived) * (base - survived))
			rate.Add(survived)
			ev.Observations++
		})
	})
	ev.Brier = brier.Mean()
	ev.BaseBrier = baseBrier.Mean()
	ev.BaseRate = rate.Mean()
	return ev
}
