package predictor

import (
	"testing"
	"time"

	"winlab/internal/trace"
)

var t0 = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC) // Monday 00:00

// synthetic builds a two-machine, two-day trace: STABLE stays up the whole
// time; FLAKY reboots every four hours.
func synthetic() *trace.Dataset {
	d := &trace.Dataset{
		Start: t0, End: t0.AddDate(0, 0, 2), Period: 15 * time.Minute,
		Machines: []trace.MachineInfo{
			{ID: "STABLE", Lab: "L", IntIndex: 30, FPIndex: 30},
			{ID: "FLAKY", Lab: "L", IntIndex: 30, FPIndex: 30},
		},
	}
	stableBoot := t0
	for i := 1; i <= 2*96; i++ {
		at := t0.Add(time.Duration(i) * 15 * time.Minute)
		d.Samples = append(d.Samples, trace.Sample{
			Iter: i, Time: at, Machine: "STABLE", Lab: "L",
			BootTime: stableBoot, Uptime: at.Sub(stableBoot), CPUIdle: at.Sub(stableBoot),
		})
		flakyBoot := t0.Add(time.Duration((i-1)/16) * 4 * time.Hour)
		d.Samples = append(d.Samples, trace.Sample{
			Iter: i, Time: at, Machine: "FLAKY", Lab: "L",
			BootTime: flakyBoot, Uptime: at.Sub(flakyBoot), CPUIdle: at.Sub(flakyBoot),
		})
		d.Iterations = append(d.Iterations, trace.Iteration{Iter: i, Start: at, Attempted: 2, Responded: 2})
	}
	return d
}

func TestFitSeparatesMachines(t *testing.T) {
	m := Fit(synthetic(), 2*time.Hour)
	ranks := m.Stability()
	if len(ranks) != 2 {
		t.Fatalf("ranked %d machines", len(ranks))
	}
	if ranks[0].Machine != "STABLE" {
		t.Errorf("top machine = %s", ranks[0].Machine)
	}
	if ranks[0].Survival != 1 {
		t.Errorf("STABLE survival = %v, want 1", ranks[0].Survival)
	}
	if ranks[1].Survival >= 0.8 {
		t.Errorf("FLAKY survival = %v, want clearly below STABLE", ranks[1].Survival)
	}
}

func TestSurvivalBlending(t *testing.T) {
	m := Fit(synthetic(), 2*time.Hour)
	at := t0.Add(30 * time.Hour)
	ps := m.Survival("STABLE", at)
	pf := m.Survival("FLAKY", at)
	if ps <= pf {
		t.Errorf("Survival(STABLE)=%v <= Survival(FLAKY)=%v", ps, pf)
	}
	if ps < 0 || ps > 1 || pf < 0 || pf > 1 {
		t.Errorf("probabilities out of range: %v %v", ps, pf)
	}
	// Unknown machine falls back to the baseline.
	pu := m.Survival("UNKNOWN", at)
	if pu < pf || pu > ps {
		t.Errorf("unknown-machine estimate %v outside [%v, %v]", pu, pf, ps)
	}
}

func TestHourlyBaseline(t *testing.T) {
	m := Fit(synthetic(), 2*time.Hour)
	hb := m.HourlyBaseline()
	if len(hb) != 168 {
		t.Fatalf("baseline slots = %d", len(hb))
	}
	for h, v := range hb {
		if v < 0 || v > 1 {
			t.Fatalf("hour %d baseline %v", h, v)
		}
	}
}

func TestStableSet(t *testing.T) {
	m := Fit(synthetic(), 2*time.Hour)
	top := m.StableSet(0.5, 1)
	if len(top) != 1 || !top["STABLE"] {
		t.Errorf("StableSet(0.5) = %v", top)
	}
	all := m.StableSet(1, 1)
	if len(all) != 2 {
		t.Errorf("StableSet(1) = %v", all)
	}
	none := m.StableSet(0, 1)
	if len(none) != 0 {
		t.Errorf("StableSet(0) = %v", none)
	}
	// minObs filters out thin histories.
	if got := m.StableSet(1, 1<<40); len(got) != 0 {
		t.Errorf("minObs filter failed: %v", got)
	}
}

func TestEvaluateHasSkill(t *testing.T) {
	d := synthetic()
	m := Fit(d, 2*time.Hour)
	ev := m.Evaluate(d) // in-sample: must beat the base rate comfortably
	if ev.Observations == 0 {
		t.Fatal("no evaluation observations")
	}
	if ev.Brier >= ev.BaseBrier {
		t.Errorf("no skill: brier %v vs base %v", ev.Brier, ev.BaseBrier)
	}
	if ev.Skill() <= 0 {
		t.Errorf("skill = %v", ev.Skill())
	}
}

func TestFitDefaultHorizon(t *testing.T) {
	m := Fit(synthetic(), 0)
	if m.Horizon != time.Hour {
		t.Errorf("default horizon = %v", m.Horizon)
	}
}

func TestWeekHour(t *testing.T) {
	if weekHour(t0) != 0 {
		t.Error("Monday 00:00 should be hour 0")
	}
	if got := weekHour(t0.Add(25 * time.Hour)); got != 25 {
		t.Errorf("Tuesday 01:00 = %d", got)
	}
	if got := weekHour(t0.AddDate(0, 0, 6).Add(23 * time.Hour)); got != 167 {
		t.Errorf("Sunday 23:00 = %d", got)
	}
}
