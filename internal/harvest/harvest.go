// Package harvest implements the desktop-grid scenario the paper motivates
// (§5.4, §6): a bag-of-tasks master that scavenges the idle CPU recorded in
// a monitoring trace, with checkpointing to survive the fleet's volatility.
//
// The simulator replays a trace.Dataset: between two consecutive samples of
// the same boot, a machine contributes idleness × NBench-index compute; a
// reboot or disappearance evicts the running task, which restarts from its
// last checkpoint. The resulting effective cluster-equivalence ratio can be
// compared with the idleness-derived upper bound of analysis.Equivalence —
// quantifying how much of the "2:1 rule" survives volatility and imperfect
// checkpointing.
package harvest

import (
	"fmt"
	"time"

	"winlab/internal/trace"
)

// Policy selects which machines are harvested.
type Policy int

// Policies.
const (
	// FreeOnly harvests only machines without an interactive session;
	// occupied intervals suspend the task without losing progress.
	FreeOnly Policy = iota
	// All harvests every powered machine, occupied or not (the paper notes
	// that even occupied machines are ~94% idle).
	All
)

func (p Policy) String() string {
	switch p {
	case FreeOnly:
		return "free-only"
	case All:
		return "all-machines"
	default:
		return "unknown"
	}
}

// Config configures a harvest run.
type Config struct {
	// TaskWork is the work per task in index-hours: one hour of a machine
	// with combined NBench index 1.0, fully idle.
	TaskWork float64
	// Checkpoint is the wall-time interval between checkpoints; zero
	// disables checkpointing (evictions restart tasks from scratch).
	Checkpoint time.Duration
	Policy     Policy
}

// Result summarises a harvest run.
type Result struct {
	Config         Config
	CompletedTasks int
	HarvestedWork  float64 // index-hours of useful, committed work
	LostWork       float64 // index-hours discarded by evictions
	Evictions      int
	// Equivalence is the effective cluster-equivalence ratio:
	// HarvestedWork / (fleet index × experiment duration).
	Equivalence float64
	// UpperBound is the same ratio counting lost work as useful — the
	// idleness-derived ceiling the paper's Figure 6 reports.
	UpperBound float64
}

// machineState tracks one machine's task between slices.
type machineState struct {
	progress     float64 // index-hours into the current task
	checkpointed float64
	lastCkpt     time.Time
}

// Run replays the trace under the given configuration.
func Run(d *trace.Dataset, cfg Config) (Result, error) {
	if cfg.TaskWork <= 0 {
		return Result{}, fmt.Errorf("harvest: non-positive task work %v", cfg.TaskWork)
	}
	perf := make(map[string]float64, len(d.Machines))
	for _, m := range d.Machines {
		perf[m.ID] = m.PerfIndex()
	}
	res := Result{Config: cfg}
	maxGap := 2 * d.Period

	// Walk the frozen index in sorted machine order: no per-call re-sort,
	// and a deterministic float accumulation order (the pre-index map
	// iteration made the last bits of the totals vary run to run).
	d.Index().EachMachine(func(id string, ss []trace.Sample) {
		p := perf[id]
		if p == 0 || len(ss) == 0 {
			return
		}
		st := machineState{lastCkpt: ss[0].Time}
		var prev *trace.Sample
		for i := range ss {
			s := &ss[i]
			if prev != nil {
				gap := s.Time.Sub(prev.Time)
				switch {
				case trace.SameBoot(prev, s) && gap <= maxGap:
					iv := trace.Interval{A: prev, B: s}
					res.harvestSlice(&st, iv, p, cfg)
				default:
					// Reboot or disappearance: the running task is evicted.
					res.evict(&st)
					st.lastCkpt = s.Time
				}
			}
			prev = s
		}
		// Work in flight at the end of the experiment is neither committed
		// nor lost; count its checkpointed part as harvested.
		res.HarvestedWork += st.checkpointed
	})

	denom := fleetIndexHours(d)
	if denom > 0 {
		res.Equivalence = res.HarvestedWork / denom
		res.UpperBound = (res.HarvestedWork + res.LostWork) / denom
	}
	return res, nil
}

// fleetIndexHours computes the dedicated-cluster denominator in
// index-hours: each machine's perf index times the hours it was a fleet
// member. Full-lifetime machines contribute over the whole experiment;
// partial-lifetime machines (scenario fleet churn) are prorated by the
// share of iterations they were members for, so a replacement that
// joined halfway through is not charged hours it could never harvest.
func fleetIndexHours(d *trace.Dataset) float64 {
	hours := d.End.Sub(d.Start).Hours()
	if hours <= 0 {
		return 0
	}
	partial := false
	var fleetIndex float64
	for i := range d.Machines {
		fleetIndex += d.Machines[i].PerfIndex()
		partial = partial || d.Machines[i].PartialLifetime()
	}
	if !partial {
		return fleetIndex * hours // classic static-fleet denominator, bit-for-bit
	}
	var t float64
	for i := range d.Machines {
		m := &d.Machines[i]
		h := hours
		if m.PartialLifetime() && len(d.Iterations) > 0 {
			active := 0
			for j := range d.Iterations {
				if m.ActiveAt(d.Iterations[j].Iter) {
					active++
				}
			}
			h = hours * float64(active) / float64(len(d.Iterations))
		}
		t += m.PerfIndex() * h
	}
	return t
}

// harvestSlice advances one machine's task across one sample interval.
func (r *Result) harvestSlice(st *machineState, iv trace.Interval, perfIdx float64, cfg Config) {
	if cfg.Policy == FreeOnly && iv.B.HasSession() {
		// Occupied: task suspended, no progress, no loss.
		return
	}
	dt := iv.Duration().Hours()
	st.progress += iv.CPUIdlePct() / 100 * perfIdx * dt

	// Complete as many tasks as fit.
	for st.progress >= cfg.TaskWork {
		st.progress -= cfg.TaskWork
		st.checkpointed = 0
		r.CompletedTasks++
		r.HarvestedWork += cfg.TaskWork
		st.lastCkpt = iv.B.Time
	}
	// Periodic checkpoint at sample granularity.
	if cfg.Checkpoint > 0 && iv.B.Time.Sub(st.lastCkpt) >= cfg.Checkpoint {
		st.checkpointed = st.progress
		st.lastCkpt = iv.B.Time
	}
}

// evict rolls the task back to its last checkpoint.
func (r *Result) evict(st *machineState) {
	if lost := st.progress - st.checkpointed; lost > 0 {
		r.LostWork += lost
		r.Evictions++
	}
	st.progress = st.checkpointed
}

// SweepCheckpoint runs the harvest at several checkpoint intervals,
// reporting the sensitivity of yield to checkpoint frequency (the
// "survival techniques" the paper's conclusion calls for).
func SweepCheckpoint(d *trace.Dataset, taskWork float64, policy Policy, intervals []time.Duration) ([]Result, error) {
	out := make([]Result, 0, len(intervals))
	for _, ci := range intervals {
		r, err := Run(d, Config{TaskWork: taskWork, Checkpoint: ci, Policy: policy})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
