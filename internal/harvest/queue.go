package harvest

import (
	"fmt"
	"sort"
	"time"

	"winlab/internal/trace"
)

// This file implements the master/worker view of harvesting: a finite bag
// of tasks dispatched by a master to whatever machines the trace shows as
// harvestable, with optional task replication — the paper's §6 lists
// "checkpointing, oversubscription and multiple executions" as the
// survival techniques volatile classroom fleets require. Replication
// trades wasted duplicate work for a shorter and more predictable makespan
// (a straggler or eviction no longer stalls the bag).

// QueueConfig configures a bag-of-tasks run.
type QueueConfig struct {
	Tasks      int     // bag size
	TaskWork   float64 // index-hours per task
	Checkpoint time.Duration
	Policy     Policy
	// Replication is the number of copies of each task scheduled on
	// distinct machines (1 = no replication). The first copy to finish
	// completes the task; the progress of the others is counted as waste.
	Replication int
	// MachineFilter, when non-nil, restricts harvesting to machines it
	// accepts — e.g. a predictor.StableSet of machines likely to survive
	// (placement-aware scheduling). Filtered-out machines contribute
	// nothing, neither work nor evictions.
	MachineFilter func(id string) bool
}

// QueueResult summarises a bag-of-tasks run.
type QueueResult struct {
	Config         QueueConfig
	CompletedTasks int
	// Makespan is the time from trace start until the last task completed;
	// Drained reports whether the bag finished within the trace.
	Makespan time.Duration
	Drained  bool

	UsefulWork float64 // index-hours committed in completed tasks
	WastedWork float64 // duplicate-replica index-hours
	LostWork   float64 // eviction-rollback index-hours
	Evictions  int
}

// queueTask tracks one task of the bag.
type queueTask struct {
	id       int
	replicas int // replicas currently assigned
	done     bool
}

// queueReplica is a copy of a task running on one machine.
type queueReplica struct {
	task         *queueTask
	progress     float64
	checkpointed float64
	lastCkpt     time.Time
}

// timedInterval orders all trace intervals globally.
type timedInterval struct {
	iv   trace.Interval
	perf float64
}

// RunQueue replays the trace as a master/worker bag-of-tasks system.
func RunQueue(d *trace.Dataset, cfg QueueConfig) (QueueResult, error) {
	if cfg.Tasks <= 0 || cfg.TaskWork <= 0 {
		return QueueResult{}, fmt.Errorf("harvest: bag needs positive Tasks and TaskWork")
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	perf := make(map[string]float64, len(d.Machines))
	for _, m := range d.Machines {
		perf[m.ID] = m.PerfIndex()
	}

	// Global time-ordered interval stream, with reboot markers: a change of
	// boot (or a long gap) evicts whatever the machine was running. The
	// frozen index supplies the per-machine runs already sorted.
	idx := d.Index()
	var stream []timedInterval
	evictAt := map[string][]time.Time{}
	maxGap := 2 * d.Period
	idx.EachMachine(func(id string, ss []trace.Sample) {
		p := perf[id]
		if p == 0 {
			return
		}
		if cfg.MachineFilter != nil && !cfg.MachineFilter(id) {
			return
		}
		for i := 1; i < len(ss); i++ {
			a, b := &ss[i-1], &ss[i]
			if trace.SameBoot(a, b) && b.Time.Sub(a.Time) <= maxGap {
				stream = append(stream, timedInterval{iv: trace.Interval{A: a, B: b}, perf: p})
			} else {
				evictAt[id] = append(evictAt[id], b.Time)
			}
		}
	})
	sort.Slice(stream, func(i, j int) bool {
		a, b := stream[i].iv.B, stream[j].iv.B
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		return a.Machine < b.Machine // deterministic tie-break
	})

	tasks := make([]*queueTask, cfg.Tasks)
	for i := range tasks {
		tasks[i] = &queueTask{id: i}
	}
	nextTask := 0 // index of the first never-assigned task
	running := map[string]*queueReplica{}
	res := QueueResult{Config: cfg}

	// nextAssignment picks the task for an idle machine: first fill fresh
	// tasks, then add replicas to the least-replicated unfinished task.
	nextAssignment := func() *queueTask {
		for nextTask < len(tasks) && tasks[nextTask].done {
			nextTask++
		}
		if nextTask < len(tasks) && tasks[nextTask].replicas == 0 {
			t := tasks[nextTask]
			nextTask++
			return t
		}
		var best *queueTask
		for _, t := range tasks {
			if t.done || t.replicas >= cfg.Replication {
				continue
			}
			if best == nil || t.replicas < best.replicas {
				best = t
			}
		}
		return best
	}

	evict := func(id string) {
		r := running[id]
		if r == nil {
			return
		}
		if lost := r.progress - r.checkpointed; lost > 0 {
			res.LostWork += lost
			res.Evictions++
		}
		r.progress = r.checkpointed
	}

	evIdx := map[string]int{}
	for _, ti := range stream {
		id := ti.iv.B.Machine
		at := ti.iv.B.Time

		// Apply any reboot markers that precede this interval.
		evs := evictAt[id]
		for evIdx[id] < len(evs) && !evs[evIdx[id]].After(at) {
			evict(id)
			evIdx[id]++
		}

		if cfg.Policy == FreeOnly && ti.iv.B.HasSession() {
			continue // suspended
		}
		r := running[id]
		if r == nil || r.task.done {
			if r != nil && r.task.done {
				// The task finished elsewhere: this replica's progress is waste.
				res.WastedWork += r.progress
				r.task.replicas--
			}
			t := nextAssignment()
			if t == nil {
				delete(running, id)
				continue
			}
			t.replicas++
			r = &queueReplica{task: t, lastCkpt: at}
			running[id] = r
		}
		r.progress += ti.iv.CPUIdlePct() / 100 * ti.perf * ti.iv.Duration().Hours()
		if r.progress >= cfg.TaskWork {
			r.task.done = true
			res.CompletedTasks++
			res.UsefulWork += cfg.TaskWork
			res.WastedWork += r.progress - cfg.TaskWork
			res.Makespan = at.Sub(d.Start)
			r.task.replicas--
			delete(running, id)
			if res.CompletedTasks == cfg.Tasks {
				res.Drained = true
				break
			}
			continue
		}
		if cfg.Checkpoint > 0 && at.Sub(r.lastCkpt) >= cfg.Checkpoint {
			r.checkpointed = r.progress
			r.lastCkpt = at
		}
	}
	if !res.Drained {
		res.Makespan = d.End.Sub(d.Start)
		// Drain the reboot markers that fall after a machine's last usable
		// interval: the loop above only applies markers when a later
		// interval of the same machine comes up, so a trace that *ends* in
		// a reboot would otherwise never evict the in-flight replica and
		// LostWork/Evictions would be undercounted. (When the bag drained
		// early the remaining replicas are duplicates of completed tasks
		// and are accounted as waste below instead.)
		// Sorted machine order keeps the LostWork accumulation
		// deterministic.
		for _, id := range idx.Machines() {
			if evs := evictAt[id]; evIdx[id] < len(evs) {
				evict(id)
				evIdx[id] = len(evs)
			}
		}
	}
	// Whatever is still running when the bag drains (duplicate replicas of
	// completed tasks) or when the trace ends (abandoned in-flight work)
	// is waste either way. Sorted order for deterministic accumulation.
	for _, id := range idx.Machines() {
		if r := running[id]; r != nil {
			res.WastedWork += r.progress
		}
	}
	return res, nil
}

// CompareReplication runs the same bag at several replication factors; the
// interesting trade-off is makespan vs wasted work.
func CompareReplication(d *trace.Dataset, base QueueConfig, factors []int) ([]QueueResult, error) {
	out := make([]QueueResult, 0, len(factors))
	for _, k := range factors {
		cfg := base
		cfg.Replication = k
		r, err := RunQueue(d, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
