package harvest

import (
	"testing"
	"time"

	"winlab/internal/trace"
)

// multiFixture builds a dataset with n always-on, fully idle machines of
// perf index 10 sampled every 15 minutes for one day, with optional
// per-machine reboots.
func multiFixture(n int, rebootAt map[string]int) *trace.Dataset {
	d := &trace.Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
	}
	for m := 0; m < n; m++ {
		id := string(rune('A' + m))
		d.Machines = append(d.Machines, trace.MachineInfo{ID: id, Lab: "L", IntIndex: 10, FPIndex: 10})
		boot := t0
		for i := 1; i <= 96; i++ {
			if r, ok := rebootAt[id]; ok && i == r {
				boot = t0.Add(time.Duration(i)*15*time.Minute - time.Minute)
			}
			at := t0.Add(time.Duration(i) * 15 * time.Minute)
			up := at.Sub(boot)
			d.Samples = append(d.Samples, trace.Sample{
				Iter: i, Time: at, Machine: id, Lab: "L",
				BootTime: boot, Uptime: up, CPUIdle: up,
			})
		}
	}
	for i := 1; i <= 96; i++ {
		d.Iterations = append(d.Iterations, trace.Iteration{
			Iter: i, Start: t0.Add(time.Duration(i) * 15 * time.Minute), Attempted: n, Responded: n,
		})
	}
	return d
}

func TestQueueDrainsBag(t *testing.T) {
	d := multiFixture(4, nil)
	// 4 machines × ~23.75 usable hours × 10 index = 950 idx-h capacity.
	// 40 tasks × 20 idx-h = 800: drains.
	res, err := RunQueue(d, QueueConfig{Tasks: 40, TaskWork: 20, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained || res.CompletedTasks != 40 {
		t.Fatalf("not drained: %+v", res)
	}
	if res.UsefulWork != 800 {
		t.Errorf("useful work = %v, want 800", res.UsefulWork)
	}
	if res.WastedWork != 0 || res.Evictions != 0 {
		t.Errorf("waste=%v evictions=%d on stable unreplicated run", res.WastedWork, res.Evictions)
	}
	if res.Makespan <= 0 || res.Makespan > 24*time.Hour {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestQueueUndrainedBag(t *testing.T) {
	d := multiFixture(2, nil)
	res, err := RunQueue(d, QueueConfig{Tasks: 1000, TaskWork: 20, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drained {
		t.Fatal("impossible bag drained")
	}
	if res.CompletedTasks == 0 {
		t.Fatal("no tasks completed")
	}
	if res.Makespan != 24*time.Hour {
		t.Errorf("undrained makespan = %v, want full trace", res.Makespan)
	}
}

func TestQueueReplicationWastesWork(t *testing.T) {
	// Fewer tasks than machines, so the spare machine runs a duplicate
	// replica from the start.
	d := multiFixture(4, nil)
	r1, err := RunQueue(d, QueueConfig{Tasks: 3, TaskWork: 30, Policy: FreeOnly, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunQueue(d, QueueConfig{Tasks: 3, TaskWork: 30, Policy: FreeOnly, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.WastedWork != 0 {
		t.Errorf("unreplicated waste = %v", r1.WastedWork)
	}
	if r2.WastedWork <= 0 {
		t.Errorf("replicated run wasted nothing")
	}
	if !r1.Drained || !r2.Drained {
		t.Fatal("bags did not drain")
	}
	if r2.CompletedTasks != 3 || r1.CompletedTasks != 3 {
		t.Errorf("completed %d/%d", r1.CompletedTasks, r2.CompletedTasks)
	}
}

func TestQueueReplicationHidesEvictions(t *testing.T) {
	// Machine A reboots mid-day; with replication 2 the bag still finishes
	// no later than without, and eviction loss does not delay completion.
	reboots := map[string]int{"A": 40, "B": 56}
	d := multiFixture(3, reboots)
	base := QueueConfig{Tasks: 3, TaskWork: 80, Policy: FreeOnly}
	rs, err := CompareReplication(d, base, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatal("missing results")
	}
	if rs[1].Drained && rs[0].Drained && rs[1].Makespan > rs[0].Makespan {
		t.Errorf("replication slowed the bag: %v vs %v", rs[1].Makespan, rs[0].Makespan)
	}
}

func TestQueueEvictionRollback(t *testing.T) {
	d := multiFixture(1, map[string]int{"A": 48})
	res, err := RunQueue(d, QueueConfig{Tasks: 1, TaskWork: 1000, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 1 || res.LostWork <= 0 {
		t.Errorf("eviction not accounted: %+v", res)
	}
	with, err := RunQueue(d, QueueConfig{Tasks: 1, TaskWork: 1000, Checkpoint: time.Hour, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if with.LostWork >= res.LostWork {
		t.Errorf("checkpointing did not reduce queue loss: %v vs %v", with.LostWork, res.LostWork)
	}
}

// TestQueueEndOfTraceEviction is the regression test for the dropped
// trailing reboot markers: a reboot after a machine's last usable interval
// must still evict the in-flight replica, otherwise end-of-trace LostWork
// and Evictions are undercounted.
func TestQueueEndOfTraceEviction(t *testing.T) {
	// Reboot between the last two samples: the marker falls after the last
	// usable interval and is only applied by the post-loop drain.
	d := multiFixture(1, map[string]int{"A": 96})
	res, err := RunQueue(d, QueueConfig{Tasks: 1, TaskWork: 1000, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 1 {
		t.Errorf("end-of-trace reboot not applied: evictions = %d, want 1", res.Evictions)
	}
	if res.LostWork <= 0 {
		t.Errorf("end-of-trace eviction lost no work: %+v", res)
	}
	// Checkpointing bounds the loss from the trailing eviction too.
	with, err := RunQueue(d, QueueConfig{Tasks: 1, TaskWork: 1000, Checkpoint: time.Hour, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if with.Evictions != 1 || with.LostWork >= res.LostWork {
		t.Errorf("checkpointed trailing eviction: %+v vs %+v", with, res)
	}
}

func TestQueueValidation(t *testing.T) {
	d := multiFixture(1, nil)
	if _, err := RunQueue(d, QueueConfig{Tasks: 0, TaskWork: 1}); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := RunQueue(d, QueueConfig{Tasks: 1, TaskWork: 0}); err == nil {
		t.Error("zero work accepted")
	}
	// Replication below 1 is normalised, not rejected.
	if r, err := RunQueue(d, QueueConfig{Tasks: 1, TaskWork: 1, Replication: 0}); err != nil || r.Config.Replication != 1 {
		t.Errorf("replication normalisation: %v %+v", err, r.Config)
	}
}

func TestQueueConservation(t *testing.T) {
	// Useful + wasted + lost work never exceeds the fleet's idleness
	// capacity over the trace.
	reboots := map[string]int{"A": 30, "B": 60, "C": 20}
	d := multiFixture(4, reboots)
	res, err := RunQueue(d, QueueConfig{Tasks: 60, TaskWork: 11, Policy: FreeOnly, Replication: 2, Checkpoint: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	capacity := 4.0 * 24 * 10 // 4 machines × 24 h × index 10 (upper bound)
	total := res.UsefulWork + res.WastedWork + res.LostWork
	if total > capacity {
		t.Errorf("work conservation violated: %v > %v", total, capacity)
	}
	if res.CompletedTasks > 60 {
		t.Errorf("completed more tasks than the bag held: %d", res.CompletedTasks)
	}
}

func TestQueueMachineFilter(t *testing.T) {
	d := multiFixture(4, map[string]int{"A": 30, "B": 50})
	// Harvest only the stable machines C and D.
	stable := map[string]bool{"C": true, "D": true}
	res, err := RunQueue(d, QueueConfig{
		Tasks: 1000, TaskWork: 20, Policy: FreeOnly,
		MachineFilter: func(id string) bool { return stable[id] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 0 {
		t.Errorf("filtered run evicted %d times (flaky machines leaked in)", res.Evictions)
	}
	all, err := RunQueue(d, QueueConfig{Tasks: 1000, TaskWork: 20, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if all.Evictions == 0 {
		t.Error("unfiltered run saw no evictions")
	}
	if res.CompletedTasks >= all.CompletedTasks {
		t.Errorf("filtered run completed more (%d) than unfiltered (%d)?",
			res.CompletedTasks, all.CompletedTasks)
	}
}
