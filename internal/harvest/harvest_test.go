package harvest

import (
	"testing"
	"time"

	"winlab/internal/trace"
)

var t0 = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC)

// fixture builds a one-day, one-machine dataset: the machine is up and
// fully idle for the whole day with samples every 15 minutes, optionally
// rebooting at a given iteration.
func fixture(rebootAt int, user string) *trace.Dataset {
	d := &trace.Dataset{
		Start: t0, End: t0.AddDate(0, 0, 1), Period: 15 * time.Minute,
		Machines: []trace.MachineInfo{{ID: "M1", Lab: "L", IntIndex: 10, FPIndex: 10}},
	}
	boot := t0
	for i := 1; i <= 96; i++ {
		if rebootAt > 0 && i == rebootAt {
			boot = t0.Add(time.Duration(i)*15*time.Minute - time.Minute)
		}
		at := t0.Add(time.Duration(i) * 15 * time.Minute)
		up := at.Sub(boot)
		s := trace.Sample{
			Iter: i, Time: at, Machine: "M1", Lab: "L",
			BootTime: boot, Uptime: up, CPUIdle: up,
		}
		if user != "" {
			s.SessionUser = user
			s.SessionStart = boot
		}
		d.Samples = append(d.Samples, s)
		d.Iterations = append(d.Iterations, trace.Iteration{Iter: i, Start: at, Attempted: 1, Responded: 1})
	}
	return d
}

func TestFullIdleDayYield(t *testing.T) {
	d := fixture(0, "")
	// Task = 10 index-hours on a perf-10 machine = 1 wall hour. The 95
	// sampled intervals cover 23.75 h → 23 complete tasks.
	r, err := Run(d, Config{TaskWork: 10, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if r.CompletedTasks != 23 {
		t.Errorf("tasks = %d, want 23", r.CompletedTasks)
	}
	if r.Evictions != 0 || r.LostWork != 0 {
		t.Errorf("evictions = %d, lost = %v on a stable machine", r.Evictions, r.LostWork)
	}
	// Equivalence ≈ 230 idx-h / (10 × 24 h) ≈ 0.958.
	if r.Equivalence < 0.93 || r.Equivalence > 1 {
		t.Errorf("equivalence = %v", r.Equivalence)
	}
}

func TestEvictionLosesUncheckpointedWork(t *testing.T) {
	clean := fixture(0, "")
	rebooted := fixture(48, "")
	a, err := Run(clean, Config{TaskWork: 1000, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rebooted, Config{TaskWork: 1000, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	// The huge task never finishes either way, but the reboot discards the
	// first half-day of progress.
	if a.LostWork != 0 {
		t.Errorf("clean run lost %v", a.LostWork)
	}
	if b.Evictions != 1 || b.LostWork <= 0 {
		t.Errorf("rebooted run: evictions=%d lost=%v", b.Evictions, b.LostWork)
	}
	if b.UpperBound <= b.Equivalence {
		t.Errorf("upper bound %v not above equivalence %v", b.UpperBound, b.Equivalence)
	}
}

func TestCheckpointingSavesWork(t *testing.T) {
	d := fixture(48, "")
	without, err := Run(d, Config{TaskWork: 1000, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(d, Config{TaskWork: 1000, Checkpoint: time.Hour, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if with.LostWork >= without.LostWork {
		t.Errorf("checkpointing did not reduce loss: %v vs %v", with.LostWork, without.LostWork)
	}
	if with.HarvestedWork <= without.HarvestedWork {
		t.Errorf("checkpointing did not increase committed work: %v vs %v",
			with.HarvestedWork, without.HarvestedWork)
	}
}

func TestFreeOnlySuspendsOnOccupied(t *testing.T) {
	occupied := fixture(0, "student")
	free, err := Run(occupied, Config{TaskWork: 10, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if free.CompletedTasks != 0 || free.HarvestedWork != 0 {
		t.Errorf("FreeOnly harvested an occupied machine: %+v", free)
	}
	all, err := Run(occupied, Config{TaskWork: 10, Policy: All})
	if err != nil {
		t.Fatal(err)
	}
	if all.CompletedTasks == 0 {
		t.Error("All policy harvested nothing")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(fixture(0, ""), Config{TaskWork: 0}); err == nil {
		t.Error("zero task work accepted")
	}
	if _, err := Run(fixture(0, ""), Config{TaskWork: -5}); err == nil {
		t.Error("negative task work accepted")
	}
}

func TestSweepCheckpoint(t *testing.T) {
	d := fixture(48, "")
	rs, err := SweepCheckpoint(d, 1000, FreeOnly, []time.Duration{0, time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].Config.Checkpoint != 0 || rs[1].Config.Checkpoint != time.Hour {
		t.Error("sweep configs wrong")
	}
	if rs[1].LostWork >= rs[0].LostWork {
		t.Error("sweep did not show checkpointing benefit")
	}
}

func TestPolicyString(t *testing.T) {
	if FreeOnly.String() == "" || All.String() == "" || Policy(9).String() == "" {
		t.Error("empty policy names")
	}
}

func TestMultiMachineAggregation(t *testing.T) {
	d := fixture(0, "")
	// Add a second, powered-off machine (no samples): halves equivalence.
	d.Machines = append(d.Machines, trace.MachineInfo{ID: "M2", Lab: "L", IntIndex: 10, FPIndex: 10})
	r, err := Run(d, Config{TaskWork: 10, Policy: FreeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if r.Equivalence < 0.45 || r.Equivalence > 0.5 {
		t.Errorf("two-machine equivalence = %v, want ≈0.48", r.Equivalence)
	}
}
