package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runShort(t *testing.T) *Result {
	t.Helper()
	cfg := DefaultConfig(1)
	cfg.Days = 3
	res, err := RunExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzeAndRender(t *testing.T) {
	res := runShort(t)
	rep := AnalyzeResult(res)
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "SMART power-cycle analysis",
		"raw login samples",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if rep.Table2.Both.Samples != len(res.Dataset.Samples) {
		t.Errorf("table 2 samples %d != dataset %d", rep.Table2.Both.Samples, len(res.Dataset.Samples))
	}
}

func TestAnalyzeWithoutLabs(t *testing.T) {
	res := runShort(t)
	rep := Analyze(res.Dataset) // foreign trace: no catalogue
	var buf bytes.Buffer
	rep.Render(&buf)
	if strings.Contains(buf.String(), "Table 1") {
		t.Error("Table 1 rendered without a catalogue")
	}
}

func TestWriteCSVs(t *testing.T) {
	res := runShort(t)
	rep := AnalyzeResult(res)
	dir := filepath.Join(t.TempDir(), "figs")
	if err := rep.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig2_session_age.csv", "fig3_availability.csv",
		"fig4_uptime_ratios.csv", "fig5_weekly.csv", "fig6_equivalence.csv",
		"lab_usage.csv",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		lines := bytes.Count(data, []byte("\n"))
		if lines < 2 {
			t.Errorf("%s: only %d lines", name, lines)
		}
	}
}

func TestComparePaper(t *testing.T) {
	res := runShort(t)
	rep := AnalyzeResult(res)
	var buf bytes.Buffer
	rep.ComparePaper(&buf)
	out := buf.String()
	for _, want := range []string{"Paper vs measured", "CPU idle, both (%)", "Equivalence, total"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q", want)
		}
	}
	// Even a 3-day weekday-only run must land near the paper's idleness
	// (slightly lower is expected: the high-idleness weekend is missing).
	if got := rep.Table2.Both.CPUIdlePct; got < 95.5 || got > 99.5 {
		t.Errorf("cpu idleness = %.2f on short run, want ≈96–98", got)
	}
}
