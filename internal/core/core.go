// Package core is the public face of the reproduction: one-call entry
// points to run the paper's 77-day monitoring experiment, analyse a trace
// (collected or loaded from disk) into every table and figure of the
// paper, and render the results.
//
// The layering mirrors the paper's methodology:
//
//	fleet simulator (lab, machine, behavior)  — the monitored classrooms
//	W32Probe (probe)                          — per-machine metric capture
//	DDC (ddc)                                 — periodic remote collection
//	trace                                     — the collected samples
//	analysis                                  — §4–§5 results
//
// Downstream code (cmd/*, examples/*) should need nothing but this package
// plus the analysis/report types it returns.
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/experiment"
	"winlab/internal/lab"
	"winlab/internal/predictor"
	"winlab/internal/report"
	"winlab/internal/trace"
	"winlab/internal/trace/stream"
)

// Config is the experiment configuration; see experiment.Config.
type Config = experiment.Config

// Result is a finished experiment; see experiment.Result.
type Result = experiment.Result

// DefaultConfig returns the configuration reproducing the paper's setup:
// 169 machines in 11 labs, 77 days, 15-minute sampling.
func DefaultConfig(seed int64) Config { return experiment.Default(seed) }

// RunExperiment simulates the fleet and collects the monitoring trace.
func RunExperiment(cfg Config) (*Result, error) { return experiment.Run(cfg) }

// Report bundles every analysis of the paper's evaluation section.
type Report struct {
	Labs []lab.Spec // nil when analysing a foreign trace

	Table2      analysis.Table2
	SessionAge  analysis.SessionAgeProfile
	Avail       analysis.AvailabilitySeries
	Uptimes     []analysis.MachineUptime
	Sessions    analysis.SessionStats
	PowerCycles analysis.PowerCycleStats
	Weekly      *analysis.WeeklyProfiles
	Equivalence analysis.EquivalenceResult
	Labs2       []analysis.LabUsage // per-lab breakdown (not in the paper)
	Capacity    analysis.CapacityReport
	Survival    *predictor.Model // 1-hour machine-survival predictor
	SurvivalEv  predictor.Evaluation
}

// Analyze runs the full analysis pipeline on a trace. The paper's tables
// and figures are computed by the parallel driver (analysis.All) over one
// shared frozen index — identical artefacts to the serial per-function
// calls, one sort and one interval pairing instead of ten.
func Analyze(d *trace.Dataset) *Report {
	a := analysis.All(d, analysis.Options{})
	r := &Report{
		Table2:      a.Table2,
		SessionAge:  a.SessionAge,
		Avail:       a.Availability,
		Uptimes:     a.Uptimes,
		Sessions:    a.Sessions,
		PowerCycles: a.PowerCycles,
		Weekly:      a.Weekly,
		Equivalence: a.Equivalence,
		Labs2:       a.Labs,
		Capacity:    a.Capacity,
	}
	r.Survival = predictor.Fit(d, time.Hour)
	r.SurvivalEv = r.Survival.Evaluate(d)
	return r
}

// AnalyzeResult analyses an experiment result, attaching the catalogue so
// Table 1 can be rendered too.
func AnalyzeResult(res *Result) *Report {
	r := Analyze(res.Dataset)
	r.Labs = res.Config.Labs
	return r
}

// AnalyzeStream computes the same report out-of-core: it streams a
// TBv1 trace file (plain or gzipped) through analysis.AllStream, so
// peak memory is bounded by the accumulator state, not the trace size.
// workers ≤ 1 is the exact sequential path, bit-identical to Analyze's
// artefacts on a canonical trace; workers > 1 shards by machine (counts
// exact, merged floats within documented epsilon).
//
// A segment manifest (labmon -shards -segments) is accepted in place of
// a trace file: the unmerged segments feed the accumulators directly
// via analysis.AllSegments — no compaction step needed. Manifests carry
// their own per-segment concurrency, so -workers is ignored for them.
//
// The survival predictor needs two full passes over a materialised
// dataset, so Survival is nil in a streamed report and Render skips
// that section.
func AnalyzeStream(path string, workers int) (*Report, error) {
	a, err := allStreamAny(path, workers)
	if err != nil {
		return nil, err
	}
	return &Report{
		Table2:      a.Table2,
		SessionAge:  a.SessionAge,
		Avail:       a.Availability,
		Uptimes:     a.Uptimes,
		Sessions:    a.Sessions,
		PowerCycles: a.PowerCycles,
		Weekly:      a.Weekly,
		Equivalence: a.Equivalence,
		Labs2:       a.Labs,
		Capacity:    a.Capacity,
	}, nil
}

// allStreamAny streams either a TBv1 trace file or a segment manifest.
// Manifests are written as uncompressed JSON, so a leading '{' is the
// same content sniff trace.ReadAny keys on — cheap and unambiguous
// against TBv1 magic and the gzip header.
func allStreamAny(path string, workers int) (*analysis.Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var first [1]byte
	_, rerr := io.ReadFull(f, first[:])
	f.Close()
	if rerr == nil && first[0] == '{' {
		m, err := trace.ReadManifest(path)
		if err != nil {
			return nil, err
		}
		return analysis.AllManifest(m, filepath.Dir(path), analysis.Options{})
	}
	c, err := stream.Open(path)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return analysis.AllStream(c, analysis.Options{Workers: workers})
}

// Render writes the full text report: Table 1 (when available), Table 2
// and Figures 2–6 plus the stability analysis.
func (r *Report) Render(w io.Writer) {
	if r.Labs != nil {
		report.Table1(r.Labs).Render(w)
		fmt.Fprintln(w, report.Table1Aggregates(r.Labs))
	}
	report.Table2(r.Table2).Render(w)
	fmt.Fprintf(w, "\n(raw login samples: %d, reclassified as forgotten at >=%s: %d)\n\n",
		r.Table2.Reclass.RawLoginSamples, r.Table2.Threshold, r.Table2.Reclass.Reclassified)

	_, fig2 := report.Figure2(r.SessionAge)
	fig2.Render(w)
	fmt.Fprintf(w, "first session-age bucket at or above 99%% idle: hour %d\n\n",
		r.SessionAge.FirstBucketAtOrAbove(99))

	report.Figure3(r.Avail).Render(w)
	fmt.Fprintln(w)
	report.Figure4Left(r.Uptimes).Render(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, report.Figure4Right(r.Sessions))
	report.PowerCycles(r.PowerCycles).Render(w)
	fmt.Fprintln(w)
	left, right := report.Figure5(r.Weekly)
	left.Render(w)
	fmt.Fprintln(w)
	right.Render(w)
	fmt.Fprintln(w)
	report.Figure6(r.Equivalence).Render(w)
	fmt.Fprintln(w)
	report.LabUsageTable(r.Labs2).Render(w)
	fmt.Fprintln(w)
	report.CapacityTable(r.Capacity).Render(w)
	fmt.Fprintf(w, "\nUnused memory fleet-wide: %.1f%% (the paper reports 42.1%%)\n",
		100-r.Table2.Both.RAMLoadPct)

	fmt.Fprintln(w)
	heat := &report.Heatmap{
		Title:  "User-free machines by hour of week (harvest windows)",
		Values: analysis.FreeMachineHeat(r.Avail),
	}
	heat.Render(w)
	if r.Survival != nil {
		fmt.Fprintf(w, "\n1-hour survival predictor: base rate %.3f, Brier %.4f vs %.4f constant (skill %.1f%%)\n",
			r.SurvivalEv.BaseRate, r.SurvivalEv.Brier, r.SurvivalEv.BaseBrier, 100*r.SurvivalEv.Skill())
		surv := &report.Heatmap{
			Title:  "P(machine up now still up in 1 h) by hour of week",
			Values: hourlyBaseline(r.Survival),
			Lo:     0.5, Hi: 1,
		}
		surv.Render(w)
	}
}

// hourlyBaseline guards against a nil predictor (foreign minimal traces).
func hourlyBaseline(m *predictor.Model) []float64 {
	if m == nil {
		return nil
	}
	return m.HourlyBaseline()
}

// WriteCSVs exports machine-readable versions of every figure into dir,
// creating it if needed.
func (r *Report) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("core: writing %s: %w", name, err)
		}
		return f.Close()
	}
	if err := write("fig2_session_age.csv", func(w io.Writer) error {
		hours := make([]float64, len(r.SessionAge.Buckets))
		counts := make([]float64, len(r.SessionAge.Buckets))
		idle := make([]float64, len(r.SessionAge.Buckets))
		for i, b := range r.SessionAge.Buckets {
			hours[i], counts[i], idle[i] = float64(b.Hour), float64(b.Samples), b.CPUIdlePct
		}
		return report.WriteCSV(w, []string{"hour", "samples", "cpu_idle_pct"}, hours, counts, idle)
	}); err != nil {
		return err
	}
	if err := write("fig3_availability.csv", func(w io.Writer) error {
		iter := make([]float64, len(r.Avail.Points))
		on := make([]float64, len(r.Avail.Points))
		free := make([]float64, len(r.Avail.Points))
		for i, p := range r.Avail.Points {
			iter[i], on[i], free[i] = float64(p.Iter), float64(p.PoweredOn), float64(p.UserFree)
		}
		return report.WriteCSV(w, []string{"iteration", "powered_on", "user_free"}, iter, on, free)
	}); err != nil {
		return err
	}
	if err := write("fig4_uptime_ratios.csv", func(w io.Writer) error {
		rank := make([]float64, len(r.Uptimes))
		ratio := make([]float64, len(r.Uptimes))
		nines := make([]float64, len(r.Uptimes))
		for i, u := range r.Uptimes {
			rank[i], ratio[i], nines[i] = float64(i), u.Ratio, u.Nines
		}
		return report.WriteCSV(w, []string{"rank", "uptime_ratio", "nines"}, rank, ratio, nines)
	}); err != nil {
		return err
	}
	if err := write("fig5_weekly.csv", func(w io.Writer) error {
		return report.WeeklyCSV(w,
			[]string{"cpu_idle_pct", "ram_load_pct", "swap_load_pct", "sent_bps", "recv_bps"},
			&r.Weekly.CPUIdlePct, &r.Weekly.RAMLoadPct, &r.Weekly.SwapLoad,
			&r.Weekly.SentBps, &r.Weekly.RecvBps)
	}); err != nil {
		return err
	}
	if err := write("fig6_equivalence.csv", func(w io.Writer) error {
		return report.WeeklyCSV(w,
			[]string{"total", "occupied", "free"},
			&r.Equivalence.Weekly, &r.Equivalence.WeeklyOccupied, &r.Equivalence.WeeklyFree)
	}); err != nil {
		return err
	}
	return write("lab_usage.csv", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "lab,machines,uptime_pct,occupied_pct,cpu_idle_pct,ram_load_pct,free_ram_mb,free_disk_gb"); err != nil {
			return err
		}
		for _, u := range r.Labs2 {
			if _, err := fmt.Fprintf(w, "%s,%d,%.2f,%.2f,%.2f,%.2f,%.1f,%.2f\n",
				u.Lab, u.Machines, u.UptimePct, u.OccupiedPct, u.CPUIdlePct,
				u.RAMLoadPct, u.FreeRAMMBPerMachine, u.FreeDiskGBPerMachine); err != nil {
				return err
			}
		}
		return nil
	})
}
