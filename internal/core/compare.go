package core

import (
	"fmt"
	"io"
	"math"

	"winlab/internal/report"
)

// paperRef holds one published value and where it comes from.
type paperRef struct {
	name  string
	paper float64
	get   func(*Report) float64
	// tol is the relative deviation (fraction) considered "matching shape";
	// used only to annotate the table, never to fail anything.
	tol float64
}

// paperReferences is the paper's published headline values (Table 2,
// Figures 3/4/6, §5.2.2). They appear here only for side-by-side
// comparison; nothing in the simulator or analysis reads them.
var paperReferences = []paperRef{
	{"Avg uptime, both (%)", 50.2, func(r *Report) float64 { return r.Table2.Both.UptimePct }, 0.10},
	{"Avg uptime, no login (%)", 33.9, func(r *Report) float64 { return r.Table2.NoLogin.UptimePct }, 0.15},
	{"Avg uptime, with login (%)", 16.3, func(r *Report) float64 { return r.Table2.WithLogin.UptimePct }, 0.15},
	{"CPU idle, both (%)", 97.9, func(r *Report) float64 { return r.Table2.Both.CPUIdlePct }, 0.01},
	{"CPU idle, no login (%)", 99.7, func(r *Report) float64 { return r.Table2.NoLogin.CPUIdlePct }, 0.01},
	{"CPU idle, with login (%)", 94.2, func(r *Report) float64 { return r.Table2.WithLogin.CPUIdlePct }, 0.02},
	{"RAM load, no login (%)", 54.8, func(r *Report) float64 { return r.Table2.NoLogin.RAMLoadPct }, 0.10},
	{"RAM load, with login (%)", 67.6, func(r *Report) float64 { return r.Table2.WithLogin.RAMLoadPct }, 0.10},
	{"Swap load, both (%)", 28.0, func(r *Report) float64 { return r.Table2.Both.SwapLoadPct }, 0.15},
	{"Disk used, both (GB)", 13.6, func(r *Report) float64 { return r.Table2.Both.DiskUsedGB }, 0.10},
	{"Sent, with login (bps)", 2601.8, func(r *Report) float64 { return r.Table2.WithLogin.SentBps }, 0.25},
	{"Recv, with login (bps)", 8662.1, func(r *Report) float64 { return r.Table2.WithLogin.RecvBps }, 0.25},
	{"Machines powered on (avg)", 84.87, func(r *Report) float64 { return r.Avail.AvgPoweredOn }, 0.10},
	{"Machines user-free (avg)", 57.29, func(r *Report) float64 { return r.Avail.AvgUserFree }, 0.15},
	{"Forgotten threshold (h)", 10, func(r *Report) float64 { return float64(r.SessionAge.FirstBucketAtOrAbove(99)) }, 0.40},
	{"Detected sessions / day / machine", 10688.0 / 77 / 169, func(r *Report) float64 {
		days := 0.0
		if len(r.Avail.Points) > 1 {
			days = r.Avail.Points[len(r.Avail.Points)-1].Time.Sub(r.Avail.Points[0].Time).Hours() / 24
		}
		if days <= 0 || len(r.Uptimes) == 0 {
			return 0
		}
		return float64(r.Sessions.Count) / days / float64(len(r.Uptimes))
	}, 0.35},
	{"Cycles / machine-day", 1.07, func(r *Report) float64 { return r.PowerCycles.CyclesPerDay }, 0.25},
	{"Cycles invisible to sampling (%)", 30, func(r *Report) float64 { return 100 * r.PowerCycles.UndetectedRatio }, 0.40},
	{"Lifetime uptime/cycle (h)", 6.46, func(r *Report) float64 { return r.PowerCycles.LifetimePerCycle.Hours() }, 0.20},
	{"Equivalence, occupied", 0.26, func(r *Report) float64 { return r.Equivalence.OccupiedRatio }, 0.20},
	{"Equivalence, free", 0.25, func(r *Report) float64 { return r.Equivalence.FreeRatio }, 0.20},
	{"Equivalence, total", 0.51, func(r *Report) float64 { return r.Equivalence.TotalRatio }, 0.15},
}

// ComparePaper renders the side-by-side paper-vs-measured table. The
// "within" column annotates whether the measured value falls inside the
// stated shape tolerance — informational, not a pass/fail gate (the
// substrate is a simulator; see EXPERIMENTS.md).
func (r *Report) ComparePaper(w io.Writer) {
	t := &report.Table{
		Title:   "Paper vs measured (shape comparison; tolerances are informational)",
		Headers: []string{"Metric", "Paper", "Measured", "Dev %", "Within"},
	}
	for _, ref := range paperReferences {
		got := ref.get(r)
		dev := math.Inf(1)
		if ref.paper != 0 {
			dev = (got - ref.paper) / ref.paper
		}
		within := "yes"
		if math.Abs(dev) > ref.tol {
			within = "NO"
		}
		t.AddRow(ref.name,
			fmt.Sprintf("%.2f", ref.paper),
			fmt.Sprintf("%.2f", got),
			fmt.Sprintf("%+.1f", 100*dev),
			within)
	}
	t.Render(w)
}
