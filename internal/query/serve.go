package query

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"winlab/internal/telemetry"
	"winlab/internal/telemetry/httpx"
)

// Root combines the query API with the standard telemetry surface on one
// handler: /api/* routes to the query handler with a single prefix check
// (keeping its zero-allocation cache-hit path out of ServeMux), and
// everything else — /metrics, /vars, /spans, /events, /healthz,
// /debug/pprof/ — to the httpx telemetry mux. reg and ev may be nil.
func Root(api *Handler, reg *telemetry.Registry, ev httpx.EventSource) http.Handler {
	mux := http.NewServeMux()
	httpx.Mount(mux, reg, ev)
	return &root{api: api, rest: mux}
}

type root struct {
	api  *Handler
	rest http.Handler
}

func (r *root) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if strings.HasPrefix(req.URL.Path, "/api/") {
		r.api.ServeHTTP(w, req)
		return
	}
	r.rest.ServeHTTP(w, req)
}

// Server is a running query HTTP server.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve binds addr (":0" for an ephemeral port) and serves handler in a
// background goroutine.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("query: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	s := &Server{srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
