package query

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/anomaly"
	"winlab/internal/trace"
)

var t0 = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC) // a Monday

// testDataset builds a small deterministic trace: machines m0..m(n-1) in
// two labs, iters iterations 15 minutes apart, machine k answering
// every iteration whose number is divisible by (k%3)+1, odd machines
// carrying a session.
func testDataset(n, iters int) *trace.Dataset {
	period := 15 * time.Minute
	d := &trace.Dataset{
		Start:  t0,
		End:    t0.Add(time.Duration(iters) * period),
		Period: period,
	}
	for k := 0; k < n; k++ {
		lab := "LabA"
		if k%2 == 1 {
			lab = "LabB"
		}
		d.Machines = append(d.Machines, trace.MachineInfo{
			ID: fmt.Sprintf("m%d", k), Lab: lab, RAMMB: 256, DiskGB: 40,
			IntIndex: 1, FPIndex: 1,
		})
	}
	for i := 0; i < iters; i++ {
		at := t0.Add(time.Duration(i) * period)
		it := trace.Iteration{Iter: i, Start: at, End: at.Add(time.Minute), Attempted: n}
		for k := 0; k < n; k++ {
			if i%((k%3)+1) != 0 {
				continue
			}
			boot := t0.Add(-time.Hour)
			s := trace.Sample{
				Iter: i, Time: at.Add(time.Duration(k) * time.Second),
				Machine: d.Machines[k].ID, Lab: d.Machines[k].Lab,
				BootTime: boot, Uptime: at.Sub(boot),
				CPUIdle:    time.Duration(float64(at.Sub(boot)) * 0.9),
				MemLoadPct: 40 + k, SwapLoadPct: 5,
				DiskGB: 40, FreeDiskGB: 30,
				PowerCycles: int64(10 + i/4), PowerOnHours: int64(100 + i),
				SentBytes: uint64(i) * 1000, RecvBytes: uint64(i) * 5000,
			}
			if k%2 == 1 {
				s.SessionUser = "student"
				s.SessionStart = boot
			}
			it.Responded++
			d.Samples = append(d.Samples, s)
		}
		d.Iterations = append(d.Iterations, it)
	}
	return d
}

func testHandler(t testing.TB, gate *Gate) (*Handler, *Store) {
	t.Helper()
	st := NewStore(analysis.Options{})
	st.Publish(testDataset(6, 3*96))
	h := NewHandler(Config{Store: st, Gate: gate})
	return h, st
}

var allPaths = []string{
	"/api/epoch", "/api/summary", "/api/availability", "/api/labs",
	"/api/machines", "/api/weekly", "/api/equivalence", "/api/uptimes",
	"/api/heatmap", "/api/events",
}

// TestEndpointsServeValidJSON hits every endpoint and checks status,
// content type, and that the body is parseable JSON with the right epoch.
func TestEndpointsServeValidJSON(t *testing.T) {
	h, _ := testHandler(t, nil)
	for _, path := range allPaths {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", path, ct)
		}
		var doc map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", path, err)
		}
		if path == "/api/events" {
			continue // no Meta block
		}
		var epoch any
		if path == "/api/epoch" {
			epoch = doc["epoch"]
		} else {
			meta, ok := doc["meta"].(map[string]any)
			if !ok {
				t.Fatalf("%s: missing meta block", path)
			}
			epoch = meta["epoch"]
		}
		if epoch != float64(1) {
			t.Fatalf("%s: epoch = %v, want 1", path, epoch)
		}
	}
}

func TestUnknownPathAndMethod(t *testing.T) {
	h, _ := testHandler(t, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path: status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/summary", nil))
	if rec.Code != 405 {
		t.Fatalf("POST: status %d, want 405", rec.Code)
	}
	if rec.Header().Get("Allow") != "GET, HEAD" {
		t.Fatalf("POST: Allow = %q", rec.Header().Get("Allow"))
	}
}

func TestNoSnapshotYet(t *testing.T) {
	h := NewHandler(Config{Store: NewStore(analysis.Options{})})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/summary", nil))
	if rec.Code != 503 {
		t.Fatalf("empty store: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("empty store: Retry-After = %q", rec.Header().Get("Retry-After"))
	}
}

// TestETagAcrossEpochAdvance exercises the full validator lifecycle:
// a GET yields a strong ETag; If-None-Match with it yields 304 with no
// body; publishing a new dataset changes the ETag so the same
// If-None-Match yields 200 with a fresh body and validator.
func TestETagAcrossEpochAdvance(t *testing.T) {
	h, st := testHandler(t, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/summary", nil))
	etag := rec.Header().Get("Etag")
	if rec.Code != 200 || etag == "" {
		t.Fatalf("first GET: status %d etag %q", rec.Code, etag)
	}
	if etag[0] != '"' || etag[len(etag)-1] != '"' {
		t.Fatalf("etag %q is not a quoted strong validator", etag)
	}

	req := httptest.NewRequest("GET", "/api/summary", nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 304 {
		t.Fatalf("revalidation: status %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("304 carried a %d-byte body", rec.Body.Len())
	}
	if got := rec.Header().Get("Etag"); got != etag {
		t.Fatalf("304 etag %q, want %q", got, etag)
	}

	// Epoch advance: different data → different fingerprint → new ETag.
	st.Publish(testDataset(6, 4*96))
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/api/summary", nil)
	req.Header.Set("If-None-Match", etag)
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("after epoch advance: status %d, want 200", rec.Code)
	}
	etag2 := rec.Header().Get("Etag")
	if etag2 == etag {
		t.Fatalf("etag did not change across epoch advance: %q", etag)
	}
	req.Header.Set("If-None-Match", etag2)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 304 {
		t.Fatalf("revalidation at epoch 2: status %d, want 304", rec.Code)
	}
}

// TestSameDataSameFingerprint: two stores over identical datasets emit
// the same fingerprint (the cross-process validator property), and the
// ETag still differs only if the epoch differs.
func TestSameDataSameFingerprint(t *testing.T) {
	a := NewStore(analysis.Options{})
	b := NewStore(analysis.Options{})
	a.Publish(testDataset(4, 96))
	b.Publish(testDataset(4, 96))
	fa := a.Current().Aggregates().meta.Fingerprint
	fb := b.Current().Aggregates().meta.Fingerprint
	if fa != fb {
		t.Fatalf("fingerprints differ over identical data: %s vs %s", fa, fb)
	}
	b2 := NewStore(analysis.Options{})
	b2.Publish(testDataset(4, 97))
	if fb2 := b2.Current().Aggregates().meta.Fingerprint; fb2 == fa {
		t.Fatalf("fingerprint unchanged across different data: %s", fb2)
	}
}

func TestHeadRequest(t *testing.T) {
	h, _ := testHandler(t, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("HEAD", "/api/summary", nil))
	if rec.Code != 200 {
		t.Fatalf("HEAD: status %d", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("HEAD carried a body")
	}
	if rec.Header().Get("Etag") == "" {
		t.Fatalf("HEAD missing ETag")
	}
}

// TestStreamModeServesResultsWithoutDataset publishes pre-computed
// results (the AllStream path): every endpoint works except the heatmap,
// which needs the raw samples and reports 404.
func TestStreamModeServesResultsWithoutDataset(t *testing.T) {
	ds := testDataset(6, 96)
	res := analysis.All(ds, analysis.Options{})
	st := NewStore(analysis.Options{})
	st.PublishResults(res, Info{
		Start: ds.Start, End: ds.End, Period: ds.Period,
		Iterations: len(ds.Iterations), Samples: len(ds.Samples), Machines: len(ds.Machines),
	})
	h := NewHandler(Config{Store: st})
	for _, path := range allPaths {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		want := 200
		if path == "/api/heatmap" {
			want = 404
		}
		if rec.Code != want {
			t.Fatalf("%s in stream mode: status %d, want %d", path, rec.Code, want)
		}
	}
}

// TestGateSheds saturates a 1-slot, 0-queue gate and checks the shed
// response; then releases and checks recovery.
func TestGateSheds(t *testing.T) {
	g := NewGate(1, 0, time.Millisecond)
	h, _ := testHandler(t, g)

	if !g.Acquire() { // occupy the only slot out-of-band
		t.Fatal("could not acquire the only slot")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/summary", nil))
	if rec.Code != 503 {
		t.Fatalf("saturated: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("saturated: Retry-After = %q, want 1", rec.Header().Get("Retry-After"))
	}
	g.Release()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/summary", nil))
	if rec.Code != 200 {
		t.Fatalf("after release: status %d, want 200", rec.Code)
	}
}

func TestGateQueueWaits(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	if !g.Acquire() {
		t.Fatal("first acquire failed")
	}
	done := make(chan bool)
	go func() { done <- g.Acquire() }() // waits in the queue
	time.Sleep(10 * time.Millisecond)
	g.Release()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("queued request was shed despite a slot freeing in time")
		}
	case <-time.After(time.Second):
		t.Fatal("queued request never admitted")
	}
	g.Release()
}

func TestEventsEndpoint(t *testing.T) {
	st := NewStore(analysis.Options{})
	st.Publish(testDataset(4, 96))
	ev := NewEventLog(8, st.Epoch)
	ring := anomaly.NewRing(16)
	detach := ev.Attach(ring)
	defer detach()

	ring.Add(anomaly.Event{Time: t0, Kind: "outage", Severity: "warn", Machine: "m1", Score: 2})
	st.Publish(testDataset(4, 97)) // epoch 2
	ring.Add(anomaly.Event{Time: t0.Add(time.Hour), Kind: "mass-outage", Severity: "crit", Score: 5})

	h := NewHandler(Config{Store: st, Events: ev})
	get := func(url string) map[string]any {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", url, rec.Code)
		}
		var doc map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("%s: bad JSON: %v", url, err)
		}
		return doc
	}

	doc := get("/api/events")
	if n := len(doc["events"].([]any)); n != 2 {
		t.Fatalf("all events: %d, want 2", n)
	}
	if doc["total"] != float64(2) || doc["epoch"] != float64(2) {
		t.Fatalf("header: total=%v epoch=%v", doc["total"], doc["epoch"])
	}
	first := doc["events"].([]any)[0].(map[string]any)
	if first["epoch"] != float64(1) {
		t.Fatalf("first event epoch = %v, want 1", first["epoch"])
	}

	doc = get("/api/events?since=2")
	if n := len(doc["events"].([]any)); n != 1 {
		t.Fatalf("since epoch 2: %d events, want 1", n)
	}
	doc = get("/api/events?since=" + t0.Add(30*time.Minute).Format(time.RFC3339))
	if n := len(doc["events"].([]any)); n != 1 {
		t.Fatalf("since time: %d events, want 1", n)
	}
	doc = get("/api/events?max=1")
	evs := doc["events"].([]any)
	if len(evs) != 1 {
		t.Fatalf("max=1: %d events", len(evs))
	}
	if evs[0].(map[string]any)["epoch"] != float64(2) {
		t.Fatal("max=1 did not keep the most recent event")
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/events?since=garbage", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: status %d, want 400", rec.Code)
	}
}

func TestEventLogEviction(t *testing.T) {
	l := NewEventLog(3, nil)
	for i := 0; i < 5; i++ {
		l.Add(anomaly.Event{Time: t0.Add(time.Duration(i) * time.Minute), Kind: "k"})
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	recs, total := l.snapshot(0, time.Time{}, 0)
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(recs) != 3 || !recs[0].Event.Time.Equal(t0.Add(2*time.Minute)) {
		t.Fatalf("retained wrong window: %+v", recs)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Event.Time.Before(recs[i-1].Event.Time) {
			t.Fatal("retained events out of arrival order")
		}
	}
}

// TestColdCostOncePerEpoch asserts the analysis pass runs once no matter
// how many concurrent first requests arrive.
func TestColdCostOncePerEpoch(t *testing.T) {
	st := NewStore(analysis.Options{})
	st.Publish(testDataset(6, 96))
	s := st.Current()
	const readers = 16
	aggs := make([]*aggregates, readers)
	done := make(chan int, readers)
	for i := 0; i < readers; i++ {
		go func(i int) {
			aggs[i] = s.Aggregates()
			done <- i
		}(i)
	}
	for i := 0; i < readers; i++ {
		<-done
	}
	for i := 1; i < readers; i++ {
		if aggs[i] != aggs[0] {
			t.Fatal("concurrent readers got different aggregate builds")
		}
	}
}

// fakeResponseWriter is the benchmark/alloc-test sink: header map
// allocated once, body discarded.
type fakeResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *fakeResponseWriter) Header() http.Header { return w.h }
func (w *fakeResponseWriter) WriteHeader(c int)   { w.status = c }
func (w *fakeResponseWriter) Write(b []byte) (int, error) {
	w.n += len(b)
	return len(b), nil
}

// TestCacheHitZeroAllocs is the PR's headline micro-guarantee: after
// warmup, a cache-hit GET performs zero heap allocations end-to-end
// through the handler (the httptest recorder is replaced by a reusable
// writer, as a real server reuses its connection state).
func TestCacheHitZeroAllocs(t *testing.T) {
	h, _ := testHandler(t, NewGate(64, 64, time.Second))
	for _, path := range []string{"/api/epoch", "/api/summary", "/api/availability"} {
		req := httptest.NewRequest("GET", path, nil)
		w := &fakeResponseWriter{h: make(http.Header, 4)}
		h.ServeHTTP(w, req) // warm the cache
		if w.status == 404 || w.n == 0 {
			t.Fatalf("%s: warmup failed (status %d, %d bytes)", path, w.status, w.n)
		}
		allocs := testing.AllocsPerRun(100, func() {
			h.ServeHTTP(w, req)
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs/op on cache hit, want 0", path, allocs)
		}
	}
}

func TestNotModifiedZeroAllocs(t *testing.T) {
	h, _ := testHandler(t, nil)
	req := httptest.NewRequest("GET", "/api/summary", nil)
	w := &fakeResponseWriter{h: make(http.Header, 4)}
	h.ServeHTTP(w, req)
	etag := w.h["Etag"][0]
	req.Header.Set("If-None-Match", etag)
	allocs := testing.AllocsPerRun(100, func() {
		h.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Errorf("304 path: %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	h, _ := testHandler(b, NewGate(64, 64, time.Second))
	req := httptest.NewRequest("GET", "/api/summary", nil)
	w := &fakeResponseWriter{h: make(http.Header, 4)}
	h.ServeHTTP(w, req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
}

func BenchmarkCacheHitParallel(b *testing.B) {
	h, _ := testHandler(b, NewGate(64, 64, time.Second))
	warm := httptest.NewRequest("GET", "/api/summary", nil)
	w0 := &fakeResponseWriter{h: make(http.Header, 4)}
	h.ServeHTTP(w0, warm)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := httptest.NewRequest("GET", "/api/summary", nil)
		w := &fakeResponseWriter{h: make(http.Header, 4)}
		for pb.Next() {
			h.ServeHTTP(w, req)
		}
	})
}
