package query

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"winlab/internal/telemetry"
)

// Pre-built header values: the cache-hit path assigns these []string
// slices into the header map directly (canonical textproto keys), so a
// warm request allocates nothing.
var (
	jsonCT      = []string{"application/json"}
	noCacheCC   = []string{"no-cache"}
	retryAfter1 = []string{"1"}
	allowGet    = []string{"GET, HEAD"}
)

// Config wires a Handler. Only Store is required.
type Config struct {
	Store  *Store
	Gate   *Gate               // nil admits everything
	Events *EventLog           // nil serves an empty event history
	Reg    *telemetry.Registry // nil disables metrics

	// MaxEvents bounds one /api/events response; 0 means 1000.
	MaxEvents int
}

// Handler serves the query API:
//
//	/api/epoch         the Meta block alone (cheap change detection)
//	/api/summary       headline numbers of every paper artefact
//	/api/availability  per-iteration powered-on / user-free series
//	/api/labs          per-laboratory usage
//	/api/machines      per-machine uptime ratios
//	/api/weekly        Figure 5 weekly profiles
//	/api/equivalence   cluster-equivalence ratios + weekly curves
//	/api/uptimes       uptime-ratio histogram + threshold counts
//	/api/heatmap       hour-of-week fleet and per-machine heatmaps
//	/api/events        anomaly event history (?since=epoch|RFC3339, dynamic)
//
// Every snapshot endpoint responds from the per-epoch cache with a
// strong ETag derived from the snapshot fingerprint; If-None-Match
// revalidation returns 304 without touching the body. A warm cache hit
// performs zero heap allocations.
type Handler struct {
	store     *Store
	gate      *Gate
	events    *EventLog
	maxEvents int

	// Metric handles are resolved once here; all are nil-receiver-safe,
	// so a nil registry costs nothing per request.
	reqs        *telemetry.Counter
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	notModified *telemetry.Counter
	shedCount   *telemetry.Counter
	inflight    *telemetry.Gauge
	latency     *telemetry.Histogram
}

// NewHandler builds the query API handler.
func NewHandler(cfg Config) *Handler {
	h := &Handler{
		store:     cfg.Store,
		gate:      cfg.Gate,
		events:    cfg.Events,
		maxEvents: cfg.MaxEvents,
	}
	if h.maxEvents <= 0 {
		h.maxEvents = 1000
	}
	if r := cfg.Reg; r != nil {
		h.reqs = r.Counter("query_requests_total")
		h.hits = r.Counter("query_cache_hits_total")
		h.misses = r.Counter("query_cache_misses_total")
		h.notModified = r.Counter("query_not_modified_total")
		h.shedCount = r.Counter("query_shed_total")
		h.inflight = r.Gauge("query_inflight")
		h.latency = r.Histogram("query_latency_seconds", nil)
	}
	return h
}

// endpointID routes a path with a plain string switch — no mux, no map,
// no per-request allocation.
func endpointID(path string) int {
	switch path {
	case "/api/epoch":
		return epEpoch
	case "/api/summary":
		return epSummary
	case "/api/availability":
		return epAvailability
	case "/api/labs":
		return epLabs
	case "/api/machines":
		return epMachines
	case "/api/weekly":
		return epWeekly
	case "/api/equivalence":
		return epEquivalence
	case "/api/uptimes":
		return epUptimes
	case "/api/heatmap":
		return epHeatmap
	}
	return -1
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header()["Allow"] = allowGet
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	path := r.URL.Path
	if path == "/api/events" {
		h.serveEvents(w, r)
		return
	}
	ep := endpointID(path)
	if ep < 0 {
		http.NotFound(w, r)
		return
	}
	h.reqs.Inc()
	if !h.gate.Acquire() {
		h.shedCount.Inc()
		w.Header()["Retry-After"] = retryAfter1
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	defer h.gate.Release()
	h.inflight.Add(1)
	defer h.inflight.Add(-1)
	start := time.Now()

	s := h.store.Current()
	if s == nil { // nothing published yet
		w.Header()["Retry-After"] = retryAfter1
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	a := s.Aggregates()

	hdr := w.Header()
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, a.etag) {
		hdr["Etag"] = a.etagHdr
		w.WriteHeader(http.StatusNotModified)
		h.notModified.Inc()
		h.latency.Observe(time.Since(start))
		return
	}

	hit := s.cache[ep].Load() != nil
	b := s.body(ep)
	if b == nil { // aggregate unavailable in this snapshot (stream-mode heatmap)
		http.NotFound(w, r)
		return
	}
	if hit {
		h.hits.Inc()
	} else {
		h.misses.Inc()
	}
	hdr["Content-Type"] = jsonCT
	hdr["Etag"] = a.etagHdr
	hdr["Cache-Control"] = noCacheCC
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
	} else {
		w.Write(b)
	}
	h.latency.Observe(time.Since(start))
}

// etagMatch reports whether an If-None-Match header value matches the
// snapshot's ETag. Exact single-validator match is the fast path; "*"
// and comma-separated lists are honoured without allocating.
func etagMatch(inm, etag string) bool {
	return inm == etag || inm == "*" || strings.Contains(inm, etag)
}

// serveEvents handles /api/events?since=<epoch|RFC3339>&max=<n>. The
// response is built per request — the event history moves between
// epochs — so it takes the admission gate like any other dynamic work
// but bypasses the snapshot cache.
func (h *Handler) serveEvents(w http.ResponseWriter, r *http.Request) {
	h.reqs.Inc()
	if !h.gate.Acquire() {
		h.shedCount.Inc()
		w.Header()["Retry-After"] = retryAfter1
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	defer h.gate.Release()
	h.inflight.Add(1)
	defer h.inflight.Add(-1)
	start := time.Now()

	var sinceEpoch uint64
	var sinceTime time.Time
	if since := r.URL.Query().Get("since"); since != "" {
		if n, err := strconv.ParseUint(since, 10, 64); err == nil {
			sinceEpoch = n
		} else if t, err := time.Parse(time.RFC3339, since); err == nil {
			sinceTime = t
		} else {
			http.Error(w, "bad since: want epoch number or RFC3339 time", http.StatusBadRequest)
			return
		}
	}
	max := h.maxEvents
	if ms := r.URL.Query().Get("max"); ms != "" {
		if n, err := strconv.Atoi(ms); err == nil && n > 0 && n < max {
			max = n
		}
	}
	b := h.events.AppendJSON(nil, sinceEpoch, sinceTime, max)
	w.Header()["Content-Type"] = jsonCT
	w.Write(b)
	h.latency.Observe(time.Since(start))
}
