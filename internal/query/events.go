package query

import (
	"sync"
	"time"

	"winlab/internal/anomaly"
)

// DefaultEventCap bounds the retained anomaly event history.
const DefaultEventCap = 4096

// EventLog retains a bounded history of anomaly events, each tagged with
// the snapshot epoch that was current when it arrived. It feeds the
// /api/events endpoint — the one dynamic endpoint, since events occur
// between epochs and must be visible before the next publish.
//
// Live mode attaches to the detection pipeline's anomaly.Ring via
// Attach; replay mode loads a recorded -events-out JSONL file via Load.
type EventLog struct {
	epoch func() uint64 // current-epoch supplier; nil means 0

	mu    sync.Mutex
	buf   []EventRecord // ring storage
	head  int           // index of the oldest record when full
	n     int           // live records
	total uint64        // records ever added, including evicted
}

// NewEventLog returns a log retaining at most capacity events, tagging
// each with epoch() at arrival time. capacity < 1 means DefaultEventCap.
func NewEventLog(capacity int, epoch func() uint64) *EventLog {
	if capacity < 1 {
		capacity = DefaultEventCap
	}
	return &EventLog{epoch: epoch, buf: make([]EventRecord, 0, capacity)}
}

// Attach subscribes the log to a detection ring. Every event the ring
// books is appended here with the then-current epoch. The returned
// detach unsubscribes; it is safe to call more than once.
func (l *EventLog) Attach(r *anomaly.Ring) (detach func()) {
	if l == nil || r == nil {
		return func() {}
	}
	return r.Tap(l.Add)
}

// Add appends one event with the current epoch.
func (l *EventLog) Add(e anomaly.Event) {
	if l == nil {
		return
	}
	var ep uint64
	if l.epoch != nil {
		ep = l.epoch()
	}
	l.mu.Lock()
	l.push(EventRecord{Epoch: ep, Event: e})
	l.mu.Unlock()
}

// Load bulk-appends recorded events (a replayed -events-out JSONL file),
// all tagged with the given epoch.
func (l *EventLog) Load(es []anomaly.Event, epoch uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	for _, e := range es {
		l.push(EventRecord{Epoch: epoch, Event: e})
	}
	l.mu.Unlock()
}

// push books one record, evicting the oldest when full. Caller holds mu.
func (l *EventLog) push(r EventRecord) {
	l.total++
	if l.n < cap(l.buf) {
		l.buf = append(l.buf, r)
		l.n++
		return
	}
	l.buf[l.head] = r
	l.head = (l.head + 1) % l.n
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// snapshot copies the retained records in arrival order, filtered to
// epoch >= sinceEpoch and event time >= sinceTime (zero values disable a
// filter), bounded to the most recent max (max < 1 means all).
func (l *EventLog) snapshot(sinceEpoch uint64, sinceTime time.Time, max int) (recs []EventRecord, total uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs = make([]EventRecord, 0, l.n)
	for i := 0; i < l.n; i++ {
		r := &l.buf[(l.head+i)%l.n]
		if r.Epoch < sinceEpoch {
			continue
		}
		if !sinceTime.IsZero() && r.Event.Time.Before(sinceTime) {
			continue
		}
		recs = append(recs, *r)
	}
	if max > 0 && len(recs) > max {
		recs = recs[len(recs)-max:]
	}
	return recs, l.total
}

// AppendJSON appends the /api/events response document. It is the only
// response built per request rather than per epoch.
func (l *EventLog) AppendJSON(dst []byte, sinceEpoch uint64, sinceTime time.Time, max int) []byte {
	ev := &Events{}
	if l != nil {
		if l.epoch != nil {
			ev.Epoch = l.epoch()
		}
		ev.Events, ev.Total = l.snapshot(sinceEpoch, sinceTime, max)
	} else {
		ev.Events = []EventRecord{}
	}
	return appendEvents(dst, ev)
}
