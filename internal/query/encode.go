package query

import (
	"math"
	"strconv"
	"time"
	"unicode/utf8"

	"winlab/internal/anomaly"
)

// The response encoders are append-style and byte-identical to
// encoding/json (field order, HTML-safe string escaping, RFC3339Nano
// times, shortest-round-trip floats) — the same contract as the
// telemetry span and anomaly event encoders, pinned by the golden tests
// in encode_test.go. They run only on the cache-miss path (once per
// endpoint per epoch); cache hits serve the bytes these produced.

func appendMeta(dst []byte, m *Meta) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendUint(dst, m.Epoch, 10)
	dst = append(dst, `,"fingerprint":`...)
	dst = appendJSONString(dst, m.Fingerprint)
	dst = append(dst, `,"start":`...)
	dst = appendJSONTime(dst, m.Start)
	dst = append(dst, `,"end":`...)
	dst = appendJSONTime(dst, m.End)
	dst = append(dst, `,"period_sec":`...)
	dst = appendJSONFloat(dst, m.PeriodSec)
	dst = append(dst, `,"iterations":`...)
	dst = strconv.AppendInt(dst, int64(m.Iterations), 10)
	dst = append(dst, `,"samples":`...)
	dst = strconv.AppendInt(dst, int64(m.Samples), 10)
	dst = append(dst, `,"machines":`...)
	dst = strconv.AppendInt(dst, int64(m.Machines), 10)
	return append(dst, '}')
}

func appendColumn(dst []byte, c *Column) []byte {
	dst = append(dst, `{"samples":`...)
	dst = strconv.AppendInt(dst, int64(c.Samples), 10)
	dst = append(dst, `,"uptime_pct":`...)
	dst = appendJSONFloat(dst, c.UptimePct)
	dst = append(dst, `,"cpu_idle_pct":`...)
	dst = appendJSONFloat(dst, c.CPUIdlePct)
	dst = append(dst, `,"ram_load_pct":`...)
	dst = appendJSONFloat(dst, c.RAMLoadPct)
	dst = append(dst, `,"swap_load_pct":`...)
	dst = appendJSONFloat(dst, c.SwapLoadPct)
	dst = append(dst, `,"disk_used_gb":`...)
	dst = appendJSONFloat(dst, c.DiskUsedGB)
	dst = append(dst, `,"sent_bps":`...)
	dst = appendJSONFloat(dst, c.SentBps)
	dst = append(dst, `,"recv_bps":`...)
	dst = appendJSONFloat(dst, c.RecvBps)
	return append(dst, '}')
}

func appendSummary(dst []byte, s *Summary) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &s.Meta)
	dst = append(dst, `,"no_login":`...)
	dst = appendColumn(dst, &s.NoLogin)
	dst = append(dst, `,"with_login":`...)
	dst = appendColumn(dst, &s.WithLogin)
	dst = append(dst, `,"both":`...)
	dst = appendColumn(dst, &s.Both)
	dst = append(dst, `,"avg_powered_on":`...)
	dst = appendJSONFloat(dst, s.AvgPoweredOn)
	dst = append(dst, `,"avg_user_free":`...)
	dst = appendJSONFloat(dst, s.AvgUserFree)
	dst = append(dst, `,"equivalence_occupied":`...)
	dst = appendJSONFloat(dst, s.EquivalenceOccupied)
	dst = append(dst, `,"equivalence_free":`...)
	dst = appendJSONFloat(dst, s.EquivalenceFree)
	dst = append(dst, `,"equivalence_total":`...)
	dst = appendJSONFloat(dst, s.EquivalenceTotal)
	dst = append(dst, `,"power_cycles_total":`...)
	dst = strconv.AppendInt(dst, s.PowerCyclesTotal, 10)
	dst = append(dst, `,"power_cycles_per_day":`...)
	dst = appendJSONFloat(dst, s.PowerCyclesPerDay)
	dst = append(dst, `,"lifetime_per_cycle_h":`...)
	dst = appendJSONFloat(dst, s.LifetimePerCycleH)
	dst = append(dst, `,"session_count":`...)
	dst = strconv.AppendInt(dst, int64(s.SessionCount), 10)
	dst = append(dst, `,"session_mean_h":`...)
	dst = appendJSONFloat(dst, s.SessionMeanH)
	dst = append(dst, `,"fleet_free_ram_gb":`...)
	dst = appendJSONFloat(dst, s.FleetFreeRAMGB)
	dst = append(dst, `,"fleet_free_disk_tb":`...)
	dst = appendJSONFloat(dst, s.FleetFreeDiskTB)
	return append(dst, '}')
}

func appendAvailability(dst []byte, a *Availability) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &a.Meta)
	dst = append(dst, `,"points":`...)
	if a.Points == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range a.Points {
			if i > 0 {
				dst = append(dst, ',')
			}
			p := &a.Points[i]
			dst = append(dst, `{"iter":`...)
			dst = strconv.AppendInt(dst, int64(p.Iter), 10)
			dst = append(dst, `,"t":`...)
			dst = strconv.AppendInt(dst, p.T, 10)
			dst = append(dst, `,"on":`...)
			dst = strconv.AppendInt(dst, int64(p.On), 10)
			dst = append(dst, `,"free":`...)
			dst = strconv.AppendInt(dst, int64(p.Free), 10)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendLabs(dst []byte, ls *Labs) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &ls.Meta)
	dst = append(dst, `,"labs":`...)
	if ls.Labs == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range ls.Labs {
			if i > 0 {
				dst = append(dst, ',')
			}
			l := &ls.Labs[i]
			dst = append(dst, `{"lab":`...)
			dst = appendJSONString(dst, l.Lab)
			dst = append(dst, `,"machines":`...)
			dst = strconv.AppendInt(dst, int64(l.Machines), 10)
			dst = append(dst, `,"uptime_pct":`...)
			dst = appendJSONFloat(dst, l.UptimePct)
			dst = append(dst, `,"occupied_pct":`...)
			dst = appendJSONFloat(dst, l.OccupiedPct)
			dst = append(dst, `,"cpu_idle_pct":`...)
			dst = appendJSONFloat(dst, l.CPUIdlePct)
			dst = append(dst, `,"ram_load_pct":`...)
			dst = appendJSONFloat(dst, l.RAMLoadPct)
			dst = append(dst, `,"free_ram_mb":`...)
			dst = appendJSONFloat(dst, l.FreeRAMMB)
			dst = append(dst, `,"free_disk_gb":`...)
			dst = appendJSONFloat(dst, l.FreeDiskGB)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendMachines(dst []byte, ms *Machines) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &ms.Meta)
	dst = append(dst, `,"machines":`...)
	if ms.Machines == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range ms.Machines {
			if i > 0 {
				dst = append(dst, ',')
			}
			m := &ms.Machines[i]
			dst = append(dst, `{"id":`...)
			dst = appendJSONString(dst, m.ID)
			dst = append(dst, `,"lab":`...)
			dst = appendJSONString(dst, m.Lab)
			dst = append(dst, `,"uptime_ratio":`...)
			dst = appendJSONFloat(dst, m.UptimeRatio)
			dst = append(dst, `,"nines":`...)
			dst = appendJSONFloat(dst, m.Nines)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendWeekly(dst []byte, w *Weekly) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &w.Meta)
	dst = append(dst, `,"slot_minutes":`...)
	dst = strconv.AppendInt(dst, int64(w.SlotMinutes), 10)
	dst = append(dst, `,"cpu_idle_pct":`...)
	dst = appendFloats(dst, w.CPUIdlePct)
	dst = append(dst, `,"ram_load_pct":`...)
	dst = appendFloats(dst, w.RAMLoadPct)
	dst = append(dst, `,"swap_load_pct":`...)
	dst = appendFloats(dst, w.SwapLoadPct)
	dst = append(dst, `,"sent_bps":`...)
	dst = appendFloats(dst, w.SentBps)
	dst = append(dst, `,"recv_bps":`...)
	dst = appendFloats(dst, w.RecvBps)
	return append(dst, '}')
}

func appendEquivalence(dst []byte, e *Equivalence) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &e.Meta)
	dst = append(dst, `,"occupied":`...)
	dst = appendJSONFloat(dst, e.Occupied)
	dst = append(dst, `,"free":`...)
	dst = appendJSONFloat(dst, e.Free)
	dst = append(dst, `,"total":`...)
	dst = appendJSONFloat(dst, e.Total)
	dst = append(dst, `,"weekly_total":`...)
	dst = appendFloats(dst, e.WeeklyTotal)
	dst = append(dst, `,"weekly_occupied":`...)
	dst = appendFloats(dst, e.WeeklyOccupied)
	dst = append(dst, `,"weekly_free":`...)
	dst = appendFloats(dst, e.WeeklyFree)
	return append(dst, '}')
}

func appendUptimes(dst []byte, u *Uptimes) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &u.Meta)
	dst = append(dst, `,"bins":`...)
	dst = strconv.AppendInt(dst, int64(u.Bins), 10)
	dst = append(dst, `,"counts":`...)
	dst = appendInts(dst, u.Counts)
	dst = append(dst, `,"above_50":`...)
	dst = strconv.AppendInt(dst, int64(u.Above50), 10)
	dst = append(dst, `,"above_80":`...)
	dst = strconv.AppendInt(dst, int64(u.Above80), 10)
	dst = append(dst, `,"above_90":`...)
	dst = strconv.AppendInt(dst, int64(u.Above90), 10)
	return append(dst, '}')
}

func appendHeatmap(dst []byte, h *Heatmap) []byte {
	dst = append(dst, `{"meta":`...)
	dst = appendMeta(dst, &h.Meta)
	dst = append(dst, `,"hours":`...)
	dst = strconv.AppendInt(dst, int64(h.Hours), 10)
	dst = append(dst, `,"free_machines":`...)
	dst = appendFloats(dst, h.FreeMachines)
	dst = append(dst, `,"machines":`...)
	if h.Machines == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range h.Machines {
			if i > 0 {
				dst = append(dst, ',')
			}
			r := &h.Machines[i]
			dst = append(dst, `{"id":`...)
			dst = appendJSONString(dst, r.ID)
			dst = append(dst, `,"lab":`...)
			dst = appendJSONString(dst, r.Lab)
			dst = append(dst, `,"uptime":`...)
			dst = appendFloats(dst, r.Uptime)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendEvents(dst []byte, e *Events) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendUint(dst, e.Epoch, 10)
	dst = append(dst, `,"total":`...)
	dst = strconv.AppendUint(dst, e.Total, 10)
	dst = append(dst, `,"events":`...)
	if e.Events == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range e.Events {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendEventRecord(dst, &e.Events[i])
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendEventRecord(dst []byte, r *EventRecord) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendUint(dst, r.Epoch, 10)
	dst = append(dst, `,"event":`...)
	dst = anomaly.AppendEventJSON(dst, r.Event)
	return append(dst, '}')
}

// appendFloats appends a []float64 as encoding/json would (nil → null).
func appendFloats(dst []byte, xs []float64) []byte {
	if xs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONFloat(dst, x)
	}
	return append(dst, ']')
}

// appendInts appends a []int as encoding/json would (nil → null).
func appendInts(dst []byte, xs []int) []byte {
	if xs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(x), 10)
	}
	return append(dst, ']')
}

// appendJSONTime appends t as encoding/json marshals time.Time: a quoted
// RFC3339Nano string.
func appendJSONTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

// appendJSONFloat appends f the way encoding/json's floatEncoder does:
// strconv shortest form, with %e forced for very small/large magnitudes
// and the exponent compacted (e-05 → e-5). NaN/±Inf (which encoding/json
// rejects) encode as 0 — the aggregates are NaN-free by the stats
// layer's non-finite handling, so this is a guard, not a supported
// value. (Same contract as internal/anomaly and internal/telemetry;
// each copy is pinned against encoding/json by its own golden test.)
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// strconv writes "2.5e-05"; json wants "2.5e-5".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, mirroring encoding/json's
// default escaping: quotes, backslashes, control characters, the
// HTML-sensitive <, >, &, the line separators U+2028/U+2029, and � for
// invalid UTF-8 bytes. (Third copy after internal/telemetry and
// internal/anomaly, which keep theirs unexported; every copy is pinned
// against encoding/json by a golden test.)
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		switch {
		case r == utf8.RuneError && size == 1:
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r < 0x20 || r == '<' || r == '>' || r == '&':
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[byte(r)>>4], hexDigits[byte(r)&0xf])
		case r == ' ' || r == ' ':
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}
