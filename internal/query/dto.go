package query

import (
	"time"

	"winlab/internal/anomaly"
)

// The response DTOs mirror the analysis artefacts in wire-friendly form:
// flat fields, snake_case keys, unix-second timestamps in dense series.
// Every DTO has a matching hand-rolled append encoder in encode.go that
// is pinned byte-identical to encoding/json by the golden tests — the
// struct tags here are the contract the golden tests marshal against,
// not what the hot path executes.

// Meta identifies the snapshot epoch a response was computed from. Every
// cached response embeds it, and /api/epoch serves it alone as the cheap
// polling endpoint: a dashboard re-fetches the heavy endpoints only when
// the epoch advanced.
type Meta struct {
	Epoch       uint64    `json:"epoch"`
	Fingerprint string    `json:"fingerprint"` // hex trace.Index fingerprint
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	PeriodSec   float64   `json:"period_sec"`
	Iterations  int       `json:"iterations"`
	Samples     int       `json:"samples"`
	Machines    int       `json:"machines"`
}

// Column is one Table 2 column (paper §4.2).
type Column struct {
	Samples     int     `json:"samples"`
	UptimePct   float64 `json:"uptime_pct"`
	CPUIdlePct  float64 `json:"cpu_idle_pct"`
	RAMLoadPct  float64 `json:"ram_load_pct"`
	SwapLoadPct float64 `json:"swap_load_pct"`
	DiskUsedGB  float64 `json:"disk_used_gb"`
	SentBps     float64 `json:"sent_bps"`
	RecvBps     float64 `json:"recv_bps"`
}

// Summary is /api/summary: the headline numbers of every paper section
// in one document — Table 2, the Figure 3 averages, the §5.4 equivalence
// ratios, the §5.2 stability figures and the §6 harvest capacity.
type Summary struct {
	Meta                Meta    `json:"meta"`
	NoLogin             Column  `json:"no_login"`
	WithLogin           Column  `json:"with_login"`
	Both                Column  `json:"both"`
	AvgPoweredOn        float64 `json:"avg_powered_on"`
	AvgUserFree         float64 `json:"avg_user_free"`
	EquivalenceOccupied float64 `json:"equivalence_occupied"`
	EquivalenceFree     float64 `json:"equivalence_free"`
	EquivalenceTotal    float64 `json:"equivalence_total"`
	PowerCyclesTotal    int64   `json:"power_cycles_total"`
	PowerCyclesPerDay   float64 `json:"power_cycles_per_day"`
	LifetimePerCycleH   float64 `json:"lifetime_per_cycle_h"`
	SessionCount        int     `json:"session_count"`
	SessionMeanH        float64 `json:"session_mean_h"`
	FleetFreeRAMGB      float64 `json:"fleet_free_ram_gb"`
	FleetFreeDiskTB     float64 `json:"fleet_free_disk_tb"`
}

// AvailabilityPoint is one iteration of the Figure 3 series.
type AvailabilityPoint struct {
	Iter int   `json:"iter"`
	T    int64 `json:"t"` // unix seconds
	On   int   `json:"on"`
	Free int   `json:"free"`
}

// Availability is /api/availability: the fleet-wide per-iteration series.
type Availability struct {
	Meta   Meta                `json:"meta"`
	Points []AvailabilityPoint `json:"points"`
}

// Lab is one laboratory's usage summary (per-lab availability).
type Lab struct {
	Lab         string  `json:"lab"`
	Machines    int     `json:"machines"`
	UptimePct   float64 `json:"uptime_pct"`
	OccupiedPct float64 `json:"occupied_pct"`
	CPUIdlePct  float64 `json:"cpu_idle_pct"`
	RAMLoadPct  float64 `json:"ram_load_pct"`
	FreeRAMMB   float64 `json:"free_ram_mb"`
	FreeDiskGB  float64 `json:"free_disk_gb"`
}

// Labs is /api/labs.
type Labs struct {
	Meta Meta  `json:"meta"`
	Labs []Lab `json:"labs"`
}

// Machine is one machine's availability (per-machine availability).
type Machine struct {
	ID          string  `json:"id"`
	Lab         string  `json:"lab"`
	UptimeRatio float64 `json:"uptime_ratio"`
	Nines       float64 `json:"nines"`
}

// Machines is /api/machines, sorted by descending uptime like Figure 4.
type Machines struct {
	Meta     Meta      `json:"meta"`
	Machines []Machine `json:"machines"`
}

// Weekly is /api/weekly: the Figure 5 weekly profiles as per-slot means
// (672 15-minute slots, Monday-first).
type Weekly struct {
	Meta        Meta      `json:"meta"`
	SlotMinutes int       `json:"slot_minutes"`
	CPUIdlePct  []float64 `json:"cpu_idle_pct"`
	RAMLoadPct  []float64 `json:"ram_load_pct"`
	SwapLoadPct []float64 `json:"swap_load_pct"`
	SentBps     []float64 `json:"sent_bps"`
	RecvBps     []float64 `json:"recv_bps"`
}

// Equivalence is /api/equivalence: the §5.4 cluster-equivalence ratios
// and their weekly distribution (Figure 6).
type Equivalence struct {
	Meta           Meta      `json:"meta"`
	Occupied       float64   `json:"occupied"`
	Free           float64   `json:"free"`
	Total          float64   `json:"total"`
	WeeklyTotal    []float64 `json:"weekly_total"`
	WeeklyOccupied []float64 `json:"weekly_occupied"`
	WeeklyFree     []float64 `json:"weekly_free"`
}

// Uptimes is /api/uptimes: the uptime-ratio histogram plus the paper's
// threshold counts (30 machines above 0.5, <10 above 0.8, none above 0.9).
type Uptimes struct {
	Meta    Meta  `json:"meta"`
	Bins    int   `json:"bins"`
	Counts  []int `json:"counts"`
	Above50 int   `json:"above_50"`
	Above80 int   `json:"above_80"`
	Above90 int   `json:"above_90"`
}

// MachineHeatRow is one machine's hour-of-week availability row.
type MachineHeatRow struct {
	ID     string    `json:"id"`
	Lab    string    `json:"lab"`
	Uptime []float64 `json:"uptime"`
}

// Heatmap is /api/heatmap: the fleet harvest-window grid and the
// per-machine hour-of-week availability heatmap (168 cells each,
// Monday 00:00 first).
type Heatmap struct {
	Meta         Meta             `json:"meta"`
	Hours        int              `json:"hours"`
	FreeMachines []float64        `json:"free_machines"`
	Machines     []MachineHeatRow `json:"machines"`
}

// EventRecord is one anomaly event tagged with the snapshot epoch that
// was current when it was observed.
type EventRecord struct {
	Epoch uint64        `json:"epoch"`
	Event anomaly.Event `json:"event"`
}

// Events is /api/events: the retained anomaly event history. Unlike the
// snapshot endpoints it is dynamic (events arrive between epochs), so it
// carries its own epoch/total header instead of a Meta block.
type Events struct {
	Epoch  uint64        `json:"epoch"`
	Total  uint64        `json:"total"` // events ever logged, incl. evicted
	Events []EventRecord `json:"events"`
}
