// Package query is the high-throughput serving layer: an HTTP/JSON API
// over live and historical traces where every response is a materialized
// aggregate served from a snapshot-isolated cache.
//
// The design has three moving parts:
//
//   - A Store holds the current Snapshot behind an atomic pointer.
//     Publishing a new dataset (or pre-computed results) advances the
//     epoch and swaps the pointer; readers never take a lock.
//
//   - A Snapshot owns an immutable dataset clone (or pre-computed
//     analysis.Results). Its aggregates — one analysis.All pass, the
//     heatmaps, the Meta block, the ETag — are built lazily exactly once
//     (sync.Once), so the cold cost is one analysis pass per epoch no
//     matter how many requests race in.
//
//   - Each Snapshot carries a per-endpoint response cache: the first
//     request for an endpoint encodes its JSON body with the hand-rolled
//     append encoders and publishes the bytes with a CAS; every later
//     request serves the same []byte. Cache invalidation is trivial
//     because it never happens — a new epoch is a new Snapshot with an
//     empty cache, and the old one is garbage.
//
// The frozen trace.Index fingerprint is the snapshot primitive: it names
// the dataset contents, makes the ETag strong, and lets two processes
// serving the same trace emit the same validator.
package query

import (
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/stats"
	"winlab/internal/trace"
)

// Endpoint identifiers index the per-snapshot response cache. /api/events
// is deliberately absent: events arrive between epochs, so that endpoint
// is dynamic (see events.go).
const (
	epEpoch = iota
	epSummary
	epAvailability
	epLabs
	epMachines
	epWeekly
	epEquivalence
	epUptimes
	epHeatmap
	numEndpoints
)

// Info describes a dataset that is not materialized in memory — the
// streaming case, where analysis.AllStream consumed a TBv1 file and only
// the Results survive. PublishResults callers fill it from the stream
// header and cursor statistics.
type Info struct {
	Fingerprint uint64 // 0 means derive one from the counts below
	Start, End  time.Time
	Period      time.Duration
	Iterations  int
	Samples     int
	Machines    int
}

// Store is the publication point: collectors (or loaders) publish
// datasets, the HTTP handler reads the current snapshot. All methods are
// safe for concurrent use; Current is a single atomic load.
type Store struct {
	opts      analysis.Options
	threshold time.Duration
	bins      int

	mu    sync.Mutex // serializes publishers only
	epoch atomic.Uint64
	cur   atomic.Pointer[Snapshot]
}

// NewStore returns a Store that analyses published datasets with opts.
// Zero opts reproduce the paper's parameters.
func NewStore(opts analysis.Options) *Store {
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = analysis.DefaultForgottenThreshold
	}
	return &Store{opts: opts, threshold: threshold, bins: 20}
}

// Publish installs ds as the new current snapshot and returns its epoch.
// The caller transfers ownership: ds must not be mutated afterwards
// (ddc.DatasetSink.SnapshotEvery publishes clones, which satisfies this
// by construction). Publishing is cheap — analysis is deferred to the
// first reader that needs it.
func (st *Store) Publish(ds *trace.Dataset) uint64 {
	if ds == nil {
		return st.epoch.Load()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.epoch.Add(1)
	st.cur.Store(&Snapshot{epoch: e, ds: ds, opts: st.opts, threshold: st.threshold, bins: st.bins})
	return e
}

// PublishResults installs pre-computed analysis results (the out-of-core
// path: analysis.AllStream over a TBv1 file). No dataset is retained, so
// the heatmap endpoint — which needs per-sample timestamps — reports the
// aggregate as unavailable.
func (st *Store) PublishResults(res *analysis.Results, info Info) uint64 {
	if res == nil {
		return st.epoch.Load()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.epoch.Add(1)
	st.cur.Store(&Snapshot{epoch: e, res: res, info: info, opts: st.opts, threshold: st.threshold, bins: st.bins})
	return e
}

// Current returns the current snapshot, or nil before the first publish.
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Epoch returns the current epoch (0 before the first publish).
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// Snapshot is one immutable published dataset plus everything derived
// from it. All derived state is built exactly once; afterwards every
// access is read-only and lock-free.
type Snapshot struct {
	epoch     uint64
	ds        *trace.Dataset    // nil in stream mode
	res       *analysis.Results // pre-set in stream mode, else built lazily
	info      Info              // stream mode only
	opts      analysis.Options
	threshold time.Duration
	bins      int

	once  sync.Once
	agg   atomic.Pointer[aggregates]
	cache [numEndpoints]atomic.Pointer[[]byte]
}

// Epoch returns the snapshot's epoch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// aggregates is the materialized per-epoch state the handler serves from.
type aggregates struct {
	meta    Meta
	etag    string   // strong validator: "<epoch>-<hex fingerprint>"
	etagHdr []string // the ETag as a ready-made header value slice
	res     *analysis.Results
	heat    *analysis.HeatmapData // nil in stream mode
	labOf   map[string]string     // machine → lab; empty in stream mode
}

// Aggregates returns the snapshot's materialized aggregates, computing
// them on first use. Concurrent callers block on the one computation and
// then share its result — the "cold path amortized to one analysis pass
// per epoch" guarantee. The warm path is a single atomic load: the
// method-value closure for once.Do is only formed when the pointer is
// still nil, keeping warm calls allocation-free.
func (s *Snapshot) Aggregates() *aggregates {
	if a := s.agg.Load(); a != nil {
		return a
	}
	s.once.Do(s.build)
	return s.agg.Load()
}

func (s *Snapshot) build() {
	a := &aggregates{}
	if s.ds != nil {
		idx := s.ds.Index() // freezes: one sort, shared by everything below
		fp := idx.Fingerprint()
		a.res = analysis.All(s.ds, s.opts)
		a.heat = analysis.Heatmap(s.ds, s.threshold)
		a.labOf = make(map[string]string, len(s.ds.Machines))
		for _, m := range s.ds.Machines {
			a.labOf[m.ID] = m.Lab
		}
		a.meta = Meta{
			Epoch:       s.epoch,
			Fingerprint: fingerprintHex(fp),
			Start:       s.ds.Start,
			End:         s.ds.End,
			PeriodSec:   s.ds.Period.Seconds(),
			Iterations:  len(s.ds.Iterations),
			Samples:     len(s.ds.Samples),
			Machines:    len(s.ds.Machines),
		}
	} else {
		a.res = s.res
		info := s.info
		if info.Iterations == 0 {
			info.Iterations = len(a.res.Availability.Points)
		}
		if info.Samples == 0 {
			info.Samples = a.res.Table2.Both.Samples
		}
		if info.Machines == 0 {
			info.Machines = len(a.res.Uptimes)
		}
		fp := info.Fingerprint
		if fp == 0 {
			fp = infoFingerprint(info)
		}
		a.meta = Meta{
			Epoch:       s.epoch,
			Fingerprint: fingerprintHex(fp),
			Start:       info.Start,
			End:         info.End,
			PeriodSec:   info.Period.Seconds(),
			Iterations:  info.Iterations,
			Samples:     info.Samples,
			Machines:    info.Machines,
		}
	}
	a.etag = `"` + strconv.FormatUint(s.epoch, 10) + "-" + a.meta.Fingerprint + `"`
	a.etagHdr = []string{a.etag}
	s.agg.Store(a)
}

// fingerprintHex renders a fingerprint the way the ETag carries it.
func fingerprintHex(fp uint64) string {
	const hexLen = 16
	var buf [hexLen]byte
	for i := hexLen - 1; i >= 0; i-- {
		buf[i] = hexDigits[fp&0xf]
		fp >>= 4
	}
	return string(buf[:])
}

// infoFingerprint digests an Info whose producer had no index fingerprint
// to offer. Weaker than the index digest (no sample content), but the
// ETag also carries the epoch, so staleness within one process is still
// impossible.
func infoFingerprint(info Info) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(info.Start.UnixNano()))
	put(uint64(info.End.UnixNano()))
	put(uint64(info.Period))
	put(uint64(info.Iterations))
	put(uint64(info.Samples))
	put(uint64(info.Machines))
	return h.Sum64()
}

// body returns the cached encoded response for endpoint ep, encoding it
// on first use. A nil return means the aggregate is unavailable in this
// snapshot (heatmap in stream mode). Concurrent first requests may race
// to encode; the CAS keeps the cache single-valued and the losers' work
// is identical bytes.
func (s *Snapshot) body(ep int) []byte {
	if p := s.cache[ep].Load(); p != nil {
		return *p
	}
	b := s.encode(ep)
	if b == nil {
		return nil
	}
	if s.cache[ep].CompareAndSwap(nil, &b) {
		return b
	}
	return *s.cache[ep].Load()
}

func (s *Snapshot) encode(ep int) []byte {
	a := s.Aggregates()
	res := a.res
	switch ep {
	case epEpoch:
		return appendMeta(nil, &a.meta)

	case epSummary:
		sm := &Summary{
			Meta:                a.meta,
			NoLogin:             dtoColumn(&res.Table2.NoLogin),
			WithLogin:           dtoColumn(&res.Table2.WithLogin),
			Both:                dtoColumn(&res.Table2.Both),
			AvgPoweredOn:        res.Availability.AvgPoweredOn,
			AvgUserFree:         res.Availability.AvgUserFree,
			EquivalenceOccupied: res.Equivalence.OccupiedRatio,
			EquivalenceFree:     res.Equivalence.FreeRatio,
			EquivalenceTotal:    res.Equivalence.TotalRatio,
			PowerCyclesTotal:    res.PowerCycles.TotalCycles,
			PowerCyclesPerDay:   res.PowerCycles.CyclesPerDay,
			LifetimePerCycleH:   res.PowerCycles.LifetimePerCycle.Hours(),
			SessionCount:        res.Sessions.Count,
			SessionMeanH:        res.Sessions.Mean.Hours(),
			FleetFreeRAMGB:      res.Capacity.FleetFreeRAMGB,
			FleetFreeDiskTB:     res.Capacity.FleetFreeDiskTB,
		}
		return appendSummary(nil, sm)

	case epAvailability:
		av := &Availability{Meta: a.meta, Points: make([]AvailabilityPoint, len(res.Availability.Points))}
		for i, p := range res.Availability.Points {
			av.Points[i] = AvailabilityPoint{Iter: p.Iter, T: p.Time.Unix(), On: p.PoweredOn, Free: p.UserFree}
		}
		return appendAvailability(nil, av)

	case epLabs:
		ls := &Labs{Meta: a.meta, Labs: make([]Lab, len(res.Labs))}
		for i, l := range res.Labs {
			ls.Labs[i] = Lab{
				Lab:         l.Lab,
				Machines:    l.Machines,
				UptimePct:   l.UptimePct,
				OccupiedPct: l.OccupiedPct,
				CPUIdlePct:  l.CPUIdlePct,
				RAMLoadPct:  l.RAMLoadPct,
				FreeRAMMB:   l.FreeRAMMBPerMachine,
				FreeDiskGB:  l.FreeDiskGBPerMachine,
			}
		}
		return appendLabs(nil, ls)

	case epMachines:
		ms := &Machines{Meta: a.meta, Machines: make([]Machine, len(res.Uptimes))}
		for i, u := range res.Uptimes {
			ms.Machines[i] = Machine{ID: u.Machine, Lab: a.labOf[u.Machine], UptimeRatio: u.Ratio, Nines: u.Nines}
		}
		return appendMachines(nil, ms)

	case epWeekly:
		if res.Weekly == nil {
			return nil
		}
		w := &Weekly{
			Meta:        a.meta,
			SlotMinutes: 7 * 24 * 60 / stats.SlotsPerWeek,
			CPUIdlePct:  res.Weekly.CPUIdlePct.Means(),
			RAMLoadPct:  res.Weekly.RAMLoadPct.Means(),
			SwapLoadPct: res.Weekly.SwapLoad.Means(),
			SentBps:     res.Weekly.SentBps.Means(),
			RecvBps:     res.Weekly.RecvBps.Means(),
		}
		return appendWeekly(nil, w)

	case epEquivalence:
		eq := &Equivalence{
			Meta:           a.meta,
			Occupied:       res.Equivalence.OccupiedRatio,
			Free:           res.Equivalence.FreeRatio,
			Total:          res.Equivalence.TotalRatio,
			WeeklyTotal:    res.Equivalence.Weekly.Means(),
			WeeklyOccupied: res.Equivalence.WeeklyOccupied.Means(),
			WeeklyFree:     res.Equivalence.WeeklyFree.Means(),
		}
		return appendEquivalence(nil, eq)

	case epUptimes:
		u := &Uptimes{
			Meta:    a.meta,
			Bins:    s.bins,
			Counts:  analysis.UptimeHistogram(res.Uptimes, s.bins),
			Above50: analysis.CountAbove(res.Uptimes, 0.5),
			Above80: analysis.CountAbove(res.Uptimes, 0.8),
			Above90: analysis.CountAbove(res.Uptimes, 0.9),
		}
		return appendUptimes(nil, u)

	case epHeatmap:
		if a.heat == nil {
			return nil
		}
		h := &Heatmap{
			Meta:         a.meta,
			Hours:        analysis.HeatHours,
			FreeMachines: a.heat.FreeMachines,
			Machines:     make([]MachineHeatRow, len(a.heat.Machines)),
		}
		for i, m := range a.heat.Machines {
			h.Machines[i] = MachineHeatRow{ID: m.Machine, Lab: m.Lab, Uptime: m.Uptime}
		}
		return appendHeatmap(nil, h)
	}
	return nil
}

func dtoColumn(c *analysis.Column) Column {
	return Column{
		Samples:     c.Samples,
		UptimePct:   c.UptimePct,
		CPUIdlePct:  c.CPUIdlePct,
		RAMLoadPct:  c.RAMLoadPct,
		SwapLoadPct: c.SwapLoadPct,
		DiskUsedGB:  c.DiskUsedGB,
		SentBps:     c.SentBps,
		RecvBps:     c.RecvBps,
	}
}
