package query

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"winlab/internal/analysis"
	"winlab/internal/ddc"
	"winlab/internal/machine"
	"winlab/internal/smart"
	"winlab/internal/trace"
)

// fleetSource serves snapshots for a set of simulated machines.
type fleetSource struct{ ms map[string]*machine.Machine }

func (s fleetSource) Snapshot(id string, at time.Time) (machine.Snapshot, bool) {
	m := s.ms[id]
	if m == nil {
		return machine.Snapshot{}, false
	}
	return m.Snapshot(at)
}

// TestConcurrentCommitVsReaderSnapshot is the snapshot-isolation race
// test (run it under -race): one writer goroutine drives a live
// collection — probing machines, committing samples into a DatasetSink,
// publishing a snapshot into the Store every k iterations — while
// reader goroutines hammer the HTTP handler. Afterwards every response
// any reader ever observed must equal the analysis of some committed
// prefix of the final trace: exactly e·k iterations for epoch e, the
// right sample count, the prefix's own index fingerprint, and the
// prefix's analysis output. A torn read — a clone taken mid-iteration,
// shared slice storage, a stale aggregate — fails the fingerprint or
// value comparison.
func TestConcurrentCommitVsReaderSnapshot(t *testing.T) {
	const (
		nMachines = 8
		nIters    = 40
		every     = 4
	)
	period := 15 * time.Minute

	src := fleetSource{ms: map[string]*machine.Machine{}}
	var infos []trace.MachineInfo
	ids := make([]string, nMachines)
	for k := 0; k < nMachines; k++ {
		id := string(rune('A' + k))
		ids[k] = id
		hw := machine.Hardware{CPUModel: "P4", CPUGHz: 2.4, RAMMB: 256, DiskGB: 40}
		m := machine.New(id, "L01", hw, smart.NewDisk("D-"+id, 40))
		m.PowerOn(t0.Add(-time.Hour))
		src.ms[id] = m
		infos = append(infos, trace.MachineInfo{ID: id, Lab: "L01", RAMMB: 256, DiskGB: 40, IntIndex: 1, FPIndex: 1})
	}

	end := t0.Add(nIters * period)
	sink := ddc.NewDatasetSink(t0, end, period, infos)
	st := NewStore(analysis.Options{})
	detach := sink.SnapshotEvery(every, func(ds *trace.Dataset) { st.Publish(ds) })
	defer detach()
	h := NewHandler(Config{Store: st})

	// Readers: record every (epoch → meta, summary stat) pair observed.
	type obs struct {
		fingerprint  string
		iterations   float64
		samples      float64
		avgPoweredOn float64
	}
	var obsMu sync.Mutex
	seen := map[uint64][]obs{}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/summary", nil))
				if rec.Code != 200 {
					continue // nothing published yet
				}
				var doc struct {
					Meta struct {
						Epoch       uint64  `json:"epoch"`
						Fingerprint string  `json:"fingerprint"`
						Iterations  float64 `json:"iterations"`
						Samples     float64 `json:"samples"`
					} `json:"meta"`
					AvgPoweredOn float64 `json:"avg_powered_on"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
					t.Errorf("reader: bad JSON: %v", err)
					return
				}
				obsMu.Lock()
				seen[doc.Meta.Epoch] = append(seen[doc.Meta.Epoch], obs{
					fingerprint:  doc.Meta.Fingerprint,
					iterations:   doc.Meta.Iterations,
					samples:      doc.Meta.Samples,
					avgPoweredOn: doc.AvgPoweredOn,
				})
				obsMu.Unlock()
			}
		}()
	}

	// Writer: the live collection. Machines power-cycle mid-run so the
	// committed data actually varies between epochs.
	now := t0
	exec := &ddc.Direct{Source: src, Now: func() time.Time { return now }}
	for i := 0; i < nIters; i++ {
		now = t0.Add(time.Duration(i) * period)
		if i == 10 {
			src.ms[ids[0]].PowerOff(now)
		}
		if i == 20 {
			src.ms[ids[0]].PowerOn(now)
			src.ms[ids[1]].Login(now, "student")
		}
		responded := 0
		for _, id := range ids {
			if !src.ms[id].Powered() {
				continue
			}
			out, err := exec.Exec(id)
			sink.Post(i, id, out, err)
			if err == nil {
				responded++
			}
		}
		sink.OnIteration(ddc.IterationInfo{
			Iter: i, Start: now, End: now.Add(time.Minute),
			Attempted: nMachines, Responded: responded,
		})
		if (i+1)%every == 0 {
			// Give the readers a scheduling window per published epoch so
			// the test actually interleaves commits with reads.
			time.Sleep(2 * time.Millisecond)
		}
	}
	close(done)
	readers.Wait()

	final, err := sink.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("readers observed no epochs")
	}

	// Every observation must match the committed prefix its epoch names.
	for epoch, os := range seen {
		k := int(epoch) * every
		if k > len(final.Iterations) {
			t.Fatalf("epoch %d implies %d iterations, trace has %d", epoch, k, len(final.Iterations))
		}
		prefix := &trace.Dataset{
			Start: final.Start, End: final.End, Period: final.Period,
			Machines:   final.Machines,
			Iterations: final.Iterations[:k],
		}
		boundary := prefix.Iterations[k-1].Iter
		for i := range final.Samples {
			if final.Samples[i].Iter <= boundary {
				prefix.Samples = append(prefix.Samples, final.Samples[i])
			}
		}
		wantFP := fingerprintHex(prefix.Index().Fingerprint())
		wantAvg := analysis.Availability(prefix, analysis.DefaultForgottenThreshold).AvgPoweredOn
		for _, o := range os {
			if o.fingerprint != wantFP {
				t.Fatalf("epoch %d: observed fingerprint %s, prefix has %s (torn snapshot)", epoch, o.fingerprint, wantFP)
			}
			if int(o.iterations) != k {
				t.Fatalf("epoch %d: observed %v iterations, want %d", epoch, o.iterations, k)
			}
			if int(o.samples) != len(prefix.Samples) {
				t.Fatalf("epoch %d: observed %v samples, want %d", epoch, o.samples, len(prefix.Samples))
			}
			if o.avgPoweredOn != wantAvg {
				t.Fatalf("epoch %d: observed avg_powered_on %v, prefix analysis says %v", epoch, o.avgPoweredOn, wantAvg)
			}
		}
	}
}
