package query

import (
	"time"
)

// Gate is the admission controller: a bounded-concurrency,
// bounded-queue, queue-deadline load shedder. The happy path — a free
// execution slot — is one non-blocking channel receive, zero
// allocations. When all slots are busy a request may wait in a bounded
// queue for at most Timeout; a full queue or an expired wait sheds the
// request (the handler turns that into 503 + Retry-After).
//
// Shedding early is the point: under saturation the server keeps serving
// admitted requests at pre-saturation latency instead of queueing
// everything into collapse.
type Gate struct {
	sem     chan struct{} // execution slots, pre-filled
	queue   chan struct{} // waiting slots, pre-filled
	timeout time.Duration
}

// NewGate returns a gate admitting at most inflight concurrent requests,
// with at most queue waiters, each waiting at most timeout for a slot.
// inflight < 1 returns nil — the nil *Gate admits everything, so callers
// wire an optional gate without branching.
func NewGate(inflight, queue int, timeout time.Duration) *Gate {
	if inflight < 1 {
		return nil
	}
	if queue < 0 {
		queue = 0
	}
	if timeout <= 0 {
		timeout = 50 * time.Millisecond
	}
	g := &Gate{
		sem:     make(chan struct{}, inflight),
		queue:   make(chan struct{}, queue),
		timeout: timeout,
	}
	for i := 0; i < inflight; i++ {
		g.sem <- struct{}{}
	}
	for i := 0; i < queue; i++ {
		g.queue <- struct{}{}
	}
	return g
}

// Acquire tries to admit a request. It returns true when the caller
// holds an execution slot and must Release it, false when the request
// was shed.
func (g *Gate) Acquire() bool {
	if g == nil {
		return true
	}
	select {
	case <-g.sem: // fast path: free slot, no allocation, no timer
		return true
	default:
	}
	select {
	case <-g.queue: // claim a waiting slot or shed immediately
	default:
		return false
	}
	t := time.NewTimer(g.timeout)
	defer t.Stop()
	select {
	case <-g.sem:
		g.queue <- struct{}{}
		return true
	case <-t.C:
		g.queue <- struct{}{}
		return false
	}
}

// Release returns an execution slot taken by a successful Acquire.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.sem <- struct{}{}
}
