package query

import (
	"encoding/json"
	"testing"
	"time"

	"winlab/internal/anomaly"
)

// The golden tests pin every hand-rolled encoder byte-identical to
// encoding/json over the DTO struct tags — the same contract the
// telemetry and anomaly encoders carry. If a DTO field is added or
// reordered without updating its encoder, these fail.

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func testMeta() Meta {
	return Meta{
		Epoch:       42,
		Fingerprint: "00a1b2c3d4e5f607",
		Start:       time.Date(2003, 10, 6, 8, 0, 0, 0, time.UTC),
		End:         time.Date(2003, 12, 1, 8, 30, 15, 123456789, time.UTC),
		PeriodSec:   900,
		Iterations:  5376,
		Samples:     456000,
		Machines:    169,
	}
}

func TestGoldenMeta(t *testing.T) {
	m := testMeta()
	if got, want := string(appendMeta(nil, &m)), mustJSON(t, m); got != want {
		t.Errorf("meta:\n got %s\nwant %s", got, want)
	}
	// Non-UTC zone and sub-second precision must round-trip identically.
	loc := time.FixedZone("WET", 3600)
	m.Start = time.Date(2003, 10, 6, 8, 0, 0, 5000, loc)
	if got, want := string(appendMeta(nil, &m)), mustJSON(t, m); got != want {
		t.Errorf("meta with zone:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenSummary(t *testing.T) {
	s := Summary{
		Meta:    testMeta(),
		NoLogin: Column{Samples: 1, UptimePct: 39.04, CPUIdlePct: 97.78, SentBps: 1234.5678},
		WithLogin: Column{
			Samples: 2, UptimePct: 41.98, CPUIdlePct: 89.63, RAMLoadPct: 54.81,
			SwapLoadPct: 20.1, DiskUsedGB: 5.77, SentBps: 6543, RecvBps: 29177,
		},
		Both:                Column{Samples: 3},
		AvgPoweredOn:        84.87,
		AvgUserFree:         57.29,
		EquivalenceOccupied: 0.26,
		EquivalenceFree:     0.25,
		EquivalenceTotal:    0.51,
		PowerCyclesTotal:    13871,
		PowerCyclesPerDay:   1.07,
		LifetimePerCycleH:   6.46,
		SessionCount:        10688,
		SessionMeanH:        15.92,
		FleetFreeRAMGB:      21.5,
		FleetFreeDiskTB:     4.2,
	}
	if got, want := string(appendSummary(nil, &s)), mustJSON(t, s); got != want {
		t.Errorf("summary:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenAvailability(t *testing.T) {
	a := Availability{
		Meta: testMeta(),
		Points: []AvailabilityPoint{
			{Iter: 0, T: 1065427200, On: 100, Free: 57},
			{Iter: 1, T: 1065428100, On: 0, Free: 0},
		},
	}
	if got, want := string(appendAvailability(nil, &a)), mustJSON(t, a); got != want {
		t.Errorf("availability:\n got %s\nwant %s", got, want)
	}
	a.Points = nil
	if got, want := string(appendAvailability(nil, &a)), mustJSON(t, a); got != want {
		t.Errorf("availability nil points:\n got %s\nwant %s", got, want)
	}
	a.Points = []AvailabilityPoint{}
	if got, want := string(appendAvailability(nil, &a)), mustJSON(t, a); got != want {
		t.Errorf("availability empty points:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenLabs(t *testing.T) {
	l := Labs{
		Meta: testMeta(),
		Labs: []Lab{
			{Lab: "Lab <A> & \"B\"", Machines: 20, UptimePct: 48.1, OccupiedPct: 22.3,
				CPUIdlePct: 93.5, RAMLoadPct: 55.2, FreeRAMMB: 101.7, FreeDiskGB: 29.9},
			{Lab: "sótão\n"},
		},
	}
	if got, want := string(appendLabs(nil, &l)), mustJSON(t, l); got != want {
		t.Errorf("labs:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenMachines(t *testing.T) {
	m := Machines{
		Meta: testMeta(),
		Machines: []Machine{
			{ID: "lab1-pc07", Lab: "lab1", UptimeRatio: 0.512345678901, Nines: 0.311},
			{ID: "", Lab: "", UptimeRatio: 0, Nines: 0},
		},
	}
	if got, want := string(appendMachines(nil, &m)), mustJSON(t, m); got != want {
		t.Errorf("machines:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenWeekly(t *testing.T) {
	w := Weekly{
		Meta:        testMeta(),
		SlotMinutes: 15,
		CPUIdlePct:  []float64{97.1, 0, 2.5e-7, 1e21, 1e-6},
		RAMLoadPct:  []float64{},
		SwapLoadPct: nil,
		SentBps:     []float64{-0.0001},
		RecvBps:     []float64{123456789.123},
	}
	if got, want := string(appendWeekly(nil, &w)), mustJSON(t, w); got != want {
		t.Errorf("weekly:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenEquivalence(t *testing.T) {
	e := Equivalence{
		Meta: testMeta(), Occupied: 0.26, Free: 0.25, Total: 0.51,
		WeeklyTotal:    []float64{0.5, 0.49},
		WeeklyOccupied: []float64{0.3},
		WeeklyFree:     nil,
	}
	if got, want := string(appendEquivalence(nil, &e)), mustJSON(t, e); got != want {
		t.Errorf("equivalence:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenUptimes(t *testing.T) {
	u := Uptimes{
		Meta: testMeta(), Bins: 20,
		Counts:  []int{0, 3, 17, 42, 0},
		Above50: 30, Above80: 9, Above90: 0,
	}
	if got, want := string(appendUptimes(nil, &u)), mustJSON(t, u); got != want {
		t.Errorf("uptimes:\n got %s\nwant %s", got, want)
	}
	u.Counts = nil
	if got, want := string(appendUptimes(nil, &u)), mustJSON(t, u); got != want {
		t.Errorf("uptimes nil counts:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenHeatmap(t *testing.T) {
	h := Heatmap{
		Meta: testMeta(), Hours: 168,
		FreeMachines: []float64{57.3, 0, 12},
		Machines: []MachineHeatRow{
			{ID: "m1", Lab: "lab1", Uptime: []float64{1, 0.5, 0}},
			{ID: "m2", Lab: "lab2", Uptime: nil},
		},
	}
	if got, want := string(appendHeatmap(nil, &h)), mustJSON(t, h); got != want {
		t.Errorf("heatmap:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenEvents(t *testing.T) {
	e := Events{
		Epoch: 7, Total: 12000,
		Events: []EventRecord{
			{Epoch: 3, Event: anomaly.Event{
				Time: time.Date(2003, 11, 2, 14, 0, 0, 0, time.UTC),
				Kind: "mass-outage", Severity: "crit", Lab: "lab2",
				FirstIter: 100, LastIter: 104, Score: 7.25, Detail: "42 machines <dark>",
			}},
			{Epoch: 7, Event: anomaly.Event{
				Time: time.Date(2003, 11, 3, 9, 15, 0, 0, time.UTC),
				Kind: "flapping", Severity: "warn", Machine: "lab1-pc03",
				FirstIter: 200, LastIter: 230, Score: 3.5,
			}},
		},
	}
	if got, want := string(appendEvents(nil, &e)), mustJSON(t, e); got != want {
		t.Errorf("events:\n got %s\nwant %s", got, want)
	}
	e.Events = nil
	if got, want := string(appendEvents(nil, &e)), mustJSON(t, e); got != want {
		t.Errorf("events nil:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenStringEscaping sweeps the string encoder over the escaping
// edge cases encoding/json handles specially.
func TestGoldenStringEscaping(t *testing.T) {
	cases := []string{
		"", "plain", `quote " backslash \`, "tab\tnewline\ncr\r",
		"ctrl \x00\x01\x1f", "html <tag> & entity", "utf8 héllo 世界 ✓",
		"line seps \u2028 \u2029", "invalid \xff\xfe utf8", "mixed\x7f",
	}
	for _, s := range cases {
		got := string(appendJSONString(nil, s))
		want := mustJSON(t, s)
		if got != want {
			t.Errorf("string %q:\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestGoldenFloatFormats sweeps the float encoder over the format
// boundaries where encoding/json switches notation.
func TestGoldenFloatFormats(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, 1e-5, 1e-6, 9.999e-7, 1e-7, 2.5e-20,
		1e20, 1e21, 1.5e21, 123456789012345678901.0, -2.5e-7,
		3.141592653589793, 84.87, 0.1, 1.0 / 3.0,
	}
	for _, f := range cases {
		got := string(appendJSONFloat(nil, f))
		want := mustJSON(t, f)
		if got != want {
			t.Errorf("float %v:\n got %s\nwant %s", f, got, want)
		}
	}
}
