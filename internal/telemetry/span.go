package telemetry

import (
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// DefaultSpanCapacity is the size of the in-memory span ring: large
// enough to hold several iterations of a mid-size fleet, small enough
// that a long-running coordinator's memory stays bounded.
const DefaultSpanCapacity = 4096

// Outcome classifies one probe span.
type Outcome string

const (
	// OutcomeOK: the probe returned a report.
	OutcomeOK Outcome = "ok"
	// OutcomeRetry: the attempt failed and the collector will retry it
	// within the same iteration.
	OutcomeRetry Outcome = "retry"
	// OutcomeTimeout: the final attempt exceeded the per-probe deadline.
	OutcomeTimeout Outcome = "timeout"
	// OutcomeError: the final attempt failed for a non-deadline reason
	// (unreachable host, transport error).
	OutcomeError Outcome = "error"
	// OutcomeBreakerSkip: the machine was not probed because its circuit
	// breaker is open.
	OutcomeBreakerSkip Outcome = "breaker_skip"
	// OutcomeParseError: the probe responded but its report did not parse.
	OutcomeParseError Outcome = "parse_error"
)

// Span records one probe-level event: which machine, which iteration,
// which attempt, how long it took, and how it ended. Latency marshals as
// nanoseconds (Go's native Duration encoding).
type Span struct {
	Time    time.Time     `json:"t"`
	Machine string        `json:"machine"`
	Iter    int           `json:"iter"`
	Attempt int           `json:"attempt"` // 1-based; 0 for breaker skips
	Latency time.Duration `json:"latency_ns"`
	Outcome Outcome       `json:"outcome"`
	Err     string        `json:"err,omitempty"`
}

// SpanRecorder stores spans in a bounded ring and optionally streams
// each one as a JSON line to a writer. All methods are safe on a nil
// receiver (no-ops / zero values) and safe for concurrent use.
type SpanRecorder struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	filled  bool
	total   uint64
	w       io.Writer
	werr    error
	buf     []byte // reused JSONL encode buffer (one span line at a time)
	dropped uint64 // spans not written to w because of a write error
}

func newSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRecorder{ring: make([]Span, capacity)}
}

// SetCapacity resizes the ring, discarding buffered spans. Intended for
// setup time, before recording starts.
func (s *SpanRecorder) SetCapacity(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring = make([]Span, n)
	s.next = 0
	s.filled = false
}

// SetWriter streams every subsequently recorded span to w as one JSON
// object per line (JSONL). A nil writer turns streaming off. The first
// write error stops streaming and is retained (see WriteErr); spans keep
// landing in the ring regardless.
func (s *SpanRecorder) SetWriter(w io.Writer) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.w = w
	s.werr = nil
}

// Record stores one span.
func (s *SpanRecorder) Record(sp Span) {
	if s == nil {
		return
	}
	if sp.Time.IsZero() {
		sp.Time = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	s.ring[s.next] = sp
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.filled = true
	}
	if s.w != nil {
		if s.werr != nil {
			s.dropped++
			return
		}
		// Encode into the recorder's reused buffer — json.Encoder
		// allocated a fresh intermediate per span; appendSpanJSON emits
		// byte-identical JSONL into scratch that amortises to zero.
		s.buf = appendSpanJSON(s.buf[:0], sp)
		if _, err := s.w.Write(s.buf); err != nil {
			s.werr = err
			s.dropped++
		}
	}
}

// appendSpanJSON appends one span encoded exactly as encoding/json would
// (field order, omitempty err, HTML-safe escaping, RFC3339Nano time),
// terminated by a newline — the JSONL line json.Encoder used to produce,
// minus its per-call buffer.
func appendSpanJSON(dst []byte, sp Span) []byte {
	dst = append(dst, `{"t":"`...)
	dst = sp.Time.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","machine":`...)
	dst = appendJSONString(dst, sp.Machine)
	dst = append(dst, `,"iter":`...)
	dst = strconv.AppendInt(dst, int64(sp.Iter), 10)
	dst = append(dst, `,"attempt":`...)
	dst = strconv.AppendInt(dst, int64(sp.Attempt), 10)
	dst = append(dst, `,"latency_ns":`...)
	dst = strconv.AppendInt(dst, int64(sp.Latency), 10)
	dst = append(dst, `,"outcome":`...)
	dst = appendJSONString(dst, string(sp.Outcome))
	if sp.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = appendJSONString(dst, sp.Err)
	}
	return append(dst, '}', '\n')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string, mirroring encoding/json's
// default escaping: quotes, backslashes, control characters, the
// HTML-sensitive <, >, &, the line separators U+2028/U+2029, and �
// for invalid UTF-8 bytes.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		switch {
		case r == utf8.RuneError && size == 1:
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r < 0x20 || r == '<' || r == '>' || r == '&':
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[byte(r)>>4], hexDigits[byte(r)&0xf])
		case r == '\u2028' || r == '\u2029':
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}

// Snapshot returns the buffered spans, oldest first.
func (s *SpanRecorder) Snapshot() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.filled {
		out := make([]Span, s.next)
		copy(out, s.ring[:s.next])
		return out
	}
	out := make([]Span, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Total returns how many spans have been recorded since creation
// (including ones evicted from the ring).
func (s *SpanRecorder) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Buffered returns the number of spans currently held in the ring.
func (s *SpanRecorder) Buffered() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.filled {
		return len(s.ring)
	}
	return s.next
}

// WriteErr returns the first JSONL write error, if streaming failed.
func (s *SpanRecorder) WriteErr() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}
