// Package httpx serves a telemetry.Registry over HTTP: Prometheus text
// exposition on /metrics, a JSON snapshot on /vars, a liveness check on
// /healthz, recent probe spans on /spans, recent anomaly events on
// /events, and the standard net/http/pprof profiling endpoints under
// /debug/pprof/. It is the live window into a running coordinator — the
// same counters Stats reports after a run, but scrapeable while the
// sweep is still going.
package httpx

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"winlab/internal/telemetry"
)

// Server is a running telemetry HTTP server.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// EventSource is anything that can render its recent events as a JSON
// array — anomaly.Ring in practice. n > 0 limits the output to the n
// most recent events. The indirection keeps httpx decoupled from the
// detector package: a nil source serves "[]".
type EventSource interface {
	AppendJSON(dst []byte, n int) []byte
}

// Handler builds the telemetry mux for reg with no event source; the
// /events endpoint serves an empty array. The registry may be nil, in
// which case /metrics and /vars serve empty documents (the endpoints
// stay up so probes of the coordinator itself keep working).
func Handler(reg *telemetry.Registry) http.Handler {
	return HandlerEvents(reg, nil)
}

// HandlerEvents builds the telemetry mux for reg and serves ev's recent
// events on /events (most recent last; ?n=K limits to the K newest).
func HandlerEvents(reg *telemetry.Registry, ev EventSource) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, reg, ev)
	return mux
}

// Mount registers the telemetry endpoints on a caller-owned mux, for
// servers that serve their own API next to the telemetry surface
// (cmd/queryd mounts these beside /api/*). Same endpoints and semantics
// as HandlerEvents.
func Mount(mux *http.ServeMux, reg *telemetry.Registry, ev EventSource) {
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		n := 0
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if v, err := strconv.Atoi(nStr); err == nil && v > 0 {
				n = v
			}
		}
		if ev == nil {
			_, _ = w.Write([]byte("[]\n"))
			return
		}
		out := ev.AppendJSON(nil, n)
		out = append(out, '\n')
		_, _ = w.Write(out)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.TakeSnapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		spans := reg.Spans().Snapshot()
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	// pprof must be wired by hand on a non-default mux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve binds addr (e.g. "127.0.0.1:9090", ":0" for an ephemeral port)
// and serves the telemetry endpoints in a background goroutine.
func Serve(addr string, reg *telemetry.Registry) (*Server, error) {
	return ServeEvents(addr, reg, nil)
}

// ServeEvents is Serve with an event source backing /events.
func ServeEvents(addr string, reg *telemetry.Registry, ev EventSource) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpx: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           HandlerEvents(reg, ev),
		ReadHeaderTimeout: 5 * time.Second,
	}
	s := &Server{srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
