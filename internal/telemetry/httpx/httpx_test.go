package httpx

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"winlab/internal/anomaly"
	"winlab/internal/telemetry"
)

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body), resp
}

func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("ddc_probes_total").Add(17)
	reg.Gauge("ddc_probes_inflight").Set(2)
	reg.Histogram("ddc_probe_duration_seconds", nil).Observe(12 * time.Millisecond)
	reg.Spans().Record(telemetry.Span{Machine: "m01", Iter: 1, Attempt: 1, Outcome: telemetry.OutcomeOK})
	reg.Spans().Record(telemetry.Span{Machine: "m02", Iter: 1, Attempt: 2, Outcome: telemetry.OutcomeRetry, Err: "x"})

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	body, resp := get(t, srv.URL()+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE ddc_probes_total counter", "ddc_probes_total 17",
		"ddc_probes_inflight 2",
		`ddc_probe_duration_seconds_bucket{le="+Inf"} 1`,
		"ddc_probe_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, resp = get(t, srv.URL()+"/vars")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/vars content-type = %q", ct)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if snap.Counters["ddc_probes_total"] != 17 || snap.Spans.Total != 2 {
		t.Errorf("/vars snapshot = %+v", snap)
	}

	body, _ = get(t, srv.URL()+"/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	body, _ = get(t, srv.URL()+"/spans?n=1")
	var spans []telemetry.Span
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/spans not JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Machine != "m02" {
		t.Errorf("/spans?n=1 = %+v (want newest span only)", spans)
	}

	_, resp = get(t, srv.URL()+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

// TestServerEvents serves a real anomaly ring on /events and checks the
// response is byte-identical to the ring's own JSON rendering, that ?n=
// limits to the newest events, and that a nil source degrades to "[]".
func TestServerEvents(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := anomaly.NewRing(8)
	for i := 0; i < 5; i++ {
		ring.Add(anomaly.Event{
			Kind:      anomaly.KindRebootStorm,
			Machine:   fmt.Sprintf("m%02d", i),
			FirstIter: i,
			LastIter:  i,
			Score:     float64(i) + 0.5,
		})
	}
	srv, err := ServeEvents("127.0.0.1:0", reg, ring)
	if err != nil {
		t.Fatalf("ServeEvents: %v", err)
	}
	defer srv.Close()

	body, resp := get(t, srv.URL()+"/events")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/events content-type = %q", ct)
	}
	if want := string(ring.AppendJSON(nil, 0)) + "\n"; body != want {
		t.Errorf("/events = %s, want %s", body, want)
	}
	var events []anomaly.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if len(events) != 5 || events[4].Machine != "m04" {
		t.Errorf("/events parsed to %+v", events)
	}

	body, _ = get(t, srv.URL()+"/events?n=2")
	events = nil
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events?n=2 not JSON: %v", err)
	}
	if len(events) != 2 || events[0].Machine != "m03" || events[1].Machine != "m04" {
		t.Errorf("/events?n=2 = %+v, want the two newest", events)
	}

	// A malformed or non-positive limit falls back to the full buffer.
	for _, q := range []string{"?n=bogus", "?n=-3", "?n=0"} {
		if body, _ := get(t, srv.URL()+"/events"+q); body != string(ring.AppendJSON(nil, 0))+"\n" {
			t.Errorf("/events%s did not serve the full buffer: %s", q, body)
		}
	}

	nilSrv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer nilSrv.Close()
	if body, _ := get(t, nilSrv.URL()+"/events"); body != "[]\n" {
		t.Errorf("/events with no source = %q, want []", body)
	}
}

func TestServerNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	// The endpoints stay up with empty documents: liveness probing of the
	// coordinator itself must not depend on telemetry being enabled.
	if body, _ := get(t, srv.URL()+"/metrics"); body != "" {
		t.Errorf("/metrics on nil registry = %q, want empty", body)
	}
	body, _ := get(t, srv.URL()+"/vars")
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if body, _ := get(t, srv.URL()+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}
}
