package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	// Every lookup on a nil registry returns a nil handle whose methods
	// must not panic and must report zero values.
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 || c.Name() != "" {
		t.Fatalf("nil counter not inert: %d %q", c.Value(), c.Name())
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 0 || g.Name() != "" {
		t.Fatalf("nil gauge not inert: %d %q", g.Value(), g.Name())
	}
	h := r.Histogram("z", nil)
	h.Observe(time.Second)
	h.ObserveSeconds(0.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Fatal("nil histogram not inert")
	}
	if s := h.Summary(); s != (HistogramSummary{}) {
		t.Fatalf("nil histogram summary = %+v", s)
	}
	sp := r.Spans()
	sp.Record(Span{Machine: "m1"})
	if sp.Total() != 0 || sp.Buffered() != 0 || sp.Snapshot() != nil || sp.WriteErr() != nil {
		t.Fatal("nil span recorder not inert")
	}
	if r.Uptime() != 0 {
		t.Fatal("nil registry uptime != 0")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	snap := r.TakeSnapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probes_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // negative deltas ignored: counters are monotonic
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("probes_total"); c2 != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("inflight")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("gauge = %d, want -7", got)
	}
}

func TestHistogramQuantilesAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 0.2, 0.4, 0.8})
	// 100 observations uniformly inside (0, 0.1]: p50 interpolates to
	// ~0.05 within the first bucket.
	for i := 0; i < 100; i++ {
		h.ObserveSeconds(0.05)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.1]", p50)
	}
	// Push 100 more into the (0.2, 0.4] bucket; p95 must land there.
	for i := 0; i < 100; i++ {
		h.Observe(300 * time.Millisecond)
	}
	p95 := h.Quantile(0.95)
	if p95 <= 0.2 || p95 > 0.4 {
		t.Fatalf("p95 = %v, want within (0.2, 0.4]", p95)
	}
	wantSum := 100*0.05 + 100*0.3
	if got := h.Sum().Seconds(); got < wantSum-0.001 || got > wantSum+0.001 {
		t.Fatalf("sum = %v, want ≈ %v", got, wantSum)
	}
	// Observations beyond every bound land in +Inf and quantiles clamp to
	// the largest finite bound.
	h2 := r.Histogram("lat2", []float64{0.1})
	h2.ObserveSeconds(5)
	if q := h2.Quantile(0.99); q != 0.1 {
		t.Fatalf("overflow quantile = %v, want 0.1 (largest finite bound)", q)
	}
	if h2.Quantile(0.5) != 0.1 {
		t.Fatal("empty-bucket interpolation should fall back to bound")
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", nil)
	h.ObserveSeconds(0.003)
	if h.Count() != 1 {
		t.Fatal("observation lost")
	}
	if got := len(h.bounds); got != len(DefaultLatencyBuckets) {
		t.Fatalf("bounds = %d, want %d", got, len(DefaultLatencyBuckets))
	}
	// Second lookup with different bounds returns the existing histogram.
	if h2 := r.Histogram("d", []float64{1}); h2 != h {
		t.Fatal("histogram identity not stable across lookups")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", nil).ObserveSeconds(0.01)
				r.Spans().Record(Span{Machine: "m", Iter: j, Outcome: OutcomeOK})
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.Spans().Total(); got != 8000 {
		t.Fatalf("span total = %d, want 8000", got)
	}
	if got := r.Spans().Buffered(); got != DefaultSpanCapacity {
		t.Fatalf("buffered = %d, want full ring %d", got, DefaultSpanCapacity)
	}
	snap := r.TakeSnapshot()
	if snap.Counters["c"] != 8000 || snap.Gauges["g"] != 8000 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	if snap.Histograms["h"].Count != 8000 {
		t.Fatalf("snapshot histogram count = %d", snap.Histograms["h"].Count)
	}
}
