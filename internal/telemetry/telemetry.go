// Package telemetry is the collector's zero-dependency observability
// layer: a metrics registry of atomic counters, gauges and fixed-bucket
// latency histograms, plus a per-probe span recorder (machine, iteration,
// attempt, latency, outcome) that streams into a bounded in-memory ring
// and, optionally, a JSONL writer.
//
// The package is built for two consumers at once:
//
//   - the hot path (WallCollector's probe loop, the TCP transport, the
//     dataset sink), which must stay allocation-free when telemetry is
//     disabled. Every method in the package is nil-safe: a nil *Registry
//     hands out nil *Counter/*Gauge/*Histogram/*SpanRecorder handles whose
//     methods are no-ops, so instrumented code needs no conditionals and
//     pays nothing when unobserved;
//   - the scrape path (telemetry/httpx), which renders the registry as
//     Prometheus text exposition on /metrics and a JSON snapshot on /vars.
//     Scrapes are lock-cheap: all metric values are read with atomic
//     loads, never by stopping writers.
//
// Metric names follow Prometheus conventions (snake_case, _total suffix
// for counters, _seconds for latency histograms). The registry does not
// support labels — the collector's cardinality (one process, one fleet)
// does not need them, and their absence keeps the hot path free of map
// lookups and string concatenation.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds a process's metrics and its span recorder. The zero
// value is not usable; create one with NewRegistry. A nil *Registry is a
// valid "telemetry off" value: all lookups return nil handles whose
// methods no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans *SpanRecorder
	start time.Time
}

// NewRegistry creates an empty registry with a span ring of
// DefaultSpanCapacity.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    newSpanRecorder(DefaultSpanCapacity),
		start:    time.Now(),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op handle) when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given bucket upper bounds in seconds (nil means
// DefaultLatencyBuckets). Returns nil (a no-op handle) when r is nil.
// Bounds are fixed at creation: later calls with different bounds return
// the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(name, bounds)
		r.hists[name] = h
	}
	return h
}

// Spans returns the registry's span recorder, or nil (a no-op handle)
// when r is nil.
func (r *Registry) Spans() *SpanRecorder {
	if r == nil {
		return nil
	}
	return r.spans
}

// Uptime reports how long ago the registry was created.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe on a nil receiver (no-ops / zero values).
type Counter struct {
	v    atomic.Int64
	name string
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n. Negative deltas are ignored: counters
// are monotonic by contract (use a Gauge for values that go down).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the counter's registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic instantaneous value (in-flight probes, open
// breakers). All methods are safe on a nil receiver.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the gauge's registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}
