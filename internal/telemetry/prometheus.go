package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file renders the registry for the two scrape surfaces: Prometheus
// text exposition (format 0.0.4) for /metrics and a JSON snapshot for
// /vars. Scrapes read every metric with atomic loads; writers are never
// blocked. Within one scrape a histogram's cumulative bucket counts are
// monotone and its _count equals its +Inf bucket by construction (all
// buckets are loaded once, see snapshotCounts) — only _sum may lag the
// buckets by in-flight observations.

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, sorted by metric name. Safe on a nil receiver
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, c := range counters {
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.Value())
	}
	for _, g := range gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.Value())
	}
	for _, h := range hists {
		writeHistogram(bw, h)
	}
	return bw.Flush()
}

// writeHistogram renders one histogram: cumulative buckets, +Inf, sum,
// count. The counts are loaded once so cumulative values are monotone
// and _count matches the +Inf bucket even under concurrent updates.
func writeHistogram(w io.Writer, h *Histogram) {
	counts, total := h.snapshotCounts()
	fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
	var cum int64
	for i, bound := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(bound), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, total)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", h.name, total)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SpanStats summarises the span recorder for the JSON snapshot.
type SpanStats struct {
	Total    uint64 `json:"total"`
	Buffered int    `json:"buffered"`
}

// Snapshot is the JSON view of the registry served on /vars.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	Counters      map[string]int64            `json:"counters"`
	Gauges        map[string]int64            `json:"gauges"`
	Histograms    map[string]HistogramSummary `json:"histograms"`
	Spans         SpanStats                   `json:"spans"`
}

// TakeSnapshot digests the registry into a JSON-friendly snapshot. Safe
// on a nil receiver (returns an empty snapshot).
func (r *Registry) TakeSnapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSummary{},
	}
	if r == nil {
		return s
	}
	s.UptimeSeconds = r.Uptime().Seconds()

	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.Summary()
	}
	s.Spans = SpanStats{Total: r.spans.Total(), Buffered: r.spans.Buffered()}
	return s
}
