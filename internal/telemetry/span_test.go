package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSpanRingEviction(t *testing.T) {
	r := NewRegistry()
	sp := r.Spans()
	sp.SetCapacity(4)
	for i := 0; i < 10; i++ {
		sp.Record(Span{Machine: fmt.Sprintf("m%d", i), Iter: i, Outcome: OutcomeOK})
	}
	if got := sp.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	if got := sp.Buffered(); got != 4 {
		t.Fatalf("buffered = %d, want 4", got)
	}
	snap := sp.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	// Oldest first: iterations 6,7,8,9 survive.
	for i, s := range snap {
		if want := 6 + i; s.Iter != want {
			t.Fatalf("snapshot[%d].Iter = %d, want %d", i, s.Iter, want)
		}
	}
}

func TestSpanPartialRingSnapshot(t *testing.T) {
	r := NewRegistry()
	sp := r.Spans()
	sp.SetCapacity(8)
	sp.Record(Span{Machine: "a", Outcome: OutcomeRetry})
	sp.Record(Span{Machine: "b", Outcome: OutcomeTimeout})
	snap := sp.Snapshot()
	if len(snap) != 2 || snap[0].Machine != "a" || snap[1].Machine != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Time.IsZero() {
		t.Fatal("Record should stamp a zero Time")
	}
}

func TestSpanJSONLStreaming(t *testing.T) {
	r := NewRegistry()
	sp := r.Spans()
	var buf bytes.Buffer
	sp.SetWriter(&buf)
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	sp.Record(Span{Time: at, Machine: "m1", Iter: 3, Attempt: 2,
		Latency: 150 * time.Millisecond, Outcome: OutcomeRetry, Err: "boom"})
	sp.Record(Span{Time: at, Machine: "m2", Iter: 3, Attempt: 1, Outcome: OutcomeOK})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2: %q", len(lines), buf.String())
	}
	var got Span
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Machine != "m1" || got.Iter != 3 || got.Attempt != 2 ||
		got.Latency != 150*time.Millisecond || got.Outcome != OutcomeRetry || got.Err != "boom" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// The ok span omits its empty err field entirely.
	if strings.Contains(lines[1], `"err"`) {
		t.Fatalf("empty err serialised: %s", lines[1])
	}
}

// TestAppendSpanJSONMatchesEncodingJSON pins the hand-rolled JSONL
// encoder to encoding/json byte-for-byte: field order, omitempty err,
// RFC3339Nano times, HTML-safe escaping, and invalid-UTF-8 replacement.
func TestAppendSpanJSONMatchesEncodingJSON(t *testing.T) {
	at := time.Date(2026, 8, 6, 12, 34, 56, 789012345, time.UTC)
	spans := []Span{
		{Time: at, Machine: "m1", Iter: 3, Attempt: 2,
			Latency: 150 * time.Millisecond, Outcome: OutcomeRetry, Err: "boom"},
		{Time: at, Machine: "m2", Iter: 0, Attempt: 1, Outcome: OutcomeOK}, // omitempty err
		{Time: at.In(time.FixedZone("X", 3600)), Machine: `quo"ted\back`, Outcome: OutcomeError,
			Err: "line\nbreak\ttab\rret"},
		{Time: at, Machine: "html<&>unsafe", Outcome: OutcomeTimeout, Err: "a<b && c>d"},
		{Time: at, Machine: "seps\u2028and\u2029", Outcome: OutcomeOK, Err: "ctl\x01\x1f"},
		{Time: at, Machine: "bad\xff\xfeutf8", Outcome: OutcomeParseError, Err: "trunc\xc3"},
		{Time: at, Machine: "real�rune", Outcome: OutcomeBreakerSkip, Err: "�"},
		{Time: at, Machine: "", Iter: -1, Attempt: 0, Latency: -time.Nanosecond, Outcome: ""},
	}
	for i, sp := range spans {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(sp); err != nil {
			t.Fatalf("span %d: encoding/json: %v", i, err)
		}
		got := appendSpanJSON(nil, sp)
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("span %d mismatch:\n got: %q\nwant: %q", i, got, want.Bytes())
		}
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestSpanWriterErrorRetainedRingKeepsRecording(t *testing.T) {
	r := NewRegistry()
	sp := r.Spans()
	fw := &failWriter{}
	sp.SetWriter(fw)
	for i := 0; i < 5; i++ {
		sp.Record(Span{Machine: "m", Iter: i, Outcome: OutcomeOK})
	}
	if err := sp.WriteErr(); err == nil {
		t.Fatal("write error not retained")
	}
	if fw.n != 1 {
		t.Fatalf("writer called %d times after first failure, want 1", fw.n)
	}
	if got := sp.Buffered(); got != 5 {
		t.Fatalf("ring stopped recording after write error: buffered = %d", got)
	}
	// Re-arming with a healthy writer clears the error.
	var buf bytes.Buffer
	sp.SetWriter(&buf)
	sp.Record(Span{Machine: "m", Iter: 5, Outcome: OutcomeOK})
	if sp.WriteErr() != nil || buf.Len() == 0 {
		t.Fatal("SetWriter did not reset streaming")
	}
}
