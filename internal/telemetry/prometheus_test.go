package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fully deterministic contents.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("ddc_probes_total").Add(1234)
	r.Counter("ddc_samples_total").Add(1200)
	r.Gauge("ddc_probes_inflight").Set(3)
	h := r.Histogram("ddc_probe_duration_seconds", []float64{0.005, 0.01, 0.05, 0.1})
	h.ObserveSeconds(0.003)
	h.ObserveSeconds(0.003)
	h.ObserveSeconds(0.02)
	h.ObserveSeconds(0.2) // +Inf bucket
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The exposition must be byte-stable across scrapes of an idle
	// registry (map iteration order must not leak through).
	var buf2 bytes.Buffer
	reg := goldenRegistry()
	_ = reg.WritePrometheus(&buf2)
	var buf3 bytes.Buffer
	_ = reg.WritePrometheus(&buf3)
	if buf2.String() != buf3.String() {
		t.Error("exposition not stable across consecutive scrapes")
	}
}

// parseExposition digests one scrape into name→value for scalar lines and
// checks histogram invariants in passing.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	vals := map[string]float64{}
	var lastHist string
	var lastCum float64
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := fields[0]
		if i := strings.Index(name, "_bucket{le="); i >= 0 {
			base := name[:i]
			if base != lastHist {
				lastHist, lastCum = base, 0
			}
			if v < lastCum {
				t.Fatalf("cumulative bucket decreased in %q (%v < %v)", line, v, lastCum)
			}
			lastCum = v
			if strings.Contains(name, `le="+Inf"`) {
				vals[base+"_inf"] = v
			}
			continue
		}
		vals[name] = v
	}
	return vals
}

func TestPrometheusExpositionUnderConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", nil).Observe(3 * time.Millisecond)
			}
		}()
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	scrapes := 0
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("scrape: %v", err)
		}
		vals := parseExposition(t, buf.String())
		// _count must equal the +Inf bucket within a single scrape: both
		// come from one atomic load pass.
		if c, inf := vals["h_seconds_count"], vals["h_seconds_inf"]; c != inf {
			t.Fatalf("histogram count %v != +Inf bucket %v", c, inf)
		}
		scrapes++
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes completed")
	}
	// Final quiesced scrape: counter equals gauge (same update cadence).
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	vals := parseExposition(t, buf.String())
	if vals["c_total"] != vals["g"] || vals["c_total"] == 0 {
		t.Fatalf("final counter %v vs gauge %v", vals["c_total"], vals["g"])
	}
	if vals["h_seconds_count"] != vals["c_total"] {
		t.Fatalf("final histogram count %v vs counter %v", vals["h_seconds_count"], vals["c_total"])
	}
}
