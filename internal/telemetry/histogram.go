package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the histogram bounds used when none are
// given, in seconds. They span sub-millisecond in-process probes up to
// the multi-second timeouts of a hard-down machine.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram with atomic per-bucket
// counters. Observations are recorded lock-free; quantiles (p50/p95/p99)
// are estimated by linear interpolation inside the owning bucket, the
// standard Prometheus client-side estimate. All methods are safe on a
// nil receiver.
type Histogram struct {
	name    string
	bounds  []float64 // ascending upper bounds, seconds
	buckets []atomic.Int64
	// sumNanos accumulates total observed time. It is updated atomically
	// but independently of the buckets, so a concurrent scrape may see a
	// sum slightly ahead of or behind the bucket counts — harmless for
	// monitoring, and it keeps Observe to two atomic adds.
	sumNanos atomic.Int64
}

// newHistogram builds a histogram with the given bounds (copied and
// sorted), defaulting to DefaultLatencyBuckets.
func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{
		name:    name,
		bounds:  bs,
		buckets: make([]atomic.Int64, len(bs)+1), // +1: the +Inf bucket
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNanos.Add(int64(s * float64(time.Second)))
}

// snapshotCounts loads all bucket counters once, returning the per-bucket
// counts and their total. Loading once keeps a single scrape internally
// consistent (cumulative counts are monotone by construction).
func (h *Histogram) snapshotCounts() (counts []int64, total int64) {
	counts = make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	_, total := h.snapshotCounts()
	return total
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in seconds by linear
// interpolation within the owning bucket. Observations in the +Inf
// bucket are reported as the largest finite bound (there is no upper
// edge to interpolate toward). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total := h.snapshotCounts()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSummary is the JSON-friendly digest of a histogram.
type HistogramSummary struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50        float64 `json:"p50"`
	P95        float64 `json:"p95"`
	P99        float64 `json:"p99"`
}

// Summary digests the histogram into count, sum and the standard
// quantiles. Safe on a nil receiver (zero summary).
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	return HistogramSummary{
		Count:      h.Count(),
		SumSeconds: h.Sum().Seconds(),
		P50:        h.Quantile(0.50),
		P95:        h.Quantile(0.95),
		P99:        h.Quantile(0.99),
	}
}

// Name returns the histogram's registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}
