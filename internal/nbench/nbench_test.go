package nbench

import (
	"testing"
	"time"

	"winlab/internal/rng"
)

func TestAllKernelsVerify(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			k.Setup(rng.Derive(1, k.Name()))
			if err := k.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKernelsDeterministic(t *testing.T) {
	a := Kernels()
	b := Kernels()
	for i := range a {
		a[i].Setup(rng.Derive(3, a[i].Name()))
		b[i].Setup(rng.Derive(3, b[i].Name()))
		if ra, rb := a[i].Iterate(), b[i].Iterate(); ra != rb {
			t.Errorf("%s: checksum %v != %v under identical seeds", a[i].Name(), ra, rb)
		}
	}
}

func TestKernelIterateStable(t *testing.T) {
	// Repeated iterations over the same workload must produce the same
	// checksum (kernels must fully reset their working state).
	for _, k := range Kernels() {
		k.Setup(rng.Derive(5, k.Name()))
		first := k.Iterate()
		for i := 0; i < 3; i++ {
			if got := k.Iterate(); got != first {
				t.Errorf("%s: iteration %d checksum %v != first %v", k.Name(), i, got, first)
				break
			}
		}
	}
}

func TestSuiteClassSplit(t *testing.T) {
	counts := map[Class]int{}
	for _, k := range Kernels() {
		counts[k.Class()]++
	}
	if counts[Integer] != 4 || counts[Memory] != 3 || counts[FP] != 3 {
		t.Errorf("kernel split = %d INT / %d MEM / %d FP, want 4/3/3 as in BYTEmark",
			counts[Integer], counts[Memory], counts[FP])
	}
	for _, c := range []Class{Integer, Memory, FP, Class(9)} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestBaselineCoversAllKernels(t *testing.T) {
	for _, k := range Kernels() {
		if _, ok := baseline[k.Name()]; !ok {
			t.Errorf("kernel %s has no baseline entry", k.Name())
		}
	}
	if len(baseline) != len(Kernels()) {
		t.Errorf("baseline has %d entries for %d kernels", len(baseline), len(Kernels()))
	}
}

func TestRunProducesIndexes(t *testing.T) {
	res, err := Run(Options{Seed: 2, MinTime: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 10 {
		t.Fatalf("scores = %d", len(res.Scores))
	}
	for _, s := range res.Scores {
		if s.PerSecond <= 0 || s.Iterations <= 0 || s.Elapsed <= 0 {
			t.Errorf("%s: degenerate score %+v", s.Kernel, s)
		}
	}
	if res.Int <= 0 || res.Mem <= 0 || res.FPIdx <= 0 {
		t.Errorf("indexes: INT=%v MEM=%v FP=%v", res.Int, res.Mem, res.FPIdx)
	}
}

func TestGeomean(t *testing.T) {
	if got := geomean([]float64{4, 9}); got != 6 {
		t.Errorf("geomean(4,9) = %v", got)
	}
	if geomean(nil) != 0 {
		t.Error("geomean(nil) != 0")
	}
	if geomean([]float64{1, 0}) != 0 {
		t.Error("geomean with zero != 0")
	}
}

func TestHeapSortProperty(t *testing.T) {
	src := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + src.Intn(300)
		xs := make([]int32, n)
		for i := range xs {
			xs[i] = int32(src.Int63())
		}
		heapSort(xs)
		if err := sortedCheck(xs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestIDEAInverse(t *testing.T) {
	// ideaInv must produce multiplicative inverses modulo 2^16+1 under
	// IDEA's convention that 0 represents 2^16.
	for _, x := range []uint16{1, 2, 3, 1000, 40000, 65535} {
		inv := ideaInv(x)
		if got := ideaMul(x, inv); got != 1 {
			t.Errorf("x=%d inv=%d mul=%d", x, inv, got)
		}
	}
	if ideaInv(0) != 0 || ideaInv(1) != 1 {
		t.Error("ideaInv special cases")
	}
}

func TestIDEAMulEdge(t *testing.T) {
	// 0 represents 2^16 ≡ -1 (mod 2^16+1): (-1)·(-1) = 1.
	if got := ideaMul(0, 0); got != 1 {
		t.Errorf("mul(0,0) = %d, want 1", got)
	}
}

func TestFPEmulationArithmetic(t *testing.T) {
	cases := []struct {
		a, b float64
		op   func(x, y sreal) sreal
		want float64
	}{
		{1.5, 2.5, sadd, 4.0},
		{-1.5, 2.5, sadd, 1.0},
		{1.5, -2.5, sadd, -1.0},
		{3.0, 4.0, smul, 12.0},
		{-3.0, 4.0, smul, -12.0},
		{10.0, 4.0, sdiv, 2.5},
		{-10.0, 4.0, sdiv, -2.5},
	}
	for _, c := range cases {
		got := c.op(srealFromFloat(c.a), srealFromFloat(c.b)).float()
		if got < c.want-0.001 || got > c.want+0.001 {
			t.Errorf("op(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHuffmanCompresses(t *testing.T) {
	k := &Huffman{}
	k.Setup(rng.Derive(1, "huffman"))
	packed := k.Iterate()
	if packed == 0 || int(packed) >= len(k.text) {
		t.Errorf("packed size = %d of %d", packed, len(k.text))
	}
}

func TestLUSolvesSystem(t *testing.T) {
	k := &LUDecomposition{}
	k.Setup(rng.Derive(1, "lu"))
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 0xFF: 8, 0x8000000000000000: 1, ^uint64(0): 64}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Errorf("popcount(%#x) = %d, want %d", x, got, want)
		}
	}
}
