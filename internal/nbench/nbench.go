// Package nbench is a from-scratch Go implementation of an NBench-style
// (BYTEmark-derived) benchmark suite. The paper ran NBench on every lab
// machine to obtain the INT and FP performance indexes of Table 1, which
// the cluster-equivalence analysis (§5.4) uses to normalise heterogeneous
// machines.
//
// All ten BYTEmark kernels are implemented and grouped into the original
// three indexes: INTEGER (numeric sort, FP emulation, IDEA, Huffman),
// MEMORY (string sort, bitfield, assignment) and FLOATING-POINT (Fourier,
// neural net, LU decomposition). Each kernel reports operations per
// second; an index is the geometric mean of its kernels' rates relative to
// a fixed baseline, mirroring BYTEmark's index construction. The paper's
// Table 1 uses the INT and FP indexes.
package nbench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"winlab/internal/rng"
)

// Class assigns a kernel to one of BYTEmark's three indexes.
type Class int

// Kernel classes, following the original BYTEmark grouping: the INTEGER
// index (numeric sort, FP emulation, IDEA, Huffman), the MEMORY index
// (string sort, bitfield, assignment) and the FLOATING-POINT index
// (Fourier, neural net, LU decomposition). The paper's Table 1 reports the
// INT and FP indexes.
const (
	Integer Class = iota
	Memory
	FP
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Integer:
		return "INT"
	case Memory:
		return "MEM"
	case FP:
		return "FP"
	default:
		return "?"
	}
}

// Kernel is one benchmark workload.
type Kernel interface {
	// Name identifies the kernel.
	Name() string
	// Class reports which index the kernel belongs to.
	Class() Class
	// Setup prepares a deterministic workload.
	Setup(src *rng.Source)
	// Iterate runs one iteration over the prepared workload and returns a
	// checksum-like value, preventing dead-code elimination.
	Iterate() uint64
	// Verify runs the kernel's self-check; Setup must have been called.
	Verify() error
}

// Kernels returns the full suite in index order.
func Kernels() []Kernel {
	return []Kernel{
		&NumericSort{},
		&StringSort{},
		&Bitfield{},
		&FPEmulation{},
		&Assignment{},
		&IDEA{},
		&Huffman{},
		&Fourier{},
		&NeuralNet{},
		&LUDecomposition{},
	}
}

// Score is the measured rate of one kernel.
type Score struct {
	Kernel     string
	Class      Class
	Iterations int
	Elapsed    time.Duration
	PerSecond  float64
}

// Result is a full suite run.
type Result struct {
	Scores []Score
	Int    float64 // integer index (geometric mean vs baseline)
	Mem    float64 // memory index
	FPIdx  float64 // floating-point index
}

// baseline rates (iterations/second) defining index 1.0 — playing the role
// of BYTEmark's AMD K6/233 reference machine. The values are arbitrary but
// fixed: indexes are only meaningful relative to one another, which is all
// the equivalence analysis needs.
var baseline = map[string]float64{
	"numeric-sort":     250,
	"string-sort":      120,
	"bitfield":         1200,
	"fp-emulation":     60,
	"assignment":       300,
	"idea":             500,
	"huffman":          400,
	"fourier":          800,
	"neural-net":       120,
	"lu-decomposition": 250,
}

// Options configures a suite run.
type Options struct {
	Seed    int64
	MinTime time.Duration // minimum measured time per kernel
}

// Run executes the whole suite and computes the indexes.
func Run(opts Options) (Result, error) {
	if opts.MinTime <= 0 {
		opts.MinTime = 200 * time.Millisecond
	}
	var res Result
	ratios := map[Class][]float64{}
	for _, k := range Kernels() {
		k.Setup(rng.Derive(opts.Seed, k.Name()))
		if err := k.Verify(); err != nil {
			return res, fmt.Errorf("nbench: %s self-check failed: %w", k.Name(), err)
		}
		sc := measure(k, opts.MinTime)
		res.Scores = append(res.Scores, sc)
		base, ok := baseline[k.Name()]
		if !ok {
			return res, fmt.Errorf("nbench: kernel %s has no baseline", k.Name())
		}
		ratios[k.Class()] = append(ratios[k.Class()], sc.PerSecond/base)
	}
	res.Int = geomean(ratios[Integer])
	res.Mem = geomean(ratios[Memory])
	res.FPIdx = geomean(ratios[FP])
	return res, nil
}

var sink uint64 // defeats dead-code elimination across measure calls

func measure(k Kernel, minTime time.Duration) Score {
	// Warm up and pick a batch size that runs ≥ ~10 ms.
	batch := 1
	for {
		start := time.Now()
		for i := 0; i < batch; i++ {
			sink += k.Iterate()
		}
		if el := time.Since(start); el >= 10*time.Millisecond {
			break
		}
		batch *= 2
	}
	var iters int
	var elapsed time.Duration
	start := time.Now()
	for elapsed < minTime {
		for i := 0; i < batch; i++ {
			sink += k.Iterate()
		}
		iters += batch
		elapsed = time.Since(start)
	}
	return Score{
		Kernel:     k.Name(),
		Class:      k.Class(),
		Iterations: iters,
		Elapsed:    elapsed,
		PerSecond:  float64(iters) / elapsed.Seconds(),
	}
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// sortedCheck verifies a non-decreasing int32 slice.
func sortedCheck(xs []int32) error {
	if !sort.SliceIsSorted(xs, func(i, j int) bool { return xs[i] < xs[j] }) {
		return fmt.Errorf("output not sorted")
	}
	return nil
}
