package nbench

import (
	"fmt"
	"math"

	"winlab/internal/rng"
)

// ---------------------------------------------------------------------------
// Fourier: compute Fourier series coefficients of (x+1)^x over [0,2] by
// trapezoidal numerical integration, as in BYTEmark.

// Fourier computes Fourier coefficients by numerical integration.
type Fourier struct {
	coeffs int
	abase  []float64
	bbase  []float64
}

// Name implements Kernel.
func (*Fourier) Name() string { return "fourier" }

// Class implements Kernel.
func (*Fourier) Class() Class { return FP }

// Setup implements Kernel.
func (k *Fourier) Setup(src *rng.Source) {
	k.coeffs = 32
	k.abase = make([]float64, k.coeffs)
	k.bbase = make([]float64, k.coeffs)
}

func fourierFunc(x float64, n int, cosine bool) float64 {
	f := math.Pow(x+1, x)
	if n == 0 {
		return f
	}
	omega := 2 * math.Pi / 2 // fundamental frequency over period 2
	if cosine {
		return f * math.Cos(float64(n)*omega*x)
	}
	return f * math.Sin(float64(n)*omega*x)
}

func trapezoid(n int, cosine bool, steps int) float64 {
	const lo, hi = 0.0, 2.0
	dx := (hi - lo) / float64(steps)
	sum := (fourierFunc(lo, n, cosine) + fourierFunc(hi, n, cosine)) / 2
	for i := 1; i < steps; i++ {
		sum += fourierFunc(lo+float64(i)*dx, n, cosine)
	}
	return sum * dx
}

// Iterate implements Kernel.
func (k *Fourier) Iterate() uint64 {
	const steps = 100
	k.abase[0] = trapezoid(0, true, steps) / 2
	k.bbase[0] = 0
	for n := 1; n < k.coeffs; n++ {
		k.abase[n] = trapezoid(n, true, steps)
		k.bbase[n] = trapezoid(n, false, steps)
	}
	return math.Float64bits(k.abase[1]) ^ math.Float64bits(k.bbase[1])
}

// Verify implements Kernel.
func (k *Fourier) Verify() error {
	k.Iterate()
	// a0 is half the integral of (x+1)^x over [0,2], which is ≈ 5.76.
	if k.abase[0] < 2.7 || k.abase[0] > 3.0 {
		return fmt.Errorf("a0 = %g out of expected range", k.abase[0])
	}
	// Coefficients must decay.
	if math.Abs(k.abase[k.coeffs-1]) > math.Abs(k.abase[1]) {
		return fmt.Errorf("fourier coefficients do not decay")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Neural net: a small fully-connected back-propagation network learning a
// fixed input→output mapping, as in BYTEmark's neural net kernel.

// NeuralNet trains a two-layer perceptron with back-propagation.
type NeuralNet struct {
	in, hid, out int
	inputs       [][]float64
	targets      [][]float64
	w1, w2       [][]float64
	w1init       [][]float64
	w2init       [][]float64
	hidAct       []float64
	outAct       []float64
	hidErr       []float64
	outErr       []float64
}

// Name implements Kernel.
func (*NeuralNet) Name() string { return "neural-net" }

// Class implements Kernel.
func (*NeuralNet) Class() Class { return FP }

// Setup implements Kernel.
func (k *NeuralNet) Setup(src *rng.Source) {
	k.in, k.hid, k.out = 26, 8, 8
	const patterns = 16
	k.inputs = make([][]float64, patterns)
	k.targets = make([][]float64, patterns)
	for p := range k.inputs {
		k.inputs[p] = make([]float64, k.in)
		for i := range k.inputs[p] {
			if src.Bool(0.3) {
				k.inputs[p][i] = 1
			}
		}
		k.targets[p] = make([]float64, k.out)
		k.targets[p][p%k.out] = 1
	}
	mk := func(r, c int) [][]float64 {
		w := make([][]float64, r)
		for i := range w {
			w[i] = make([]float64, c)
			for j := range w[i] {
				w[i][j] = src.Uniform(-0.25, 0.25)
			}
		}
		return w
	}
	k.w1init = mk(k.hid, k.in)
	k.w2init = mk(k.out, k.hid)
	k.w1 = mk(k.hid, k.in)
	k.w2 = mk(k.out, k.hid)
	k.hidAct = make([]float64, k.hid)
	k.outAct = make([]float64, k.out)
	k.hidErr = make([]float64, k.hid)
	k.outErr = make([]float64, k.out)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func (k *NeuralNet) forward(input []float64) {
	for h := 0; h < k.hid; h++ {
		sum := 0.0
		for i := 0; i < k.in; i++ {
			sum += k.w1[h][i] * input[i]
		}
		k.hidAct[h] = sigmoid(sum)
	}
	for o := 0; o < k.out; o++ {
		sum := 0.0
		for h := 0; h < k.hid; h++ {
			sum += k.w2[o][h] * k.hidAct[h]
		}
		k.outAct[o] = sigmoid(sum)
	}
}

// trainEpoch runs one back-propagation pass over all patterns and returns
// the summed squared error.
func (k *NeuralNet) trainEpoch(rate float64) float64 {
	var sse float64
	for p := range k.inputs {
		input, target := k.inputs[p], k.targets[p]
		k.forward(input)
		for o := 0; o < k.out; o++ {
			e := target[o] - k.outAct[o]
			sse += e * e
			k.outErr[o] = e * k.outAct[o] * (1 - k.outAct[o])
		}
		for h := 0; h < k.hid; h++ {
			sum := 0.0
			for o := 0; o < k.out; o++ {
				sum += k.outErr[o] * k.w2[o][h]
			}
			k.hidErr[h] = sum * k.hidAct[h] * (1 - k.hidAct[h])
		}
		for o := 0; o < k.out; o++ {
			for h := 0; h < k.hid; h++ {
				k.w2[o][h] += rate * k.outErr[o] * k.hidAct[h]
			}
		}
		for h := 0; h < k.hid; h++ {
			for i := 0; i < k.in; i++ {
				k.w1[h][i] += rate * k.hidErr[h] * input[i]
			}
		}
	}
	return sse
}

// Iterate implements Kernel.
func (k *NeuralNet) Iterate() uint64 {
	for i := range k.w1 {
		copy(k.w1[i], k.w1init[i])
	}
	for i := range k.w2 {
		copy(k.w2[i], k.w2init[i])
	}
	var sse float64
	for epoch := 0; epoch < 20; epoch++ {
		sse = k.trainEpoch(0.5)
	}
	return math.Float64bits(sse)
}

// Verify implements Kernel.
func (k *NeuralNet) Verify() error {
	for i := range k.w1 {
		copy(k.w1[i], k.w1init[i])
	}
	for i := range k.w2 {
		copy(k.w2[i], k.w2init[i])
	}
	first := k.trainEpoch(0.5)
	var last float64
	for epoch := 0; epoch < 200; epoch++ {
		last = k.trainEpoch(0.5)
	}
	if last >= first {
		return fmt.Errorf("training error did not decrease: %g -> %g", first, last)
	}
	return nil
}

// ---------------------------------------------------------------------------
// LU decomposition: solve dense linear systems via Crout LU with partial
// pivoting, as in BYTEmark's linear algebra kernel.

// LUDecomposition solves Ax=b systems by LU factorisation.
type LUDecomposition struct {
	n    int
	a    [][]float64
	b    []float64
	lu   [][]float64
	x    []float64
	perm []int
	vv   []float64
}

// Name implements Kernel.
func (*LUDecomposition) Name() string { return "lu-decomposition" }

// Class implements Kernel.
func (*LUDecomposition) Class() Class { return FP }

// Setup implements Kernel.
func (k *LUDecomposition) Setup(src *rng.Source) {
	k.n = 48
	k.a = make([][]float64, k.n)
	k.lu = make([][]float64, k.n)
	for i := range k.a {
		k.a[i] = make([]float64, k.n)
		k.lu[i] = make([]float64, k.n)
		for j := range k.a[i] {
			k.a[i][j] = src.Uniform(-1, 1)
		}
		k.a[i][i] += float64(k.n) // diagonally dominant: well conditioned
	}
	k.b = make([]float64, k.n)
	for i := range k.b {
		k.b[i] = src.Uniform(-10, 10)
	}
	k.x = make([]float64, k.n)
	k.perm = make([]int, k.n)
	k.vv = make([]float64, k.n)
}

// decompose factors the matrix currently in k.lu in place, recording the
// row permutation. It returns false for a singular matrix.
func (k *LUDecomposition) decompose() bool {
	n := k.n
	for i := 0; i < n; i++ {
		big := 0.0
		for j := 0; j < n; j++ {
			if v := math.Abs(k.lu[i][j]); v > big {
				big = v
			}
		}
		if big == 0 {
			return false
		}
		k.vv[i] = 1 / big
	}
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			sum := k.lu[i][j]
			for m := 0; m < i; m++ {
				sum -= k.lu[i][m] * k.lu[m][j]
			}
			k.lu[i][j] = sum
		}
		big, imax := 0.0, j
		for i := j; i < n; i++ {
			sum := k.lu[i][j]
			for m := 0; m < j; m++ {
				sum -= k.lu[i][m] * k.lu[m][j]
			}
			k.lu[i][j] = sum
			if v := k.vv[i] * math.Abs(sum); v >= big {
				big, imax = v, i
			}
		}
		if j != imax {
			k.lu[j], k.lu[imax] = k.lu[imax], k.lu[j]
			k.vv[imax] = k.vv[j]
		}
		k.perm[j] = imax
		if k.lu[j][j] == 0 {
			return false
		}
		if j != n-1 {
			d := 1 / k.lu[j][j]
			for i := j + 1; i < n; i++ {
				k.lu[i][j] *= d
			}
		}
	}
	return true
}

// solve back-substitutes b through the factorisation into k.x.
func (k *LUDecomposition) solve() {
	n := k.n
	copy(k.x, k.b)
	ii := -1
	for i := 0; i < n; i++ {
		ip := k.perm[i]
		sum := k.x[ip]
		k.x[ip] = k.x[i]
		if ii >= 0 {
			for j := ii; j < i; j++ {
				sum -= k.lu[i][j] * k.x[j]
			}
		} else if sum != 0 {
			ii = i
		}
		k.x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := k.x[i]
		for j := i + 1; j < n; j++ {
			sum -= k.lu[i][j] * k.x[j]
		}
		k.x[i] = sum / k.lu[i][i]
	}
}

// Iterate implements Kernel.
func (k *LUDecomposition) Iterate() uint64 {
	for i := range k.a {
		copy(k.lu[i], k.a[i])
	}
	if !k.decompose() {
		return 0
	}
	k.solve()
	return math.Float64bits(k.x[0])
}

// Verify implements Kernel.
func (k *LUDecomposition) Verify() error {
	if k.Iterate() == 0 {
		return fmt.Errorf("matrix reported singular")
	}
	// Check residual ‖Ax−b‖∞.
	worst := 0.0
	for i := 0; i < k.n; i++ {
		sum := 0.0
		for j := 0; j < k.n; j++ {
			sum += k.a[i][j] * k.x[j]
		}
		if v := math.Abs(sum - k.b[i]); v > worst {
			worst = v
		}
	}
	if worst > 1e-8 {
		return fmt.Errorf("residual %g too large", worst)
	}
	return nil
}
