package nbench

import (
	"bytes"
	"fmt"

	"winlab/internal/rng"
)

// ---------------------------------------------------------------------------
// Numeric sort: heap sort over int32 arrays, like BYTEmark's numeric sort.

// NumericSort heap-sorts a fixed set of pseudo-random int32 arrays.
type NumericSort struct {
	src  []int32
	work []int32
}

// Name implements Kernel.
func (*NumericSort) Name() string { return "numeric-sort" }

// Class implements Kernel.
func (*NumericSort) Class() Class { return Integer }

// Setup implements Kernel.
func (k *NumericSort) Setup(src *rng.Source) {
	const n = 2048
	k.src = make([]int32, n)
	for i := range k.src {
		k.src[i] = int32(src.Int63() >> 32)
	}
	k.work = make([]int32, n)
}

// Iterate implements Kernel.
func (k *NumericSort) Iterate() uint64 {
	copy(k.work, k.src)
	heapSort(k.work)
	return uint64(uint32(k.work[0])) ^ uint64(uint32(k.work[len(k.work)-1]))<<32
}

// Verify implements Kernel.
func (k *NumericSort) Verify() error {
	k.Iterate()
	return sortedCheck(k.work)
}

func heapSort(a []int32) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []int32, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// ---------------------------------------------------------------------------
// String sort: merge sort over byte-string slices.

// StringSort merge-sorts a fixed set of pseudo-random byte strings.
type StringSort struct {
	src  [][]byte
	work [][]byte
	buf  [][]byte
}

// Name implements Kernel.
func (*StringSort) Name() string { return "string-sort" }

// Class implements Kernel.
func (*StringSort) Class() Class { return Memory }

// Setup implements Kernel.
func (k *StringSort) Setup(src *rng.Source) {
	const n = 1024
	k.src = make([][]byte, n)
	for i := range k.src {
		l := 4 + src.Intn(28)
		b := make([]byte, l)
		for j := range b {
			b[j] = byte('a' + src.Intn(26))
		}
		k.src[i] = b
	}
	k.work = make([][]byte, n)
	k.buf = make([][]byte, n)
}

// Iterate implements Kernel.
func (k *StringSort) Iterate() uint64 {
	copy(k.work, k.src)
	mergeSortBytes(k.work, k.buf)
	return uint64(len(k.work[0])) ^ uint64(k.work[len(k.work)-1][0])<<8
}

// Verify implements Kernel.
func (k *StringSort) Verify() error {
	k.Iterate()
	for i := 1; i < len(k.work); i++ {
		if bytes.Compare(k.work[i-1], k.work[i]) > 0 {
			return fmt.Errorf("strings not sorted at %d", i)
		}
	}
	return nil
}

func mergeSortBytes(a, buf [][]byte) {
	n := len(a)
	if n < 2 {
		return
	}
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := min(lo+width, n)
			hi := min(lo+2*width, n)
			mergeBytes(a[lo:mid], a[mid:hi], buf[lo:hi])
		}
		copy(a, buf[:n])
	}
}

func mergeBytes(l, r, out [][]byte) {
	i, j, o := 0, 0, 0
	for i < len(l) && j < len(r) {
		if bytes.Compare(l[i], r[j]) <= 0 {
			out[o] = l[i]
			i++
		} else {
			out[o] = r[j]
			j++
		}
		o++
	}
	o += copy(out[o:], l[i:])
	copy(out[o:], r[j:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Bitfield: set/clear/complement runs of bits in a bitmap.

// Bitfield exercises bit manipulation over a fixed operation sequence.
type Bitfield struct {
	bits []uint64
	ops  []bitOp
}

type bitOp struct {
	kind  uint8 // 0 set, 1 clear, 2 complement
	start uint32
	len   uint32
}

// Name implements Kernel.
func (*Bitfield) Name() string { return "bitfield" }

// Class implements Kernel.
func (*Bitfield) Class() Class { return Memory }

// Setup implements Kernel.
func (k *Bitfield) Setup(src *rng.Source) {
	const words = 2048 // 131072 bits
	k.bits = make([]uint64, words)
	k.ops = make([]bitOp, 512)
	for i := range k.ops {
		k.ops[i] = bitOp{
			kind:  uint8(src.Intn(3)),
			start: uint32(src.Intn(words * 64)),
			len:   uint32(1 + src.Intn(512)),
		}
	}
}

// Iterate implements Kernel.
func (k *Bitfield) Iterate() uint64 {
	for i := range k.bits {
		k.bits[i] = 0
	}
	nbits := uint32(len(k.bits) * 64)
	for _, op := range k.ops {
		end := op.start + op.len
		if end > nbits {
			end = nbits
		}
		for b := op.start; b < end; b++ {
			w, m := b/64, uint64(1)<<(b%64)
			switch op.kind {
			case 0:
				k.bits[w] |= m
			case 1:
				k.bits[w] &^= m
			default:
				k.bits[w] ^= m
			}
		}
	}
	var sum uint64
	for _, w := range k.bits {
		sum += uint64(popcount(w))
	}
	return sum
}

// Verify implements Kernel.
func (k *Bitfield) Verify() error {
	saved := append([]uint64(nil), k.bits...)
	defer copy(k.bits, saved)
	for i := range k.bits {
		k.bits[i] = 0
	}
	// Apply only "set" semantics for a run we can predict.
	nbits := uint32(len(k.bits) * 64)
	var want uint64
	marks := make(map[uint32]bool)
	for _, op := range k.ops {
		if op.kind != 0 {
			continue
		}
		end := op.start + op.len
		if end > nbits {
			end = nbits
		}
		for b := op.start; b < end; b++ {
			w, m := b/64, uint64(1)<<(b%64)
			k.bits[w] |= m
			marks[b] = true
		}
	}
	want = uint64(len(marks))
	var got uint64
	for _, w := range k.bits {
		got += uint64(popcount(w))
	}
	if got != want {
		return fmt.Errorf("popcount = %d, want %d", got, want)
	}
	return nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// FP emulation: software floating point on a 32.32 fixed-point format,
// echoing BYTEmark's emulated floating point kernel.

// FPEmulation performs arithmetic on software-emulated reals.
type FPEmulation struct {
	a, b []sreal
}

// sreal is a software real: sign, 32.32 fixed point magnitude.
type sreal struct {
	neg bool
	mag uint64 // 32.32
}

func srealFromFloat(f float64) sreal {
	neg := f < 0
	if neg {
		f = -f
	}
	return sreal{neg: neg, mag: uint64(f * (1 << 32))}
}

func (s sreal) float() float64 {
	f := float64(s.mag) / (1 << 32)
	if s.neg {
		return -f
	}
	return f
}

func sadd(x, y sreal) sreal {
	if x.neg == y.neg {
		return sreal{neg: x.neg, mag: x.mag + y.mag}
	}
	if x.mag >= y.mag {
		return sreal{neg: x.neg, mag: x.mag - y.mag}
	}
	return sreal{neg: y.neg, mag: y.mag - x.mag}
}

func smul(x, y sreal) sreal {
	// (a.b × c.d) with 32.32 operands: split into hi/lo words.
	xh, xl := x.mag>>32, x.mag&0xFFFFFFFF
	yh, yl := y.mag>>32, y.mag&0xFFFFFFFF
	mag := xh*yh<<32 + xh*yl + xl*yh + xl*yl>>32
	return sreal{neg: x.neg != y.neg, mag: mag}
}

func sdiv(x, y sreal) sreal {
	if y.mag == 0 {
		return sreal{}
	}
	// Long division producing a 32.32 quotient.
	q := (x.mag / y.mag) << 32
	rem := x.mag % y.mag
	for i := 0; i < 32; i++ {
		rem <<= 1
		q |= (rem / y.mag) << (31 - i)
		rem %= y.mag
	}
	_ = q
	// Cheaper and adequate for benchmarking precision:
	quot := float64(x.mag) / float64(y.mag)
	return sreal{neg: x.neg != y.neg, mag: uint64(quot * (1 << 32))}
}

// Name implements Kernel.
func (*FPEmulation) Name() string { return "fp-emulation" }

// Class implements Kernel. The kernel belongs to the *integer* index: it
// emulates floating point with integer arithmetic.
func (*FPEmulation) Class() Class { return Integer }

// Setup implements Kernel.
func (k *FPEmulation) Setup(src *rng.Source) {
	const n = 512
	k.a = make([]sreal, n)
	k.b = make([]sreal, n)
	for i := range k.a {
		k.a[i] = srealFromFloat(src.Uniform(0.1, 1000))
		k.b[i] = srealFromFloat(src.Uniform(0.1, 1000))
	}
}

// Iterate implements Kernel.
func (k *FPEmulation) Iterate() uint64 {
	var acc sreal
	for i := range k.a {
		p := smul(k.a[i], k.b[i])
		q := sdiv(k.a[i], k.b[i])
		acc = sadd(acc, sadd(p, q))
	}
	return acc.mag
}

// Verify implements Kernel.
func (k *FPEmulation) Verify() error {
	x := srealFromFloat(3.5)
	y := srealFromFloat(2.0)
	if got := smul(x, y).float(); got < 6.99 || got > 7.01 {
		return fmt.Errorf("3.5*2.0 = %g", got)
	}
	if got := sdiv(x, y).float(); got < 1.74 || got > 1.76 {
		return fmt.Errorf("3.5/2.0 = %g", got)
	}
	if got := sadd(x, srealFromFloat(-2.0)).float(); got < 1.49 || got > 1.51 {
		return fmt.Errorf("3.5-2.0 = %g", got)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Assignment: the BYTEmark task-assignment kernel — minimise total cost of
// assigning tasks to machines with a row/column reduction heuristic plus
// greedy completion (the original uses the same flavour of algorithm).

// Assignment solves cost-matrix assignment problems.
type Assignment struct {
	cost [][]int32
	work [][]int32
}

// Name implements Kernel.
func (*Assignment) Name() string { return "assignment" }

// Class implements Kernel.
func (*Assignment) Class() Class { return Memory }

// Setup implements Kernel.
func (k *Assignment) Setup(src *rng.Source) {
	const n = 64
	k.cost = make([][]int32, n)
	k.work = make([][]int32, n)
	for i := range k.cost {
		k.cost[i] = make([]int32, n)
		k.work[i] = make([]int32, n)
		for j := range k.cost[i] {
			k.cost[i][j] = int32(src.Intn(1000))
		}
	}
}

// Iterate implements Kernel.
func (k *Assignment) Iterate() uint64 {
	n := len(k.cost)
	for i := range k.cost {
		copy(k.work[i], k.cost[i])
	}
	// Row reduction.
	for i := 0; i < n; i++ {
		row := k.work[i]
		m := row[0]
		for _, v := range row[1:] {
			if v < m {
				m = v
			}
		}
		for j := range row {
			row[j] -= m
		}
	}
	// Column reduction.
	for j := 0; j < n; j++ {
		m := k.work[0][j]
		for i := 1; i < n; i++ {
			if k.work[i][j] < m {
				m = k.work[i][j]
			}
		}
		for i := 0; i < n; i++ {
			k.work[i][j] -= m
		}
	}
	// Greedy assignment on the reduced matrix.
	usedCol := make([]bool, n)
	var total uint64
	for i := 0; i < n; i++ {
		best, bestJ := int32(1<<30), -1
		for j := 0; j < n; j++ {
			if !usedCol[j] && k.work[i][j] < best {
				best, bestJ = k.work[i][j], j
			}
		}
		usedCol[bestJ] = true
		total += uint64(k.cost[i][bestJ])
	}
	return total
}

// Verify implements Kernel.
func (k *Assignment) Verify() error {
	total := k.Iterate()
	// The greedy-on-reduced-matrix solution must never beat the true lower
	// bound (sum of row minima) and must be a valid permutation cost.
	var lower uint64
	for i := range k.cost {
		m := k.cost[i][0]
		for _, v := range k.cost[i][1:] {
			if v < m {
				m = v
			}
		}
		lower += uint64(m)
	}
	if total < lower {
		return fmt.Errorf("assignment cost %d below lower bound %d", total, lower)
	}
	return nil
}

// ---------------------------------------------------------------------------
// IDEA: the International Data Encryption Algorithm in ECB mode, as in
// BYTEmark. Encrypt/decrypt round-trips a buffer.

// IDEA encrypts and decrypts a buffer with the IDEA block cipher.
type IDEA struct {
	key    [8]uint16
	enc    [52]uint16
	dec    [52]uint16
	plain  []byte
	cipher []byte
	out    []byte
}

// Name implements Kernel.
func (*IDEA) Name() string { return "idea" }

// Class implements Kernel.
func (*IDEA) Class() Class { return Integer }

// Setup implements Kernel.
func (k *IDEA) Setup(src *rng.Source) {
	for i := range k.key {
		k.key[i] = uint16(src.Intn(1 << 16))
	}
	k.enc = ideaExpandKey(k.key)
	k.dec = ideaInvertKey(k.enc)
	const n = 4096
	k.plain = make([]byte, n)
	for i := range k.plain {
		k.plain[i] = byte(src.Intn(256))
	}
	k.cipher = make([]byte, n)
	k.out = make([]byte, n)
}

// Iterate implements Kernel.
func (k *IDEA) Iterate() uint64 {
	ideaECB(k.plain, k.cipher, &k.enc)
	ideaECB(k.cipher, k.out, &k.dec)
	return uint64(k.cipher[0]) | uint64(k.out[0])<<8
}

// Verify implements Kernel.
func (k *IDEA) Verify() error {
	k.Iterate()
	if !bytes.Equal(k.plain, k.out) {
		return fmt.Errorf("IDEA round-trip mismatch")
	}
	if bytes.Equal(k.plain, k.cipher) {
		return fmt.Errorf("IDEA ciphertext equals plaintext")
	}
	return nil
}

func ideaMul(a, b uint16) uint16 {
	if a == 0 {
		return uint16(1 - int32(b)) // 0 represents 2^16
	}
	if b == 0 {
		return uint16(1 - int32(a))
	}
	p := uint32(a) * uint32(b)
	hi, lo := p>>16, p&0xFFFF
	if lo >= hi {
		return uint16(lo - hi)
	}
	return uint16(lo - hi + 1)
}

func ideaInv(x uint16) uint16 {
	// Multiplicative inverse modulo 2^16+1 (extended Euclid).
	if x <= 1 {
		return x
	}
	t1 := uint32(0x10001) / uint32(x)
	y := uint32(0x10001) % uint32(x)
	if y == 1 {
		return uint16(1 - t1)
	}
	t0 := uint32(1)
	for y != 1 {
		q := uint32(x) / y
		x = uint16(uint32(x) % y)
		t0 += q * t1
		if x == 1 {
			return uint16(t0)
		}
		q = y / uint32(x)
		y = y % uint32(x)
		t1 += q * t0
	}
	return uint16(1 - t1)
}

// ideaExpandKey derives the 52 encryption subkeys: the 128-bit key is
// rotated left by 25 bits between each group of eight 16-bit subkeys.
func ideaExpandKey(key [8]uint16) [52]uint16 {
	var z [52]uint16
	copy(z[:8], key[:])
	for i := 8; i < 52; i++ {
		switch {
		case (i+2)%8 == 0: // z[14], z[22], ...
			z[i] = z[i-7]<<9 | z[i-14]>>7
		case (i+1)%8 == 0: // z[15], z[23], ...
			z[i] = z[i-15]<<9 | z[i-14]>>7
		default:
			z[i] = z[i-7]<<9 | z[i-6]>>7
		}
	}
	return z
}

// ideaInvertKey derives the decryption subkeys from the encryption ones:
// multiplicative inverses of the mul-keys, additive inverses of the
// add-keys (swapped for the inner rounds), MA-layer keys reused in reverse
// round order.
func ideaInvertKey(z [52]uint16) [52]uint16 {
	neg := func(x uint16) uint16 { return uint16(-int32(x)) }
	var u [52]uint16
	j := 0
	u[j], u[j+1], u[j+2], u[j+3] = ideaInv(z[48]), neg(z[49]), neg(z[50]), ideaInv(z[51])
	j += 4
	u[j], u[j+1] = z[46], z[47]
	j += 2
	for r := 1; r < 8; r++ {
		base := 48 - 6*r
		u[j], u[j+1], u[j+2], u[j+3] = ideaInv(z[base]), neg(z[base+2]), neg(z[base+1]), ideaInv(z[base+3])
		j += 4
		u[j], u[j+1] = z[base-2], z[base-1]
		j += 2
	}
	u[48], u[49], u[50], u[51] = ideaInv(z[0]), neg(z[1]), neg(z[2]), ideaInv(z[3])
	return u
}

func ideaBlock(x0, x1, x2, x3 uint16, z *[52]uint16) (uint16, uint16, uint16, uint16) {
	zi := 0
	for r := 0; r < 8; r++ {
		x0 = ideaMul(x0, z[zi])
		x1 += z[zi+1]
		x2 += z[zi+2]
		x3 = ideaMul(x3, z[zi+3])
		t0 := ideaMul(x0^x2, z[zi+4])
		t1 := ideaMul((x1^x3)+t0, z[zi+5])
		t0 += t1
		x0 ^= t1
		x3 ^= t0
		x1, x2 = x2^t1, x1^t0
		zi += 6
	}
	return ideaMul(x0, z[48]), x2 + z[49], x1 + z[50], ideaMul(x3, z[51])
}

func ideaECB(in, out []byte, z *[52]uint16) {
	for off := 0; off+8 <= len(in); off += 8 {
		x0 := uint16(in[off])<<8 | uint16(in[off+1])
		x1 := uint16(in[off+2])<<8 | uint16(in[off+3])
		x2 := uint16(in[off+4])<<8 | uint16(in[off+5])
		x3 := uint16(in[off+6])<<8 | uint16(in[off+7])
		x0, x1, x2, x3 = ideaBlock(x0, x1, x2, x3, z)
		out[off] = byte(x0 >> 8)
		out[off+1] = byte(x0)
		out[off+2] = byte(x1 >> 8)
		out[off+3] = byte(x1)
		out[off+4] = byte(x2 >> 8)
		out[off+5] = byte(x2)
		out[off+6] = byte(x3 >> 8)
		out[off+7] = byte(x3)
	}
}

// ---------------------------------------------------------------------------
// Huffman: build a Huffman tree over a text, compress and decompress.

// Huffman round-trips a buffer through Huffman coding.
type Huffman struct {
	text   []byte
	packed []byte
	unpack []byte
	codes  [256]hcode
	root   *hnode
}

type hcode struct {
	bits uint32
	len  uint8
}

type hnode struct {
	sym         int // -1 for internal
	left, right *hnode
}

// Name implements Kernel.
func (*Huffman) Name() string { return "huffman" }

// Class implements Kernel.
func (*Huffman) Class() Class { return Integer }

// Setup implements Kernel.
func (k *Huffman) Setup(src *rng.Source) {
	const n = 8192
	k.text = make([]byte, n)
	// Skewed symbol distribution so compression is meaningful.
	alphabet := []byte("aaaaeeeeiiooutnshrdlcumwfgypbvk ..,;")
	for i := range k.text {
		k.text[i] = alphabet[src.Intn(len(alphabet))]
	}
	k.packed = make([]byte, 0, n)
	k.unpack = make([]byte, 0, n)
	k.buildTree()
}

func (k *Huffman) buildTree() {
	var freq [256]int
	for _, b := range k.text {
		freq[b]++
	}
	// Simple O(n²) pairing, adequate for a 36-symbol alphabet.
	var nodes []*hnode
	weights := map[*hnode]int{}
	for s, f := range freq {
		if f > 0 {
			n := &hnode{sym: s}
			nodes = append(nodes, n)
			weights[n] = f
		}
	}
	for len(nodes) > 1 {
		// Find the two lightest nodes.
		a, b := -1, -1
		for i := range nodes {
			if a < 0 || weights[nodes[i]] < weights[nodes[a]] {
				b = a
				a = i
			} else if b < 0 || weights[nodes[i]] < weights[nodes[b]] {
				b = i
			}
		}
		parent := &hnode{sym: -1, left: nodes[a], right: nodes[b]}
		weights[parent] = weights[nodes[a]] + weights[nodes[b]]
		// Remove b first (it is the larger index or order does not matter).
		if a > b {
			a, b = b, a
		}
		nodes = append(nodes[:b], nodes[b+1:]...)
		nodes[a] = parent
	}
	k.root = nodes[0]
	k.codes = [256]hcode{}
	var walk func(n *hnode, bits uint32, depth uint8)
	walk = func(n *hnode, bits uint32, depth uint8) {
		if n.sym >= 0 {
			if depth == 0 {
				depth = 1 // single-symbol degenerate tree
			}
			k.codes[n.sym] = hcode{bits: bits, len: depth}
			return
		}
		walk(n.left, bits<<1, depth+1)
		walk(n.right, bits<<1|1, depth+1)
	}
	walk(k.root, 0, 0)
}

// Iterate implements Kernel.
func (k *Huffman) Iterate() uint64 {
	// Compress.
	k.packed = k.packed[:0]
	var acc uint64
	var nbits uint
	for _, b := range k.text {
		c := k.codes[b]
		acc = acc<<c.len | uint64(c.bits)
		nbits += uint(c.len)
		for nbits >= 8 {
			nbits -= 8
			k.packed = append(k.packed, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		k.packed = append(k.packed, byte(acc<<(8-nbits)))
	}
	// Decompress.
	k.unpack = k.unpack[:0]
	node := k.root
	total := len(k.text)
	for _, byt := range k.packed {
		for bit := 7; bit >= 0 && len(k.unpack) < total; bit-- {
			if byt>>uint(bit)&1 == 1 {
				node = node.right
			} else {
				node = node.left
			}
			if node.sym >= 0 {
				k.unpack = append(k.unpack, byte(node.sym))
				node = k.root
			}
		}
	}
	return uint64(len(k.packed))
}

// Verify implements Kernel.
func (k *Huffman) Verify() error {
	n := k.Iterate()
	if !bytes.Equal(k.text, k.unpack) {
		return fmt.Errorf("huffman round-trip mismatch")
	}
	if int(n) >= len(k.text) {
		return fmt.Errorf("huffman did not compress (%d >= %d)", n, len(k.text))
	}
	return nil
}
