// Package sim implements the discrete-event simulation engine that drives
// the fleet of simulated laboratory machines.
//
// The engine is deliberately minimal: a virtual clock, a binary-heap event
// queue with stable FIFO ordering for simultaneous events, and helpers for
// recurring events. Machines and the behaviour model schedule closures; the
// DDC collector schedules its 15-minute probing iterations the same way.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled closure. The closure receives the engine so it can
// schedule follow-up events.
type Event struct {
	At   time.Time
	Name string // for tracing/debugging
	Fn   func(*Engine)

	seq int // tiebreaker: FIFO among simultaneous events
	idx int // heap index, -1 when popped/cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.idx == -2 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].At.Equal(q[j].At) {
		return q[i].At.Before(q[j].At)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator with a virtual clock.
type Engine struct {
	now    time.Time
	queue  eventQueue
	seq    int
	fired  int64
	tracer func(*Event)
}

// New creates an engine whose clock starts at start.
func New(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() int64 { return e.fired }

// SetTracer installs a hook invoked before each event fires (nil disables).
func (e *Engine) SetTracer(fn func(*Event)) { e.tracer = fn }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// indicates a model bug that would silently reorder causality.
func (e *Engine) At(t time.Time, name string, fn func(*Engine)) *Event {
	if t.Before(e.now) {
		panic(fmt.Sprintf("sim: event %q scheduled at %s before now %s", name, t, e.now))
	}
	ev := &Event{At: t, Name: name, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn after delay d.
func (e *Engine) After(d time.Duration, name string, fn func(*Engine)) *Event {
	return e.At(e.now.Add(d), name, fn)
}

// Every schedules fn at start and then every period until (not including)
// the first tick at or after end.
func (e *Engine) Every(start time.Time, period time.Duration, end time.Time, name string, fn func(*Engine)) {
	if period <= 0 {
		panic("sim: Every needs a positive period")
	}
	var tick func(*Engine)
	next := start
	tick = func(en *Engine) {
		fn(en)
		next = next.Add(period)
		if next.Before(end) {
			en.At(next, name, tick)
		}
	}
	if start.Before(end) {
		e.At(start, name, tick)
	}
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -2
}

// Step fires the next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	if e.tracer != nil {
		e.tracer(ev)
	}
	e.fired++
	ev.Fn(e)
	return true
}

// RunUntil fires events until the queue is empty or the next event is at or
// after end; the clock is then advanced to end.
func (e *Engine) RunUntil(end time.Time) {
	for e.queue.Len() > 0 && e.queue[0].At.Before(end) {
		e.Step()
	}
	if e.now.Before(end) {
		e.now = end
	}
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.queue.Len() }
