package sim

import (
	"testing"
	"time"
)

var t0 = time.Date(2003, 10, 6, 0, 0, 0, 0, time.UTC)

func TestEventOrdering(t *testing.T) {
	e := New(t0)
	var order []string
	e.At(t0.Add(2*time.Hour), "b", func(*Engine) { order = append(order, "b") })
	e.At(t0.Add(1*time.Hour), "a", func(*Engine) { order = append(order, "a") })
	e.At(t0.Add(3*time.Hour), "c", func(*Engine) { order = append(order, "c") })
	e.Run()
	if got := len(order); got != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("order = %v", order)
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d", e.Fired())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(t0)
	var order []int
	at := t0.Add(time.Hour)
	for i := 0; i < 10; i++ {
		i := i
		e.At(at, "x", func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := New(t0)
	var seen time.Time
	e.After(90*time.Minute, "tick", func(en *Engine) { seen = en.Now() })
	e.Run()
	if !seen.Equal(t0.Add(90 * time.Minute)) {
		t.Errorf("Now() during event = %v", seen)
	}
	if !e.Now().Equal(t0.Add(90 * time.Minute)) {
		t.Errorf("final Now() = %v", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(t0)
	e.After(time.Hour, "x", func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		en.At(t0, "past", func(*Engine) {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := New(t0)
	fired := false
	ev := e.After(time.Hour, "x", func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("event does not report cancelled")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := New(t0)
	var fired []string
	a := e.After(1*time.Hour, "a", func(*Engine) { fired = append(fired, "a") })
	e.After(2*time.Hour, "b", func(*Engine) { fired = append(fired, "b") })
	e.After(3*time.Hour, "c", func(*Engine) { fired = append(fired, "c") })
	e.Cancel(a)
	e.Run()
	if len(fired) != 2 || fired[0] != "b" || fired[1] != "c" {
		t.Errorf("fired = %v", fired)
	}
}

func TestCancelFiredEventNoop(t *testing.T) {
	e := New(t0)
	var ev *Event
	ev = e.After(time.Hour, "x", func(*Engine) {})
	e.Run()
	e.Cancel(ev) // must not panic or corrupt the (empty) heap
	if e.Pending() != 0 {
		t.Error("pending after run")
	}
}

func TestEvery(t *testing.T) {
	e := New(t0)
	var ticks []time.Time
	end := t0.Add(61 * time.Minute)
	e.Every(t0, 15*time.Minute, end, "tick", func(en *Engine) { ticks = append(ticks, en.Now()) })
	e.Run()
	if len(ticks) != 5 { // 0, 15, 30, 45, 60
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, tk := range ticks {
		if want := t0.Add(time.Duration(i) * 15 * time.Minute); !tk.Equal(want) {
			t.Errorf("tick %d at %v, want %v", i, tk, want)
		}
	}
}

func TestEveryEmptyRange(t *testing.T) {
	e := New(t0)
	count := 0
	e.Every(t0.Add(time.Hour), time.Minute, t0.Add(time.Hour), "x", func(*Engine) { count++ })
	e.Run()
	if count != 0 {
		t.Errorf("Every with start==end fired %d times", count)
	}
}

func TestEveryBadPeriodPanics(t *testing.T) {
	e := New(t0)
	defer func() {
		if recover() == nil {
			t.Error("Every with zero period did not panic")
		}
	}()
	e.Every(t0, 0, t0.Add(time.Hour), "x", func(*Engine) {})
}

func TestRunUntil(t *testing.T) {
	e := New(t0)
	var fired []string
	e.After(1*time.Hour, "a", func(*Engine) { fired = append(fired, "a") })
	e.After(3*time.Hour, "b", func(*Engine) { fired = append(fired, "b") })
	e.RunUntil(t0.Add(2 * time.Hour))
	if len(fired) != 1 || fired[0] != "a" {
		t.Errorf("fired = %v", fired)
	}
	if !e.Now().Equal(t0.Add(2 * time.Hour)) {
		t.Errorf("Now = %v, want clock advanced to end", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	// Continue to the remaining event.
	e.RunUntil(t0.Add(4 * time.Hour))
	if len(fired) != 2 {
		t.Errorf("second RunUntil: fired = %v", fired)
	}
}

func TestEventsCanSchedule(t *testing.T) {
	e := New(t0)
	depth := 0
	var recurse func(*Engine)
	recurse = func(en *Engine) {
		depth++
		if depth < 5 {
			en.After(time.Minute, "r", recurse)
		}
	}
	e.After(time.Minute, "r", recurse)
	e.Run()
	if depth != 5 {
		t.Errorf("depth = %d", depth)
	}
}

func TestTracer(t *testing.T) {
	e := New(t0)
	var names []string
	e.SetTracer(func(ev *Event) { names = append(names, ev.Name) })
	e.After(time.Minute, "one", func(*Engine) {})
	e.After(2*time.Minute, "two", func(*Engine) {})
	e.Run()
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Errorf("traced = %v", names)
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New(t0)
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}
