package validate

import (
	"testing"
)

// TestSuiteClean runs the full differential suite on a short experiment:
// every equivalence claim in the repo must hold.
func TestSuiteClean(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite runs several collection arms")
	}
	fails := Suite(Config{Seed: 1, Days: 3, Workers: 4})
	for _, f := range fails {
		t.Errorf("equivalence broken: %s", f)
	}
}

func TestFailureString(t *testing.T) {
	f := Failure{Check: "trace/tbv1-roundtrip", Detail: ".Samples[3] (machine=m iter=2) .Uptime: 1s != 2s"}
	want := "trace/tbv1-roundtrip: .Samples[3] (machine=m iter=2) .Uptime: 1s != 2s"
	if f.String() != want {
		t.Errorf("String() = %q", f.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.Days != 7 || c.Workers != 8 {
		t.Errorf("withDefaults() = %+v", c)
	}
}
